package spamer

import "testing"

// TestMultiDeviceDistribution: queues spread round-robin over devices
// and traffic stays correct.
func TestMultiDeviceDistribution(t *testing.T) {
	sys := NewSystem(Config{Algorithm: AlgTuned, Devices: 3, Deadline: 1 << 32})
	if len(sys.Devices()) != 3 {
		t.Fatalf("devices = %d", len(sys.Devices()))
	}
	const queues, perQueue = 6, 40
	for qi := 0; qi < queues; qi++ {
		q := sys.NewQueue("q")
		sys.Spawn("producer", func(th *Thread) {
			pr := q.NewProducer(0)
			for i := 0; i < perQueue; i++ {
				th.Compute(20)
				pr.Push(th.Proc, uint64(i))
			}
		})
		sys.Spawn("consumer", func(th *Thread) {
			c := q.NewConsumer(th.Proc, 2)
			for i := 0; i < perQueue; i++ {
				m := c.Pop(th.Proc)
				if m.Seq != uint64(i) {
					t.Errorf("queue %d: seq %d at pop %d", qi, m.Seq, i)
				}
				th.Compute(30)
			}
		})
	}
	res := sys.Run()
	if res.Pushed != queues*perQueue || res.Popped != queues*perQueue {
		t.Fatalf("conservation: %d/%d", res.Pushed, res.Popped)
	}
	// Every device must have carried traffic (6 queues over 3 devices).
	for i, d := range sys.Devices() {
		if d.Stats().PushAccepts == 0 {
			t.Errorf("device %d idle", i)
		}
	}
	// Aggregated stats must cover all pushes.
	if res.Device.PushAccepts < queues*perQueue {
		t.Fatalf("aggregated accepts = %d", res.Device.PushAccepts)
	}
}

// TestMultiDeviceMatchesSingleDeviceSemantics: a 1-queue workload is
// unaffected by extra devices.
func TestMultiDeviceMatchesSingleDeviceSemantics(t *testing.T) {
	run := func(devices int) Result {
		sys := NewSystem(Config{Algorithm: AlgZeroDelay, Devices: devices, Deadline: 1 << 32})
		q := sys.NewQueue("q")
		sys.Spawn("p", func(th *Thread) {
			pr := q.NewProducer(0)
			for i := 0; i < 100; i++ {
				pr.Push(th.Proc, uint64(i))
			}
		})
		sys.Spawn("c", func(th *Thread) {
			rx := q.NewConsumer(th.Proc, 2)
			for i := 0; i < 100; i++ {
				rx.Pop(th.Proc)
				th.Compute(25)
			}
		})
		return sys.Run()
	}
	a, b := run(1), run(4)
	if a.Ticks != b.Ticks {
		t.Fatalf("single-queue run differs across device counts: %d vs %d", a.Ticks, b.Ticks)
	}
}
