module spamer

go 1.22
