// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each benchmark
// executes the corresponding experiment end-to-end and reports derived
// metrics alongside the usual ns/op:
//
//	BenchmarkTable1Config       — Table 1 rows
//	BenchmarkTable2Workloads    — Table 2 rows (builds every topology)
//	BenchmarkFigure1Latency     — Lc/Lv/Ls latency comparison
//	BenchmarkFigure7Trace       — §4.2 transaction tracing
//	BenchmarkFigure8Speedup     — speedups + geomeans
//	BenchmarkFigure9Breakdown   — consumer-line empty/non-empty cycles
//	BenchmarkFigure10Failure    — push failure rates
//	BenchmarkFigure10Bus        — bus utilization
//	BenchmarkFigure11Sensitivity— tuned-parameter sweep (FIR panel)
//	BenchmarkInlineOpt          — §4.3 inlining study
//	BenchmarkArea               — §4.5 area/power estimation
//	BenchmarkWorkload/<name>/<alg> — one run per matrix cell
//	BenchmarkMillionMessage     — open-loop traffic at message scale
//	                              (b.N = delivered messages; run with
//	                              -benchtime=1000000x for the full case)
package spamer_test

import (
	"fmt"
	"testing"

	"spamer"
	"spamer/internal/energy"
	"spamer/internal/experiments"
	"spamer/internal/traffic"
	"spamer/internal/tuner"
	"spamer/internal/workloads"
)

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1Rows(); len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2Rows()
		if len(rows) != 9 { // header + 8 benchmarks
			b.Fatalf("rows = %d", len(rows))
		}
		// Building every topology exercises the Table 2 queue shapes.
		for _, w := range workloads.All() {
			sys := spamer.NewSystem(spamer.Config{})
			w.Build(sys, 1)
			sys.Kernel().Drain()
		}
	}
}

func BenchmarkFigure1Latency(b *testing.B) {
	var r = experiments.Figure1()
	for i := 0; i < b.N; i++ {
		r = experiments.Figure1()
	}
	b.ReportMetric(r.Lc, "Lc-cycles")
	b.ReportMetric(r.Lv, "Lv-cycles")
	b.ReportMetric(r.Ls, "Ls-cycles")
}

func BenchmarkFigure7Trace(b *testing.B) {
	var hindered, saving float64
	for i := 0; i < b.N; i++ {
		_, sum, _ := experiments.Figure7(spamer.AlgBaseline)
		hindered = float64(sum.Hindered)
		saving = float64(sum.TotalSavingTk)
	}
	b.ReportMetric(hindered, "hindered-txs")
	b.ReportMetric(saving, "saving-cycles")
}

func BenchmarkFigure8Speedup(b *testing.B) {
	var m *experiments.Matrix
	for i := 0; i < b.N; i++ {
		m = experiments.RunMatrix(1)
	}
	b.ReportMetric(m.Geomean(spamer.AlgZeroDelay), "geomean-0delay")
	b.ReportMetric(m.Geomean(spamer.AlgAdaptive), "geomean-adapt")
	b.ReportMetric(m.Geomean(spamer.AlgTuned), "geomean-tuned")
}

func BenchmarkFigure9Breakdown(b *testing.B) {
	var empty float64
	for i := 0; i < b.N; i++ {
		m := experiments.RunMatrix(1)
		cells := experiments.Figure9(m)
		empty = cells["FIR"][spamer.AlgBaseline].EmptyM
	}
	b.ReportMetric(empty, "FIR-VL-emptyMcycles")
}

func BenchmarkFigure10Failure(b *testing.B) {
	var zd float64
	for i := 0; i < b.N; i++ {
		m := experiments.RunMatrix(1)
		cells := experiments.Figure10(m)
		zd = cells["incast"][spamer.AlgZeroDelay].FailureRate
	}
	b.ReportMetric(zd*100, "incast-0delay-fail%")
}

func BenchmarkFigure10Bus(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		m := experiments.RunMatrix(1)
		cells := experiments.Figure10(m)
		util = cells["pipeline"][spamer.AlgAdaptive].BusUtilization
	}
	b.ReportMetric(util*100, "pipeline-adapt-bus%")
}

func BenchmarkFigure11Sensitivity(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure11("FIR", 1)
		if err != nil {
			b.Fatal(err)
		}
		best = points[1].DelayNorm // SPAMeR(0delay)
	}
	b.ReportMetric(best, "FIR-0delay-delaynorm")
}

func BenchmarkInlineOpt(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		rows := experiments.InlineStudy(1)
		sum := 0.0
		for _, r := range rows {
			sum += r.Speedup
		}
		mean = sum / float64(len(rows))
	}
	b.ReportMetric(mean, "mean-inline-speedup")
}

func BenchmarkArea(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		a := energy.Area(0)
		p := energy.Power(5.03)
		share = a.SRDShareOfSoC
		if !p.WithinPaper {
			b.Fatal("power bound violated")
		}
	}
	b.ReportMetric(share*100, "SRD-SoC-area%")
}

// BenchmarkAblationPredictors compares every implemented delay
// algorithm (paper trio + history/perceptron/profiled/dyntuned).
func BenchmarkAblationPredictors(b *testing.B) {
	var firBest float64
	for i := 0; i < b.N; i++ {
		rows := experiments.PredictorStudy(1)
		for _, r := range rows {
			if r.Benchmark == "FIR" {
				firBest = r.Speedups["0delay"]
			}
		}
	}
	b.ReportMetric(firBest, "FIR-0delay-speedup")
}

// BenchmarkAblationTopology runs the hop-latency and channel sweeps the
// paper defers.
func BenchmarkAblationTopology(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.HopLatencySweep("FIR", []uint64{6, 12, 24, 48}, 1)
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, p := range pts {
			if p.Speedup > peak {
				peak = p.Speedup
			}
		}
		if _, err := experiments.BusChannelsSweep("halo", []int{1, 2, 4, 8}, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(peak, "FIR-peak-speedup")
}

// BenchmarkTunerSearch runs the future-work per-benchmark parameter
// search on firewall.
func BenchmarkTunerSearch(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		s, err := tuner.NewSearch("firewall", 1)
		if err != nil {
			b.Fatal(err)
		}
		s.MaxRounds = 2
		res := s.Run()
		gain = res.Improvement
	}
	b.ReportMetric(gain, "tuner-gain")
}

// BenchmarkWorkload runs each (benchmark, config) cell individually so
// per-cell simulation cost is visible.
func BenchmarkWorkload(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		for _, alg := range spamer.Configs() {
			alg := alg
			b.Run(w.Name+"/"+alg, func(b *testing.B) {
				var res spamer.Result
				for i := 0; i < b.N; i++ {
					res = w.Run(spamer.Config{Algorithm: alg, Deadline: 1 << 40}, 1)
				}
				b.ReportMetric(float64(res.Ticks), "sim-cycles")
				b.ReportMetric(float64(res.Pushed), "messages")
			})
		}
	}
}

// BenchmarkMillionMessage drives the open-loop traffic engine at
// message scale: a 2-stage chain paced by a seeded Poisson population
// of 16 users. b.N is the delivered message count — ns/op is the cost
// per message, so one million-message run is `-benchtime=1000000x`.
// The sequential sub-benchmark must report 0 allocs/op in steady state
// (setup allocations amortize below one per million messages); the
// domains-N variants run the identical schedule on the conservative
// parallel kernel, whose per-quantum barrier bookkeeping is allowed to
// allocate.
func BenchmarkMillionMessage(b *testing.B) {
	run := func(b *testing.B, domains int) {
		b.ReportAllocs()
		sh := workloads.Shape{
			Stages: 2, Messages: b.N, Lines: 4, Window: 8,
			Arrival: &traffic.Spec{Seed: 0xB6, MeanGap: 400, Users: 16},
		}
		w := sh.Workload()
		cfg := spamer.Config{Algorithm: spamer.AlgTuned, Domains: domains, Deadline: 1 << 40}
		b.ResetTimer()
		res := w.Run(cfg, 1)
		b.StopTimer()
		if res.Popped != uint64(b.N) {
			b.Fatalf("delivered %d messages, want %d", res.Popped, b.N)
		}
		b.ReportMetric(float64(res.Ticks)/float64(b.N), "sim-cycles/msg")
	}
	b.Run("sequential", func(b *testing.B) { run(b, 0) })
	for _, d := range []int{2, 4, 8} {
		d := d
		// "domains=N", not "domains-N": spamer-benchjson strips a
		// trailing -<digits> as the GOMAXPROCS suffix.
		b.Run(fmt.Sprintf("domains=%d", d), func(b *testing.B) { run(b, d) })
	}
}
