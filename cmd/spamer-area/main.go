// Command spamer-area regenerates the §4.5 area and power estimation:
// SRD area at the Table 1 sizing (paper: 0.156 mm² of buffers,
// 0.170 mm² total, <1% of a 16-core SoC) and worst-case SRD power per
// delay algorithm from measured push-frequency factors (paper: at most
// 47.75 mW, ≈0.23% of SoC power).
//
// Usage:
//
//	spamer-area [-entries N] [-scale N]
package main

import (
	"flag"
	"fmt"
	"os"

	"spamer/internal/energy"
	"spamer/internal/experiments"
	"spamer/internal/report"
)

func main() {
	entries := flag.Int("entries", 0, "specBuf entries (0 = Table 1 default, 64)")
	scale := flag.Int("scale", 1, "message-count multiplier for the power measurement")
	flag.Parse()

	a := energy.Area(*entries)
	fmt.Println("§4.5 area estimation (16 nm, scaled per Stillmaker-Baas from FreePDK45 synthesis)")
	report.Table(os.Stdout, [][]string{
		{"quantity", "value"},
		{"specBuf/prodBuf/consBuf/linkTab entries", fmt.Sprint(a.Entries)},
		{"SRD buffer area", fmt.Sprintf("%.3f mm²", a.BufferAreaMM2)},
		{"SRD total area", fmt.Sprintf("%.3f mm²", a.TotalAreaMM2)},
		{"VLRD area (baseline)", fmt.Sprintf("%.3f mm²", a.VLRDAreaMM2)},
		{"increase over VLRD", fmt.Sprintf("%.1f%%", a.IncreasePct)},
		{"16-core SoC area (excl. L2/wires)", fmt.Sprintf("%.1f mm²", a.SoCAreaMM2)},
		{"SRD share of SoC", fmt.Sprintf("%.2f%%", a.SRDShareOfSoC*100)},
	}, true)
	fmt.Println("paper reference: 0.156 mm² buffers, 0.170 mm² total, <1% of SoC")

	fmt.Println()
	fmt.Fprintln(os.Stderr, "measuring push-frequency factors across the benchmark matrix...")
	m := experiments.RunMatrix(*scale)
	ap := experiments.Section45(m)
	rows := [][]string{{"algorithm", "push factor", "dynamic", "total", "SoC share", "within paper bound"}}
	for _, alg := range m.Configs[1:] {
		p := ap.PowerByAlg[alg]
		rows = append(rows, []string{
			alg,
			fmt.Sprintf("%.2fx", p.PushFactor),
			fmt.Sprintf("%.2f mW", p.DynamicMW),
			fmt.Sprintf("%.2f mW", p.TotalMW),
			fmt.Sprintf("%.3f%%", p.ShareOfSoC*100),
			fmt.Sprint(p.WithinPaper),
		})
	}
	fmt.Println("§4.5 power estimation (baseline VLRD: 9.33 mW dynamic + 0.82 mW leakage @ 0.86 V)")
	report.Table(os.Stdout, rows, true)
	fmt.Println("paper reference: adaptive <=2.45x, tuned <=5.03x, at most 47.75 mW (~0.23% of SoC power)")
}
