// Command spamer-worker is the fabric worker agent: it registers with
// a spamer-serve coordinator, heartbeats its presence and queue depth,
// and executes leased spec shards via the exact local runner
// (experiments.RunSpecsParallel), so a distributed run's per-spec
// outcomes are byte-identical to a local one. See docs/FABRIC.md.
//
// Usage:
//
//	spamer-worker -coordinator http://coord:8080 [-addr :9090]
//	              [-advertise http://host:9090] [-id host-pid]
//	              [-slots 1] [-parallel N] [-run-timeout 0]
//	              [-drain-timeout 30s]
//
// SIGTERM/SIGINT triggers a graceful drain: /healthz flips to 503 and
// a draining heartbeat tells the coordinator to stop placing leases
// here, in-flight leases finish (bounded by -drain-timeout), then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spamer/internal/fabric"
)

func main() {
	coordinator := flag.String("coordinator", "", "coordinator base URL (required), e.g. http://coord:8080")
	addr := flag.String("addr", ":9090", "listen address")
	advertise := flag.String("advertise", "", "base URL the coordinator dials back (default http://<hostname>:<port> from -addr)")
	id := flag.String("id", "", "stable worker identity (default <hostname>-<pid>)")
	slots := flag.Int("slots", 1, "spec shards executed concurrently (excess leases bounce with 503)")
	parallel := flag.Int("parallel", 0, "simulations per shard run concurrently (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 0, "per-simulation timeout (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight leases on shutdown")
	flag.Parse()

	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "spamer-worker: -coordinator is required")
		os.Exit(2)
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	if *id == "" {
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if *advertise == "" {
		_, port, err := net.SplitHostPort(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spamer-worker: cannot derive -advertise from -addr %q: %v\n", *addr, err)
			os.Exit(2)
		}
		*advertise = fmt.Sprintf("http://%s:%s", host, port)
	}

	w := fabric.NewWorker(fabric.WorkerOptions{
		ID:          *id,
		Coordinator: *coordinator,
		Advertise:   *advertise,
		Slots:       *slots,
		RunWorkers:  *parallel,
		RunTimeout:  *runTimeout,
		Log:         os.Stderr,
	})
	hs := &http.Server{Addr: *addr, Handler: w.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "spamer-worker: %s listening on %s, advertising %s\n", *id, *addr, *advertise)

	announceCtx, stopAnnounce := context.WithCancel(context.Background())
	go w.Announce(announceCtx)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "spamer-worker: %v: draining (finishing leases, up to %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := w.Drain(ctx)
		stopAnnounce() // final heartbeat goes out carrying Draining=true
		if err != nil {
			fmt.Fprintf(os.Stderr, "spamer-worker: drain incomplete: %v\n", err)
			hs.Close()
			os.Exit(1)
		}
		hs.Shutdown(ctx)
		fmt.Fprintln(os.Stderr, "spamer-worker: drained cleanly")
	case err := <-errCh:
		stopAnnounce()
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "spamer-worker: %v\n", err)
			os.Exit(1)
		}
	}
}
