// Command spamer-verify runs the randomized differential-oracle
// campaign: N seeded cases (synthetic workload shapes and named Table 2
// benchmarks under randomized hardware knobs), each executed under the
// full invariant battery — message conservation, per-link FIFO,
// payload integrity, structural checks of the device link table /
// speculation buffer, counter balance, SPAMeR-vs-VL differential
// delivery, determinism, and cross-kernel trace equivalence (see
// docs/TESTING.md).
//
// With -workers N every case additionally runs through a fabric
// worker pool of that size, and the distributed per-spec outcomes must
// be byte-identical to a local run (the distributed-vs-local
// differential; docs/FABRIC.md).
//
// Every failing case is greedily minimized and written as a JSON repro
// under -out; replay one with -repro:
//
//	spamer-verify -n 200 -seed 1
//	spamer-verify -n 100 -workers 2
//	spamer-verify -repro oracle-repro-....json
//
// Exit status is nonzero when any case fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spamer/internal/oracle"
	"spamer/internal/oracle/gen"
)

func main() {
	n := flag.Int("n", 50, "number of random cases to check")
	seed := flag.Uint64("seed", 1, "campaign base seed")
	out := flag.String("out", ".", "directory for minimized repro JSON files")
	domainsFlag := flag.String("domains", "1,2,4,8,16", "comma-separated lane counts for cross-kernel checks (empty disables)")
	repro := flag.String("repro", "", "replay a single repro/case JSON file instead of running a campaign")
	workers := flag.Int("workers", 0, "fabric worker pool size for the distributed-vs-local differential (0 disables)")
	flag.Parse()

	if *repro != "" {
		os.Exit(replay(*repro))
	}

	domains, err := parseDomains(*domainsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := oracle.Campaign(oracle.CampaignOptions{
		Seed:     *seed,
		N:        *n,
		Domains:  domains,
		ReproDir: *out,
		Workers:  *workers,
		Log:      os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("verify-oracle: %d cases, %d runs, %d failures\n", res.Cases, res.Runs, len(res.Failures))
	if len(res.Failures) > 0 {
		for _, f := range res.Failures {
			fmt.Printf("  FAIL seed=%#x repro=%s\n", f.Original.Seed, f.ReproPath)
			for _, v := range f.Violations {
				fmt.Printf("    %s\n", v)
			}
		}
		os.Exit(1)
	}
}

// replay re-checks a persisted case. Repro files wrap the case in a
// CaseFailure; bare Case JSON (hand-written) is accepted too.
func replay(path string) int {
	cs, err := readReproCase(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rep := oracle.CheckCase(cs)
	if !rep.Failed() {
		fmt.Printf("replay %s: %d runs, no violations\n", path, rep.Runs)
		return 0
	}
	fmt.Printf("replay %s: %d runs, %d violations\n", path, rep.Runs, len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  %s\n", v)
	}
	return 1
}

func readReproCase(path string) (gen.Case, error) {
	// A campaign repro file has the shape {"case": {...}, ...}; a bare
	// case file has {"spec": {...}, ...}. Try the wrapper first.
	if fail, err := oracle.ReadReproFile(path); err == nil && fail.Case.Spec.Benchmark != "" {
		return fail.Case, nil
	}
	return gen.ReadCaseFile(path)
}

func parseDomains(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("spamer-verify: bad -domains entry %q", part)
		}
		out = append(out, d)
	}
	return out, nil
}
