// Command spamer-trace regenerates the §4.2 message-queue workload
// tracing experiment and Figure 7: an incast run reduced to a single
// queue, a single consumer cache line, and a single producer thread,
// with every transaction's events (data arrival, request arrival, line
// vacate, fill, first use) stitched together and the potential
// speculative-push savings of on-demand transactions reported.
//
// Usage:
//
//	spamer-trace [-alg vl|0delay|adapt|tuned] [-csv] [-from N] [-to N]
package main

import (
	"flag"
	"fmt"
	"os"

	"spamer"
	"spamer/internal/experiments"
	"spamer/internal/report"
	"spamer/internal/stats"
	"spamer/internal/trace"
	"spamer/internal/workloads"
)

func main() {
	alg := flag.String("alg", "vl", "routing-device configuration: vl|0delay|adapt|tuned")
	csv := flag.Bool("csv", false, "dump raw events as CSV instead of the summary")
	from := flag.Uint64("from", 0, "timeline start tick (0 = auto)")
	to := flag.Uint64("to", 0, "timeline end tick (0 = auto)")
	phasesOf := flag.String("phases", "", "instead of the Figure 7 trace, sample the named benchmark in windows and print its throughput phases (the Figure 7 overview view)")
	period := flag.Uint64("period", 2048, "sampling period in cycles for -phases")
	flag.Parse()

	if *phasesOf != "" {
		runPhases(*phasesOf, *alg, *period, *csv)
		return
	}

	tr, sum, res := experiments.Figure7(*alg)
	evs := tr.Events()
	if *csv {
		if err := trace.WriteCSV(os.Stdout, evs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("Figure 7 trace: incast, single SQI, single consumer line, single producer (%s)\n\n", *alg)
	lo, hi := *from, *to
	if len(evs) > 0 {
		if lo == 0 {
			// Default window: the middle of the run, where the paper's
			// phase transition shows.
			lo = evs[len(evs)/3].Tick
		}
		if hi == 0 {
			hi = evs[2*len(evs)/3].Tick
		}
	}
	trace.RenderTimeline(os.Stdout, evs, lo, hi, 100)

	fmt.Println()
	report.Table(os.Stdout, [][]string{
		{"metric", "value"},
		{"transactions", fmt.Sprint(sum.Transactions)},
		{"on-demand", fmt.Sprint(sum.OnDemand)},
		{"speculative", fmt.Sprint(sum.Speculative)},
		{"request-hindered (dark in Fig. 7)", fmt.Sprint(sum.Hindered)},
		{"total potential saving (cycles)", fmt.Sprint(sum.TotalSavingTk)},
		{"mean data-arrive→use latency (cycles)", fmt.Sprintf("%.1f", sum.MeanLatencyTk)},
		{"execution time (cycles)", fmt.Sprint(res.Ticks)},
	}, true)
}

func runPhases(bench, alg string, period uint64, csv bool) {
	w, ok := workloads.ByName(bench)
	if !ok {
		if w, ok = workloads.ExtendedByName(bench); !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", bench)
			os.Exit(2)
		}
	}
	sys := spamer.NewSystem(spamer.Config{Algorithm: alg})
	w.Build(sys, 1)
	s := stats.Attach(sys, period)
	res := sys.Run()
	if csv {
		if err := s.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%s (%s): %d cycles, %d messages\n\n", bench, alg, res.Ticks, res.Popped)
	fmt.Println("throughput phases (messages out per kilocycle):")
	table := [][]string{{"from", "to", "rate"}}
	for _, p := range s.Phases(0.35) {
		table = append(table, []string{fmt.Sprint(p.StartTick), fmt.Sprint(p.EndTick), fmt.Sprintf("%.2f", p.Rate)})
	}
	report.Table(os.Stdout, table, true)
}
