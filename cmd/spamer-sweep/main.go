// Command spamer-sweep regenerates Figure 11: the sensitivity of the
// tuned delay-prediction algorithm's parameters (ζ, τ, δ, α, β),
// plotting normalized end-to-end execution time ("delay") against the
// normalized dynamic energy of SRD pushes, per benchmark, with the
// baseline at (1, 1).
//
// The grid points of every benchmark are independent simulations;
// -parallel fans them across a bounded worker pool (internal/harness)
// while keeping the printed output identical to a sequential run.
//
// Usage:
//
//	spamer-sweep [-bench FIR,firewall,...] [-scale N] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spamer/internal/experiments"
	"spamer/internal/harness"
	"spamer/internal/profiling"
	"spamer/internal/report"
	"spamer/internal/workloads"
)

func main() {
	benchList := flag.String("bench", strings.Join(workloads.Names(), ","),
		"comma-separated benchmarks to sweep")
	scale := flag.Int("scale", 1, "message-count multiplier")
	svgDir := flag.String("svg", "", "also write per-benchmark scatter SVGs into this directory")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	stopProfiles := profiling.Start(*cpuprofile, *memprofile)
	defer stopProfiles()

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	start := time.Now()
	runs := 0
	for _, name := range strings.Split(*benchList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		points, err := experiments.Figure11Parallel(context.Background(), name, *scale, harness.Options{
			Workers:    *parallel,
			OnProgress: harness.ProgressPrinter(os.Stderr, "fig11 "+name),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runs += len(points)
		labels := make([]string, len(points))
		xs := make([]float64, len(points))
		ys := make([]float64, len(points))
		for i, p := range points {
			labels[i], xs[i], ys[i] = p.Label, p.DelayNorm, p.EnergyNorm
		}
		report.Scatter(os.Stdout, "Figure 11: "+name, labels, xs, ys, "delay norm", "energy norm")
		if *svgDir != "" {
			f, err := os.Create(fmt.Sprintf("%s/fig11-%s.svg", *svgDir, name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := report.SVGScatter(f, "Figure 11: "+name, "delay (normalized)", "energy (normalized)", labels, xs, ys); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Println()
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "sweep: %d simulations on %d workers in %v (%.1f runs/s)\n",
		runs, harness.Workers(*parallel), elapsed.Round(time.Millisecond),
		float64(runs)/elapsed.Seconds())
	fmt.Println("closer to the origin is better; VL(baseline) anchors (1, 1)")
}
