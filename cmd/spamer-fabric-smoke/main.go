// Command spamer-fabric-smoke is the end-to-end exercise of the
// distributed simulation fabric with real processes: it builds
// spamer-serve and spamer-worker, starts a coordinator plus two worker
// processes on loopback, submits a golden spec batch over the service
// API, and byte-compares the distributed outcomes against an
// in-process run. It then SIGKILLs one worker and submits a second
// batch: the coordinator must observe the broken lease, re-dispatch to
// the survivor, and still return outcomes byte-identical to local —
// the retry path under genuine process death (docs/FABRIC.md).
//
// Exit status 0 means the fabric survived; any divergence, timeout, or
// missed retry is fatal. Run via `make fabric-smoke`.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"spamer/internal/experiments"
	"spamer/internal/harness"
)

// batch1/batch2 are the golden batches: same benchmarks, distinct
// labels, so batch2 has fresh canonical hashes and cannot be answered
// from the store — its shards must be placed, which is what drives one
// of them onto the dead worker.
const (
	batch1 = `[{"benchmark":"ping-pong","algorithms":["vl"],"label":"s1"},
{"benchmark":"ping-pong","algorithms":["vl","0delay"],"label":"s2"},
{"benchmark":"incast","algorithms":["vl"],"label":"s3"}]`
	batch2 = `[{"benchmark":"ping-pong","algorithms":["vl"],"label":"k1"},
{"benchmark":"ping-pong","algorithms":["vl","0delay"],"label":"k2"},
{"benchmark":"incast","algorithms":["vl"],"label":"k3"}]`
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fabric-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("fabric-smoke: OK")
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	bin, err := os.MkdirTemp("", "fabric-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(bin)
	for _, cmd := range []string{"spamer-serve", "spamer-worker"} {
		step := exec.CommandContext(ctx, "go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd)
		step.Stderr = os.Stderr
		if err := step.Run(); err != nil {
			return fmt.Errorf("building %s: %w", cmd, err)
		}
	}

	coordPort, err := freePort()
	if err != nil {
		return err
	}
	coordURL := fmt.Sprintf("http://127.0.0.1:%d", coordPort)
	// Expiry is deliberately long: after the SIGKILL below the dead
	// worker must still look present so placement picks it and the
	// retry path — not presence reaping — handles the death.
	serve := exec.CommandContext(ctx, filepath.Join(bin, "spamer-serve"),
		"-addr", fmt.Sprintf("127.0.0.1:%d", coordPort),
		"-fabric-heartbeat", "200ms", "-fabric-expire", "1m",
		"-fabric-dispatch-timeout", "1m")
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		return err
	}
	defer serve.Process.Kill()
	if err := waitHTTP(ctx, coordURL+"/healthz"); err != nil {
		return fmt.Errorf("coordinator never came up: %w", err)
	}

	workers := make(map[string]*exec.Cmd)
	for _, id := range []string{"w1", "w2"} {
		port, err := freePort()
		if err != nil {
			return err
		}
		w := exec.CommandContext(ctx, filepath.Join(bin, "spamer-worker"),
			"-coordinator", coordURL,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-advertise", fmt.Sprintf("http://127.0.0.1:%d", port),
			"-id", id, "-slots", "1", "-parallel", "1")
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			return err
		}
		defer w.Process.Kill()
		workers[id] = w
	}
	if err := waitMetric(ctx, coordURL, "spamer_fabric_workers_present 2"); err != nil {
		return fmt.Errorf("workers never registered: %w", err)
	}
	fmt.Println("fabric-smoke: coordinator + 2 workers up")

	// Phase 1: golden batch through the full wire path must equal the
	// in-process run byte for byte.
	if err := submitAndCompare(ctx, coordURL, batch1); err != nil {
		return fmt.Errorf("golden batch: %w", err)
	}
	fmt.Println("fabric-smoke: golden batch byte-identical to local run")

	// Phase 2: SIGKILL w1 — no drain, no deregistration, exactly a died
	// process — then submit fresh work. Placement still sees w1 live
	// (long expiry, recent heartbeat), leases a shard to it, hits the
	// dead socket, and must recover via re-dispatch to w2.
	if err := workers["w1"].Process.Kill(); err != nil {
		return err
	}
	workers["w1"].Wait()
	fmt.Println("fabric-smoke: killed w1 (SIGKILL)")
	if err := submitAndCompare(ctx, coordURL, batch2); err != nil {
		return fmt.Errorf("post-kill batch: %w", err)
	}
	// Dispatch is synchronous, so by job completion the broken lease has
	// already been observed and re-dispatched — the counter must show it.
	m, err := metricsBody(ctx, coordURL)
	if err != nil {
		return err
	}
	if strings.Contains(m, "spamer_fabric_retries_total 0\n") {
		return fmt.Errorf("post-kill batch completed without any retry; the dead worker was never leased:\n%s", m)
	}
	fmt.Println("fabric-smoke: post-kill batch re-leased onto survivor, outcomes byte-identical")
	return nil
}

// submitAndCompare POSTs the batch to the service, waits for the job,
// and byte-compares its outcomes against experiments.RunSpecsParallel
// in this process.
func submitAndCompare(ctx context.Context, base, batch string) error {
	specs, err := experiments.ReadSpecs(strings.NewReader(batch))
	if err != nil {
		return err
	}
	local := experiments.RunSpecsParallel(ctx, specs, harness.Options{Workers: 1})
	var want []experiments.Outcome
	for _, r := range local {
		if r.Err != nil {
			return fmt.Errorf("local run failed: %w", r.Err)
		}
		want = append(want, r.Outcomes...)
	}

	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/jobs", strings.NewReader(batch))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	var st struct {
		ID       string                `json:"id"`
		State    string                `json:"state"`
		Outcomes []experiments.Outcome `json:"outcomes"`
		Errors   []string              `json:"errors"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for st.State != "done" {
		if st.State == "failed" {
			return fmt.Errorf("job failed: %v", st.Errors)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %q", st.ID, st.State)
		}
		time.Sleep(100 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			return err
		}
	}

	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(st.Outcomes)
	if string(wj) != string(gj) {
		return fmt.Errorf("outcomes not byte-identical:\nlocal:  %s\nfabric: %s", wj, gj)
	}
	return nil
}

func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port, nil
}

func waitHTTP(ctx context.Context, url string) error {
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func metricsBody(ctx context.Context, base string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func waitMetric(ctx context.Context, base, needle string) error {
	for {
		m, err := metricsBody(ctx, base)
		if err == nil && strings.Contains(m, needle) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("waiting for %q: %w\nlast metrics:\n%s", needle, ctx.Err(), m)
		case <-time.After(100 * time.Millisecond):
		}
	}
}
