// Command spamer-bench regenerates the core evaluation artifacts of the
// SPAMeR paper: Table 1 (hardware configuration), Table 2 (benchmarks),
// Figure 8 (speedup over Virtual-Link), Figure 9 (execution-time
// breakdown), Figure 10 (push failure rates and bus utilization), and
// the §4.3 library-inlining study.
//
// The matrix cells and inlining pairs are independent simulations;
// -parallel fans them across a bounded worker pool (internal/harness)
// with output identical to a sequential run.
//
// Usage:
//
//	spamer-bench [-what all|config|workloads|fig8|fig9|fig10|inline] [-scale N] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"spamer/internal/experiments"
	"spamer/internal/harness"
	"spamer/internal/report"
)

var pool harness.Options

func main() {
	what := flag.String("what", "all", "which artifact to regenerate: all|config|workloads|fig8|fig9|fig10|inline")
	scale := flag.Int("scale", 1, "message-count multiplier for every workload")
	svgDir := flag.String("svg", "", "also write figure SVGs into this directory")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Parse()
	pool = harness.Options{Workers: *parallel}

	needMatrix := map[string]bool{"all": true, "fig8": true, "fig9": true, "fig10": true}
	var m *experiments.Matrix
	if needMatrix[*what] {
		fmt.Fprintf(os.Stderr, "running %d benchmarks x %d configurations (scale %d) on %d workers...\n",
			8, 4, *scale, harness.Workers(*parallel))
		var err error
		pool.OnProgress = harness.ProgressPrinter(os.Stderr, "matrix")
		m, err = experiments.RunMatrixParallel(context.Background(), *scale, pool)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pool.OnProgress = nil
	}

	if *svgDir != "" && m != nil {
		if err := writeSVGs(*svgDir, m); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	switch *what {
	case "all":
		printConfig()
		fmt.Println()
		printWorkloads()
		fmt.Println()
		printFig8(m)
		fmt.Println()
		printFig9(m)
		fmt.Println()
		printFig10(m)
		fmt.Println()
		printInline(*scale)
	case "config":
		printConfig()
	case "workloads":
		printWorkloads()
	case "fig8":
		printFig8(m)
	case "fig9":
		printFig9(m)
	case "fig10":
		printFig10(m)
	case "inline":
		printInline(*scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown -what %q\n", *what)
		os.Exit(2)
	}
}

// writeSVGs renders Figures 8 and 10 as SVG files.
func writeSVGs(dir string, m *experiments.Matrix) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	algs := m.Configs[1:]
	rows := experiments.Figure8(m)
	groups := make([]string, len(rows))
	speed := make([][]float64, len(rows))
	for i, r := range rows {
		groups[i] = r.Benchmark
		for _, a := range algs {
			speed[i] = append(speed[i], r.Speedups[a])
		}
	}
	f, err := os.Create(dir + "/fig8-speedup.svg")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.SVGGroupedBars(f, "Figure 8: speedup over Virtual-Link", groups, algs, speed, 1.0); err != nil {
		return err
	}

	cells := experiments.Figure10(m)
	fail := make([][]float64, len(m.Benchmarks))
	bus := make([][]float64, len(m.Benchmarks))
	for i, b := range m.Benchmarks {
		for _, a := range m.Configs {
			fail[i] = append(fail[i], cells[b][a].FailureRate*100)
			bus[i] = append(bus[i], cells[b][a].BusUtilization*100)
		}
	}
	for _, out := range []struct {
		name, title string
		vals        [][]float64
	}{
		{"fig10a-failure.svg", "Figure 10a: push failure rate (%)", fail},
		{"fig10b-bus.svg", "Figure 10b: bus utilization (%)", bus},
	} {
		g, err := os.Create(dir + "/" + out.name)
		if err != nil {
			return err
		}
		if err := report.SVGGroupedBars(g, out.title, m.Benchmarks, m.Configs, out.vals, 0); err != nil {
			g.Close()
			return err
		}
		g.Close()
	}
	fmt.Fprintln(os.Stderr, "wrote SVGs to", dir)
	return nil
}

func printConfig() {
	fmt.Println("Table 1: simulated hardware configuration")
	report.Table(os.Stdout, experiments.Table1Rows(), true)
}

func printWorkloads() {
	fmt.Println("Table 2: benchmarks")
	report.Table(os.Stdout, experiments.Table2Rows(), true)
}

func printFig8(m *experiments.Matrix) {
	rows := experiments.Figure8(m)
	algs := m.Configs[1:]
	fmt.Println("Figure 8: speedup over Virtual-Link (higher is better)")
	table := [][]string{{"benchmark", "VL(ms)"}}
	for _, a := range algs {
		table[0] = append(table[0], a)
	}
	for _, r := range rows {
		row := []string{r.Benchmark, fmt.Sprintf("%.3f", r.BaselineMS)}
		for _, a := range algs {
			row = append(row, fmt.Sprintf("%.2fx", r.Speedups[a]))
		}
		table = append(table, row)
	}
	geo := []string{"geomean", ""}
	for _, a := range algs {
		geo = append(geo, fmt.Sprintf("%.2fx", m.Geomean(a)))
	}
	table = append(table, geo)
	report.Table(os.Stdout, table, true)
	fmt.Println("paper reference geomeans: 0delay 1.45x, adapt 1.25x, tuned 1.33x")

	groups := make([]string, len(rows))
	values := make([][]float64, len(rows))
	for i, r := range rows {
		groups[i] = r.Benchmark
		for _, a := range algs {
			values[i] = append(values[i], r.Speedups[a])
		}
	}
	fmt.Println()
	report.GroupedBarChart(os.Stdout, "Figure 8 (bars):", groups, algs, values, "x")
}

func printFig9(m *experiments.Matrix) {
	cells := experiments.Figure9(m)
	fmt.Println("Figure 9: execution breakdown — avg consumer-cacheline cycles (millions), empty + non-empty")
	table := [][]string{{"benchmark", "config", "empty(M)", "non-empty(M)", "total(M)"}}
	for _, b := range m.Benchmarks {
		for _, alg := range m.Configs {
			c := cells[b][alg]
			table = append(table, []string{
				b, alg,
				fmt.Sprintf("%.3f", c.EmptyM),
				fmt.Sprintf("%.3f", c.NonEmptyM),
				fmt.Sprintf("%.3f", c.EmptyM+c.NonEmptyM),
			})
		}
	}
	report.Table(os.Stdout, table, true)
}

func printFig10(m *experiments.Matrix) {
	cells := experiments.Figure10(m)
	fmt.Println("Figure 10a: push failure rate / Figure 10b: bus utilization")
	table := [][]string{{"benchmark", "config", "failure", "bus util"}}
	for _, b := range m.Benchmarks {
		for _, alg := range m.Configs {
			c := cells[b][alg]
			table = append(table, []string{
				b, alg,
				fmt.Sprintf("%5.1f%%", c.FailureRate*100),
				fmt.Sprintf("%5.1f%%", c.BusUtilization*100),
			})
		}
	}
	report.Table(os.Stdout, table, true)
}

func printInline(scale int) {
	opts := pool
	opts.OnProgress = harness.ProgressPrinter(os.Stderr, "inline")
	rows, err := experiments.InlineStudyParallel(context.Background(), scale, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("§4.3 library inlining study (VL baseline, inlined vs function-call)")
	table := [][]string{{"benchmark", "inline speedup"}}
	prod := 1.0
	for _, r := range rows {
		table = append(table, []string{r.Benchmark, fmt.Sprintf("%.3fx", r.Speedup)})
		prod *= r.Speedup
	}
	n := float64(len(rows))
	table = append(table, []string{"geomean", fmt.Sprintf("%.3fx", math.Pow(prod, 1/n))})
	report.Table(os.Stdout, table, true)
	fmt.Println("paper reference: 1.02x average")
}
