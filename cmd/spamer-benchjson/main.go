// Command spamer-benchjson converts `go test -bench -benchmem` output
// into a machine-readable JSON file so the repository's performance
// trajectory is diffable across PRs (BENCH_<n>.json at the repo root,
// written by `make bench`).
//
// It reads the benchmark output on stdin, echoes it unchanged to stdout
// (so the human-readable stream survives the pipe), and writes a JSON
// object keyed by "<package>/<BenchmarkName>" to -out:
//
//	go test -bench=. -benchmem ./... | spamer-benchjson -out BENCH_3.json
//
// Sub-benchmarks keep their slash-separated names; the trailing
// -<GOMAXPROCS> suffix Go appends is stripped so keys stay stable across
// machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "BENCH.json", "output JSON path")
	flag.Parse()

	entries := map[string]Entry{}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		e := Entry{Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		key := m[1]
		if pkg != "" {
			key = pkg + "/" + m[1]
		}
		entries[key] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "spamer-benchjson:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "spamer-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamer-benchjson:", err)
		os.Exit(1)
	}
	// encoding/json sorts map keys, so the file is stable and diffable.
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		fmt.Fprintln(os.Stderr, "spamer-benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "spamer-benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "spamer-benchjson: wrote %d benchmarks to %s\n", len(entries), *out)
}
