// Command spamer-benchjson converts `go test -bench -benchmem` output
// into a machine-readable JSON file so the repository's performance
// trajectory is diffable across PRs (BENCH_<n>.json at the repo root,
// written by `make bench`).
//
// It reads the benchmark output on stdin, echoes it unchanged to stdout
// (so the human-readable stream survives the pipe), and writes a JSON
// object keyed by "<package>/<BenchmarkName>" to -out:
//
//	go test -bench=. -benchmem ./... | spamer-benchjson -out BENCH_4.json
//
// Sub-benchmarks keep their slash-separated names; the trailing
// -<GOMAXPROCS> suffix Go appends is stripped so keys stay stable across
// machines.
//
// -baseline OLD.json additionally prints a benchstat-style delta table
// (ns/op and allocs/op, old vs new, percent change) to stderr. The
// comparison is informational — it never affects the exit status — so
// CI can surface regressions without gating merges on noisy timings.
//
// -gate turns the comparison into a check: the exit status becomes
// nonzero when the sequential SpecRun benchmark regresses more than
// -gate-pct in ns/op against the baseline, when any benchmark present
// in both runs allocates more per op than it used to, when any
// MillionMessage lane-count variant allocates at all, or when a
// parallel SpecRun allocates more per op than its like-for-like
// sequential run (SpecRunSeqHalo — same workload, sequential kernel).
// The parity check applies only to benchmarks that ran at GOMAXPROCS=1,
// where alloc counts carry no scheduler noise (see parallelViolations).
// On runners with at least four CPUs the gate additionally requires
// MillionMessage domains=4 (when run at GOMAXPROCS >= 4) to beat the
// sequential wall-clock; on smaller runners that check is skipped
// (lanes cannot run concurrently there, so the comparison would
// measure the host, not the code). The
// bench-ci step is blocking, so the timing bar is deliberately narrow
// in scope and wide in tolerance (-gate-pct defaults to 25); the
// allocs/op checks are exact — counts don't jitter — and are the
// gate's primary teeth. -gate requires a readable -baseline: a missing
// or malformed baseline file is itself a gate failure, never a silent
// downgrade to the allocation checks alone.
//
// The JSON file carries an "env" header (gomaxprocs, numcpu, Go
// version) alongside the "benchmarks" map, so a baseline records the
// machine it was measured on; -baseline warns — never fails — when the
// baseline's core count differs from the current runner's, since
// timing deltas across different machines are not comparable. Files
// from before the header (flat benchmark maps) are still accepted as
// baselines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result. GoMaxProcs is the -N suffix
// Go appends to the benchmark name (stripped from the key so keys stay
// stable across machines, but kept here: the parallel parity gate only
// applies to single-P runs, where alloc counts are deterministic).
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
	GoMaxProcs  int     `json:"gomaxprocs,omitempty"`
}

// Env records the machine a benchmark file was measured on.
type Env struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	GoVersion  string `json:"goversion"`
}

// File is the on-disk schema: an environment header plus the benchmark
// map. Pre-header files were the bare map; readBaseline accepts both.
type File struct {
	Env        Env              `json:"env"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func currentEnv() Env {
	return Env{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), GoVersion: runtime.Version()}
}

var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "BENCH.json", "output JSON path")
	baseline := flag.String("baseline", "", "prior BENCH_<n>.json to diff against (delta table on stderr; never fails the run)")
	gate := flag.Bool("gate", false, "exit nonzero on SpecRun ns/op regression past -gate-pct vs -baseline, any allocs/op increase, a MillionMessage alloc at any lane count, or a parallel SpecRun allocating above its SpecRunSeqHalo twin")
	gatePct := flag.Float64("gate-pct", 25, "ns/op regression percentage -gate tolerates on SpecRun benchmarks")
	flag.Parse()

	entries := map[string]Entry{}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		procs, _ := strconv.Atoi(m[2])
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		e := Entry{Iterations: iters, GoMaxProcs: procs}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		key := m[1]
		if pkg != "" {
			key = pkg + "/" + m[1]
		}
		entries[key] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "spamer-benchjson:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "spamer-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamer-benchjson:", err)
		os.Exit(1)
	}
	// encoding/json sorts map keys, so the file is stable and diffable.
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(File{Env: currentEnv(), Benchmarks: entries}); err != nil {
		fmt.Fprintln(os.Stderr, "spamer-benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "spamer-benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "spamer-benchjson: wrote %d benchmarks to %s\n", len(entries), *out)
	var old map[string]Entry
	var oldErr error
	if *baseline != "" {
		old, oldErr = printDeltas(*baseline, entries)
	}
	if *gate {
		// A gate without a readable baseline would silently degrade to
		// the MillionMessage-allocs check alone — every regression bar
		// it exists for would pass vacuously. Refuse instead: a stale
		// BENCH_BASELINE (file renamed, not committed) must fail CI
		// loudly, not weaken it.
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "spamer-benchjson: GATE: -gate requires -baseline")
			os.Exit(1)
		}
		if oldErr != nil {
			fmt.Fprintf(os.Stderr, "spamer-benchjson: GATE: baseline %s unusable: %v\n", *baseline, oldErr)
			os.Exit(1)
		}
		if bad := gateViolations(old, entries, *gatePct); len(bad) > 0 {
			for _, v := range bad {
				fmt.Fprintln(os.Stderr, "spamer-benchjson: GATE:", v)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "spamer-benchjson: gate passed")
	}
}

// gateViolations applies the perf gate: SpecRun ns/op may not regress
// more than pct percent against the baseline, no benchmark may gain
// allocs/op, every MillionMessage lane-count variant must stay
// allocation-free (checked even without a baseline entry — the
// benchmarks are newer than some baselines), parallel SpecRun may not
// allocate more per op than its like-for-like sequential run, and on
// multi-core runners MillionMessage domains=4 must beat the sequential
// wall-clock.
func gateViolations(old, entries map[string]Entry, pct float64) []string {
	var bad []string
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	bad = append(bad, parallelViolations(entries)...)
	for _, name := range names {
		e := entries[name]
		if strings.Contains(name, "MillionMessage/") && e.AllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("%s allocates %.0f/op; the message hot path must be allocation-free at every lane count", name, e.AllocsPerOp))
		}
		o, ok := old[name]
		if !ok {
			continue
		}
		// Timing is gated on the sequential SpecRun only: the parallel
		// variants' wall time is a function of core contention on the
		// runner, not of the code, and swings far past any usable bar.
		// They are still held to the exact allocs/op check below.
		if strings.Contains(name, "SpecRun") && !strings.Contains(name, "Parallel") &&
			o.NsPerOp > 0 && e.NsPerOp > o.NsPerOp*(1+pct/100) {
			bad = append(bad, fmt.Sprintf("%s regressed %.1f%% ns/op (%.0f -> %.0f)", name, (e.NsPerOp-o.NsPerOp)/o.NsPerOp*100, o.NsPerOp, e.NsPerOp))
		}
		if e.AllocsPerOp > o.AllocsPerOp {
			bad = append(bad, fmt.Sprintf("%s allocs/op rose %.0f -> %.0f", name, o.AllocsPerOp, e.AllocsPerOp))
		}
	}
	return bad
}

// parallelViolations applies the gates that compare entries within the
// current run (no baseline involved): a parallel SpecRun variant may
// not allocate more per op than its like-for-like sequential run
// (SpecRunSeqHalo — same workload and scale, sequential kernel), and
// on runners with at least four CPUs MillionMessage domains=4 must not
// be slower than MillionMessage sequential. Both checks pair entries
// by package prefix, so per-package benchmark sets gate independently.
//
// The alloc-parity check only fires on benchmarks that ran at
// GOMAXPROCS=1. With more Ps the Go runtime itself allocates in
// proportion to real scheduler contention (sudogs, thread spin-up) —
// tens of allocs per SpecRun that measure the scheduler, not the
// simulator, and never amortize away. Single-P runs have none of that,
// so their counts are exact and lane-count-invariant; make
// bench-parallel pins the parity stage accordingly.
func parallelViolations(entries map[string]Entry) []string {
	var bad []string
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := entries[name]
		i := strings.LastIndex(name, "/Benchmark")
		if i < 0 {
			continue
		}
		pkg := name[:i]
		if strings.Contains(name, "SpecRunParallelDomains") && e.GoMaxProcs == 1 {
			base, ok := entries[pkg+"/BenchmarkSpecRunSeqHalo"]
			if !ok {
				continue // parity needs the sequential twin in the same run
			}
			if e.AllocsPerOp > base.AllocsPerOp {
				bad = append(bad, fmt.Sprintf("%s allocates %.0f/op, above its sequential like-for-like SpecRunSeqHalo at %.0f/op", name, e.AllocsPerOp, base.AllocsPerOp))
			}
		}
		if strings.HasSuffix(name, "MillionMessage/domains=4") && runtime.NumCPU() >= 4 && e.GoMaxProcs >= 4 {
			seq, ok := entries[pkg+"/BenchmarkMillionMessage/sequential"]
			if ok && seq.NsPerOp > 0 && e.NsPerOp > seq.NsPerOp {
				bad = append(bad, fmt.Sprintf("%s is slower than sequential on a %d-CPU runner (%.0f vs %.0f ns/op)", name, runtime.NumCPU(), e.NsPerOp, seq.NsPerOp))
			}
		}
	}
	return bad
}

// printDeltas renders a benchstat-style comparison of entries against a
// prior BENCH_<n>.json on stderr and returns the parsed baseline for
// the optional gate. A read or parse failure is reported on stderr and
// returned: without -gate it stays informational (the delta table is a
// diagnostic), with -gate the caller turns it into a hard failure so a
// missing baseline cannot silently weaken the check.
func printDeltas(path string, entries map[string]Entry) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spamer-benchjson: baseline:", err)
		return nil, err
	}
	var bf File
	var old map[string]Entry
	if err := json.Unmarshal(data, &bf); err == nil && bf.Benchmarks != nil {
		old = bf.Benchmarks
		// A baseline measured on a different core count makes every
		// timing delta a statement about the machines, not the code.
		// Warn — never fail — so cross-machine comparisons stay possible
		// but are visibly suspect.
		if bf.Env.NumCPU != 0 && bf.Env.NumCPU != runtime.NumCPU() {
			fmt.Fprintf(os.Stderr,
				"spamer-benchjson: WARNING: baseline %s was measured on %d CPUs, this runner has %d — ns/op deltas are not comparable\n",
				path, bf.Env.NumCPU, runtime.NumCPU())
		}
	} else if err := json.Unmarshal(data, &old); err != nil {
		// Pre-header schema: the file is the bare benchmark map.
		fmt.Fprintln(os.Stderr, "spamer-benchjson: baseline:", err)
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "\nvs %s:\n", path)
	fmt.Fprintf(os.Stderr, "%-64s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs")
	for _, name := range names {
		e := entries[name]
		o, ok := old[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "%-64s %14s %14.0f %8s %10.0f\n", name, "-", e.NsPerOp, "new", e.AllocsPerOp)
			continue
		}
		delta := "~"
		if o.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", (e.NsPerOp-o.NsPerOp)/o.NsPerOp*100)
		}
		allocs := fmt.Sprintf("%.0f", e.AllocsPerOp)
		if e.AllocsPerOp != o.AllocsPerOp {
			allocs = fmt.Sprintf("%.0f->%.0f", o.AllocsPerOp, e.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "%-64s %14.0f %14.0f %8s %10s\n", name, o.NsPerOp, e.NsPerOp, delta, allocs)
	}
	// Report disappeared benchmarks only for packages this run actually
	// benchmarked: bench-ci compares a package subset against the full
	// baseline, and flagging every out-of-scope benchmark as "removed"
	// would drown the table.
	ranPkg := map[string]bool{}
	for name := range entries {
		ranPkg[name[:strings.LastIndex(name, "/")]] = true
	}
	removed := make([]string, 0)
	for name := range old {
		if i := strings.LastIndex(name, "/"); i >= 0 && ranPkg[name[:i]] {
			if _, ok := entries[name]; !ok {
				removed = append(removed, name)
			}
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(os.Stderr, "%-64s removed\n", name)
	}
	return old, nil
}
