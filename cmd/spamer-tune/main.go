// Command spamer-tune implements the paper's stated future work: search
// for a better tuned-algorithm parameter set per benchmark
// (coordinate descent from the published ζ=256, τ=96, δ=64, α=1, β=2)
// and report the improvement against the Figure 11 objective (distance
// from the origin in normalized delay/energy space).
//
// Each coordinate-descent round's candidate neighbours are independent
// simulations; -parallel evaluates them on a bounded worker pool
// (internal/harness) without changing the search trajectory.
//
// Usage:
//
//	spamer-tune [-bench FIR,halo,...] [-rounds N] [-scale N] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spamer/internal/harness"
	"spamer/internal/report"
	"spamer/internal/tuner"
	"spamer/internal/workloads"
)

func main() {
	benchList := flag.String("bench", strings.Join(workloads.Names(), ","), "benchmarks to tune")
	rounds := flag.Int("rounds", 6, "coordinate-descent rounds")
	scale := flag.Int("scale", 1, "message-count multiplier")
	parallel := flag.Int("parallel", 0, "worker pool size for each round's candidate evaluations (0 = GOMAXPROCS)")
	flag.Parse()

	table := [][]string{{"benchmark", "published score", "best score", "best params", "gain", "evals"}}
	for _, name := range strings.Split(*benchList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := tuner.NewSearch(name, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s.MaxRounds = *rounds
		s.Workers = *parallel
		fmt.Fprintf(os.Stderr, "tuning %s (%d workers)...\n", name, harness.Workers(*parallel))
		start := time.Now()
		res := s.Run()
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "tuned %s: %d evals in %v (%.1f runs/s)\n",
			name, res.Evals, elapsed.Round(time.Millisecond), float64(res.Evals)/elapsed.Seconds())
		table = append(table, []string{
			res.Benchmark,
			fmt.Sprintf("%.4f", res.Start.Score),
			fmt.Sprintf("%.4f", res.Best.Score),
			res.Best.Params.String(),
			fmt.Sprintf("%.1f%%", (res.Improvement-1)*100),
			fmt.Sprint(res.Evals),
		})
	}
	fmt.Println("Per-benchmark tuned-parameter search (objective: Figure 11 distance to origin)")
	report.Table(os.Stdout, table, true)
	fmt.Println("\nthe paper hardens one set for all benchmarks; the search quantifies what")
	fmt.Println("per-benchmark reconfiguration (its stated future work) would buy.")
}
