// Command spamer-latency regenerates the Figure 1 comparison: the
// cross-core message latency of a coherence-based software queue (Lc),
// the Virtual-Link hardware queue (Lv), and SPAMeR with speculative
// pushes (Ls), demonstrating Lc > Lv > Ls.
package main

import (
	"fmt"
	"os"

	"spamer/internal/experiments"
	"spamer/internal/report"
)

func main() {
	r := experiments.Figure1()
	fmt.Printf("Figure 1: cross-core message queue communication latency (%d messages, closed loop)\n\n", r.Messages)
	report.BarChart(os.Stdout, "mean latency, cycles (lower is better):",
		[]string{"Lc coherence queue (MOESI)", "Lv Virtual-Link", "Ls SPAMeR"},
		[]float64{r.Lc, r.Lv, r.Ls}, "")
	fmt.Println()
	if r.Lc > r.Lv && r.Lv > r.Ls {
		fmt.Println("ordering Lc > Lv > Ls reproduced")
	} else {
		fmt.Println("WARNING: expected ordering Lc > Lv > Ls not observed")
		os.Exit(1)
	}

	fmt.Println()
	fmt.Println("application-level comparison (end-to-end cycles):")
	rows := experiments.SoftwareQueueStudy()
	table := [][]string{{"workload", "SW coherent queue", "Virtual-Link", "SPAMeR", "VL vs SW", "SPAMeR vs SW"}}
	for _, row := range rows {
		table = append(table, []string{
			row.Workload,
			fmt.Sprint(row.SWTicks), fmt.Sprint(row.VLTicks), fmt.Sprint(row.SpTicks),
			fmt.Sprintf("%.2fx", row.VLOverSW), fmt.Sprintf("%.2fx", row.SpOverSW),
		})
	}
	report.Table(os.Stdout, table, true)
}
