// Command spamer-ablate runs the ablation and sensitivity studies that
// go beyond the paper's own figures: the wider speculation-algorithm
// space §3.5 sketches (history-based, perceptron-style,
// profiling-guided) plus the dynamic-reconfiguration future-work
// variant; SRD sizing; interconnect topology (hop latency, channel
// count — explicitly deferred by the paper); and the performance cost
// of the §3.6 timing-obfuscation mitigation.
//
// Every study is a set of independent simulations; -parallel fans them
// across a bounded worker pool (internal/harness) with output identical
// to a sequential run.
//
// Usage:
//
//	spamer-ablate [-what predictors|srd|hop|channels|devices|obfuscation|all] [-scale N] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"spamer/internal/experiments"
	"spamer/internal/harness"
	"spamer/internal/report"
)

var workers int

func opts(prefix string) harness.Options {
	return harness.Options{Workers: workers, OnProgress: harness.ProgressPrinter(os.Stderr, prefix)}
}

func main() {
	what := flag.String("what", "all", "study: predictors|srd|hop|channels|devices|obfuscation|all")
	scale := flag.Int("scale", 1, "message-count multiplier")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Parse()
	workers = *parallel

	run := map[string]func(int){
		"predictors":  predictors,
		"srd":         srd,
		"hop":         hop,
		"channels":    channels,
		"devices":     devices,
		"obfuscation": obfuscation,
	}
	if *what == "all" {
		for _, k := range []string{"predictors", "srd", "hop", "channels", "devices", "obfuscation"} {
			run[k](*scale)
			fmt.Println()
		}
		return
	}
	f, ok := run[*what]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -what %q\n", *what)
		os.Exit(2)
	}
	f(*scale)
}

func predictors(scale int) {
	fmt.Println("Ablation: delay-prediction algorithm space (speedup over VL)")
	rows, err := experiments.PredictorStudyParallel(context.Background(), scale, opts("predictors"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	names := experiments.PredictorNames()
	table := [][]string{append([]string{"benchmark"}, names...)}
	for _, r := range rows {
		row := []string{r.Benchmark}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.2fx", r.Speedups[n]))
		}
		table = append(table, row)
	}
	report.Table(os.Stdout, table, true)
}

func srd(scale int) {
	fmt.Println("Ablation: SRD structure sizing on firewall (tuned vs VL at each size)")
	points, err := experiments.SRDEntriesSweepParallel(context.Background(), "firewall", []int{8, 16, 32, 64, 128}, scale, opts("srd"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printSweep("entries", points)
}

func hop(scale int) {
	fmt.Println("Ablation: hop latency on FIR (0delay vs VL at each latency)")
	points, err := experiments.HopLatencySweepParallel(context.Background(), "FIR", []uint64{6, 12, 24, 48}, scale, opts("hop"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printSweep("hop cycles", points)
}

func channels(scale int) {
	fmt.Println("Ablation: interconnect channels on halo (0delay vs VL at each width)")
	points, err := experiments.BusChannelsSweepParallel(context.Background(), "halo", []int{1, 2, 4, 8}, scale, opts("channels"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printSweep("channels", points)
}

func devices(scale int) {
	fmt.Println("Ablation: routing devices on halo (0delay vs VL at each count)")
	points, err := experiments.DevicesSweepParallel(context.Background(), "halo", []int{1, 2, 4}, scale, opts("devices"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printSweep("devices", points)
}

func obfuscation(scale int) {
	fmt.Println("Ablation: §3.6 timing obfuscation cost (tuned, 32-cycle jitter bound)")
	rows, err := experiments.ObfuscationStudyParallel(context.Background(), 32, scale, opts("obfuscation"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	table := [][]string{{"benchmark", "plain (cycles)", "obfuscated", "overhead"}}
	for _, r := range rows {
		table = append(table, []string{
			r.Benchmark, fmt.Sprint(r.Plain), fmt.Sprint(r.Obf),
			fmt.Sprintf("%+.1f%%", r.Overhead*100),
		})
	}
	report.Table(os.Stdout, table, true)
}

func printSweep(xName string, points []experiments.SweepPoint) {
	table := [][]string{{xName, "SPAMeR cycles", "speedup vs VL"}}
	for _, p := range points {
		table = append(table, []string{fmt.Sprint(p.X), fmt.Sprint(p.Ticks), fmt.Sprintf("%.2fx", p.Speedup)})
	}
	report.Table(os.Stdout, table, true)
}
