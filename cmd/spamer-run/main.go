// Command spamer-run executes experiments described as JSON specs and
// emits machine-readable JSON outcomes, making reproduction scriptable
// and diffable. Reads one spec (or an array) from a file or stdin.
//
// Specs are independent simulations; -parallel fans them (one task per
// spec × algorithm) across a bounded worker pool (internal/harness)
// while keeping the emitted outcomes in spec order. A failing spec no
// longer aborts the batch: its error goes to stderr, every outcome
// that did complete is still written to stdout, and the exit status is
// nonzero.
//
// Usage:
//
//	spamer-run [-spec experiment.json] [-parallel N]
//	echo '{"benchmark":"FIR","algorithms":["vl","0delay"]}' | spamer-run
//
// Spec fields: benchmark, algorithms, scale, hop_latency, bus_channels,
// devices, no_inline, srd_entries, domains (multi-domain kernel worker
// lanes; 0 = sequential), tuned{zeta,tau,delta,alpha,beta},
// repeat (determinism check), label,
// extensions{allow_extended_workloads}.
//
// Instead of a named benchmark, a spec may carry an anonymous
// synthetic workload: shape{stages|producers/consumers, messages,
// prod_work, cons_work, lines, window, burst, burst_gap} with an
// optional open-loop arrival process
// arrival{process: poisson|mmpp|pareto, seed, mean_gap, users,
// bursty_gap, mean_dwell, alpha, max_gap, storm_every, storm_burst,
// ramp_period, ramp_peak} — see EXPERIMENTS.md, "Open-loop workloads".
// Open-loop chains are parallel-safe (domains > 0 allowed); arrival
// timelines are deterministic in (seed, endpoint).
//
// A shape may instead carry a workload DAG: shape{dag: {...}} with
// named stages, replica counts, compute distributions, edge policies,
// and optional recorded-trace replay (docs/WORKLOADS.md). Stage
// replay_file references are resolved relative to the spec file's
// directory (the working directory for stdin specs) before anything
// runs, so the content hash always covers the resolved trace. After a
// batch completes, a per-scenario SPAMeR-vs-VL speedup table is
// printed to stderr.
//
// -domains N overrides the domains field of every spec in the batch
// (parallel-safe benchmarks only; the spec validator rejects the rest).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"spamer/internal/experiments"
	"spamer/internal/harness"
	"spamer/internal/profiling"
	"spamer/internal/report"
)

func main() {
	specPath := flag.String("spec", "-", "spec file path, or - for stdin")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	domains := flag.Int("domains", -1, "override every spec's domains field (-1 = leave specs as written)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	stopProfiles := profiling.Start(*cpuprofile, *memprofile)

	var r io.Reader = os.Stdin
	if *specPath != "-" {
		f, err := os.Open(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	specs, err := experiments.ReadSpecs(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	traceDir := "."
	if *specPath != "-" {
		traceDir = filepath.Dir(*specPath)
	}
	if err := experiments.ResolveTraceFiles(specs, traceDir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *domains >= 0 {
		for i := range specs {
			specs[i].Domains = *domains
		}
	}

	results := experiments.RunSpecsParallel(context.Background(), specs, harness.Options{
		Workers: *parallel,
	})
	stopProfiles()
	failed := false
	var all []experiments.Outcome
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "spec %d: %v\n", res.Index, res.Err)
			failed = true
		}
		all = append(all, res.Outcomes...)
	}
	for _, o := range all {
		if p := o.Parallel; p != nil {
			// One-line parallel-efficiency summary per multi-domain run:
			// how many sync windows ran, how many domain-windows the
			// horizon tracking skipped, and the cross-domain traffic they
			// carried. Deterministic across lane counts, so it is safe to
			// diff between runs.
			perQ := 0.0
			if p.Quanta > 0 {
				perQ = float64(p.WindowsSkipped) / float64(p.Quanta)
			}
			fmt.Fprintf(os.Stderr,
				"parallel %s/%s: %d quanta, %d domain-windows skipped (%.1f/quantum), %d cross messages, %d undelivered high-water\n",
				o.Benchmark, o.Algorithm, p.Quanta, p.WindowsSkipped, perQ, p.CrossMessages, p.UndeliveredHW)
		}
	}
	printSpeedups(os.Stderr, all)
	if err := experiments.WriteOutcomes(os.Stdout, all); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

// printSpeedups renders the per-scenario SPAMeR-vs-VL speedup table:
// one row per benchmark/scenario (first-seen order), one column per
// algorithm, cells from each outcome's baseline-normalized speedup.
// Skipped when no outcome carries a speedup (no VL baseline ran).
func printSpeedups(w io.Writer, outs []experiments.Outcome) {
	var scenarios, algs []string
	si := map[string]int{}
	ai := map[string]int{}
	for _, o := range outs {
		if _, ok := si[o.Benchmark]; !ok {
			si[o.Benchmark] = len(scenarios)
			scenarios = append(scenarios, o.Benchmark)
		}
		if _, ok := ai[o.Algorithm]; !ok {
			ai[o.Algorithm] = len(algs)
			algs = append(algs, o.Algorithm)
		}
	}
	cells := make([][]float64, len(scenarios))
	for i := range cells {
		cells[i] = make([]float64, len(algs))
	}
	any := false
	for _, o := range outs {
		if o.SpeedupOverVL > 0 {
			cells[si[o.Benchmark]][ai[o.Algorithm]] = o.SpeedupOverVL
			any = true
		}
	}
	if !any {
		return
	}
	fmt.Fprintln(w)
	report.SpeedupTable(w, "speedup over vl", scenarios, algs, cells)
}
