// Command spamer-run executes experiments described as JSON specs and
// emits machine-readable JSON outcomes, making reproduction scriptable
// and diffable. Reads one spec (or an array) from a file or stdin.
//
// Usage:
//
//	spamer-run -spec experiment.json
//	echo '{"benchmark":"FIR","algorithms":["vl","0delay"]}' | spamer-run
//
// Spec fields: benchmark, algorithms, scale, hop_latency, bus_channels,
// devices, no_inline, srd_entries, tuned{zeta,tau,delta,alpha,beta},
// repeat (determinism check), label,
// extensions{allow_extended_workloads}.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spamer/internal/experiments"
)

func main() {
	specPath := flag.String("spec", "-", "spec file path, or - for stdin")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *specPath != "-" {
		f, err := os.Open(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	specs, err := experiments.ReadSpecs(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var all []experiments.Outcome
	for i := range specs {
		outs, err := specs[i].Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spec %d: %v\n", i, err)
			os.Exit(1)
		}
		all = append(all, outs...)
	}
	if err := experiments.WriteOutcomes(os.Stdout, all); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
