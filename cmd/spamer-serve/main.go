// Command spamer-serve runs the simulation-as-a-service daemon: a
// long-lived HTTP server that executes experiments.Spec jobs (the JSON
// cmd/spamer-run reads) on the internal/harness pool, with bounded
// admission (429 + Retry-After under overload), a content-addressed
// result cache, live SSE progress, and Prometheus metrics. See
// docs/SERVICE.md for the API.
//
// With -fabric (the default) the daemon is also the coordinator of the
// distributed simulation fabric (docs/FABRIC.md): spamer-worker
// processes register under /v1/fabric/, jobs shard by canonical spec
// hash onto the pool with queue-depth-aware placement and lease-based
// retry, and a shared content-addressed result store makes any
// worker's completed spec a cache hit for every client. With no
// workers attached, the coordinator's local fallback reproduces
// single-process behaviour exactly.
//
// Usage:
//
//	spamer-serve [-addr :8080] [-queue 64] [-jobs 1] [-parallel N]
//	             [-cache 256] [-run-timeout 0] [-drain-timeout 30s]
//	             [-fabric] [-fabric-heartbeat 2s] [-fabric-expire 6s]
//	             [-fabric-dispatch-timeout 10m] [-fabric-attempts 3]
//	             [-fabric-store 4096]
//
// SIGTERM/SIGINT triggers a graceful drain: admission stops, every
// admitted job finishes (bounded by -drain-timeout), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spamer/internal/fabric"
	"spamer/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 64, "admission queue depth (full queue returns 429)")
	jobs := flag.Int("jobs", 1, "jobs executed concurrently")
	parallel := flag.Int("parallel", 0, "simulations per job run concurrently (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", 256, "result cache entries (negative disables)")
	runTimeout := flag.Duration("run-timeout", 0, "per-simulation timeout (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	useFabric := flag.Bool("fabric", true, "coordinate a spamer-worker pool (docs/FABRIC.md)")
	fabricHeartbeat := flag.Duration("fabric-heartbeat", 2*time.Second, "heartbeat cadence told to workers")
	fabricExpire := flag.Duration("fabric-expire", 0, "presence deadline for silent workers (0 = 3x heartbeat)")
	fabricDispatch := flag.Duration("fabric-dispatch-timeout", 10*time.Minute, "lease bound for one dispatched spec shard")
	fabricAttempts := flag.Int("fabric-attempts", 3, "re-dispatches per spec before local fallback")
	fabricStore := flag.Int("fabric-store", 4096, "shared per-spec result store entries (negative disables)")
	flag.Parse()

	var coord *fabric.Coordinator
	if *useFabric {
		coord = fabric.NewCoordinator(fabric.CoordinatorOptions{
			HeartbeatEvery:  *fabricHeartbeat,
			ExpireAfter:     *fabricExpire,
			DispatchTimeout: *fabricDispatch,
			MaxAttempts:     *fabricAttempts,
			StoreEntries:    *fabricStore,
			LocalWorkers:    *parallel,
			RunTimeout:      *runTimeout,
		})
	}
	srv := service.New(service.Options{
		QueueDepth:   *queue,
		JobWorkers:   *jobs,
		RunWorkers:   *parallel,
		RunTimeout:   *runTimeout,
		CacheEntries: *cacheEntries,
		Fabric:       coord,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	mode := "single-process"
	if coord != nil {
		mode = "fabric coordinator"
	}
	fmt.Fprintf(os.Stderr, "spamer-serve: listening on %s (queue=%d jobs=%d, %s)\n", *addr, *queue, *jobs, mode)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "spamer-serve: %v: draining (finishing admitted jobs, up to %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "spamer-serve: drain incomplete: %v\n", err)
			srv.Close()
			hs.Close()
			os.Exit(1)
		}
		hs.Shutdown(ctx)
		fmt.Fprintln(os.Stderr, "spamer-serve: drained cleanly")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "spamer-serve: %v\n", err)
			os.Exit(1)
		}
	}
}
