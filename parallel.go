package spamer

// This file assembles the multi-domain (parallel) system fabric behind
// Config.Domains: every simulated core is its own conservative simulation
// domain, and every routing device gets a hub domain holding the device,
// its specBuf, and the shared interconnect slice. The `Domains` knob only
// selects how many worker lanes execute those logical domains — the
// partitioning itself is fixed by the model — so the dispatch trace of a
// run is bit-identical for every Domains >= 1. See docs/SIMULATOR.md,
// "Parallel kernel".

import (
	"spamer/internal/config"
	"spamer/internal/core"
	"spamer/internal/isa"
	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
	"spamer/internal/vl"
	"spamer/internal/vlq"
)

// domainAddrShift positions each domain's address space at a distinct
// base, (domain+1)<<40, so a line address identifies its owning domain —
// the routing fabric needs that to carry a stash to the right kernel.
const domainAddrShift = 40

// fabric is the parallel-mode wiring of a System: the domain kernels,
// their per-domain bus slices and address spaces, and the hub adapters
// that carry device traffic across domain boundaries.
type fabric struct {
	pk     *sim.ParallelKernel
	ncores int           // core domains [0, ncores); hubs follow
	doms   []domainState // per-domain fabric objects, one block
	hubs   []*vl.Hub
	trace  *sim.ParallelTrace
}

// domainState fuses one domain's fabric objects into a single arena
// slot: one allocation covers every domain's bus slice and address
// space, and a domain's state stays contiguous for the lane running it.
// Slots never move — lines, pages, and bus pointers are handed out — so
// the doms slice is sized once and never appended to.
type domainState struct {
	bus   noc.Bus
	space mem.AddressSpace
}

func (fab *fabric) bus(d int) *noc.Bus            { return &fab.doms[d].bus }
func (fab *fabric) space(d int) *mem.AddressSpace { return &fab.doms[d].space }

// domainOfAddr recovers the owning domain of a line address.
func domainOfAddr(a mem.Addr) int { return int(uint64(a)>>domainAddrShift) - 1 }

// coreState fuses one core domain's device-facing objects — its remote
// ISA and its endpoint library — into a single arena slot per (device,
// core) pair. Slots never move: the library hands out endpoint state and
// the hub holds the remote ISA as its responder.
type coreState struct {
	ri  isa.RemoteISA
	lib vlq.Lib
}

// newParallelSystem builds the multi-domain system: ncores core domains
// plus one hub domain per routing device, synchronized on the minimum
// cross-domain latency (one bus hop plus the smallest packet
// serialization — derived from config, never hardcoded).
func newParallelSystem(cfg Config, hop uint64, ndev int) *System {
	ncores := config.NumCores
	ndom := ncores + ndev
	lookahead := hop + noc.MinOccupancy()
	pk := sim.NewParallel(ndom, lookahead, cfg.Domains)
	pk.SetDeadline(cfg.Deadline)

	fab := &fabric{pk: pk, ncores: ncores}
	s := &System{cfg: cfg, fab: fab}
	// Per-domain fabric objects live in one arena: one allocation total
	// instead of one per domain and kind (17 domains at the default core
	// count make per-object construction the dominant setup cost).
	fab.doms = make([]domainState, ndom)
	for d := 0; d < ndom; d++ {
		k := pk.Domain(d)
		// Core domains get a single-channel slice of the interconnect
		// (one core's ingress/egress link); hub domains carry the shared
		// device-side traffic on the configured channel count.
		ch := 1
		if d >= ncores {
			ch = cfg.BusChannels
		}
		fab.doms[d].bus.Init(k, hop, ch)
		fab.doms[d].space.Init(k, mem.Addr(d+1)<<domainAddrShift)
	}
	// The single-system accessors point at the primary hub: the device,
	// its bus slice, and its kernel are the closest parallel analogue of
	// the sequential system's shared core.
	s.kernel = pk.Domain(ncores)
	s.bus = fab.bus(ncores)
	s.as = fab.space(ncores)

	for i := 0; i < ndev; i++ {
		hubDom := ncores + i
		// A hub domain carries the device tick loop plus the bus traffic
		// of all cores, so weight it like ncores core domains: the lane
		// packer then gives each hub its own lane before doubling up
		// cores. Weights bias wall-clock balance only, never ordering.
		pk.SetDomainWeight(hubDom, uint64(ncores))
		// Every core exchanges messages with every hub (ISA requests down,
		// stash/response traffic back); reserve those pair rings from the
		// shared slab instead of growing them lazily mid-run.
		for d := 0; d < ncores; d++ {
			pk.Reserve(d, hubDom)
			pk.Reserve(hubDom, d)
		}
		hubK := pk.Domain(hubDom)
		dev := vl.New(hubK, fab.bus(hubDom), fab.space(hubDom), cfg.SRD)
		if cfg.Algorithm != AlgBaseline {
			alg, ok := algorithm(cfg)
			if !ok {
				panic("spamer: unknown algorithm " + cfg.Algorithm)
			}
			n := cfg.SRD.LinkEntries
			if n == 0 {
				n = config.SRDEntries
			}
			spec := core.NewSpecBuf(n, alg)
			dev.SetSpecExtension(spec)
			s.specs = append(s.specs, spec)
		}
		hub := vl.NewHub(dev, hubDom, lookahead, pk.Post)
		fab.hubs = append(fab.hubs, hub)
		installStashRouter(fab, hub)

		// One library per (device, core domain): endpoints bind to the
		// instance of their thread's domain, so pages, senders, and
		// clocks are domain-confined. The hub-side home library carries
		// queue identity (SQI allocation happens at setup time, before
		// any domain runs). A core's remote ISA and library share one
		// arena slot; the kernel's domain tag replaces the old
		// kernel-to-domain map for the Binder's reverse lookup.
		cores := make([]coreState, ncores)
		for d := 0; d < ncores; d++ {
			cores[d].ri.Init(pk.Domain(d), fab.bus(d), hub, pk.Post, d)
			cores[d].lib.Init(pk.Domain(d), fab.space(d), dev, &cores[d].ri)
			cores[d].lib.Inlined = !cfg.NoInline
		}
		home := vlq.New(hubK, fab.space(hubDom), dev, isa.New(hubK, fab.bus(hubDom), dev))
		home.Inlined = !cfg.NoInline
		home.Binder = func(p *sim.Proc) *vlq.Lib {
			return &cores[p.Kernel().DomainIndex()].lib
		}
		s.devs = append(s.devs, dev)
		s.libs = append(s.libs, home)
	}
	return s
}

// installStashRouter wires the hub device's stash output port to the
// cross-domain fabric: a stash occupies the hub's bus slice (fixing an
// arrival tick at least one lookahead ahead), the fill attempt runs in
// the line's owning domain, and the hit/miss response returns on that
// domain's bus slice as a PktResp — the Figure 5 round trip, split across
// the conservative boundary.
func installStashRouter(fab *fabric, hub *vl.Hub) {
	dev := hub.Device()
	hubDom := hub.Domain()
	respFn := hub.StashResponseFn()
	// One delivery closure serves every core domain: the stash target
	// address already identifies its owning domain, and the closure runs
	// in exactly that domain (it is the Post destination).
	deliver := func(a0, a1, a2, a3 uint64) {
		d := domainOfAddr(mem.Addr(a1))
		line := fab.space(d).Lookup(mem.Addr(a1))
		var hitBit uint64
		if line.TryFill(mem.Message{Src: int(a2 >> 48), Seq: a2 & (1<<48 - 1), Payload: a3}) {
			hitBit = 1
		}
		arrival := fab.bus(d).Occupy(noc.PktResp)
		fab.pk.Post(d, hubDom, arrival, respFn, a0<<1|hitBit, 0, 0, 0)
	}
	dev.SetStashRouter(func(idx uint64, target mem.Addr, msg mem.Message) {
		arrival := dev.Bus().Occupy(noc.PktStash)
		fab.pk.Post(hubDom, domainOfAddr(target), arrival, deliver,
			idx, uint64(target), uint64(uint16(msg.Src))<<48|msg.Seq, msg.Payload)
	})
}

// runParallel drives a multi-domain simulation to completion and collects
// the Result over the per-domain state.
func (s *System) runParallel() Result {
	pk := s.fab.pk
	pk.Run()
	if live := pk.LiveProcs(); live != 0 {
		panic(panicDeadlock(live))
	}
	for _, fn := range s.onDrain {
		fn()
	}

	r := Result{
		Algorithm: s.cfg.Algorithm,
		Ticks:     pk.LastEventTick(),
		Parallel:  pk.Stats(),
	}
	var busy, window uint64
	for d := range s.fab.doms {
		b := &s.fab.doms[d].bus
		st := b.Stats()
		for k := range r.Bus.Packets {
			r.Bus.Packets[k] += st.Packets[k]
		}
		r.Bus.BusyCycles += st.BusyCycles
		busy += st.BusyCycles
		window += b.WindowCycles()
	}
	if window > 0 {
		r.BusUtilization = float64(busy) / float64(window)
	}
	for i, d := range s.devs {
		if i == 0 {
			r.Device = d.Stats()
		} else {
			r.Device = addStats(r.Device, d.Stats())
		}
	}
	r.MS = config.TicksToMS(r.Ticks)
	s.collectQueues(&r)
	return r
}

// EffectiveDomains reports the worker-lane count a system built from this
// config will use: Domains, except that failure injection (EvictEvery)
// forces the sequential kernel — the injector mutates consumer lines of
// every domain from one global event stream, which no conservative
// partition can host. Fault injection (FaultDropStash,
// FaultCorruptStash) likewise forces the sequential kernel: the fault
// counters live on the same-domain stash delivery path, which parallel
// systems bypass via the stash router.
func (c Config) EffectiveDomains() int {
	if c.EvictEvery > 0 || c.FaultDropStash > 0 || c.FaultCorruptStash > 0 || c.Domains < 0 {
		return 0
	}
	return c.Domains
}

// EffectiveDomains reports the system's resolved worker-lane count
// (0 = sequential kernel).
func (s *System) EffectiveDomains() int { return s.cfg.EffectiveDomains() }

// ParallelKernel exposes the multi-domain kernel, or nil on a sequential
// system (advanced use: quantum/cross-traffic diagnostics).
func (s *System) ParallelKernel() *sim.ParallelKernel {
	if s.fab == nil {
		return nil
	}
	return s.fab.pk
}

// EnableDispatchTrace arms dispatch-trace hashing for golden tests. Must
// be called before Run; read the hash with DispatchTraceHash after Run.
func (s *System) EnableDispatchTrace() {
	if s.fab != nil {
		s.fab.trace = s.fab.pk.InstallTrace()
		return
	}
	s.seqRec = sim.NewTraceRecorder()
	s.seqRec.Attach(s.kernel)
}

// DispatchTraceHash reports the accumulated dispatch-trace hash: the
// per-domain FNV-1a streams folded in domain order on a parallel system,
// or the single kernel's stream on a sequential one.
func (s *System) DispatchTraceHash() uint64 {
	if s.fab != nil {
		if s.fab.trace == nil {
			panic("spamer: DispatchTraceHash without EnableDispatchTrace")
		}
		return s.fab.trace.Sum()
	}
	if s.seqRec == nil {
		panic("spamer: DispatchTraceHash without EnableDispatchTrace")
	}
	return s.seqRec.Sum()
}
