# SPAMeR reproduction — build / test / reproduce targets.

GO ?= go

.PHONY: all check build vet test test-race verify-oracle fuzz-smoke fabric-smoke bench bench-ci bench-race bench-parallel repro figures trace sweep latency area ablate tune serve worker clean

# BENCH_JSON tracks the perf trajectory across PRs: bump the suffix when
# a PR materially changes the benchmark surface and commit the new file.
#
# BENCH_BASELINE is the stable snapshot bench-ci gates against. The gate
# (spamer-benchjson -gate) fails the step when the sequential SpecRun
# benchmark regresses more than GATE_PCT percent in ns/op, when any
# benchmark present in both runs gains allocs/op (exact — alloc counts
# don't jitter), when any MillionMessage lane-count variant allocates
# at all, or when a parallel SpecRun allocates more per op than its
# sequential twin SpecRunSeqHalo. It also fails hard when BENCH_BASELINE itself is
# missing or unparsable, so a renamed/uncommitted baseline can never
# silently reduce the gate to the allocation checks. Move BENCH_BASELINE
# forward deliberately, in the PR that establishes the new floor.
#
# GATE_PCT is the SpecRun ns/op tolerance (spamer-benchjson -gate-pct):
# wide by default because wall time on shared runners jitters; the
# allocs/op checks are the gate's primary teeth.
BENCH_JSON ?= BENCH_10.json
BENCH_BASELINE ?= BENCH_9.json
# MillionMessage pins b.N to the delivered message count; the dedicated
# pass below records the true million-message run in $(BENCH_JSON)
# (bench-ci uses a shorter pass — allocs/op is exact at any count).
MM_ITERS ?= 1000000x
GATE_PCT ?= 25

all: check

# Everything CI runs: compile, vet, unit tests, and the race detector
# pass over the parallel harness.
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Randomized differential-oracle campaign (docs/TESTING.md): N seeded
# cases under the full invariant battery, each additionally run through
# a WORKERS-sized fabric pool whose outcomes must be byte-identical to
# local (docs/FABRIC.md; WORKERS=0 disables). Failing cases are
# minimized and written as JSON repros under ORACLE_OUT; replay one with
#   go run ./cmd/spamer-verify -repro <file>
N ?= 50
ORACLE_SEED ?= 1
ORACLE_OUT ?= .
WORKERS ?= 2
verify-oracle:
	$(GO) run ./cmd/spamer-verify -n $(N) -seed $(ORACLE_SEED) -out $(ORACLE_OUT) -workers $(WORKERS)

# Short native-fuzz pass over every Fuzz target (seed corpora live in
# testdata/fuzz). Go allows one fuzz target per -fuzz run, hence the
# loop. FUZZTIME=30s in CI's nightly non-blocking job.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzPredictors -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=NONE -fuzz=FuzzReadSpecs -fuzztime=$(FUZZTIME) ./internal/experiments
	$(GO) test -run=NONE -fuzz=FuzzSpamerVsVL -fuzztime=$(FUZZTIME) ./internal/oracle
	$(GO) test -run=NONE -fuzz=FuzzDifferentialKernels -fuzztime=$(FUZZTIME) ./internal/oracle
	$(GO) test -run=NONE -fuzz=FuzzDAGSpec -fuzztime=$(FUZZTIME) ./internal/workloads/dag

# Full benchmark pass: every table/figure as a testing.B target. The
# stream also feeds spamer-benchjson, which records name -> ns/op and
# allocs/op into $(BENCH_JSON) so perf is diffable across PRs.
bench:
	( $(GO) test -run=NONE -bench=. -benchmem ./... && \
	  $(GO) test -run=NONE -bench=MillionMessage -benchmem -benchtime=$(MM_ITERS) . ) \
	| $(GO) run ./cmd/spamer-benchjson -out $(BENCH_JSON)

# Quick variant for CI: the kernel and experiment-layer benchmarks plus
# the MillionMessage hot path, gated (-gate: >25% SpecRun regression,
# any allocs/op increase, or a MillionMessage sequential alloc fails
# the step). Iteration counts are per-package: the ns-scale sim
# microbenchmarks need 10000x so one-time setup allocations amortize
# below one per op (at 10x they read as false allocs/op regressions);
# SpecRun and HarnessMatrix are 0.2-1 s/op end-to-end sweeps, so 10x
# keeps the step under a minute. Blocking in ci.yml: the timing bar is
# wide enough for shared-runner noise, and allocs/op is exact.
bench-ci:
	( $(GO) test -run=NONE -bench=. -benchmem -benchtime=10000x ./internal/sim && \
	  $(GO) test -run=NONE -bench=. -benchmem -benchtime=10x ./internal/experiments && \
	  $(GO) test -run=NONE -bench=MillionMessage -benchmem -benchtime=200000x . ) \
	| $(GO) run ./cmd/spamer-benchjson -out bench-ci.json -baseline $(BENCH_BASELINE) -gate -gate-pct $(GATE_PCT)

# Parallel-kernel perf gate: the MillionMessage domains sweep plus the
# SpecRun parallel variants and their like-for-like sequential twin
# (SpecRunSeqHalo), piped through the -gate checks. GOMAXPROCS is
# pinned in both stages so lane counts mean the same thing run to run:
# the SpecRun parity stage at 1, where allocs/op is exact (multi-P runs
# pick up the scheduler's own sudog/thread allocations — noise that
# measures the runtime, not the simulator), and the MillionMessage
# sweep at BENCH_GOMAXPROCS for the wall-clock comparison. The gate
# holds every MillionMessage lane count to zero allocs/op and every
# parallel SpecRun to allocs/op parity with SpecRunSeqHalo; on runners
# with at least four CPUs it additionally requires MillionMessage
# domains=4 to beat the sequential wall-clock (skipped on smaller
# runners, where lanes cannot actually run concurrently). Blocking in
# CI.
BENCH_GOMAXPROCS ?= 4
bench-parallel:
	( GOMAXPROCS=1 $(GO) test -run=NONE -bench='SpecRunSeqHalo|SpecRunParallel' -benchmem -benchtime=10x ./internal/experiments && \
	  GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) test -run=NONE -bench=MillionMessage -benchmem -benchtime=200000x . ) \
	| $(GO) run ./cmd/spamer-benchjson -out bench-parallel.json -baseline $(BENCH_BASELINE) -gate -gate-pct $(GATE_PCT)

# Race-detector pass over the MillionMessage benchmark, including its
# parallel-domain variants: the open-loop engine drives the same
# per-domain arenas and padded cross-domain lanes the optimized layout
# relies on, so every PR runs it once under -race. Iterations are cut
# well below MM_ITERS — the race runtime is ~10x slower and the goal is
# coverage of the hand-off protocol, not timing.
MM_RACE_ITERS ?= 20000x
bench-race:
	$(GO) test -race -run=NONE -bench=MillionMessage -benchmem -benchtime=$(MM_RACE_ITERS) .

# Regenerate every evaluation artifact to stdout.
repro: figures trace sweep latency area

figures:
	$(GO) run ./cmd/spamer-bench

trace:
	$(GO) run ./cmd/spamer-trace

sweep:
	$(GO) run ./cmd/spamer-sweep

latency:
	$(GO) run ./cmd/spamer-latency

area:
	$(GO) run ./cmd/spamer-area

ablate:
	$(GO) run ./cmd/spamer-ablate

tune:
	$(GO) run ./cmd/spamer-tune

# End-to-end fabric exercise with real processes (docs/FABRIC.md):
# coordinator + two workers, a golden batch byte-compared against a
# local run, then a SIGKILLed worker whose leases must re-dispatch to
# the survivor. Blocking in CI.
fabric-smoke:
	$(GO) run ./cmd/spamer-fabric-smoke

# Long-lived simulation-as-a-service daemon (docs/SERVICE.md). With the
# fabric on (default), attach workers via `make worker COORDINATOR=...`.
serve:
	$(GO) run ./cmd/spamer-serve

COORDINATOR ?= http://127.0.0.1:8080
worker:
	$(GO) run ./cmd/spamer-worker -coordinator $(COORDINATOR)

clean:
	$(GO) clean ./...
