# SPAMeR reproduction — build / test / reproduce targets.

GO ?= go

.PHONY: all check build vet test test-race bench repro figures trace sweep latency area ablate tune serve clean

all: check

# Everything CI runs: compile, vet, unit tests, and the race detector
# pass over the parallel harness.
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Full benchmark pass: every table/figure as a testing.B target.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation artifact to stdout.
repro: figures trace sweep latency area

figures:
	$(GO) run ./cmd/spamer-bench

trace:
	$(GO) run ./cmd/spamer-trace

sweep:
	$(GO) run ./cmd/spamer-sweep

latency:
	$(GO) run ./cmd/spamer-latency

area:
	$(GO) run ./cmd/spamer-area

ablate:
	$(GO) run ./cmd/spamer-ablate

tune:
	$(GO) run ./cmd/spamer-tune

# Long-lived simulation-as-a-service daemon (docs/SERVICE.md).
serve:
	$(GO) run ./cmd/spamer-serve

clean:
	$(GO) clean ./...
