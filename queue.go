package spamer

import (
	"spamer/internal/mem"
	"spamer/internal/sim"
	"spamer/internal/vlq"
)

// Queue is one M:N message channel (one Shared Queue Identifier).
// Producers and consumers subscribe endpoints to it; the paper writes the
// shape as (M:N)xk in Table 2.
type Queue struct {
	sys   *System
	inner *vlq.Queue
}

// NewQueue creates a message channel. On multi-device systems queues
// are placed round-robin across the routing devices.
func (s *System) NewQueue(name string) *Queue {
	lib := s.libs[s.nextDev%len(s.libs)]
	s.nextDev++
	q := &Queue{sys: s, inner: lib.NewQueue(name)}
	if s.queueProbe != nil {
		q.inner.SetProbe(s.queueProbe)
	}
	s.queues = append(s.queues, q)
	return q
}

// Queues returns every queue created on the system.
func (s *System) Queues() []*Queue { return s.queues }

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.inner.Name() }

// Pushed reports messages accepted from producers so far.
func (q *Queue) Pushed() uint64 { return q.inner.Pushed() }

// Popped reports messages delivered to consumers so far.
func (q *Queue) Popped() uint64 { return q.inner.Popped() }

// Close tears the queue down once drained, returning its SQI and
// specBuf entries to the device. See vlq.Queue.Close.
func (q *Queue) Close() error { return q.inner.Close() }

// Inner exposes the library-level queue for tracing and tests.
func (q *Queue) Inner() *vlq.Queue { return q.inner }

// Producer is a producer endpoint handle.
type Producer struct {
	inner *vlq.Producer
}

// NewProducer subscribes a producer endpoint. window bounds in-flight
// pushes (0 = default).
func (q *Queue) NewProducer(window int) *Producer {
	return &Producer{inner: q.inner.NewProducer(window)}
}

// Push enqueues one message, charging the calling thread the library and
// ISA costs, blocking only on the endpoint's line window.
func (pr *Producer) Push(p *sim.Proc, payload uint64) { pr.inner.Push(p, payload) }

// PushAfter charges the calling thread d cycles of compute and then
// pushes payload — trace-identical to Compute(d) followed by Push, with
// one scheduler round trip instead of two. Use it for the ubiquitous
// produce-loop shape `Compute(work); Push(msg)`.
func (pr *Producer) PushAfter(p *sim.Proc, d uint64, payload uint64) {
	pr.inner.PushAfter(p, d, payload)
}

// Sent reports how many messages this endpoint has pushed.
func (pr *Producer) Sent() uint64 { return pr.inner.Seq() }

// Inner exposes the library-level producer for tracing and tests.
func (pr *Producer) Inner() *vlq.Producer { return pr.inner }

// Consumer is a consumer endpoint handle.
type Consumer struct {
	inner *vlq.Consumer
}

// NewConsumer subscribes a consumer endpoint with nlines buffer lines.
// Under a SPAMeR system the endpoint is created spec-push-enabled (the
// library issues spamer_register, §3.4); under the VL baseline it is
// demand-driven. Use NewConsumerLegacy to force a demand-driven endpoint
// on a SPAMeR system (§3.4's "legacy option").
func (q *Queue) NewConsumer(p *sim.Proc, nlines int) *Consumer {
	return &Consumer{inner: q.inner.NewConsumer(p, nlines, q.sys.Speculative())}
}

// NewConsumerLegacy subscribes a demand-driven endpoint regardless of the
// system flavour.
func (q *Queue) NewConsumerLegacy(p *sim.Proc, nlines int) *Consumer {
	return &Consumer{inner: q.inner.NewConsumer(p, nlines, false)}
}

// Pop dequeues one message, blocking until available.
func (c *Consumer) Pop(p *sim.Proc) mem.Message { return c.inner.Pop(p) }

// Prefetch posts a demand request for the endpoint's next line ahead of
// the Pop that will consume it (no-op on spec-enabled endpoints). See
// vlq.Consumer.Prefetch.
func (c *Consumer) Prefetch(p *sim.Proc) { c.inner.Prefetch(p) }

// TryPop dequeues only if a message is immediately available.
func (c *Consumer) TryPop(p *sim.Proc) (mem.Message, bool) { return c.inner.TryPop(p) }

// PopOrDone dequeues like Pop but gives up (ok=false) once the done
// signal fires with isDone true. See WorkCounter for the common usage.
func (c *Consumer) PopOrDone(p *sim.Proc, done *sim.Signal, isDone func() bool) (mem.Message, bool) {
	return c.inner.PopOrDone(p, done, isDone)
}

// WorkCounter coordinates multiple consumers draining a fixed global
// message count from one queue when the per-consumer share is not known
// statically (M:N queues under speculative rotation deliver
// approximately, not exactly, evenly). The consumer that takes the last
// message wakes every sibling still blocked.
type WorkCounter struct {
	remaining int
	done      *sim.Signal
}

// NewWorkCounter returns a counter for total messages.
func NewWorkCounter(name string, total int) *WorkCounter {
	return &WorkCounter{remaining: total, done: sim.NewSignal(name + ".done")}
}

// Remaining reports undelivered messages.
func (wc *WorkCounter) Remaining() int { return wc.remaining }

// Take pops one message from c, or returns ok=false when the global
// count is exhausted.
func (wc *WorkCounter) Take(c *Consumer, p *sim.Proc) (mem.Message, bool) {
	if wc.remaining == 0 {
		return mem.Message{}, false
	}
	m, ok := c.PopOrDone(p, wc.done, func() bool { return wc.remaining == 0 })
	if !ok {
		return mem.Message{}, false
	}
	wc.remaining--
	if wc.remaining == 0 {
		wc.done.Fire()
	}
	return m, true
}

// SpecEnabled reports whether the endpoint receives speculative pushes.
func (c *Consumer) SpecEnabled() bool { return c.inner.SpecEnabled() }

// Lines exposes the endpoint's cache lines (stats/tracing).
func (c *Consumer) Lines() []*mem.Line { return c.inner.Lines() }

// Inner exposes the library-level consumer for tracing and tests.
func (c *Consumer) Inner() *vlq.Consumer { return c.inner }
