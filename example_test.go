package spamer_test

import (
	"fmt"

	"spamer"
)

// The canonical single-producer single-consumer flow: SPAMeR's
// speculative pushes eliminate all consumer request traffic.
func Example() {
	sys := spamer.NewSystem(spamer.Config{Algorithm: spamer.AlgTuned})
	q := sys.NewQueue("work")

	const n = 100
	sys.Spawn("producer", func(t *spamer.Thread) {
		tx := q.NewProducer(0)
		for i := 0; i < n; i++ {
			t.Compute(10)
			tx.Push(t.Proc, uint64(i))
		}
	})
	sys.Spawn("consumer", func(t *spamer.Thread) {
		rx := q.NewConsumer(t.Proc, 4)
		for i := 0; i < n; i++ {
			rx.Pop(t.Proc)
			t.Compute(25)
		}
	})

	res := sys.Run()
	fmt.Println("messages:", res.Popped)
	fmt.Println("requests:", res.Device.Fetches)
	// Output:
	// messages: 100
	// requests: 0
}

// Comparing configurations: the same workload under the Virtual-Link
// baseline and SPAMeR. Runs are deterministic, so the comparison is
// exact.
func Example_comparison() {
	run := func(alg string) spamer.Result {
		sys := spamer.NewSystem(spamer.Config{Algorithm: alg})
		q := sys.NewQueue("q")
		sys.Spawn("p", func(t *spamer.Thread) {
			tx := q.NewProducer(0)
			for i := 0; i < 50; i++ {
				t.Compute(10)
				tx.Push(t.Proc, uint64(i))
			}
		})
		sys.Spawn("c", func(t *spamer.Thread) {
			rx := q.NewConsumer(t.Proc, 2)
			for i := 0; i < 50; i++ {
				rx.Pop(t.Proc)
				t.Compute(30)
			}
		})
		return sys.Run()
	}
	base := run(spamer.AlgBaseline)
	spec := run(spamer.AlgZeroDelay)
	fmt.Println("SPAMeR faster:", spec.Ticks < base.Ticks)
	// Output:
	// SPAMeR faster: true
}

// Dynamic M:N consumption with a WorkCounter: four workers share one
// queue without knowing their share in advance.
func Example_workSharing() {
	sys := spamer.NewSystem(spamer.Config{Algorithm: spamer.AlgTuned})
	q := sys.NewQueue("jobs")
	const jobs = 80

	sys.Spawn("dispatcher", func(t *spamer.Thread) {
		tx := q.NewProducer(0)
		for i := 0; i < jobs; i++ {
			t.Compute(8)
			tx.Push(t.Proc, uint64(i))
		}
	})
	wc := spamer.NewWorkCounter("jobs", jobs)
	done := 0
	for w := 0; w < 4; w++ {
		sys.Spawn("worker", func(t *spamer.Thread) {
			rx := q.NewConsumer(t.Proc, 2)
			for {
				_, ok := wc.Take(rx, t.Proc)
				if !ok {
					return
				}
				t.Compute(100)
				done++
			}
		})
	}
	sys.Run()
	fmt.Println("done:", done)
	// Output:
	// done: 80
}
