package spamer

import "testing"

// TestEvictionInjectionCorrectness: under periodic line evictions every
// configuration still delivers every message in order — the retry loop
// (device side) and refetch-on-access (consumer side) absorb the
// faults.
func TestEvictionInjectionCorrectness(t *testing.T) {
	for _, alg := range Configs() {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			sys := NewSystem(Config{Algorithm: alg, EvictEvery: 300, Deadline: 1 << 32})
			q := sys.NewQueue("q")
			const n = 300
			sys.Spawn("producer", func(th *Thread) {
				pr := q.NewProducer(0)
				for i := 0; i < n; i++ {
					th.Compute(15)
					pr.Push(th.Proc, uint64(i))
				}
			})
			sys.Spawn("consumer", func(th *Thread) {
				c := q.NewConsumer(th.Proc, 2)
				for i := 0; i < n; i++ {
					m := c.Pop(th.Proc)
					if m.Seq != uint64(i) {
						t.Errorf("seq %d at pop %d", m.Seq, i)
					}
					th.Compute(25)
				}
			})
			res := sys.Run()
			if res.Pushed != n || res.Popped != n {
				t.Fatalf("conservation: %d/%d", res.Pushed, res.Popped)
			}
			evictions := uint64(0)
			for _, c := range q.Inner().Consumers() {
				for _, l := range c.Lines() {
					evictions += l.Evictions()
				}
			}
			if evictions == 0 {
				t.Fatal("injector never fired")
			}
		})
	}
}

// TestEvictionInjectionDegradesGracefully: faults slow the system down
// but never by more than the retry-path worst case.
func TestEvictionInjectionDegradesGracefully(t *testing.T) {
	run := func(every uint64) Result {
		sys := NewSystem(Config{Algorithm: AlgTuned, EvictEvery: every, Deadline: 1 << 32})
		q := sys.NewQueue("q")
		const n = 300
		sys.Spawn("p", func(th *Thread) {
			pr := q.NewProducer(0)
			for i := 0; i < n; i++ {
				th.Compute(15)
				pr.Push(th.Proc, uint64(i))
			}
		})
		sys.Spawn("c", func(th *Thread) {
			rx := q.NewConsumer(th.Proc, 2)
			for i := 0; i < n; i++ {
				rx.Pop(th.Proc)
				th.Compute(25)
			}
		})
		return sys.Run()
	}
	clean := run(0)
	faulty := run(500)
	if faulty.Ticks < clean.Ticks {
		t.Fatalf("faults sped things up: %d vs %d", faulty.Ticks, clean.Ticks)
	}
	if float64(faulty.Ticks) > float64(clean.Ticks)*2.0 {
		t.Fatalf("faults more than doubled runtime: %d vs %d", faulty.Ticks, clean.Ticks)
	}
}

// TestEvictionInjectionOnWorkload: a full benchmark survives injection.
func TestEvictionInjectionOnWorkload(t *testing.T) {
	sys := NewSystem(Config{Algorithm: AlgZeroDelay, EvictEvery: 997, Deadline: 1 << 34})
	// firewall has 4 queues and 5 threads; build it inline to avoid an
	// import cycle with internal/workloads.
	rx := sys.NewQueue("rx")
	out := sys.NewQueue("out")
	const n = 400
	sys.Spawn("rx", func(th *Thread) {
		pr := rx.NewProducer(0)
		for i := 0; i < n; i++ {
			th.Compute(20)
			pr.Push(th.Proc, uint64(i))
		}
	})
	sys.Spawn("fw", func(th *Thread) {
		c := rx.NewConsumer(th.Proc, 4)
		pr := out.NewProducer(0)
		for i := 0; i < n; i++ {
			m := c.Pop(th.Proc)
			th.Compute(40)
			pr.Push(th.Proc, m.Payload)
		}
	})
	sys.Spawn("sink", func(th *Thread) {
		c := out.NewConsumer(th.Proc, 4)
		for i := 0; i < n; i++ {
			c.Pop(th.Proc)
			th.Compute(15)
		}
	})
	res := sys.Run()
	if res.Pushed != 2*n || res.Popped != 2*n {
		t.Fatalf("conservation: %d/%d", res.Pushed, res.Popped)
	}
}
