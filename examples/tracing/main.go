// Tracing: observe individual message-queue transactions the way §4.2
// does — hook a consumer endpoint's cache lines, record data arrivals,
// requests, vacates, fills and first uses, and compare the on-demand
// timeline (Virtual-Link) against the speculative one (SPAMeR).
package main

import (
	"fmt"
	"os"

	"spamer"
	"spamer/internal/trace"
)

func main() {
	for _, alg := range []string{spamer.AlgBaseline, spamer.AlgZeroDelay} {
		tr, res := trace.RunFigure7(trace.DefaultFigure7(alg))
		sum := trace.Summarize(tr.Transactions())

		fmt.Printf("=== %s: %d transactions, %d speculative, %d on-demand ===\n",
			alg, sum.Transactions, sum.Speculative, sum.OnDemand)
		fmt.Printf("mean data-arrive->first-use latency: %.1f cycles\n", sum.MeanLatencyTk)
		if alg == spamer.AlgBaseline {
			fmt.Printf("request-hindered transactions: %d (potential saving %d cycles)\n",
				sum.Hindered, sum.TotalSavingTk)
		}
		fmt.Printf("execution: %d cycles\n\n", res.Ticks)

		evs := tr.Events()
		if len(evs) > 0 {
			lo := evs[len(evs)/3].Tick
			hi := evs[2*len(evs)/3].Tick
			trace.RenderTimeline(os.Stdout, evs, lo, hi, 100)
		}
		fmt.Println()
	}
	fmt.Println("on the SPAMeR timeline the 'request arrive' row is empty: the routing")
	fmt.Println("device pushes in anticipation of the requests instead of waiting for them.")
}
