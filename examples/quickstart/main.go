// Quickstart: build a simulated multi-core system, connect a producer
// and a consumer through a hardware message queue, and compare the
// Virtual-Link baseline against SPAMeR's speculative pushes.
package main

import (
	"fmt"

	"spamer"
)

func run(alg string) spamer.Result {
	// A System is one simulated 16-core machine with a routing device
	// of the requested flavour attached to its coherence network.
	sys := spamer.NewSystem(spamer.Config{Algorithm: alg})

	// A Queue is one M:N message channel (a Shared Queue Identifier).
	q := sys.NewQueue("work")

	const messages = 1000

	// Threads are simulation processes pinned to cores. The producer
	// generates items faster than the consumer handles them, so data
	// waits at the routing device — the situation speculation exploits.
	sys.Spawn("producer", func(t *spamer.Thread) {
		tx := q.NewProducer(0)
		for i := 0; i < messages; i++ {
			t.Compute(15) // generate an item
			tx.Push(t.Proc, uint64(i))
		}
	})
	sys.Spawn("consumer", func(t *spamer.Thread) {
		rx := q.NewConsumer(t.Proc, 4) // 4 cache-line buffer
		for i := 0; i < messages; i++ {
			msg := rx.Pop(t.Proc)
			if msg.Seq != uint64(i) {
				panic("FIFO violation")
			}
			t.Compute(25) // handle the item
		}
	})

	return sys.Run()
}

func main() {
	baseline := run(spamer.AlgBaseline)
	spec := run(spamer.AlgTuned)

	fmt.Printf("Virtual-Link baseline: %7d cycles (%.3f ms)\n", baseline.Ticks, baseline.MS)
	fmt.Printf("SPAMeR (tuned):        %7d cycles (%.3f ms)\n", spec.Ticks, spec.MS)
	fmt.Printf("speedup:               %.2fx\n", spec.Speedup(baseline))
	fmt.Printf("\nSPAMeR issued %d speculative pushes (%d hit, %d retried)\n",
		spec.Device.SpecPushes, spec.Device.SpecHits, spec.Device.SpecMisses)
	fmt.Printf("requests on the bus: baseline %d, SPAMeR %d\n",
		baseline.Device.Fetches, spec.Device.Fetches)
}
