#!/usr/bin/env sh
# Quickstart for the distributed simulation fabric (docs/FABRIC.md):
# start a coordinator and two workers, watch them register, submit a
# job that shards across the pool, prove the shared result store, kill
# a worker mid-pool and show the survivor absorbing the work, then
# drain everything cleanly.
#
#   sh examples/fabric/quickstart.sh
#
# Requires: go, curl. Runs entirely on localhost.
set -eu

ADDR="${ADDR:-127.0.0.1:8093}"
BASE="http://$ADDR"
W1_ADDR="${W1_ADDR:-127.0.0.1:8094}"
W2_ADDR="${W2_ADDR:-127.0.0.1:8095}"
cd "$(dirname "$0")/../.."

echo "==> building spamer-serve (coordinator) and spamer-worker"
go build -o /tmp/spamer-serve ./cmd/spamer-serve
go build -o /tmp/spamer-worker ./cmd/spamer-worker

echo "==> starting the coordinator on $ADDR (fabric is on by default)"
/tmp/spamer-serve -addr "$ADDR" -fabric-heartbeat 500ms &
SERVE_PID=$!
trap 'kill "$SERVE_PID" $W1_PID $W2_PID 2>/dev/null || true' EXIT INT TERM
for _ in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done

echo "==> starting two workers"
/tmp/spamer-worker -coordinator "$BASE" -addr "$W1_ADDR" \
    -advertise "http://$W1_ADDR" -id w1 &
W1_PID=$!
/tmp/spamer-worker -coordinator "$BASE" -addr "$W2_ADDR" \
    -advertise "http://$W2_ADDR" -id w2 &
W2_PID=$!

echo "==> waiting for both to register"
for _ in $(seq 1 100); do
    curl -fsS "$BASE/metrics" | grep -q '^spamer_fabric_workers_present 2$' && break
    sleep 0.1
done
curl -fsS "$BASE/metrics" | grep '^spamer_fabric_workers_present'

echo
echo "==> submitting a 3-spec job: shards place across the pool by canonical hash"
SPECS='[{"benchmark":"ping-pong","algorithms":["vl","0delay"],"label":"qs-a"},
{"benchmark":"incast","algorithms":["vl"],"label":"qs-b"},
{"benchmark":"ping-pong","algorithms":["vl"],"label":"qs-c"}]'
JOB=$(curl -fsS -X POST "$BASE/v1/jobs" -d "$SPECS" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
for _ in $(seq 1 200); do
    STATE=$(curl -fsS "$BASE/v1/jobs/$JOB" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$STATE" = done ] || [ "$STATE" = failed ] && break
    sleep 0.2
done
echo "job $JOB: $STATE"
curl -fsS "$BASE/metrics" | grep -E '^spamer_fabric_(placements_total|worker_specs_total)'

echo
echo "==> a recombined batch of already-seen specs is answered from the shared store"
RECOMBINED='[{"benchmark":"incast","algorithms":["vl"],"label":"qs-b"},
{"benchmark":"ping-pong","algorithms":["vl"],"label":"qs-c"}]'
curl -fsS -o /dev/null -w 'HTTP %{response_code} in %{time_total}s\n' \
    -X POST "$BASE/v1/jobs" -d "$RECOMBINED"
curl -fsS "$BASE/metrics" | grep '^spamer_fabric_store_hits_total'

echo
echo "==> SIGKILL w1: fresh work re-leases onto the survivor"
kill -9 "$W1_PID" 2>/dev/null || true
KILLED='[{"benchmark":"ping-pong","algorithms":["vl"],"label":"after-kill-1"},
{"benchmark":"incast","algorithms":["vl"],"label":"after-kill-2"}]'
JOB=$(curl -fsS -X POST "$BASE/v1/jobs" -d "$KILLED" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
for _ in $(seq 1 200); do
    STATE=$(curl -fsS "$BASE/v1/jobs/$JOB" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$STATE" = done ] || [ "$STATE" = failed ] && break
    sleep 0.2
done
echo "job $JOB: $STATE (completed despite the dead worker)"
curl -fsS "$BASE/metrics" | grep -E '^spamer_fabric_(retries_total|worker_deaths_total|workers_present)'

echo
echo "==> SIGTERM w2: graceful worker drain (healthz flips, leases finish)"
kill -TERM "$W2_PID"
wait "$W2_PID" 2>/dev/null || true

echo "==> SIGTERM coordinator"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
trap - EXIT
echo "done"
