// Resilience: the operational features around the core mechanism —
// deterministic cache-eviction injection (messages survive; §3.1's
// retry loop absorbs the faults), queue teardown with SQI recycling,
// and multiple routing devices — all under SPAMeR speculation.
package main

import (
	"fmt"

	"spamer"
)

const messages = 800

func run(evictEvery uint64) spamer.Result {
	sys := spamer.NewSystem(spamer.Config{
		Algorithm:  spamer.AlgTuned,
		Devices:    2,          // queues spread over two routing devices
		EvictEvery: evictEvery, // failure injection (0 = off)
	})
	q1 := sys.NewQueue("phase1")
	q2 := sys.NewQueue("phase2")

	sys.Spawn("source", func(t *spamer.Thread) {
		tx := q1.NewProducer(0)
		for i := 0; i < messages; i++ {
			t.Compute(12)
			tx.Push(t.Proc, uint64(i))
		}
	})
	sys.Spawn("transform", func(t *spamer.Thread) {
		rx := q1.NewConsumer(t.Proc, 4)
		tx := q2.NewProducer(0)
		for i := 0; i < messages; i++ {
			m := rx.Pop(t.Proc)
			t.Compute(20)
			tx.Push(t.Proc, m.Payload*2)
		}
	})
	var checksum uint64
	sys.Spawn("sink", func(t *spamer.Thread) {
		rx := q2.NewConsumer(t.Proc, 4)
		for i := 0; i < messages; i++ {
			checksum += rx.Pop(t.Proc).Payload
			t.Compute(15)
		}
	})

	res := sys.Run()

	// Teardown: drained queues return their SQIs and specBuf entries.
	for _, q := range []*spamer.Queue{q1, q2} {
		if err := q.Close(); err != nil {
			panic(err)
		}
	}
	want := uint64(messages * (messages - 1)) // 2 * sum(0..n-1)
	if checksum != want {
		panic(fmt.Sprintf("checksum %d != %d", checksum, want))
	}
	return res
}

func main() {
	clean := run(0)
	faulty := run(400) // evict a consumer line every 400 cycles

	fmt.Printf("clean run:   %6d cycles, 0 evictions\n", clean.Ticks)
	fmt.Printf("faulty run:  %6d cycles (every message still delivered, in order)\n", faulty.Ticks)
	fmt.Printf("slowdown under fault injection: %.2fx\n",
		float64(faulty.Ticks)/float64(clean.Ticks))
	fmt.Println("\nboth runs checksum-verified; queues closed and SQIs recycled.")
}
