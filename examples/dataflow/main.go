// Dataflow: a streaming sensor-analytics graph built with the dataflow
// runtime on top of the hardware queues — the application class the
// paper's introduction motivates. Samples stream from two sensor
// sources, merge, are filtered and feature-extracted by a replicated
// operator pool, then routed to separate alarm and archive sinks.
//
//	sensorA --\                        /--> alarms
//	            merge -> features(x4) -
//	sensorB --/                        \--> archive
package main

import (
	"fmt"

	"spamer"
	"spamer/internal/dataflow"
)

const samples = 1500

func run(alg string) (spamer.Result, int, int) {
	sys := spamer.NewSystem(spamer.Config{Algorithm: alg})
	g := dataflow.New(sys)

	sensorA := g.Source("sensorA", samples, 12, func(i int) uint64 {
		return uint64(i)*7919%1024 + 0<<12 // deterministic pseudo-signal
	})
	sensorB := g.Source("sensorB", samples, 14, func(i int) uint64 {
		return uint64(i)*104729%1024 + 1<<12
	})

	merge := g.Op("merge", 1, 8, func(v uint64, emit dataflow.Emit) {
		emit(0, v)
	})

	// Feature extraction: a pool of four workers sharing the input
	// queue (an M:N edge); values above the threshold raise alarms.
	features := g.Op("features", 4, 90, func(v uint64, emit dataflow.Emit) {
		level := v & 1023
		if level > 900 {
			emit(0, v) // alarm path
		}
		emit(1, v) // archive path
	})

	alarms, archived := 0, 0
	alarmSink := g.Sink("alarms", 20, func(v uint64) { alarms++ })
	archiveSink := g.Sink("archive", 10, func(v uint64) { archived++ })

	g.Connect(sensorA, merge, 4)
	g.Connect(sensorB, merge, 4)
	g.Connect(merge, features, 4)
	g.Connect(features, alarmSink, 4)
	g.Connect(features, archiveSink, 8)

	res := g.Run()
	return res, alarms, archived
}

func main() {
	fmt.Printf("%-8s %12s %8s %9s\n", "config", "cycles", "alarms", "archived")
	var base spamer.Result
	for _, alg := range []string{spamer.AlgBaseline, spamer.AlgTuned} {
		res, alarms, archived := run(alg)
		if alg == spamer.AlgBaseline {
			base = res
		}
		fmt.Printf("%-8s %12d %8d %9d", alg, res.Ticks, alarms, archived)
		if alg != spamer.AlgBaseline {
			fmt.Printf("   (%.2fx)", res.Speedup(base))
		}
		fmt.Println()
	}
	fmt.Println("\nresults are identical across configs; only the timing changes.")
}
