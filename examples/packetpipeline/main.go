// Packet pipeline: a network-function chain (the workload class the
// paper's pipeline and firewall benchmarks represent) built on the
// public API — receive, classify into two lanes, filter, and merge —
// run under all four routing-device configurations.
//
// The example also shows the two M:N idioms of the library: a (2:1)
// merge queue with a single consumer, and dynamic work sharing with
// spamer.WorkCounter when consumers cannot know their share statically.
package main

import (
	"fmt"

	"spamer"
)

const packets = 2000

func run(alg string) spamer.Result {
	sys := spamer.NewSystem(spamer.Config{Algorithm: alg})

	ingress := sys.NewQueue("ingress") // rx -> classifiers (1:2)
	lane := sys.NewQueue("lane")       // classifiers -> filters (2:2)
	egress := sys.NewQueue("egress")   // filters -> tx (2:1)

	sys.Spawn("rx", func(t *spamer.Thread) {
		tx := ingress.NewProducer(0)
		for i := 0; i < packets; i++ {
			t.Compute(18) // DMA + checksum
			tx.Push(t.Proc, uint64(i))
		}
	})

	classifyWork := spamer.NewWorkCounter("classify", packets)
	filterWork := spamer.NewWorkCounter("filter", packets)
	for w := 0; w < 2; w++ {
		sys.Spawn(fmt.Sprintf("classify%d", w), func(t *spamer.Thread) {
			rx := ingress.NewConsumer(t.Proc, 4)
			tx := lane.NewProducer(0)
			for {
				m, ok := classifyWork.Take(rx, t.Proc)
				if !ok {
					return
				}
				t.Compute(30) // 5-tuple lookup
				tx.Push(t.Proc, m.Payload)
			}
		})
		sys.Spawn(fmt.Sprintf("filter%d", w), func(t *spamer.Thread) {
			rx := lane.NewConsumer(t.Proc, 4)
			tx := egress.NewProducer(0)
			for {
				m, ok := filterWork.Take(rx, t.Proc)
				if !ok {
					return
				}
				t.Compute(45) // rule evaluation
				tx.Push(t.Proc, m.Payload)
			}
		})
	}

	sys.Spawn("tx", func(t *spamer.Thread) {
		rx := egress.NewConsumer(t.Proc, 8)
		for i := 0; i < packets; i++ {
			rx.Pop(t.Proc)
			t.Compute(12) // egress descriptor
		}
	})

	return sys.Run()
}

func main() {
	fmt.Printf("%-10s %12s %10s %10s %9s\n", "config", "cycles", "pkts/kcyc", "failures", "bus util")
	var base spamer.Result
	for _, alg := range spamer.Configs() {
		res := run(alg)
		if alg == spamer.AlgBaseline {
			base = res
		}
		rate := float64(packets) / (float64(res.Ticks) / 1000)
		fmt.Printf("%-10s %12d %10.2f %9.1f%% %8.1f%%", alg, res.Ticks, rate,
			res.FailureRate()*100, res.BusUtilization*100)
		if alg != spamer.AlgBaseline {
			fmt.Printf("   (%.2fx)", res.Speedup(base))
		}
		fmt.Println()
	}
}
