// Sensitivity: explore the tuned algorithm's parameter space on one
// benchmark the way §4.4 does, including a custom (user-defined)
// parameter set — the knob a deployment would turn to match its own
// workload's timing.
package main

import (
	"fmt"
	"sort"

	"spamer"
	"spamer/internal/config"
	"spamer/internal/workloads"
)

func main() {
	w, _ := workloads.ByName("FIR")
	base := w.Run(spamer.Config{Algorithm: spamer.AlgBaseline}, 1)
	fmt.Printf("FIR baseline: %d cycles\n\n", base.Ticks)

	type point struct {
		params config.TunedParams
		delay  float64
		energy float64
	}
	var pts []point
	for _, zeta := range []uint64{128, 256, 512} {
		for _, delta := range []uint64{16, 64, 128} {
			p := config.TunedParams{Zeta: zeta, Tau: 96, Delta: delta, Alpha: 1, Beta: 2}
			res := w.Run(spamer.Config{Algorithm: spamer.AlgTuned, Tuned: p}, 1)
			pts = append(pts, point{
				params: p,
				delay:  float64(res.Ticks) / float64(base.Ticks),
				energy: float64(res.Device.TotalPushes()) / float64(base.Device.TotalPushes()),
			})
		}
	}
	// Rank by distance to the origin — "the closer to the origin point,
	// the better an algorithm is" (§4.4).
	sort.Slice(pts, func(i, j int) bool {
		di := pts[i].delay*pts[i].delay + pts[i].energy*pts[i].energy
		dj := pts[j].delay*pts[j].delay + pts[j].energy*pts[j].energy
		return di < dj
	})
	fmt.Printf("%-32s %10s %10s\n", "parameters", "delay", "energy")
	for _, p := range pts {
		fmt.Printf("%-32s %10.3f %10.3f\n", p.params, p.delay, p.energy)
	}
	fmt.Printf("\npaper's published set: %s\n", config.DefaultTuned())
}
