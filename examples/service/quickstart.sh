#!/usr/bin/env sh
# Quickstart for the spamer-serve daemon: start it, submit a job, poll
# it, watch the SSE progress stream, prove the content-addressed cache
# hit, read the metrics, and drain with SIGTERM.
#
#   sh examples/service/quickstart.sh
#
# Requires: go, curl. Runs entirely on localhost.
set -eu

ADDR="${ADDR:-127.0.0.1:8091}"
BASE="http://$ADDR"
cd "$(dirname "$0")/../.."

echo "==> building and starting spamer-serve on $ADDR"
go build -o /tmp/spamer-serve ./cmd/spamer-serve
/tmp/spamer-serve -addr "$ADDR" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT INT TERM

for _ in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "$BASE/healthz"; echo

echo
echo "==> submitting a job (the same JSON spamer-run reads)"
SPEC='{"benchmark":"FIR","algorithms":["vl","0delay","tuned"],"label":"quickstart"}'
SUBMIT=$(curl -fsS -X POST "$BASE/v1/jobs" -d "$SPEC")
echo "$SUBMIT"
JOB=$(echo "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
echo "job id: $JOB"

echo
echo "==> polling until done"
for _ in $(seq 1 100); do
    STATE=$(curl -fsS "$BASE/v1/jobs/$JOB" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    echo "state: $STATE"
    [ "$STATE" = done ] || [ "$STATE" = failed ] && break
    sleep 0.2
done
curl -fsS "$BASE/v1/jobs/$JOB"; echo

echo
echo "==> streaming SSE progress of a fresh (larger) job"
BIG='{"benchmark":"firewall","scale":2,"label":"sse-demo"}'
JOB2=$(curl -fsS -X POST "$BASE/v1/jobs" -d "$BIG" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
curl -sN --max-time 30 "$BASE/v1/jobs/$JOB2/events"

echo
echo "==> re-submitting the first spec with permuted keys: cache hit, no simulation"
PERMUTED='{"label":"quickstart","algorithms":["vl","0delay","tuned"],"benchmark":"FIR","scale":1}'
curl -fsS -o /dev/null -w 'HTTP %{response_code} in %{time_total}s\n' \
    -X POST "$BASE/v1/jobs" -d "$PERMUTED"

echo
echo "==> metrics (queue, in-flight, cache, latency histogram)"
curl -fsS "$BASE/metrics" | grep -E '^spamer_serve' | head -20

echo
echo "==> SIGTERM: graceful drain"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
trap - EXIT
echo "done"
