// Package spamer is a library-level reproduction of "SPAMeR: Speculative
// Push for Anticipated Message Requests in Multi-Core Systems"
// (Wu et al., ICPP 2022).
//
// It assembles a deterministic cycle-granularity simulation of a
// multi-core system whose cores communicate through hardware message
// queues: the Virtual-Link routing device (the paper's baseline) and the
// SPAMeR Routing Device, which speculatively pushes messages into
// consumer cache lines in anticipation of requests.
//
// A System bundles the simulation kernel, the coherence-network bus, the
// routing device, and the software queue library. Application threads are
// simulation processes spawned with Spawn; they communicate through
// Queues created with NewQueue. Run drives the simulation to completion
// and returns a Result with the metrics the paper's evaluation reports:
// execution time, consumer-line empty/non-empty cycle breakdown
// (Figure 9), push failure rates (Figure 10a), and bus utilization
// (Figure 10b).
//
// Minimal example:
//
//	sys := spamer.NewSystem(spamer.Config{Algorithm: spamer.AlgTuned})
//	q := sys.NewQueue("work")
//	sys.Spawn("producer", func(t *spamer.Thread) {
//		pr := q.NewProducer(0)
//		for i := 0; i < 100; i++ {
//			pr.Push(t.Proc, uint64(i))
//		}
//	})
//	sys.Spawn("consumer", func(t *spamer.Thread) {
//		c := q.NewConsumer(t.Proc, 4)
//		for i := 0; i < 100; i++ {
//			_ = c.Pop(t.Proc)
//		}
//	})
//	res := sys.Run()
//	fmt.Println(res.Ticks, res.FailureRate(), res.BusUtilization)
package spamer

import (
	"fmt"

	"spamer/internal/config"
	"spamer/internal/core"
	"spamer/internal/isa"
	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
	"spamer/internal/vl"
	"spamer/internal/vlq"
)

// Algorithm names accepted by Config.Algorithm.
const (
	// AlgBaseline selects the plain Virtual-Link routing device: no
	// specBuf, demand-driven pushes only.
	AlgBaseline = "vl"
	// AlgZeroDelay selects SPAMeR with the 0-delay algorithm (§3.5).
	AlgZeroDelay = "0delay"
	// AlgAdaptive selects SPAMeR with the adaptive delay algorithm.
	AlgAdaptive = "adapt"
	// AlgTuned selects SPAMeR with the tuned algorithm of Listing 1.
	AlgTuned = "tuned"
)

// Configs returns the four evaluation configurations in paper order:
// VL baseline, then SPAMeR with 0-delay, adaptive, and tuned.
func Configs() []string {
	return []string{AlgBaseline, AlgZeroDelay, AlgAdaptive, AlgTuned}
}

// Config parameterizes a System.
type Config struct {
	// Algorithm picks the routing device flavour: AlgBaseline (or "")
	// for Virtual-Link, or one of the SPAMeR delay algorithms.
	Algorithm string

	// Tuned overrides the tuned-algorithm parameters when Algorithm is
	// AlgTuned; the zero value selects the paper's published set.
	Tuned config.TunedParams

	// CustomAlgorithm installs a caller-supplied delay-prediction
	// algorithm instead of the named ones (Algorithm must then be
	// "custom"). Used by ablation studies and instrumented runs.
	CustomAlgorithm core.DelayAlgorithm

	// Inlined selects macro-inlined queue library functions (§3.4).
	// The paper's evaluation applies inlining to baseline and SPAMeR
	// alike; NewSystem therefore defaults it to true. Set
	// NoInline to get the function-call overhead instead.
	NoInline bool

	// SRD overrides the routing-device structure capacities
	// (default: Table 1, 64 entries each).
	SRD vl.Config

	// HopLatency overrides the one-way core<->device hop latency in
	// cycles (default config.HopCycles).
	HopLatency uint64

	// BusChannels overrides the interconnect channel count
	// (default noc.DefaultChannels). Topology sensitivity studies use
	// 1 for a single shared bus.
	BusChannels int

	// Devices sets the number of routing devices attached to the
	// network (default 1). The paper treats the routing device "like a
	// slice of system cache ... as such a system could have more than
	// one router" (§3.1); queues are distributed round-robin across
	// devices. All devices share the interconnect.
	Devices int

	// Domains selects the simulation kernel. 0 (the default) is the
	// sequential kernel — the reference model whose dispatch traces the
	// PR 3 golden tests pin. Any value >= 1 builds the multi-domain
	// parallel fabric (one conservative domain per simulated core plus a
	// hub domain per routing device) and uses Domains worker lanes to
	// execute it; because the domain partitioning is fixed by the model
	// and lanes only execute it, every Domains >= 1 dispatches the exact
	// same event trace. The parallel fabric is a distinct deterministic
	// model variant (per-domain bus slices; acceptance learned a response
	// trip later), so its results differ from Domains=0 — compare within
	// a kernel, not across. Failure injection (EvictEvery) forces the
	// sequential kernel; see Config.EffectiveDomains.
	Domains int

	// FaultDropStash arms a message-drop fault for verification runs: the
	// n-th stash delivery of the primary routing device (1-based, counted
	// across the run) acknowledges a hit without filling the target line —
	// the classic lost-message bug the oracle's conservation invariant
	// exists to catch. 0 disables. Fault injection forces the sequential
	// kernel (see Config.EffectiveDomains); it exists so tests can prove
	// the verification layer detects real loss, never for measurement.
	FaultDropStash uint64

	// FaultCorruptStash arms a payload-corruption fault: the n-th stash
	// delivery fills its line with flipped payload bits (metadata
	// intact), so the run completes and only the oracle's
	// payload-integrity invariant can flag it. 0 disables; forces the
	// sequential kernel like FaultDropStash.
	FaultCorruptStash uint64

	// EvictEvery enables failure injection: every EvictEvery cycles one
	// consumer cache line (rotating deterministically over all
	// endpoints) loses residency, as a cache conflict would cause. The
	// system must deliver every message regardless — pushes to the
	// evicted line miss and retry, and the consumer refetches on its
	// next access. 0 disables.
	EvictEvery uint64

	// Deadline bounds simulated time; Run panics past it (default 2^40,
	// effectively unlimited but converts livelock into a loud failure).
	Deadline uint64
}

// Thread is an application thread pinned to a simulated core ("each
// thread is assigned to a core", §4.1).
type Thread struct {
	// Proc is the underlying simulation process; queue operations and
	// Compute charge time to it.
	Proc *sim.Proc
	// Core is the core index the thread is pinned to.
	Core int
}

// Compute charges d cycles of local work to the thread — the per-message
// processing between queue operations.
func (t *Thread) Compute(d uint64) { t.Proc.Sleep(d) }

// Now reports the current simulated tick.
func (t *Thread) Now() uint64 { return t.Proc.Now() }

// System is one simulated machine: kernel, bus, routing device(s),
// queue library, and the application threads spawned onto it.
type System struct {
	cfg Config

	kernel *sim.Kernel
	bus    *noc.Bus
	as     *mem.AddressSpace

	// One slice entry per routing device; index 0 is the primary the
	// single-device accessors expose.
	devs  []*vl.Device
	specs []*core.SpecBuf
	libs  []*vlq.Lib

	nextDev int

	// fab is non-nil on multi-domain systems (Config.Domains >= 1).
	fab    *fabric
	seqRec *sim.TraceRecorder

	threads []*Thread
	queues  []*Queue

	queueProbe vlq.Probe

	onDrain []func()

	ran    bool
	result Result
}

// NewSystem builds a system per cfg.
func NewSystem(cfg Config) *System {
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgBaseline
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = 1 << 40
	}
	hop := cfg.HopLatency
	if hop == 0 {
		hop = config.HopCycles
	}
	ndev := cfg.Devices
	if ndev <= 0 {
		ndev = 1
	}
	if cfg.EffectiveDomains() > 0 {
		return newParallelSystem(cfg, hop, ndev)
	}
	k := sim.New()
	k.SetDeadline(cfg.Deadline)
	bus := noc.NewWithOptions(k, hop, cfg.BusChannels)
	as := mem.NewAddressSpace(k)

	s := &System{cfg: cfg, kernel: k, bus: bus, as: as}
	for i := 0; i < ndev; i++ {
		dev := vl.New(k, bus, as, cfg.SRD)
		if cfg.Algorithm != AlgBaseline {
			alg, ok := algorithm(cfg)
			if !ok {
				panic(fmt.Sprintf("spamer: unknown algorithm %q", cfg.Algorithm))
			}
			n := cfg.SRD.LinkEntries
			if n == 0 {
				n = config.SRDEntries
			}
			spec := core.NewSpecBuf(n, alg)
			dev.SetSpecExtension(spec)
			s.specs = append(s.specs, spec)
		}
		ii := isa.New(k, bus, dev)
		lib := vlq.New(k, as, dev, ii)
		lib.Inlined = !cfg.NoInline
		s.devs = append(s.devs, dev)
		s.libs = append(s.libs, lib)
	}
	if cfg.FaultDropStash > 0 {
		s.devs[0].FaultDropStash(cfg.FaultDropStash)
	}
	if cfg.FaultCorruptStash > 0 {
		s.devs[0].FaultCorruptStash(cfg.FaultCorruptStash)
	}
	return s
}

func algorithm(cfg Config) (core.DelayAlgorithm, bool) {
	if cfg.CustomAlgorithm != nil {
		return cfg.CustomAlgorithm, true
	}
	if cfg.Algorithm == AlgTuned && cfg.Tuned != (config.TunedParams{}) {
		return core.Tuned{P: cfg.Tuned}, true
	}
	return core.ByName(cfg.Algorithm)
}

// Speculative reports whether the system runs SPAMeR routing devices
// (any algorithm) rather than the VL baseline.
func (s *System) Speculative() bool { return len(s.specs) > 0 }

// AlgorithmName reports the configured algorithm ("vl", "0delay", ...).
func (s *System) AlgorithmName() string { return s.cfg.Algorithm }

// Kernel exposes the simulation kernel (advanced use: custom events).
func (s *System) Kernel() *sim.Kernel { return s.kernel }

// Bus exposes the coherence-network bus (advanced use: custom traffic).
func (s *System) Bus() *noc.Bus { return s.bus }

// Device exposes the primary routing device (advanced use: direct
// inspection). Multi-device systems expose the rest via Devices.
func (s *System) Device() *vl.Device { return s.devs[0] }

// Devices exposes every routing device.
func (s *System) Devices() []*vl.Device { return s.devs }

// SpecBuf exposes the primary device's specBuf, or nil on the VL
// baseline.
func (s *System) SpecBuf() *core.SpecBuf {
	if len(s.specs) == 0 {
		return nil
	}
	return s.specs[0]
}

// SpecBufs exposes every device's specBuf (empty on the VL baseline).
func (s *System) SpecBufs() []*core.SpecBuf { return s.specs }

// AddressSpaces exposes every line arena: the single shared space of a
// sequential system, or one per domain on the parallel fabric. The
// verification oracle walks their slab bookkeeping alongside the device
// and specBuf tables.
func (s *System) AddressSpaces() []*mem.AddressSpace {
	if s.fab != nil {
		out := make([]*mem.AddressSpace, len(s.fab.doms))
		for d := range s.fab.doms {
			out[d] = s.fab.space(d)
		}
		return out
	}
	return []*mem.AddressSpace{s.as}
}

// SetQueueProbe installs p on every queue subsequently created with
// NewQueue. Must be called before the workload builds its queues; the
// verification layer (internal/oracle) uses it to observe every message
// entering and leaving the system. See vlq.Probe for the observer
// contract (no event scheduling; trace-neutral).
func (s *System) SetQueueProbe(p vlq.Probe) { s.queueProbe = p }

// Spawn adds an application thread. The body runs as a simulation
// process starting at tick 0; threads are pinned round-robin to the
// Table 1 cores. Spawn panics once Run has been called.
func (s *System) Spawn(name string, body func(t *Thread)) *Thread {
	if s.ran {
		panic("spamer: Spawn after Run")
	}
	t := &Thread{Core: len(s.threads) % config.NumCores}
	s.threads = append(s.threads, t)
	k := s.kernel
	if s.fab != nil {
		// Each thread runs inside its core's simulation domain.
		k = s.fab.pk.Domain(t.Core)
	}
	t.Proc = k.Go(name, func(p *sim.Proc) { body(t) })
	return t
}

// Threads reports how many threads have been spawned.
func (s *System) Threads() int { return len(s.threads) }

// OnDrain registers fn to run after Run's event loop drains, before the
// Result is collected. Instrumentation uses it to finalize: a stats
// sampler flushes its last partial window here so end-of-run counters
// are fully accounted. OnDrain must be called before Run.
func (s *System) OnDrain(fn func()) {
	if s.ran {
		panic("spamer: OnDrain after Run")
	}
	s.onDrain = append(s.onDrain, fn)
}

// Run drives the simulation until every thread finishes, then gathers
// the Result. Run may be called once.
func (s *System) Run() Result {
	if s.ran {
		panic("spamer: Run called twice")
	}
	s.ran = true
	if s.fab != nil {
		s.result = s.runParallel()
		return s.result
	}
	if s.cfg.EvictEvery > 0 {
		s.startEvictionInjector(s.cfg.EvictEvery)
	}
	s.kernel.Run()
	if live := s.kernel.LiveProcs(); live != 0 {
		panic(panicDeadlock(live))
	}
	for _, fn := range s.onDrain {
		fn()
	}
	s.result = s.collect()
	return s.result
}

func panicDeadlock(live int) string {
	return fmt.Sprintf("spamer: deadlock — %d threads still parked with no pending events", live)
}

func (s *System) collect() Result {
	r := Result{
		Algorithm:      s.cfg.Algorithm,
		Ticks:          s.kernel.Now(),
		Bus:            s.bus.Stats(),
		BusUtilization: s.bus.Utilization(),
	}
	for i, d := range s.devs {
		st := d.Stats()
		if i == 0 {
			r.Device = st
		} else {
			r.Device = addStats(r.Device, st)
		}
	}
	r.MS = config.TicksToMS(r.Ticks)
	s.collectQueues(&r)
	return r
}

// collectQueues folds per-queue message counts and consumer-line
// occupancy into the result (shared by the sequential and parallel
// collectors; after a parallel run every domain clock has been
// normalized to the last event tick, so the occupancy integrals of
// different domains cover the same window).
func (s *System) collectQueues(r *Result) {
	for _, q := range s.queues {
		r.Pushed += q.inner.Pushed()
		r.Popped += q.inner.Popped()
		for _, c := range q.inner.Consumers() {
			e, v := mem.Occupancy(c.Lines())
			r.EmptyTicks += e
			r.NonEmptyTicks += v
			r.ConsumerLines += len(c.Lines())
		}
	}
	if r.ConsumerLines > 0 {
		r.AvgEmptyTicks = float64(r.EmptyTicks) / float64(r.ConsumerLines)
		r.AvgNonEmptyTicks = float64(r.NonEmptyTicks) / float64(r.ConsumerLines)
	}
}

// startEvictionInjector arms the failure injector: a recurring event
// that evicts consumer lines in a deterministic rotation. Endpoints are
// discovered lazily (threads create them after startup).
func (s *System) startEvictionInjector(period uint64) {
	victim := 0
	lines := make([]*mem.Line, 0, 64) // reused across ticks
	var tickFn func(uint64)
	tickFn = func(uint64) {
		if s.kernel.LiveProcs() == 0 {
			return
		}
		lines = lines[:0]
		for _, q := range s.queues {
			for _, c := range q.inner.Consumers() {
				lines = append(lines, c.Lines()...)
			}
		}
		if len(lines) > 0 {
			lines[victim%len(lines)].Evict()
			victim++
		}
		s.kernel.AfterFunc(period, tickFn, 0)
	}
	s.kernel.AfterFunc(period, tickFn, 0)
}

// addStats sums two device counter snapshots (multi-device systems).
func addStats(a, b vl.Stats) vl.Stats {
	return vl.Stats{
		PushAccepts:   a.PushAccepts + b.PushAccepts,
		PushNACKs:     a.PushNACKs + b.PushNACKs,
		Fetches:       a.Fetches + b.Fetches,
		FetchNACKs:    a.FetchNACKs + b.FetchNACKs,
		Registers:     a.Registers + b.Registers,
		DemandPushes:  a.DemandPushes + b.DemandPushes,
		DemandHits:    a.DemandHits + b.DemandHits,
		DemandMisses:  a.DemandMisses + b.DemandMisses,
		SpecScheduled: a.SpecScheduled + b.SpecScheduled,
		SpecPushes:    a.SpecPushes + b.SpecPushes,
		SpecHits:      a.SpecHits + b.SpecHits,
		SpecMisses:    a.SpecMisses + b.SpecMisses,
	}
}

// Result carries the metrics of one completed run.
type Result struct {
	Algorithm string

	// Ticks is the end-to-end execution time in cycles; MS converts to
	// milliseconds at the Table 1 clock.
	Ticks uint64
	MS    float64

	// Pushed and Popped count messages through all queues; equal runs
	// conserve messages.
	Pushed, Popped uint64

	// Device and Bus are the raw counter snapshots.
	Device vl.Stats
	Bus    noc.Stats

	// BusUtilization is the Figure 10b metric.
	BusUtilization float64

	// EmptyTicks/NonEmptyTicks integrate consumer-line occupancy over
	// all consumer lines; the Avg forms divide by ConsumerLines —
	// the Figure 9 breakdown ("average consumer cacheline empty
	// cycles" vs non-empty).
	EmptyTicks, NonEmptyTicks uint64
	ConsumerLines             int
	AvgEmptyTicks             float64
	AvgNonEmptyTicks          float64

	// Parallel holds the multi-domain kernel's telemetry (zero on a
	// sequential run). Every counter is deterministic — a function of the
	// model partitioning, never of the worker-lane count — so Result
	// equality across Domains settings still holds.
	Parallel sim.ParallelStats
}

// FailureRate is the Figure 10a metric: failed pushes out of all pushes.
func (r Result) FailureRate() float64 { return r.Device.FailureRate() }

// Speedup reports baseline.Ticks / r.Ticks — how much faster r is.
func (r Result) Speedup(baseline Result) float64 {
	if r.Ticks == 0 {
		return 0
	}
	return float64(baseline.Ticks) / float64(r.Ticks)
}
