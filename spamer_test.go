package spamer

import (
	"testing"
)

// runOneToOne runs a 1:1 queue with n messages and the given per-message
// consumer compute cost, returning the result.
func runOneToOne(t *testing.T, alg string, n int, computeCycles uint64) Result {
	t.Helper()
	sys := NewSystem(Config{Algorithm: alg, Deadline: 1 << 30})
	q := sys.NewQueue("q")
	sys.Spawn("producer", func(th *Thread) {
		pr := q.NewProducer(0)
		for i := 0; i < n; i++ {
			pr.Push(th.Proc, uint64(i))
		}
	})
	sys.Spawn("consumer", func(th *Thread) {
		c := q.NewConsumer(th.Proc, 4)
		for i := 0; i < n; i++ {
			msg := c.Pop(th.Proc)
			if msg.Seq != uint64(i) {
				t.Errorf("%s: message %d has seq %d (FIFO violation)", alg, i, msg.Seq)
			}
			th.Compute(computeCycles)
		}
	})
	res := sys.Run()
	if res.Pushed != uint64(n) || res.Popped != uint64(n) {
		t.Fatalf("%s: pushed=%d popped=%d, want %d", alg, res.Pushed, res.Popped, n)
	}
	return res
}

func TestOneToOneAllConfigs(t *testing.T) {
	for _, alg := range Configs() {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			res := runOneToOne(t, alg, 200, 20)
			if res.Ticks == 0 {
				t.Fatal("zero execution time")
			}
			if alg == AlgBaseline {
				if res.Device.SpecPushes != 0 {
					t.Fatalf("baseline issued %d spec pushes", res.Device.SpecPushes)
				}
			} else {
				if res.Device.SpecPushes == 0 {
					t.Fatalf("%s issued no spec pushes", alg)
				}
				if res.Device.Fetches != 0 {
					t.Fatalf("%s: spec-enabled consumer issued %d fetches", alg, res.Device.Fetches)
				}
			}
		})
	}
}

// TestSpeculationHelpsFastConsumer: with consumer compute well below the
// request round trip, SPAMeR should beat VL (the core claim).
func TestSpeculationHelpsFastConsumer(t *testing.T) {
	base := runOneToOne(t, AlgBaseline, 500, 10)
	for _, alg := range []string{AlgZeroDelay, AlgTuned} {
		s := runOneToOne(t, alg, 500, 10)
		if sp := s.Speedup(base); sp < 1.02 {
			t.Errorf("%s speedup = %.3f, want > 1.02 (VL %d ticks, %s %d ticks)",
				alg, sp, base.Ticks, alg, s.Ticks)
		}
	}
}

// TestProducerBoundNeutral: with an expensive producer the consumer is
// always ready, so speculation cannot help much — but must not hurt
// badly either (ping-pong/sweep behaviour in Figure 8).
func TestProducerBoundNeutral(t *testing.T) {
	mk := func(alg string) Result {
		sys := NewSystem(Config{Algorithm: alg, Deadline: 1 << 30})
		q := sys.NewQueue("q")
		const n = 200
		sys.Spawn("producer", func(th *Thread) {
			pr := q.NewProducer(0)
			for i := 0; i < n; i++ {
				th.Compute(300) // slow producer
				pr.Push(th.Proc, uint64(i))
			}
		})
		sys.Spawn("consumer", func(th *Thread) {
			c := q.NewConsumer(th.Proc, 4)
			for i := 0; i < n; i++ {
				c.Pop(th.Proc)
			}
		})
		return sys.Run()
	}
	base := mk(AlgBaseline)
	spec := mk(AlgZeroDelay)
	sp := spec.Speedup(base)
	if sp < 0.9 || sp > 1.15 {
		t.Errorf("producer-bound speedup = %.3f, want ~1.0", sp)
	}
}

// TestMNDeliveryExactlyOnce: a 3:2 queue delivers each message once.
func TestMNDeliveryExactlyOnce(t *testing.T) {
	for _, alg := range Configs() {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			sys := NewSystem(Config{Algorithm: alg, Deadline: 1 << 30})
			q := sys.NewQueue("mn")
			const perProd, nProd, nCons = 60, 3, 2
			total := perProd * nProd
			for p := 0; p < nProd; p++ {
				sys.Spawn("producer", func(th *Thread) {
					pr := q.NewProducer(0)
					for i := 0; i < perProd; i++ {
						th.Compute(15)
						pr.Push(th.Proc, uint64(i))
					}
				})
			}
			got := make(chan [2]uint64, total)
			done := make([]int, nCons)
			for cidx := 0; cidx < nCons; cidx++ {
				cidx := cidx
				sys.Spawn("consumer", func(th *Thread) {
					c := q.NewConsumer(th.Proc, 4)
					// Consumers split the work statically to avoid a
					// termination race; total is divisible by nCons.
					for i := 0; i < total/nCons; i++ {
						m := c.Pop(th.Proc)
						got <- [2]uint64{uint64(m.Src), m.Seq}
						done[cidx]++
						th.Compute(25)
					}
				})
			}
			res := sys.Run()
			close(got)
			if res.Popped != uint64(total) {
				t.Fatalf("popped %d, want %d", res.Popped, total)
			}
			seen := map[[2]uint64]int{}
			for m := range got {
				seen[m]++
			}
			if len(seen) != total {
				t.Fatalf("distinct = %d, want %d", len(seen), total)
			}
			for k, n := range seen {
				if n != 1 {
					t.Fatalf("message %v seen %d times", k, n)
				}
			}
			for c, n := range done {
				if n == 0 {
					t.Errorf("consumer %d starved", c)
				}
			}
		})
	}
}

// TestPerProducerFIFO: each producer's messages arrive in order at a 1:1
// consumer even under retries.
func TestPerProducerFIFO(t *testing.T) {
	for _, alg := range Configs() {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			sys := NewSystem(Config{Algorithm: alg, Deadline: 1 << 30})
			q := sys.NewQueue("fifo")
			const n = 300
			sys.Spawn("producer", func(th *Thread) {
				pr := q.NewProducer(0)
				for i := 0; i < n; i++ {
					pr.Push(th.Proc, uint64(i))
				}
			})
			sys.Spawn("consumer", func(th *Thread) {
				c := q.NewConsumer(th.Proc, 2) // small buffer: more retries
				last := int64(-1)
				for i := 0; i < n; i++ {
					m := c.Pop(th.Proc)
					if int64(m.Seq) != last+1 {
						t.Errorf("seq %d after %d", m.Seq, last)
					}
					last = int64(m.Seq)
					// Bursty consumption provokes failed pushes.
					if i%10 == 9 {
						th.Compute(400)
					}
				}
			})
			sys.Run()
		})
	}
}

// TestLegacyEndpointOnSpamer: the §3.4 legacy option — a demand-driven
// endpoint on a SPAMeR system still works and draws no spec pushes.
func TestLegacyEndpointOnSpamer(t *testing.T) {
	sys := NewSystem(Config{Algorithm: AlgZeroDelay, Deadline: 1 << 30})
	q := sys.NewQueue("legacy")
	const n = 100
	sys.Spawn("producer", func(th *Thread) {
		pr := q.NewProducer(0)
		for i := 0; i < n; i++ {
			pr.Push(th.Proc, uint64(i))
		}
	})
	sys.Spawn("consumer", func(th *Thread) {
		c := q.NewConsumerLegacy(th.Proc, 4)
		if c.SpecEnabled() {
			t.Error("legacy endpoint is spec-enabled")
		}
		for i := 0; i < n; i++ {
			c.Pop(th.Proc)
		}
	})
	res := sys.Run()
	if res.Device.SpecPushes != 0 {
		t.Fatalf("legacy endpoint drew %d spec pushes", res.Device.SpecPushes)
	}
	if res.Device.Fetches == 0 {
		t.Fatal("legacy endpoint issued no fetches")
	}
}

// TestDeterministicRuns: identical configurations produce identical
// results.
func TestDeterministicRuns(t *testing.T) {
	a := runOneToOne(t, AlgTuned, 150, 30)
	b := runOneToOne(t, AlgTuned, 150, 30)
	if a.Ticks != b.Ticks || a.Device != b.Device {
		t.Fatalf("nondeterminism: %+v vs %+v", a, b)
	}
}

// TestOccupancyAccounting: empty + non-empty integrals cover the full
// run for every consumer line.
func TestOccupancyAccounting(t *testing.T) {
	res := runOneToOne(t, AlgBaseline, 100, 20)
	perLine := res.EmptyTicks + res.NonEmptyTicks
	if perLine != uint64(res.ConsumerLines)*res.Ticks {
		t.Fatalf("occupancy %d != lines %d * ticks %d", perLine, res.ConsumerLines, res.Ticks)
	}
}

// TestInlineKnob: the non-inlined library is slower (the §3.4/§4.3
// inlining experiment).
func TestInlineKnob(t *testing.T) {
	run := func(noInline bool) Result {
		sys := NewSystem(Config{Algorithm: AlgBaseline, NoInline: noInline, Deadline: 1 << 30})
		q := sys.NewQueue("q")
		const n = 200
		sys.Spawn("producer", func(th *Thread) {
			pr := q.NewProducer(0)
			for i := 0; i < n; i++ {
				pr.Push(th.Proc, uint64(i))
			}
		})
		sys.Spawn("consumer", func(th *Thread) {
			c := q.NewConsumer(th.Proc, 4)
			for i := 0; i < n; i++ {
				c.Pop(th.Proc)
			}
		})
		return sys.Run()
	}
	inlined := run(false)
	called := run(true)
	if called.Ticks <= inlined.Ticks {
		t.Fatalf("inlining did not help: inlined %d, called %d", inlined.Ticks, called.Ticks)
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	sys := NewSystem(Config{})
	sys.Run()
	defer func() {
		if recover() == nil {
			t.Error("Spawn after Run did not panic")
		}
	}()
	sys.Spawn("late", func(t *Thread) {})
}

func TestUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown algorithm did not panic")
		}
	}()
	NewSystem(Config{Algorithm: "bogus"})
}
