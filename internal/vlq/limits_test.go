package vlq

import (
	"testing"

	"spamer/internal/sim"
)

func TestQueueLimitEnforced(t *testing.T) {
	r := newRig(false)
	r.lib.Limits.MaxQueues = 2
	r.lib.NewQueue("a")
	r.lib.NewQueue("b")
	defer func() {
		if recover() == nil {
			t.Error("third queue allowed past MaxQueues=2")
		}
	}()
	r.lib.NewQueue("c")
}

func TestSpecLineLimitDegradesToDemand(t *testing.T) {
	r := newRig(true)
	r.lib.Limits.MaxSpecLines = 4
	q := r.lib.NewQueue("q")
	var c1, c2, c3 *Consumer
	r.k.Go("setup", func(p *sim.Proc) {
		c1 = q.NewConsumer(p, 2, true) // 2/4 used
		c2 = q.NewConsumer(p, 2, true) // 4/4 used
		c3 = q.NewConsumer(p, 2, true) // over limit: degrades
	})
	r.k.Run()
	if !c1.SpecEnabled() || !c2.SpecEnabled() {
		t.Fatal("endpoints within the limit lost speculation")
	}
	if c3.SpecEnabled() {
		t.Fatal("endpoint past MaxSpecLines stayed spec-enabled")
	}
	if r.dev.Stats().Registers != 2 {
		t.Fatalf("registers = %d, want 2", r.dev.Stats().Registers)
	}
}

// TestSpecLimitIsolation: a limited (hostile) library instance cannot
// exhaust specBuf for a well-behaved one sharing the device.
func TestSpecLimitIsolation(t *testing.T) {
	r := newRig(true)
	// Attacker: tries to register many endpoints but is capped.
	attacker := r.lib
	attacker.Limits.MaxSpecLines = 8
	qa := attacker.NewQueue("attacker")
	r.k.Go("attacker", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			qa.NewConsumer(p, 2, true)
		}
	})
	r.k.Run()
	// The device-level specBuf must still have room (64 entries; the
	// attacker consumed at most 4 = 8 lines / 2 per endpoint).
	free := r.dev.Stats().Registers
	if free > 4 {
		t.Fatalf("attacker registered %d endpoints despite an 8-line cap", free)
	}
}
