package vlq

import (
	"testing"

	"spamer/internal/config"
	"spamer/internal/core"
	"spamer/internal/isa"
	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
	"spamer/internal/vl"
)

// rig assembles the full device stack with an optional spec extension.
type rig struct {
	k   *sim.Kernel
	lib *Lib
	dev *vl.Device
}

func newRig(spec bool) *rig {
	k := sim.New()
	k.SetDeadline(1 << 32)
	bus := noc.New(k)
	as := mem.NewAddressSpace(k)
	dev := vl.New(k, bus, as, vl.Config{})
	if spec {
		dev.SetSpecExtension(core.NewSpecBuf(0, core.ZeroDelay{}))
	}
	i := isa.New(k, bus, dev)
	lib := New(k, as, dev, i)
	lib.Inlined = true
	return &rig{k: k, lib: lib, dev: dev}
}

func TestPushPopRoundTrip(t *testing.T) {
	for _, spec := range []bool{false, true} {
		r := newRig(spec)
		q := r.lib.NewQueue("q")
		const n = 50
		r.k.Go("producer", func(p *sim.Proc) {
			pr := q.NewProducer(0)
			for i := 0; i < n; i++ {
				pr.Push(p, uint64(i*3))
			}
		})
		var got []uint64
		r.k.Go("consumer", func(p *sim.Proc) {
			c := q.NewConsumer(p, 2, spec)
			for i := 0; i < n; i++ {
				got = append(got, c.Pop(p).Payload)
			}
		})
		r.k.Run()
		if len(got) != n {
			t.Fatalf("spec=%v: popped %d", spec, len(got))
		}
		for i, v := range got {
			if v != uint64(i*3) {
				t.Fatalf("spec=%v: got[%d] = %d", spec, i, v)
			}
		}
		if q.Pushed() != n || q.Popped() != n {
			t.Fatalf("spec=%v: counters %d/%d", spec, q.Pushed(), q.Popped())
		}
	}
}

func TestProducerWindowBlocks(t *testing.T) {
	r := newRig(false)
	q := r.lib.NewQueue("q")
	var pushDone uint64
	r.k.Go("producer", func(p *sim.Proc) {
		pr := q.NewProducer(2)
		for i := 0; i < 10; i++ {
			pr.Push(p, uint64(i))
		}
		pushDone = p.Now()
	})
	r.k.Run()
	// With window 2 and accept latency ~15 cycles, 10 pushes cannot all
	// be issued back-to-back; the producer must have stalled.
	minSerial := uint64(10 * (config.InlineOverheadCycles + config.VLSelectCycles + config.VLPushCycles))
	if pushDone <= minSerial {
		t.Fatalf("10 windowed pushes finished at %d; window did not throttle", pushDone)
	}
}

func TestSpecConsumerNeverFetches(t *testing.T) {
	r := newRig(true)
	q := r.lib.NewQueue("q")
	r.k.Go("producer", func(p *sim.Proc) {
		pr := q.NewProducer(0)
		for i := 0; i < 20; i++ {
			pr.Push(p, uint64(i))
		}
	})
	r.k.Go("consumer", func(p *sim.Proc) {
		c := q.NewConsumer(p, 2, true)
		c.Prefetch(p) // must be a no-op
		for i := 0; i < 20; i++ {
			c.Pop(p)
		}
	})
	r.k.Run()
	if f := r.dev.Stats().Fetches; f != 0 {
		t.Fatalf("spec consumer issued %d fetches", f)
	}
	if r.dev.Stats().Registers != 1 {
		t.Fatalf("registers = %d", r.dev.Stats().Registers)
	}
}

func TestDemandConsumerRequestStreamRoundRobin(t *testing.T) {
	r := newRig(false)
	q := r.lib.NewQueue("q")
	var fetchLines []int
	r.k.Go("producer", func(p *sim.Proc) {
		pr := q.NewProducer(0)
		for i := 0; i < 9; i++ {
			pr.Push(p, uint64(i))
		}
	})
	r.k.Go("consumer", func(p *sim.Proc) {
		c := q.NewConsumer(p, 3, false)
		c.OnFetch = func(tick uint64, lineIdx int) { fetchLines = append(fetchLines, lineIdx) }
		for i := 0; i < 9; i++ {
			c.Pop(p)
		}
	})
	r.k.Run()
	if len(fetchLines) != 9 {
		t.Fatalf("fetches = %d", len(fetchLines))
	}
	for i, l := range fetchLines {
		if l != i%3 {
			t.Fatalf("fetch %d targeted line %d, want %d (strict round-robin)", i, l, i%3)
		}
	}
}

func TestPrefetchBoundedByLines(t *testing.T) {
	r := newRig(false)
	q := r.lib.NewQueue("q")
	fetches := 0
	r.k.Go("consumer", func(p *sim.Proc) {
		c := q.NewConsumer(p, 2, false)
		c.OnFetch = func(uint64, int) { fetches++ }
		// Prefetch many times with no fills: at most one outstanding
		// request per line is allowed.
		for i := 0; i < 10; i++ {
			c.Prefetch(p)
		}
	})
	r.k.Run()
	if fetches != 2 {
		t.Fatalf("fetches = %d, want 2 (one per line)", fetches)
	}
}

func TestTryPop(t *testing.T) {
	r := newRig(true)
	q := r.lib.NewQueue("q")
	r.k.Go("producer", func(p *sim.Proc) {
		pr := q.NewProducer(0)
		pr.Push(p, 42)
	})
	var immediate, eventual bool
	var got uint64
	r.k.Go("consumer", func(p *sim.Proc) {
		c := q.NewConsumer(p, 2, true)
		_, immediate = c.TryPop(p) // too early: push still in flight
		p.Sleep(200)
		var m mem.Message
		m, eventual = c.TryPop(p)
		got = m.Payload
	})
	r.k.Run()
	if immediate {
		t.Fatal("TryPop succeeded before delivery")
	}
	if !eventual || got != 42 {
		t.Fatalf("TryPop after delivery = %v, %d", eventual, got)
	}
}

func TestPopOrDoneReleasesOnDone(t *testing.T) {
	r := newRig(true)
	q := r.lib.NewQueue("q")
	done := sim.NewSignal("done")
	isDone := false
	var popped, released bool
	r.k.Go("consumer", func(p *sim.Proc) {
		c := q.NewConsumer(p, 2, true)
		_, popped = c.PopOrDone(p, done, func() bool { return isDone })
		released = true
	})
	r.k.At(500, func() {
		isDone = true
		done.Fire()
	})
	r.k.Run()
	if popped {
		t.Fatal("PopOrDone returned a message from an empty queue")
	}
	if !released {
		t.Fatal("PopOrDone never released the consumer")
	}
}

func TestPopOrDoneDeliversFirst(t *testing.T) {
	r := newRig(false)
	q := r.lib.NewQueue("q")
	done := sim.NewSignal("done")
	r.k.Go("producer", func(p *sim.Proc) {
		pr := q.NewProducer(0)
		pr.Push(p, 7)
	})
	var got uint64
	var ok bool
	r.k.Go("consumer", func(p *sim.Proc) {
		c := q.NewConsumer(p, 2, false)
		var m mem.Message
		m, ok = c.PopOrDone(p, done, func() bool { return false })
		got = m.Payload
	})
	r.k.Run()
	if !ok || got != 7 {
		t.Fatalf("PopOrDone = %v, %d", ok, got)
	}
}

func TestInlineOverheadDifference(t *testing.T) {
	run := func(inlined bool) uint64 {
		r := newRig(false)
		r.lib.Inlined = inlined
		q := r.lib.NewQueue("q")
		var end uint64
		r.k.Go("producer", func(p *sim.Proc) {
			pr := q.NewProducer(0)
			for i := 0; i < 20; i++ {
				pr.Push(p, uint64(i))
			}
		})
		r.k.Go("consumer", func(p *sim.Proc) {
			c := q.NewConsumer(p, 2, false)
			for i := 0; i < 20; i++ {
				c.Pop(p)
			}
			end = p.Now()
		})
		r.k.Run()
		return end
	}
	if inl, call := run(true), run(false); inl >= call {
		t.Fatalf("inlined %d not faster than called %d", inl, call)
	}
}

func TestEvictedLineRecovery(t *testing.T) {
	r := newRig(true)
	q := r.lib.NewQueue("q")
	var consumer *Consumer
	var got []uint64
	r.k.Go("consumer", func(p *sim.Proc) {
		consumer = q.NewConsumer(p, 2, true)
		for i := 0; i < 10; i++ {
			got = append(got, consumer.Pop(p).Seq)
		}
	})
	r.k.Go("producer", func(p *sim.Proc) {
		pr := q.NewProducer(0)
		for i := 0; i < 10; i++ {
			p.Sleep(50)
			pr.Push(p, uint64(i))
		}
	})
	// Failure injection: periodically evict the consumer's lines.
	for _, tick := range []uint64{120, 260, 400} {
		tick := tick
		r.k.At(tick, func() {
			for _, l := range consumer.Lines() {
				l.Evict()
			}
		})
	}
	r.k.Run()
	if len(got) != 10 {
		t.Fatalf("popped %d", len(got))
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("got[%d] = %d (FIFO broken by eviction)", i, s)
		}
	}
}

func TestQueueNamesAndSQIs(t *testing.T) {
	r := newRig(false)
	a := r.lib.NewQueue("alpha")
	b := r.lib.NewQueue("beta")
	if a.Name() != "alpha" || b.Name() != "beta" {
		t.Fatal("names lost")
	}
	if a.SQI() == b.SQI() {
		t.Fatal("duplicate SQI")
	}
	if len(r.lib.Queues()) != 2 {
		t.Fatalf("queues = %d", len(r.lib.Queues()))
	}
}

func TestQueueCloseLifecycle(t *testing.T) {
	r := newRig(true)
	q := r.lib.NewQueue("q")
	r.k.Go("producer", func(p *sim.Proc) {
		pr := q.NewProducer(0)
		for i := 0; i < 10; i++ {
			pr.Push(p, uint64(i))
		}
	})
	r.k.Go("consumer", func(p *sim.Proc) {
		c := q.NewConsumer(p, 2, true)
		for i := 0; i < 10; i++ {
			c.Pop(p)
		}
	})
	r.k.Run()
	if err := q.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !q.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if err := q.Close(); err == nil {
		t.Fatal("double Close succeeded")
	}
	// The SQI and its specBuf entry are recycled: a fresh queue and
	// spec-enabled consumer must work.
	q2 := r.lib.NewQueue("q2")
	if q2.SQI() != q.SQI() {
		t.Fatalf("SQI not recycled: %d vs %d", q2.SQI(), q.SQI())
	}
	r.k.Go("again", func(p *sim.Proc) {
		c := q2.NewConsumer(p, 2, true)
		pr := q2.NewProducer(0)
		pr.Push(p, 99)
		if m := c.Pop(p); m.Payload != 99 {
			t.Errorf("payload = %d", m.Payload)
		}
	})
	r.k.Run()
}

func TestQueueCloseUndrained(t *testing.T) {
	r := newRig(false)
	q := r.lib.NewQueue("q")
	r.k.Go("producer", func(p *sim.Proc) {
		pr := q.NewProducer(0)
		pr.Push(p, 1)
	})
	r.k.Run()
	if err := q.Close(); err == nil {
		t.Fatal("Close succeeded with undelivered data")
	}
}

func TestQueueCloseFlushesPrerequests(t *testing.T) {
	r := newRig(false)
	q := r.lib.NewQueue("q")
	r.k.Go("consumer", func(p *sim.Proc) {
		c := q.NewConsumer(p, 2, false)
		c.Prefetch(p) // dangling request, never answered
	})
	r.k.Run()
	if err := q.Close(); err != nil {
		t.Fatalf("Close with dangling prerequest: %v", err)
	}
	if r.dev.FreeConsEntries() != 64 {
		t.Fatalf("consBuf entry leaked: %d free", r.dev.FreeConsEntries())
	}
}

func TestPushOnClosedQueuePanics(t *testing.T) {
	r := newRig(false)
	q := r.lib.NewQueue("q")
	var pr *Producer
	r.k.Go("setup", func(p *sim.Proc) { pr = q.NewProducer(0) })
	r.k.Run()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// The panic surfaces inside the process goroutine, so recover there.
	r.k.Go("late", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Push on closed queue did not panic")
			}
		}()
		pr.Push(p, 1)
	})
	r.k.Run()
}
