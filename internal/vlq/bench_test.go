package vlq

import (
	"testing"

	"spamer/internal/sim"
)

// BenchmarkVLQPushPop measures the endpoint hot path in isolation: one
// producer/consumer pair streaming messages through a single queue on
// the full device stack, reported per push+pop round trip. The CPS
// state machines behind Push and Pop park the calling proc exactly once
// per operation, so this is the direct probe of the cost the endpoint
// batching rewrite targets (the SpecRun macro benchmark buries it under
// workload compute).
func BenchmarkVLQPushPop(b *testing.B) {
	for _, mode := range []struct {
		name string
		spec bool
	}{{"baseline", false}, {"spec", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			r := newRig(mode.spec)
			q := r.lib.NewQueue("bench")
			n := b.N
			r.k.Go("producer", func(p *sim.Proc) {
				pr := q.NewProducer(0)
				for i := 0; i < n; i++ {
					pr.Push(p, uint64(i))
				}
			})
			popped := 0
			r.k.Go("consumer", func(p *sim.Proc) {
				c := q.NewConsumer(p, 2, mode.spec)
				for i := 0; i < n; i++ {
					c.Pop(p)
					popped++
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			r.k.Run()
			b.StopTimer()
			if popped != n {
				b.Fatalf("popped %d of %d", popped, n)
			}
		})
	}
}
