// Package vlq is the software queue library of §3.4: the user-level API
// through which application threads create endpoints and move messages,
// layered over the ISA operations and the routing device.
//
// The library reproduces the paper's software behaviours:
//
//   - Consumer endpoints are created spec-push-enabled by default under
//     SPAMeR — the library issues spamer_register for the endpoint's
//     lines before returning it — with a legacy option for
//     non-speculative endpoints.
//   - The dequeue function of spec-enabled endpoints omits
//     vl_select/vl_fetch entirely ("eliminating the part of the code
//     issuing vl_select and vl_fetch at compile time").
//   - Demand (VL) endpoints issue vl_select+vl_fetch on every pop,
//     unconditionally — even when the target line already holds data.
//     This is the "prerequest" behaviour observed in §4.2: a request can
//     arrive at the routing device before the line actually vacates,
//     acting as an unguided prefetch (and occasionally causing push
//     failures, Figure 10a's halo column).
//   - Queue functions charge a per-call overhead; the Inlined knob
//     switches between function-call and macro-inlined costs (§3.4's
//     1.02x experiment).
package vlq

import (
	"fmt"
	"sync"

	"spamer/internal/config"
	"spamer/internal/isa"
	"spamer/internal/mem"
	"spamer/internal/sim"
	"spamer/internal/vl"
)

// Limits bounds a process's routing-device resource usage — the §3.6
// DoS mitigation: "SPAMeR allocates or frees resources via system calls
// similar to memory management ... DoS can be mitigated by setting
// limits (e.g., ulimit for soft limits ...)". Zero values mean
// unlimited.
type Limits struct {
	// MaxQueues bounds SQIs created through this library instance.
	MaxQueues int
	// MaxSpecLines bounds the total consumer lines this instance may
	// register in specBuf; past it, new endpoints silently degrade to
	// demand-driven rather than monopolizing the shared specBuf.
	MaxSpecLines int
}

// Lib is one process's view of the queue library, bound to a routing
// device.
type Lib struct {
	k   *sim.Kernel
	as  *mem.AddressSpace
	dev *vl.Device
	isa isa.Ops

	// Inlined selects macro-inlined queue functions (§3.4). The harness
	// enables it for both VL and SPAMeR runs "to show the benefits
	// brought purely by speculation" (§4.3).
	Inlined bool

	// Limits is the §3.6 resource cap for this process; zero values
	// are unlimited.
	Limits Limits

	// Binder, when set, resolves the library instance local to the
	// calling process's simulation domain. Queues of a multi-domain
	// system are created on a hub-side home library; their endpoints
	// lazily bind to the per-domain library of the thread that uses them
	// (a producer on first Push, a consumer at creation), so every
	// endpoint's pages, senders, and clock live in the domain that
	// executes it. A set Binder also restricts queues to one producer
	// and one consumer — the shapes whose endpoint state is provably
	// domain-confined.
	Binder func(p *sim.Proc) *Lib

	// mu guards endpoint registration: under a Binder, threads of
	// different domains may subscribe endpoints to the same queue
	// concurrently. Steady-state queue operations never take it.
	mu sync.Mutex

	specLines int
	queues    []*Queue

	// Block arenas behind the Queue/Producer/Consumer pointers this
	// library hands out: endpoint setup is the dominant allocation phase
	// of a run (a multi-domain system opens ~100 endpoints across 17
	// kernels), so batching the struct storage turns one heap object per
	// endpoint into one per block. Queues are created single-threaded at
	// setup; endpoint arenas are guarded by mu like the registration they
	// serve. Blocks are replaced, never grown in place, so earlier
	// pointers stay valid.
	queueArena []Queue
	prodArena  []Producer
	consArena  []Consumer
}

// arenaBlock sizes the Lib arenas (queues/producers/consumers each).
const arenaBlock = 16

// New returns a library instance over the given device.
func New(k *sim.Kernel, as *mem.AddressSpace, dev *vl.Device, i isa.Ops) *Lib {
	l := new(Lib)
	l.Init(k, as, dev, i)
	return l
}

// Init initializes l in place (batch construction for the multi-domain
// fabric's per-domain libraries; New wraps it). Must not be called on a
// Lib that is already in use — it resets all state, including the mutex.
func (l *Lib) Init(k *sim.Kernel, as *mem.AddressSpace, dev *vl.Device, i isa.Ops) {
	*l = Lib{k: k, as: as, dev: dev, isa: i}
}

func (l *Lib) overhead() uint64 {
	if l.Inlined {
		return config.InlineOverheadCycles
	}
	return config.CallOverheadCycles
}

// Probe observes the application-visible message traffic of a queue: one
// Push call per message a producer submits, one Pop call per message a
// consumer takes out of a line. The verification layer (internal/oracle)
// implements it to check conservation, ordering, and payload integrity.
//
// Probe calls run synchronously inside the endpoint operation, on the
// endpoint's simulation domain. Implementations must not schedule events
// or touch simulation state — a probe is a pure observer, and installing
// one must leave the dispatch trace bit-identical. On a multi-domain
// system callbacks arrive concurrently from different worker lanes;
// implementations synchronize internally.
type Probe interface {
	// Push observes msg entering the queue through producer endpoint
	// producer at the given domain-local tick. The message already
	// carries its (Src, Seq) link tag.
	Push(q *Queue, producer int, tick uint64, msg mem.Message)
	// Pop observes msg leaving the queue through consumer endpoint
	// consumer at the given domain-local tick.
	Pop(q *Queue, consumer int, tick uint64, msg mem.Message)
}

// Queue is one M:N message channel: a Shared Queue Identifier plus its
// subscribed endpoints.
type Queue struct {
	lib  *Lib
	sqi  vl.SQI
	name string

	producers []*Producer
	consumers []*Consumer

	probe Probe

	closed bool
}

// NewQueue creates a queue (allocates an SQI). It panics when the
// device's linkTab is exhausted or the process's queue limit (§3.6) is
// reached — resource exhaustion at setup is a configuration error.
func (l *Lib) NewQueue(name string) *Queue {
	if l.Limits.MaxQueues > 0 && len(l.queues) >= l.Limits.MaxQueues {
		panic(fmt.Sprintf("vlq: queue limit %d reached (§3.6 resource cap)", l.Limits.MaxQueues))
	}
	sqi, err := l.dev.AllocSQI()
	if err != nil {
		panic(fmt.Sprintf("vlq: %v", err))
	}
	if len(l.queueArena) == cap(l.queueArena) {
		l.queueArena = make([]Queue, 0, arenaBlock)
	}
	l.queueArena = l.queueArena[:len(l.queueArena)+1]
	q := &l.queueArena[len(l.queueArena)-1]
	*q = Queue{lib: l, sqi: sqi, name: name}
	l.queues = append(l.queues, q)
	return q
}

// Queues returns every queue created through this library instance.
func (l *Lib) Queues() []*Queue { return l.queues }

// SetProbe installs a traffic observer on the queue. Must be called
// before any endpoint operates on it; a nil probe disables observation.
// Endpoints cache the probe reference at creation — the common probe-free
// case then costs one endpoint-local nil check per message instead of
// chasing through the queue — so SetProbe also refreshes any endpoint
// already subscribed.
func (q *Queue) SetProbe(p Probe) {
	q.probe = p
	for _, pr := range q.producers {
		pr.probe = p
	}
	for _, c := range q.consumers {
		c.probe = p
	}
}

// SQI returns the queue's Shared Queue Identifier.
func (q *Queue) SQI() vl.SQI { return q.sqi }

// Name returns the queue's diagnostic name.
func (q *Queue) Name() string { return q.name }

// Pushed reports messages submitted by producers so far. The count is
// summed over endpoints — each endpoint counts in its own domain — so it
// is exact whenever the simulation is quiescent (setup, collection, or
// any point of a sequential run).
func (q *Queue) Pushed() uint64 {
	var n uint64
	for _, pr := range q.producers {
		n += pr.seq
	}
	return n
}

// Popped reports messages delivered to consumers so far (summed over
// endpoints; see Pushed).
func (q *Queue) Popped() uint64 {
	var n uint64
	for _, c := range q.consumers {
		n += c.popped
	}
	return n
}

// Consumers returns the queue's consumer endpoints.
func (q *Queue) Consumers() []*Consumer { return q.consumers }

// Close tears the queue down: it requires every accepted message to
// have been consumed, flushes dangling prerequests, unregisters the
// SQI's speculative targets, and returns the SQI to the device (the
// system-call resource management of §3.6). Operations on a closed
// queue panic.
func (q *Queue) Close() error {
	if q.closed {
		return fmt.Errorf("vlq: %s already closed", q.name)
	}
	if pushed, popped := q.Pushed(), q.Popped(); pushed != popped {
		return fmt.Errorf("vlq: %s not drained (%d pushed, %d popped)", q.name, pushed, popped)
	}
	if err := q.lib.dev.FreeSQI(q.sqi); err != nil {
		return err
	}
	q.closed = true
	return nil
}

// Closed reports whether Close succeeded.
func (q *Queue) Closed() bool { return q.closed }

// Producers returns the queue's producer endpoints.
func (q *Queue) Producers() []*Producer { return q.producers }

// ---------------------------------------------------------------------
// Producer endpoint.
// ---------------------------------------------------------------------

// DefaultWindow is the per-producer bound on pushes in flight — the
// producer's endpoint page acts as a ring of lines whose ownership
// transfers to the routing device at vl_push accept (§3.1); the producer
// reuses a line only after a previous transfer completed.
const DefaultWindow = 4

// Producer is a producer endpoint: a page of lines pushed to one SQI.
//
// Push runs as a continuation-passing state machine on the kernel
// goroutine (see pushStep): the calling process parks once for the whole
// operation instead of once per charged delay, which is where the bulk
// of a simulated push's host-side cost used to go. Hot mutable counters
// are grouped together and padded below so two endpoints adjacent in the
// heap never share a cache line of the host when their domains run on
// different worker lanes.
type Producer struct {
	q      *Queue
	lib    *Lib // bound on first Push (the pushing thread's domain)
	id     int
	window int
	probe  Probe // cached from the queue: probe-free fast path

	credit   sim.Gate // single-waiter window rendezvous; no allocation
	acceptFn func()   // bound once; the push hot path allocates no closure
	stepFn   func(uint64)
	afterFn  func(uint64) // bound on first PushAfter
	snd      isa.Port

	// OnAccept, if non-nil, observes every vl_push of this endpoint the
	// routing device accepts (tick, message sequence). Used by the
	// Figure 7 tracer as the "data arrive" event.
	OnAccept func(tick uint64, seq uint64)

	_ [64]byte // hot counters below never false-share with the fields above

	outstanding int
	seq         uint64
	accSeq      uint64 // next sequence to be accepted (acceptance is FIFO)

	// In-flight Push state: the parked body, its payload, and the
	// message under construction. One Push per endpoint is in flight at
	// a time (an endpoint belongs to one thread), so the state lives
	// here rather than per call.
	pushP       *sim.Proc
	pushPayload uint64
	pushMsg     mem.Message
	cell        sim.WaitCell

	_ [64]byte
}

// Push state-machine steps (the uint64 event argument of stepFn).
const (
	prPushCredit   uint64 = iota // library overhead charged; (re-)check the window
	prPushSelected               // vl_select cycles charged; issue vl_push
	prPushIssued                 // vl_push cycles charged; hand to the sender
)

// NewProducer subscribes a producer endpoint to the queue. window bounds
// in-flight pushes; 0 selects DefaultWindow.
func (q *Queue) NewProducer(window int) *Producer {
	if window <= 0 {
		window = DefaultWindow
	}
	lib := q.lib
	lib.mu.Lock()
	defer lib.mu.Unlock()
	if lib.Binder != nil && len(q.producers) > 0 {
		panic(fmt.Sprintf("vlq: second producer on %s — domain-partitioned systems support 1:1 queues only", q.name))
	}
	if len(lib.prodArena) == cap(lib.prodArena) {
		lib.prodArena = make([]Producer, 0, arenaBlock)
	}
	lib.prodArena = lib.prodArena[:len(lib.prodArena)+1]
	p := &lib.prodArena[len(lib.prodArena)-1]
	*p = Producer{
		q:      q,
		id:     len(q.producers),
		window: window,
		probe:  q.probe,
	}
	p.acceptFn = p.accepted
	q.producers = append(q.producers, p)
	return p
}

// accepted runs at each vl_push acceptance tick. The endpoint's sender
// is an ordered store buffer, so acceptances arrive in push order and a
// counter recovers the accepted sequence number — no per-push closure
// has to capture the message.
func (pr *Producer) accepted() {
	pr.outstanding--
	pr.credit.Fire()
	seq := pr.accSeq
	pr.accSeq++
	if pr.OnAccept != nil {
		pr.OnAccept(pr.lib.k.Now(), seq)
	}
}

// bind resolves the endpoint's domain-local library on first use and
// creates its ordered sender there. Sequential systems (no Binder) bind
// to the queue's own library; the deferral is free either way because
// sender creation schedules nothing.
func (pr *Producer) bind(p *sim.Proc) *Lib {
	if pr.lib == nil {
		lib := pr.q.lib
		if lib.Binder != nil {
			lib = lib.Binder(p)
		}
		pr.lib = lib
		pr.snd = lib.isa.NewPushPort()
		pr.stepFn = pr.pushStep
		pr.cell.Init(lib.k, pr.stepFn)
	}
	return pr.lib
}

// ID returns the endpoint's index within its queue.
func (pr *Producer) ID() int { return pr.id }

// Seq returns the number of messages pushed so far.
func (pr *Producer) Seq() uint64 { return pr.seq }

// Push enqueues one message. The calling process is charged the library
// overhead plus vl_select+vl_push, then blocks only if the producer's
// line window is exhausted (ownership of a previous line has not yet
// transferred to the routing device).
//
// The delays are charged by the pushStep state machine on the kernel
// goroutine; the body parks exactly once. The event schedule — one
// event per charged delay, one re-check event per credit fire — is
// bit-identical to the process-blocking form this replaced.
func (pr *Producer) Push(p *sim.Proc, payload uint64) {
	if pr.q.closed {
		panic("vlq: Push on closed queue " + pr.q.name)
	}
	lib := pr.bind(p)
	pr.pushP = p
	pr.pushPayload = payload
	lib.k.AfterFunc(lib.overhead(), pr.stepFn, prPushCredit)
	p.Park()
	pr.pushP = nil
}

// PushAfter charges the caller d cycles of compute and then pushes
// payload, parking the calling process once for the pair. It is
// trace-identical to p.Sleep(d) followed by Push(p, payload): the
// compute-wake event and every push event are scheduled at the same
// ticks by AfterFunc calls at the same points of the serialized dispatch
// order, so (tick, seq) dispatch traces are unchanged — only the
// goroutine round trip at the sleep/push boundary is elided. Workload
// inner loops of the form Compute(d); Push(...) use it to drop one
// scheduler hand-off per message.
func (pr *Producer) PushAfter(p *sim.Proc, d uint64, payload uint64) {
	if pr.q.closed {
		panic("vlq: Push on closed queue " + pr.q.name)
	}
	lib := pr.bind(p)
	if pr.afterFn == nil {
		pr.afterFn = pr.pushAfterStep
	}
	pr.pushP = p
	pr.pushPayload = payload
	lib.k.AfterFunc(d, pr.afterFn, 0)
	p.Park()
	pr.pushP = nil
}

// pushAfterStep runs at the tick the fused compute finishes — where the
// blocking form's Sleep would have woken the process — and issues the
// push exactly as the resumed body would: one overhead-delayed event
// starting the pushStep machine.
func (pr *Producer) pushAfterStep(uint64) {
	lib := pr.lib
	lib.k.AfterFunc(lib.overhead(), pr.stepFn, prPushCredit)
}

// pushStep is the Push state machine, driven by kernel events whose
// delays charge the op's simulated cycles. Each case runs at the tick
// the blocking form's process would have resumed at, and performs the
// same work in the same order, so (tick, seq) dispatch traces are
// unchanged.
func (pr *Producer) pushStep(state uint64) {
	lib := pr.lib
	switch state {
	case prPushCredit:
		if pr.outstanding >= pr.window {
			pr.credit.WaitCell(&pr.cell, prPushCredit)
			return
		}
		pr.outstanding++
		pr.pushMsg = mem.Message{Src: pr.id, Seq: pr.seq, Payload: pr.pushPayload}
		pr.seq++
		if pr.probe != nil {
			pr.probe.Push(pr.q, pr.id, lib.k.Now(), pr.pushMsg)
		}
		lib.isa.NoteSelect()
		lib.k.AfterFunc(config.VLSelectCycles, pr.stepFn, prPushSelected)
	case prPushSelected:
		lib.isa.NotePush()
		lib.k.AfterFunc(config.VLPushCycles, pr.stepFn, prPushIssued)
	case prPushIssued:
		lib.isa.EnqueuePush(pr.snd, pr.q.sqi, pr.pushMsg, pr.acceptFn)
		pr.pushP.Unpark()
	}
}

// ---------------------------------------------------------------------
// Consumer endpoint.
// ---------------------------------------------------------------------

// Consumer is a consumer endpoint: a page of lines that receive stashes,
// popped in round-robin order (the library "would use the cachelines of
// an endpoint in a round-robin fashion", §3.5).
//
// Pop runs as a continuation-passing state machine on the kernel
// goroutine (see popStep); the calling process parks once per Pop. As
// with Producer, hot mutable counters are grouped and padded so
// endpoints of different domains never false-share host cache lines.
type Consumer struct {
	q     *Queue
	lib   *Lib // bound at creation (the creating thread's domain)
	id    int
	probe Probe // cached from the queue: probe-free fast path
	page  *mem.Page
	spec  bool
	snd   isa.Port

	stepFn func(uint64)

	// OnFetch, if non-nil, observes every vl_fetch issued by this
	// endpoint (tick, target line index). Used by the Figure 7 tracer.
	OnFetch func(tick uint64, lineIdx int)

	_ [64]byte // hot counters below never false-share with the fields above

	next   int
	polls  uint64
	popped uint64

	// Demand-request bookkeeping. Requests are posted strictly
	// round-robin over the endpoint lines — request j names line
	// j mod nlines — so the routing device's FIFO matching delivers
	// message m into line m mod nlines, exactly the line the m-th Pop
	// reads. (An earlier design let Pop and Prefetch post for
	// independent lines; interleavings then delivered fills out of the
	// pop rotation and deadlocked multi-queue workloads.)
	postedCount uint64 // requests posted (P); request j targets line j%n
	popsStarted uint64 // pops begun (K); pop k reads line k%n

	// In-flight Pop state: the parked body, the pop's sequence number
	// and target line, and the message handed back. One Pop per
	// endpoint is in flight at a time.
	popP    *sim.Proc
	popK    uint64
	popLine *mem.Line
	popMsg  mem.Message
	cell    sim.WaitCell

	_ [64]byte
}

// Pop state-machine steps (the uint64 event argument of stepFn).
const (
	coPopStart      uint64 = iota // library overhead charged; begin the pop
	coPopFetchSel                 // vl_select cycles charged; issue vl_fetch
	coPopFetchIssue               // vl_fetch cycles charged; hand to the sender
	coPopTouch                    // eviction refetch penalty charged; restore residency
	coPopCheck                    // a fill (or eviction) fired OnFill; re-check the line
	coPopLoad                     // L1 hit latency charged; take the message if still valid
)

// NewConsumer subscribes a consumer endpoint with nlines buffer lines.
// If spec is true the endpoint is spec-push-enabled: the library
// registers its lines in specBuf (spamer_register) at creation, and Pop
// never issues vl_fetch. With spec false the endpoint is a legacy
// demand-driven VL endpoint.
//
// Registration happens from a short-lived setup process, mirroring the
// library function that creates consumer endpoints (§3.4).
func (q *Queue) NewConsumer(p *sim.Proc, nlines int, spec bool) *Consumer {
	if nlines <= 0 {
		nlines = 1
	}
	home := q.lib
	lib := home
	if home.Binder != nil {
		lib = home.Binder(p)
	}
	home.mu.Lock()
	if home.Binder != nil && len(q.consumers) > 0 {
		home.mu.Unlock()
		panic(fmt.Sprintf("vlq: second consumer on %s — domain-partitioned systems support 1:1 queues only", q.name))
	}
	if len(home.consArena) == cap(home.consArena) {
		home.consArena = make([]Consumer, 0, arenaBlock)
	}
	home.consArena = home.consArena[:len(home.consArena)+1]
	c := &home.consArena[len(home.consArena)-1]
	*c = Consumer{
		q:     q,
		lib:   lib,
		id:    len(q.consumers),
		probe: q.probe,
		page:  lib.as.NewPage(nlines),
		spec:  spec,
		snd:   lib.isa.NewFetchPort(),
	}
	c.stepFn = c.popStep
	c.cell.Init(lib.k, c.stepFn)
	q.consumers = append(q.consumers, c)
	home.mu.Unlock()
	if spec {
		if lib.Limits.MaxSpecLines > 0 && lib.specLines+nlines > lib.Limits.MaxSpecLines {
			// §3.6 resource cap: the endpoint degrades to demand-driven
			// rather than letting one process monopolize specBuf.
			c.spec = false
			return c
		}
		lib.specLines += nlines
		lib.isa.Register(p, q.sqi, c.page.Base, nlines)
	}
	return c
}

// ID returns the endpoint's index within its queue.
func (c *Consumer) ID() int { return c.id }

// SpecEnabled reports whether the endpoint is spec-push-enabled.
func (c *Consumer) SpecEnabled() bool { return c.spec }

// Lines exposes the endpoint's buffer lines (stats/tracing).
func (c *Consumer) Lines() []*mem.Line { return c.page.Lines }

// totalFills sums fills across the endpoint lines; in demand mode every
// fill consumed exactly one posted request.
func (c *Consumer) totalFills() uint64 {
	var f uint64
	for _, l := range c.page.Lines {
		f += l.Fills()
	}
	return f
}

// postFetchNext issues the next request of the endpoint's round-robin
// request stream.
func (c *Consumer) postFetchNext(p *sim.Proc) {
	lib := c.lib
	i := int(c.postedCount) % len(c.page.Lines)
	lib.isa.Select(p)
	lib.isa.Fetch(p, c.snd, c.q.sqi, c.page.Lines[i].Addr)
	c.postedCount++
	if c.OnFetch != nil {
		c.OnFetch(p.Now(), i)
	}
}

// Prefetch posts one demand request ahead of need — even when its target
// line currently holds unconsumed data. This is the guided form of the
// "prerequest" behaviour of §4.2: a request travelling to the routing
// device while the line is still valid lets buffered producer data start
// moving before the consumer actually vacates the line. The resulting
// push can miss (the line has not vacated yet) and retry — the source of
// the VL baseline's non-zero failure rate on halo (Figure 10a) — but is
// overall beneficial.
//
// At most one unconsumed request per line is kept outstanding.
// Spec-enabled endpoints never request, so Prefetch is a no-op for them.
func (c *Consumer) Prefetch(p *sim.Proc) {
	if c.spec {
		return
	}
	p.Sleep(c.lib.overhead())
	if c.postedCount-c.totalFills() < uint64(len(c.page.Lines)) {
		c.postFetchNext(p)
	}
}

// Pop dequeues one message, blocking the calling process until data is
// available in the endpoint's next line.
//
// Demand (VL) endpoints issue vl_select+vl_fetch for the line first
// (unless a request is already outstanding, e.g. from Prefetch) — even
// if it currently holds data, which is the unguided prerequest of §4.2.
// Spec-enabled endpoints skip the request entirely; the routing device
// is expected to push speculatively.
func (c *Consumer) Pop(p *sim.Proc) mem.Message {
	c.popP = p
	c.lib.k.AfterFunc(c.lib.overhead(), c.stepFn, coPopStart)
	p.Park()
	c.popP = nil
	return c.popMsg
}

// popStep is the Pop state machine, driven by kernel events whose delays
// charge the op's simulated cycles. Each case runs at the tick the
// process-blocking form's body would have resumed at and performs the
// same work in the same order — including the unguided-prerequest fetch
// loop, the eviction refetch, and the load-to-use recheck — so (tick,
// seq) dispatch traces are unchanged.
func (c *Consumer) popStep(state uint64) {
	switch state {
	case coPopStart:
		k := c.popsStarted
		c.popsStarted++
		c.popK = k
		idx := int(k) % len(c.page.Lines)
		c.popLine = c.page.Lines[idx]
		c.next = (int(k) + 1) % len(c.page.Lines)
		c.popFetchLoop()
	case coPopFetchSel:
		c.lib.isa.NoteFetch()
		c.lib.k.AfterFunc(config.VLFetchCycles, c.stepFn, coPopFetchIssue)
	case coPopFetchIssue:
		i := int(c.postedCount) % len(c.page.Lines)
		c.lib.isa.EnqueueFetch(c.snd, c.q.sqi, c.page.Lines[i].Addr)
		c.postedCount++
		if c.OnFetch != nil {
			c.OnFetch(c.lib.k.Now(), i)
		}
		c.popFetchLoop()
	case coPopTouch:
		// Residency re-established after the refetch penalty (the
		// waiting consumer's load missed; Touch restores a written-back
		// message, firing OnFill for any sibling waiters).
		c.popLine.Touch()
		c.popAwait()
	case coPopCheck:
		c.popAwait()
	case coPopLoad:
		// Load-to-use complete. The eviction timer can fire during the
		// hit-latency delay; the write-back preserves the message, so
		// fall back into the wait loop to refetch it.
		if c.popLine.State == mem.LineValid {
			c.popFinish()
			return
		}
		c.popAwait()
	}
}

// popFetchLoop posts the demand requests owed before pop popK may
// complete ("ensure the k-th fill has a request" — the unguided
// prerequest of §4.2), one vl_select+vl_fetch pair per iteration, then
// falls into the line-wait loop. Spec-enabled endpoints post nothing.
func (c *Consumer) popFetchLoop() {
	if !c.spec && c.postedCount <= c.popK {
		c.lib.isa.NoteSelect()
		c.lib.k.AfterFunc(config.VLSelectCycles, c.stepFn, coPopFetchSel)
		return
	}
	c.popAwait()
}

// popAwait advances the wait-for-data loop one step: valid lines proceed
// to the load-to-use delay, evicted lines pay the refetch penalty, and
// empty lines park the state machine on OnFill.
func (c *Consumer) popAwait() {
	switch c.popLine.State {
	case mem.LineValid:
		c.lib.k.AfterFunc(config.L1HitCycles, c.stepFn, coPopLoad)
	case mem.LineEvicted:
		c.lib.k.AfterFunc(config.EvictPenalty, c.stepFn, coPopTouch)
	default:
		c.polls++
		c.popLine.OnFill.WaitCell(&c.cell, coPopCheck)
	}
}

// popFinish takes the message and resumes the parked body.
func (c *Consumer) popFinish() {
	line := c.popLine
	line.NoteFirstUse(line.Msg)
	msg := line.Take()
	c.popped++
	if c.probe != nil {
		c.probe.Pop(c.q, c.id, c.lib.k.Now(), msg)
	}
	c.popMsg = msg
	c.popP.Unpark()
}

// PopOrDone dequeues one message like Pop, but also returns (with
// ok=false) if the done signal fires while waiting and isDone reports
// true. Multi-consumer workloads use it to drain a shared queue whose
// per-consumer message counts are not known statically: the consumer
// that takes the last message fires done, releasing siblings blocked on
// lines that will never fill again. A request posted by a demand
// endpoint may stay parked at the routing device; that is harmless once
// no producer data remains.
func (c *Consumer) PopOrDone(p *sim.Proc, done *sim.Signal, isDone func() bool) (mem.Message, bool) {
	lib := c.lib
	p.Sleep(lib.overhead())
	k := c.popsStarted
	idx := int(k) % len(c.page.Lines)
	line := c.page.Lines[idx]
	if !c.spec && line.State != mem.LineValid && !isDone() {
		for c.postedCount <= k {
			c.postFetchNext(p)
		}
	}
	for {
		for line.State != mem.LineValid {
			if line.State == mem.LineEvicted {
				p.Sleep(config.EvictPenalty)
				line.Touch()
				continue
			}
			if isDone() {
				return mem.Message{}, false
			}
			c.polls++
			sim.WaitAny(p, &line.OnFill, done)
		}
		p.Sleep(config.L1HitCycles)
		// The eviction timer can fire during the hit-latency sleep; the
		// write-back preserves the message, so loop to refetch it.
		if line.State == mem.LineValid {
			break
		}
	}
	c.popsStarted++
	c.next = (int(k) + 1) % len(c.page.Lines)
	line.NoteFirstUse(line.Msg)
	msg := line.Take()
	c.popped++
	if c.probe != nil {
		c.probe.Pop(c.q, c.id, p.Now(), msg)
	}
	return msg, true
}

// TryPop dequeues a message only if one is immediately available in the
// next line, charging the library overhead either way. It never issues a
// request and never blocks. Used by polling-style consumers.
func (c *Consumer) TryPop(p *sim.Proc) (mem.Message, bool) {
	lib := c.lib
	p.Sleep(lib.overhead())
	line := c.page.Lines[int(c.popsStarted)%len(c.page.Lines)]
	if line.State != mem.LineValid {
		return mem.Message{}, false
	}
	c.popsStarted++
	c.next = (c.next + 1) % len(c.page.Lines)
	p.Sleep(config.L1HitCycles)
	for line.State == mem.LineEvicted {
		// Evicted during the hit-latency sleep: the write-back preserved
		// the message, so pay the refetch and take it.
		p.Sleep(config.EvictPenalty)
		line.Touch()
	}
	line.NoteFirstUse(line.Msg)
	msg := line.Take()
	c.popped++
	if c.probe != nil {
		c.probe.Pop(c.q, c.id, p.Now(), msg)
	}
	return msg, true
}

// Polls reports how many times Pop parked waiting for a fill (slow-path
// entries).
func (c *Consumer) Polls() uint64 { return c.polls }
