package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// metrics aggregates the serving-layer counters and renders them in
// Prometheus text exposition format (version 0.0.4). Hand-rolled on
// the standard library: the repo takes no dependencies, and the subset
// we need — gauges, counters, one histogram — is small.
type metrics struct {
	queueDepth atomic.Int64
	inFlight   atomic.Int64

	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	cacheEntries func() int // live size probe, set by the server

	jobsDone     atomic.Uint64
	jobsFailed   atomic.Uint64
	jobsRejected atomic.Uint64 // queue-full 429s

	runsDone   atomic.Uint64
	runsFailed atomic.Uint64

	latency histogram
}

func newMetrics() *metrics {
	return &metrics{
		// Per-job wall-clock buckets, in seconds: specs range from
		// sub-millisecond cached replays to multi-minute sweeps.
		latency: histogram{bounds: []float64{.001, .005, .025, .1, .5, 1, 2.5, 10, 60}},
	}
}

// write renders every metric. The output is deterministic (fixed
// order) so tests can assert on substrings.
func (m *metrics) write(w io.Writer) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("spamer_serve_queue_depth", "Jobs admitted and waiting for an executor.", m.queueDepth.Load())
	gauge("spamer_serve_in_flight", "Jobs currently executing on the harness pool.", m.inFlight.Load())
	if m.cacheEntries != nil {
		gauge("spamer_serve_cache_entries", "Entries in the content-addressed result cache.", int64(m.cacheEntries()))
	}
	counter("spamer_serve_cache_hits_total", "Jobs answered from the result cache without simulating.", m.cacheHits.Load())
	counter("spamer_serve_cache_misses_total", "Jobs that had to simulate.", m.cacheMisses.Load())

	const jobs = "spamer_serve_jobs_total"
	fmt.Fprintf(w, "# HELP %s Jobs by terminal outcome.\n# TYPE %s counter\n", jobs, jobs)
	fmt.Fprintf(w, "%s{outcome=\"done\"} %d\n", jobs, m.jobsDone.Load())
	fmt.Fprintf(w, "%s{outcome=\"failed\"} %d\n", jobs, m.jobsFailed.Load())
	fmt.Fprintf(w, "%s{outcome=\"rejected\"} %d\n", jobs, m.jobsRejected.Load())

	counter("spamer_serve_runs_total", "Individual (spec, algorithm) simulations completed.", m.runsDone.Load())
	counter("spamer_serve_runs_failed_total", "Individual simulations that panicked, timed out, or were cancelled.", m.runsFailed.Load())

	m.latency.write(w, "spamer_serve_job_duration_seconds", "Wall-clock seconds from admission to completion, per executed job.")
}

// histogram is a fixed-bucket Prometheus histogram.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []uint64  // lazily sized to len(bounds)
	inf    uint64
	sum    float64
	n      uint64
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		h.counts = make([]uint64, len(h.bounds))
	}
	if i := sort.SearchFloat64s(h.bounds, v); i < len(h.bounds) {
		h.counts[i]++
	} else {
		h.inf++
	}
	h.sum += v
	h.n++
}

func (h *histogram) write(w io.Writer, name, help string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		if h.counts != nil {
			cum += h.counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum+h.inf)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.n)
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
