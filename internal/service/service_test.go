package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fastSpec is a sub-second single simulation; fastSpecReordered is the
// same spec with permuted JSON keys and every default spelled out —
// byte-different, semantically identical, same canonical hash.
const (
	fastSpec          = `{"benchmark":"ping-pong","algorithms":["vl"],"label":"t"}`
	fastSpecReordered = `{"label":"t","scale":1,"hop_latency":12,"bus_channels":4,"devices":1,"algorithms":["vl"],"benchmark":"ping-pong"}`
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (int, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job: %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("job %s failed: %v", id, st.Errors)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return Status{}
}

func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// TestSubmitCompleteFetch: the basic lifecycle — 202 on admission, the
// job reaches done, outcomes are fetchable and well-formed.
func TestSubmitCompleteFetch(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, st := submit(t, ts, fastSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if st.ID == "" || st.SpecHash == "" || st.State == "" {
		t.Fatalf("admission status: %+v", st)
	}
	final := waitState(t, ts, st.ID, StateDone)
	if len(final.Outcomes) != 1 {
		t.Fatalf("outcomes: %+v", final.Outcomes)
	}
	o := final.Outcomes[0]
	if o.Benchmark != "ping-pong" || o.Algorithm != "vl" || o.Ticks == 0 || o.Label != "t" {
		t.Fatalf("outcome: %+v", o)
	}
	if final.Runs.Done != 1 || final.Runs.Total != 1 || final.Runs.Failed != 0 {
		t.Fatalf("run progress: %+v", final.Runs)
	}
}

// TestCacheHitOnSemanticallyIdenticalSpec: a byte-different spelling of
// an already-served spec returns 200 immediately with the cached
// outcomes, and the cache-hit counter moves.
func TestCacheHitOnSemanticallyIdenticalSpec(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, st := submit(t, ts, fastSpec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	first := waitState(t, ts, st.ID, StateDone)

	code, st2 := submit(t, ts, fastSpecReordered)
	if code != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200 (cache hit)", code)
	}
	if !st2.Cached || st2.State != StateDone {
		t.Fatalf("resubmit status: %+v", st2)
	}
	if st2.SpecHash != first.SpecHash {
		t.Fatalf("hash mismatch: %s vs %s", st2.SpecHash, first.SpecHash)
	}
	if len(st2.Outcomes) != 1 || st2.Outcomes[0].Ticks != first.Outcomes[0].Ticks {
		t.Fatalf("cached outcomes differ: %+v vs %+v", st2.Outcomes, first.Outcomes)
	}

	m := metricsBody(t, ts)
	for _, want := range []string{
		"spamer_serve_cache_hits_total 1",
		"spamer_serve_cache_misses_total 1",
		`spamer_serve_jobs_total{outcome="done"} 1`,
		"spamer_serve_job_duration_seconds_count 1",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}

// TestQueueFullReturns429: with one gated executor and a depth-1
// queue, the third submission is shed with 429 + Retry-After, and the
// rejection is counted.
func TestQueueFullReturns429(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Options{
		QueueDepth:  1,
		JobWorkers:  1,
		hookRunning: func(*job) { <-gate },
	})
	defer close(gate)
	_ = srv

	_, st := submit(t, ts, fastSpec)
	waitState(t, ts, st.ID, StateRunning) // executor holds it at the gate

	// Distinct specs so neither hits the cache or dedupes.
	code, _ := submit(t, ts, `{"benchmark":"firewall","algorithms":["vl"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark":"halo","algorithms":["vl"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if m := metricsBody(t, ts); !strings.Contains(m, `spamer_serve_jobs_total{outcome="rejected"} 1`) {
		t.Errorf("rejection not counted:\n%s", m)
	}
}

// TestRetryAfterSubSecondClamp is the regression test for the
// Retry-After rounding bug: a sub-second RetryAfter option used to emit
// "Retry-After: 0", telling saturated clients to retry immediately. The
// header must clamp to at least one second.
func TestRetryAfterSubSecondClamp(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, Options{
		QueueDepth:  1,
		JobWorkers:  1,
		RetryAfter:  200 * time.Millisecond,
		hookRunning: func(*job) { <-gate },
	})
	defer close(gate)

	_, st := submit(t, ts, fastSpec)
	waitState(t, ts, st.ID, StateRunning)
	code, _ := submit(t, ts, `{"benchmark":"firewall","algorithms":["vl"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark":"halo","algorithms":["vl"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q with 200ms option, want %q (sub-second must clamp up, never 0)", ra, "1")
	}
}

// TestDrainCompletesInFlight: Drain stops admission immediately (503,
// healthz flips) but lets the gated in-flight job finish.
func TestDrainCompletesInFlight(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Options{hookRunning: func(*job) { <-gate }})

	_, st := submit(t, ts, fastSpec)
	waitState(t, ts, st.ID, StateRunning)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	if code, _ := submit(t, ts, `{"benchmark":"halo"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", code)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
		}
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if final := getStatus(t, ts, st.ID); final.State != StateDone {
		t.Fatalf("in-flight job not completed by drain: %+v", final)
	}
}

// TestEventsStream: the SSE stream opens with a snapshot, carries
// per-run frames, and ends with exactly one terminal done frame.
func TestEventsStream(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, Options{hookRunning: func(*job) { <-gate }})

	_, st := submit(t, ts, fastSpec)
	waitState(t, ts, st.ID, StateRunning)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	close(gate)
	body, err := io.ReadAll(resp.Body) // stream closes at the terminal frame
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	if !strings.Contains(s, "event: running") {
		t.Errorf("missing snapshot frame:\n%s", s)
	}
	if !strings.Contains(s, "event: run_done") {
		t.Errorf("missing progress frame:\n%s", s)
	}
	if n := strings.Count(s, "event: done"); n != 1 {
		t.Errorf("terminal frames = %d, want 1:\n%s", n, s)
	}

	// A stream opened after completion replays just the terminal frame.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body2), "event: done") {
		t.Errorf("replay missing terminal frame:\n%s", body2)
	}
}

// TestBadRequests: malformed JSON, invalid specs, and unknown jobs map
// to 400/404 without touching the queue.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, body := range []string{
		"not json",
		`{"benchmark":"no-such-benchmark"}`,
		`{"benchmark":"FIR","algorithms":["bogus"]}`,
		`[]`,
		`{"benchmark":"allreduce"}`, // extended workload without opt-in
	} {
		if code, _ := submit(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("submit(%q) = %d, want 400", body, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestMultiSpecJobKeepsOrder: a spec-array job concatenates outcomes
// in spec order, exactly as cmd/spamer-run would.
func TestMultiSpecJobKeepsOrder(t *testing.T) {
	_, ts := newTestServer(t, Options{RunWorkers: 4})
	body := `[{"benchmark":"firewall","algorithms":["vl","tuned"]},{"benchmark":"ping-pong","algorithms":["vl"]}]`
	code, st := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	final := waitState(t, ts, st.ID, StateDone)
	if len(final.Outcomes) != 3 {
		t.Fatalf("outcomes = %d, want 3", len(final.Outcomes))
	}
	got := []string{
		final.Outcomes[0].Benchmark + "/" + final.Outcomes[0].Algorithm,
		final.Outcomes[1].Benchmark + "/" + final.Outcomes[1].Algorithm,
		final.Outcomes[2].Benchmark + "/" + final.Outcomes[2].Algorithm,
	}
	want := []string{"firewall/vl", "firewall/tuned", "ping-pong/vl"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v, want %v", got, want)
		}
	}
	if final.Outcomes[1].SpeedupOverVL <= 1 {
		t.Fatalf("speedup normalization lost: %+v", final.Outcomes[1])
	}
}

// TestDomainsReportedAndCacheCollapse: a multi-domain job reports its
// effective worker-lane count in status, and two jobs differing only in
// a positive domains value share one cache entry — the worker-lane
// count is an execution detail, proven trace-invariant by the golden
// tests, so it must not fragment the result cache. A sequential
// (domains absent) job of the same spec stays a distinct entry: the
// sequential kernel is a different timing model.
func TestDomainsReportedAndCacheCollapse(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, st := submit(t, ts, `{"benchmark":"ping-pong","algorithms":["vl"],"label":"t","domains":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := waitState(t, ts, st.ID, StateDone)
	if len(final.Domains) != 1 || final.Domains[0] != 2 {
		t.Fatalf("status domains = %v, want [2]", final.Domains)
	}

	code, st2 := submit(t, ts, `{"benchmark":"ping-pong","algorithms":["vl"],"label":"t","domains":4}`)
	if code != http.StatusOK {
		t.Fatalf("domains=4 resubmit = %d, want 200 (cache hit)", code)
	}
	if st2.SpecHash != st.SpecHash || !st2.Cached {
		t.Fatalf("domains=4 status: %+v (hash %q vs %q)", st2, st2.SpecHash, st.SpecHash)
	}

	code, st3 := submit(t, ts, fastSpec)
	if code != http.StatusAccepted {
		t.Fatalf("sequential submit = %d, want 202 (distinct model, no cache hit)", code)
	}
	if st3.SpecHash == st.SpecHash {
		t.Fatalf("sequential spec hashed like domains=2: %q", st3.SpecHash)
	}
	waitState(t, ts, st3.ID, StateDone)
}

// TestRejectDomainsOnUnsafeBenchmark: benchmarks outside the
// parallel-safe set are rejected at admission when domains > 0.
func TestRejectDomainsOnUnsafeBenchmark(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, _ := submit(t, ts, `{"benchmark":"incast","domains":2}`)
	if code != http.StatusBadRequest {
		t.Fatalf("incast domains=2 submit = %d, want 400", code)
	}
}

// TestOpenLoopShapeSpecServed: an anonymous open-loop shape spec runs
// through the service tier end-to-end, and a byte-different default
// spelling of the same shape is answered from the result cache — the
// canonical hash collapses shape and arrival default spellings.
func TestOpenLoopShapeSpecServed(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	shapeSpec := `{"shape":{"stages":2,"messages":60,
		"arrival":{"process":"poisson","seed":9,"mean_gap":40,"users":1}},
		"algorithms":["vl"]}`
	code, st := submit(t, ts, shapeSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := waitState(t, ts, st.ID, StateDone)
	if len(final.Outcomes) != 1 {
		t.Fatalf("outcomes: %+v", final.Outcomes)
	}
	if o := final.Outcomes[0]; !strings.HasPrefix(o.Benchmark, "synthetic/chain-s2-m60-ol:poisson") {
		t.Fatalf("outcome benchmark %q does not carry the shape name", o.Benchmark)
	}
	// Same shape, default spellings omitted and benchmark spelled out.
	respelled := `{"benchmark":"synthetic","algorithms":["vl"],
		"shape":{"stages":2,"messages":60,"arrival":{"seed":9,"mean_gap":40}}}`
	code, st2 := submit(t, ts, respelled)
	if code != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200 (cache hit)", code)
	}
	if !st2.Cached || st2.SpecHash != final.SpecHash {
		t.Fatalf("resubmit status: %+v (want cached, hash %s)", st2, final.SpecHash)
	}
}

// dagSpec is a small DAG-scenario job: a replayed source feeding one
// consumer, VL only, fast enough for the test executor.
const dagSpec = `[{"label":"d","algorithms":["vl"],"shape":{"dag":{
  "name":"svc","stages":[
    {"name":"in","replicas":1,"replay":[{"at":5,"work":3},{"at":9},{"at":20,"size":2}],"work_per_byte":4},
    {"name":"out","replicas":1}],
  "edges":[{"from":"in","to":"out"}]}}}]`

// dagSpecRespelled is the same simulation spelled differently: the
// auto edge policy made explicit, default lines/window/dist spelled
// out, and a dead seed added. It must canonicalize — and content-hash
// — identically to dagSpec.
const dagSpecRespelled = `[{"label":"d","algorithms":["vl"],"shape":{"dag":{
  "name":"svc","seed":77,"stages":[
    {"name":"in","replicas":1,"replay":[{"at":5,"work":3},{"at":9},{"at":20,"size":2}],"work_per_byte":4,"work":{"kind":"const"}},
    {"name":"out","replicas":1}],
  "edges":[{"from":"in","to":"out","policy":"pair","lines":2,"window":4}]}}}]`

// TestDAGSpecServedAndCached: a DAG scenario flows through the service
// unchanged — admitted, simulated, reported under its diagnostic name —
// and the result cache keys on the canonical hash of the resolved DAG,
// so a respelled-but-identical spec is a cache hit.
func TestDAGSpecServedAndCached(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, st := submit(t, ts, dagSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	first := waitState(t, ts, st.ID, StateDone)
	if len(first.Outcomes) != 1 {
		t.Fatalf("outcomes: %+v", first.Outcomes)
	}
	if o := first.Outcomes[0]; o.Benchmark != "dag/svc-s2-t2" || o.Messages != 3 || o.Ticks == 0 {
		t.Fatalf("outcome: %+v", o)
	}

	code, st2 := submit(t, ts, dagSpecRespelled)
	if code != http.StatusOK {
		t.Fatalf("respelled resubmit = %d, want 200 (cache hit)", code)
	}
	if !st2.Cached || st2.SpecHash != first.SpecHash {
		t.Fatalf("respelled spec missed the cache: %+v vs hash %s", st2, first.SpecHash)
	}

	// An unresolved replay file must be rejected at admission — the
	// service never touches the filesystem on behalf of a spec, and an
	// unresolved reference could alias different traces in the cache.
	code, _ = submit(t, ts, `[{"algorithms":["vl"],"shape":{"dag":{
	  "name":"svc","stages":[
	    {"name":"in","replicas":1,"replay_file":"trace.json"},
	    {"name":"out","replicas":1}],
	  "edges":[{"from":"in","to":"out"}]}}}]`)
	if code != http.StatusBadRequest {
		t.Fatalf("unresolved replay file admitted with %d, want 400", code)
	}
}
