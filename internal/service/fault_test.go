package service

import (
	"net/http"
	"strings"
	"testing"
)

// faultedSpec injects a message drop (the first stash delivery is
// acknowledged but never filled), so the consumer parks forever and the
// kernel's drain detects a deadlock.
const faultedSpec = `{"benchmark":"ping-pong","algorithms":["vl"],"fault":{"drop_stash":1}}`

// TestFaultedSpecFailsAndIsNotCached: a spec whose simulation dies (here
// via fault injection, but a watchdog timeout looks the same) must
// surface as a failed job with a structured per-spec error — and the
// failure must NOT enter the result cache, so a resubmission simulates
// again instead of serving the broken result.
func TestFaultedSpecFailsAndIsNotCached(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	code, st := submit(t, ts, faultedSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := waitState(t, ts, st.ID, StateFailed)
	if len(final.Errors) != 1 || !strings.Contains(final.Errors[0], "deadlock") {
		t.Fatalf("want one structured deadlock error, got %v", final.Errors)
	}
	if final.Runs.Failed != 1 {
		t.Fatalf("run progress: %+v", final.Runs)
	}
	if len(final.Outcomes) != 0 {
		t.Fatalf("failed job leaked outcomes: %+v", final.Outcomes)
	}

	code2, st2 := submit(t, ts, faultedSpec)
	if code2 != http.StatusAccepted {
		t.Fatalf("resubmit = %d, want 202 (failed results must not be cached)", code2)
	}
	if st2.Cached {
		t.Fatalf("resubmission served from cache: %+v", st2)
	}
	waitState(t, ts, st2.ID, StateFailed)

	m := metricsBody(t, ts)
	for _, want := range []string{
		"spamer_serve_cache_hits_total 0",
		`spamer_serve_jobs_total{outcome="failed"} 2`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
