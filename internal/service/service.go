// Package service is the simulation-as-a-service layer: a long-lived
// daemon wrapping the deterministic experiment runner (internal/
// experiments on the internal/harness pool) behind a small HTTP API.
//
//	POST /v1/jobs            submit a spec (or spec array) — the exact
//	                         JSON cmd/spamer-run reads
//	GET  /v1/jobs/{id}       status + outcomes
//	GET  /v1/jobs/{id}/events  live progress (Server-Sent Events)
//	GET  /metrics            Prometheus text format
//	GET  /healthz            liveness / drain state
//
// Three properties define the layer:
//
//   - Bounded admission. At most QueueDepth jobs wait behind at most
//     JobWorkers executing ones; past that, submission fails fast with
//     429 + Retry-After instead of queueing unboundedly. Load shedding
//     is explicit and observable (jobs_total{outcome="rejected"}).
//
//   - Content-addressed results. Jobs are keyed by the canonical hash
//     of their spec list (experiments.HashSpecs); the simulator is
//     deterministic, so a repeated sweep — even spelled differently —
//     is answered from the LRU result cache without simulating.
//
//   - Graceful drain. Drain stops admission (503 on POST, /healthz
//     flips to draining) and lets every admitted job finish before the
//     executors exit, so SIGTERM never discards accepted work.
package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"spamer/internal/experiments"
	"spamer/internal/fabric"
	"spamer/internal/harness"
)

// Options tunes a Server. The zero value serves with sane defaults.
type Options struct {
	// QueueDepth bounds jobs admitted but not yet executing
	// (default 64). Full queue → 429.
	QueueDepth int
	// JobWorkers bounds concurrently executing jobs (default 1: one
	// sweep at a time keeps per-job latency predictable; raise it when
	// jobs are small).
	JobWorkers int
	// RunWorkers is the harness pool width within one job; <= 0
	// selects GOMAXPROCS.
	RunWorkers int
	// RunTimeout bounds each individual simulation; 0 means none.
	RunTimeout time.Duration
	// CacheEntries bounds the content-addressed result cache
	// (default 256; negative disables caching).
	CacheEntries int
	// MaxJobs bounds the in-memory job registry (default 4096);
	// oldest finished jobs are evicted first, active jobs never.
	MaxJobs int
	// RetryAfter is the backoff hint attached to 429 responses
	// (default 1s).
	RetryAfter time.Duration
	// Fabric, when non-nil, turns the server into a coordinator for a
	// pool of spamer-worker processes (docs/FABRIC.md): jobs shard by
	// canonical spec hash onto registered workers, the coordinator's
	// wire endpoints mount under /v1/fabric/, and its metrics join
	// /metrics. With an empty pool the coordinator's local fallback
	// reproduces single-process behaviour exactly.
	Fabric *fabric.Coordinator

	// hookRunning, if set, is called from the executor after a job
	// enters StateRunning and before its simulations start. Test-only:
	// lets tests gate the executor deterministically.
	hookRunning func(*job)
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 1
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Server executes experiment specs submitted over HTTP on a bounded
// worker pool. Create with New, expose via Handler, stop with Drain.
type Server struct {
	opts    Options
	metrics *metrics
	cache   *cache

	queue    chan *job
	stop     chan struct{} // closed once the queue has fully drained
	stopOnce sync.Once

	admitMu  sync.RWMutex // guards draining vs. in-flight admissions
	draining bool
	admitted sync.WaitGroup // one count per admitted, unfinished job

	workers sync.WaitGroup

	jobsMu sync.Mutex
	jobs   map[string]*job
	order  []string // registration order, for bounded eviction
	seq    uint64

	ctx    context.Context
	cancel context.CancelFunc
}

// New builds a Server and starts its executor goroutines.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		metrics: newMetrics(),
		cache:   newCache(opts.CacheEntries),
		queue:   make(chan *job, opts.QueueDepth),
		stop:    make(chan struct{}),
		jobs:    map[string]*job{},
	}
	s.metrics.cacheEntries = s.cache.len
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for i := 0; i < opts.JobWorkers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// submit admits a validated spec list: cache hit → a job born done;
// otherwise the job enters the bounded queue. A full queue or a
// draining server returns an error the HTTP layer maps to 429 / 503.
var (
	errQueueFull = fmt.Errorf("service: queue full")
	errDraining  = fmt.Errorf("service: draining")
)

func (s *Server) submit(specs []experiments.Spec) (*job, error) {
	hash := experiments.HashSpecs(specs)

	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		return nil, errDraining
	}

	if outcomes, ok := s.cache.get(hash); ok {
		s.metrics.cacheHits.Add(1)
		j := newJob(s.nextID(hash), hash, specs, totalRuns(specs))
		j.completeCached(outcomes)
		s.register(j)
		return j, nil
	}
	s.metrics.cacheMisses.Add(1)

	j := newJob(s.nextID(hash), hash, specs, totalRuns(specs))
	// Count the admission before the send: the executor's Done must
	// never be able to precede our Add.
	s.admitted.Add(1)
	select {
	case s.queue <- j:
		s.metrics.queueDepth.Add(1)
		s.register(j)
		return j, nil
	default:
		s.admitted.Done()
		s.metrics.jobsRejected.Add(1)
		return nil, errQueueFull
	}
}

func (s *Server) nextID(hash string) string {
	s.jobsMu.Lock()
	s.seq++
	n := s.seq
	s.jobsMu.Unlock()
	return fmt.Sprintf("j%05d-%.12s", n, hash)
}

// register adds a job to the registry, evicting the oldest finished
// jobs past MaxJobs. Active jobs are never evicted.
func (s *Server) register(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.jobs) > s.opts.MaxJobs && len(s.order) > 0 {
		id := s.order[0]
		old, ok := s.jobs[id]
		if ok && !old.terminal() {
			break
		}
		s.order = s.order[1:]
		delete(s.jobs, id)
	}
}

func (s *Server) lookup(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case j := <-s.queue:
			s.execute(j)
		case <-s.stop:
			// Drain closes stop only after every admitted job has
			// finished, so the queue is already empty here; the sweep
			// below is a guard against future reorderings.
			for {
				select {
				case j := <-s.queue:
					s.execute(j)
				default:
					return
				}
			}
		}
	}
}

// execute runs one job's simulations on the harness pool, streaming
// progress to subscribers and recording the result in the cache.
func (s *Server) execute(j *job) {
	defer s.admitted.Done()
	s.metrics.queueDepth.Add(-1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	j.start()
	if s.opts.hookRunning != nil {
		s.opts.hookRunning(j)
	}
	var results []experiments.SpecResult
	if s.opts.Fabric != nil {
		results = s.runOnFabric(j)
	} else {
		results = experiments.RunSpecsParallel(s.ctx, j.specs, harness.Options{
			Workers:    s.opts.RunWorkers,
			Timeout:    s.opts.RunTimeout,
			OnStart:    j.runStart,
			OnProgress: j.runDone,
		})
	}

	var outcomes []experiments.Outcome
	var errs []string
	for _, r := range results {
		outcomes = append(outcomes, r.Outcomes...)
		if r.Err != nil {
			errs = append(errs, fmt.Sprintf("spec %d: %v", r.Index, r.Err))
		}
	}
	clean := len(errs) == 0
	if clean {
		s.cache.put(j.hash, outcomes)
		s.metrics.jobsDone.Add(1)
	} else {
		s.metrics.jobsFailed.Add(1)
	}
	j.complete(outcomes, errs)

	st := j.status()
	s.metrics.runsDone.Add(uint64(st.Runs.Done))
	s.metrics.runsFailed.Add(uint64(st.Runs.Failed))
	if st.Started != nil && st.Finished != nil {
		s.metrics.latency.observe(st.Finished.Sub(j.created).Seconds())
	}
}

// runOnFabric executes a job's specs across the worker pool, adapting
// the coordinator's per-spec progress hooks to the job's SSE stream.
// Progress is per spec shard (the fabric's scheduling unit): done
// counts completed (spec, algorithm) simulations as shards land,
// failed counts failed shards.
func (s *Server) runOnFabric(j *job) []experiments.SpecResult {
	var mu sync.Mutex
	var done, failed int
	total := j.status().Runs.Total
	return s.opts.Fabric.RunSpecs(s.ctx, j.specs, fabric.RunOptions{
		OnSpecStart: func(index int, label string) {
			mu.Lock()
			p := harness.Progress{Done: done, Total: total, Failed: failed, Label: label}
			mu.Unlock()
			j.runStart(p)
		},
		OnSpecDone: func(index int, label string, runs int, specFailed bool) {
			mu.Lock()
			done += runs
			if specFailed {
				failed++
			}
			p := harness.Progress{Done: done, Total: total, Failed: failed, Label: label}
			mu.Unlock()
			j.runDone(p)
		},
	})
}

// Drain gracefully shuts the server down: stop admitting (POST → 503,
// /healthz → draining), let every admitted job finish, then stop the
// executors. Returns early with ctx's error if the deadline passes
// first; admitted jobs keep running in that case and a second Drain
// call may await them again.
func (s *Server) Drain(ctx context.Context) error {
	s.admitMu.Lock()
	s.draining = true
	s.admitMu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.admitted.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.workers.Wait()
	return nil
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// Close abandons the server without waiting for queued work: admission
// stops and the execution context is cancelled, so queued simulations
// fail fast with cancellation errors. Tests and fatal-error paths use
// this; production shutdown should prefer Drain.
func (s *Server) Close() {
	s.admitMu.Lock()
	s.draining = true
	s.admitMu.Unlock()
	s.cancel()
	s.stopOnce.Do(func() { close(s.stop) })
}
