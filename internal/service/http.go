package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"spamer/internal/experiments"
)

// maxSpecBytes bounds a POST /v1/jobs body; a spec list is small JSON,
// anything megabyte-sized is a client bug.
const maxSpecBytes = 1 << 20

// Handler builds the HTTP API. Routes use Go 1.22 method+wildcard mux
// patterns, so unknown methods fall out as 405 automatically. With a
// fabric coordinator configured, its wire protocol (register,
// heartbeat — docs/FABRIC.md) mounts under /v1/fabric/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.opts.Fabric != nil {
		mux.Handle("/v1/fabric/", http.StripPrefix("/v1/fabric", s.opts.Fabric.Handler()))
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit admits a job. Responses:
//
//	202 — admitted; body carries the job id to poll
//	200 — cache hit; body already carries the outcomes
//	400 — malformed or invalid spec
//	429 — queue full; Retry-After hints the backoff
//	503 — draining
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	specs, err := experiments.ReadSpecs(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(specs) == 0 {
		writeError(w, http.StatusBadRequest, "empty spec list")
		return
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "spec %d: %v", i, err)
			return
		}
	}

	j, err := s.submit(specs)
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "draining: not admitting jobs")
		return
	case errors.Is(err, errQueueFull):
		// Clamp to >= 1s: a sub-second RetryAfter used to round down to
		// "Retry-After: 0", telling saturated clients to hammer the
		// server immediately — amplifying the overload the 429 sheds.
		secs := int(s.opts.RetryAfter.Seconds() + 0.5)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "queue full (depth %d): retry later", s.opts.QueueDepth)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	w.Header().Set("Location", "/v1/jobs/"+j.id)
	code := http.StatusAccepted
	if j.terminal() { // cache hit: result is already in the body
		code = http.StatusOK
	}
	writeJSON(w, code, j.status())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams a job's progress as Server-Sent Events: a
// snapshot frame on connect, run_start/run_done frames as simulations
// move, and exactly one terminal done/failed frame before the stream
// closes. Subscribing to a finished job replays just the terminal
// frame.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, snapshot := j.subscribe()
	defer j.unsubscribe(ch)
	writeEvent(w, snapshot)
	flusher.Flush()

	for {
		select {
		case ev := <-ch:
			writeEvent(w, ev)
			flusher.Flush()
		case <-j.doneCh:
			// Flush any progress frames still buffered, then emit the
			// terminal snapshot and end the stream.
			for {
				select {
				case ev := <-ch:
					writeEvent(w, ev)
					continue
				default:
				}
				break
			}
			writeEvent(w, j.terminalEvent())
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

func writeEvent(w http.ResponseWriter, ev Event) {
	data, _ := json.Marshal(ev)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w)
	if s.opts.Fabric != nil {
		s.opts.Fabric.WriteMetrics(w)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := map[string]any{
		"status":   "ok",
		"queued":   s.metrics.queueDepth.Load(),
		"inflight": s.metrics.inFlight.Load(),
	}
	if s.Draining() {
		st["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
