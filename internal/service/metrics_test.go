package service

import (
	"strings"
	"testing"
)

// TestMetricsExposition: the text format carries every metric family
// with correct types and values.
func TestMetricsExposition(t *testing.T) {
	m := newMetrics()
	m.queueDepth.Store(3)
	m.inFlight.Store(1)
	m.cacheHits.Add(5)
	m.jobsDone.Add(2)
	m.jobsRejected.Add(7)
	m.latency.observe(0.003)
	m.latency.observe(0.2)
	m.latency.observe(120) // beyond the last bound → +Inf bucket

	var sb strings.Builder
	m.write(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE spamer_serve_queue_depth gauge",
		"spamer_serve_queue_depth 3",
		"spamer_serve_in_flight 1",
		"spamer_serve_cache_hits_total 5",
		`spamer_serve_jobs_total{outcome="done"} 2`,
		`spamer_serve_jobs_total{outcome="rejected"} 7`,
		"# TYPE spamer_serve_job_duration_seconds histogram",
		`spamer_serve_job_duration_seconds_bucket{le="0.005"} 1`,
		`spamer_serve_job_duration_seconds_bucket{le="0.5"} 2`,
		`spamer_serve_job_duration_seconds_bucket{le="+Inf"} 3`,
		"spamer_serve_job_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramBucketEdges: a value exactly on a bound lands in that
// bound's le bucket (Prometheus le is inclusive).
func TestHistogramBucketEdges(t *testing.T) {
	h := histogram{bounds: []float64{1, 2}}
	h.observe(1) // le="1"
	h.observe(2) // le="2"
	var sb strings.Builder
	h.write(&sb, "x", "help")
	out := sb.String()
	for _, want := range []string{
		`x_bucket{le="1"} 1`,
		`x_bucket{le="2"} 2`,
		`x_bucket{le="+Inf"} 2`,
		"x_sum 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
