package service

import (
	"sync"
	"time"

	"spamer/internal/experiments"
	"spamer/internal/harness"
)

// Job states. A job moves queued → running → done|failed; a cache hit
// is born done.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Event is one SSE frame of a job's progress stream. Terminal events
// (type done/failed) are delivered exactly once per subscriber;
// per-run events are lossy under a slow consumer (the stream favours
// liveness over completeness — the terminal snapshot is authoritative).
type Event struct {
	Type   string `json:"type"` // queued|running|run_start|run_done|done|failed
	Job    string `json:"job"`
	State  string `json:"state"`
	Done   int    `json:"done"`   // simulations finished
	Total  int    `json:"total"`  // simulations in the job
	Failed int    `json:"failed"` // simulations that errored
	Label  string `json:"label,omitempty"`
}

// Status is the JSON body of GET /v1/jobs/{id}.
type Status struct {
	ID       string                `json:"id"`
	SpecHash string                `json:"spec_hash"`
	State    string                `json:"state"`
	Cached   bool                  `json:"cached,omitempty"`
	Created  time.Time             `json:"created"`
	Started  *time.Time            `json:"started,omitempty"`
	Finished *time.Time            `json:"finished,omitempty"`
	Runs     RunProgress           `json:"runs"`
	Domains  []int                 `json:"domains"` // effective worker lanes per spec (0 = sequential kernel)
	Outcomes []experiments.Outcome `json:"outcomes,omitempty"`
	Errors   []string              `json:"errors,omitempty"`
}

// RunProgress counts individual (spec, algorithm) simulations.
type RunProgress struct {
	Done   int `json:"done"`
	Total  int `json:"total"`
	Failed int `json:"failed"`
}

type job struct {
	id      string
	hash    string
	specs   []experiments.Spec
	cached  bool
	created time.Time

	mu                 sync.Mutex
	state              string
	started, finished  time.Time
	done, total, fails int
	outcomes           []experiments.Outcome
	errs               []string
	subs               map[chan Event]struct{}

	doneCh chan struct{} // closed exactly once, on terminal transition
}

func newJob(id, hash string, specs []experiments.Spec, totalRuns int) *job {
	return &job{
		id:      id,
		hash:    hash,
		specs:   specs,
		created: time.Now(),
		state:   StateQueued,
		total:   totalRuns,
		subs:    map[chan Event]struct{}{},
		doneCh:  make(chan struct{}),
	}
}

// totalRuns counts the simulations a spec list will launch: one per
// (spec, canonical algorithm) pair.
func totalRuns(specs []experiments.Spec) int {
	n := 0
	for i := range specs {
		n += len(specs[i].Canonical().Algorithms)
	}
	return n
}

func (j *job) eventLocked(typ string) Event {
	return Event{Type: typ, Job: j.id, State: j.state,
		Done: j.done, Total: j.total, Failed: j.fails}
}

// publishLocked fans ev to every subscriber without blocking: a stalled
// SSE client drops frames rather than stalling the executor.
func (j *job) publishLocked(ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers an event channel and returns it with a snapshot
// of the job's current progress to seed the stream.
func (j *job) subscribe() (chan Event, Event) {
	ch := make(chan Event, 16)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.subs[ch] = struct{}{}
	return ch, j.eventLocked(j.state)
}

func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, ch)
}

func (j *job) start() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now()
	j.publishLocked(j.eventLocked("running"))
}

// runStart / runDone translate harness progress callbacks into events.
func (j *job) runStart(p harness.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ev := j.eventLocked("run_start")
	ev.Label = p.Label
	j.publishLocked(ev)
}

func (j *job) runDone(p harness.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done, j.fails = p.Done, p.Failed
	ev := j.eventLocked("run_done")
	ev.Label = p.Label
	j.publishLocked(ev)
}

// complete moves the job to its terminal state. Terminal events are
// not pushed through subscriber channels: closing doneCh wakes every
// stream, which then emits the terminal snapshot itself — exactly-once
// delivery regardless of channel backlog.
func (j *job) complete(outcomes []experiments.Outcome, errs []string) {
	j.mu.Lock()
	j.outcomes = outcomes
	j.errs = errs
	j.finished = time.Now()
	if len(errs) > 0 && len(outcomes) == 0 {
		j.state = StateFailed
	} else {
		j.state = StateDone
	}
	j.mu.Unlock()
	close(j.doneCh)
}

// completeCached marks a cache-hit job done at birth.
func (j *job) completeCached(outcomes []experiments.Outcome) {
	j.cached = true
	j.mu.Lock()
	j.outcomes = outcomes
	j.state = StateDone
	j.done = j.total
	now := time.Now()
	j.started, j.finished = now, now
	j.mu.Unlock()
	close(j.doneCh)
}

// terminalEvent snapshots the job after doneCh closes.
func (j *job) terminalEvent() Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	typ := "done"
	if j.state == StateFailed {
		typ = "failed"
	}
	return j.eventLocked(typ)
}

func (j *job) terminal() bool {
	select {
	case <-j.doneCh:
		return true
	default:
		return false
	}
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	domains := make([]int, len(j.specs))
	for i := range j.specs {
		domains[i] = j.specs[i].EffectiveDomains()
	}
	st := Status{
		ID:       j.id,
		SpecHash: j.hash,
		State:    j.state,
		Cached:   j.cached,
		Created:  j.created,
		Runs:     RunProgress{Done: j.done, Total: j.total, Failed: j.fails},
		Domains:  domains,
		Outcomes: j.outcomes,
		Errors:   j.errs,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}
