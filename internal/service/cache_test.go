package service

import (
	"fmt"
	"testing"

	"spamer/internal/experiments"
)

func outs(ticks uint64) []experiments.Outcome {
	return []experiments.Outcome{{Benchmark: "b", Algorithm: "vl", Ticks: ticks}}
}

// TestCacheLRUEviction: capacity bounds hold and recency decides the
// victim.
func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", outs(1))
	c.put("b", outs(2))
	if _, ok := c.get("a"); !ok { // refresh a; b becomes the LRU
		t.Fatal("a missing")
	}
	c.put("c", outs(3))
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if v, ok := c.get("a"); !ok || v[0].Ticks != 1 {
		t.Fatalf("a lost: %v %v", v, ok)
	}
	if v, ok := c.get("c"); !ok || v[0].Ticks != 3 {
		t.Fatalf("c lost: %v %v", v, ok)
	}
}

// TestCacheDisabled: non-positive capacity stores nothing.
func TestCacheDisabled(t *testing.T) {
	c := newCache(-1)
	c.put("a", outs(1))
	if _, ok := c.get("a"); ok || c.len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

// TestCacheOverwriteRefreshes: re-putting an existing hash updates in
// place without growing.
func TestCacheOverwriteRefreshes(t *testing.T) {
	c := newCache(4)
	c.put("a", outs(1))
	c.put("a", outs(9))
	if c.len() != 1 {
		t.Fatalf("len = %d", c.len())
	}
	if v, _ := c.get("a"); v[0].Ticks != 9 {
		t.Fatalf("stale value: %v", v)
	}
}

// TestCacheConcurrent: hammering one cache from many goroutines is
// race-clean and never exceeds capacity.
func TestCacheConcurrent(t *testing.T) {
	c := newCache(8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%16)
				c.put(k, outs(uint64(i)))
				c.get(k)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.len() > 8 {
		t.Fatalf("capacity exceeded: %d", c.len())
	}
}
