package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spamer/internal/fabric"
)

// fabricServer builds a service whose executor shards onto a fabric
// coordinator with one registered httptest worker.
func fabricServer(t *testing.T) (*fabric.Coordinator, *httptest.Server) {
	t.Helper()
	coord := fabric.NewCoordinator(fabric.CoordinatorOptions{
		DispatchTimeout: 30 * time.Second,
		NoLocalFallback: true, // outcomes must come from the worker
	})
	w := fabric.NewWorker(fabric.WorkerOptions{ID: "svc-w1", Slots: 2, RunWorkers: 1})
	wts := httptest.NewServer(w.Handler())
	t.Cleanup(wts.Close)
	if err := coord.Register(fabric.RegisterRequest{
		Version: fabric.ProtocolVersion, ID: "svc-w1", Addr: wts.URL, Slots: 2,
	}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Fabric: coord})
	return coord, ts
}

// TestFabricJobMatchesLocal: a job executed through the fabric returns
// the same outcomes as the single-process path, the per-spec store
// counts the work, and /metrics exposes the fabric family.
func TestFabricJobMatchesLocal(t *testing.T) {
	_, localTS := newTestServer(t, Options{})
	coord, fabricTS := fabricServer(t)

	batch := `[` + fastSpec + `,{"benchmark":"ping-pong","algorithms":["vl","0delay"],"label":"fx"}]`

	code, st := submit(t, localTS, batch)
	if code != http.StatusAccepted {
		t.Fatalf("local submit = %d", code)
	}
	local := waitState(t, localTS, st.ID, StateDone)

	code, st = submit(t, fabricTS, batch)
	if code != http.StatusAccepted {
		t.Fatalf("fabric submit = %d", code)
	}
	dist := waitState(t, fabricTS, st.ID, StateDone)

	lj, _ := json.Marshal(local.Outcomes)
	dj, _ := json.Marshal(dist.Outcomes)
	if string(lj) != string(dj) {
		t.Fatalf("outcomes diverge:\nlocal: %s\ndist:  %s", lj, dj)
	}
	if dist.Runs.Done != local.Runs.Done {
		t.Fatalf("runs done %d != %d", dist.Runs.Done, local.Runs.Done)
	}
	if got := coord.Metrics().Placements(); got != 2 {
		t.Fatalf("placements = %d, want 2 (one per spec shard)", got)
	}

	m := metricsBody(t, fabricTS)
	for _, want := range []string{
		"spamer_fabric_workers_present 1",
		"spamer_fabric_placements_total 2",
		`spamer_fabric_worker_specs_total{worker="svc-w1"} 2`,
		"spamer_fabric_store_entries 2",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestFabricStoreAnswersRecombinedJobs: the per-spec store serves a
// never-seen job composed of already-seen specs without any new
// placement — the "any worker's completed spec is a cache hit for
// every client" contract.
func TestFabricStoreAnswersRecombinedJobs(t *testing.T) {
	coord, ts := fabricServer(t)

	a := `{"benchmark":"ping-pong","algorithms":["vl"],"label":"ra"}`
	b := `{"benchmark":"ping-pong","algorithms":["vl"],"label":"rb"}`
	for _, body := range []string{`[` + a + `]`, `[` + b + `]`} {
		code, st := submit(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit = %d", code)
		}
		waitState(t, ts, st.ID, StateDone)
	}
	if got := coord.Metrics().Placements(); got != 2 {
		t.Fatalf("placements = %d, want 2", got)
	}

	// [a, b] is a new job hash (service cache miss) but both specs are
	// in the store: zero additional placements.
	code, st := submit(t, ts, `[`+a+`,`+b+`]`)
	if code != http.StatusAccepted {
		t.Fatalf("combined submit = %d", code)
	}
	if st.Cached {
		t.Fatalf("combined job claims a service-cache hit; want a fresh job answered by the store")
	}
	final := waitState(t, ts, st.ID, StateDone)
	if len(final.Outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(final.Outcomes))
	}
	if got := coord.Metrics().Placements(); got != 2 {
		t.Fatalf("placements after recombination = %d, want 2 (store must answer)", got)
	}
}

// TestHealthzDrainBody pins the drain-state satellite on the service
// side: the instant drain begins — before in-flight jobs finish —
// /healthz must answer 503 with status "draining" so load balancers
// and fabric coordinators stop routing here.
func TestHealthzDrainBody(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Options{hookRunning: func(*job) { <-gate }})
	defer close(gate)

	code, _ := submit(t, ts, fastSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	drainCtx, cancelDrain := context.WithCancel(context.Background())
	defer cancelDrain()
	go srv.Drain(drainCtx)
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "draining" {
		t.Fatalf("healthz status = %q, want \"draining\"", body.Status)
	}
}
