package service

import (
	"container/list"
	"sync"

	"spamer/internal/experiments"
)

// cache is the content-addressed result store: canonical spec-list hash
// (experiments.HashSpecs) → the outcomes that spec list produced. The
// simulator is deterministic, so a hash hit is exact — byte-different
// but semantically identical submissions replay for free. Bounded LRU;
// a capacity <= 0 disables caching entirely.
type cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	hash     string
	outcomes []experiments.Outcome
}

func newCache(capacity int) *cache {
	return &cache{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

// get returns the cached outcomes for hash, refreshing its recency.
// Callers must treat the returned slice as immutable — it is shared
// with every other hit on the same hash.
func (c *cache) get(hash string) ([]experiments.Outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[hash]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).outcomes, true
}

// put stores outcomes under hash, evicting the least recently used
// entry past capacity.
func (c *cache) put(hash string, outcomes []experiments.Outcome) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[hash]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry).outcomes = outcomes
		return
	}
	c.m[hash] = c.ll.PushFront(&cacheEntry{hash: hash, outcomes: outcomes})
	for c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.m, old.Value.(*cacheEntry).hash)
	}
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
