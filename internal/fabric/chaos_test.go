package fabric

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spamer/internal/experiments"
	"spamer/internal/oracle/gen"
)

// chaosSpecs derives a deterministic batch from the oracle's seeded
// case generator: synthetic shapes plus hardware knobs, exactly what a
// verification campaign would shard. Seeded so every failure replays.
func chaosSpecs(t *testing.T, seed uint64, n int) []experiments.Spec {
	t.Helper()
	var specs []experiments.Spec
	for i := 0; len(specs) < n && i < 4*n; i++ {
		cs := gen.New(seed + uint64(i)*0x9e3779b97f4a7c15).ChainCase(nil)
		sp := cs.Spec
		sp.Shape = cs.Shape
		if err := sp.Validate(); err != nil {
			continue
		}
		specs = append(specs, sp)
	}
	if len(specs) < n {
		t.Fatalf("generator yielded %d/%d valid specs", len(specs), n)
	}
	return specs
}

// TestWorkerDeathReLeasesMidJob is the chaos satellite: a worker is
// killed while holding a lease, mid-job. The coordinator must observe
// the transport failure, evict the worker, re-lease the shard to the
// survivor, and the merged per-spec outcomes must equal a local run
// byte-for-byte. Race-clean: run under -race.
func TestWorkerDeathReLeasesMidJob(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		DispatchTimeout: 30 * time.Second,
		ExpireAfter:     time.Minute, // presence stays fresh; death is observed via the broken lease
		MaxAttempts:     3,
		NoLocalFallback: true, // completion must come from the survivor, not a local bailout
	})

	// Victim: its first lease parks in the test's gate so we can kill
	// the "process" (close its connections) while the job is in flight.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	victim := NewWorker(WorkerOptions{ID: "w1", Slots: 1, RunWorkers: 1,
		hookRun: func(RunRequest) {
			once.Do(func() { close(entered) })
			<-release
		}})
	vts := httptest.NewServer(victim.Handler())
	victim.opts.Advertise = vts.URL
	if err := c.Register(RegisterRequest{Version: ProtocolVersion, ID: "w1", Addr: vts.URL, Slots: 1}); err != nil {
		t.Fatal(err)
	}

	survivor := NewWorker(WorkerOptions{ID: "w2", Slots: 1, RunWorkers: 1})
	startWorker(t, c, survivor)

	// Two specs: placement puts one on each worker (w1 sorts first,
	// then fills its single slot), so the victim is guaranteed to hold
	// a lease when it dies.
	specs := chaosSpecs(t, 0xC0FFEE, 2)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	resCh := make(chan []experiments.SpecResult, 1)
	go func() { resCh <- c.RunSpecs(ctx, specs, RunOptions{}) }()

	<-entered // w1 is executing its shard
	// Kill the victim mid-job: every open connection — including the
	// one carrying the lease — drops, exactly like a SIGKILLed process.
	// The coordinator sees the broken lease immediately; the parked
	// handler is then released so its goroutine can unwind (its request
	// context is already cancelled) and the dead server can close.
	vts.CloseClientConnections()
	close(release)
	vts.Close()

	dist := <-resCh
	for i, r := range dist {
		if r.Err != nil {
			t.Fatalf("spec %d failed after re-lease: %v", i, r.Err)
		}
	}
	assertResultsEqual(t, localResults(t, specs), dist)

	if got := c.Metrics().Retries(); got < 1 {
		t.Fatalf("retries = %d, want >= 1 (the broken lease must re-dispatch)", got)
	}
	if got := c.Metrics().LocalFallbacks(); got != 0 {
		t.Fatalf("local fallbacks = %d, want 0 (the survivor must complete the job)", got)
	}
	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers = %d, want 1 (victim evicted)", got)
	}
	// The survivor ran both shards: its own and the re-leased one.
	if got := survivor.specsDone.Load(); got != 2 {
		t.Fatalf("survivor completed %d shards, want 2", got)
	}
}
