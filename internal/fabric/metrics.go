package fabric

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics aggregates the coordinator-side fabric counters and renders
// them in Prometheus text exposition format. Hand-rolled on the
// standard library like internal/service's metrics: the repo takes no
// dependencies and the needed subset — gauges, counters, one labeled
// counter family — is small.
type Metrics struct {
	// live probes, set by the coordinator.
	workersPresent func() int
	storeEntries   func() int

	storeHits   atomic.Uint64
	storeMisses atomic.Uint64

	placements     atomic.Uint64 // leases dispatched to workers
	retries        atomic.Uint64 // re-leases after a transport failure
	workerDeaths   atomic.Uint64 // workers evicted on dispatch failure or silence
	localFallbacks atomic.Uint64 // specs run locally after the pool failed them

	mu        sync.Mutex
	perWorker map[string]*workerCounters // keyed by worker ID
}

type workerCounters struct {
	specs atomic.Uint64 // spec shards completed
	runs  atomic.Uint64 // (spec, algorithm) simulations inside them
}

func newMetrics() *Metrics {
	return &Metrics{perWorker: map[string]*workerCounters{}}
}

func (m *Metrics) worker(id string) *workerCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	wc, ok := m.perWorker[id]
	if !ok {
		wc = &workerCounters{}
		m.perWorker[id] = wc
	}
	return wc
}

// Write renders every metric. Output order is deterministic so tests
// can assert on substrings.
func (m *Metrics) Write(w io.Writer) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	if m.workersPresent != nil {
		gauge("spamer_fabric_workers_present", "Live registered workers (heartbeat fresh, not draining).", int64(m.workersPresent()))
	}
	if m.storeEntries != nil {
		gauge("spamer_fabric_store_entries", "Entries in the shared content-addressed result store.", int64(m.storeEntries()))
	}
	counter("spamer_fabric_store_hits_total", "Specs answered from the shared result store without dispatching.", m.storeHits.Load())
	counter("spamer_fabric_store_misses_total", "Specs that had to be dispatched or run.", m.storeMisses.Load())
	counter("spamer_fabric_placements_total", "Spec leases dispatched to workers.", m.placements.Load())
	counter("spamer_fabric_retries_total", "Leases re-dispatched after a worker died or failed mid-job.", m.retries.Load())
	counter("spamer_fabric_worker_deaths_total", "Workers evicted from the pool (dispatch failure or heartbeat silence).", m.workerDeaths.Load())
	counter("spamer_fabric_local_fallbacks_total", "Specs executed locally after the worker pool could not.", m.localFallbacks.Load())

	m.mu.Lock()
	ids := make([]string, 0, len(m.perWorker))
	for id := range m.perWorker {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	const specs = "spamer_fabric_worker_specs_total"
	fmt.Fprintf(w, "# HELP %s Spec shards completed, per worker.\n# TYPE %s counter\n", specs, specs)
	for _, id := range ids {
		fmt.Fprintf(w, "%s{worker=%q} %d\n", specs, id, m.perWorker[id].specs.Load())
	}
	const runs = "spamer_fabric_worker_runs_total"
	fmt.Fprintf(w, "# HELP %s Individual (spec, algorithm) simulations completed, per worker.\n# TYPE %s counter\n", runs, runs)
	for _, id := range ids {
		fmt.Fprintf(w, "%s{worker=%q} %d\n", runs, id, m.perWorker[id].runs.Load())
	}
	m.mu.Unlock()
}

// Retries reports the re-dispatch count (test and smoke assertions).
func (m *Metrics) Retries() uint64 { return m.retries.Load() }

// Placements reports the lease dispatch count.
func (m *Metrics) Placements() uint64 { return m.placements.Load() }

// LocalFallbacks reports specs that ran locally after pool failure.
func (m *Metrics) LocalFallbacks() uint64 { return m.localFallbacks.Load() }
