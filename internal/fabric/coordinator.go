package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spamer/internal/experiments"
	"spamer/internal/harness"
)

// CoordinatorOptions tunes a Coordinator. The zero value is usable.
type CoordinatorOptions struct {
	// HeartbeatEvery is the cadence workers are told to heartbeat at
	// (default 2s).
	HeartbeatEvery time.Duration
	// ExpireAfter is the presence deadline: a worker silent for longer
	// is treated as dead and loses placement eligibility (default
	// 3 × HeartbeatEvery).
	ExpireAfter time.Duration
	// DispatchTimeout bounds one lease — the HTTP round trip that
	// carries a spec shard to a worker and its outcomes back. A worker
	// that hangs past it loses the lease, which is then re-placed.
	// Default 10m (simulations can be long); make it short in tests.
	DispatchTimeout time.Duration
	// MaxAttempts bounds re-dispatches per spec across distinct workers
	// (default 3). Exhausting it falls back to a local run unless
	// NoLocalFallback is set.
	MaxAttempts int
	// StoreEntries bounds the shared content-addressed result store
	// (default 4096; negative disables).
	StoreEntries int
	// MaxInFlight bounds concurrently dispatched spec shards per
	// RunSpecs call (default 64).
	MaxInFlight int
	// NoLocalFallback disables running a spec on the coordinator itself
	// when the pool is empty or exhausted; the spec then fails with the
	// last dispatch error. The default (fallback on) means an empty
	// pool degrades to exactly the pre-fabric single-process behaviour.
	NoLocalFallback bool
	// LocalWorkers is the harness pool width for local fallback runs
	// (<= 0 selects GOMAXPROCS).
	LocalWorkers int
	// RunTimeout bounds each local-fallback simulation; 0 means none.
	RunTimeout time.Duration
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 2 * time.Second
	}
	if o.ExpireAfter <= 0 {
		o.ExpireAfter = 3 * o.HeartbeatEvery
	}
	if o.DispatchTimeout <= 0 {
		o.DispatchTimeout = 10 * time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.StoreEntries == 0 {
		o.StoreEntries = 4096
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	return o
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id       string
	addr     string
	maxProcs int
	slots    int

	lastBeat    time.Time
	active      int // worker-reported depth at last heartbeat
	outstanding int // coordinator-side leases in flight
	draining    bool
	dead        bool
}

// Coordinator shards spec batches onto a pool of registered workers,
// with presence tracking, queue-depth-aware placement, lease-based
// retry on worker death, and a shared content-addressed result store.
// It is safe for concurrent use; internal/service drives one per
// process.
type Coordinator struct {
	opts    CoordinatorOptions
	store   *Store
	metrics *Metrics
	client  *http.Client

	mu       sync.Mutex
	workers  map[string]*workerState
	inflight map[string]chan struct{} // singleflight, keyed by spec hash

	leaseSeq atomic.Uint64
}

// NewCoordinator builds a Coordinator.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:     opts,
		store:    NewStore(opts.StoreEntries),
		metrics:  newMetrics(),
		client:   &http.Client{},
		workers:  map[string]*workerState{},
		inflight: map[string]chan struct{}{},
	}
	c.metrics.workersPresent = c.LiveWorkers
	c.metrics.storeEntries = c.store.Len
	return c
}

// Store exposes the shared content-addressed result store.
func (c *Coordinator) Store() *Store { return c.store }

// Metrics exposes the fabric counters (for tests and the smoke tool).
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// WriteMetrics renders the fabric metrics in Prometheus text format;
// internal/service appends it to its own /metrics output.
func (c *Coordinator) WriteMetrics(w io.Writer) { c.metrics.Write(w) }

// Handler serves the coordinator side of the wire protocol. The
// service layer mounts it under /v1/fabric/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /register", c.handleRegister)
	mux.HandleFunc("POST /heartbeat", c.handleHeartbeat)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, RegisterResponse{Version: ProtocolVersion, Error: err.Error()})
		return
	}
	if err := c.Register(req); err != nil {
		writeJSON(w, http.StatusBadRequest, RegisterResponse{Version: ProtocolVersion, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		Version:     ProtocolVersion,
		OK:          true,
		HeartbeatMS: c.opts.HeartbeatEvery.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&hb); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := checkVersion(hb.Version); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{
		Version:    ProtocolVersion,
		Registered: c.Beat(hb),
	})
}

// Register admits (or refreshes) a worker. A re-registration under an
// existing ID replaces the previous state — the normal path for a
// restarted worker process reusing its identity.
func (c *Coordinator) Register(req RegisterRequest) error {
	if err := checkVersion(req.Version); err != nil {
		return err
	}
	if req.ID == "" || req.Addr == "" {
		return fmt.Errorf("fabric: register requires id and addr")
	}
	slots := req.Slots
	if slots <= 0 {
		slots = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[req.ID] = &workerState{
		id:       req.ID,
		addr:     req.Addr,
		maxProcs: req.MaxProcs,
		slots:    slots,
		lastBeat: time.Now(),
	}
	return nil
}

// Beat refreshes a worker's presence; false tells the worker to
// re-register (the coordinator does not know it).
func (c *Coordinator) Beat(hb Heartbeat) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[hb.ID]
	if !ok || ws.dead {
		return false
	}
	ws.lastBeat = time.Now()
	ws.active = hb.Active
	ws.draining = hb.Draining
	return true
}

// liveLocked reports whether ws is placeable at all (fresh heartbeat,
// not draining, not dead), reaping silent workers as a side effect.
func (c *Coordinator) liveLocked(ws *workerState, now time.Time) bool {
	if ws.dead || ws.draining {
		return false
	}
	if now.Sub(ws.lastBeat) > c.opts.ExpireAfter {
		ws.dead = true
		c.metrics.workerDeaths.Add(1)
		return false
	}
	return true
}

// LiveWorkers counts placeable workers (presence gauge).
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	n := 0
	for _, ws := range c.workers {
		if c.liveLocked(ws, now) {
			n++
		}
	}
	return n
}

// placement outcomes.
type placeState int

const (
	placed    placeState = iota // a lease was granted
	poolBusy                    // live workers exist but all are at capacity
	poolEmpty                   // no untried live worker remains
)

// place grants a lease on the best untried live worker: the lowest
// combined load (outstanding coordinator leases + worker-reported
// depth), ties broken by ID for determinism. It increments the
// winner's outstanding count; the caller must releaseLease.
func (c *Coordinator) place(tried map[string]bool) (*workerState, placeState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	var best *workerState
	busy := false
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ws := c.workers[id]
		if tried[ws.id] || !c.liveLocked(ws, now) {
			continue
		}
		if ws.outstanding >= ws.slots {
			busy = true
			continue
		}
		if best == nil || ws.outstanding+ws.active < best.outstanding+best.active {
			best = ws
		}
	}
	if best == nil {
		if busy {
			return nil, poolBusy
		}
		return nil, poolEmpty
	}
	best.outstanding++
	return best, placed
}

func (c *Coordinator) releaseLease(ws *workerState) {
	c.mu.Lock()
	if ws.outstanding > 0 {
		ws.outstanding--
	}
	c.mu.Unlock()
}

// markDead evicts a worker after a transport-level dispatch failure.
func (c *Coordinator) markDead(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ws, ok := c.workers[id]; ok && !ws.dead {
		ws.dead = true
		c.metrics.workerDeaths.Add(1)
	}
}

// markDraining records a worker that answered 503 (drain began between
// heartbeats) so placement skips it immediately.
func (c *Coordinator) markDraining(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ws, ok := c.workers[id]; ok {
		ws.draining = true
	}
}

// RunOptions carries per-spec progress hooks through RunSpecs.
type RunOptions struct {
	// OnSpecStart fires when a spec shard leaves the store-lookup stage
	// and begins executing (remotely or locally).
	OnSpecStart func(index int, label string)
	// OnSpecDone fires when a spec shard completes; runs is the
	// (spec, algorithm) simulation count it contributed.
	OnSpecDone func(index int, label string, runs int, failed bool)
}

// specLabel names a spec in progress hooks and lease diagnostics.
func specLabel(s *experiments.Spec) string {
	if s.Label != "" {
		return s.Label
	}
	if s.Shape != nil {
		return "synthetic"
	}
	return s.Benchmark
}

// RunSpecs executes a spec batch across the worker pool and returns
// per-spec results in spec order, with per-spec Outcomes byte-identical
// to a local experiments.RunSpecsParallel run (the oracle's
// distributed-vs-local mode enforces this). Each spec is independently
// store-checked, leased, retried on worker death, and — if the pool
// cannot run it — executed locally unless NoLocalFallback is set.
func (c *Coordinator) RunSpecs(ctx context.Context, specs []experiments.Spec, opts RunOptions) []experiments.SpecResult {
	results := make([]experiments.SpecResult, len(specs))
	sem := make(chan struct{}, c.opts.MaxInFlight)
	var wg sync.WaitGroup
	for i := range specs {
		results[i].Index = i
		if err := specs[i].Validate(); err != nil {
			results[i].Err = err
			if opts.OnSpecDone != nil {
				opts.OnSpecDone(i, specLabel(&specs[i]), 0, true)
			}
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = c.runSpec(ctx, i, specs[i], opts)
		}(i)
	}
	wg.Wait()
	return results
}

// runSpec resolves one spec: store hit, singleflight wait, or a
// dispatch loop ending in success, deterministic failure, or local
// fallback.
func (c *Coordinator) runSpec(ctx context.Context, index int, spec experiments.Spec, opts RunOptions) experiments.SpecResult {
	res := experiments.SpecResult{Index: index}
	label := specLabel(&spec)
	hash := spec.Hash()

	// Singleflight per content address: concurrent submissions of the
	// same spec dispatch once; everyone else waits and reads the store.
	var lead chan struct{}
	for {
		if outs, ok := c.store.Get(hash); ok {
			c.metrics.storeHits.Add(1)
			res.Outcomes = outs
			if opts.OnSpecDone != nil {
				opts.OnSpecDone(index, label, len(outs), false)
			}
			return res
		}
		c.mu.Lock()
		if ch, ok := c.inflight[hash]; ok {
			c.mu.Unlock()
			select {
			case <-ch:
				continue // leader finished; re-check the store
			case <-ctx.Done():
				res.Err = ctx.Err()
				return res
			}
		}
		lead = make(chan struct{})
		c.inflight[hash] = lead
		c.mu.Unlock()
		break
	}
	defer func() {
		c.mu.Lock()
		delete(c.inflight, hash)
		c.mu.Unlock()
		close(lead)
	}()
	c.metrics.storeMisses.Add(1)
	if opts.OnSpecStart != nil {
		opts.OnSpecStart(index, label)
	}

	outs, err := c.dispatch(ctx, &spec, hash, label)
	if err == nil {
		c.store.Put(hash, outs)
		res.Outcomes = outs
	} else {
		res.Err = err
	}
	if opts.OnSpecDone != nil {
		opts.OnSpecDone(index, label, len(outs), err != nil)
	}
	return res
}

// errSpecFailed marks a worker-reported deterministic simulation
// failure: the spec's run itself failed, so re-dispatching it to
// another worker would fail identically and the error is final.
type errSpecFailed struct{ msg string }

func (e *errSpecFailed) Error() string { return e.msg }

// errWorkerBusy marks a 503 from a worker (at capacity or draining):
// the lease moves on without counting against MaxAttempts or marking
// the worker dead.
type errWorkerBusy struct{ draining bool }

func (e *errWorkerBusy) Error() string { return "fabric: worker busy" }

// placeRetryDelay paces the placement loop while every live worker is
// at capacity.
const placeRetryDelay = 5 * time.Millisecond

// dispatch drives one spec's lease loop: place, call, and on transport
// failure evict the worker and re-place, at most MaxAttempts times
// across distinct workers, then fall back to a local run.
func (c *Coordinator) dispatch(ctx context.Context, spec *experiments.Spec, hash, label string) ([]experiments.Outcome, error) {
	attempts := 0
	var lastErr error
	tried := map[string]bool{}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ws, state := c.place(tried)
		switch state {
		case poolEmpty:
			return c.fallback(ctx, spec, lastErr)
		case poolBusy:
			select {
			case <-time.After(placeRetryDelay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			continue
		}

		lease := fmt.Sprintf("l%06d-%.12s", c.leaseSeq.Add(1), hash)
		c.metrics.placements.Add(1)
		outs, err := c.call(ctx, ws, lease, spec)
		c.releaseLease(ws)
		if err == nil {
			wc := c.metrics.worker(ws.id)
			wc.specs.Add(1)
			wc.runs.Add(uint64(len(outs)))
			return outs, nil
		}
		if sf, ok := err.(*errSpecFailed); ok {
			// Verbatim, no worker prefix: a deterministic failure must
			// read byte-identically whether it ran here or on a worker —
			// the same contract outcomes are held to.
			return nil, errors.New(sf.msg)
		}
		if busy, ok := err.(*errWorkerBusy); ok {
			// Capacity raced ahead of our view; a draining worker is out
			// of the pool, a merely-busy one stays eligible next round.
			if busy.draining {
				c.markDraining(ws.id)
			}
			tried[ws.id] = busy.draining
			continue
		}
		// Transport-level failure: the worker died mid-lease (connection
		// reset), hung past DispatchTimeout, or spoke a bad protocol.
		// Evict it and re-place the lease.
		lastErr = fmt.Errorf("fabric: lease %s on worker %s: %w", lease, ws.id, err)
		c.markDead(ws.id)
		c.metrics.retries.Add(1)
		tried[ws.id] = true
		attempts++
		if attempts >= c.opts.MaxAttempts {
			return c.fallback(ctx, spec, lastErr)
		}
	}
}

// fallback runs the spec on the coordinator itself through the exact
// local path (experiments.RunSpecsParallel), so an empty or failing
// pool degrades to single-process behaviour instead of failing jobs.
func (c *Coordinator) fallback(ctx context.Context, spec *experiments.Spec, lastErr error) ([]experiments.Outcome, error) {
	if c.opts.NoLocalFallback {
		if lastErr == nil {
			lastErr = fmt.Errorf("fabric: no live workers")
		}
		return nil, lastErr
	}
	c.metrics.localFallbacks.Add(1)
	rs := experiments.RunSpecsParallel(ctx, []experiments.Spec{*spec}, harness.Options{
		Workers: c.opts.LocalWorkers,
		Timeout: c.opts.RunTimeout,
	})
	return rs[0].Outcomes, rs[0].Err
}

// call performs one lease round trip: POST the spec shard to the
// worker, decode and validate the response.
func (c *Coordinator) call(ctx context.Context, ws *workerState, lease string, spec *experiments.Spec) ([]experiments.Outcome, error) {
	body, err := json.Marshal(RunRequest{
		Version: ProtocolVersion,
		Lease:   lease,
		Specs:   []experiments.Spec{*spec},
	})
	if err != nil {
		return nil, fmt.Errorf("marshal run request: %w", err)
	}
	cctx, cancel := context.WithTimeout(ctx, c.opts.DispatchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, ws.addr+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return nil, &errWorkerBusy{draining: eb.Error == drainingError}
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("worker returned %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("decode run response: %w", err)
	}
	if err := checkVersion(rr.Version); err != nil {
		return nil, err
	}
	if len(rr.Results) != 1 {
		return nil, fmt.Errorf("worker returned %d results for 1 spec", len(rr.Results))
	}
	wr := rr.Results[0]
	if wr.Err != "" {
		return nil, &errSpecFailed{msg: wr.Err}
	}
	return wr.Outcomes, nil
}
