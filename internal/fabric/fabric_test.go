package fabric

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spamer/internal/experiments"
	"spamer/internal/harness"
)

// fastSpecs is a small deterministic batch: three sub-second specs with
// distinct labels (distinct content addresses).
func fastSpecs(t *testing.T) []experiments.Spec {
	t.Helper()
	specs, err := experiments.ReadSpecs(strings.NewReader(`[
		{"benchmark":"ping-pong","algorithms":["vl"],"label":"f-a"},
		{"benchmark":"ping-pong","algorithms":["vl","0delay"],"label":"f-b"},
		{"benchmark":"incast","algorithms":["vl"],"label":"f-c"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// coordServer mounts a coordinator the way internal/service does:
// its wire protocol under /v1/fabric/.
func coordServer(t *testing.T, c *Coordinator) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/v1/fabric/", http.StripPrefix("/v1/fabric", c.Handler()))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// startWorker serves a worker over httptest and registers it directly
// with the coordinator (tests control heartbeats explicitly).
func startWorker(t *testing.T, c *Coordinator, w *Worker) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	w.opts.Advertise = ts.URL
	if err := c.Register(RegisterRequest{
		Version: ProtocolVersion, ID: w.opts.ID, Addr: ts.URL, MaxProcs: 1, Slots: w.opts.Slots,
	}); err != nil {
		t.Fatal(err)
	}
	return ts
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// localResults is the sequential reference the distributed runs must
// reproduce byte-for-byte.
func localResults(t *testing.T, specs []experiments.Spec) []experiments.SpecResult {
	t.Helper()
	return experiments.RunSpecsParallel(context.Background(), specs, harness.Options{Workers: 1})
}

func assertResultsEqual(t *testing.T, local, dist []experiments.SpecResult) {
	t.Helper()
	if len(local) != len(dist) {
		t.Fatalf("result count %d != %d", len(dist), len(local))
	}
	for i := range local {
		if (local[i].Err == nil) != (dist[i].Err == nil) {
			t.Fatalf("spec %d: err mismatch: local=%v dist=%v", i, local[i].Err, dist[i].Err)
		}
		if local[i].Err != nil && local[i].Err.Error() != dist[i].Err.Error() {
			t.Fatalf("spec %d: error text must be verbatim: local=%q dist=%q", i, local[i].Err, dist[i].Err)
		}
		l, d := mustJSON(t, local[i].Outcomes), mustJSON(t, dist[i].Outcomes)
		if l != d {
			t.Fatalf("spec %d outcomes diverge:\nlocal: %s\ndist:  %s", i, l, d)
		}
	}
}

// TestRegisterHeartbeatPresence covers the wire protocol end to end:
// registration over HTTP, heartbeat refresh, unknown-worker heartbeats
// demanding re-registration, and presence expiry of silent workers.
func TestRegisterHeartbeatPresence(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		HeartbeatEvery: 20 * time.Millisecond,
		ExpireAfter:    80 * time.Millisecond,
	})
	ts := coordServer(t, c)

	post := func(path, body string) (int, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	code, body := post("/v1/fabric/register", `{"version":1,"id":"w1","addr":"http://127.0.0.1:1","max_procs":4,"slots":2}`)
	if code != http.StatusOK || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("register = %d %s", code, body)
	}
	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers = %d, want 1", got)
	}

	// Wrong protocol version is rejected loudly.
	code, body = post("/v1/fabric/register", `{"version":99,"id":"w2","addr":"http://127.0.0.1:1"}`)
	if code != http.StatusBadRequest || !strings.Contains(body, "protocol version") {
		t.Fatalf("bad-version register = %d %s", code, body)
	}

	// Heartbeat for an unknown worker demands re-registration.
	code, body = post("/v1/fabric/heartbeat", `{"version":1,"id":"ghost"}`)
	if code != http.StatusOK || !strings.Contains(body, `"registered":false`) {
		t.Fatalf("ghost heartbeat = %d %s", code, body)
	}
	code, body = post("/v1/fabric/heartbeat", `{"version":1,"id":"w1","active":1}`)
	if code != http.StatusOK || !strings.Contains(body, `"registered":true`) {
		t.Fatalf("w1 heartbeat = %d %s", code, body)
	}

	// Silence past ExpireAfter reaps the worker.
	deadline := time.Now().Add(5 * time.Second)
	for c.LiveWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent worker never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var sb strings.Builder
	c.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "spamer_fabric_worker_deaths_total 1") {
		t.Fatalf("metrics missing death count:\n%s", sb.String())
	}
}

// TestDistributedMatchesLocal: a batch sharded across two live workers
// produces per-spec outcomes byte-identical to a sequential local run,
// and a repeated batch is answered entirely from the shared store.
func TestDistributedMatchesLocal(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		DispatchTimeout: 30 * time.Second,
		NoLocalFallback: true, // any fallback would mask a placement bug
	})
	w1 := NewWorker(WorkerOptions{ID: "w1", Slots: 2, RunWorkers: 1})
	w2 := NewWorker(WorkerOptions{ID: "w2", Slots: 2, RunWorkers: 1})
	startWorker(t, c, w1)
	startWorker(t, c, w2)

	specs := fastSpecs(t)
	dist := c.RunSpecs(context.Background(), specs, RunOptions{})
	assertResultsEqual(t, localResults(t, specs), dist)
	if got := c.Metrics().Placements(); got != 3 {
		t.Fatalf("placements = %d, want 3", got)
	}

	// Same batch again: three store hits, no new placements.
	again := c.RunSpecs(context.Background(), specs, RunOptions{})
	assertResultsEqual(t, localResults(t, specs), again)
	if got := c.Metrics().Placements(); got != 3 {
		t.Fatalf("placements after replay = %d, want 3 (store must answer)", got)
	}
	var sb strings.Builder
	c.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "spamer_fabric_store_hits_total 3") {
		t.Fatalf("metrics missing store hits:\n%s", sb.String())
	}
}

// TestSingleflightDedup: concurrent submissions of the same spec
// dispatch once; the rest wait for the leader and read the store.
func TestSingleflightDedup(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		DispatchTimeout: 30 * time.Second,
		NoLocalFallback: true,
	})
	w := NewWorker(WorkerOptions{ID: "w1", Slots: 1, RunWorkers: 1})
	startWorker(t, c, w)

	spec := fastSpecs(t)[:1]
	var wg sync.WaitGroup
	results := make([][]experiments.SpecResult, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.RunSpecs(context.Background(), spec, RunOptions{})
		}(i)
	}
	wg.Wait()
	local := localResults(t, spec)
	for i := range results {
		assertResultsEqual(t, local, results[i])
	}
	if got := c.Metrics().Placements(); got != 1 {
		t.Fatalf("placements = %d, want 1 (singleflight)", got)
	}
}

// TestLocalFallbackWhenPoolEmpty: with no workers, RunSpecs degrades to
// the exact single-process path.
func TestLocalFallbackWhenPoolEmpty(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{LocalWorkers: 1})
	specs := fastSpecs(t)
	dist := c.RunSpecs(context.Background(), specs, RunOptions{})
	assertResultsEqual(t, localResults(t, specs), dist)
	if got := c.Metrics().LocalFallbacks(); got != 3 {
		t.Fatalf("local fallbacks = %d, want 3", got)
	}
}

// TestSpecFailureIsFinal: a deterministic simulation failure reported
// by a worker must surface as the spec's error without re-dispatch —
// retrying a broken spec elsewhere would fail identically.
func TestSpecFailureIsFinal(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		DispatchTimeout: 30 * time.Second,
		NoLocalFallback: true,
	})
	w := NewWorker(WorkerOptions{ID: "w1", Slots: 1, RunWorkers: 1})
	startWorker(t, c, w)

	specs, err := experiments.ReadSpecs(strings.NewReader(
		`{"benchmark":"ping-pong","algorithms":["vl"],"fault":{"drop_stash":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunSpecs(context.Background(), specs, RunOptions{})
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "deadlock") {
		t.Fatalf("want structured deadlock error, got %v", res[0].Err)
	}
	if got := c.Metrics().Retries(); got != 0 {
		t.Fatalf("retries = %d, want 0 (spec failures are final)", got)
	}
	if got := c.Metrics().Placements(); got != 1 {
		t.Fatalf("placements = %d, want 1", got)
	}
}

// TestWorkerDrainFlipsHealthzAndSheds: the satellite drain contract on
// the worker agent — /healthz answers 503 the moment drain begins (so
// the coordinator and load balancers stop routing), new leases bounce
// with the draining marker, and a draining heartbeat removes the
// worker from placement.
func TestWorkerDrainFlipsHealthzAndSheds(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{LocalWorkers: 1})
	w := NewWorker(WorkerOptions{ID: "w1", Slots: 1, RunWorkers: 1})
	ts := startWorker(t, c, w)

	get := func() int {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", got)
	}
	if err := w.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := get(); got != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", got)
	}

	// A lease bounced with the draining marker leaves placement
	// immediately; the pool is then empty and the spec falls back to a
	// local run instead of failing the job.
	specs := fastSpecs(t)[:1]
	res := c.RunSpecs(context.Background(), specs, RunOptions{})
	assertResultsEqual(t, localResults(t, specs), res)
	if got := c.Metrics().LocalFallbacks(); got != 1 {
		t.Fatalf("local fallbacks = %d, want 1", got)
	}
	if got := c.LiveWorkers(); got != 0 {
		t.Fatalf("LiveWorkers after draining bounce = %d, want 0", got)
	}
}

// TestAnnounceRegistersAndReRegisters: the worker's announce loop
// registers over the wire, keeps presence fresh, and re-registers when
// the coordinator forgets it (restart).
func TestAnnounceRegistersAndReRegisters(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{
		HeartbeatEvery: 20 * time.Millisecond,
		ExpireAfter:    10 * time.Second,
	})
	cts := coordServer(t, c)

	w := NewWorker(WorkerOptions{ID: "w1", Coordinator: cts.URL, Slots: 1})
	wts := httptest.NewServer(w.Handler())
	t.Cleanup(wts.Close)
	w.opts.Advertise = wts.URL

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); w.Announce(ctx) }()

	waitLive := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for c.LiveWorkers() != want {
			if time.Now().After(deadline) {
				t.Fatalf("LiveWorkers never reached %d", want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitLive(1)

	// Simulate a coordinator restart: forget every worker. The next
	// heartbeat answers registered=false and the worker re-registers.
	c.mu.Lock()
	c.workers = map[string]*workerState{}
	c.mu.Unlock()
	waitLive(1)

	cancel()
	<-done
}
