package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spamer/internal/experiments"
	"spamer/internal/harness"
)

// drainingError is the error string a draining worker answers leases
// with; the coordinator distinguishes it from plain capacity 503s so a
// draining worker leaves the placement set immediately.
const drainingError = "draining"

// WorkerOptions tunes a Worker.
type WorkerOptions struct {
	// ID is the worker's stable identity (required; cmd/spamer-worker
	// defaults it to host-pid).
	ID string
	// Coordinator is the coordinator's base URL, e.g. http://coord:8080.
	Coordinator string
	// Advertise is the base URL the coordinator dials back, e.g.
	// http://10.0.0.7:9090.
	Advertise string
	// Slots bounds concurrently executing spec shards (default 1);
	// excess leases bounce with 503 and re-place elsewhere.
	Slots int
	// RunWorkers is the harness pool width within one shard; <= 0
	// selects GOMAXPROCS.
	RunWorkers int
	// RunTimeout bounds each simulation; 0 means none.
	RunTimeout time.Duration
	// Log, when non-nil, receives one line per lifecycle event.
	Log io.Writer

	// hookRun, if set, is called at the start of every lease execution.
	// Test-only: the chaos test uses it to gate a worker mid-job.
	hookRun func(RunRequest)
}

// Worker is the agent side of the fabric: it executes leased spec
// shards via the exact local path (experiments.RunSpecsParallel),
// heartbeats its presence and queue depth to the coordinator, and
// drains gracefully — /healthz flips to 503 the moment drain begins so
// coordinators and load balancers stop routing to it, in-flight leases
// finish, new ones bounce.
type Worker struct {
	opts   WorkerOptions
	client *http.Client

	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	active    atomic.Int64
	specsDone atomic.Uint64
	runsDone  atomic.Uint64
}

// NewWorker builds a Worker agent.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	return &Worker{opts: opts, client: &http.Client{Timeout: 10 * time.Second}}
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Log != nil {
		fmt.Fprintf(w.opts.Log, "spamer-worker %s: "+format+"\n", append([]any{w.opts.ID}, args...)...)
	}
}

// Handler serves the worker side of the wire protocol.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", w.handleRun)
	mux.HandleFunc("GET /healthz", w.handleHealthz)
	mux.HandleFunc("GET /metrics", w.handleMetrics)
	return mux
}

// Draining reports whether drain has begun.
func (w *Worker) Draining() bool {
	w.drainMu.RLock()
	defer w.drainMu.RUnlock()
	return w.draining
}

// Active reports the current queue depth (executing spec shards).
func (w *Worker) Active() int { return int(w.active.Load()) }

// admit claims an execution slot unless the worker is draining or at
// capacity; on success the caller must call the returned release.
func (w *Worker) admit() (release func(), errMsg string) {
	w.drainMu.RLock()
	defer w.drainMu.RUnlock()
	if w.draining {
		return nil, drainingError
	}
	for {
		a := w.active.Load()
		if a >= int64(w.opts.Slots) {
			return nil, "busy"
		}
		if w.active.CompareAndSwap(a, a+1) {
			break
		}
	}
	w.inflight.Add(1)
	return func() {
		w.active.Add(-1)
		w.inflight.Done()
	}, ""
}

func (w *Worker) handleRun(r http.ResponseWriter, req *http.Request) {
	var rr RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(r, req.Body, 1<<20)).Decode(&rr); err != nil {
		writeJSON(r, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := checkVersion(rr.Version); err != nil {
		writeJSON(r, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	release, errMsg := w.admit()
	if release == nil {
		writeJSON(r, http.StatusServiceUnavailable, errorBody{Error: errMsg})
		return
	}
	defer release()
	if w.opts.hookRun != nil {
		w.opts.hookRun(rr)
	}
	w.logf("lease %s: %d spec(s)", rr.Lease, len(rr.Specs))

	// The request context carries the coordinator's lease: if the
	// coordinator gives up (DispatchTimeout) or dies, queued runs are
	// cancelled with it instead of burning CPU on an orphaned lease.
	results := experiments.RunSpecsParallel(req.Context(), rr.Specs, harness.Options{
		Workers: w.opts.RunWorkers,
		Timeout: w.opts.RunTimeout,
	})
	resp := RunResponse{Version: ProtocolVersion, Worker: w.opts.ID, Lease: rr.Lease}
	for _, sr := range results {
		wr := WireResult{Index: sr.Index, Outcomes: sr.Outcomes}
		if sr.Err != nil {
			wr.Err = sr.Err.Error()
			wr.Outcomes = nil // a failed spec reports its error, not partial outcomes
		} else {
			w.specsDone.Add(1)
			w.runsDone.Add(uint64(len(sr.Outcomes)))
		}
		resp.Results = append(resp.Results, wr)
	}
	writeJSON(r, http.StatusOK, resp)
}

// handleHealthz mirrors the service-layer contract: 200 while serving,
// 503 the moment drain begins — load balancers and the coordinator
// stop routing to a draining worker instead of eating its 503s.
func (w *Worker) handleHealthz(r http.ResponseWriter, req *http.Request) {
	st := map[string]any{
		"status": "ok",
		"worker": w.opts.ID,
		"active": w.Active(),
	}
	if w.Draining() {
		st["status"] = drainingError
		writeJSON(r, http.StatusServiceUnavailable, st)
		return
	}
	writeJSON(r, http.StatusOK, st)
}

func (w *Worker) handleMetrics(r http.ResponseWriter, req *http.Request) {
	r.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(r, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(r, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("spamer_worker_active", "Spec shards currently executing.", int64(w.Active()))
	draining := int64(0)
	if w.Draining() {
		draining = 1
	}
	gauge("spamer_worker_draining", "1 once SIGTERM drain has begun.", draining)
	counter("spamer_worker_specs_total", "Spec shards completed.", w.specsDone.Load())
	counter("spamer_worker_runs_total", "Individual (spec, algorithm) simulations completed.", w.runsDone.Load())
}

// Announce registers with the coordinator (retrying until it answers)
// and then heartbeats at the coordinator-chosen cadence until ctx is
// cancelled. A heartbeat answered with registered=false — the
// coordinator restarted — triggers re-registration, so presence heals
// in one period. The final act is a best-effort draining heartbeat so
// placement stops before the process exits.
func (w *Worker) Announce(ctx context.Context) error {
	period, err := w.registerLoop(ctx)
	if err != nil {
		return err
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			w.beat(context.Background()) // carries Draining when drain began
			return ctx.Err()
		case <-ticker.C:
			registered, err := w.beat(ctx)
			if err != nil {
				w.logf("heartbeat: %v", err)
				continue
			}
			if !registered {
				w.logf("coordinator lost us; re-registering")
				if _, err := w.registerLoop(ctx); err != nil {
					return err
				}
			}
		}
	}
}

// registerLoop retries registration with capped backoff until the
// coordinator accepts or ctx ends, returning the heartbeat period.
func (w *Worker) registerLoop(ctx context.Context) (time.Duration, error) {
	backoff := 200 * time.Millisecond
	for {
		period, err := w.registerOnce(ctx)
		if err == nil {
			w.logf("registered with %s (heartbeat %v)", w.opts.Coordinator, period)
			return period, nil
		}
		w.logf("register: %v (retrying in %v)", err, backoff)
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func (w *Worker) registerOnce(ctx context.Context) (time.Duration, error) {
	body, _ := json.Marshal(RegisterRequest{
		Version:  ProtocolVersion,
		ID:       w.opts.ID,
		Addr:     w.opts.Advertise,
		MaxProcs: runtime.GOMAXPROCS(0),
		Slots:    w.opts.Slots,
	})
	var rr RegisterResponse
	if err := w.post(ctx, "/v1/fabric/register", body, &rr); err != nil {
		return 0, err
	}
	if err := checkVersion(rr.Version); err != nil {
		return 0, err
	}
	if !rr.OK {
		return 0, fmt.Errorf("fabric: registration rejected: %s", rr.Error)
	}
	period := time.Duration(rr.HeartbeatMS) * time.Millisecond
	if period <= 0 {
		period = 2 * time.Second
	}
	return period, nil
}

func (w *Worker) beat(ctx context.Context) (registered bool, err error) {
	body, _ := json.Marshal(Heartbeat{
		Version:  ProtocolVersion,
		ID:       w.opts.ID,
		Active:   w.Active(),
		Draining: w.Draining(),
	})
	var hr HeartbeatResponse
	if err := w.post(ctx, "/v1/fabric/heartbeat", body, &hr); err != nil {
		return false, err
	}
	return hr.Registered, nil
}

func (w *Worker) post(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("fabric: %s returned %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Drain begins graceful shutdown: /healthz flips to 503 and new leases
// bounce immediately, then every in-flight lease finishes (bounded by
// ctx). The caller sends the final draining heartbeat by cancelling
// its Announce context afterwards.
func (w *Worker) Drain(ctx context.Context) error {
	w.drainMu.Lock()
	w.draining = true
	w.drainMu.Unlock()
	w.logf("draining (%d lease(s) in flight)", w.Active())
	// Best-effort immediate draining heartbeat: placement stops now,
	// not at the next ticker firing.
	w.beat(context.Background())

	finished := make(chan struct{})
	go func() {
		w.inflight.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
