package fabric

import (
	"container/list"
	"sync"

	"spamer/internal/experiments"
)

// Store is the shared content-addressed result store: canonical
// per-spec hash (experiments.Spec.Hash) → the outcomes that spec
// produced, wherever they were computed. The simulator is
// deterministic, so a hit is exact; because the key is per spec — not
// per job — a worker finishing a spec inside one client's batch
// answers the same spec inside every other client's batch, and a
// never-seen combination of already-seen specs costs zero simulation.
//
// It is the per-spec complement of the service layer's per-job LRU
// (internal/service): the service cache short-circuits whole repeated
// job lists before they reach the fabric; the Store fills the gaps
// spec by spec. Bounded LRU; capacity <= 0 disables storing.
type Store struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type storeEntry struct {
	hash     string
	outcomes []experiments.Outcome
}

// NewStore builds a Store bounded to capacity entries.
func NewStore(capacity int) *Store {
	return &Store{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

// Get returns the stored outcomes for hash, refreshing recency. The
// returned slice is shared — callers must not mutate it.
func (s *Store) Get(hash string) ([]experiments.Outcome, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[hash]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(e)
	return e.Value.(*storeEntry).outcomes, true
}

// Put stores outcomes under hash, evicting the least recently used
// entry past capacity.
func (s *Store) Put(hash string, outcomes []experiments.Outcome) {
	if s.cap <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[hash]; ok {
		s.ll.MoveToFront(e)
		e.Value.(*storeEntry).outcomes = outcomes
		return
	}
	s.m[hash] = s.ll.PushFront(&storeEntry{hash: hash, outcomes: outcomes})
	for s.ll.Len() > s.cap {
		old := s.ll.Back()
		s.ll.Remove(old)
		delete(s.m, old.Value.(*storeEntry).hash)
	}
}

// Len reports the live entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}
