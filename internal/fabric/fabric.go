// Package fabric is the distributed simulation tier: it turns the
// serving layer into a coordinator for a pool of worker processes so a
// job batch scales past one process's GOMAXPROCS (ROADMAP item 1 —
// horizontal scale-out in the spirit of parti-gem5's partitioned
// simulation, with the worker pool itself treated as an M:N
// multi-producer/multi-consumer message system).
//
// Topology (docs/FABRIC.md):
//
//	client ── POST /v1/jobs ──▶ coordinator (spamer-serve -fabric)
//	                               │  shard by canonical spec hash,
//	                               │  queue-depth-aware placement,
//	                               │  lease + bounded retry
//	                               ├──▶ worker 1 (spamer-worker)
//	                               ├──▶ worker 2
//	                               └──▶ …   each runs
//	                                    experiments.RunSpecsParallel
//
// Three properties define the tier:
//
//   - Sharding by content address. The shard unit is one spec — all of
//     its algorithms together, so the SpeedupOverVL baseline
//     normalization is computed where the runs are — keyed by the
//     spec's canonical hash (experiments.Spec.Hash). The coordinator's
//     content-addressed Store is shared: any worker's completed spec is
//     a cache hit for every subsequent client, whatever job it arrives
//     in.
//
//   - Presence and leases. Workers register, heartbeat, and advertise
//     capacity (GOMAXPROCS, slots, live queue depth). A dispatch is a
//     lease bounded by the coordinator's dispatch timeout; a worker
//     that dies mid-job (connection error) or goes silent past the
//     presence deadline loses its leases, and each lease is re-placed
//     on a surviving worker at most MaxAttempts times before the
//     coordinator falls back to running the spec locally.
//
//   - Determinism. The simulator is deterministic and Outcome JSON
//     round-trips losslessly, so a distributed run's per-spec Outcomes
//     are byte-identical to a local run. internal/oracle's
//     distributed-vs-local differential mode (spamer-verify -workers N)
//     enforces exactly that, and `make fabric-smoke` proves it across
//     real processes — including one injected worker death.
//
// The wire protocol is versioned JSON over HTTP; both sides reject a
// version they do not speak, so a mixed-version pool fails loudly
// instead of corrupting results.
package fabric

import (
	"fmt"

	"spamer/internal/experiments"
)

// ProtocolVersion is the fabric wire-protocol version. Coordinator and
// workers must agree exactly; bump it on any incompatible change to the
// request/response shapes below.
const ProtocolVersion = 1

// RegisterRequest announces a worker to the coordinator.
// POST {coordinator}/v1/fabric/register
type RegisterRequest struct {
	Version int    `json:"version"`
	ID      string `json:"id"`   // stable worker identity (host-pid by default)
	Addr    string `json:"addr"` // base URL the coordinator dials, e.g. http://10.0.0.7:9090
	// MaxProcs is the worker's GOMAXPROCS — advertised capacity,
	// exported in metrics.
	MaxProcs int `json:"max_procs"`
	// Slots bounds the spec shards the worker executes concurrently;
	// the coordinator never keeps more than Slots leases outstanding on
	// one worker, and the worker itself rejects excess with 503.
	Slots int `json:"slots"`
}

// RegisterResponse acknowledges a registration and tells the worker the
// heartbeat cadence the coordinator expects.
type RegisterResponse struct {
	Version     int    `json:"version"`
	OK          bool   `json:"ok"`
	Error       string `json:"error,omitempty"`
	HeartbeatMS int64  `json:"heartbeat_ms"` // heartbeat period, milliseconds
}

// Heartbeat refreshes a worker's presence and reports live load.
// POST {coordinator}/v1/fabric/heartbeat
type Heartbeat struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
	// Active is the worker's current queue depth (spec shards
	// executing); placement prefers the lowest Active + outstanding
	// leases.
	Active int `json:"active"`
	// Draining marks a worker that received SIGTERM: it finishes
	// in-flight leases but must receive no new ones.
	Draining bool `json:"draining,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat. Registered is false when
// the coordinator does not know the worker (e.g. it restarted); the
// worker must re-register.
type HeartbeatResponse struct {
	Version    int  `json:"version"`
	Registered bool `json:"registered"`
}

// RunRequest leases a spec batch to a worker.
// POST {worker}/v1/run
type RunRequest struct {
	Version int `json:"version"`
	// Lease identifies the dispatch for logs and diagnostics; the
	// coordinator generates it, the worker echoes it back.
	Lease string `json:"lease,omitempty"`
	// Specs is the shard — in practice a single spec, the sharding
	// unit, but the shape is a batch so the protocol does not need a
	// version bump to coarsen shards later.
	Specs []experiments.Spec `json:"specs"`
}

// WireResult is one spec's slot of a RunResponse: the JSON form of
// experiments.SpecResult, with the error flattened to a string.
type WireResult struct {
	Index    int                   `json:"index"`
	Outcomes []experiments.Outcome `json:"outcomes,omitempty"`
	Err      string                `json:"error,omitempty"`
}

// RunResponse reports a completed lease. A per-spec Err is a
// deterministic simulation failure (the spec itself is bad or its run
// panicked) — re-dispatching it elsewhere would fail identically, so
// the coordinator surfaces it instead of retrying; transport-level
// failures are what trigger re-leasing.
type RunResponse struct {
	Version int          `json:"version"`
	Worker  string       `json:"worker"`
	Lease   string       `json:"lease,omitempty"`
	Results []WireResult `json:"results"`
}

// errorBody is the JSON error envelope both sides use for non-200s.
type errorBody struct {
	Error string `json:"error"`
}

// checkVersion validates a peer's protocol version.
func checkVersion(v int) error {
	if v != ProtocolVersion {
		return fmt.Errorf("fabric: protocol version %d, want %d", v, ProtocolVersion)
	}
	return nil
}
