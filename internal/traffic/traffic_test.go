package traffic

import (
	"math"
	"testing"
)

// drawGaps collects n inter-arrival gaps from a fresh source.
func drawGaps(t *testing.T, sp Spec, endpoint, n int) []float64 {
	t.Helper()
	s := NewSource(sp, endpoint)
	gaps := make([]float64, n)
	prev := uint64(0)
	for i := range gaps {
		at := s.Next()
		if at < prev {
			t.Fatalf("arrival %d at tick %d before previous %d", i, at, prev)
		}
		gaps[i] = float64(at - prev)
		prev = at
	}
	return gaps
}

func meanOf(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// TestSeededDeterminism pins the open-loop contract: same (spec, endpoint)
// gives the bit-identical arrival sequence, different endpoints diverge.
func TestSeededDeterminism(t *testing.T) {
	specs := []Spec{
		{Process: Poisson, Seed: 42, MeanGap: 100},
		{Process: MMPP, Seed: 42, MeanGap: 100, Users: 8},
		{Process: Pareto, Seed: 42, MeanGap: 100, Alpha: 1.7},
		{Process: Poisson, Seed: 7, MeanGap: 50, StormEvery: 1000, StormBurst: 5},
		{Process: Poisson, Seed: 7, MeanGap: 50, RampPeriod: 5000, RampPeak: 6},
	}
	for _, sp := range specs {
		a, b := NewSource(sp, 3), NewSource(sp, 3)
		other := NewSource(sp, 4)
		diverged := false
		for i := 0; i < 10000; i++ {
			x, y := a.Next(), b.Next()
			if x != y {
				t.Fatalf("%s: arrival %d differs: %d vs %d", sp.Name(), i, x, y)
			}
			if other.Next() != x {
				diverged = true
			}
		}
		if !diverged {
			t.Fatalf("%s: endpoints 3 and 4 produced identical streams", sp.Name())
		}
	}
}

// TestFillMatchesNext pins that the chunked pooled-record form is the
// same stream as Next.
func TestFillMatchesNext(t *testing.T) {
	sp := Spec{Process: MMPP, Seed: 9, MeanGap: 80, StormEvery: 700, StormBurst: 3}
	a, b := NewSource(sp, 0), NewSource(sp, 0)
	buf := make([]uint64, 64)
	for chunk := 0; chunk < 50; chunk++ {
		if n := a.Fill(buf); n != len(buf) {
			t.Fatalf("Fill returned %d, want %d", n, len(buf))
		}
		for i, at := range buf {
			if want := b.Next(); at != want {
				t.Fatalf("chunk %d index %d: Fill %d vs Next %d", chunk, i, at, want)
			}
		}
	}
}

// TestEmpiricalRates checks each generator's sample mean against the
// analytic mean within tolerance.
func TestEmpiricalRates(t *testing.T) {
	const n = 200000
	cases := []struct {
		sp  Spec
		tol float64
	}{
		{Spec{Process: Poisson, Seed: 1, MeanGap: 100}, 0.05},
		{Spec{Process: Poisson, Seed: 2, MeanGap: 400, Users: 16}, 0.05},
		{Spec{Process: MMPP, Seed: 3, MeanGap: 200, BurstyGap: 20, MeanDwell: 50}, 0.15},
		{Spec{Process: Pareto, Seed: 4, MeanGap: 100, Alpha: 1.8}, 0.15},
		{Spec{Process: Pareto, Seed: 5, MeanGap: 50, Alpha: 2.5, MaxGap: 5000}, 0.15},
	}
	for _, tc := range cases {
		gaps := drawGaps(t, tc.sp, 0, n)
		got, want := meanOf(gaps), tc.sp.MeanGapTicks()
		if math.Abs(got-want)/want > tc.tol {
			t.Errorf("%s mean_gap=%d: empirical mean %.2f, analytic %.2f (tol %.0f%%)",
				tc.sp.Name(), tc.sp.MeanGap, got, want, tc.tol*100)
		}
	}
}

// TestUsersScaling pins that Users divides the effective mean gap: one
// endpoint standing in for a population arrives proportionally faster.
func TestUsersScaling(t *testing.T) {
	base := meanOf(drawGaps(t, Spec{Seed: 11, MeanGap: 1000}, 0, 100000))
	scaled := meanOf(drawGaps(t, Spec{Seed: 11, MeanGap: 1000, Users: 10}, 0, 100000))
	ratio := base / scaled
	if ratio < 8 || ratio > 12 {
		t.Fatalf("Users=10 should speed arrivals ~10x, got ratio %.2f", ratio)
	}
}

// TestStormOverlay pins that every storm epoch delivers exactly
// StormBurst same-tick arrivals merged in order with the base stream.
func TestStormOverlay(t *testing.T) {
	sp := Spec{Process: Poisson, Seed: 6, MeanGap: 300, StormEvery: 2000, StormBurst: 7}
	s := NewSource(sp, 0)
	atEpoch := map[uint64]int{}
	prev := uint64(0)
	for i := 0; i < 20000; i++ {
		at := s.Next()
		if at < prev {
			t.Fatalf("arrival %d at %d before %d", i, at, prev)
		}
		prev = at
		if at%sp.StormEvery == 0 && at > 0 {
			atEpoch[at]++
		}
	}
	checked := 0
	for epoch := uint64(2000); epoch <= 20*2000 && epoch < prev; epoch += 2000 {
		if atEpoch[epoch] < sp.StormBurst {
			t.Fatalf("epoch %d got %d arrivals, want >= %d", epoch, atEpoch[epoch], sp.StormBurst)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no storm epochs inside the sampled window")
	}
}

// TestRampModulation pins that the diurnal ramp concentrates arrivals at
// mid-period: the mid-period half of each cycle must see more arrivals
// than the edges.
func TestRampModulation(t *testing.T) {
	sp := Spec{Process: Poisson, Seed: 8, MeanGap: 20, RampPeriod: 100000, RampPeak: 8}
	s := NewSource(sp, 0)
	var mid, edge int
	for i := 0; i < 100000; i++ {
		at := s.Next()
		phase := float64(at%sp.RampPeriod) / float64(sp.RampPeriod)
		if phase > 0.25 && phase < 0.75 {
			mid++
		} else {
			edge++
		}
	}
	if mid <= edge*2 {
		t.Fatalf("ramp peak=8 should concentrate arrivals mid-period: mid=%d edge=%d", mid, edge)
	}
}

// TestFarFutureClamp pins that a schedule pushed past the end of time
// clamps at ^uint64(0) instead of wrapping backwards.
func TestFarFutureClamp(t *testing.T) {
	s := NewSource(Spec{Seed: 1, MeanGap: 1 << 40}, 0)
	s.next = ^uint64(0) - 10
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		at := s.Next()
		if at < prev {
			t.Fatalf("arrival %d at %d wrapped below %d", i, at, prev)
		}
		prev = at
	}
	if prev != ^uint64(0) {
		t.Fatalf("schedule should clamp at max tick, got %d", prev)
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{},                             // no mean gap
		{Process: "weird", MeanGap: 1}, // unknown process
		{MeanGap: 1, Users: -1},
		{Process: Pareto, MeanGap: 10, Alpha: 0.5},
		{MeanGap: 10, MaxGap: 5},
		{MeanGap: 10, StormBurst: 3}, // burst without period
		{MeanGap: 10, RampPeak: 0.5},
		{MeanGap: 10, RampPeak: 3}, // peak without period
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d: %+v should not validate", i, sp)
		}
	}
	good := []Spec{
		{MeanGap: 1},
		{Process: MMPP, MeanGap: 5, Users: 1000000},
		{Process: Pareto, MeanGap: 10, Alpha: 1.1, MaxGap: 10000},
		{MeanGap: 10, StormEvery: 100, StormBurst: 3, RampPeriod: 1000, RampPeak: 2},
	}
	for i, sp := range good {
		if err := sp.Validate(); err != nil {
			t.Errorf("case %d: %+v: %v", i, sp, err)
		}
	}
}

// TestCanonical pins that default spellings collapse to one canonical
// form (the spec hash the service cache keys on).
func TestCanonical(t *testing.T) {
	a := Spec{MeanGap: 100}.Canonical()
	b := Spec{Process: Poisson, MeanGap: 100, Users: 1, BurstyGap: 9, Alpha: 0}.Canonical()
	if a != b {
		t.Fatalf("default spellings differ: %+v vs %+v", a, b)
	}
	m := Spec{Process: MMPP, MeanGap: 80}.Canonical()
	if m.BurstyGap != 10 || m.MeanDwell != 32 {
		t.Fatalf("mmpp defaults not resolved: %+v", m)
	}
	p := Spec{Process: Pareto, MeanGap: 80}.Canonical()
	if p.Alpha != 1.5 || p.MaxGap != 64*80 {
		t.Fatalf("pareto defaults not resolved: %+v", p)
	}
	if m.Alpha != 0 || p.BurstyGap != 0 {
		t.Fatal("cross-process fields should be zeroed")
	}
}
