// Package traffic implements seeded open-loop arrival processes for
// saturation workloads: Poisson, Markov-modulated Poisson (MMPP), and
// heavy-tailed (bounded Pareto) inter-arrival draws, scaled by a
// configurable user population and optionally overlaid with periodic
// incast storms and a diurnal rate ramp.
//
// "Open loop" means the arrival timeline is a pure function of the spec
// and the endpoint id — it is fixed before the simulation runs and does
// not react to queue backpressure. A producer that falls behind its
// schedule pushes immediately and catches up; the schedule itself never
// slips. This is the load model under which saturation behaviour
// (Retry-After shedding, window stalls, cross-domain incast) is
// meaningful, in contrast to the closed-loop Table 2 kernels where each
// message's issue time depends on the previous one's completion.
//
// Determinism contract: a Source is driven by a splitmix64 PRNG seeded
// from (Spec.Seed, endpoint id) and pure-Go float math, so the same spec
// and endpoint produce the bit-identical arrival sequence on every run,
// platform, and domain count. The oracle's cross-kernel differential
// check relies on this: an open-loop shape run at Domains 1/2/4/8 sees
// the same arrivals and must deliver the same messages.
package traffic

import (
	"fmt"
	"math"
)

// Process names accepted by Spec.Process.
const (
	Poisson = "poisson" // exponential inter-arrival gaps (default)
	MMPP    = "mmpp"    // two-state Markov-modulated Poisson (normal/bursty)
	Pareto  = "pareto"  // bounded Pareto gaps: heavy tail, finite worst case
)

// Spec describes one open-loop arrival process. The zero MeanGap is
// invalid; every other field defaults sensibly (see Canonical). It is
// JSON-serializable so specs embed in workload shapes, experiment spec
// files, and oracle repro cases.
type Spec struct {
	// Process selects the inter-arrival law: "poisson" (default),
	// "mmpp", or "pareto".
	Process string `json:"process,omitempty"`
	// Seed is the base PRNG seed; each endpoint mixes its id in, so a
	// population of producers is deterministic yet decorrelated.
	Seed uint64 `json:"seed,omitempty"`
	// MeanGap is the mean inter-arrival gap in ticks for a single user.
	// Required (> 0).
	MeanGap uint64 `json:"mean_gap"`
	// Users is the population this endpoint stands in for (default 1).
	// The effective mean gap is MeanGap/Users: one simulated producer
	// carries the superposed arrival stream of Users independent users,
	// which is how a handful of endpoints model millions of clients.
	Users int `json:"users,omitempty"`

	// BurstyGap is the MMPP bursty-state mean gap (default MeanGap/8,
	// min 1). MeanDwell is the mean number of arrivals spent in each
	// state before switching (default 32).
	BurstyGap uint64  `json:"bursty_gap,omitempty"`
	MeanDwell float64 `json:"mean_dwell,omitempty"`

	// Alpha is the Pareto tail index (default 1.5; must be > 1 so the
	// mean is finite). MaxGap bounds the tail (default 64*MeanGap).
	Alpha  float64 `json:"alpha,omitempty"`
	MaxGap uint64  `json:"max_gap,omitempty"`

	// StormEvery/StormBurst overlay periodic incast storms: every
	// StormEvery ticks, StormBurst extra arrivals land on the same tick.
	StormEvery uint64 `json:"storm_every,omitempty"`
	StormBurst int    `json:"storm_burst,omitempty"`

	// RampPeriod/RampPeak overlay a diurnal ramp: the arrival rate is
	// modulated by a triangle wave of the given period, rising from the
	// base rate to RampPeak times the base rate (default peak 4) at
	// mid-period and back.
	RampPeriod uint64  `json:"ramp_period,omitempty"`
	RampPeak   float64 `json:"ramp_peak,omitempty"`
}

// Validate rejects specs that cannot drive a generator.
func (sp *Spec) Validate() error {
	switch sp.Process {
	case "", Poisson, MMPP, Pareto:
	default:
		return fmt.Errorf("traffic: unknown process %q", sp.Process)
	}
	if sp.MeanGap == 0 {
		return fmt.Errorf("traffic: mean_gap must be > 0")
	}
	if sp.Users < 0 {
		return fmt.Errorf("traffic: negative users")
	}
	if sp.MeanDwell < 0 {
		return fmt.Errorf("traffic: negative mean_dwell")
	}
	if sp.Alpha != 0 && sp.Alpha <= 1 {
		return fmt.Errorf("traffic: pareto alpha must be > 1 (finite mean), got %v", sp.Alpha)
	}
	if sp.MaxGap != 0 && sp.MaxGap < sp.MeanGap {
		return fmt.Errorf("traffic: max_gap %d below mean_gap %d", sp.MaxGap, sp.MeanGap)
	}
	if sp.StormBurst < 0 || (sp.StormBurst > 0 && sp.StormEvery == 0) {
		return fmt.Errorf("traffic: storm_burst needs storm_every > 0")
	}
	if sp.RampPeak != 0 && sp.RampPeak < 1 {
		return fmt.Errorf("traffic: ramp_peak must be >= 1, got %v", sp.RampPeak)
	}
	if sp.RampPeak > 1 && sp.RampPeriod == 0 {
		return fmt.Errorf("traffic: ramp_peak needs ramp_period > 0")
	}
	return nil
}

// Canonical returns the spec with every default resolved explicitly and
// every field that the selected process ignores zeroed, so two specs
// that build identical generators compare (and hash) equal.
func (sp Spec) Canonical() Spec {
	c := sp
	if c.Process == "" {
		c.Process = Poisson
	}
	if c.Users <= 0 {
		c.Users = 1
	}
	c.BurstyGap, c.MeanDwell = 0, 0
	c.Alpha, c.MaxGap = 0, 0
	switch c.Process {
	case MMPP:
		c.BurstyGap, c.MeanDwell = sp.BurstyGap, sp.MeanDwell
		if c.BurstyGap == 0 {
			c.BurstyGap = c.MeanGap / 8
		}
		if c.BurstyGap == 0 {
			c.BurstyGap = 1
		}
		if c.MeanDwell == 0 {
			c.MeanDwell = 32
		}
	case Pareto:
		c.Alpha, c.MaxGap = sp.Alpha, sp.MaxGap
		if c.Alpha == 0 {
			c.Alpha = 1.5
		}
		if c.MaxGap == 0 {
			c.MaxGap = 64 * c.MeanGap
		}
	}
	if c.StormBurst <= 0 || c.StormEvery == 0 {
		c.StormEvery, c.StormBurst = 0, 0
	}
	if c.RampPeriod == 0 {
		c.RampPeak = 0
	} else if c.RampPeak == 0 {
		c.RampPeak = 4
	}
	return c
}

// Name returns a compact diagnostic suffix encoding the spec, used in
// workload names ("poisson", "mmpp+storm", ...).
func (sp *Spec) Name() string {
	c := sp.Canonical()
	n := c.Process
	if c.StormBurst > 0 {
		n += "+storm"
	}
	if c.RampPeak > 1 {
		n += "+ramp"
	}
	return n
}

// Source generates the arrival schedule of one endpoint: a nondecreasing
// stream of absolute ticks. It allocates only at construction; Next and
// Fill are allocation-free.
type Source struct {
	process string
	meanGap float64 // per-endpoint effective mean (MeanGap / Users)

	// mmpp
	burstyGap float64
	meanDwell float64
	bursty    bool
	dwell     uint64 // arrivals left in the current state

	// pareto (precomputed inverse-CDF constants)
	parMin   float64 // L: lower bound chosen so the unbounded mean is meanGap
	parLH    float64 // (L/H)^alpha
	invAlpha float64

	// storm overlay
	stormEvery uint64
	stormBurst int
	stormAt    uint64 // next storm epoch
	stormLeft  int    // arrivals still owed at the current epoch

	// diurnal ramp
	rampPeriod float64
	rampPeak   float64

	rng  uint64 // splitmix64 state
	next uint64 // next base-process arrival tick
}

// NewSource builds the generator for one endpoint. The spec must
// validate; NewSource panics otherwise (shapes validate before build).
func NewSource(sp Spec, endpoint int) *Source {
	if err := sp.Validate(); err != nil {
		panic(err)
	}
	c := sp.Canonical()
	s := &Source{
		process:    c.Process,
		meanGap:    float64(c.MeanGap) / float64(c.Users),
		stormEvery: c.StormEvery,
		stormBurst: c.StormBurst,
		stormAt:    c.StormEvery,
		rampPeriod: float64(c.RampPeriod),
		rampPeak:   c.RampPeak,
		// Mix the endpoint id into the seed through one splitmix step so
		// endpoints 0 and 1 of the same spec diverge immediately.
		rng: c.Seed ^ mix64(uint64(endpoint)+0x6a09e667f3bcc909),
	}
	switch c.Process {
	case MMPP:
		s.burstyGap = float64(c.BurstyGap) / float64(c.Users)
		s.meanDwell = c.MeanDwell
	case Pareto:
		// Choose L so the unbounded Pareto mean a*L/(a-1) equals the
		// requested mean; bounding at H trims the tail slightly below it.
		a := c.Alpha
		s.invAlpha = 1 / a
		s.parMin = s.meanGap * (a - 1) / a
		if s.parMin < 1 {
			s.parMin = 1
		}
		h := float64(c.MaxGap)
		if h < s.parMin {
			h = s.parMin
		}
		s.parLH = math.Pow(s.parMin/h, a)
	}
	s.advanceBase()
	return s
}

// Next returns the next arrival tick. The stream is nondecreasing; any
// number of arrivals may share a tick (a storm, or a gap that rounds to
// zero under saturation load).
func (s *Source) Next() uint64 {
	if s.stormBurst > 0 {
		if s.stormLeft > 0 {
			t := s.stormAt
			s.stormLeft--
			if s.stormLeft == 0 {
				s.stormAt += s.stormEvery
			}
			return t
		}
		if s.stormAt <= s.next {
			t := s.stormAt
			s.stormLeft = s.stormBurst - 1
			if s.stormLeft == 0 {
				s.stormAt += s.stormEvery
			}
			return t
		}
	}
	t := s.next
	s.advanceBase()
	return t
}

// Fill overwrites dst with the next len(dst) arrival ticks and returns
// len(dst). Callers reuse one chunk buffer as a pooled arrival-record
// block, so the open-loop hot path never allocates per message.
func (s *Source) Fill(dst []uint64) int {
	for i := range dst {
		dst[i] = s.Next()
	}
	return len(dst)
}

// advanceBase draws the next base-process gap and advances the schedule,
// clamping at the end of time instead of wrapping.
func (s *Source) advanceBase() {
	gap := s.gap()
	if s.rampPeriod > 0 {
		gap /= s.rampMult(s.next)
	}
	g := uint64(gap + 0.5)
	t := s.next + g
	if t < s.next {
		t = ^uint64(0)
	}
	s.next = t
}

// gap draws one inter-arrival gap (in ticks, continuous) from the
// configured process.
func (s *Source) gap() float64 {
	switch s.process {
	case MMPP:
		if s.dwell == 0 {
			s.bursty = !s.bursty
			s.dwell = 1 + uint64(s.exp(s.meanDwell))
		}
		s.dwell--
		if s.bursty {
			return s.exp(s.burstyGap)
		}
		return s.exp(s.meanGap)
	case Pareto:
		u := s.uniform()
		return s.parMin / math.Pow(1-u*(1-s.parLH), s.invAlpha)
	default: // Poisson
		return s.exp(s.meanGap)
	}
}

// exp draws an exponential variate with the given mean.
func (s *Source) exp(mean float64) float64 {
	return -mean * math.Log(1-s.uniform())
}

// uniform draws a float64 in [0, 1).
func (s *Source) uniform() float64 {
	return float64(s.next64()>>11) / (1 << 53)
}

// rampMult is the diurnal rate multiplier at absolute tick t: a triangle
// wave rising from 1 at phase 0 to rampPeak at mid-period and back.
func (s *Source) rampMult(t uint64) float64 {
	phase := math.Mod(float64(t), s.rampPeriod) / s.rampPeriod
	tri := 1 - math.Abs(2*phase-1)
	return 1 + (s.rampPeak-1)*tri
}

// next64 steps the splitmix64 generator (Steele et al.), chosen for
// platform-stable bit-exact output from pure integer arithmetic.
func (s *Source) next64() uint64 {
	s.rng += 0x9e3779b97f4a7c15
	return mix64(s.rng)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MeanGapTicks reports the analytic mean inter-arrival gap of the base
// process (per endpoint, after Users scaling, before storm/ramp
// overlays). Rate sanity tests compare empirical means against it.
func (sp Spec) MeanGapTicks() float64 {
	c := sp.Canonical()
	mean := float64(c.MeanGap) / float64(c.Users)
	switch c.Process {
	case MMPP:
		// Equal mean dwell (in arrivals) in both states: the long-run
		// mean gap is the unweighted average of the two state means.
		return (mean + float64(c.BurstyGap)/float64(c.Users)) / 2
	case Pareto:
		// Bounded Pareto mean on [L, H] with tail index a.
		a := c.Alpha
		l := mean * (a - 1) / a
		if l < 1 {
			l = 1
		}
		h := float64(c.MaxGap)
		if h < l {
			h = l
		}
		la := math.Pow(l/h, a)
		if la == 1 {
			return l
		}
		return math.Pow(l, a) / (1 - la) * a / (a - 1) *
			(math.Pow(l, 1-a) - math.Pow(h, 1-a))
	default:
		return mean
	}
}
