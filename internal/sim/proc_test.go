package sim

import "testing"

func TestProcSleep(t *testing.T) {
	k := New()
	var wake []uint64
	k.Go("a", func(p *Proc) {
		p.Sleep(10)
		wake = append(wake, p.Now())
		p.Sleep(5)
		wake = append(wake, p.Now())
	})
	k.Run()
	if len(wake) != 2 || wake[0] != 10 || wake[1] != 15 {
		t.Fatalf("wake = %v, want [10 15]", wake)
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", k.LiveProcs())
	}
}

func TestProcInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		k := New()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(2)
					log = append(log, name)
				}
			})
		}
		k.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != 9 || len(b) != 9 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, a, b)
		}
	}
	// Same-tick wakes dispatch in spawn order.
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("log = %v, want %v", a, want)
		}
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	k := New()
	sig := NewSignal("s")
	woke := 0
	for i := 0; i < 3; i++ {
		k.Go("w", func(p *Proc) {
			sig.Wait(p)
			woke++
			if p.Now() != 50 {
				t.Errorf("woke at %d, want 50", p.Now())
			}
		})
	}
	k.At(50, func() { sig.Fire() })
	k.Run()
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
	if sig.Waiters() != 0 {
		t.Fatalf("Waiters = %d, want 0", sig.Waiters())
	}
}

func TestSignalReusable(t *testing.T) {
	k := New()
	sig := NewSignal("s")
	var wakes []uint64
	k.Go("w", func(p *Proc) {
		sig.Wait(p)
		wakes = append(wakes, p.Now())
		sig.Wait(p)
		wakes = append(wakes, p.Now())
	})
	k.At(10, sig.Fire)
	k.At(20, sig.Fire)
	k.Run()
	if len(wakes) != 2 || wakes[0] != 10 || wakes[1] != 20 {
		t.Fatalf("wakes = %v, want [10 20]", wakes)
	}
}

func TestWaitUntil(t *testing.T) {
	k := New()
	sig := NewSignal("cond")
	val := 0
	done := uint64(0)
	k.Go("w", func(p *Proc) {
		WaitUntil(p, sig, func() bool { return val >= 3 })
		done = p.Now()
	})
	for i := 1; i <= 5; i++ {
		i := i
		k.At(uint64(i*10), func() { val = i; sig.Fire() })
	}
	k.Run()
	if done != 30 {
		t.Fatalf("done at %d, want 30", done)
	}
}

func TestWaitUntilAlreadyTrue(t *testing.T) {
	k := New()
	sig := NewSignal("cond")
	ran := false
	k.Go("w", func(p *Proc) {
		WaitUntil(p, sig, func() bool { return true })
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("WaitUntil with true condition parked forever")
	}
}

func TestProcsCommunicate(t *testing.T) {
	k := New()
	sig := NewSignal("hand")
	var order []string
	k.Go("producer", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "produce")
		sig.Fire()
	})
	k.Go("consumer", func(p *Proc) {
		sig.Wait(p)
		order = append(order, "consume")
	})
	k.Run()
	if len(order) != 2 || order[0] != "produce" || order[1] != "consume" {
		t.Fatalf("order = %v", order)
	}
}

func TestDrainReleasesParkedProcs(t *testing.T) {
	k := New()
	sig := NewSignal("never")
	k.Go("stuck", func(p *Proc) { sig.Wait(p) })
	k.RunUntil(100)
	if k.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want 1", k.LiveProcs())
	}
	k.Drain()
	if k.LiveProcs() != 0 {
		t.Fatalf("after Drain: LiveProcs = %d, want 0", k.LiveProcs())
	}
}

func TestSleepZeroYields(t *testing.T) {
	k := New()
	var order []string
	k.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	k.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	// a starts first (spawn order), yields at the same tick, b runs, then a resumes.
	want := []string{"a1", "b1", "a2"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestWaitAnyFirstSignalWins(t *testing.T) {
	k := New()
	a, b := NewSignal("a"), NewSignal("b")
	var woke uint64
	k.Go("w", func(p *Proc) {
		WaitAny(p, a, b)
		woke = p.Now()
	})
	k.At(30, b.Fire)
	k.At(60, a.Fire)
	k.Run()
	if woke != 30 {
		t.Fatalf("woke at %d, want 30 (first signal)", woke)
	}
}

func TestWaitAnySpentHandleIgnored(t *testing.T) {
	k := New()
	a, b := NewSignal("a"), NewSignal("b")
	wakes := 0
	k.Go("w", func(p *Proc) {
		WaitAny(p, a, b)
		wakes++
		// Park again on a fresh handle; the later fire of the other
		// signal must not double-wake.
		WaitAny(p, a, b)
		wakes++
	})
	k.At(10, a.Fire)
	k.At(20, b.Fire) // consumes both the stale handle and the new one
	k.At(30, a.Fire)
	k.Run()
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2", wakes)
	}
}

func TestWaitAnySameSignalTwice(t *testing.T) {
	k := New()
	a := NewSignal("a")
	done := false
	k.Go("w", func(p *Proc) {
		WaitAny(p, a, a) // degenerate but legal
		done = true
	})
	k.At(5, a.Fire)
	k.Run()
	if !done {
		t.Fatal("WaitAny(a, a) never woke")
	}
}

func TestManyProcsStress(t *testing.T) {
	k := New()
	k.SetDeadline(1 << 24)
	const procs, steps = 64, 50
	total := 0
	for i := 0; i < procs; i++ {
		i := i
		k.Go("p", func(p *Proc) {
			for s := 0; s < steps; s++ {
				p.Sleep(uint64(1 + (i+s)%7))
			}
			total++
		})
	}
	k.Run()
	if total != procs {
		t.Fatalf("finished = %d", total)
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("live = %d", k.LiveProcs())
	}
}

func TestExecutedCounter(t *testing.T) {
	k := New()
	k.At(1, func() {})
	k.At(2, func() {})
	k.Run()
	if k.Executed() != 2 {
		t.Fatalf("executed = %d", k.Executed())
	}
	if k.Pending() != 0 {
		t.Fatalf("pending = %d", k.Pending())
	}
}
