// Package sim provides a deterministic discrete-event simulation kernel
// with cooperative coroutine processes.
//
// Time is measured in ticks; by convention one tick is one CPU cycle of the
// simulated 2 GHz machine (see internal/config). Events scheduled for the
// same tick fire in scheduling order (FIFO), which makes runs bit-for-bit
// reproducible: the kernel never runs two processes concurrently, and the
// event heap breaks tick ties with a monotonically increasing sequence
// number.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a closure scheduled to run at a simulated tick.
type event struct {
	tick uint64
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator instance. The zero value is not
// usable; construct with New.
type Kernel struct {
	now      uint64
	seq      uint64
	events   eventHeap
	procs    []*Proc
	live     int // procs spawned and not yet finished
	stopped  bool
	maxTick  uint64 // watchdog: Run panics past this tick (0 = unlimited)
	executed uint64 // total events dispatched, for diagnostics
}

// New returns an empty kernel at tick zero.
func New() *Kernel {
	return &Kernel{}
}

// Now reports the current simulated tick.
func (k *Kernel) Now() uint64 { return k.now }

// Executed reports how many events have been dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// SetDeadline arms a watchdog: if simulated time passes t while events are
// still pending, Run panics. Use it in tests to convert deadlock or
// livelock into a loud failure instead of an endless loop.
func (k *Kernel) SetDeadline(t uint64) { k.maxTick = t }

// At schedules fn to run at absolute tick t. Scheduling in the past is a
// programming error and panics.
func (k *Kernel) At(t uint64, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at tick %d before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, event{tick: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d ticks from now.
func (k *Kernel) After(d uint64, fn func()) { k.At(k.now+d, fn) }

// Stop makes Run return after the current event completes. Pending events
// remain queued; a subsequent Run continues from where it left off.
func (k *Kernel) Stop() { k.stopped = true }

// dispatchNext pops the earliest event and runs it, enforcing the
// invariants every run loop shares: simulated time never moves
// backwards, and the watchdog deadline converts livelock into a loud
// panic instead of an endless spin.
func (k *Kernel) dispatchNext() {
	e := heap.Pop(&k.events).(event)
	if e.tick < k.now {
		panic("sim: event heap went backwards")
	}
	k.now = e.tick
	if k.maxTick != 0 && k.now > k.maxTick {
		panic(fmt.Sprintf("sim: watchdog deadline %d exceeded at tick %d (%d live procs)",
			k.maxTick, k.now, k.live))
	}
	k.executed++
	e.fn()
}

// Run dispatches events in (tick, seq) order until the event queue drains,
// Stop is called, or the watchdog deadline passes.
func (k *Kernel) Run() {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		k.dispatchNext()
	}
}

// RunUntil dispatches events with tick <= t, then sets now = t. It
// enforces the same watchdog and monotone-time guards as Run, so a
// livelock below t panics rather than spinning.
func (k *Kernel) RunUntil(t uint64) {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		if k.events[0].tick > t {
			break
		}
		k.dispatchNext()
	}
	if k.now < t {
		k.now = t
	}
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// LiveProcs reports the number of spawned processes that have not finished.
func (k *Kernel) LiveProcs() int { return k.live }

// Drain releases any processes still parked so their goroutines can exit.
// Call it when abandoning a simulation early (e.g. RunUntil in tests);
// a fully Run simulation needs no draining.
func (k *Kernel) Drain() {
	for _, p := range k.procs {
		if !p.finished && p.started {
			p.abort()
		}
	}
	k.events = nil
}
