// Package sim provides a deterministic discrete-event simulation kernel
// with cooperative coroutine processes.
//
// Time is measured in ticks; by convention one tick is one CPU cycle of the
// simulated 2 GHz machine (see internal/config). Events scheduled for the
// same tick fire in scheduling order (FIFO), which makes runs bit-for-bit
// reproducible: the kernel never runs two processes concurrently, and the
// event queue breaks tick ties with a monotonically increasing sequence
// number. See docs/SIMULATOR.md for the full determinism contract.
//
// The queue is a monomorphic calendar wheel (near future) backed by a
// binary heap (far future); scheduling with At/After stores one closure
// by value, and the AtFunc/AfterFunc forms take a func(uint64) plus
// argument so steady-state hot paths schedule with zero allocations.
package sim

import "fmt"

// Kernel is a discrete-event simulator instance. The zero value is not
// usable; construct with New.
type Kernel struct {
	now      uint64
	seq      uint64
	events   eventQueue
	procs    []*Proc
	live     int // procs spawned and not yet finished

	// Proc spawning support: block storage behind the *Proc pointers and
	// the shared start/dispatch trampoline Go binds on first use (proc.go).
	// The first arena block and index array are embedded, so a kernel
	// spawning a handful of processes (every core domain of a parallel
	// fabric) allocates nothing for them; &procArena0[i] is handed out,
	// which is safe because kernels never move (heap object or a slot of
	// the fabric's kernel arena).
	procArena  []Proc
	procFn     func(uint64)
	procArena0 [procArenaBlock]Proc
	procs0     [procArenaBlock]*Proc
	dom      int  // domain index within a parallel fabric; 0 for a solo kernel
	stopped  bool
	maxTick  uint64 // watchdog: Run panics past this tick (0 = unlimited)
	executed uint64 // total events dispatched, for diagnostics
	lastTick uint64 // tick of the last dispatched event (not moved by RunUntil)

	// obs, when set, observes every dispatched event's (tick, seq) pair
	// before its callback runs. Golden-trace tests use it to prove two
	// kernels dispatch bit-identically.
	obs func(tick, seq uint64)
}

// SetDispatchObserver installs fn to be called with the (tick, seq) pair
// of every event immediately before it is dispatched, in dispatch order.
// The observer must not schedule events. Pass nil to remove. Intended for
// determinism tests; the nil check costs one branch per event.
func (k *Kernel) SetDispatchObserver(fn func(tick, seq uint64)) { k.obs = fn }

// New returns an empty kernel at tick zero.
func New() *Kernel {
	return &Kernel{}
}

// Now reports the current simulated tick.
func (k *Kernel) Now() uint64 { return k.now }

// DomainIndex reports the kernel's logical domain within its parallel
// fabric (set by NewParallel), or 0 for a standalone kernel. Model code
// uses it for reverse lookup — mapping a process's kernel back to its
// per-domain state without a map.
func (k *Kernel) DomainIndex() int { return k.dom }

// Executed reports how many events have been dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// LastEventTick reports the tick of the most recently dispatched event.
// Unlike Now it is not moved forward by RunUntil's clock advance, so it
// reports when the kernel last did real work — the parallel coordinator
// uses the maximum over domains as the run's end-to-end execution time.
func (k *Kernel) LastEventTick() uint64 { return k.lastTick }

// NextTick reports the earliest pending event's tick; ok is false when
// the queue is empty. The parallel coordinator uses it to find the global
// quantum start and to skip idle domains.
func (k *Kernel) NextTick() (uint64, bool) { return k.events.nextTick() }

// SetDeadline arms a watchdog: if simulated time passes t while events are
// still pending, Run panics. Use it in tests to convert deadlock or
// livelock into a loud failure instead of an endless loop.
func (k *Kernel) SetDeadline(t uint64) { k.maxTick = t }

// At schedules fn to run at absolute tick t. Scheduling in the past is a
// programming error and panics.
func (k *Kernel) At(t uint64, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at tick %d before now %d", t, k.now))
	}
	k.seq++
	k.events.push(event{tick: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d ticks from now.
func (k *Kernel) After(d uint64, fn func()) { k.At(k.now+d, fn) }

// AtFunc schedules fn(arg) to run at absolute tick t. It is the
// allocation-free form of At: fn is typically a func value bound once at
// construction time (a stored method value), and arg carries the per-event
// state (an entry index, a packed flag), so the hot path schedules without
// creating a closure. Ordering is identical to At — the two forms share
// one sequence counter and one queue.
func (k *Kernel) AtFunc(t uint64, fn func(uint64), arg uint64) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at tick %d before now %d", t, k.now))
	}
	k.seq++
	k.events.push(event{tick: t, seq: k.seq, afn: fn, arg: arg})
}

// AfterFunc schedules fn(arg) to run d ticks from now (see AtFunc).
func (k *Kernel) AfterFunc(d uint64, fn func(uint64), arg uint64) {
	k.AtFunc(k.now+d, fn, arg)
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; a subsequent Run continues from where it left off.
func (k *Kernel) Stop() { k.stopped = true }

// dispatchNext pops the earliest event and runs it, enforcing the
// invariants every run loop shares: simulated time never moves
// backwards, and the watchdog deadline converts livelock into a loud
// panic instead of an endless spin. The run loops batch per tick via
// dispatchTick instead; this form remains for single-step tests.
func (k *Kernel) dispatchNext() {
	e, ok := k.events.pop()
	if !ok {
		panic("sim: dispatchNext on empty queue")
	}
	if e.tick < k.now {
		panic("sim: event queue went backwards")
	}
	k.now = e.tick
	if k.maxTick != 0 && k.now > k.maxTick {
		panic(fmt.Sprintf("sim: watchdog deadline %d exceeded at tick %d (%d live procs)",
			k.maxTick, k.now, k.live))
	}
	k.executed++
	k.lastTick = e.tick
	if k.obs != nil {
		k.obs(e.tick, e.seq)
	}
	e.call()
}

// dispatchTick drains one tick's bucket — positioned by startTick — in
// seq (FIFO) order, including events the callbacks append for the same
// tick. Batching the monotone-time and watchdog checks per tick instead
// of per event is what keeps million-event open-loop runs cheap; the
// dispatch order is identical to the per-event loop because a bucket
// holds exactly one tick's events in seq order.
func (k *Kernel) dispatchTick(b *bucket) {
	t := k.events.now
	if t < k.now {
		panic("sim: event queue went backwards")
	}
	k.now = t
	if k.maxTick != 0 && t > k.maxTick {
		panic(fmt.Sprintf("sim: watchdog deadline %d exceeded at tick %d (%d live procs)",
			k.maxTick, t, k.live))
	}
	k.lastTick = t
	for b.head < len(b.ev) && !k.stopped {
		e := b.ev[b.head]
		b.ev[b.head] = event{} // release closure references for GC
		b.head++
		k.events.wheelLen--
		k.executed++
		if k.obs != nil {
			k.obs(e.tick, e.seq)
		}
		e.call()
	}
	if b.head == len(b.ev) {
		b.ev = b.ev[:0]
		b.head = 0
		k.events.occ &^= 1 << (t & wheelMask)
	}
}

// Run dispatches events in (tick, seq) order until the event queue drains,
// Stop is called, or the watchdog deadline passes.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped {
		b := k.events.startTick(^uint64(0))
		if b == nil {
			break
		}
		k.dispatchTick(b)
	}
}

// RunUntil dispatches events with tick <= t, then sets now = t. It
// enforces the same watchdog and monotone-time guards as Run, so a
// livelock below t panics rather than spinning.
func (k *Kernel) RunUntil(t uint64) {
	k.stopped = false
	for !k.stopped {
		b := k.events.startTick(t)
		if b == nil {
			break
		}
		k.dispatchTick(b)
	}
	if k.now < t {
		k.now = t
		k.events.advanceTo(t)
	}
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.events.len() }

// LiveProcs reports the number of spawned processes that have not finished.
func (k *Kernel) LiveProcs() int { return k.live }

// Drain releases any processes still parked so their goroutines can exit.
// Call it when abandoning a simulation early (e.g. RunUntil in tests);
// a fully Run simulation needs no draining.
func (k *Kernel) Drain() {
	for _, p := range k.procs {
		if !p.finished && p.started {
			p.abort()
		}
	}
	k.events.reset()
}
