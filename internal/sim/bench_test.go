package sim

import "testing"

// BenchmarkEventDispatch measures raw event-queue throughput — the
// floor under every simulation in the repository. Steady state must be
// 0 allocs/op: the self-rescheduling event reuses one closure and the
// wheel bucket's backing array.
func BenchmarkEventDispatch(b *testing.B) {
	b.ReportAllocs()
	k := New()
	n := 0
	var self func()
	self = func() {
		n++
		if n < b.N {
			k.After(1, self)
		}
	}
	k.At(0, self)
	b.ResetTimer()
	k.Run()
}

// BenchmarkEventDispatchFunc measures the non-closure scheduling form
// (AfterFunc with a bound func value) on the same self-rescheduling
// pattern the device tick paths use.
func BenchmarkEventDispatchFunc(b *testing.B) {
	b.ReportAllocs()
	k := New()
	n := 0
	var self func(uint64)
	self = func(arg uint64) {
		n++
		if n < b.N {
			k.AfterFunc(1, self, arg+1)
		}
	}
	k.AtFunc(0, self, 0)
	b.ResetTimer()
	k.Run()
}

// BenchmarkEventHeapChurn measures scheduling with a deep pending set
// spanning the calendar wheel and the far heap (ticks 1..96 around the
// 64-tick wheel boundary).
func BenchmarkEventHeapChurn(b *testing.B) {
	b.ReportAllocs()
	k := New()
	for i := 0; i < 1024; i++ {
		k.At(uint64(1+i%97), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.At(uint64(1+i%97), func() {})
	}
	b.StopTimer()
	k.Run()
}

// BenchmarkMixedWorkload reproduces the realistic steady-state
// scheduling mix of a busy routing device: a per-cycle tick (After(1),
// the mapper), a short-delay completion (the mapping pipeline), a
// medium-delay delivery (bus serialization + hop), and an occasional
// far-future event crossing the wheel/heap boundary (a predicted
// speculative send). Steady state must be 0 allocs/op.
func BenchmarkMixedWorkload(b *testing.B) {
	b.ReportAllocs()
	k := New()
	n := 0
	sink := uint64(0)
	work := func(arg uint64) { sink += arg }
	var tick func(uint64)
	tick = func(uint64) {
		n++
		if n >= b.N {
			return
		}
		k.AfterFunc(1, tick, 0)          // mapper tick
		k.AfterFunc(3, work, uint64(n))  // pipeline completion
		k.AfterFunc(12, work, uint64(n)) // bus delivery
		if n%16 == 0 {                   // predicted spec send
			k.AfterFunc(200+uint64(n%97), work, 1) // far heap
		}
	}
	k.AtFunc(0, tick, 0)
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcSwitch measures a coroutine sleep/wake round trip — two
// goroutine handoffs over the single control channel per iteration.
func BenchmarkProcSwitch(b *testing.B) {
	b.ReportAllocs()
	k := New()
	k.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkSignalFire measures broadcast wake of 8 parked processes.
func BenchmarkSignalFire(b *testing.B) {
	b.ReportAllocs()
	k := New()
	sig := NewSignal("s")
	const waiters = 8
	for w := 0; w < waiters; w++ {
		k.Go("w", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				sig.Wait(p)
			}
		})
	}
	var pump func()
	fired := 0
	pump = func() {
		sig.Fire()
		fired++
		if fired < b.N+1 {
			k.After(1, pump)
		}
	}
	k.At(1, pump)
	b.ResetTimer()
	k.Run()
	b.StopTimer()
	k.Drain()
}

// BenchmarkSignalWaiterChurn measures the waiter-list churn of a
// producer/consumer pair exchanging wakes through two signals — the
// Wait/Fire pattern of the vlq queue library. The waiter backing arrays
// and wake tokens must be fully recycled: 0 allocs/op in steady state.
func BenchmarkSignalWaiterChurn(b *testing.B) {
	b.ReportAllocs()
	k := New()
	ping := NewSignal("ping")
	pong := NewSignal("pong")
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Wait(p)
			pong.Fire()
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
			ping.Fire()
			pong.Wait(p)
		}
	})
	b.ResetTimer()
	k.Run()
	b.StopTimer()
	k.Drain()
}
