package sim

import "testing"

// BenchmarkEventDispatch measures raw event-queue throughput — the
// floor under every simulation in the repository.
func BenchmarkEventDispatch(b *testing.B) {
	k := New()
	n := 0
	var self func()
	self = func() {
		n++
		if n < b.N {
			k.After(1, self)
		}
	}
	k.At(0, self)
	b.ResetTimer()
	k.Run()
}

// BenchmarkEventHeapChurn measures scheduling with a deep heap.
func BenchmarkEventHeapChurn(b *testing.B) {
	k := New()
	for i := 0; i < 1024; i++ {
		k.At(uint64(1+i%97), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.At(uint64(1+i%97), func() {})
	}
	b.StopTimer()
	k.Run()
}

// BenchmarkProcSwitch measures a coroutine sleep/wake round trip — two
// goroutine handoffs per iteration.
func BenchmarkProcSwitch(b *testing.B) {
	k := New()
	k.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkSignalFire measures broadcast wake of 8 parked processes.
func BenchmarkSignalFire(b *testing.B) {
	k := New()
	sig := NewSignal("s")
	const waiters = 8
	for w := 0; w < waiters; w++ {
		k.Go("w", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				sig.Wait(p)
			}
		})
	}
	var pump func()
	fired := 0
	pump = func() {
		sig.Fire()
		fired++
		if fired < b.N+1 {
			k.After(1, pump)
		}
	}
	k.At(1, pump)
	b.ResetTimer()
	k.Run()
	b.StopTimer()
	k.Drain()
}
