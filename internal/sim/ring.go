package sim

import "sync/atomic"

// pairRing is a fixed-capacity single-producer single-consumer ring of
// cross-domain messages for one (source, destination) domain pair — the
// lock-free replacement for the per-source outbox + barrier merge of the
// first parallel kernel. The producer is the lane executing the source
// domain during a quantum; the consumer is the lane executing the
// destination domain, which drains the ring at its quantum start; the
// coordinator additionally scans (without consuming) between quanta,
// when every lane is parked.
//
// The layout follows the cache-optimized SPSC queue playbook (Torquati;
// PAPERS.md): head and tail live on separate cache lines so the producer
// and consumer cores never false-share an index, and the drain copies
// whole runs with copy() — at most two per wraparound — instead of
// popping one message at a time. The buffer itself is allocated lazily on
// first push, so the quadratic (src, dst) pair matrix costs memory only
// for pairs that actually talk.
//
// Memory ordering: push publishes the slot write with a release store of
// tail; drain acquires tail before reading slots and publishes slot reuse
// with a release store of head. Go's sync/atomic provides exactly those
// edges, so the ring is race-detector-clean with no locks anywhere.

const (
	// ringCap bounds one pair's in-flight messages. 256 covers every
	// steady-state workload in the repo (per-quantum cross traffic is a
	// handful of messages); incast storms that exceed it overflow into
	// the writer-owned spill slice, preserving order, so the bound is a
	// performance knob, not a correctness limit.
	ringCap  = 256
	ringMask = ringCap - 1
)

type pairRing struct {
	head atomic.Uint64 // next slot to read; written by the consumer
	_    [56]byte
	tail atomic.Uint64 // next slot to write; written by the producer
	_    [56]byte
	buf  []crossMsg // lazily allocated; published by the first tail store
}

// push appends m and reports whether it fit; the producer falls back to
// its spill slice on false. Producer-only.
func (r *pairRing) push(m crossMsg) bool {
	t := r.tail.Load()
	if t-r.head.Load() == ringCap {
		return false
	}
	if r.buf == nil {
		r.buf = make([]crossMsg, ringCap)
	}
	r.buf[t&ringMask] = m
	r.tail.Store(t + 1)
	return true
}

// drain appends every buffered message to dst in FIFO order and returns
// the extended slice. Consumer-only. The copy is batched: one copy() per
// contiguous run, two when the occupied region wraps.
func (r *pairRing) drain(dst []crossMsg) []crossMsg {
	t := r.tail.Load()
	h := r.head.Load()
	if h == t {
		return dst
	}
	for h != t {
		i := h & ringMask
		n := uint64(ringCap - i)
		if n > t-h {
			n = t - h
		}
		dst = append(dst, r.buf[i:i+n]...)
		h += n
	}
	// Slots are not zeroed: cross-message fns are long-lived bound
	// closures (hub exec, stash deliver), so a stale slot pins nothing
	// that the model does not already keep alive.
	r.head.Store(h)
	return dst
}

// drainN appends exactly n buffered messages to dst in FIFO order and
// returns the extended slice. Consumer-only. The count comes from the
// coordinator's between-quanta snapshot: bounding the drain there keeps
// the set of messages a quantum consumes independent of how far a
// concurrent producer has advanced within it, which is what makes ring
// occupancy — and everything downstream of it — deterministic across
// lane counts. Copies are batched as in drain.
func (r *pairRing) drainN(dst []crossMsg, n uint64) []crossMsg {
	h := r.head.Load()
	t := h + n
	for h != t {
		i := h & ringMask
		c := uint64(ringCap - i)
		if c > t-h {
			c = t - h
		}
		dst = append(dst, r.buf[i:i+c]...)
		h += c
	}
	r.head.Store(h)
	return dst
}

// scan reports the buffered message count and the minimum delivery tick
// among them (^uint64(0) when empty) without consuming. Coordinator-only,
// between quanta — the producer and consumer are parked, so the snapshot
// is exact, but the loads keep the race detector's happens-before edges
// intact.
func (r *pairRing) scan() (n uint64, min uint64) {
	t := r.tail.Load()
	h := r.head.Load()
	n = t - h
	min = ^uint64(0)
	for ; h != t; h++ {
		if tk := r.buf[h&ringMask].tick; tk < min {
			min = tk
		}
	}
	return n, min
}
