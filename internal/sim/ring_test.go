package sim

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// mkMsg builds a distinguishable test message; fn is never called by the
// ring itself, so a shared no-op keeps the focus on payload integrity.
func mkMsg(i uint64) crossMsg {
	return crossMsg{tick: 1000 + i, seq: i, src: 0, dst: 1,
		fn: func(a0, a1, a2, a3 uint64) {}, a0: i, a1: ^i, a2: i * 3, a3: 42}
}

func checkRun(t *testing.T, got []crossMsg, start, n uint64) {
	t.Helper()
	if uint64(len(got)) != n {
		t.Fatalf("drained %d messages, want %d", len(got), n)
	}
	for j, m := range got {
		i := start + uint64(j)
		if m.seq != i || m.a0 != i || m.a1 != ^i || m.tick != 1000+i {
			t.Fatalf("slot %d: got seq %d a0 %d tick %d, want seq %d (FIFO order broken)",
				j, m.seq, m.a0, m.tick, i)
		}
	}
}

// TestPairRingWraparound pushes and drains in randomly sized batches for
// many times the ring capacity, so the occupied region wraps the buffer
// edge repeatedly; every drain must return exactly the pushed messages in
// FIFO order.
func TestPairRingWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var r pairRing
	var next, drained uint64
	buf := make([]crossMsg, 0, ringCap)
	for round := 0; round < 200; round++ {
		n := uint64(1 + rng.Intn(ringCap))
		for i := uint64(0); i < n; i++ {
			if !r.push(mkMsg(next)) {
				break
			}
			next++
		}
		if rng.Intn(3) == 0 {
			continue // let occupancy build across rounds
		}
		buf = r.drain(buf[:0])
		checkRun(t, buf, drained, next-drained)
		drained = next
	}
	buf = r.drain(buf[:0])
	checkRun(t, buf, drained, next-drained)
}

// TestPairRingBackpressure fills the ring to capacity, proves push
// reports overflow without corrupting contents, and proves the ring
// accepts again after a partial drain.
func TestPairRingBackpressure(t *testing.T) {
	var r pairRing
	for i := uint64(0); i < ringCap; i++ {
		if !r.push(mkMsg(i)) {
			t.Fatalf("push %d rejected below capacity %d", i, ringCap)
		}
	}
	if r.push(mkMsg(ringCap)) {
		t.Fatal("push into a full ring succeeded")
	}
	if n, min := r.scan(); n != ringCap || min != 1000 {
		t.Fatalf("scan of full ring = (%d, %d), want (%d, 1000)", n, min, ringCap)
	}
	// Drain a prefix; the ring must accept exactly that many again.
	buf := r.drainN(nil, 10)
	checkRun(t, buf, 0, 10)
	for i := uint64(0); i < 10; i++ {
		if !r.push(mkMsg(ringCap + i)) {
			t.Fatalf("push %d rejected after freeing %d slots", i, 10)
		}
	}
	if r.push(mkMsg(2 * ringCap)) {
		t.Fatal("push into a refilled ring succeeded")
	}
	buf = r.drain(buf[:0])
	checkRun(t, buf, 10, ringCap)
}

// TestPairRingDrainN proves the bounded drain takes exactly n messages
// and leaves the rest buffered in order — the property the coordinator's
// between-quanta snapshot relies on for lane-count-invariant occupancy.
func TestPairRingDrainN(t *testing.T) {
	var r pairRing
	for i := uint64(0); i < 100; i++ {
		r.push(mkMsg(i))
	}
	buf := r.drainN(nil, 0)
	if len(buf) != 0 {
		t.Fatalf("drainN(0) returned %d messages", len(buf))
	}
	buf = r.drainN(buf, 37)
	checkRun(t, buf, 0, 37)
	if n, _ := r.scan(); n != 63 {
		t.Fatalf("ring holds %d after drainN(37) of 100, want 63", n)
	}
	buf = r.drainN(buf[:0], 63)
	checkRun(t, buf, 37, 63)
	if n, _ := r.scan(); n != 0 {
		t.Fatalf("ring holds %d after full drain, want 0", n)
	}
}

// TestPairRingConcurrentSPSC runs a real producer goroutine against a
// real consumer goroutine — the quantum-time topology — with backoff on
// full/empty. Under -race this proves the release/acquire pairing on
// head and tail publishes every slot write, and the FIFO check proves no
// message is lost, duplicated, or torn.
func TestPairRingConcurrentSPSC(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const total = 50000
	var r pairRing
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.push(mkMsg(i)) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var got uint64
	buf := make([]crossMsg, 0, ringCap)
	for got < total {
		buf = r.drain(buf[:0])
		if len(buf) == 0 {
			runtime.Gosched()
			continue
		}
		checkRun(t, buf, got, uint64(len(buf)))
		got += uint64(len(buf))
	}
	wg.Wait()
	if n, _ := r.scan(); n != 0 {
		t.Fatalf("ring holds %d after consuming all %d", n, total)
	}
}

// TestLaneGateNoLostWake hammers the gate's park/wake race: a waiter
// parks between generations while the waker publishes them as fast as it
// can. A lost wake deadlocks (caught by the test timeout); a stale token
// must never deliver an old generation.
func TestLaneGateNoLostWake(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const gens = 20000
	var g laneGate
	g.init()
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := uint64(0)
		for last < gens {
			v := g.wait(last, false) // no spin: maximize real parking
			if v <= last {
				t.Errorf("gate went backwards: %d after %d", v, last)
				return
			}
			last = v
		}
	}()
	for v := uint64(1); v <= gens; v++ {
		g.wake(v)
		if v&1023 == 0 {
			runtime.Gosched() // let the waiter fall behind and repark
		}
	}
	<-done
}

// TestJoinTreeQuantumBarrier drives the full gate + tree protocol with
// worker goroutines for many quanta, randomly skipping lanes — exactly
// the coordinator loop's topology. Each participating lane increments a
// plain per-lane counter before arriving; the coordinator reads and
// verifies all counters after await. Under -race this proves the
// publication chain (gate wake -> lane work -> arrive -> await) carries
// the happens-before edges the kernel's plain shared state relies on.
func TestJoinTreeQuantumBarrier(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const lanes, quanta = 6, 2000
	rng := rand.New(rand.NewSource(11))
	gates := make([]laneGate, lanes)
	for i := range gates {
		gates[i].init()
	}
	tree := newJoinTree(lanes)
	work := make([]uint64, lanes) // plain: protocol must order access
	stop := make(chan struct{})
	for l := 0; l < lanes; l++ {
		l := l
		go func() {
			last := uint64(0)
			for {
				gen := gates[l].wait(last, true)
				last = gen
				select {
				case <-stop:
					return
				default:
				}
				work[l]++
				tree.arrive(l)
			}
		}()
	}
	counts := make([]int64, (lanes+joinRadix-1)/joinRadix)
	want := make([]uint64, lanes)
	part := make([]bool, lanes)
	for q := uint64(1); q <= quanta; q++ {
		any := false
		for i := range counts {
			counts[i] = 0
		}
		for l := 0; l < lanes; l++ {
			part[l] = rng.Intn(3) != 0
			if part[l] {
				counts[l/joinRadix]++
				want[l]++
				any = true
			}
		}
		if !any {
			continue
		}
		tree.reset(counts, q)
		for l := 0; l < lanes; l++ {
			if part[l] {
				gates[l].wake(q)
			}
		}
		tree.await(q, true)
		for l := 0; l < lanes; l++ {
			if work[l] != want[l] {
				t.Fatalf("quantum %d: lane %d did %d quanta of work, want %d", q, l, work[l], want[l])
			}
		}
	}
	close(stop)
	for l := 0; l < lanes; l++ {
		gates[l].wake(^uint64(0))
	}
}
