package sim

// TraceRecorder accumulates one kernel's dispatch trace as the FNV-1a
// fold over its (tick, seq) pairs, plus an event count — the sequential
// counterpart of ParallelTrace, shared by the golden tests, the System
// trace plumbing, and the verification oracle.
type TraceRecorder struct {
	h uint64
	n uint64
}

// NewTraceRecorder returns a recorder seeded with TraceOffset.
func NewTraceRecorder() *TraceRecorder { return &TraceRecorder{h: TraceOffset} }

// Attach installs the recorder as k's dispatch observer. A kernel has a
// single observer slot; attaching replaces any previous one.
func (t *TraceRecorder) Attach(k *Kernel) { k.SetDispatchObserver(t.observe) }

func (t *TraceRecorder) observe(tick, seq uint64) {
	t.h = TraceFold(t.h, tick, seq)
	t.n++
}

// Sum reports the accumulated trace hash.
func (t *TraceRecorder) Sum() uint64 { return t.h }

// Events reports how many dispatches have been folded in.
func (t *TraceRecorder) Events() uint64 { return t.n }
