package sim

import (
	"strings"
	"testing"
)

// pingDomain is one domain of the synthetic cross-traffic model the
// parallel-kernel tests share: a ring of domains, each sending a paced
// stream of messages to its successor and waiting until it has received
// the full stream from its predecessor. Message payloads are checksummed
// so misrouted or duplicated deliveries fail loudly.
type pingDomain struct {
	pk        *ParallelKernel
	id        int
	sig       *Signal
	got       uint64
	sum       uint64
	deliverFn func(a0, a1, a2, a3 uint64)
}

const pingLookahead = 13

func buildPingRing(domains, rounds, workers int) (*ParallelKernel, []*pingDomain) {
	pk := NewParallel(domains, pingLookahead, workers)
	ds := make([]*pingDomain, domains)
	for d := 0; d < domains; d++ {
		pd := &pingDomain{pk: pk, id: d, sig: NewSignal("ring.got")}
		pd.deliverFn = func(a0, a1, a2, a3 uint64) {
			pd.got++
			pd.sum += a0 ^ a1<<1 ^ a2<<2 ^ a3<<3
			pd.sig.Fire()
		}
		ds[d] = pd
	}
	for d := 0; d < domains; d++ {
		d := d
		pd := ds[d]
		next := (d + 1) % domains
		pk.Domain(d).Go("ring", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Sleep(uint64(1 + (d+i)%7))
				// Arrival models a bus trip: at least the lookahead,
				// sometimes more (contended channel).
				delay := uint64(pingLookahead + i%5)
				pk.Post(d, next, p.Now()+delay, ds[next].deliverFn,
					uint64(d), uint64(i), uint64(d*i), 42)
			}
			WaitUntil(p, pd.sig, func() bool { return pd.got == uint64(rounds) })
		})
	}
	return pk, ds
}

// TestParallelDeterministicAcrossWorkers proves the central contract:
// the dispatch trace of every domain — and therefore the combined run
// hash, the delivery checksums, and the end-to-end tick — is bit
// identical whether the quanta execute on 1, 2, 4, or 8 lanes.
func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	const domains, rounds = 9, 200
	type outcome struct {
		hash, end, executed uint64
		sums                []uint64
	}
	run := func(workers int) outcome {
		pk, ds := buildPingRing(domains, rounds, workers)
		tr := pk.InstallTrace()
		pk.SetDeadline(1 << 30)
		pk.Run()
		if live := pk.LiveProcs(); live != 0 {
			t.Fatalf("workers=%d: %d procs still live", workers, live)
		}
		o := outcome{hash: tr.Sum(), end: pk.LastEventTick(), executed: pk.Executed()}
		for _, pd := range ds {
			if pd.got != rounds {
				t.Fatalf("workers=%d: domain %d got %d/%d messages", workers, pd.id, pd.got, rounds)
			}
			o.sums = append(o.sums, pd.sum)
		}
		return o
	}
	base := run(1)
	for _, w := range []int{2, 4, 8} {
		o := run(w)
		if o.hash != base.hash {
			t.Errorf("workers=%d: trace hash %#x != workers=1 hash %#x", w, o.hash, base.hash)
		}
		if o.end != base.end || o.executed != base.executed {
			t.Errorf("workers=%d: (end, executed) = (%d, %d), want (%d, %d)",
				w, o.end, o.executed, base.end, base.executed)
		}
		for d := range o.sums {
			if o.sums[d] != base.sums[d] {
				t.Errorf("workers=%d: domain %d checksum %#x != %#x", w, d, o.sums[d], base.sums[d])
			}
		}
	}
}

// TestParallelSignalChurn drives per-domain producer/consumer Signal
// ping-pong (the vlq wait/fire pattern) inside every domain while cross
// traffic flows between domains, on multiple lanes. Run under -race this
// proves domain state — procs, signals, waiter lists, wake tokens — is
// never touched by two lanes without a happens-before edge.
func TestParallelSignalChurn(t *testing.T) {
	const domains, rounds = 8, 150
	pk, _ := buildPingRing(domains, rounds, 4)
	for d := 0; d < domains; d++ {
		k := pk.Domain(d)
		ping := NewSignal("churn.ping")
		pong := NewSignal("churn.pong")
		k.Go("consumer", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				ping.Wait(p)
				pong.Fire()
			}
		})
		k.Go("producer", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Sleep(2)
				ping.Fire()
				pong.Wait(p)
			}
		})
	}
	pk.SetDeadline(1 << 30)
	pk.Run()
	if live := pk.LiveProcs(); live != 0 {
		t.Fatalf("%d procs still live", live)
	}
}

// TestParallelPostLookaheadViolationPanics proves the conservative
// contract is enforced, not assumed: a cross-domain post closer than the
// lookahead must panic immediately.
func TestParallelPostLookaheadViolationPanics(t *testing.T) {
	pk := NewParallel(2, 10, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Post below lookahead did not panic")
		}
		if !strings.Contains(r.(string), "lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	pk.Post(0, 1, 5, func(a0, a1, a2, a3 uint64) {}, 0, 0, 0, 0)
}

// TestParallelWatchdogPropagates proves a watchdog panic inside a worker
// lane (not the coordinator's inline lane) is re-raised on the Run
// caller after all lanes have parked.
func TestParallelWatchdogPropagates(t *testing.T) {
	pk := NewParallel(2, 4, 2)
	// Domain 1 runs on lane 1 (a worker goroutine) and livelocks.
	var spin func(uint64)
	spin = func(uint64) { pk.Domain(1).AfterFunc(1, spin, 0) }
	pk.Domain(1).AtFunc(0, spin, 0)
	pk.Domain(1).SetDeadline(100)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("watchdog panic did not propagate from worker lane")
		}
		pk.Drain()
	}()
	pk.Run()
}

// TestParallelIdleGapJump proves the coordinator jumps over idle gaps:
// two events a million ticks apart must cost ~2 quanta, not 1e6/lookahead.
func TestParallelIdleGapJump(t *testing.T) {
	pk := NewParallel(2, 13, 1)
	ran := 0
	pk.Domain(0).At(5, func() { ran++ })
	pk.Domain(1).At(1_000_000, func() { ran++ })
	pk.Run()
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if q := pk.Quanta(); q > 4 {
		t.Fatalf("executed %d quanta for 2 events across an idle gap, want <= 4", q)
	}
	if got := pk.LastEventTick(); got != 1_000_000 {
		t.Fatalf("LastEventTick = %d, want 1000000", got)
	}
}

// TestParallelMergeOrderCanonical proves the barrier merge injects
// same-tick messages in (srcDomain, srcSeq) order regardless of outbox
// drain order: three sources post to one destination at one tick, and
// the destination must observe src 0, 1, 2.
func TestParallelMergeOrderCanonical(t *testing.T) {
	pk := NewParallel(4, 5, 1)
	var order []uint64
	recv := func(a0, a1, a2, a3 uint64) { order = append(order, a0) }
	for _, src := range []int{2, 0, 1} {
		src := src
		pk.Domain(src).At(1, func() {
			pk.Post(src, 3, 20, recv, uint64(src), 0, 0, 0)
		})
	}
	pk.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("delivery order %v, want [0 1 2]", order)
	}
}
