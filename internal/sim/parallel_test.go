package sim

import (
	"runtime"
	"sort"
	"strings"
	"testing"
)

// pingDomain is one domain of the synthetic cross-traffic model the
// parallel-kernel tests share: a ring of domains, each sending a paced
// stream of messages to its successor and waiting until it has received
// the full stream from its predecessor. Message payloads are checksummed
// so misrouted or duplicated deliveries fail loudly.
type pingDomain struct {
	pk        *ParallelKernel
	id        int
	sig       *Signal
	got       uint64
	sum       uint64
	deliverFn func(a0, a1, a2, a3 uint64)
}

const pingLookahead = 13

func buildPingRing(domains, rounds, workers int) (*ParallelKernel, []*pingDomain) {
	pk := NewParallel(domains, pingLookahead, workers)
	ds := make([]*pingDomain, domains)
	for d := 0; d < domains; d++ {
		pd := &pingDomain{pk: pk, id: d, sig: NewSignal("ring.got")}
		pd.deliverFn = func(a0, a1, a2, a3 uint64) {
			pd.got++
			pd.sum += a0 ^ a1<<1 ^ a2<<2 ^ a3<<3
			pd.sig.Fire()
		}
		ds[d] = pd
	}
	for d := 0; d < domains; d++ {
		d := d
		pd := ds[d]
		next := (d + 1) % domains
		pk.Domain(d).Go("ring", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Sleep(uint64(1 + (d+i)%7))
				// Arrival models a bus trip: at least the lookahead,
				// sometimes more (contended channel).
				delay := uint64(pingLookahead + i%5)
				pk.Post(d, next, p.Now()+delay, ds[next].deliverFn,
					uint64(d), uint64(i), uint64(d*i), 42)
			}
			WaitUntil(p, pd.sig, func() bool { return pd.got == uint64(rounds) })
		})
	}
	return pk, ds
}

// TestParallelDeterministicAcrossWorkers proves the central contract:
// the dispatch trace of every domain — and therefore the combined run
// hash, the delivery checksums, and the end-to-end tick — is bit
// identical whether the quanta execute on 1, 2, 4, or 8 lanes.
func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	const domains, rounds = 9, 200
	type outcome struct {
		hash, end, executed uint64
		sums                []uint64
	}
	run := func(workers int) outcome {
		pk, ds := buildPingRing(domains, rounds, workers)
		tr := pk.InstallTrace()
		pk.SetDeadline(1 << 30)
		pk.Run()
		if live := pk.LiveProcs(); live != 0 {
			t.Fatalf("workers=%d: %d procs still live", workers, live)
		}
		o := outcome{hash: tr.Sum(), end: pk.LastEventTick(), executed: pk.Executed()}
		for _, pd := range ds {
			if pd.got != rounds {
				t.Fatalf("workers=%d: domain %d got %d/%d messages", workers, pd.id, pd.got, rounds)
			}
			o.sums = append(o.sums, pd.sum)
		}
		return o
	}
	base := run(1)
	for _, w := range []int{2, 4, 8} {
		o := run(w)
		if o.hash != base.hash {
			t.Errorf("workers=%d: trace hash %#x != workers=1 hash %#x", w, o.hash, base.hash)
		}
		if o.end != base.end || o.executed != base.executed {
			t.Errorf("workers=%d: (end, executed) = (%d, %d), want (%d, %d)",
				w, o.end, o.executed, base.end, base.executed)
		}
		for d := range o.sums {
			if o.sums[d] != base.sums[d] {
				t.Errorf("workers=%d: domain %d checksum %#x != %#x", w, d, o.sums[d], base.sums[d])
			}
		}
	}
}

// TestParallelSignalChurn drives per-domain producer/consumer Signal
// ping-pong (the vlq wait/fire pattern) inside every domain while cross
// traffic flows between domains, on multiple lanes. Run under -race this
// proves domain state — procs, signals, waiter lists, wake tokens — is
// never touched by two lanes without a happens-before edge.
func TestParallelSignalChurn(t *testing.T) {
	const domains, rounds = 8, 150
	pk, _ := buildPingRing(domains, rounds, 4)
	for d := 0; d < domains; d++ {
		k := pk.Domain(d)
		ping := NewSignal("churn.ping")
		pong := NewSignal("churn.pong")
		k.Go("consumer", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				ping.Wait(p)
				pong.Fire()
			}
		})
		k.Go("producer", func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Sleep(2)
				ping.Fire()
				pong.Wait(p)
			}
		})
	}
	pk.SetDeadline(1 << 30)
	pk.Run()
	if live := pk.LiveProcs(); live != 0 {
		t.Fatalf("%d procs still live", live)
	}
}

// TestParallelPostLookaheadViolationPanics proves the conservative
// contract is enforced, not assumed: a cross-domain post closer than the
// lookahead must panic immediately.
func TestParallelPostLookaheadViolationPanics(t *testing.T) {
	pk := NewParallel(2, 10, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Post below lookahead did not panic")
		}
		if !strings.Contains(r.(string), "lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	pk.Post(0, 1, 5, func(a0, a1, a2, a3 uint64) {}, 0, 0, 0, 0)
}

// TestParallelWatchdogPropagates proves a watchdog panic inside a worker
// lane (not the coordinator's inline lane) is re-raised on the Run
// caller after all lanes have parked.
func TestParallelWatchdogPropagates(t *testing.T) {
	pk := NewParallel(2, 4, 2)
	// Domain 1 runs on lane 1 (a worker goroutine) and livelocks.
	var spin func(uint64)
	spin = func(uint64) { pk.Domain(1).AfterFunc(1, spin, 0) }
	pk.Domain(1).AtFunc(0, spin, 0)
	pk.Domain(1).SetDeadline(100)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("watchdog panic did not propagate from worker lane")
		}
		pk.Drain()
	}()
	pk.Run()
}

// TestParallelIdleGapJump proves the coordinator jumps over idle gaps:
// two events a million ticks apart must cost ~2 quanta, not 1e6/lookahead.
func TestParallelIdleGapJump(t *testing.T) {
	pk := NewParallel(2, 13, 1)
	ran := 0
	pk.Domain(0).At(5, func() { ran++ })
	pk.Domain(1).At(1_000_000, func() { ran++ })
	pk.Run()
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if q := pk.Quanta(); q > 4 {
		t.Fatalf("executed %d quanta for 2 events across an idle gap, want <= 4", q)
	}
	if got := pk.LastEventTick(); got != 1_000_000 {
		t.Fatalf("LastEventTick = %d, want 1000000", got)
	}
}

// TestParallelMultiLaneForced raises GOMAXPROCS so worker goroutines,
// gates, and the join tree genuinely run (single-proc hosts otherwise
// clamp every run to the inline lane) and proves the multi-lane trace,
// stats, and checksums match the single-lane run exactly. Under -race
// this is the end-to-end concurrency proof for the quantum protocol.
func TestParallelMultiLaneForced(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const domains, rounds = 9, 200
	run := func(workers int) (uint64, ParallelStats, []uint64) {
		pk, ds := buildPingRing(domains, rounds, workers)
		tr := pk.InstallTrace()
		pk.SetDeadline(1 << 30)
		pk.Run()
		sums := make([]uint64, domains)
		for d, pd := range ds {
			if pd.got != rounds {
				t.Fatalf("workers=%d: domain %d got %d/%d messages", workers, d, pd.got, rounds)
			}
			sums[d] = pd.sum
		}
		return tr.Sum(), pk.Stats(), sums
	}
	baseHash, baseStats, baseSums := run(1)
	for _, w := range []int{2, 4, 8} {
		hash, stats, sums := run(w)
		if hash != baseHash {
			t.Errorf("workers=%d: trace hash %#x != workers=1 hash %#x", w, hash, baseHash)
		}
		if stats != baseStats {
			t.Errorf("workers=%d: stats %+v != workers=1 stats %+v (lane count leaked into telemetry)",
				w, stats, baseStats)
		}
		for d := range sums {
			if sums[d] != baseSums[d] {
				t.Errorf("workers=%d: domain %d checksum %#x != %#x", w, d, sums[d], baseSums[d])
			}
		}
	}
}

// buildSkipHeavy constructs the barrier-skip-heavy workload: one busy
// source domain streams paced messages to a mostly idle far domain at
// widely spread delivery ticks, while two chatty domains exchange dense
// traffic. The far domain's horizon sits beyond its window for most
// quanta, so it skips the rendezvous; the chatty pair keeps the quantum
// loop hot so there are many windows to skip.
func buildSkipHeavy(workers int) (*ParallelKernel, *pingDomain) {
	const la = 13
	pk := NewParallel(4, la, workers)
	far := &pingDomain{pk: pk, id: 3, sig: NewSignal("skip.got")}
	far.deliverFn = func(a0, a1, a2, a3 uint64) {
		far.got++
		far.sum = TraceFold(far.sum, a0, a1) // order-sensitive fold
		far.sig.Fire()
	}
	const farMsgs = 60
	pk.Domain(0).Go("skip/src", func(p *Proc) {
		for i := 0; i < farMsgs; i++ {
			p.Sleep(3)
			// Deliveries land far beyond the lookahead, so domain 3 has
			// nothing due for many consecutive windows.
			pk.Post(0, 3, p.Now()+la+uint64(200+i*37%500), far.deliverFn,
				uint64(i), uint64(i*i), 0, 0)
		}
	})
	pk.Domain(3).Go("skip/far", func(p *Proc) {
		WaitUntil(p, far.sig, func() bool { return far.got == farMsgs })
	})
	noop := func(a0, a1, a2, a3 uint64) {}
	for _, d := range []int{1, 2} {
		d := d
		other := 3 - d
		pk.Domain(d).Go("skip/chat", func(p *Proc) {
			for i := 0; i < 400; i++ {
				p.Sleep(1 + uint64(i%3))
				pk.Post(d, other, p.Now()+la, noop, uint64(d), uint64(i), 0, 0)
			}
		})
	}
	return pk, far
}

// goldenSkipHeavyTrace pins the dispatch trace of the barrier-skip-heavy
// workload, so window-skipping never silently changes what a skipping
// domain observes. Recorded at workers=1; the test proves every lane
// count reproduces it.
const goldenSkipHeavyTrace uint64 = 0x6e2a77d5d410578e

// TestParallelBarrierSkipCorrectness proves a domain that skips many
// rendezvous windows still observes every message addressed to it, in
// canonical (tick, srcDomain, srcSeq) order, with a trace hash identical
// across lane counts and pinned against the golden constant.
func TestParallelBarrierSkipCorrectness(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	type outcome struct {
		hash, sum uint64
		stats     ParallelStats
	}
	run := func(workers int) outcome {
		pk, far := buildSkipHeavy(workers)
		tr := pk.InstallTrace()
		pk.SetDeadline(1 << 30)
		pk.Run()
		if far.got != 60 {
			t.Fatalf("workers=%d: far domain got %d/60 messages (skip lost traffic)", workers, far.got)
		}
		return outcome{hash: tr.Sum(), sum: far.sum, stats: pk.Stats()}
	}
	base := run(1)
	if base.stats.WindowsSkipped == 0 {
		t.Fatal("skip-heavy workload skipped zero windows; workload no longer exercises barrier skip")
	}
	if base.hash != goldenSkipHeavyTrace {
		t.Errorf("skip-heavy trace hash %#x, golden %#x", base.hash, goldenSkipHeavyTrace)
	}
	for _, w := range []int{2, 4} {
		o := run(w)
		if o.hash != base.hash || o.sum != base.sum || o.stats != base.stats {
			t.Errorf("workers=%d: (hash, sum, stats) = (%#x, %#x, %+v), want (%#x, %#x, %+v)",
				w, o.hash, o.sum, o.stats, base.hash, base.sum, base.stats)
		}
	}
}

// TestParallelSkippedDomainDeliveryOrder checks the skip contract at the
// message level: messages posted to a skipping domain from several
// sources at interleaved ticks arrive exactly in (tick, srcDomain,
// srcSeq) order, even though they were staged across many quanta.
func TestParallelSkippedDomainDeliveryOrder(t *testing.T) {
	const la = 5
	pk := NewParallel(4, la, 1)
	type stamp struct{ tick, src, seq uint64 }
	var got []stamp
	recv := func(a0, a1, a2, a3 uint64) { got = append(got, stamp{a0, a1, a2}) }
	var want []stamp
	for _, src := range []int{2, 0, 1} {
		src := src
		seq := uint64(0)
		pk.Domain(src).Go("order/src", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Sleep(uint64(1 + (src+i)%4))
				// Collide delivery ticks across sources on purpose: the
				// tick grid is coarser than the send pacing.
				tick := (p.Now()+la+uint64(100+i*13%200))/8*8 + 8
				seq++
				want = append(want, stamp{tick, uint64(src), seq})
				pk.Post(src, 3, tick, recv, tick, uint64(src), seq, 0)
			}
		})
	}
	pk.SetDeadline(1 << 30)
	pk.Run()
	sort.Slice(want, func(i, j int) bool {
		a, b := want[i], want[j]
		if a.tick != b.tick {
			return a.tick < b.tick
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	if len(got) != len(want) {
		t.Fatalf("delivered %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d: got (tick %d, src %d, seq %d), want (tick %d, src %d, seq %d)",
				i, got[i].tick, got[i].src, got[i].seq, want[i].tick, want[i].src, want[i].seq)
		}
	}
}

// TestParallelMergeOrderCanonical proves the barrier merge injects
// same-tick messages in (srcDomain, srcSeq) order regardless of outbox
// drain order: three sources post to one destination at one tick, and
// the destination must observe src 0, 1, 2.
func TestParallelMergeOrderCanonical(t *testing.T) {
	pk := NewParallel(4, 5, 1)
	var order []uint64
	recv := func(a0, a1, a2, a3 uint64) { order = append(order, a0) }
	for _, src := range []int{2, 0, 1} {
		src := src
		pk.Domain(src).At(1, func() {
			pk.Post(src, 3, 20, recv, uint64(src), 0, 0, 0)
		})
	}
	pk.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("delivery order %v, want [0 1 2]", order)
	}
}
