package sim

import "fmt"

// Proc is a cooperative simulation process. A Proc runs on its own
// goroutine, but the kernel hands control to exactly one goroutine at a
// time, so process bodies may touch shared simulator state without locks
// and the interleaving is deterministic.
//
// A process body blocks simulated time only through the Proc methods
// (Sleep, Wait, Yield); ordinary Go computation takes zero simulated time.
type Proc struct {
	k    *Kernel
	name string
	// sync is the single control-handoff channel. Kernel and process
	// alternate strictly — the kernel sends to resume the process, the
	// process sends to park itself — so one unbuffered channel carries
	// both directions: at any moment at most one side is sending and the
	// other receiving, and each wake or park is exactly one handoff.
	sync     chan struct{}
	body     func(p *Proc) // held until the start event runs, then released
	idx      uint64        // procs index << 1: the kernel trampoline's dispatch arg
	started  bool
	finished bool
	aborted  bool
	wakes    uint64   // diagnostic: number of times resumed
	cell     WaitCell // wake-token state shared with kernel-side waiters
}

// procArenaBlock batches Proc storage: a system spawns a few dozen
// processes at setup, so block storage turns one heap object per spawn
// into one per block. Blocks are replaced when full, never grown in
// place, so *Proc pointers stay valid.
const procArenaBlock = 16

// procAbort is the panic value used to unwind an abandoned process.
type procAbort struct{}

// Go spawns a process that starts executing at the current tick.
// The body runs until it returns; the kernel regains control whenever the
// body blocks on a Proc method.
func (k *Kernel) Go(name string, body func(p *Proc)) *Proc {
	if k.procFn == nil {
		// One kernel-wide trampoline, bound once, replaces the per-proc
		// dispatch closure and per-spawn start closure: the event arg
		// selects the proc (idx<<1) and the action (low bit = first
		// start). k.procs is append-only, so the index is stable.
		k.procFn = func(a uint64) {
			p := k.procs[a>>1]
			if a&1 != 0 {
				p.started = true
				b := p.body
				p.body = nil // release the closure once the goroutine owns it
				go p.run(b)
			}
			p.dispatch()
		}
		k.procs = k.procs0[:0]
		k.procArena = k.procArena0[:0]
	}
	if len(k.procArena) == cap(k.procArena) {
		k.procArena = make([]Proc, 0, procArenaBlock)
	}
	k.procArena = k.procArena[:len(k.procArena)+1]
	p := &k.procArena[len(k.procArena)-1]
	*p = Proc{
		k:    k,
		name: name,
		sync: make(chan struct{}),
		body: body,
		idx:  uint64(len(k.procs)) << 1,
	}
	p.cell.Init(k, k.procFn)
	k.procs = append(k.procs, p)
	k.live++
	k.AfterFunc(0, k.procFn, p.idx|1)
	return p
}

func (p *Proc) run(body func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procAbort); ok {
				p.finished = true
				p.k.live--
				p.sync <- struct{}{}
				return
			}
			panic(r)
		}
	}()
	<-p.sync
	body(p)
	p.finished = true
	p.k.live--
	p.sync <- struct{}{}
}

// dispatch transfers control from the kernel goroutine to the process and
// waits until the process yields or finishes.
func (p *Proc) dispatch() {
	if p.finished {
		return
	}
	p.wakes++
	p.sync <- struct{}{}
	<-p.sync
}

// yield parks the process and returns control to the kernel goroutine.
// The process stays parked until some event calls dispatch again.
func (p *Proc) yield() {
	p.sync <- struct{}{}
	<-p.sync
	if p.aborted {
		panic(procAbort{})
	}
}

// abort unwinds a parked process so its goroutine exits. Kernel-side only.
func (p *Proc) abort() {
	if p.finished || !p.started {
		return
	}
	p.aborted = true
	p.sync <- struct{}{}
	<-p.sync
}

// Name reports the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current simulated tick.
func (p *Proc) Now() uint64 { return p.k.now }

// Finished reports whether the body has returned.
func (p *Proc) Finished() bool { return p.finished }

// Sleep advances this process d ticks of simulated time.
// Sleep(0) is a pure yield point: other events at the current tick run
// before the process continues.
func (p *Proc) Sleep(d uint64) {
	p.k.AfterFunc(d, p.k.procFn, p.idx)
	p.yield()
}

// armWait issues a wake token for the process's next park. A waker that
// still holds the current token (a fire with a matching gen) wakes the
// process; issuing a new token or firing spends the old one, so a process
// parked on several signals (WaitAny) wakes exactly once and stale
// wake-ups are ignored. Tokens replace the per-wait closure the seed
// kernel allocated (waitPoint), making Wait/Fire allocation-free.
func (p *Proc) armWait() uint64 { return p.cell.arm(p.idx) }

// Park parks the calling process until a kernel-side continuation hands
// control back with Unpark. It is the blocking half of the
// continuation-passing endpoint operations (internal/vlq): the operation
// schedules its first step with AfterFunc, Parks the body, runs its
// intermediate steps as plain events on the kernel goroutine, and the
// final step calls Unpark — one goroutine handoff per operation instead
// of one per step, with the event schedule unchanged.
func (p *Proc) Park() { p.yield() }

// Unpark resumes a process parked with Park. It must be called from the
// kernel goroutine (inside an event callback), never from another
// process; control transfers to the parked body immediately and returns
// here when the body next blocks — exactly as if the running event had
// been the process's own wake event.
func (p *Proc) Unpark() { p.dispatch() }

// WaitCell is the kernel-side analogue of a parked process: a wake token
// plus the continuation to schedule when it is spent. Procs embed one
// (continuation = the proc's dispatch); continuation-passing endpoint
// operations embed their own with the state-machine step as the
// continuation. Firing a cell schedules the continuation with AfterFunc
// at delay 0 — the same event a woken process would cost — so replacing a
// parked process with a cell leaves the dispatch trace bit-identical.
type WaitCell struct {
	k   *Kernel
	fn  func(uint64)
	arg uint64
	gen uint64
}

// Init binds the cell to its kernel and continuation once, before use.
func (c *WaitCell) Init(k *Kernel, fn func(uint64)) {
	c.k = k
	c.fn = fn
}

// arm issues a fresh wake token carrying arg to the continuation; any
// previously issued token is spent.
func (c *WaitCell) arm(arg uint64) uint64 {
	c.gen++
	c.arg = arg
	return c.gen
}

// fire schedules the continuation if gen is the cell's current token;
// spent tokens are ignored.
func (c *WaitCell) fire(gen uint64) {
	if gen != c.gen {
		return
	}
	c.gen++ // spend the token: further fires are no-ops
	c.k.AfterFunc(0, c.fn, c.arg)
}

// String implements fmt.Stringer for diagnostics.
func (p *Proc) String() string {
	state := "parked"
	if p.finished {
		state = "finished"
	}
	return fmt.Sprintf("proc(%s, %s, wakes=%d)", p.name, state, p.wakes)
}

// waiterRef is one parked waiter on a Signal: a wait cell (a process's
// embedded cell or a continuation-passing operation's own) plus the wake
// token it armed. Storing the pair by value keeps the waiter list free of
// per-wait allocations.
type waiterRef struct {
	c   *WaitCell
	gen uint64
}

// Signal is a broadcast wake-up point. Processes park on it with Wait;
// Fire wakes every parked process (resumptions are scheduled at the firing
// tick and dispatched in FIFO order). A Signal may be reused indefinitely;
// the waiter list's backing array is recycled across fires.
type Signal struct {
	name    string
	waiters []waiterRef
	fires   uint64
}

// NewSignal returns a named signal for diagnostics.
func NewSignal(name string) *Signal { return &Signal{name: name} }

// Wait parks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, waiterRef{c: &p.cell, gen: p.armWait()})
	p.yield()
}

// WaitCell registers a kernel-side continuation for the next Fire: the
// fire schedules the cell's continuation with arg at the firing tick,
// exactly as it would wake a parked process. Arming spends any previous
// token of the cell. The caller returns to the kernel loop; it must not
// touch the protected state again until the continuation runs.
func (s *Signal) WaitCell(c *WaitCell, arg uint64) {
	s.waiters = append(s.waiters, waiterRef{c: c, gen: c.arm(arg)})
}

// Fire wakes all currently parked processes. Processes that Wait after
// Fire returns park until the next Fire. Waking only schedules resumption
// events — no process body runs inside Fire — so the waiter list can be
// truncated in place and its backing array reused by the next round of
// Waits.
func (s *Signal) Fire() {
	s.fires++
	w := s.waiters
	for i := range w {
		w[i].c.fire(w[i].gen)
		w[i] = waiterRef{}
	}
	s.waiters = w[:0]
}

// Waiters reports how many processes are currently parked.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Gate is a single-waiter Signal embedded by value: one wait-cell slot
// and no name, so a struct that owns its only possible waiter pays no
// allocation for the rendezvous. Fire schedules the armed continuation
// exactly as Signal.Fire would — same AfterFunc(0, …) event — so
// swapping a one-waiter Signal for a Gate leaves dispatch traces
// bit-identical.
type Gate struct {
	c   *WaitCell
	gen uint64
}

// WaitCell registers the cell's continuation for the next Fire,
// spending any previous token of the cell. At most one waiter may be
// registered at a time.
func (g *Gate) WaitCell(c *WaitCell, arg uint64) {
	g.c = c
	g.gen = c.arm(arg)
}

// Fire wakes the registered waiter, if any, and clears the slot.
func (g *Gate) Fire() {
	if g.c == nil {
		return
	}
	c, gen := g.c, g.gen
	g.c = nil
	c.fire(gen)
}

// Fires reports how many times Fire has been called.
func (s *Signal) Fires() uint64 { return s.fires }

// WaitUntil parks p, re-checking cond each time sig fires, until cond
// reports true. cond is checked once before parking.
func WaitUntil(p *Proc, sig *Signal, cond func() bool) {
	for !cond() {
		sig.Wait(p)
	}
}

// WaitAny parks p until any of the given signals fires. The signals share
// one wake token, so the first Fire wakes p and later fires find the
// token spent and ignore it.
func WaitAny(p *Proc, sigs ...*Signal) {
	gen := p.armWait()
	for _, s := range sigs {
		s.waiters = append(s.waiters, waiterRef{c: &p.cell, gen: gen})
	}
	p.yield()
}
