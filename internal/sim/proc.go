package sim

import "fmt"

// Proc is a cooperative simulation process. A Proc runs on its own
// goroutine, but the kernel hands control to exactly one goroutine at a
// time, so process bodies may touch shared simulator state without locks
// and the interleaving is deterministic.
//
// A process body blocks simulated time only through the Proc methods
// (Sleep, Wait, Yield); ordinary Go computation takes zero simulated time.
type Proc struct {
	k        *Kernel
	name     string
	resume   chan struct{} // kernel -> proc: you may run
	parked   chan struct{} // proc -> kernel: I yielded or finished
	started  bool
	finished bool
	aborted  bool
	wakes    uint64 // diagnostic: number of times resumed
}

// procAbort is the panic value used to unwind an abandoned process.
type procAbort struct{}

// Go spawns a process that starts executing at the current tick.
// The body runs until it returns; the kernel regains control whenever the
// body blocks on a Proc method.
func (k *Kernel) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.live++
	k.After(0, func() {
		p.started = true
		go p.run(body)
		p.dispatch()
	})
	return p
}

func (p *Proc) run(body func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procAbort); ok {
				p.finished = true
				p.k.live--
				p.parked <- struct{}{}
				return
			}
			panic(r)
		}
	}()
	<-p.resume
	body(p)
	p.finished = true
	p.k.live--
	p.parked <- struct{}{}
}

// dispatch transfers control from the kernel goroutine to the process and
// waits until the process yields or finishes.
func (p *Proc) dispatch() {
	if p.finished {
		return
	}
	p.wakes++
	p.resume <- struct{}{}
	<-p.parked
}

// yield parks the process and returns control to the kernel goroutine.
// The process stays parked until some event calls dispatch again.
func (p *Proc) yield() {
	p.parked <- struct{}{}
	<-p.resume
	if p.aborted {
		panic(procAbort{})
	}
}

// abort unwinds a parked process so its goroutine exits. Kernel-side only.
func (p *Proc) abort() {
	if p.finished || !p.started {
		return
	}
	p.aborted = true
	p.resume <- struct{}{}
	<-p.parked
}

// Name reports the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current simulated tick.
func (p *Proc) Now() uint64 { return p.k.now }

// Finished reports whether the body has returned.
func (p *Proc) Finished() bool { return p.finished }

// Sleep advances this process d ticks of simulated time.
// Sleep(0) is a pure yield point: other events at the current tick run
// before the process continues.
func (p *Proc) Sleep(d uint64) {
	p.k.After(d, p.dispatch)
	p.yield()
}

// Wait parks the process until wake() is called on the returned handle.
// The wake may come from any event (device callback, another process).
// Waking schedules the resumption at the waker's current tick.
func (p *Proc) waitPoint() func() {
	fired := false
	return func() {
		if fired {
			return
		}
		fired = true
		p.k.After(0, p.dispatch)
	}
}

// String implements fmt.Stringer for diagnostics.
func (p *Proc) String() string {
	state := "parked"
	if p.finished {
		state = "finished"
	}
	return fmt.Sprintf("proc(%s, %s, wakes=%d)", p.name, state, p.wakes)
}

// Signal is a broadcast wake-up point. Processes park on it with Wait;
// Fire wakes every parked process (resumptions are scheduled at the firing
// tick and dispatched in FIFO order). A Signal may be reused indefinitely.
type Signal struct {
	name    string
	waiters []func()
	fires   uint64
}

// NewSignal returns a named signal for diagnostics.
func NewSignal(name string) *Signal { return &Signal{name: name} }

// Wait parks p until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p.waitPoint())
	p.yield()
}

// Fire wakes all currently parked processes. Processes that Wait after
// Fire returns park until the next Fire.
func (s *Signal) Fire() {
	w := s.waiters
	s.waiters = nil
	s.fires++
	for _, wake := range w {
		wake()
	}
}

// Waiters reports how many processes are currently parked.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Fires reports how many times Fire has been called.
func (s *Signal) Fires() uint64 { return s.fires }

// WaitUntil parks p, re-checking cond each time sig fires, until cond
// reports true. cond is checked once before parking.
func WaitUntil(p *Proc, sig *Signal, cond func() bool) {
	for !cond() {
		sig.Wait(p)
	}
}

// WaitAny parks p until any of the given signals fires. A signal that
// fires later finds a spent wake handle and ignores it.
func WaitAny(p *Proc, sigs ...*Signal) {
	wake := p.waitPoint()
	for _, s := range sigs {
		s.waiters = append(s.waiters, wake)
	}
	p.yield()
}
