package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := New()
	var got []int
	k.At(10, func() { got = append(got, 1) })
	k.At(5, func() { got = append(got, 0) })
	k.At(10, func() { got = append(got, 2) }) // same tick: FIFO by seq
	k.At(20, func() { got = append(got, 3) })
	k.Run()
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if k.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", k.Now())
	}
}

func TestAfterAccumulates(t *testing.T) {
	k := New()
	var ticks []uint64
	k.At(3, func() {
		k.After(7, func() { ticks = append(ticks, k.Now()) })
	})
	k.Run()
	if len(ticks) != 1 || ticks[0] != 10 {
		t.Fatalf("ticks = %v, want [10]", ticks)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestStopAndResume(t *testing.T) {
	k := New()
	n := 0
	for i := 1; i <= 5; i++ {
		tick := uint64(i * 10)
		k.At(tick, func() {
			n++
			if tick == 30 {
				k.Stop()
			}
		})
	}
	k.Run()
	if n != 3 {
		t.Fatalf("after Stop: n = %d, want 3", n)
	}
	k.Run()
	if n != 5 {
		t.Fatalf("after resume: n = %d, want 5", n)
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	n := 0
	k.At(10, func() { n++ })
	k.At(20, func() { n++ })
	k.At(30, func() { n++ })
	k.RunUntil(20)
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if k.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", k.Now())
	}
	k.Run()
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
}

// TestRunUntilWatchdogPanics is the regression test for the RunUntil
// loop bypassing the watchdog: a livelock below the horizon used to
// spin until the horizon instead of panicking at the deadline like Run.
func TestRunUntilWatchdogPanics(t *testing.T) {
	k := New()
	k.SetDeadline(100)
	var tick func()
	tick = func() { k.After(1, tick) } // endless self-rescheduling
	k.At(0, tick)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RunUntil livelock did not trip the watchdog")
		}
		if k.Now() > 101 {
			t.Errorf("watchdog fired late: now = %d", k.Now())
		}
	}()
	k.RunUntil(1 << 20)
}

// RunUntil below the deadline must not trip the watchdog.
func TestRunUntilBeforeDeadlineRuns(t *testing.T) {
	k := New()
	k.SetDeadline(1000)
	n := 0
	k.At(10, func() { n++ })
	k.At(20, func() { n++ })
	k.RunUntil(50)
	if n != 2 || k.Now() != 50 {
		t.Fatalf("n = %d, now = %d", n, k.Now())
	}
}

func TestWatchdogPanics(t *testing.T) {
	k := New()
	k.SetDeadline(100)
	var tick func()
	tick = func() { k.After(10, tick) } // endless self-rescheduling
	k.At(0, tick)
	defer func() {
		if recover() == nil {
			t.Error("watchdog did not panic")
		}
	}()
	k.Run()
}

// Property: regardless of insertion order, events fire in nondecreasing
// tick order, with ties broken by insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		k := New()
		type fired struct {
			tick uint64
			id   int
		}
		var log []fired
		for i, r := range raw {
			tick := uint64(r % 97)
			id := i
			k.At(tick, func() { log = append(log, fired{tick, id}) })
		}
		k.Run()
		if len(log) != len(raw) {
			return false
		}
		for i := 1; i < len(log); i++ {
			if log[i].tick < log[i-1].tick {
				return false
			}
			if log[i].tick == log[i-1].tick && log[i].id < log[i-1].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		k := New()
		rng := rand.New(rand.NewSource(42))
		var log []uint64
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 4 {
				return
			}
			k.After(uint64(rng.Intn(50)), func() {
				log = append(log, k.Now())
				spawn(depth + 1)
				spawn(depth + 1)
			})
		}
		k.At(0, func() { spawn(0) })
		k.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
