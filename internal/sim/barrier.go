package sim

import (
	"runtime"
	"sync/atomic"
)

// This file implements the two halves of the parallel kernel's
// barrier-light rendezvous:
//
//   - laneGate: a per-lane sense-reversing wake word. The coordinator
//     publishes a new quantum by bumping the lane's generation counter;
//     the lane spins briefly on the counter (cheap when real cores are
//     available) and parks on a buffered channel otherwise. Skipping a
//     lane is free — its generation simply is not bumped.
//   - joinTree: a radix-4 combining arrival tree. Lanes finishing a
//     quantum decrement their leaf; the last arrival at a leaf
//     decrements the root, and the last arrival at the root wakes only
//     the coordinator — no all-lanes broadcast release phase exists at
//     all, because the release is the next quantum's gate publication.
//
// Together these replace the channel request/response pair per lane per
// quantum of the first parallel kernel: a quantum hand-off on a
// multi-core host is two atomic stores and a handful of spins, and a
// lane with no runnable domains never observes the quantum happening.
//
// Memory ordering: every value the coordinator writes between quanta
// (window limits, runnable sets, pending staging) is published to a lane
// by the gate's generation store and acquired by the lane's generation
// load; everything a lane writes during a quantum is published by its
// join-tree arrival and acquired by the coordinator's observation of the
// root reaching zero. Plain (non-atomic) shared slices are therefore
// safe on both sides of the protocol.

// gateSpin bounds the optimistic spin before a waiter parks on its
// channel. Spinning only pays when another core can make progress
// concurrently, so waiters skip straight to parking on a single-proc
// runtime.
const gateSpin = 4096

// laneGate is one waiter's wake word plus parking channel. The padding
// keeps each gate on its own cache line: generations are bumped by the
// coordinator while other lanes spin on their own words.
type laneGate struct {
	gen    atomic.Uint64
	parked atomic.Bool
	park   chan struct{}
	_      [64 - (8+1+8)%64]byte
}

// init readies a zero-value gate (gates embed atomics, so they are
// initialized in place rather than copied from a constructor).
func (g *laneGate) init() {
	g.park = make(chan struct{}, 1)
}

// wake publishes generation g to the waiter. Coordinator-only. The
// parked check after the generation store pairs with the waiter's
// generation check after its parked store (both sequentially consistent),
// so a wake is never lost: either the waiter sees the new generation
// before parking, or the waker sees parked and sends the token.
func (g *laneGate) wake(gen uint64) {
	g.gen.Store(gen)
	if g.parked.Load() {
		select {
		case g.park <- struct{}{}:
		default:
		}
	}
}

// wait blocks until the generation moves past last and returns the new
// value. Waiter-only. spin enables the optimistic phase; pass false when
// the host cannot run waker and waiter concurrently.
func (g *laneGate) wait(last uint64, spin bool) uint64 {
	for {
		if spin {
			for i := 0; i < gateSpin; i++ {
				if v := g.gen.Load(); v != last {
					return v
				}
				if i&255 == 255 {
					runtime.Gosched()
				}
			}
		} else if v := g.gen.Load(); v != last {
			return v
		}
		g.parked.Store(true)
		if v := g.gen.Load(); v != last {
			g.parked.Store(false)
			return v
		}
		<-g.park // a stale token re-checks the generation and re-parks
		g.parked.Store(false)
	}
}

// joinTree counts quantum arrivals. The coordinator sizes it for the
// participating lanes before publishing the quantum (no arrivals can be
// in flight then, which is what makes the per-quantum reset — the sense
// reversal — trivially safe), lanes call arrive once each, and the last
// arrival wakes the coordinator's gate.
type joinTree struct {
	leaves []atomic.Int64 // remaining arrivals per radix-4 leaf; padded below
	root   atomic.Int64   // remaining leaves
	_      [56]byte
	done    laneGate // coordinator's wake word
	quantum uint64   // generation the last arrival publishes; set by reset
}

// joinRadix is the combining fan-in: lanes i*joinRadix..i*joinRadix+3
// share leaf i. Four lanes per cache-line-padded counter keeps the tree
// two levels deep for every realistic lane count while splitting arrival
// traffic across lines.
const joinRadix = 4

// leafPad spaces the leaf counters a cache line apart. atomic.Int64 is 8
// bytes, so step by 8 slots and use slot i*leafPad.
const leafPad = 8

func newJoinTree(lanes int) *joinTree {
	nl := (lanes + joinRadix - 1) / joinRadix
	j := &joinTree{leaves: make([]atomic.Int64, nl*leafPad)}
	j.done.init()
	return j
}

// reset arms the tree for one quantum: counts[i] holds the number of
// participating lanes on leaf i (0 leaves drop out of the root count),
// and quantum is the generation the final arrival will publish.
// Coordinator-only, between quanta — the gate publication that starts
// the quantum orders this write before every arrival.
func (j *joinTree) reset(counts []int64, quantum uint64) {
	nl := int64(0)
	for i, c := range counts {
		j.leaves[i*leafPad].Store(c)
		if c > 0 {
			nl++
		}
	}
	j.root.Store(nl)
	j.quantum = quantum
}

// arrive records lane's quantum completion; the final arrival wakes the
// coordinator.
func (j *joinTree) arrive(lane int) {
	if j.leaves[(lane/joinRadix)*leafPad].Add(-1) == 0 {
		if j.root.Add(-1) == 0 {
			j.done.wake(j.quantum)
		}
	}
}

// await parks the coordinator until every participating lane of the
// given quantum arrived. Must be paired with exactly one reset; spin as
// in laneGate.wait. Quanta that run entirely inline skip the tree, so
// the done generation can lag the quantum counter — await loops until it
// observes this quantum's publication exactly.
func (j *joinTree) await(quantum uint64, spin bool) {
	last := j.done.gen.Load()
	for last != quantum {
		last = j.done.wait(last, spin)
	}
}
