package sim

import "math/bits"

// This file implements the kernel's event queue: a two-level monomorphic
// priority queue on (tick, seq) that is allocation-free in steady state.
//
// The near future — delays 0..wheelSize-1, which is where the per-cycle
// device ticks, bus deliveries, and retry backoffs of this repository
// land — lives in a calendar wheel of wheelSize buckets indexed by
// tick & wheelMask. Everything at or beyond now+wheelSize lives in a
// hand-rolled binary min-heap ("far" heap). Both levels store event
// structs by value in reusable backing arrays, so scheduling never boxes
// through an interface and never heap-allocates once the arrays have
// grown to the workload's high-water mark (container/heap's any-typed
// Push allocated on every call).
//
// Two structural choices keep the wheel cheap at scale:
//
//   - occ is a 64-bit occupancy bitmap, bit i set exactly when bucket i
//     holds undispatched events. Finding the earliest pending tick is a
//     rotate + trailing-zeros instead of a worst-case 64-bucket scan,
//     which matters to the parallel coordinator (it probes NextTick on
//     every domain every quantum) as much as to the run loops.
//   - Fresh buckets draw their initial backing array from a slab carved
//     in bucketChunk-event pieces, so a newly built kernel costs a
//     couple of slab allocations instead of one append-growth chain per
//     touched bucket. With 17 domain kernels per parallel run, bucket
//     growth was the single largest allocation site in the profile.
//
// Ordering contract (identical to the seed container/heap queue): events
// dispatch in strictly nondecreasing tick order, same-tick events in
// scheduling (seq) order. The invariant that makes the wheel safe is:
//
//	the wheel holds exactly the pending events with tick < now+wheelSize;
//	the far heap holds the rest.
//
// now only moves forward, and a tick T enters the window [now, now+wheelSize)
// exactly once. advanceTo migrates far-heap events into the wheel at that
// moment — in (tick, seq) heap order, before any event callback at the new
// now can run — so every bucket append happens in increasing seq order and
// a bucket drains FIFO by construction. Within the window, 64 consecutive
// ticks map to 64 distinct buckets, so a bucket never mixes ticks.

const (
	wheelBits = 6
	// wheelSize is the calendar window in ticks. 64 covers every
	// short-delay scheduling pattern on the hot path (After(0..63):
	// mapper ticks, send-issue spacing, bus serialization+hop, retry
	// backoffs) and matches the occupancy bitmap word exactly.
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1

	// bucketChunk is the initial capacity handed to a freshly touched
	// bucket; buckets that outgrow it fall back to append doubling and
	// keep the larger array across window wraps. slabBuckets batches the
	// slab allocation so an idle kernel pays nothing and a busy one pays
	// ~one allocation total: sized to the whole wheel, a kernel that
	// eventually touches every bucket (any long-running model does) takes
	// a single ~100KB slab instead of a per-bucket growth chain — with 17
	// domain kernels per parallel fabric, slab grabs were the largest
	// remaining allocation site.
	bucketChunk = 32
	slabBuckets = wheelSize

	// farInitCap presizes the far heap's backing array on first use,
	// collapsing the append-growth chain for long-horizon schedules
	// (timeouts, arrival processes) into one allocation.
	farInitCap = 64
)

// event is one scheduled callback. Exactly one of fn and afn is set:
// fn is the closure form (At/After), afn+arg the allocation-free form
// (AtFunc/AfterFunc).
type event struct {
	tick uint64
	seq  uint64
	fn   func()
	afn  func(uint64)
	arg  uint64
}

// call dispatches the event's callback.
func (e *event) call() {
	if e.afn != nil {
		e.afn(e.arg)
	} else {
		e.fn()
	}
}

// bucket is one wheel slot: a FIFO of same-tick events. head indexes the
// next event to dispatch; the backing array is reused across windows.
type bucket struct {
	head int
	ev   []event
}

// eventQueue is the two-level queue. now mirrors the kernel's clock and
// anchors the wheel window.
type eventQueue struct {
	now      uint64
	occ      uint64 // bit i set iff wheel[i] has undispatched events
	wheelLen int    // events currently in the wheel
	wheel    [wheelSize]bucket
	far      []event // binary min-heap on (tick, seq); ticks >= now+wheelSize
	slab     []event // backing store carved into fresh bucket arrays
}

// len reports the number of pending events.
func (q *eventQueue) len() int { return q.wheelLen + len(q.far) }

// grab carves a fresh bucketChunk-capacity array out of the slab,
// replenishing the slab when exhausted. The three-index slice expression
// caps the chunk so append growth beyond bucketChunk reallocates instead
// of clobbering the neighbouring chunk.
func (q *eventQueue) grab() []event {
	n := len(q.slab)
	if cap(q.slab)-n < bucketChunk {
		q.slab = make([]event, 0, bucketChunk*slabBuckets)
		n = 0
	}
	q.slab = q.slab[:n+bucketChunk]
	return q.slab[n:n:n+bucketChunk]
}

// push inserts an event. e.tick must be >= q.now (the kernel checks).
func (q *eventQueue) push(e event) {
	if e.tick-q.now < wheelSize {
		b := &q.wheel[e.tick&wheelMask]
		if cap(b.ev) == 0 {
			b.ev = q.grab()
		}
		b.ev = append(b.ev, e)
		q.occ |= 1 << (e.tick & wheelMask)
		q.wheelLen++
		return
	}
	q.farPush(e)
}

// advanceTo moves the window start to t (monotone) and migrates far-heap
// events that fall into the new window. Migration pops in (tick, seq)
// order, so bucket appends stay seq-sorted: every event already in a
// bucket for an in-window tick was appended when that tick entered the
// window, and every future direct push carries a larger seq.
func (q *eventQueue) advanceTo(t uint64) {
	q.now = t
	for len(q.far) > 0 && q.far[0].tick-t < wheelSize {
		e := q.farPop()
		b := &q.wheel[e.tick&wheelMask]
		if cap(b.ev) == 0 {
			b.ev = q.grab()
		}
		b.ev = append(b.ev, e)
		q.occ |= 1 << (e.tick & wheelMask)
		q.wheelLen++
	}
}

// wheelNext returns the offset in [0, wheelSize) of the earliest occupied
// bucket relative to now. Rotating the occupancy word by now&wheelMask
// aligns bit d with bucket (now+d)&wheelMask, so a trailing-zeros count
// replaces the bucket scan. Callers must ensure occ != 0.
func (q *eventQueue) wheelNext() uint64 {
	return uint64(bits.TrailingZeros64(bits.RotateLeft64(q.occ, -int(q.now&wheelMask))))
}

// nextTick reports the earliest pending tick without popping.
func (q *eventQueue) nextTick() (uint64, bool) {
	if q.occ != 0 {
		return q.now + q.wheelNext(), true
	}
	if len(q.far) > 0 {
		return q.far[0].tick, true
	}
	return 0, false
}

// startTick advances the window to the earliest pending tick and returns
// that tick's bucket, or nil when the queue is empty or the earliest tick
// is past limit (pass ^uint64(0) for unbounded). The kernel drains the
// returned bucket in place — batched per-tick dispatch — instead of
// re-scanning the wheel per event; callbacks that schedule for the same
// tick append to the same bucket and are picked up by the drain loop.
func (q *eventQueue) startTick(limit uint64) *bucket {
	if q.occ == 0 {
		if len(q.far) == 0 || q.far[0].tick > limit {
			return nil
		}
		// Jump the window to the far-heap minimum; migration refills
		// the wheel with at least that event.
		q.advanceTo(q.far[0].tick)
	}
	d := q.wheelNext()
	if q.now+d > limit {
		return nil
	}
	if d != 0 {
		// The window slides forward before any event runs, so
		// callbacks at the new now see a fully migrated wheel.
		q.advanceTo(q.now + d)
	}
	return &q.wheel[q.now&wheelMask]
}

// pop removes and returns the earliest event, advancing the window to its
// tick. The second return is false when the queue is empty.
func (q *eventQueue) pop() (event, bool) {
	if q.occ == 0 {
		if len(q.far) == 0 {
			return event{}, false
		}
		// Jump the window to the far-heap minimum; migration refills
		// the wheel with at least that event.
		q.advanceTo(q.far[0].tick)
	}
	d := q.wheelNext()
	if d != 0 {
		// The window slides forward before the event runs, so
		// callbacks at the new now see a fully migrated wheel.
		q.advanceTo(q.now + d)
	}
	b := &q.wheel[q.now&wheelMask]
	e := b.ev[b.head]
	b.ev[b.head] = event{} // release closure references for GC
	b.head++
	if b.head == len(b.ev) {
		b.ev = b.ev[:0]
		b.head = 0
		q.occ &^= 1 << (q.now & wheelMask)
	}
	q.wheelLen--
	return e, true
}

// reset drops every pending event and releases the backing arrays.
func (q *eventQueue) reset() {
	for i := range q.wheel {
		q.wheel[i] = bucket{}
	}
	q.occ = 0
	q.wheelLen = 0
	q.far = nil
	q.slab = nil
}

// farPush / farPop implement a monomorphic binary min-heap on
// (tick, seq) over the far slice — the same ordering container/heap gave
// the seed kernel, minus the interface boxing.

func (q *eventQueue) farPush(e event) {
	if cap(q.far) == 0 {
		q.far = make([]event, 0, farInitCap)
	}
	h := append(q.far, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	q.far = h
}

func (q *eventQueue) farPop() event {
	h := q.far
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release closure references for GC
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(&h[l], &h[small]) {
			small = l
		}
		if r < n && eventLess(&h[r], &h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	q.far = h
	return top
}

func eventLess(a, b *event) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	return a.seq < b.seq
}
