package sim

// This file implements the kernel's event queue: a two-level monomorphic
// priority queue on (tick, seq) that is allocation-free in steady state.
//
// The near future — delays 0..wheelSize-1, which is where the per-cycle
// device ticks, bus deliveries, and retry backoffs of this repository
// land — lives in a calendar wheel of wheelSize buckets indexed by
// tick & wheelMask. Everything at or beyond now+wheelSize lives in a
// hand-rolled binary min-heap ("far" heap). Both levels store event
// structs by value in reusable backing arrays, so scheduling never boxes
// through an interface and never heap-allocates once the arrays have
// grown to the workload's high-water mark (container/heap's any-typed
// Push allocated on every call).
//
// Ordering contract (identical to the seed container/heap queue): events
// dispatch in strictly nondecreasing tick order, same-tick events in
// scheduling (seq) order. The invariant that makes the wheel safe is:
//
//	the wheel holds exactly the pending events with tick < now+wheelSize;
//	the far heap holds the rest.
//
// now only moves forward, and a tick T enters the window [now, now+wheelSize)
// exactly once. advanceTo migrates far-heap events into the wheel at that
// moment — in (tick, seq) heap order, before any event callback at the new
// now can run — so every bucket append happens in increasing seq order and
// a bucket drains FIFO by construction. Within the window, 64 consecutive
// ticks map to 64 distinct buckets, so a bucket never mixes ticks.

const (
	wheelBits = 6
	// wheelSize is the calendar window in ticks. 64 covers every
	// short-delay scheduling pattern on the hot path (After(0..63):
	// mapper ticks, send-issue spacing, bus serialization+hop, retry
	// backoffs) while keeping the empty-bucket scan bounded and cheap.
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// event is one scheduled callback. Exactly one of fn and afn is set:
// fn is the closure form (At/After), afn+arg the allocation-free form
// (AtFunc/AfterFunc).
type event struct {
	tick uint64
	seq  uint64
	fn   func()
	afn  func(uint64)
	arg  uint64
}

// call dispatches the event's callback.
func (e *event) call() {
	if e.afn != nil {
		e.afn(e.arg)
	} else {
		e.fn()
	}
}

// bucket is one wheel slot: a FIFO of same-tick events. head indexes the
// next event to dispatch; the backing array is reused across windows.
type bucket struct {
	head int
	ev   []event
}

// eventQueue is the two-level queue. now mirrors the kernel's clock and
// anchors the wheel window.
type eventQueue struct {
	now      uint64
	wheel    [wheelSize]bucket
	wheelLen int     // events currently in the wheel
	far      []event // binary min-heap on (tick, seq); ticks >= now+wheelSize
}

// len reports the number of pending events.
func (q *eventQueue) len() int { return q.wheelLen + len(q.far) }

// push inserts an event. e.tick must be >= q.now (the kernel checks).
func (q *eventQueue) push(e event) {
	if e.tick-q.now < wheelSize {
		b := &q.wheel[e.tick&wheelMask]
		b.ev = append(b.ev, e)
		q.wheelLen++
		return
	}
	q.farPush(e)
}

// advanceTo moves the window start to t (monotone) and migrates far-heap
// events that fall into the new window. Migration pops in (tick, seq)
// order, so bucket appends stay seq-sorted: every event already in a
// bucket for an in-window tick was appended when that tick entered the
// window, and every future direct push carries a larger seq.
func (q *eventQueue) advanceTo(t uint64) {
	q.now = t
	for len(q.far) > 0 && q.far[0].tick-t < wheelSize {
		e := q.farPop()
		b := &q.wheel[e.tick&wheelMask]
		b.ev = append(b.ev, e)
		q.wheelLen++
	}
}

// nextTick reports the earliest pending tick without popping.
func (q *eventQueue) nextTick() (uint64, bool) {
	if q.wheelLen > 0 {
		for d := uint64(0); d < wheelSize; d++ {
			b := &q.wheel[(q.now+d)&wheelMask]
			if b.head < len(b.ev) {
				return q.now + d, true
			}
		}
		panic("sim: wheelLen > 0 but no non-empty bucket")
	}
	if len(q.far) > 0 {
		return q.far[0].tick, true
	}
	return 0, false
}

// startTick advances the window to the earliest pending tick and returns
// that tick's bucket, or nil when the queue is empty or the earliest tick
// is past limit (pass ^uint64(0) for unbounded). The kernel drains the
// returned bucket in place — batched per-tick dispatch — instead of
// re-scanning the wheel per event; callbacks that schedule for the same
// tick append to the same bucket and are picked up by the drain loop.
func (q *eventQueue) startTick(limit uint64) *bucket {
	if q.wheelLen == 0 {
		if len(q.far) == 0 || q.far[0].tick > limit {
			return nil
		}
		// Jump the window to the far-heap minimum; migration refills
		// the wheel with at least that event.
		q.advanceTo(q.far[0].tick)
	}
	for d := uint64(0); d < wheelSize; d++ {
		b := &q.wheel[(q.now+d)&wheelMask]
		if b.head < len(b.ev) {
			if q.now+d > limit {
				return nil
			}
			if d != 0 {
				// The window slides forward before any event runs, so
				// callbacks at the new now see a fully migrated wheel.
				q.advanceTo(q.now + d)
			}
			return b
		}
	}
	panic("sim: wheelLen > 0 but no non-empty bucket")
}

// pop removes and returns the earliest event, advancing the window to its
// tick. The second return is false when the queue is empty.
func (q *eventQueue) pop() (event, bool) {
	if q.wheelLen == 0 {
		if len(q.far) == 0 {
			return event{}, false
		}
		// Jump the window to the far-heap minimum; migration refills
		// the wheel with at least that event.
		q.advanceTo(q.far[0].tick)
	}
	for d := uint64(0); d < wheelSize; d++ {
		b := &q.wheel[(q.now+d)&wheelMask]
		if b.head < len(b.ev) {
			if d != 0 {
				// The window slides forward before the event runs, so
				// callbacks at the new now see a fully migrated wheel.
				q.advanceTo(q.now + d)
			}
			e := b.ev[b.head]
			b.ev[b.head] = event{} // release closure references for GC
			b.head++
			if b.head == len(b.ev) {
				b.ev = b.ev[:0]
				b.head = 0
			}
			q.wheelLen--
			return e, true
		}
	}
	panic("sim: wheelLen > 0 but no non-empty bucket")
}

// reset drops every pending event and releases the backing arrays.
func (q *eventQueue) reset() {
	for i := range q.wheel {
		q.wheel[i] = bucket{}
	}
	q.wheelLen = 0
	q.far = nil
}

// farPush / farPop implement a monomorphic binary min-heap on
// (tick, seq) over the far slice — the same ordering container/heap gave
// the seed kernel, minus the interface boxing.

func (q *eventQueue) farPush(e event) {
	h := append(q.far, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	q.far = h
}

func (q *eventQueue) farPop() event {
	h := q.far
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release closure references for GC
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(&h[l], &h[small]) {
			small = l
		}
		if r < n && eventLess(&h[r], &h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	q.far = h
	return top
}

func eventLess(a, b *event) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	return a.seq < b.seq
}
