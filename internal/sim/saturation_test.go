package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestInboxShrinksAfterStorm is the regression test for the cross-
// message high-water-mark leak: one incast storm used to grow the
// destination-side staging (formerly the inbox slot pool; now the pend,
// inj, and spill slices behind the pair rings) to the burst size
// forever. After the storm drains and the run goes idle, every staging
// slice must have been trimmed back at a quantum boundary.
func TestInboxShrinksAfterStorm(t *testing.T) {
	const (
		la    = 10
		storm = 8192
		slow  = 50
	)
	pk := NewParallel(2, la, 2)
	var got uint64
	sig := NewSignal("storm.got")
	deliver := func(a0, a1, a2, a3 uint64) {
		got++
		sig.Fire()
	}
	pk.Domain(0).Go("storm/src", func(p *Proc) {
		// Incast storm: the whole burst is posted within one quantum, so
		// every message needs its own inbox slot at the merge barrier.
		for i := 0; i < storm; i++ {
			pk.Post(0, 1, p.Now()+la, deliver, uint64(i), 0, 0, 0)
		}
		// Then a long idle phase with sparse traffic: many barriers with
		// near-zero occupancy, which is where the pool must shrink.
		for i := 0; i < slow; i++ {
			p.Sleep(200)
			pk.Post(0, 1, p.Now()+la, deliver, uint64(i), 1, 0, 0)
		}
	})
	pk.Domain(1).Go("storm/sink", func(p *Proc) {
		WaitUntil(p, sig, func() bool { return got == storm+slow })
	})
	pk.SetDeadline(1 << 30)
	pk.Run()
	if got != storm+slow {
		t.Fatalf("delivered %d, want %d", got, storm+slow)
	}
	if sp := pk.Spilled(); sp == 0 {
		t.Fatalf("storm of %d messages never overflowed the %d-slot pair ring; storm too small to test the spill path", storm, ringCap)
	}
	if n := pk.CrossCapacity(); n > 4*crossShrinkFloor {
		t.Fatalf("cross staging holds capacity %d after burst-then-idle run; want <= %d (high-water leak)",
			n, 4*crossShrinkFloor)
	}
}

// TestInboxShrinkKeepsOccupiedSlots drives repeated storms with the pool
// shrinking between them and checks no delivery is lost or corrupted —
// the trim must never move or drop an occupied slot.
func TestInboxShrinkKeepsOccupiedSlots(t *testing.T) {
	const la = 5
	pk := NewParallel(2, la, 1)
	var got, sum uint64
	sig := NewSignal("waves.got")
	deliver := func(a0, a1, a2, a3 uint64) {
		got++
		sum += a0
		sig.Fire()
	}
	const waves, per = 8, 500
	var want uint64
	pk.Domain(0).Go("waves/src", func(p *Proc) {
		for w := 0; w < waves; w++ {
			for i := 0; i < per; i++ {
				// Spread delivery ticks so slots stay occupied across
				// several quanta while others free — the mixed-occupancy
				// state the tail trim must respect.
				pk.Post(0, 1, p.Now()+la+uint64(i%37), deliver, uint64(w*per+i), 0, 0, 0)
			}
			want += per
			p.Sleep(1000) // idle gap: shrink barriers
		}
	})
	pk.Domain(1).Go("waves/sink", func(p *Proc) {
		WaitUntil(p, sig, func() bool { return got == waves*per })
	})
	pk.SetDeadline(1 << 30)
	pk.Run()
	if got != waves*per {
		t.Fatalf("delivered %d, want %d", got, waves*per)
	}
	var expect uint64
	for i := uint64(0); i < waves*per; i++ {
		expect += i
	}
	if sum != expect {
		t.Fatalf("payload checksum %d, want %d (slot moved or reused while occupied)", sum, expect)
	}
}

// TestFarHorizonFIFO is the property test for far-heap scheduling: a
// random mix of near-wheel, far-heap, and end-of-time ticks — including
// same-tick clusters — must dispatch in exact (tick, seq) order, with no
// mis-bucketing near the uint64 boundary.
func TestFarHorizonFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	k := New()
	type stamp struct{ tick, seq uint64 }
	var want []stamp
	add := func(tick uint64) {
		k.At(tick, func() {})
		want = append(want, stamp{tick, k.seq})
	}
	// Boundary ticks: at and around the top of the range, at the wheel
	// window edge, and on exact powers of two.
	max := ^uint64(0)
	for _, tk := range []uint64{max, max, max - 1, max - wheelSize, max - wheelSize - 1,
		max - wheelSize + 1, 1 << 63, (1 << 63) - 1, wheelSize, wheelSize - 1, 0} {
		add(tk)
	}
	// Random far-horizon inserts with same-tick clusters.
	for i := 0; i < 2000; i++ {
		var tk uint64
		switch rng.Intn(4) {
		case 0:
			tk = uint64(rng.Intn(2 * wheelSize))
		case 1:
			tk = rng.Uint64() % (1 << 32)
		case 2:
			tk = max - uint64(rng.Intn(4*wheelSize))
		default:
			tk = rng.Uint64()
		}
		n := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			add(tk)
		}
	}
	var got []stamp
	k.SetDispatchObserver(func(tick, seq uint64) { got = append(got, stamp{tick, seq}) })
	k.Run()

	sort.Slice(want, func(i, j int) bool {
		if want[i].tick != want[j].tick {
			return want[i].tick < want[j].tick
		}
		return want[i].seq < want[j].seq
	})
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, scheduled %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d: got (%d,%d), want (%d,%d)",
				i, got[i].tick, got[i].seq, want[i].tick, want[i].seq)
		}
	}
	if k.Now() != max {
		t.Fatalf("clock ended at %d, want %d", k.Now(), max)
	}
}

// TestFarHorizonInsertDuringRun pins FIFO order when callbacks schedule
// new far-horizon and same-tick events while the kernel is draining a
// batched tick bucket.
func TestFarHorizonInsertDuringRun(t *testing.T) {
	k := New()
	var order []uint64
	note := func(id uint64) func() {
		return func() { order = append(order, id) }
	}
	base := uint64(1 << 40)
	k.At(base, func() {
		order = append(order, 1)
		k.At(base, note(2))             // same tick, must run this tick after 3
		k.At(base+wheelSize*3, note(4)) // far future relative to wheel
		k.At(^uint64(0), note(5))       // end of time
	})
	k.At(base, note(3)) // scheduled before the callback's same-tick insert
	k.Run()
	want := []uint64{1, 3, 2, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("got order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got order %v, want %v", order, want)
		}
	}
}

// TestParallelFarFutureTermination pins that the quantum loop terminates
// when pending events sit at the very top of the tick range: the window
// end start+lookahead used to wrap to a tiny value, marking no lane
// runnable while events stayed pending — a barrier livelock.
func TestParallelFarFutureTermination(t *testing.T) {
	pk := NewParallel(3, 7, 2)
	var fired int
	max := ^uint64(0)
	for d := 0; d < 3; d++ {
		pk.Domain(d).At(100+uint64(d), func() { fired++ })
		pk.Domain(d).At(max-uint64(d), func() { fired++ })
		pk.Domain(d).At(max, func() { fired++ })
	}
	pk.Run()
	if fired != 9 {
		t.Fatalf("fired %d events, want 9", fired)
	}
	if pk.LastEventTick() != max {
		t.Fatalf("last event tick %d, want %d", pk.LastEventTick(), max)
	}
}
