package sim

// This file implements conservative (quantum-synchronized) parallel
// discrete-event simulation over a fixed set of logical domains, in the
// style of parti-gem5: each domain is an independent sequential Kernel,
// and domains only interact through cross-domain messages that arrive at
// least `lookahead` ticks after they are sent.
//
// The synchronization layer is the second generation of the parallel
// kernel ("barrier-light"): the first generation ran one global
// all-lanes rendezvous per quantum and merged per-source outboxes into a
// shared scratch slice under the barrier. Here the rendezvous work is
// pushed out of the coordinator and mostly out of existence:
//
//   - Cross-domain messages travel through fixed-capacity, cache-line-
//     padded SPSC rings, one per (source, destination) domain pair
//     (ring.go). A source lane publishes with one release store; the
//     destination lane drains with batched copies at its own quantum
//     start. No shared merge scratch exists; the coordinator moves no
//     message bytes.
//   - Each destination domain stages not-yet-due messages in a private
//     pend slice and injects due ones in canonical (tick, srcDomain,
//     srcSeq) order at its quantum start — so the merge itself runs in
//     parallel, on the lane that owns the destination.
//   - The global min-pending-tick jump of the first kernel generalizes
//     to per-domain horizons: h(d) is the earliest tick at which d can
//     act (own events, staged messages, undrained rings). A domain runs
//     a quantum only when h(d) falls inside its window; domains that are
//     provably idle skip the rendezvous entirely, and a lane none of
//     whose domains run is never woken.
//   - The rendezvous itself is a sense-reversing gate per lane plus a
//     radix-4 combining join tree (barrier.go): waking a lane is one
//     atomic store, joining is one atomic decrement, and only the
//     coordinator is ever woken at the join — there is no broadcast
//     release phase at all.
//
// Per-domain window bound. Let A be the set of active domains (finite
// horizon), H0 = min h(e) over A, and la the lookahead. Domain d may run
// events up to and including
//
//	limit(d) = min( min_{e in A, e != d} h(e) + la,  H0 + 2*la ) - 1
//
// The first term covers messages sent to d during this quantum: a domain
// e only dispatches at ticks >= h(e), so anything it posts arrives at
// >= h(e) + la > limit(d). The second term covers feedback through
// domains woken later: every message posted this quantum arrives at
// >= H0 + la, so after this quantum every horizon is >= H0 + la, and any
// message posted in a later quantum arrives at >= H0 + 2*la > limit(d).
// The domain with the minimum horizon always satisfies h <= limit, so
// every quantum makes progress, and H0 advances by at least la per
// quantum. When only one domain is active, its window extends to
// H0 + 2*lookahead - 1 with no rendezvous at all — the serial-phase fast
// path.
//
// Determinism is preserved by construction, not by luck:
//
//   - The set of logical domains is fixed by the model; workers are
//     execution lanes. Horizons, window limits, and the set of messages
//     a destination drains each quantum (the coordinator snapshots ring
//     occupancy between quanta, and lanes drain exactly that count) are
//     all functions of the model alone, never of lane count or timing.
//   - Injection sorts each quantum's due messages by (tick, srcDomain,
//     srcSeq) — a total order — before assigning destination sequence
//     numbers, so same-tick deliveries dispatch identically regardless
//     of how many workers ran the previous quantum, or of how messages
//     were split between rings, spill slices, and the pend stage.

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
)

// crossMsg is one buffered cross-domain event: a bound callback plus four
// packed argument words, stamped with its delivery tick and a per-source
// sequence number that makes the canonical injection order total.
type crossMsg struct {
	tick uint64
	seq  uint64 // per-source monotone counter
	src  int32
	dst  int32
	fn   func(a0, a1, a2, a3 uint64)
	a0   uint64
	a1   uint64
	a2   uint64
	a3   uint64
}

func crossLess(a, b *crossMsg) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// crossShrinkFloor is the capacity below which cross-message staging
// slices (pend, inj, spill) are never trimmed: small buffers are noise,
// and a modest floor avoids regrow churn right after a shrink.
const crossShrinkFloor = 64

// shrinkCross trims a staging slice once its length falls below a
// quarter of the grown capacity, so one incast storm does not inflate a
// long-lived kernel forever — the same guard PR 6 added to the old inbox
// pools, applied to the ring-era staging buffers. The replacement keeps
// 2x the live length as hysteresis.
func shrinkCross(s []crossMsg) []crossMsg {
	if cap(s) <= crossShrinkFloor || len(s)*4 >= cap(s) {
		return s
	}
	n := len(s) * 2
	if n < crossShrinkFloor {
		n = crossShrinkFloor
	}
	ns := make([]crossMsg, len(s), n)
	copy(ns, s)
	return ns
}

// srcState is one source domain's posting state: the per-source sequence
// counter and the spill slice that absorbs ring overflow (writer-owned;
// the coordinator moves spilled messages to the destination's pend stage
// between quanta). Padded: each state is written by the lane executing
// its source domain.
type srcState struct {
	seq     uint64
	spill   []crossMsg
	spilled uint64
	_       [64 - (8+24+8)%64]byte
}

// drainSrc is one entry of a destination's per-quantum drain list: take
// exactly n messages from src's ring. The count is the coordinator's
// between-quanta snapshot, which keeps the drained set independent of
// how far concurrent producers have advanced within the quantum.
type drainSrc struct {
	src int32
	n   int32
}

// dstState is one destination domain's staging state. During a quantum
// it is owned exclusively by the lane executing the domain; between
// quanta the coordinator appends spilled messages and rebuilds the drain
// list. The gate/join protocol orders the two phases.
type dstState struct {
	pend      []crossMsg // drained but not yet due
	inj       []crossMsg // this window's deliveries, canonically sorted
	drainFrom []drainSrc // coordinator-built per-quantum drain list
	pendMin   uint64     // min delivery tick in pend; ^0 when empty
	injected  uint64     // messages delivered into this domain

	// Self-posts (src == dst) bypass the rings — they need no
	// synchronization — and live in a small slot pool so deliveries
	// scheduled past the current window survive inj reuse.
	self     []crossMsg
	selfFree []int32
}

// pairScan is the coordinator's cached view of one ring: as long as
// head and tail have not moved, the min delivery tick needs no rescan.
type pairScan struct {
	head uint64
	tail uint64
	min  uint64
	act  bool // currently in activePairs
}

// ParallelStats are the deterministic per-run telemetry counters of the
// parallel kernel. Every field is a pure function of the model (domain
// partitioning, lookahead), never of lane count or scheduling timing, so
// results that embed it stay byte-identical across Domains settings.
type ParallelStats struct {
	Quanta         uint64 // synchronization windows executed
	WindowsSkipped uint64 // domain-windows skipped (active but out of window)
	CrossMessages  uint64 // cross-domain messages delivered
	UndeliveredHW  uint64 // high-water mark of posted-but-undelivered messages
}

// ParallelKernel runs a fixed set of domain kernels under conservative
// quantum synchronization. Construct with NewParallel, attach model state
// to the per-domain kernels (Domain), and drive with Run.
type ParallelKernel struct {
	doms      []*Kernel
	nd        int
	lookahead uint64
	workers   int // requested lanes; clamped to [1, len(doms)] and GOMAXPROCS
	weight    []uint64

	rings      []pairRing      // src*nd + dst
	srcs       []srcState      // per source domain
	dsts       []dstState      // per destination domain
	dirty      []atomic.Uint64 // src*dirtyWords + dst/64: pairs pushed since last merge
	dirtyWords int

	ringSlab []crossMsg // construction-time backing store for Reserve

	// deliverFn/deliverSelfFn are the kernel-wide delivery trampolines:
	// the event argument packs (dst<<32 | slot), so the 2*nd per-dst
	// closures collapse into two. Slot counts are bounded well below 2^32
	// (a window's injections, a self-post pool).
	deliverFn     func(uint64)
	deliverSelfFn func(uint64)

	// Coordinator state, touched only between quanta.
	cache       []pairScan
	activePairs []int32
	ringMin     []uint64 // per destination, rebuilt each quantum
	horizon     []uint64
	limits      []uint64
	runnable    []bool
	laneOf      []int
	lanes       [][]int
	laneHas     []bool
	gates       []laneGate
	tree        *joinTree
	leafCount   []int64
	panics      []any
	started     []bool
	stopping    bool
	spin        bool

	executedQuanta uint64
	windowsSkipped uint64
	undeliveredHW  uint64
}

// NewParallel returns a parallel kernel with the given number of logical
// domains and the conservative lookahead (minimum cross-domain delivery
// latency, in ticks). workers requests the number of concurrent
// execution lanes; it is clamped to [1, domains] and to GOMAXPROCS at
// Run time, and does not affect the dispatch order of any domain.
func NewParallel(domains int, lookahead uint64, workers int) *ParallelKernel {
	if domains <= 0 {
		panic(fmt.Sprintf("sim: NewParallel with %d domains", domains))
	}
	if lookahead == 0 {
		panic("sim: NewParallel with zero lookahead (no conservative window)")
	}
	dw := (domains + 63) / 64
	// Four per-domain uint64 arrays share one backing allocation; none of
	// them is ever appended to, so the capped sub-slices cannot collide.
	u := make([]uint64, 4*domains)
	karena := make([]Kernel, domains) // block storage behind doms
	pk := &ParallelKernel{
		doms:       make([]*Kernel, domains),
		nd:         domains,
		lookahead:  lookahead,
		workers:    workers,
		weight:     u[0*domains : 1*domains : 1*domains],
		rings:      make([]pairRing, domains*domains),
		srcs:       make([]srcState, domains),
		dsts:       make([]dstState, domains),
		dirty:      make([]atomic.Uint64, domains*dw),
		dirtyWords: dw,
		cache:      make([]pairScan, domains*domains),
		ringMin:    u[1*domains : 2*domains : 2*domains],
		horizon:    u[2*domains : 3*domains : 3*domains],
		limits:     u[3*domains : 4*domains : 4*domains],
		runnable:   make([]bool, domains),
	}
	// Every (src, dst) pair can be active at once; full capacity up front
	// keeps mergeDirty's append from growing the slice mid-run.
	pk.activePairs = make([]int32, 0, domains*domains)
	pk.deliverFn = func(a uint64) {
		m := &pk.dsts[a>>32].inj[uint32(a)]
		m.fn(m.a0, m.a1, m.a2, m.a3)
	}
	pk.deliverSelfFn = func(a uint64) {
		ds := &pk.dsts[a>>32]
		i := uint32(a)
		m := ds.self[i]
		ds.self[i] = crossMsg{}
		ds.selfFree = append(ds.selfFree, int32(i))
		m.fn(m.a0, m.a1, m.a2, m.a3)
	}
	// Every dst's drain list holds at most nd-1 sources; carving them all
	// from one block removes the per-quantum rebuild's growth appends.
	df := make([]drainSrc, domains*domains)
	// Seed every domain kernel's event slab from one shared block: each
	// kernel's first grab otherwise allocates its own slab, the largest
	// per-domain setup cost left. Regions are multiples of the slab unit
	// (bucketChunk events), which keeps domain boundaries cache-line
	// aligned for any sane event size, so lanes never false-share slab
	// storage.
	const slabPer = bucketChunk * slabBuckets
	slabs := make([]event, domains*slabPer)
	for d := range pk.doms {
		pk.doms[d] = &karena[d]
		karena[d].dom = d
		karena[d].events.slab = slabs[d*slabPer : d*slabPer : (d+1)*slabPer]
		pk.weight[d] = 1
		ds := &pk.dsts[d]
		ds.pendMin = ^uint64(0)
		ds.drainFrom = df[d*domains : d*domains : (d+1)*domains]
	}
	return pk
}

// Domains reports the number of logical domains.
func (pk *ParallelKernel) Domains() int { return pk.nd }

// Domain returns the sequential kernel of logical domain d. Model state
// pinned to a domain must schedule exclusively on its kernel.
func (pk *ParallelKernel) Domain(d int) *Kernel { return pk.doms[d] }

// Lookahead reports the conservative window width in ticks.
func (pk *ParallelKernel) Lookahead() uint64 { return pk.lookahead }

// SetDomainWeight biases the static domain-to-lane assignment: Run
// packs domains onto lanes greedily by descending weight (longest-
// processing-time heuristic), so marking a hub domain heavier than the
// core domains it serves spreads the real work across lanes instead of
// hashing domain indexes. Weights only affect wall-clock lane balance,
// never dispatch order. The default weight is 1.
func (pk *ParallelKernel) SetDomainWeight(d int, weight uint64) {
	if weight == 0 {
		weight = 1
	}
	pk.weight[d] = weight
}

// Reserve preallocates the (src, dst) pair ring's buffer from a shared
// construction-time slab. Rings normally allocate lazily on first push;
// a fabric that knows its communication topology (every core talks to
// every hub and vice versa) reserves those pairs up front, collapsing
// one allocation per ring into one slab allocation per eight rings.
// Construction-time only: must not be called concurrently with Run.
func (pk *ParallelKernel) Reserve(src, dst int) {
	r := &pk.rings[src*pk.nd+dst]
	if r.buf != nil || src == dst {
		return
	}
	const slabRings = 32
	if cap(pk.ringSlab)-len(pk.ringSlab) < ringCap {
		pk.ringSlab = make([]crossMsg, 0, slabRings*ringCap)
	}
	n := len(pk.ringSlab)
	pk.ringSlab = pk.ringSlab[:n+ringCap]
	r.buf = pk.ringSlab[n : n+ringCap : n+ringCap]
	// A reserved pair is one that will see traffic: presize the dst's
	// staging arrays to the shrink floor now, carved from the same slab,
	// collapsing the run-time append-growth chain. The shrink guard never
	// trims below the floor, so the carved arrays are stable; growth past
	// the floor falls back to ordinary append reallocation.
	ds := &pk.dsts[dst]
	if cap(ds.pend) < crossShrinkFloor {
		ds.pend = pk.carveStage()
	}
	if cap(ds.inj) < crossShrinkFloor {
		ds.inj = pk.carveStage()
	}
}

// carveStage cuts one zero-length, floor-capacity staging array from the
// construction-time slab.
func (pk *ParallelKernel) carveStage() []crossMsg {
	if cap(pk.ringSlab)-len(pk.ringSlab) < crossShrinkFloor {
		pk.ringSlab = make([]crossMsg, 0, 32*ringCap)
	}
	n := len(pk.ringSlab)
	pk.ringSlab = pk.ringSlab[:n+crossShrinkFloor]
	return pk.ringSlab[n:n : n+crossShrinkFloor]
}

// Workers reports the effective lane count Run will use.
func (pk *ParallelKernel) Workers() int {
	w := pk.workers
	if w < 1 {
		w = 1
	}
	if w > pk.nd {
		w = pk.nd
	}
	if mp := runtime.GOMAXPROCS(0); w > mp {
		w = mp
	}
	return w
}

// Post buffers a cross-domain event: fn(a0..a3) will run in domain dst at
// the absolute tick given. The tick must be at least lookahead past the
// source domain's clock — that is the conservative contract every
// cross-domain path (bus hop + serialization) satisfies by construction;
// violating it would let a quantum observe a message sent within it, so
// Post panics loudly instead. Must be called from the lane executing the
// source domain (or before Run).
func (pk *ParallelKernel) Post(src, dst int, tick uint64, fn func(a0, a1, a2, a3 uint64), a0, a1, a2, a3 uint64) {
	if fn == nil {
		panic("sim: cross-domain post with nil fn")
	}
	k := pk.doms[src]
	if tick < k.now+pk.lookahead {
		panic(fmt.Sprintf("sim: cross-domain post from %d to %d at tick %d violates lookahead %d (src now %d)",
			src, dst, tick, pk.lookahead, k.now))
	}
	s := &pk.srcs[src]
	s.seq++
	m := crossMsg{
		tick: tick, seq: s.seq, src: int32(src), dst: int32(dst),
		fn: fn, a0: a0, a1: a1, a2: a2, a3: a3,
	}
	if src == dst {
		// Same-kernel delivery needs no synchronization: schedule
		// directly through a pooled slot. Deterministic — the posting
		// event itself is part of the domain's canonical stream.
		ds := &pk.dsts[dst]
		var i int32
		if n := len(ds.selfFree); n > 0 {
			i = ds.selfFree[n-1]
			ds.selfFree = ds.selfFree[:n-1]
			ds.self[i] = m
		} else {
			i = int32(len(ds.self))
			ds.self = append(ds.self, m)
		}
		k.AtFunc(tick, pk.deliverSelfFn, uint64(dst)<<32|uint64(uint32(i)))
		ds.injected++
		return
	}
	if !pk.rings[src*pk.nd+dst].push(m) {
		s.spill = append(s.spill, m)
		s.spilled++
	}
	// Mark the pair dirty so the coordinator (re)activates it at the
	// next merge. The word is written only by this source's lane during
	// quanta and only by the coordinator between quanta, so a plain
	// load/store pair is race-free under the gate/join ordering.
	wd := &pk.dirty[src*pk.dirtyWords+dst>>6]
	wd.Store(wd.Load() | 1<<(uint(dst)&63))
}

// addClamp returns a+b saturated at the top of the tick range, so
// far-future horizons (open-loop arrivals, deadline sentinels) never
// wrap into the past.
func addClamp(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return ^uint64(0)
	}
	return s
}

// mergeDirty folds the per-source dirty bitmaps into the active-pair
// list. Coordinator-only, between quanta.
func (pk *ParallelKernel) mergeDirty() {
	nd := pk.nd
	for src := 0; src < nd; src++ {
		for w := 0; w < pk.dirtyWords; w++ {
			wd := &pk.dirty[src*pk.dirtyWords+w]
			v := wd.Load()
			if v == 0 {
				continue
			}
			wd.Store(0)
			for v != 0 {
				dst := w*64 + bits.TrailingZeros64(v)
				v &= v - 1
				p := int32(src*nd + dst)
				if !pk.cache[p].act {
					pk.cache[p].act = true
					pk.activePairs = append(pk.activePairs, p)
				}
			}
		}
	}
}

// moveSpills transfers ring-overflow messages into their destinations'
// pend stages. Coordinator-only, between quanta — the destination lanes
// are parked, so appending to pend is safe.
func (pk *ParallelKernel) moveSpills() {
	for s := range pk.srcs {
		sp := pk.srcs[s].spill
		for i := range sp {
			m := &sp[i]
			ds := &pk.dsts[m.dst]
			ds.pend = append(ds.pend, *m)
			if m.tick < ds.pendMin {
				ds.pendMin = m.tick
			}
		}
		pk.srcs[s].spill = shrinkCross(sp[:0])
	}
}

// scanPairs refreshes the coordinator's view of every active ring:
// per-destination minimum buffered tick (into pk.ringMin) and the total
// undelivered count (returned). Pairs observed empty are deactivated.
func (pk *ParallelKernel) scanPairs() uint64 {
	nd := pk.nd
	for d := 0; d < nd; d++ {
		pk.ringMin[d] = ^uint64(0)
	}
	var und uint64
	for i := 0; i < len(pk.activePairs); {
		p := pk.activePairs[i]
		r := &pk.rings[p]
		h := r.head.Load()
		t := r.tail.Load()
		if h == t {
			pk.cache[p].act = false
			last := len(pk.activePairs) - 1
			pk.activePairs[i] = pk.activePairs[last]
			pk.activePairs = pk.activePairs[:last]
			continue
		}
		c := &pk.cache[p]
		if c.head != h || c.tail != t {
			min := ^uint64(0)
			for x := h; x != t; x++ {
				if tk := r.buf[x&ringMask].tick; tk < min {
					min = tk
				}
			}
			c.head, c.tail, c.min = h, t, min
		}
		dst := int(p) % nd
		if c.min < pk.ringMin[dst] {
			pk.ringMin[dst] = c.min
		}
		und += t - h
		i++
	}
	return und
}

// injectDomain runs on the lane owning destination d at its quantum
// start: drain the coordinator-listed ring counts into pend, split out
// the messages due in this window, sort them canonically, and schedule
// them. The canonical (tick, srcDomain, srcSeq) sort is what makes the
// destination's sequence assignment — and therefore its dispatch trace —
// independent of lane count and of the ring/spill/pend path each message
// happened to take.
func (pk *ParallelKernel) injectDomain(d int, limit uint64) {
	ds := &pk.dsts[d]
	pend := ds.pend
	for _, df := range ds.drainFrom {
		pend = pk.rings[int(df.src)*pk.nd+d].drainN(pend, uint64(df.n))
	}
	inj := ds.inj
	if cap(inj) > crossShrinkFloor && len(inj)*4 < cap(inj) {
		inj = shrinkCross(inj)
	}
	inj = inj[:0]
	w := 0
	pmin := ^uint64(0)
	for i := range pend {
		if pend[i].tick <= limit {
			inj = append(inj, pend[i])
		} else {
			pend[w] = pend[i]
			if pend[i].tick < pmin {
				pmin = pend[i].tick
			}
			w++
		}
	}
	pend = pend[:w]
	ds.pend = shrinkCross(pend)
	ds.pendMin = pmin
	if len(inj) == 0 {
		ds.inj = inj
		return
	}
	// Insertion sort: windows carry a handful of messages, and the sort
	// runs allocation-free on the destination's own lane.
	for i := 1; i < len(inj); i++ {
		e := inj[i]
		j := i - 1
		for j >= 0 && crossLess(&e, &inj[j]) {
			inj[j+1] = inj[j]
			j--
		}
		inj[j+1] = e
	}
	k := pk.doms[d]
	hi := uint64(d) << 32
	for i := range inj {
		k.AtFunc(inj[i].tick, pk.deliverFn, hi|uint64(uint32(i)))
	}
	ds.injected += uint64(len(inj))
	ds.inj = inj
}

// runLane executes every runnable domain assigned to lane, injecting
// staged cross messages first.
func (pk *ParallelKernel) runLane(lane int) {
	for _, d := range pk.lanes[lane] {
		if !pk.runnable[d] {
			continue
		}
		limit := pk.limits[d]
		pk.injectDomain(d, limit)
		pk.doms[d].RunUntil(limit)
	}
}

func (pk *ParallelKernel) runLaneRecover(lane int) {
	defer func() { pk.panics[lane] = recover() }()
	pk.runLane(lane)
}

// laneLoop is one persistent worker lane: woken by its gate for quanta
// in which it has runnable domains, it executes them and arrives at the
// join tree. The stop flag is published before the final wake.
func (pk *ParallelKernel) laneLoop(lane int) {
	last := uint64(0)
	for {
		gen := pk.gates[lane].wait(last, pk.spin)
		last = gen
		if pk.stopping {
			return
		}
		pk.runLaneRecover(lane)
		pk.tree.arrive(lane)
	}
}

// assignLanes builds the static domain-to-lane map: greedy longest-
// processing-time packing by descending weight (ties broken by domain
// index, lanes by index), so the assignment is deterministic and heavy
// domains (hubs) land on distinct lanes before light ones fill in.
func (pk *ParallelKernel) assignLanes(w int) {
	nd := pk.nd
	// One backing block serves the order scratch, the lane map, and the
	// per-lane domain lists (each lane's list is capped at nd, carved
	// after the packing pass once the counts are known).
	ints := make([]int, 3*nd)
	order := ints[0*nd : 1*nd : 1*nd]
	laneDoms := ints[2*nd : 2*nd : 3*nd]
	pk.laneOf = ints[1*nd : 2*nd : 2*nd]
	for d := range order {
		order[d] = d
	}
	// Insertion sort by (weight desc, domain asc).
	for i := 1; i < nd; i++ {
		e := order[i]
		j := i - 1
		for j >= 0 && pk.weight[order[j]] < pk.weight[e] {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = e
	}
	pk.lanes = make([][]int, w)
	load := make([]uint64, w)
	for _, d := range order {
		best := 0
		for l := 1; l < w; l++ {
			if load[l] < load[best] {
				best = l
			}
		}
		load[best] += pk.weight[d]
		pk.laneOf[d] = best
	}
	// Carve each lane's list from the shared block and fill by domain
	// index order.
	counts := load // reuse: per-lane counts
	for l := range counts {
		counts[l] = 0
	}
	for d := 0; d < nd; d++ {
		counts[pk.laneOf[d]]++
	}
	off := 0
	for l := 0; l < w; l++ {
		n := int(counts[l])
		pk.lanes[l] = laneDoms[off : off : off+n]
		off += n
	}
	for d := 0; d < nd; d++ {
		l := pk.laneOf[d]
		pk.lanes[l] = append(pk.lanes[l], d)
	}
	// Execute each lane's domains in index order (order within a lane
	// cannot affect any trace; this just keeps runs tidy to reason
	// about).
	for l := range pk.lanes {
		ds := pk.lanes[l]
		for i := 1; i < len(ds); i++ {
			e := ds[i]
			j := i - 1
			for j >= 0 && ds[j] > e {
				ds[j+1] = ds[j]
				j--
			}
			ds[j+1] = e
		}
	}
}

// Run drives every domain to completion under conservative per-domain
// window synchronization (see the file comment for the window bound and
// its safety argument). Run returns when no domain has pending events
// and no messages are in flight; domain clocks are then normalized to
// the last dispatched tick so per-domain time integrals (line occupancy)
// cover a common window.
//
// A panic inside any domain (watchdog deadline, model invariant) is
// re-raised on the calling goroutine after all lanes have parked.
func (pk *ParallelKernel) Run() {
	nd := pk.nd
	w := pk.Workers()
	pk.assignLanes(w)
	pk.gates = make([]laneGate, w)
	for i := range pk.gates {
		pk.gates[i].init()
	}
	pk.tree = newJoinTree(w)
	pk.leafCount = make([]int64, (w+joinRadix-1)/joinRadix)
	pk.panics = make([]any, w)
	pk.laneHas = make([]bool, w)
	pk.started = make([]bool, w)
	pk.stopping = false
	pk.spin = w > 1

	defer func() {
		pk.stopping = true
		for i := 1; i < w; i++ {
			if pk.started[i] {
				pk.gates[i].wake(^uint64(0))
			}
		}
	}()

	la := pk.lookahead
	q := uint64(0)
	for {
		// ---- coordinator phase: all lanes parked ----
		pk.mergeDirty()
		pk.moveSpills()
		und := pk.scanPairs()

		// Per-domain horizons and the global minimum.
		H0 := ^uint64(0)
		for d := 0; d < nd; d++ {
			h := ^uint64(0)
			if t, ok := pk.doms[d].NextTick(); ok {
				h = t
			}
			if pm := pk.dsts[d].pendMin; pm < h {
				h = pm
			}
			if rm := pk.ringMin[d]; rm < h {
				h = rm
			}
			pk.horizon[d] = h
			if h < H0 {
				H0 = h
			}
			und += uint64(len(pk.dsts[d].pend))
		}
		if H0 == ^uint64(0) {
			break
		}
		if und > pk.undeliveredHW {
			pk.undeliveredHW = und
		}

		// Two smallest horizons, for the min-excluding-self term.
		min1, min2 := ^uint64(0), ^uint64(0)
		arg1 := -1
		for d := 0; d < nd; d++ {
			h := pk.horizon[d]
			if h < min1 {
				min2 = min1
				min1, arg1 = h, d
			} else if h < min2 {
				min2 = h
			}
		}

		feedback := addClamp(H0, 2*la)
		for d := 0; d < nd; d++ {
			h := pk.horizon[d]
			if h == ^uint64(0) {
				pk.runnable[d] = false
				continue
			}
			other := min1
			if d == arg1 {
				other = min2
			}
			lim := addClamp(other, la)
			if feedback < lim {
				lim = feedback
			}
			if lim != ^uint64(0) {
				lim--
			}
			pk.limits[d] = lim
			if h <= lim {
				pk.runnable[d] = true
			} else {
				pk.runnable[d] = false
				pk.windowsSkipped++
			}
		}
		pk.executedQuanta++

		// Per-quantum drain lists for the runnable destinations: exactly
		// the ring counts snapshotted above, so the drained set is
		// timing-independent.
		for d := 0; d < nd; d++ {
			if pk.runnable[d] {
				pk.dsts[d].drainFrom = pk.dsts[d].drainFrom[:0]
			}
		}
		for _, p := range pk.activePairs {
			dst := int(p) % nd
			if !pk.runnable[dst] {
				continue
			}
			c := &pk.cache[p]
			if n := c.tail - c.head; n > 0 {
				pk.dsts[dst].drainFrom = append(pk.dsts[dst].drainFrom,
					drainSrc{src: int32(int(p) / nd), n: int32(n)})
			}
		}

		// ---- execution phase ----
		inline := true
		for l := range pk.laneHas {
			pk.laneHas[l] = false
		}
		for d := 0; d < nd; d++ {
			if pk.runnable[d] {
				l := pk.laneOf[d]
				if !pk.laneHas[l] {
					pk.laneHas[l] = true
					if l != 0 {
						inline = false
					}
				}
			}
		}
		q++
		if inline {
			// Quanta confined to the coordinator's lane skip the gate
			// and tree entirely — serial phases cost no synchronization.
			pk.runLane(0)
			continue
		}
		for i := range pk.leafCount {
			pk.leafCount[i] = 0
		}
		for l := 1; l < w; l++ {
			if pk.laneHas[l] {
				pk.leafCount[l/joinRadix]++
			}
		}
		pk.tree.reset(pk.leafCount, q)
		for l := 1; l < w; l++ {
			if pk.laneHas[l] {
				if !pk.started[l] {
					pk.started[l] = true
					go pk.laneLoop(l)
				}
				pk.gates[l].wake(q)
			}
		}
		if pk.laneHas[0] {
			pk.runLaneRecover(0)
		}
		pk.tree.await(q, pk.spin)
		for l := 0; l < w; l++ {
			if pv := pk.panics[l]; pv != nil {
				panic(pv)
			}
		}
	}

	// Normalize domain clocks so cross-domain time integrals share one
	// end-of-run instant. Queues are empty, so RunUntil only moves now.
	end := pk.LastEventTick()
	for _, k := range pk.doms {
		if k.Now() < end {
			k.RunUntil(end)
		}
	}
}

// LastEventTick reports the latest tick at which any domain dispatched an
// event — the parallel run's end-to-end execution time.
func (pk *ParallelKernel) LastEventTick() uint64 {
	var max uint64
	for _, k := range pk.doms {
		if t := k.LastEventTick(); t > max {
			max = t
		}
	}
	return max
}

// Executed sums dispatched events over all domains.
func (pk *ParallelKernel) Executed() uint64 {
	var n uint64
	for _, k := range pk.doms {
		n += k.Executed()
	}
	return n
}

// LiveProcs sums unfinished processes over all domains.
func (pk *ParallelKernel) LiveProcs() int {
	n := 0
	for _, k := range pk.doms {
		n += k.LiveProcs()
	}
	return n
}

// Quanta reports how many synchronization windows Run executed
// (diagnostics: barrier-rate tuning).
func (pk *ParallelKernel) Quanta() uint64 { return pk.executedQuanta }

// WindowsSkipped reports how many (domain, quantum) rendezvous were
// skipped because the domain's horizon lay beyond its window — the
// barrier-skip effectiveness counter.
func (pk *ParallelKernel) WindowsSkipped() uint64 { return pk.windowsSkipped }

// CrossMessages reports how many cross-domain messages were delivered.
func (pk *ParallelKernel) CrossMessages() uint64 {
	var n uint64
	for d := range pk.dsts {
		n += pk.dsts[d].injected
	}
	return n
}

// Spilled reports how many messages overflowed their pair ring into the
// spill path. Unlike Stats, the split between ring and spill can depend
// on drain timing within a quantum, so this is a diagnostic only.
func (pk *ParallelKernel) Spilled() uint64 {
	var n uint64
	for s := range pk.srcs {
		n += pk.srcs[s].spilled
	}
	return n
}

// UndeliveredHighWater reports the maximum number of posted-but-
// undelivered cross messages observed at any quantum boundary.
func (pk *ParallelKernel) UndeliveredHighWater() uint64 { return pk.undeliveredHW }

// Stats returns the deterministic telemetry counters for this run.
func (pk *ParallelKernel) Stats() ParallelStats {
	return ParallelStats{
		Quanta:         pk.executedQuanta,
		WindowsSkipped: pk.windowsSkipped,
		CrossMessages:  pk.CrossMessages(),
		UndeliveredHW:  pk.undeliveredHW,
	}
}

// CrossCapacity reports the total staging capacity (pend, inj, spill
// slices) currently held across all domains — the memory high-water
// diagnostic the shrink regression test bounds after a burst-then-idle
// run. Ring buffers are fixed-capacity and excluded.
func (pk *ParallelKernel) CrossCapacity() int {
	n := 0
	for d := range pk.dsts {
		n += cap(pk.dsts[d].pend) + cap(pk.dsts[d].inj)
	}
	for s := range pk.srcs {
		n += cap(pk.srcs[s].spill)
	}
	return n
}

// SetDeadline arms the watchdog on every domain kernel.
func (pk *ParallelKernel) SetDeadline(t uint64) {
	for _, k := range pk.doms {
		k.SetDeadline(t)
	}
}

// Drain releases parked processes in every domain (abandoned runs).
func (pk *ParallelKernel) Drain() {
	for _, k := range pk.doms {
		k.Drain()
	}
}

// ---------------------------------------------------------------------
// Dispatch-trace hashing.
// ---------------------------------------------------------------------

// TraceOffset is the FNV-1a offset basis trace hashes start from.
const TraceOffset uint64 = 14695981039346656037

// TraceFold folds one (tick, seq) pair into an FNV-1a style hash without
// allocating — the same byte-wise fold the golden-trace tests use.
func TraceFold(h, tick, seq uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h = (h ^ (tick >> (8 * i) & 0xff)) * prime
	}
	for i := 0; i < 8; i++ {
		h = (h ^ (seq >> (8 * i) & 0xff)) * prime
	}
	return h
}

// ParallelTrace accumulates one dispatch-trace hash per domain. Each
// domain's observer writes only its own slot, so tracing is safe under
// concurrent lane execution; Sum folds the per-domain streams in domain
// order into one run hash that is invariant across worker counts.
type ParallelTrace struct {
	h []uint64
}

// InstallTrace attaches dispatch observers to every domain kernel and
// returns the accumulating trace. Call before Run.
func (pk *ParallelKernel) InstallTrace() *ParallelTrace {
	t := &ParallelTrace{h: make([]uint64, len(pk.doms))}
	for d := range pk.doms {
		d := d
		t.h[d] = TraceOffset
		pk.doms[d].SetDispatchObserver(func(tick, seq uint64) {
			t.h[d] = TraceFold(t.h[d], tick, seq)
		})
	}
	return t
}

// DomainHash reports the accumulated hash of one domain's dispatch
// stream.
func (t *ParallelTrace) DomainHash(d int) uint64 { return t.h[d] }

// Sum folds the per-domain hashes, tagged with their domain index, into
// one run hash.
func (t *ParallelTrace) Sum() uint64 {
	h := TraceOffset
	for d, dh := range t.h {
		h = TraceFold(h, uint64(d), dh)
	}
	return h
}
