package sim

// This file implements conservative (quantum-synchronized) parallel
// discrete-event simulation over a fixed set of logical domains, in the
// style of parti-gem5: each domain is an independent sequential Kernel,
// and domains only interact through cross-domain messages that arrive at
// least `lookahead` ticks after they are sent. That bound makes every
// event in the window [T, T+lookahead) safe to dispatch without seeing
// any message produced elsewhere during the same window, so the domains
// of a quantum can run concurrently and still dispatch the exact event
// sequence a serial execution of the same model would.
//
// Determinism is preserved by construction, not by luck:
//
//   - The set of logical domains is fixed by the model, never by the
//     worker count. Workers are execution lanes; a domain's event stream
//     is a function of the model alone.
//   - Cross-domain messages are buffered in per-source outboxes during a
//     quantum (single-writer: only the goroutine executing the source
//     domain appends) and merged at the barrier in global
//     (tick, srcDomain, srcSeq) order. Injection assigns destination
//     sequence numbers in that canonical order, so same-tick deliveries
//     at a destination dispatch identically regardless of how many
//     workers ran the previous quantum.
//   - Message payloads are four packed uint64 words delivered through a
//     per-domain slot pool, so steady-state cross-domain traffic
//     schedules without per-message closures.
//
// The coordinator jumps each quantum start to the global minimum pending
// tick, so long idle gaps (a simulation phase where one domain runs far
// ahead) cost one barrier, not one barrier per lookahead window.

import (
	"fmt"
	"runtime"
)

// crossMsg is one buffered cross-domain event: a bound callback plus four
// packed argument words, stamped with its delivery tick and a per-source
// sequence number that makes the global merge order total.
type crossMsg struct {
	tick uint64
	seq  uint64 // per-source monotone counter
	src  int32
	dst  int32
	fn   func(a0, a1, a2, a3 uint64)
	a0   uint64
	a1   uint64
	a2   uint64
	a3   uint64
}

// outLane is one source domain's cross-message staging area: the
// quantum-local outbox plus the per-source sequence counter that makes
// the barrier merge order total. Each lane is written only by the
// goroutine executing its source domain, so lanes are padded to a full
// host cache line — two lanes appending concurrently from different
// worker cores must not false-share the slice headers and counters.
type outLane struct {
	buf []crossMsg // filled during a quantum, drained at the barrier
	seq uint64     // per-source message counter
	_   [64 - (3*8+8)%64]byte
}

// inboxPool holds injected-but-undelivered cross messages of one
// destination domain. Slots are recycled through a free list so the
// steady state allocates nothing; the pool is written by the coordinator
// (at barriers) and read by the domain's executing goroutine (during
// quanta), which the fork/join channel handoffs order. The pad keeps
// neighbouring pools on distinct host cache lines for the same reason as
// outLane: each pool's slices are chased by a different worker core.
type inboxPool struct {
	slots []crossMsg
	free  []int32
	_     [64 - (2*3*8)%64]byte
}

func (ib *inboxPool) put(m crossMsg) uint64 {
	if n := len(ib.free); n > 0 {
		i := ib.free[n-1]
		ib.free = ib.free[:n-1]
		ib.slots[i] = m
		return uint64(i)
	}
	ib.slots = append(ib.slots, m)
	return uint64(len(ib.slots) - 1)
}

// inboxShrinkFloor is the slot count below which a pool is never trimmed:
// small pools are noise, and keeping a modest floor avoids regrow churn
// right after a shrink.
const inboxShrinkFloor = 64

// shrink trims the pool once occupancy falls below a quarter of the
// grown size, so one incast storm does not inflate a long-lived kernel
// forever. Called only at quantum barriers (before injection), when no
// lane is executing. Occupied slots cannot move — scheduled deliveries
// hold their indexes — so the trim drops free slots from the tail:
// deliverSlot zeroes a slot's fn on release, making fn == nil the
// free-slot marker. An idle pool (occupancy 0) releases its arrays
// entirely.
func (ib *inboxPool) shrink() {
	n := len(ib.slots)
	if n <= inboxShrinkFloor {
		return
	}
	occ := n - len(ib.free)
	if occ*4 >= n {
		return
	}
	if occ == 0 {
		ib.slots, ib.free = nil, nil
		return
	}
	for n > inboxShrinkFloor && n > occ*2 && ib.slots[n-1].fn == nil {
		n--
	}
	if n == len(ib.slots) {
		return
	}
	slots := make([]crossMsg, n)
	copy(slots, ib.slots[:n])
	ib.slots = slots
	w := 0
	for _, f := range ib.free {
		if int(f) < n {
			ib.free[w] = f
			w++
		}
	}
	free := make([]int32, w)
	copy(free, ib.free[:w])
	ib.free = free
}

// ParallelKernel runs a fixed set of domain kernels under conservative
// quantum synchronization. Construct with NewParallel, attach model state
// to the per-domain kernels (Domain), and drive with Run.
type ParallelKernel struct {
	doms      []*Kernel
	lookahead uint64
	workers   int // requested lanes; clamped to [1, len(doms)] and GOMAXPROCS

	out    []outLane   // per source domain, single-writer during a quantum
	inbox  []inboxPool // per destination domain
	inbFns []func(uint64)

	merged []crossMsg // barrier scratch, reused

	lanes   [][]int // lane index -> domains it executes
	laneRun []bool  // per-lane "has work this quantum" scratch

	executedQuanta uint64
	mergedMsgs     uint64
}

// NewParallel returns a parallel kernel with the given number of logical
// domains and the conservative lookahead (minimum cross-domain delivery
// latency, in ticks). workers requests the number of concurrent
// execution lanes; it is clamped to [1, domains] and to GOMAXPROCS at
// Run time, and does not affect the dispatch order of any domain.
func NewParallel(domains int, lookahead uint64, workers int) *ParallelKernel {
	if domains <= 0 {
		panic(fmt.Sprintf("sim: NewParallel with %d domains", domains))
	}
	if lookahead == 0 {
		panic("sim: NewParallel with zero lookahead (no conservative window)")
	}
	pk := &ParallelKernel{
		doms:      make([]*Kernel, domains),
		lookahead: lookahead,
		workers:   workers,
		out:       make([]outLane, domains),
		inbox:     make([]inboxPool, domains),
		inbFns:    make([]func(uint64), domains),
	}
	for d := range pk.doms {
		pk.doms[d] = New()
		d := d
		pk.inbFns[d] = func(slot uint64) { pk.deliverSlot(d, slot) }
	}
	return pk
}

// Domains reports the number of logical domains.
func (pk *ParallelKernel) Domains() int { return len(pk.doms) }

// Domain returns the sequential kernel of logical domain d. Model state
// pinned to a domain must schedule exclusively on its kernel.
func (pk *ParallelKernel) Domain(d int) *Kernel { return pk.doms[d] }

// Lookahead reports the conservative window width in ticks.
func (pk *ParallelKernel) Lookahead() uint64 { return pk.lookahead }

// Workers reports the effective lane count Run will use.
func (pk *ParallelKernel) Workers() int {
	w := pk.workers
	if w < 1 {
		w = 1
	}
	if w > len(pk.doms) {
		w = len(pk.doms)
	}
	if mp := runtime.GOMAXPROCS(0); w > mp {
		w = mp
	}
	return w
}

// deliverSlot dispatches one injected cross message in its destination
// domain, releasing the slot for reuse.
func (pk *ParallelKernel) deliverSlot(d int, slot uint64) {
	ib := &pk.inbox[d]
	m := ib.slots[slot]
	ib.slots[slot] = crossMsg{} // release fn reference
	ib.free = append(ib.free, int32(slot))
	m.fn(m.a0, m.a1, m.a2, m.a3)
}

// Post buffers a cross-domain event: fn(a0..a3) will run in domain dst at
// the absolute tick given. The tick must be at least lookahead past the
// source domain's clock — that is the conservative contract every
// cross-domain path (bus hop + serialization) satisfies by construction;
// violating it would let a quantum observe a message sent within it, so
// Post panics loudly instead.
func (pk *ParallelKernel) Post(src, dst int, tick uint64, fn func(a0, a1, a2, a3 uint64), a0, a1, a2, a3 uint64) {
	if fn == nil {
		panic("sim: cross-domain post with nil fn")
	}
	k := pk.doms[src]
	if tick < k.now+pk.lookahead {
		panic(fmt.Sprintf("sim: cross-domain post from %d to %d at tick %d violates lookahead %d (src now %d)",
			src, dst, tick, pk.lookahead, k.now))
	}
	lane := &pk.out[src]
	lane.seq++
	lane.buf = append(lane.buf, crossMsg{
		tick: tick, seq: lane.seq, src: int32(src), dst: int32(dst),
		fn: fn, a0: a0, a1: a1, a2: a2, a3: a3,
	})
}

// minNextTick scans the domains for the earliest pending event.
func (pk *ParallelKernel) minNextTick() (uint64, bool) {
	var min uint64
	found := false
	for _, k := range pk.doms {
		if t, ok := k.NextTick(); ok && (!found || t < min) {
			min = t
			found = true
		}
	}
	return min, found
}

// runDomains executes every listed domain that has work in the quantum
// window, up to (and including) the inclusive limit tick. Taking the
// window end as an inclusive bound — rather than an exclusive horizon
// that callers subtract one from — keeps the arithmetic safe for
// far-future open-loop arrivals near the top of the uint64 tick range.
func (pk *ParallelKernel) runDomains(doms []int, limit uint64) {
	for _, d := range doms {
		k := pk.doms[d]
		if t, ok := k.NextTick(); ok && t <= limit {
			k.RunUntil(limit)
		}
	}
}

// mergeOutboxes drains every source outbox, sorts the union by
// (tick, srcDomain, srcSeq), and injects each message into its
// destination kernel. Injection order fixes the destination sequence
// numbers, so the canonical sort makes same-tick cross deliveries
// dispatch identically for every worker count.
func (pk *ParallelKernel) mergeOutboxes() {
	// Barrier point: no lane is executing, so inbox pools are safe to
	// trim. Shrinking before injection sees the post-quantum occupancy —
	// a storm's slots have just been delivered and freed.
	for d := range pk.inbox {
		pk.inbox[d].shrink()
	}
	m := pk.merged[:0]
	for src := range pk.out {
		m = append(m, pk.out[src].buf...)
		pk.out[src].buf = pk.out[src].buf[:0]
	}
	if len(m) == 0 {
		pk.merged = m
		return
	}
	// Insertion sort: merges are small (a handful of messages per
	// barrier) and this keeps the barrier allocation-free.
	for i := 1; i < len(m); i++ {
		e := m[i]
		j := i - 1
		for j >= 0 && crossLess(&e, &m[j]) {
			m[j+1] = m[j]
			j--
		}
		m[j+1] = e
	}
	for i := range m {
		msg := &m[i]
		slot := pk.inbox[msg.dst].put(*msg)
		pk.doms[msg.dst].AtFunc(msg.tick, pk.inbFns[msg.dst], slot)
		m[i] = crossMsg{} // release fn reference
	}
	pk.mergedMsgs += uint64(len(m))
	pk.merged = m[:0]
}

func crossLess(a, b *crossMsg) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// laneWorker is one persistent execution lane: it parks on req, runs its
// domains to the received window limit, and reports any recovered panic.
type laneWorker struct {
	req  chan uint64
	resp chan any
}

func (pk *ParallelKernel) laneLoop(w *laneWorker, doms []int) {
	for limit := range w.req {
		var pv any
		func() {
			defer func() { pv = recover() }()
			pk.runDomains(doms, limit)
		}()
		w.resp <- pv
	}
}

// Run drives every domain to completion under conservative quantum
// synchronization. Each iteration jumps to the global minimum pending
// tick T, runs all domains with work in [T, T+lookahead) — concurrently
// across lanes — then merges cross-domain messages at the barrier. Run
// returns when no domain has pending events and no messages are in
// flight; domain clocks are then normalized to the last dispatched tick
// so per-domain time integrals (line occupancy) cover a common window.
//
// A panic inside any domain (watchdog deadline, model invariant) is
// re-raised on the calling goroutine after all lanes have parked.
func (pk *ParallelKernel) Run() {
	nd := len(pk.doms)
	w := pk.Workers()

	// Static domain -> lane assignment: round-robin spreads the heavy
	// neighbouring domains (cores of one workload region) across lanes.
	pk.lanes = make([][]int, w)
	for d := 0; d < nd; d++ {
		pk.lanes[d%w] = append(pk.lanes[d%w], d)
	}
	pk.laneRun = make([]bool, w)

	// Lane 0 runs inline on the coordinator goroutine; lanes 1..w-1 get
	// persistent parked workers. Quanta where only one lane has work —
	// common during serial phases — then cost no channel handoffs at all.
	workers := make([]*laneWorker, w)
	for i := 1; i < w; i++ {
		lw := &laneWorker{req: make(chan uint64), resp: make(chan any, 1)}
		workers[i] = lw
		go pk.laneLoop(lw, pk.lanes[i])
	}
	defer func() {
		for i := 1; i < w; i++ {
			close(workers[i].req)
		}
	}()

	for {
		start, ok := pk.minNextTick()
		if !ok {
			break
		}
		// limit is the quantum window's inclusive end: [start, limit].
		// The unchecked form start+lookahead-1 wraps for far-future
		// open-loop arrivals near the top of the tick range, which would
		// either run domains unbounded (conservative violation) or mark
		// no lane runnable and livelock the barrier loop; clamp to the
		// end of time instead — no cross message can be scheduled past
		// it, so the final window is safe to run to completion.
		limit := start + (pk.lookahead - 1)
		if limit < start {
			limit = ^uint64(0)
		}
		pk.executedQuanta++

		// Mark lanes with work this quantum.
		inlineOnly := true
		for i := range pk.laneRun {
			pk.laneRun[i] = false
		}
		for d := 0; d < nd; d++ {
			if t, ok := pk.doms[d].NextTick(); ok && t <= limit {
				lane := d % w
				pk.laneRun[lane] = true
				if lane != 0 {
					inlineOnly = false
				}
			}
		}

		var firstPanic any
		if inlineOnly {
			pk.runDomains(pk.lanes[0], limit)
		} else {
			for i := 1; i < w; i++ {
				if pk.laneRun[i] {
					workers[i].req <- limit
				}
			}
			if pk.laneRun[0] {
				func() {
					defer func() {
						if r := recover(); r != nil {
							firstPanic = r
						}
					}()
					pk.runDomains(pk.lanes[0], limit)
				}()
			}
			for i := 1; i < w; i++ {
				if pk.laneRun[i] {
					if pv := <-workers[i].resp; pv != nil && firstPanic == nil {
						firstPanic = pv
					}
				}
			}
		}
		if firstPanic != nil {
			panic(firstPanic)
		}

		pk.mergeOutboxes()
	}

	// Normalize domain clocks so cross-domain time integrals share one
	// end-of-run instant. Queues are empty, so RunUntil only moves now.
	end := pk.LastEventTick()
	for _, k := range pk.doms {
		if k.Now() < end {
			k.RunUntil(end)
		}
	}
}

// LastEventTick reports the latest tick at which any domain dispatched an
// event — the parallel run's end-to-end execution time.
func (pk *ParallelKernel) LastEventTick() uint64 {
	var max uint64
	for _, k := range pk.doms {
		if t := k.LastEventTick(); t > max {
			max = t
		}
	}
	return max
}

// Executed sums dispatched events over all domains.
func (pk *ParallelKernel) Executed() uint64 {
	var n uint64
	for _, k := range pk.doms {
		n += k.Executed()
	}
	return n
}

// LiveProcs sums unfinished processes over all domains.
func (pk *ParallelKernel) LiveProcs() int {
	n := 0
	for _, k := range pk.doms {
		n += k.LiveProcs()
	}
	return n
}

// Quanta reports how many synchronization windows Run executed
// (diagnostics: barrier-rate tuning).
func (pk *ParallelKernel) Quanta() uint64 { return pk.executedQuanta }

// InboxSlots reports the total cross-message slots currently held across
// all destination pools — the memory high-water diagnostic the shrink
// regression test bounds after a burst-then-idle run.
func (pk *ParallelKernel) InboxSlots() int {
	n := 0
	for d := range pk.inbox {
		n += len(pk.inbox[d].slots)
	}
	return n
}

// CrossMessages reports how many cross-domain messages were merged.
func (pk *ParallelKernel) CrossMessages() uint64 { return pk.mergedMsgs }

// SetDeadline arms the watchdog on every domain kernel.
func (pk *ParallelKernel) SetDeadline(t uint64) {
	for _, k := range pk.doms {
		k.SetDeadline(t)
	}
}

// Drain releases parked processes in every domain (abandoned runs).
func (pk *ParallelKernel) Drain() {
	for _, k := range pk.doms {
		k.Drain()
	}
}

// ---------------------------------------------------------------------
// Dispatch-trace hashing.
// ---------------------------------------------------------------------

// TraceOffset is the FNV-1a offset basis trace hashes start from.
const TraceOffset uint64 = 14695981039346656037

// TraceFold folds one (tick, seq) pair into an FNV-1a style hash without
// allocating — the same byte-wise fold the golden-trace tests use.
func TraceFold(h, tick, seq uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h = (h ^ (tick >> (8 * i) & 0xff)) * prime
	}
	for i := 0; i < 8; i++ {
		h = (h ^ (seq >> (8 * i) & 0xff)) * prime
	}
	return h
}

// ParallelTrace accumulates one dispatch-trace hash per domain. Each
// domain's observer writes only its own slot, so tracing is safe under
// concurrent lane execution; Sum folds the per-domain streams in domain
// order into one run hash that is invariant across worker counts.
type ParallelTrace struct {
	h []uint64
}

// InstallTrace attaches dispatch observers to every domain kernel and
// returns the accumulating trace. Call before Run.
func (pk *ParallelKernel) InstallTrace() *ParallelTrace {
	t := &ParallelTrace{h: make([]uint64, len(pk.doms))}
	for d := range pk.doms {
		d := d
		t.h[d] = TraceOffset
		pk.doms[d].SetDispatchObserver(func(tick, seq uint64) {
			t.h[d] = TraceFold(t.h[d], tick, seq)
		})
	}
	return t
}

// DomainHash reports the accumulated hash of one domain's dispatch
// stream.
func (t *ParallelTrace) DomainHash(d int) uint64 { return t.h[d] }

// Sum folds the per-domain hashes, tagged with their domain index, into
// one run hash.
func (t *ParallelTrace) Sum() uint64 {
	h := TraceOffset
	for d, dh := range t.h {
		h = TraceFold(h, uint64(d), dh)
	}
	return h
}
