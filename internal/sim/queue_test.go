package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap replicate the seed kernel's container/heap event
// queue verbatim (minus the callback): the reference semantics the
// calendar queue must match pop-for-pop.
type refEvent struct {
	tick uint64
	seq  uint64
	id   int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestQueueMatchesSeedHeap drives the calendar queue and the seed
// reference heap through identical random schedules — delays spanning
// the same tick, the wheel window, and the calendar/heap handoff at 64
// ticks — and asserts they pop the exact same (tick, seq) sequence. Pops
// and pushes interleave so migration happens at every window position.
func TestQueueMatchesSeedHeap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q eventQueue
		var ref refHeap
		seq := uint64(0)
		now := uint64(0)
		pending := 0
		const ops = 5000
		for op := 0; op < ops; op++ {
			// Bias toward pushes early, drains late, so the queue both
			// grows deep and empties completely mid-run.
			pushBias := 60
			if op > ops*3/4 {
				pushBias = 30
			}
			if pending > 0 && rng.Intn(100) >= pushBias {
				e, ok := q.pop()
				if !ok {
					t.Fatalf("seed %d: pop failed with %d pending", seed, pending)
				}
				r := heap.Pop(&ref).(refEvent)
				if e.tick != r.tick || e.seq != r.seq {
					t.Fatalf("seed %d op %d: queue popped (%d,%d), reference (%d,%d)",
						seed, op, e.tick, e.seq, r.tick, r.seq)
				}
				if e.tick < now {
					t.Fatalf("seed %d: time went backwards: %d < %d", seed, e.tick, now)
				}
				now = e.tick
				pending--
				continue
			}
			// Delay distribution: heavy on 0..8 (device ticks), a band
			// around the 64-tick wheel boundary, and a far tail.
			var d uint64
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4:
				d = uint64(rng.Intn(9))
			case 5, 6:
				d = uint64(56 + rng.Intn(16)) // straddles wheelSize
			case 7, 8:
				d = uint64(rng.Intn(130))
			default:
				d = uint64(rng.Intn(5000))
			}
			seq++
			tick := now + d
			q.push(event{tick: tick, seq: seq})
			heap.Push(&ref, refEvent{tick: tick, seq: seq})
			pending++
		}
		// Drain what's left.
		for pending > 0 {
			e, ok := q.pop()
			if !ok {
				t.Fatalf("seed %d: drain pop failed with %d pending", seed, pending)
			}
			r := heap.Pop(&ref).(refEvent)
			if e.tick != r.tick || e.seq != r.seq {
				t.Fatalf("seed %d drain: queue popped (%d,%d), reference (%d,%d)",
					seed, e.tick, e.seq, r.tick, r.seq)
			}
			now = e.tick
			pending--
		}
		if q.len() != 0 || len(ref) != 0 {
			t.Fatalf("seed %d: leftovers: queue %d, reference %d", seed, q.len(), len(ref))
		}
	}
}

// TestKernelAtOrderingProperty guards the (tick, seq) contract through
// the public API under random interleavings: events scheduled from
// inside callbacks (the real scheduling pattern) at random deltas,
// including same-tick FIFO chains and cross-boundary deltas, must fire
// in nondecreasing tick order with same-tick FIFO. Runs under -race via
// make test-race.
func TestKernelAtOrderingProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		k := New()
		type fired struct {
			tick uint64
			id   int
		}
		var log []fired
		id := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth > 3 {
				return
			}
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				var d uint64
				switch rng.Intn(6) {
				case 0, 1:
					d = 0 // same-tick FIFO
				case 2, 3:
					d = uint64(rng.Intn(8))
				case 4:
					d = uint64(60 + rng.Intn(10)) // wheel boundary
				default:
					d = uint64(rng.Intn(1000))
				}
				myID := id
				id++
				tick := k.Now() + d
				k.At(tick, func() {
					log = append(log, fired{tick: tick, id: myID})
					schedule(depth + 1)
				})
			}
		}
		k.At(0, func() { schedule(0) })
		k.Run()
		if len(log) == 0 {
			t.Fatalf("seed %d: nothing fired", seed)
		}
		for i := 1; i < len(log); i++ {
			if log[i].tick < log[i-1].tick {
				t.Fatalf("seed %d: tick order violated at %d: %d after %d",
					seed, i, log[i].tick, log[i-1].tick)
			}
		}
		// Same-tick events must fire in scheduling order. id is assigned
		// in scheduling order globally, but only same-tick comparisons
		// are constrained (an event scheduled later may fire earlier at
		// an earlier tick).
		byTick := map[uint64]int{}
		for i, f := range log {
			if prev, ok := byTick[f.tick]; ok && f.id < prev {
				t.Fatalf("seed %d: same-tick FIFO violated at %d (tick %d): id %d after %d",
					seed, i, f.tick, f.id, prev)
			}
			byTick[f.tick] = f.id
		}
	}
}

// TestRunUntilWindowJump exercises the RunUntil fast-forward: advancing
// now far past pending far-heap events' entry into the wheel window must
// not lose or reorder them.
func TestRunUntilWindowJump(t *testing.T) {
	k := New()
	var got []uint64
	rec := func(tick uint64) func() {
		return func() { got = append(got, tick) }
	}
	k.At(10, rec(10))
	k.At(500, rec(500))
	k.At(530, rec(530))
	k.At(2000, rec(2000))
	k.RunUntil(480) // jump the window into the gap before 500
	if k.Now() != 480 {
		t.Fatalf("Now() = %d, want 480", k.Now())
	}
	k.At(490, rec(490)) // schedule inside the jumped-to window
	k.RunUntil(1000)
	k.Run()
	want := []uint64{10, 490, 500, 530, 2000}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
