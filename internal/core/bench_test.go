package core

import (
	"testing"

	"spamer/internal/mem"
)

// Per-prediction cost of each delay algorithm — the logic the SRD would
// run in hardware every speculation (Figure 6 shows the tuned one as a
// small combinational block; these stay in the tens of nanoseconds in
// software).
func BenchmarkSendTick(b *testing.B) {
	for _, alg := range ExtendedAlgorithms() {
		alg := alg
		b.Run(alg.Name(), func(b *testing.B) {
			b.ReportAllocs()
			st := alg.Initial()
			for i := 0; i < b.N; i++ {
				_ = alg.SendTick(&st, uint64(i)*7)
			}
		})
	}
}

func BenchmarkOnResponse(b *testing.B) {
	for _, alg := range ExtendedAlgorithms() {
		alg := alg
		b.Run(alg.Name(), func(b *testing.B) {
			b.ReportAllocs()
			st := alg.Initial()
			for i := 0; i < b.N; i++ {
				alg.OnResponse(&st, i%3 != 0, uint64(i)*11)
			}
		})
	}
}

// BenchmarkSpecBufSelect measures the Stage-2/3 lookup+writeback path.
func BenchmarkSpecBufSelect(b *testing.B) {
	buf := NewSpecBuf(64, ZeroDelay{})
	for i := 0; i < 4; i++ {
		if err := buf.Register(1, mem.Addr(0x1000*(i+1)), 8); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cookie, _, ok := buf.SelectTarget(1, uint64(i))
		if !ok {
			b.Fatal("select failed")
		}
		buf.OnResult(cookie, true, uint64(i))
	}
}
