package core

import (
	"testing"
	"testing/quick"

	"spamer/internal/config"
)

func TestZeroDelayImmediate(t *testing.T) {
	z := ZeroDelay{}
	st := z.Initial()
	for _, now := range []uint64{0, 100, 1 << 30} {
		if got := z.SendTick(&st, now); got != now {
			t.Fatalf("SendTick(%d) = %d", now, got)
		}
	}
	z.OnResponse(&st, false, 50)
	if got := z.SendTick(&st, 60); got != 60 {
		t.Fatalf("0-delay learned a delay: %d", got)
	}
}

func TestAdaptiveHalvesOnHit(t *testing.T) {
	a := Adaptive{InitialDelay: 64}
	st := a.Initial()
	a.OnResponse(&st, true, 100)
	if st.Delay != 32 {
		t.Fatalf("Delay = %d, want 32", st.Delay)
	}
	a.OnResponse(&st, true, 200)
	if st.Delay != 16 {
		t.Fatalf("Delay = %d, want 16", st.Delay)
	}
	if got := a.SendTick(&st, 300); got != 316 {
		t.Fatalf("SendTick = %d, want 316", got)
	}
}

func TestAdaptiveDoublesOnMiss(t *testing.T) {
	a := Adaptive{InitialDelay: 16}
	st := a.Initial()
	a.OnResponse(&st, false, 0)
	if st.Delay != 32 {
		t.Fatalf("Delay = %d, want 32", st.Delay)
	}
	a.OnResponse(&st, false, 0)
	if st.Delay != 64 {
		t.Fatalf("Delay = %d, want 64", st.Delay)
	}
}

func TestAdaptiveEscapesZero(t *testing.T) {
	a := Adaptive{InitialDelay: 1}
	st := a.Initial()
	a.OnResponse(&st, true, 0) // 1 -> 0
	if st.Delay != 0 {
		t.Fatalf("Delay = %d, want 0", st.Delay)
	}
	a.OnResponse(&st, false, 0) // 0 doubles to 1, not stuck at 0
	if st.Delay != 1 {
		t.Fatalf("Delay = %d, want 1", st.Delay)
	}
}

func TestAdaptiveCapped(t *testing.T) {
	a := Adaptive{}
	st := a.Initial()
	for i := 0; i < 64; i++ {
		a.OnResponse(&st, false, 0)
	}
	if st.Delay != config.DelayCapCycles {
		t.Fatalf("Delay = %d, want cap %d", st.Delay, config.DelayCapCycles)
	}
}

func TestAdaptiveDefaultSeed(t *testing.T) {
	a := Adaptive{}
	if st := a.Initial(); st.Delay != DefaultAdaptiveDelay {
		t.Fatalf("Delay = %d, want %d", st.Delay, DefaultAdaptiveDelay)
	}
}

// TestTunedInitPhase: during the first β fills, the prediction is "now"
// (or now+δ after a failure).
func TestTunedInitPhase(t *testing.T) {
	tu := NewTuned()
	st := tu.Initial()
	if got := tu.SendTick(&st, 1000); got != 1000 {
		t.Fatalf("init SendTick = %d, want 1000", got)
	}
	tu.OnResponse(&st, false, 1000)
	if got := tu.SendTick(&st, 1100); got != 1100+config.TunedDelta {
		t.Fatalf("init-after-fail SendTick = %d, want %d", got, 1100+config.TunedDelta)
	}
}

// TestTunedReferenceInterval: after two hits T apart, delay = T-τ and
// ddl = T+ζ — the scanning range of Listing 1.
func TestTunedReferenceInterval(t *testing.T) {
	tu := NewTuned()
	st := tu.Initial()
	tu.OnResponse(&st, true, 1000)
	tu.OnResponse(&st, true, 1500) // interval = 500
	if st.Delay != 500-config.TunedTau {
		t.Fatalf("Delay = %d, want %d", st.Delay, 500-config.TunedTau)
	}
	if st.DDL != 500+config.TunedZeta {
		t.Fatalf("DDL = %d, want %d", st.DDL, 500+config.TunedZeta)
	}
	if st.NFills != 2 || st.Last != 1500 || st.Failed {
		t.Fatalf("state = %+v", st)
	}
}

// TestTunedShortIntervalClamps: an interval below τ leaves delay 0
// rather than underflowing.
func TestTunedShortIntervalClamps(t *testing.T) {
	tu := NewTuned()
	st := tu.Initial()
	tu.OnResponse(&st, true, 1000)
	tu.OnResponse(&st, true, 1000+config.TunedTau/2)
	if st.Delay != 0 {
		t.Fatalf("Delay = %d, want 0", st.Delay)
	}
}

// TestTunedAdditiveBeforeDeadline: a miss before the deadline steps the
// delay by δ; past the deadline it shifts left by α.
func TestTunedMissUpdates(t *testing.T) {
	tu := NewTuned()
	st := PredState{Delay: 100, DDL: 500, NFills: 5, Last: 0}
	tu.OnResponse(&st, false, 0)
	if st.Delay != 100+config.TunedDelta {
		t.Fatalf("Delay = %d, want %d", st.Delay, 100+config.TunedDelta)
	}
	st = PredState{Delay: 600, DDL: 500, NFills: 5}
	tu.OnResponse(&st, false, 0)
	if st.Delay != 600<<config.TunedAlpha {
		t.Fatalf("Delay = %d, want %d", st.Delay, 600<<config.TunedAlpha)
	}
	if !st.Failed {
		t.Fatal("Failed not set after miss")
	}
}

// TestTunedLookupBranches covers the branch ladder of lookupSpecTab.
func TestTunedLookupBranches(t *testing.T) {
	tu := NewTuned()

	// Past init, recent success, elapse < delay: planned delay honoured.
	st := PredState{Delay: 400, DDL: 900, NFills: 5, Last: 1000}
	got := tu.SendTick(&st, 1100) // elapse 100
	halved := st.Delay >> bithash(st.Delay, 1100)
	var want uint64
	if 100 < halved {
		want = st.Last + halved
	} else {
		want = st.Last + st.Delay
	}
	if got != want {
		t.Fatalf("SendTick = %d, want %d", got, want)
	}

	// elapse >= delay, not failed: push immediately.
	st = PredState{Delay: 50, DDL: 900, NFills: 5, Last: 1000, Failed: false}
	if got := tu.SendTick(&st, 2000); got != 2000 {
		t.Fatalf("late-not-tried SendTick = %d, want 2000", got)
	}

	// elapse >= delay, failed, before ddl: step by δ.
	st = PredState{Delay: 50, DDL: 5000, NFills: 5, Last: 1000, Failed: true}
	if got := tu.SendTick(&st, 2000); got != 2000+config.TunedDelta {
		t.Fatalf("scanning SendTick = %d, want %d", got, 2000+config.TunedDelta)
	}

	// elapse >= ddl, failed: retry after the (shifted) delay.
	st = PredState{Delay: 50, DDL: 500, NFills: 5, Last: 1000, Failed: true}
	if got := tu.SendTick(&st, 2000); got != 2000+50 {
		t.Fatalf("past-deadline SendTick = %d, want 2050", got)
	}
}

func TestTunedEscapesZeroDelayOnShift(t *testing.T) {
	tu := NewTuned()
	st := PredState{Delay: 0, DDL: 0, NFills: 5}
	tu.OnResponse(&st, false, 0) // delay >= ddl: multiplicative branch with delay 0
	if st.Delay == 0 {
		t.Fatal("tuned delay stuck at zero")
	}
}

func TestTunedCapped(t *testing.T) {
	tu := NewTuned()
	st := PredState{Delay: config.DelayCapCycles, DDL: 0, NFills: 5}
	tu.OnResponse(&st, false, 0)
	if st.Delay > config.DelayCapCycles {
		t.Fatalf("Delay = %d beyond cap", st.Delay)
	}
}

// Property: SendTick never proposes a tick before the last successful
// push (a proposal between Last and now is legal — the device clamps it
// to "now" at issue time), and never overflows past now + 2*cap + a
// reference interval.
func TestSendTickBoundedProperty(t *testing.T) {
	algs := Algorithms()
	f := func(delay, last, ddl uint64, nfills uint16, failed bool, nowOff uint32) bool {
		delay %= config.DelayCapCycles
		last %= 1 << 20
		ddl %= 1 << 20
		now := last + uint64(nowOff)%(1<<20) // now >= last, as in real use
		st := PredState{Delay: delay, Last: last, DDL: ddl, NFills: uint64(nfills), Failed: failed}
		for _, a := range algs {
			s := st
			tick := a.SendTick(&s, now)
			if tick < last {
				return false
			}
			if tick > now+2*config.DelayCapCycles {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: adaptive delay stays within [0, cap] under any outcome
// sequence.
func TestAdaptiveBoundedProperty(t *testing.T) {
	a := Adaptive{}
	f := func(outcomes []bool) bool {
		st := a.Initial()
		for i, hit := range outcomes {
			a.OnResponse(&st, hit, uint64(i))
			if st.Delay > config.DelayCapCycles {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: tuned delay stays within [0, cap] under any outcome sequence
// with monotonically increasing timestamps.
func TestTunedBoundedProperty(t *testing.T) {
	tu := NewTuned()
	f := func(outcomes []bool, gaps []uint8) bool {
		st := tu.Initial()
		now := uint64(0)
		for i, hit := range outcomes {
			g := uint64(7)
			if i < len(gaps) {
				g = uint64(gaps[i]) + 1
			}
			now += g
			tu.OnResponse(&st, hit, now)
			if st.Delay > config.DelayCapCycles {
				return false
			}
			if st.Last > now {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"0delay", "adapt", "tuned", "zero", "adaptive"} {
		if _, ok := ByName(name); !ok {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) succeeded")
	}
}

func TestAlgorithmsOrder(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 3 || algs[0].Name() != "0delay" || algs[1].Name() != "adapt" || algs[2].Name() != "tuned" {
		names := make([]string, len(algs))
		for i, a := range algs {
			names[i] = a.Name()
		}
		t.Fatalf("Algorithms = %v", names)
	}
}
