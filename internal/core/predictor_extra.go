package core

import (
	"spamer/internal/config"
)

// This file implements the speculation-algorithm classes §3.5 name-drops
// beyond the paper's three evaluated designs — "speculative pushing
// could be history-based [33], profiling-guided [30],
// heuristic-oriented [50], or perceptron-style [8]" — as additional
// DelayAlgorithm implementations. They reuse the same per-specBuf-entry
// state word (PredState) plus small fixed-size private tables, keeping
// the hardware cost story of §4.5 plausible.

// ---------------------------------------------------------------------
// History-based: a per-entry global-history buffer of recent
// vacate-to-vacate intervals (after Nesbit & Smith's GHB prefetcher).
// The prediction is the minimum of the recent intervals — the fast-path
// period — rather than the mean, so one slow-path episode does not
// poison the estimate the way the tuned algorithm's single-interval
// reference can.
// ---------------------------------------------------------------------

// historyDepth is the GHB depth per entry. Kept small: 4 intervals of
// 16 bits each is one extra register per specBuf entry.
const historyDepth = 4

// History is the history-based delay algorithm.
type History struct {
	// Slack is subtracted from the minimum observed interval so the
	// push arrives slightly before the predicted vacate and retries
	// once cheaply rather than waiting a full period.
	Slack uint64
}

// NewHistory returns the history-based algorithm with default slack.
func NewHistory() History { return History{Slack: 16} }

// Name implements DelayAlgorithm.
func (History) Name() string { return "history" }

// historyState unpacks the per-entry history ring from PredState.DDL,
// which the history algorithm repurposes as 4x16-bit packed storage
// (the tuned algorithm's ddl register, §3.5 notes different algorithms
// "might require additional storage").
func historyPush(packed uint64, interval uint64) uint64 {
	if interval > 0xffff {
		interval = 0xffff
	}
	return (packed << 16) | interval
}

func historyMin(packed uint64) uint64 {
	min := uint64(0)
	for i := 0; i < historyDepth; i++ {
		v := (packed >> (16 * i)) & 0xffff
		if v == 0 {
			continue
		}
		if min == 0 || v < min {
			min = v
		}
	}
	return min
}

// Initial implements DelayAlgorithm.
func (History) Initial() PredState { return PredState{} }

// SendTick implements DelayAlgorithm: push at last + (min interval −
// slack), or immediately while the history is still cold. Every fourth
// prediction probes at half (or a quarter of) the learned interval:
// observed intervals include the predictor's own lateness, so without
// deliberately early probes a slow start locks into a self-fulfilling
// late rhythm (the consumer is only ever offered data at the learned
// spacing, so every interval confirms it).
func (h History) SendTick(st *PredState, now uint64) uint64 {
	min := historyMin(st.DDL)
	if min == 0 {
		return now // cold: behave like 0-delay to gather history
	}
	switch st.NFills % 4 {
	case 0:
		min >>= 1 // half-interval probe
	case 2:
		min >>= 2 // quarter-interval probe
	}
	slack := h.Slack
	target := st.Last + min
	if target > slack {
		target -= slack
	}
	if target < now {
		return now
	}
	return target
}

// OnResponse implements DelayAlgorithm: hits record the new interval;
// misses back off additively (retries are how the cold predictor
// learns that it pushed too early).
func (h History) OnResponse(st *PredState, hit bool, now uint64) {
	if hit {
		if st.Last != 0 {
			st.DDL = historyPush(st.DDL, now-st.Last)
		}
		st.NFills++
		st.Last = now
		st.Delay = 0
	} else {
		st.Delay += h.Slack
		if st.Delay > config.DelayCapCycles {
			st.Delay = config.DelayCapCycles
		}
	}
	st.Failed = !hit
}

// ---------------------------------------------------------------------
// Perceptron-style: a tiny perceptron (after Bhatia et al.'s perceptron
// prefetch filter) decides between pushing immediately and waiting one
// predicted period, from three features of the entry's recent
// behaviour. Weights live in the entry's Delay register as packed
// signed bytes.
// ---------------------------------------------------------------------

// Perceptron is the perceptron-style delay algorithm.
type Perceptron struct {
	// Threshold is the decision margin; larger is more conservative
	// (waits more often).
	Threshold int32
}

// NewPerceptron returns a perceptron predictor with the default margin.
func NewPerceptron() Perceptron { return Perceptron{Threshold: 0} }

// Name implements DelayAlgorithm.
func (Perceptron) Name() string { return "perceptron" }

// Initial implements DelayAlgorithm.
func (Perceptron) Initial() PredState { return PredState{} }

// weights are packed in Delay as 3 signed bytes (+ bias byte).
func unpackW(d uint64) [4]int8 {
	return [4]int8{int8(d), int8(d >> 8), int8(d >> 16), int8(d >> 24)}
}

func packW(w [4]int8) uint64 {
	return uint64(uint8(w[0])) | uint64(uint8(w[1]))<<8 | uint64(uint8(w[2]))<<16 | uint64(uint8(w[3]))<<24
}

// features derives the input vector: did the last push miss, has the
// entry been filling recently, and is the elapsed time past the rolling
// interval estimate (kept in DDL).
func perceptronFeatures(st *PredState, now uint64) [3]int32 {
	var f [3]int32
	if st.Failed {
		f[0] = 1
	} else {
		f[0] = -1
	}
	if st.NFills&1 == 1 {
		f[1] = 1
	} else {
		f[1] = -1
	}
	if st.DDL > 0 && now-st.Last >= st.DDL {
		f[2] = 1
	} else {
		f[2] = -1
	}
	return f
}

func perceptronSum(w [4]int8, f [3]int32) int32 {
	s := int32(w[3]) // bias
	for i := 0; i < 3; i++ {
		s += int32(w[i]) * f[i]
	}
	return s
}

// SendTick implements DelayAlgorithm: a positive activation pushes now;
// a negative one waits the rolling interval estimate.
func (p Perceptron) SendTick(st *PredState, now uint64) uint64 {
	w := unpackW(st.Delay)
	f := perceptronFeatures(st, now)
	if perceptronSum(w, f) >= p.Threshold {
		return now
	}
	wait := st.DDL
	if wait == 0 {
		wait = 32
	}
	target := st.Last + wait
	if target < now {
		return now
	}
	return target
}

// OnResponse implements DelayAlgorithm: perceptron update on the
// push-now decision (hit = pushing was right), plus a rolling interval
// estimate in DDL (quarter-step EWMA).
func (p Perceptron) OnResponse(st *PredState, hit bool, now uint64) {
	w := unpackW(st.Delay)
	f := perceptronFeatures(st, now)
	dir := int32(-1)
	if hit {
		dir = 1
	}
	for i := 0; i < 3; i++ {
		nw := int32(w[i]) + dir*f[i]
		if nw > 63 {
			nw = 63
		}
		if nw < -64 {
			nw = -64
		}
		w[i] = int8(nw)
	}
	b := int32(w[3]) + dir
	if b > 63 {
		b = 63
	}
	if b < -64 {
		b = -64
	}
	w[3] = int8(b)
	st.Delay = packW(w)
	if hit {
		if st.Last != 0 {
			interval := now - st.Last
			if st.DDL == 0 {
				st.DDL = interval
			} else {
				// Quarter-step EWMA with signed delta: the interval
				// can shrink below the running estimate.
				st.DDL = uint64(int64(st.DDL) + (int64(interval)-int64(st.DDL))/4)
			}
			if st.DDL > config.DelayCapCycles {
				st.DDL = config.DelayCapCycles
			}
		}
		st.NFills++
		st.Last = now
	}
	st.Failed = !hit
}

// ---------------------------------------------------------------------
// Profile-guided: a two-phase algorithm (after Luk et al.'s post-link
// stride profiling). During the first ProfileFills successful pushes it
// behaves like 0-delay while recording the median-ish interval; it then
// locks the learned delay and only re-profiles after a burst of misses.
// ---------------------------------------------------------------------

// Profiled is the profiling-guided delay algorithm.
type Profiled struct {
	// ProfileFills is the length of the profiling phase.
	ProfileFills uint64
	// ReprofileMisses triggers a new profiling phase after this many
	// consecutive misses (the workload changed).
	ReprofileMisses uint64
	// ReprofileFills forces a fresh profile after this many locked
	// fills, so a profile poisoned by a transient slow phase cannot
	// persist forever.
	ReprofileFills uint64
}

// NewProfiled returns the profiling-guided algorithm with defaults.
func NewProfiled() Profiled {
	return Profiled{ProfileFills: 8, ReprofileMisses: 6, ReprofileFills: 64}
}

// Name implements DelayAlgorithm.
func (Profiled) Name() string { return "profiled" }

// Initial implements DelayAlgorithm.
func (Profiled) Initial() PredState { return PredState{} }

// SendTick implements DelayAlgorithm. During profiling (NFills below
// the phase length) push immediately; afterwards push at the locked
// delay after the last success.
func (pr Profiled) SendTick(st *PredState, now uint64) uint64 {
	if st.NFills < pr.ProfileFills || st.Delay == 0 {
		return now
	}
	target := st.Last + st.Delay
	if target < now {
		return now
	}
	return target
}

// OnResponse implements DelayAlgorithm. During profiling DDL accumulates
// the interval sum; when the profile locks, the delay becomes 7/8 of the
// mean profiled interval (arrive slightly early) and DDL is repurposed
// as a consecutive-miss counter. A miss burst resets the whole state —
// the consumer's rhythm changed, re-profile.
func (pr Profiled) OnResponse(st *PredState, hit bool, now uint64) {
	if hit {
		if st.NFills < pr.ProfileFills {
			if st.Last != 0 {
				interval := now - st.Last
				// Track the MINIMUM profiled interval — the fast-path
				// period. A mean would be poisoned by any slow-path
				// episode inside the profiling window and lock the
				// predictor into a late rhythm it then never escapes
				// (late pushes still hit, so nothing corrects it).
				if st.DDL == 0 || interval < st.DDL {
					st.DDL = interval
				}
			}
			st.NFills++
			if st.NFills == pr.ProfileFills && pr.ProfileFills > 1 {
				st.Delay = st.DDL - st.DDL/8
				if st.Delay > config.DelayCapCycles {
					st.Delay = config.DelayCapCycles
				}
				st.DDL = 0 // repurposed: consecutive-miss counter
			}
		} else {
			st.NFills++
			st.DDL = 0 // the streak is broken
			if pr.ReprofileFills > 0 && st.NFills >= pr.ProfileFills+pr.ReprofileFills {
				*st = PredState{} // scheduled re-profile
			}
		}
		st.Last = now
		st.Failed = false
		return
	}
	st.Failed = true
	if st.NFills >= pr.ProfileFills {
		st.DDL++
		if st.DDL >= pr.ReprofileMisses {
			*st = PredState{}
		}
	}
}
