package core

import (
	"testing"
	"testing/quick"

	"spamer/internal/config"
	"spamer/internal/mem"
	"spamer/internal/vl"
)

func TestRegisterSingleton(t *testing.T) {
	b := NewSpecBuf(4, ZeroDelay{})
	if err := b.Register(1, 0x1000, 2); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if b.Entries() != 1 || b.FreeEntries() != 3 {
		t.Fatalf("entries=%d free=%d", b.Entries(), b.FreeEntries())
	}
	loop := b.EntriesOf(1)
	if len(loop) != 1 {
		t.Fatalf("loop = %v", loop)
	}
	e := b.Entry(loop[0])
	if e.Next != loop[0] {
		t.Fatal("singleton entry does not self-loop")
	}
}

func TestRegisterBadArgs(t *testing.T) {
	b := NewSpecBuf(4, ZeroDelay{})
	if err := b.Register(1, 0x1000, 0); err == nil {
		t.Fatal("Register with 0 lines succeeded")
	}
}

func TestRegisterExhaustion(t *testing.T) {
	b := NewSpecBuf(2, ZeroDelay{})
	if err := b.Register(1, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(1, 0x2000, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(1, 0x3000, 1); err == nil {
		t.Fatal("third Register on a 2-entry specBuf succeeded")
	}
}

func TestLoopFormation(t *testing.T) {
	b := NewSpecBuf(8, ZeroDelay{})
	for i := 0; i < 4; i++ {
		if err := b.Register(5, mem.Addr(0x1000*(i+1)), 1); err != nil {
			t.Fatal(err)
		}
	}
	loop := b.EntriesOf(5)
	if len(loop) != 4 {
		t.Fatalf("loop length = %d, want 4", len(loop))
	}
	// Closed loop: walking Next from any element returns after 4 steps.
	seen := map[int]bool{}
	idx := loop[0]
	for i := 0; i < 4; i++ {
		if seen[idx] {
			t.Fatalf("loop revisits %d early", idx)
		}
		seen[idx] = true
		idx = b.Entry(idx).Next
	}
	if idx != loop[0] {
		t.Fatal("loop does not close")
	}
}

func TestSelectRotatesEntries(t *testing.T) {
	b := NewSpecBuf(8, ZeroDelay{})
	b.Register(1, 0x1000, 1)
	b.Register(1, 0x2000, 1)
	var addrs []mem.Addr
	for i := 0; i < 4; i++ {
		addr, cookie, _, ok := b.SelectTarget(1, 0)
		if !ok {
			t.Fatalf("select %d failed", i)
		}
		addrs = append(addrs, addr)
		b.OnResult(cookie, true, 0) // clear on-fly
	}
	// Entries are used in turn.
	if addrs[0] == addrs[1] || addrs[0] != addrs[2] || addrs[1] != addrs[3] {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestOffsetRotationOnHit(t *testing.T) {
	b := NewSpecBuf(4, ZeroDelay{})
	b.Register(1, 0x1000, 3)
	var addrs []mem.Addr
	for i := 0; i < 6; i++ {
		addr, cookie, _, ok := b.SelectTarget(1, 0)
		if !ok {
			t.Fatal("select failed")
		}
		addrs = append(addrs, addr)
		b.OnResult(cookie, true, 0)
	}
	for i, want := range []mem.Addr{0x1000, 0x1040, 0x1080, 0x1000, 0x1040, 0x1080} {
		if addrs[i] != want {
			t.Fatalf("addrs = %#v", addrs)
		}
	}
}

func TestOffsetHoldsOnMiss(t *testing.T) {
	b := NewSpecBuf(4, ZeroDelay{})
	b.Register(1, 0x1000, 3)
	a1, c1, _, _ := b.SelectTarget(1, 0)
	b.OnResult(c1, false, 0) // miss: offset must not advance
	a2, c2, _, _ := b.SelectTarget(1, 0)
	b.OnResult(c2, true, 0)
	a3, _, _, _ := b.SelectTarget(1, 0)
	if a1 != a2 {
		t.Fatalf("miss advanced offset: %#x -> %#x", a1, a2)
	}
	if a3 != a1+config.LineBytes {
		t.Fatalf("hit did not advance offset: %#x -> %#x", a1, a3)
	}
}

// TestWeightedRoundRobin reproduces the §3.5 example: one entry with two
// targets (α, β) and another with one target (γ) on the same SQI give a
// 1:1:2 push ratio.
func TestWeightedRoundRobin(t *testing.T) {
	b := NewSpecBuf(4, ZeroDelay{})
	b.Register(1, 0x1000, 2) // α = 0x1000, β = 0x1040
	b.Register(1, 0x2000, 1) // γ = 0x2000
	counts := map[mem.Addr]int{}
	for i := 0; i < 40; i++ {
		addr, cookie, _, ok := b.SelectTarget(1, 0)
		if !ok {
			t.Fatal("select failed")
		}
		counts[addr]++
		b.OnResult(cookie, true, 0)
	}
	alpha, beta, gamma := counts[0x1000], counts[0x1040], counts[0x2000]
	if alpha != 10 || beta != 10 || gamma != 20 {
		t.Fatalf("ratio α:β:γ = %d:%d:%d, want 10:10:20", alpha, beta, gamma)
	}
}

func TestOnFlyThrottle(t *testing.T) {
	b := NewSpecBuf(4, ZeroDelay{})
	b.Register(1, 0x1000, 4)
	_, cookie, _, ok := b.SelectTarget(1, 0)
	if !ok {
		t.Fatal("first select failed")
	}
	if _, _, _, ok := b.SelectTarget(1, 0); ok {
		t.Fatal("select succeeded while entry on-fly")
	}
	b.OnResult(cookie, false, 0)
	if _, _, _, ok := b.SelectTarget(1, 0); !ok {
		t.Fatal("select failed after on-fly cleared")
	}
}

func TestSelectUnknownSQI(t *testing.T) {
	b := NewSpecBuf(4, ZeroDelay{})
	if _, _, _, ok := b.SelectTarget(9, 0); ok {
		t.Fatal("select on unregistered SQI succeeded")
	}
}

func TestUnregisterFreesEntries(t *testing.T) {
	b := NewSpecBuf(4, ZeroDelay{})
	b.Register(1, 0x1000, 1)
	b.Register(1, 0x2000, 1)
	b.Register(2, 0x3000, 1)
	b.Unregister(1)
	if b.Entries() != 1 || b.FreeEntries() != 3 {
		t.Fatalf("entries=%d free=%d", b.Entries(), b.FreeEntries())
	}
	if _, _, _, ok := b.SelectTarget(1, 0); ok {
		t.Fatal("select on unregistered SQI succeeded")
	}
	if _, _, _, ok := b.SelectTarget(2, 0); !ok {
		t.Fatal("unrelated SQI affected by Unregister")
	}
}

func TestOnResultAfterUnregisterIgnored(t *testing.T) {
	b := NewSpecBuf(4, ZeroDelay{})
	b.Register(1, 0x1000, 1)
	_, cookie, _, _ := b.SelectTarget(1, 0)
	b.Unregister(1)
	b.OnResult(cookie, true, 0) // must not panic or corrupt
	if b.FreeEntries() != 4 {
		t.Fatalf("free = %d", b.FreeEntries())
	}
}

func TestDelayCapEnforced(t *testing.T) {
	// An algorithm proposing an absurd send tick is clamped.
	b := NewSpecBuf(4, farFuture{})
	b.Register(1, 0x1000, 1)
	now := uint64(1000)
	_, _, tick, ok := b.SelectTarget(1, now)
	if !ok {
		t.Fatal("select failed")
	}
	if tick > now+config.DelayCapCycles {
		t.Fatalf("send tick %d beyond cap", tick)
	}
}

type farFuture struct{}

func (farFuture) Name() string                              { return "farFuture" }
func (farFuture) Initial() PredState                        { return PredState{} }
func (farFuture) SendTick(_ *PredState, now uint64) uint64  { return now + 1<<40 }
func (farFuture) OnResponse(_ *PredState, _ bool, _ uint64) {}

// Property: offsets stay within [0, Len) and the per-SQI loop stays
// closed under arbitrary register/select/result interleavings.
func TestSpecBufInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewSpecBuf(16, ZeroDelay{})
		type flight struct{ cookie int }
		var inflight []flight
		sqis := []vl.SQI{1, 2, 3}
		base := mem.Addr(0x1000)
		for _, op := range ops {
			sqi := sqis[int(op)%len(sqis)]
			switch (op / 8) % 3 {
			case 0:
				n := int(op%4) + 1
				if b.FreeEntries() > 0 {
					if err := b.Register(sqi, base, n); err != nil {
						return false
					}
					base += mem.Addr(n * config.LineBytes)
				}
			case 1:
				if _, cookie, _, ok := b.SelectTarget(sqi, uint64(op)); ok {
					inflight = append(inflight, flight{cookie})
				}
			case 2:
				if len(inflight) > 0 {
					fl := inflight[len(inflight)-1]
					inflight = inflight[:len(inflight)-1]
					b.OnResult(fl.cookie, op%2 == 0, uint64(op))
				}
			}
		}
		// Invariants.
		for _, sqi := range sqis {
			loop := b.EntriesOf(sqi)
			seen := map[int]bool{}
			for _, idx := range loop {
				if seen[idx] {
					return false
				}
				seen[idx] = true
				e := b.Entry(idx)
				if !e.Valid || e.SQI != sqi {
					return false
				}
				if e.Offset < 0 || e.Offset >= e.Len {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
