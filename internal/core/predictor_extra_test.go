package core

import (
	"testing"
	"testing/quick"

	"spamer/internal/config"
)

func TestHistoryColdBehavesLikeZeroDelay(t *testing.T) {
	h := NewHistory()
	st := h.Initial()
	if got := h.SendTick(&st, 500); got != 500 {
		t.Fatalf("cold SendTick = %d", got)
	}
}

func TestHistoryLearnsMinimumInterval(t *testing.T) {
	h := NewHistory()
	st := h.Initial()
	// Hits at intervals 100, 400, 120, 110: the fast-path period is
	// ~100; one slow episode (400) must not dominate.
	now := uint64(1000)
	for _, gap := range []uint64{0, 100, 400, 120, 110} {
		now += gap
		h.OnResponse(&st, true, now)
	}
	tick := h.SendTick(&st, now)
	want := st.Last + 100 - h.Slack
	if tick != want {
		t.Fatalf("SendTick = %d, want %d (min interval - slack)", tick, want)
	}
}

func TestHistoryRingBounded(t *testing.T) {
	h := NewHistory()
	st := h.Initial()
	now := uint64(0)
	for i := 0; i < 100; i++ {
		now += 50
		h.OnResponse(&st, true, now)
	}
	if m := historyMin(st.DDL); m != 50 {
		t.Fatalf("min after long run = %d", m)
	}
	// Huge intervals saturate the 16-bit slots rather than wrapping.
	h.OnResponse(&st, true, now+1<<20)
	for i := 0; i < historyDepth-1; i++ {
		h.OnResponse(&st, true, now+1<<20+uint64(i+1)<<20)
	}
	if m := historyMin(st.DDL); m != 0xffff {
		t.Fatalf("saturated min = %d", m)
	}
}

func TestPerceptronWeightsBounded(t *testing.T) {
	p := NewPerceptron()
	f := func(outcomes []bool) bool {
		st := p.Initial()
		now := uint64(0)
		for _, hit := range outcomes {
			now += 37
			p.OnResponse(&st, hit, now)
			w := unpackW(st.Delay)
			for _, wi := range w {
				if wi > 63 || wi < -64 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPerceptronLearnsToWaitAfterMisses(t *testing.T) {
	p := NewPerceptron()
	st := p.Initial()
	now := uint64(1000)
	// Train: pushing immediately keeps missing.
	for i := 0; i < 20; i++ {
		now += 40
		p.OnResponse(&st, false, now)
	}
	// Give it an interval estimate via two hits.
	p.OnResponse(&st, true, now+100)
	p.OnResponse(&st, true, now+300)
	st.Failed = true
	tick := p.SendTick(&st, now+310)
	if tick <= now+310 {
		t.Fatalf("perceptron still pushes immediately after miss training (tick %d, now %d)", tick, now+310)
	}
}

func TestProfiledPhases(t *testing.T) {
	pr := NewProfiled()
	st := pr.Initial()
	now := uint64(100)
	// Profiling phase: immediate pushes while learning interval 200.
	for i := uint64(0); i < pr.ProfileFills; i++ {
		if got := pr.SendTick(&st, now); got != now {
			t.Fatalf("profiling SendTick = %d, want %d", got, now)
		}
		pr.OnResponse(&st, true, now)
		now += 200
	}
	if st.Delay == 0 {
		t.Fatal("profile did not lock a delay")
	}
	if st.Delay > 200 || st.Delay < 150 {
		t.Fatalf("locked delay = %d, want ~175 (7/8 of 200)", st.Delay)
	}
	// Locked phase: scheduled relative to the last success.
	tick := pr.SendTick(&st, st.Last+10)
	if tick != st.Last+st.Delay {
		t.Fatalf("locked SendTick = %d, want %d", tick, st.Last+st.Delay)
	}
}

func TestProfiledReprofilesAfterMissBurst(t *testing.T) {
	pr := NewProfiled()
	st := pr.Initial()
	now := uint64(100)
	for i := uint64(0); i < pr.ProfileFills; i++ {
		pr.OnResponse(&st, true, now)
		now += 200
	}
	locked := st.Delay
	if locked == 0 {
		t.Fatal("no locked delay")
	}
	for i := uint64(0); i < pr.ReprofileMisses; i++ {
		pr.OnResponse(&st, false, now)
	}
	if st.NFills != 0 || st.Delay != 0 {
		t.Fatalf("state not reset after miss burst: %+v", st)
	}
}

func TestProfiledHitResetsMissStreak(t *testing.T) {
	pr := NewProfiled()
	st := pr.Initial()
	now := uint64(100)
	for i := uint64(0); i < pr.ProfileFills; i++ {
		pr.OnResponse(&st, true, now)
		now += 200
	}
	for i := uint64(0); i < pr.ReprofileMisses-1; i++ {
		pr.OnResponse(&st, false, now)
	}
	pr.OnResponse(&st, true, now+10) // break the streak
	pr.OnResponse(&st, false, now+20)
	if st.NFills == 0 {
		t.Fatal("reprofiled despite broken miss streak")
	}
}

func TestObfuscatedJitterBoundedAndKeyed(t *testing.T) {
	base := ZeroDelay{}
	o1 := Obfuscated{Inner: base, Key: 1, MaxJitter: 32}
	o2 := Obfuscated{Inner: base, Key: 2, MaxJitter: 32}
	st := o1.Initial()
	differs := false
	for now := uint64(0); now < 2000; now += 97 {
		t1 := o1.SendTick(&st, now)
		t2 := o2.SendTick(&st, now)
		if t1 < now || t1 >= now+32 {
			t.Fatalf("jitter out of bounds: %d at now %d", t1, now)
		}
		if t1 != t2 {
			differs = true
		}
		// Deterministic per key.
		if again := o1.SendTick(&st, now); again != t1 {
			t.Fatalf("jitter not deterministic: %d vs %d", again, t1)
		}
	}
	if !differs {
		t.Fatal("different keys never produced different jitter")
	}
}

func TestObfuscatedZeroJitterTransparent(t *testing.T) {
	o := Obfuscated{Inner: Adaptive{}, MaxJitter: 0}
	st := o.Initial()
	if st.Delay != DefaultAdaptiveDelay {
		t.Fatalf("Initial not delegated: %+v", st)
	}
	if got := o.SendTick(&st, 100); got != 100+DefaultAdaptiveDelay {
		t.Fatalf("SendTick = %d", got)
	}
	if o.Name() != "adapt+obf" {
		t.Fatalf("Name = %q", o.Name())
	}
}

func TestExtendedAlgorithmsRegistered(t *testing.T) {
	algs := ExtendedAlgorithms()
	if len(algs) != 7 {
		t.Fatalf("extended algorithms = %d", len(algs))
	}
	for _, name := range []string{"history", "perceptron", "profiled"} {
		if _, ok := ByName(name); !ok {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
}

// Property: every extended algorithm keeps SendTick at or after the
// last successful push and within the global cap of now.
func TestExtendedSendTickBounded(t *testing.T) {
	algs := ExtendedAlgorithms()
	f := func(outcomes []bool, gaps []uint8) bool {
		for _, a := range algs {
			st := a.Initial()
			now := uint64(1)
			for i, hit := range outcomes {
				g := uint64(13)
				if i < len(gaps) {
					g = uint64(gaps[i]) + 1
				}
				now += g
				tick := a.SendTick(&st, now)
				if tick > now+2*config.DelayCapCycles {
					return false
				}
				a.OnResponse(&st, hit, now)
				if st.Last > now {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
