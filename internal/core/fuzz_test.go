package core

import (
	"testing"

	"spamer/internal/config"
)

// FuzzPredictors drives every delay algorithm with arbitrary outcome
// sequences and checks the global safety invariants: predictions never
// precede the last successful push, never run away past the cap, and
// the state timestamps stay monotone.
func FuzzPredictors(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 1}, []byte{10, 20, 5, 200, 1})
	f.Add([]byte{1, 1, 1, 1}, []byte{1, 1, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, outcomes, gaps []byte) {
		if len(outcomes) > 512 {
			outcomes = outcomes[:512]
		}
		for _, alg := range ExtendedAlgorithms() {
			st := alg.Initial()
			now := uint64(1)
			for i, o := range outcomes {
				g := uint64(7)
				if i < len(gaps) {
					g = uint64(gaps[i]) + 1
				}
				now += g
				tick := alg.SendTick(&st, now)
				if tick+1 < st.Last {
					t.Fatalf("%s: tick %d before last %d", alg.Name(), tick, st.Last)
				}
				if tick > now+2*config.DelayCapCycles {
					t.Fatalf("%s: tick %d runaway (now %d)", alg.Name(), tick, now)
				}
				alg.OnResponse(&st, o&1 == 1, now)
				if st.Last > now {
					t.Fatalf("%s: Last %d beyond now %d", alg.Name(), st.Last, now)
				}
			}
		}
	})
}
