package core

import "spamer/internal/config"

// DynamicTuned implements the paper's future-work idea of reconfiguring
// the tuned algorithm's parameters dynamically (§3.5: "As future work,
// we could search to find a more optimal set of parameters for each
// benchmark and reconfigure those parameters dynamically").
//
// It runs the Listing 1 machinery but scales the additive step δ with
// the magnitude of the current delay estimate: fine steps (MinDelta)
// when tracking a short fast-path period, coarse steps when scanning
// after a long slow-path episode, so the scan cost stays proportional
// to the period being scanned instead of fixed.
type DynamicTuned struct {
	P        config.TunedParams
	MinDelta uint64
	MaxDelta uint64
	// Shift sets the proportionality: δ_eff = delay >> Shift, clamped.
	Shift uint
}

// NewDynamicTuned returns the dynamic variant at the published base
// parameters with δ ranging over [16, 256].
func NewDynamicTuned() DynamicTuned {
	return DynamicTuned{P: config.DefaultTuned(), MinDelta: 16, MaxDelta: 256, Shift: 3}
}

// Name implements DelayAlgorithm.
func (DynamicTuned) Name() string { return "dyntuned" }

// Initial implements DelayAlgorithm.
func (d DynamicTuned) Initial() PredState { return PredState{} }

// effective returns the Tuned instance with δ reconfigured for the
// entry's current delay magnitude.
func (d DynamicTuned) effective(st *PredState) Tuned {
	p := d.P
	delta := st.Delay >> d.Shift
	if delta < d.MinDelta {
		delta = d.MinDelta
	}
	if delta > d.MaxDelta {
		delta = d.MaxDelta
	}
	p.Delta = delta
	return Tuned{P: p}
}

// SendTick implements DelayAlgorithm.
func (d DynamicTuned) SendTick(st *PredState, now uint64) uint64 {
	return d.effective(st).SendTick(st, now)
}

// OnResponse implements DelayAlgorithm.
func (d DynamicTuned) OnResponse(st *PredState, hit bool, now uint64) {
	d.effective(st).OnResponse(st, hit, now)
}
