package core

import (
	"strings"
	"testing"

	"spamer/internal/vl"
)

// checkBuf builds a small populated specBuf: two entries on SQI 1, one on
// SQI 2, leaving one free slot.
func checkBuf(t *testing.T) *SpecBuf {
	t.Helper()
	b := NewSpecBuf(4, ZeroDelay{})
	if err := b.Register(1, 0x100, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(1, 0x300, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(2, 0x500, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckStructure(); err != nil {
		t.Fatalf("fresh buffer fails structure check: %v", err)
	}
	return b
}

// TestCheckStructureViolations corrupts one invariant at a time and
// verifies CheckStructure reports it with the expected message.
func TestCheckStructureViolations(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(b *SpecBuf)
		want    string
	}{
		{"columns-disagree", func(b *SpecBuf) {
			b.sqi = b.sqi[:len(b.sqi)-1]
		}, "columns disagree"},
		{"undefined-flag-bits", func(b *SpecBuf) {
			b.flags[0] |= 1 << 7
		}, "undefined flag bits"},
		{"onfly-not-valid", func(b *SpecBuf) {
			b.flags[b.free[0]] = entOnFly
		}, "on-fly but not valid"},
		{"zero-segment", func(b *SpecBuf) {
			b.size[0] = 0
		}, "segment length"},
		{"offset-outside-segment", func(b *SpecBuf) {
			b.off[0] = b.size[0]
		}, "Offset"},
		{"live-counter-mismatch", func(b *SpecBuf) {
			b.live++
		}, "live counter says"},
		{"high-water-below-live", func(b *SpecBuf) {
			b.highWater = b.live - 1
		}, "high-water"},
		{"high-water-above-capacity", func(b *SpecBuf) {
			b.highWater = len(b.flags) + 1
		}, "high-water"},
		{"partition-broken", func(b *SpecBuf) {
			b.free = b.free[:0]
			b.live = len(b.flags) - 1 // keep the live check quiet
		}, "!="},
		{"free-out-of-range", func(b *SpecBuf) {
			b.free[0] = int32(len(b.flags))
		}, "out-of-range"},
		{"free-but-valid", func(b *SpecBuf) {
			// Swap validity between the free slot and a valid entry so the
			// counts balance and only the free-list clash remains.
			idx := b.free[0]
			b.flags[idx] = entValid
			b.size[idx] = 1
			b.flags[b.specHead[2]] = 0
		}, "on free list but valid"},
		{"loop-reaches-invalid", func(b *SpecBuf) {
			// Invalidate an SQI-1 entry without unlinking it.
			idx := b.specHead[1]
			b.flags[idx] = 0
			b.live--
			b.free = append(b.free, idx)
		}, "loop reaches invalid"},
		{"loop-wrong-sqi", func(b *SpecBuf) {
			b.sqi[b.specHead[1]] = 7
		}, "tagged SQI"},
		{"loop-does-not-close", func(b *SpecBuf) {
			// Make the second SQI-1 entry loop on itself instead of closing
			// back at the head: the walk revisits it.
			h := b.specHead[1]
			b.next[b.next[h]] = b.next[h]
		}, "reached twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := checkBuf(t)
			tc.corrupt(b)
			err := b.CheckStructure()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %q, want message containing %q", err, tc.want)
			}
		})
	}
}

// TestHighWaterTracksPeak drives occupancy up and down and checks the
// high-water mark latches the peak, not the current count.
func TestHighWaterTracksPeak(t *testing.T) {
	b := NewSpecBuf(4, ZeroDelay{})
	for s := vl.SQI(1); s <= 3; s++ {
		if err := b.Register(s, 0x100, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.HighWater(); got != 3 {
		t.Fatalf("high-water after 3 registers = %d, want 3", got)
	}
	b.Unregister(2)
	b.Unregister(3)
	if got := b.Entries(); got != 1 {
		t.Fatalf("entries after unregister = %d, want 1", got)
	}
	if got := b.HighWater(); got != 3 {
		t.Fatalf("high-water latched %d, want 3", got)
	}
	if err := b.CheckStructure(); err != nil {
		t.Fatalf("structure after churn: %v", err)
	}
}
