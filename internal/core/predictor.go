package core

import (
	"math/bits"

	"spamer/internal/config"
)

// DelayAlgorithm predicts when a speculative push should be issued and
// learns from push responses (§3.5). Implementations keep all mutable
// state in the per-specBuf-entry PredState, matching the paper's
// "registers (one per linkTab entry or per specBuf entry)".
type DelayAlgorithm interface {
	// Name identifies the algorithm in reports ("0delay", "adapt", ...).
	Name() string
	// Initial returns the power-on prediction state for a fresh entry.
	Initial() PredState
	// SendTick returns the absolute tick at which the next speculative
	// push from this entry should issue, given the current tick.
	SendTick(st *PredState, now uint64) uint64
	// OnResponse feeds back the hit/miss outcome of a push.
	OnResponse(st *PredState, hit bool, now uint64)
}

// ---------------------------------------------------------------------
// 0-delay: "does not add any additional delay, but lets the speculative
// push go as soon as possible … never miss the earliest chance … the down
// side is that it could eat up bus/port bandwidth" (§3.5).
// ---------------------------------------------------------------------

// ZeroDelay is the aggressive push-immediately algorithm.
type ZeroDelay struct{}

// Name implements DelayAlgorithm.
func (ZeroDelay) Name() string { return "0delay" }

// Initial implements DelayAlgorithm.
func (ZeroDelay) Initial() PredState { return PredState{} }

// SendTick implements DelayAlgorithm: push now.
func (ZeroDelay) SendTick(_ *PredState, now uint64) uint64 { return now }

// OnResponse implements DelayAlgorithm: 0-delay learns nothing.
func (ZeroDelay) OnResponse(_ *PredState, _ bool, _ uint64) {}

// ---------------------------------------------------------------------
// Adaptive: "saves the delay values in registers …, and reduces the delay
// by half (right shift by 1-bit) upon a successful speculative push,
// otherwise double the delay for a failed speculative push" (§3.5).
// ---------------------------------------------------------------------

// Adaptive is the multiplicative-adjustment algorithm. InitialDelay seeds
// a fresh entry; 0 selects DefaultAdaptiveDelay.
type Adaptive struct {
	InitialDelay uint64
}

// DefaultAdaptiveDelay seeds adaptive entries. A seed is needed because a
// delay of zero is a fixed point of both the halving and doubling updates.
const DefaultAdaptiveDelay = 16

// Name implements DelayAlgorithm.
func (Adaptive) Name() string { return "adapt" }

// Initial implements DelayAlgorithm.
func (a Adaptive) Initial() PredState {
	d := a.InitialDelay
	if d == 0 {
		d = DefaultAdaptiveDelay
	}
	return PredState{Delay: d}
}

// SendTick implements DelayAlgorithm.
func (Adaptive) SendTick(st *PredState, now uint64) uint64 { return now + st.Delay }

// OnResponse implements DelayAlgorithm.
func (Adaptive) OnResponse(st *PredState, hit bool, now uint64) {
	if hit {
		st.Delay >>= 1
		st.NFills++
		st.Last = now
	} else {
		if st.Delay == 0 {
			st.Delay = 1
		} else {
			st.Delay <<= 1
		}
		if st.Delay > config.DelayCapCycles {
			st.Delay = config.DelayCapCycles
		}
	}
	st.Failed = !hit
}

// ---------------------------------------------------------------------
// Tuned: Listing 1. The interval between the two most recent successful
// pushes at the same entry is the reference; the algorithm scans the
// range [ref-τ, ref+ζ] in additive steps of δ, growing multiplicatively
// (<<α) past the deadline, with a β-fill initialization phase.
// ---------------------------------------------------------------------

// Tuned is the Listing 1 algorithm with the paper's parameters
// (ζ=256, τ=96, δ=64, α=1, β=2 after tuning on FIR).
type Tuned struct {
	P config.TunedParams
}

// NewTuned returns the tuned algorithm with the paper's chosen
// parameters.
func NewTuned() Tuned { return Tuned{P: config.DefaultTuned()} }

// Name implements DelayAlgorithm.
func (Tuned) Name() string { return "tuned" }

// Initial implements DelayAlgorithm.
func (t Tuned) Initial() PredState { return PredState{} }

// bithash concretizes the paper's unspecified bithash(delay, tsc): a
// 1-to-4-bit shift chosen by a hash of the operands. The "halved" probe
// of lookupSpecTab is the algorithm's fast-recovery mechanism after a
// slow-path episode poisons the interval reference — a deeper shift lets
// the probe ladder descend toward the fast-path period geometrically
// (delay/2, /4, /8, /16) instead of one halving per successful push,
// which is what lets tuned recover FIR where adaptive cannot (§4.3).
func bithash(delay, tsc uint64) uint {
	return 1 + uint(bits.OnesCount64(delay^(tsc>>6))&3)
}

// SendTick implements lookupSpecTab of Listing 1.
func (t Tuned) SendTick(st *PredState, now uint64) uint64 {
	halved := st.Delay >> bithash(st.Delay, now)
	elapse := now - st.Last
	switch {
	case st.NFills < t.P.Beta:
		// Initializing phase.
		if st.Failed {
			return now + t.P.Delta
		}
		return now
	case elapse < halved:
		// Early enough to try the halved delay.
		return st.Last + halved
	case elapse < st.Delay:
		// Early enough for the planned delay.
		return st.Last + st.Delay
	case !st.Failed:
		// Data available later than planned and not tried yet.
		return now
	case elapse < st.DDL:
		// Planned delay falls behind, but not across the deadline yet.
		return now + t.P.Delta
	default:
		return now + st.Delay
	}
}

// OnResponse implements updateResponse of Listing 1.
func (t Tuned) OnResponse(st *PredState, hit bool, now uint64) {
	if hit {
		// Use the interval of the most recent hit responses as the
		// reference; [ref-τ, ref+ζ] is the scanning range.
		interval := now - st.Last
		if interval > t.P.Tau {
			st.Delay = interval - t.P.Tau
		} else {
			st.Delay = 0
		}
		st.DDL = interval + t.P.Zeta
		st.NFills++
		st.Last = now
	} else {
		if st.Delay < st.DDL {
			// Before the deadline: retry after δ.
			st.Delay += t.P.Delta
		} else {
			// Past the deadline: left shift α bits.
			if st.Delay == 0 {
				st.Delay = t.P.Delta
			} else {
				st.Delay <<= t.P.Alpha
			}
		}
		if st.Delay > config.DelayCapCycles {
			st.Delay = config.DelayCapCycles
		}
	}
	st.Failed = !hit
}

// Algorithms returns the three §3.5 algorithms in paper order, with the
// tuned algorithm at its published parameters.
func Algorithms() []DelayAlgorithm {
	return []DelayAlgorithm{ZeroDelay{}, Adaptive{}, NewTuned()}
}

// ExtendedAlgorithms returns every implemented delay algorithm: the
// paper's three plus the §3.5-classed extensions (history-based,
// perceptron-style, profiling-guided) and the future-work dynamic
// reconfiguration variant.
func ExtendedAlgorithms() []DelayAlgorithm {
	return append(Algorithms(), NewHistory(), NewPerceptron(), NewProfiled(), NewDynamicTuned())
}

// ByName resolves an algorithm name used on harness command lines.
func ByName(name string) (DelayAlgorithm, bool) {
	switch name {
	case "0delay", "zero", "zerodelay":
		return ZeroDelay{}, true
	case "adapt", "adaptive":
		return Adaptive{}, true
	case "tuned":
		return NewTuned(), true
	case "history":
		return NewHistory(), true
	case "perceptron":
		return NewPerceptron(), true
	case "profiled":
		return NewProfiled(), true
	case "dyntuned":
		return NewDynamicTuned(), true
	default:
		return nil, false
	}
}

// Obfuscated wraps any delay algorithm and adds bounded deterministic
// jitter derived from a keyed hash of the prediction state — the §3.6
// mitigation against timing side channels on the speculation counters
// ("isolation ... and obfuscation (augmented by random chance) to
// prevent secrets from leaking"). The jitter is reproducible for a
// given key, keeping simulations deterministic, but decorrelates the
// observable push timing from the learned counter values.
type Obfuscated struct {
	Inner DelayAlgorithm
	// Key seeds the jitter hash (per-partition in a real deployment).
	Key uint64
	// MaxJitter bounds the added delay, exclusive (0 disables).
	MaxJitter uint64
}

// Name implements DelayAlgorithm.
func (o Obfuscated) Name() string { return o.Inner.Name() + "+obf" }

// Initial implements DelayAlgorithm.
func (o Obfuscated) Initial() PredState { return o.Inner.Initial() }

// jitter is a split-mix style hash of (key, tick) reduced mod MaxJitter.
func (o Obfuscated) jitter(tick uint64) uint64 {
	if o.MaxJitter == 0 {
		return 0
	}
	x := tick ^ o.Key
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x % o.MaxJitter
}

// SendTick implements DelayAlgorithm.
func (o Obfuscated) SendTick(st *PredState, now uint64) uint64 {
	return o.Inner.SendTick(st, now) + o.jitter(now)
}

// OnResponse implements DelayAlgorithm.
func (o Obfuscated) OnResponse(st *PredState, hit bool, now uint64) {
	o.Inner.OnResponse(st, hit, now)
}
