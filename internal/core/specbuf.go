// Package core implements the SPAMeR contribution on top of the
// Virtual-Link routing device: the specBuf structure, the linkTabSpec
// specHead chaining, the on-fly throttle, and the delay-prediction
// algorithms of §3.5 (0-delay, adaptive, and the tuned algorithm of
// Listing 1). Assembling a vl.Device with this extension yields the
// SPAMeR Routing Device (SRD) of Figure 4.
package core

import (
	"fmt"

	"spamer/internal/config"
	"spamer/internal/mem"
	"spamer/internal/vl"
)

// SpecEntry is one specBuf row (Figure 4, red): a registered segment of
// consumer lines the SRD may speculatively push to, plus the prediction
// state the tuned algorithm latches per entry (Figure 6, yellow).
type SpecEntry struct {
	Valid bool
	SQI   vl.SQI

	// Base and Len describe the segment: Base + i*LineBytes for
	// i in [0, Len).
	Base mem.Addr
	Len  int

	// Offset counts successful pushes, rotating through the segment:
	// "incrementing every time data is pushed to a consumer cacheline
	// successfully … at which point it is set to zero" (§3.2).
	Offset int

	// Next chains entries of the same SQI into a loop; Stage 3 advances
	// the SQI's specHead along it so "all the specBuf entry of a SQI
	// form a loop and are used in turn".
	Next int

	// OnFly is the throttle bit of §3.5: while a push from this entry is
	// in the speculative push queue, the entry stops giving targets.
	OnFly bool

	// Pred is the per-entry delay-prediction state.
	Pred PredState
}

// PredState carries the delay-prediction registers. The adaptive
// algorithm uses only Delay; the tuned algorithm uses every field
// (specBuf.nfills/last/ddl/failed/delay of Figure 6).
type PredState struct {
	Delay  uint64 // current predicted delay (cycles)
	Last   uint64 // timestamp of the last successful push
	DDL    uint64 // deadline (duration from Last) before multiplicative growth
	NFills uint64 // successful-push count
	Failed bool   // whether the previous push missed
}

// SpecBuf is the speculative-target store plus the specHead column that
// linkTabSpec adds to linkTab.
type SpecBuf struct {
	entries []SpecEntry
	free    []int
	// specHead is the linkTabSpec.specHead column, indexed directly by
	// SQI. The SQI space is small and bounded by config, so a dense slice
	// (-1 = no entries) replaces the previous map and keeps Stage 3's
	// target selection free of map hashing. The slice grows on demand to
	// the highest SQI ever registered.
	specHead []int32
	alg      DelayAlgorithm
}

// NewSpecBuf returns a specBuf with n entries (Table 1: 64) driven by the
// given delay-prediction algorithm.
func NewSpecBuf(n int, alg DelayAlgorithm) *SpecBuf {
	if n <= 0 {
		n = config.SRDEntries
	}
	b := &SpecBuf{
		entries: make([]SpecEntry, n),
		alg:     alg,
	}
	for i := n - 1; i >= 0; i-- {
		b.free = append(b.free, i)
	}
	return b
}

// Algorithm returns the installed delay-prediction algorithm.
func (b *SpecBuf) Algorithm() DelayAlgorithm { return b.alg }

// headOf reads the specHead of an SQI; ok is false when the SQI has no
// registered entries.
func (b *SpecBuf) headOf(sqi vl.SQI) (int, bool) {
	if int(sqi) >= len(b.specHead) || b.specHead[sqi] < 0 {
		return 0, false
	}
	return int(b.specHead[sqi]), true
}

// setHead records idx as the specHead of sqi, growing the dense column
// (filled with the -1 sentinel) the first time a high SQI appears.
func (b *SpecBuf) setHead(sqi vl.SQI, idx int) {
	for int(sqi) >= len(b.specHead) {
		b.specHead = append(b.specHead, -1)
	}
	b.specHead[sqi] = int32(idx)
}

// Register implements vl.SpecExtension: one spamer_register call creates
// one specBuf entry covering n lines from base, linked into the SQI's
// circular Next chain. The per-entry prediction state starts in the
// algorithm's initial condition.
func (b *SpecBuf) Register(sqi vl.SQI, base mem.Addr, n int) error {
	if n <= 0 {
		return fmt.Errorf("core: register with %d lines", n)
	}
	if len(b.free) == 0 {
		// §4.5: "if there is a situation where the workloads register
		// more specBuf entries, the operating system needs to manage
		// the specBuf as other limited resources".
		return fmt.Errorf("core: specBuf exhausted (%d entries)", len(b.entries))
	}
	idx := b.free[len(b.free)-1]
	b.free = b.free[:len(b.free)-1]
	e := &b.entries[idx]
	*e = SpecEntry{
		Valid: true,
		SQI:   sqi,
		Base:  base,
		Len:   n,
		Pred:  b.alg.Initial(),
	}
	head, ok := b.headOf(sqi)
	if !ok {
		e.Next = idx // singleton loop
		b.setHead(sqi, idx)
		return nil
	}
	// Insert after the current head, keeping the loop closed.
	e.Next = b.entries[head].Next
	b.entries[head].Next = idx
	return nil
}

// Unregister removes every entry of an SQI (endpoint teardown).
func (b *SpecBuf) Unregister(sqi vl.SQI) {
	head, ok := b.headOf(sqi)
	if !ok {
		return
	}
	idx := head
	for {
		next := b.entries[idx].Next
		b.entries[idx] = SpecEntry{Next: 0}
		b.free = append(b.free, idx)
		if next == head {
			break
		}
		idx = next
	}
	b.specHead[sqi] = -1
}

// SelectTarget implements vl.SpecExtension: walk the SQI's entry loop
// from specHead, skipping on-fly entries, pick the first available one,
// derive specTgt = base + offset*lineBytes, consult the delay algorithm
// for the send tick, set on-fly, and advance specHead along Next — the
// Stage-3 write-back of §3.2.
func (b *SpecBuf) SelectTarget(sqi vl.SQI, now uint64) (addr mem.Addr, cookie int, sendTick uint64, ok bool) {
	head, exists := b.headOf(sqi)
	if !exists {
		return 0, 0, 0, false
	}
	idx := head
	for {
		e := &b.entries[idx]
		if e.Valid && !e.OnFly {
			addr = e.Base + mem.Addr(e.Offset*config.LineBytes)
			sendTick = b.alg.SendTick(&e.Pred, now)
			if cap := now + config.DelayCapCycles; sendTick > cap {
				sendTick = cap
			}
			e.OnFly = true
			b.specHead[sqi] = int32(e.Next)
			return addr, idx, sendTick, true
		}
		idx = e.Next
		if idx == head {
			return 0, 0, 0, false
		}
	}
}

// OnResult implements vl.SpecExtension: clear the on-fly throttle, rotate
// Offset on success, and feed the outcome to the delay algorithm.
func (b *SpecBuf) OnResult(cookie int, hit bool, now uint64) {
	e := &b.entries[cookie]
	if !e.Valid {
		return // unregistered while in flight
	}
	e.OnFly = false
	if hit {
		e.Offset++
		if e.Offset >= e.Len {
			e.Offset = 0
		}
	}
	b.alg.OnResponse(&e.Pred, hit, now)
}

// Entries returns the number of valid entries (for tests/diagnostics).
func (b *SpecBuf) Entries() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].Valid {
			n++
		}
	}
	return n
}

// FreeEntries reports the remaining capacity.
func (b *SpecBuf) FreeEntries() int { return len(b.free) }

// EntriesOf returns the entry indices of an SQI in loop order starting at
// the current specHead. Intended for tests.
func (b *SpecBuf) EntriesOf(sqi vl.SQI) []int {
	head, ok := b.headOf(sqi)
	if !ok {
		return nil
	}
	var out []int
	idx := head
	for {
		out = append(out, idx)
		idx = b.entries[idx].Next
		if idx == head {
			return out
		}
	}
}

// Entry returns a copy of entry i for inspection.
func (b *SpecBuf) Entry(i int) SpecEntry { return b.entries[i] }

var _ vl.SpecExtension = (*SpecBuf)(nil)
