// Package core implements the SPAMeR contribution on top of the
// Virtual-Link routing device: the specBuf structure, the linkTabSpec
// specHead chaining, the on-fly throttle, and the delay-prediction
// algorithms of §3.5 (0-delay, adaptive, and the tuned algorithm of
// Listing 1). Assembling a vl.Device with this extension yields the
// SPAMeR Routing Device (SRD) of Figure 4.
package core

import (
	"fmt"

	"spamer/internal/config"
	"spamer/internal/mem"
	"spamer/internal/vl"
)

// SpecEntry is one specBuf row (Figure 4, red): a registered segment of
// consumer lines the SRD may speculatively push to, plus the prediction
// state the tuned algorithm latches per entry (Figure 6, yellow).
//
// SpecEntry is the inspection snapshot returned by Entry; the buffer
// itself stores rows struct-of-arrays (see SpecBuf).
type SpecEntry struct {
	Valid bool
	SQI   vl.SQI

	// Base and Len describe the segment: Base + i*LineBytes for
	// i in [0, Len).
	Base mem.Addr
	Len  int

	// Offset counts successful pushes, rotating through the segment:
	// "incrementing every time data is pushed to a consumer cacheline
	// successfully … at which point it is set to zero" (§3.2).
	Offset int

	// Next chains entries of the same SQI into a loop; Stage 3 advances
	// the SQI's specHead along it so "all the specBuf entry of a SQI
	// form a loop and are used in turn".
	Next int

	// OnFly is the throttle bit of §3.5: while a push from this entry is
	// in the speculative push queue, the entry stops giving targets.
	OnFly bool

	// Pred is the per-entry delay-prediction state.
	Pred PredState
}

// PredState carries the delay-prediction registers. The adaptive
// algorithm uses only Delay; the tuned algorithm uses every field
// (specBuf.nfills/last/ddl/failed/delay of Figure 6).
type PredState struct {
	Delay  uint64 // current predicted delay (cycles)
	Last   uint64 // timestamp of the last successful push
	DDL    uint64 // deadline (duration from Last) before multiplicative growth
	NFills uint64 // successful-push count
	Failed bool   // whether the previous push missed
}

// entry flag bits packed into SpecBuf.flags: one byte per entry holds
// both the Valid and OnFly bits, so the Stage-2/3 select walk reads one
// dense byte array instead of striding over fat rows.
const (
	entValid uint8 = 1 << 0
	entOnFly uint8 = 1 << 1
)

// SpecBuf is the speculative-target store plus the specHead column that
// linkTabSpec adds to linkTab.
//
// Rows are stored struct-of-arrays: the select walk of SelectTarget
// touches only flags (valid|on-fly, one byte per entry) and next (the
// SQI loop links, four bytes per entry) — for the 64-entry Table 1
// configuration that is two cache lines of the host in total, versus one
// line per entry with array-of-structs rows. The remaining columns
// (segment geometry, prediction state) are read only for the entry the
// walk settles on.
type SpecBuf struct {
	flags []uint8  // hot: entValid|entOnFly per entry
	next  []int32  // hot: circular per-SQI loop links
	sqi   []vl.SQI // cold columns, indexed like flags
	base  []mem.Addr
	size  []int32 // registered segment length (lines)
	off   []int32 // next push offset within the segment
	pred  []PredState

	free []int32
	// specHead is the linkTabSpec.specHead column, indexed directly by
	// SQI. The SQI space is small and bounded by config, so a dense slice
	// (-1 = no entries) replaces the previous map and keeps Stage 3's
	// target selection free of map hashing. The slice grows on demand to
	// the highest SQI ever registered.
	specHead []int32

	live      int // currently valid entries
	highWater int // maximum simultaneously valid entries ever
	alg       DelayAlgorithm
}

// NewSpecBuf returns a specBuf with n entries (Table 1: 64) driven by the
// given delay-prediction algorithm.
func NewSpecBuf(n int, alg DelayAlgorithm) *SpecBuf {
	if n <= 0 {
		n = config.SRDEntries
	}
	b := &SpecBuf{
		flags: make([]uint8, n),
		next:  make([]int32, n),
		sqi:   make([]vl.SQI, n),
		base:  make([]mem.Addr, n),
		size:  make([]int32, n),
		off:   make([]int32, n),
		pred:  make([]PredState, n),
		free:  make([]int32, 0, n),
		alg:   alg,
	}
	for i := n - 1; i >= 0; i-- {
		b.free = append(b.free, int32(i))
	}
	return b
}

// Algorithm returns the installed delay-prediction algorithm.
func (b *SpecBuf) Algorithm() DelayAlgorithm { return b.alg }

// headOf reads the specHead of an SQI; ok is false when the SQI has no
// registered entries.
func (b *SpecBuf) headOf(sqi vl.SQI) (int, bool) {
	if int(sqi) >= len(b.specHead) || b.specHead[sqi] < 0 {
		return 0, false
	}
	return int(b.specHead[sqi]), true
}

// setHead records idx as the specHead of sqi, growing the dense column
// (filled with the -1 sentinel) the first time a high SQI appears.
func (b *SpecBuf) setHead(sqi vl.SQI, idx int) {
	for int(sqi) >= len(b.specHead) {
		b.specHead = append(b.specHead, -1)
	}
	b.specHead[sqi] = int32(idx)
}

// Register implements vl.SpecExtension: one spamer_register call creates
// one specBuf entry covering n lines from base, linked into the SQI's
// circular Next chain. The per-entry prediction state starts in the
// algorithm's initial condition.
func (b *SpecBuf) Register(sqi vl.SQI, base mem.Addr, n int) error {
	if n <= 0 {
		return fmt.Errorf("core: register with %d lines", n)
	}
	if len(b.free) == 0 {
		// §4.5: "if there is a situation where the workloads register
		// more specBuf entries, the operating system needs to manage
		// the specBuf as other limited resources".
		return fmt.Errorf("core: specBuf exhausted (%d entries)", len(b.flags))
	}
	idx := int(b.free[len(b.free)-1])
	b.free = b.free[:len(b.free)-1]
	b.flags[idx] = entValid
	b.sqi[idx] = sqi
	b.base[idx] = base
	b.size[idx] = int32(n)
	b.off[idx] = 0
	b.pred[idx] = b.alg.Initial()
	b.live++
	if b.live > b.highWater {
		b.highWater = b.live
	}
	head, ok := b.headOf(sqi)
	if !ok {
		b.next[idx] = int32(idx) // singleton loop
		b.setHead(sqi, idx)
		return nil
	}
	// Insert after the current head, keeping the loop closed.
	b.next[idx] = b.next[head]
	b.next[head] = int32(idx)
	return nil
}

// Unregister removes every entry of an SQI (endpoint teardown).
func (b *SpecBuf) Unregister(sqi vl.SQI) {
	head, ok := b.headOf(sqi)
	if !ok {
		return
	}
	idx := head
	for {
		next := int(b.next[idx])
		b.flags[idx] = 0
		b.next[idx] = 0
		b.sqi[idx] = 0
		b.base[idx] = 0
		b.size[idx] = 0
		b.off[idx] = 0
		b.pred[idx] = PredState{}
		b.free = append(b.free, int32(idx))
		b.live--
		if next == head {
			break
		}
		idx = next
	}
	b.specHead[sqi] = -1
}

// SelectTarget implements vl.SpecExtension: walk the SQI's entry loop
// from specHead, skipping on-fly entries, pick the first available one,
// derive specTgt = base + offset*lineBytes, consult the delay algorithm
// for the send tick, set on-fly, and advance specHead along Next — the
// Stage-3 write-back of §3.2.
func (b *SpecBuf) SelectTarget(sqi vl.SQI, now uint64) (addr mem.Addr, cookie int, sendTick uint64, ok bool) {
	head, exists := b.headOf(sqi)
	if !exists {
		return 0, 0, 0, false
	}
	idx := head
	for {
		if b.flags[idx] == entValid { // valid and not on-fly
			addr = b.base[idx] + mem.Addr(int(b.off[idx])*config.LineBytes)
			sendTick = b.alg.SendTick(&b.pred[idx], now)
			if cap := now + config.DelayCapCycles; sendTick > cap {
				sendTick = cap
			}
			b.flags[idx] |= entOnFly
			b.specHead[sqi] = b.next[idx]
			return addr, idx, sendTick, true
		}
		idx = int(b.next[idx])
		if idx == head {
			return 0, 0, 0, false
		}
	}
}

// OnResult implements vl.SpecExtension: clear the on-fly throttle, rotate
// Offset on success, and feed the outcome to the delay algorithm.
func (b *SpecBuf) OnResult(cookie int, hit bool, now uint64) {
	if b.flags[cookie]&entValid == 0 {
		return // unregistered while in flight
	}
	b.flags[cookie] &^= entOnFly
	if hit {
		b.off[cookie]++
		if b.off[cookie] >= b.size[cookie] {
			b.off[cookie] = 0
		}
	}
	b.alg.OnResponse(&b.pred[cookie], hit, now)
}

// Entries returns the number of valid entries (for tests/diagnostics).
func (b *SpecBuf) Entries() int { return b.live }

// FreeEntries reports the remaining capacity.
func (b *SpecBuf) FreeEntries() int { return len(b.free) }

// HighWater reports the maximum number of simultaneously valid entries
// the buffer has ever held — the occupancy peak the §4.5 resource
// discussion would size specBuf by.
func (b *SpecBuf) HighWater() int { return b.highWater }

// EntriesOf returns the entry indices of an SQI in loop order starting at
// the current specHead. Intended for tests.
func (b *SpecBuf) EntriesOf(sqi vl.SQI) []int {
	head, ok := b.headOf(sqi)
	if !ok {
		return nil
	}
	var out []int
	idx := head
	for {
		out = append(out, idx)
		idx = int(b.next[idx])
		if idx == head {
			return out
		}
	}
}

// Entry returns a snapshot of entry i for inspection.
func (b *SpecBuf) Entry(i int) SpecEntry {
	return SpecEntry{
		Valid:  b.flags[i]&entValid != 0,
		SQI:    b.sqi[i],
		Base:   b.base[i],
		Len:    int(b.size[i]),
		Offset: int(b.off[i]),
		Next:   int(b.next[i]),
		OnFly:  b.flags[i]&entOnFly != 0,
		Pred:   b.pred[i],
	}
}

var _ vl.SpecExtension = (*SpecBuf)(nil)
