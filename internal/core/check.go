package core

import "fmt"

// OnFlyCount reports how many entries currently hold the on-fly
// throttle bit — i.e. have a speculative push in flight. At any drained
// point it must be zero; the verification oracle checks that.
func (b *SpecBuf) OnFlyCount() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].Valid && b.entries[i].OnFly {
			n++
		}
	}
	return n
}

// CheckStructure verifies the specBuf structural invariants: the free
// list and the valid entries partition the table; every SQI's Next chain
// is a closed loop of valid entries of that SQI containing the SQI's
// specHead; every valid entry is reachable from its SQI's head; and each
// entry's Offset stays inside its registered segment. It returns the
// first inconsistency found, or nil.
func (b *SpecBuf) CheckStructure() error {
	valid := 0
	for i := range b.entries {
		e := &b.entries[i]
		if !e.Valid {
			continue
		}
		valid++
		if e.Len <= 0 {
			return fmt.Errorf("core: specBuf entry %d has segment length %d", i, e.Len)
		}
		if e.Offset < 0 || e.Offset >= e.Len {
			return fmt.Errorf("core: specBuf entry %d Offset %d outside [0,%d)", i, e.Offset, e.Len)
		}
	}
	if valid+len(b.free) != len(b.entries) {
		return fmt.Errorf("core: %d valid + %d free != %d specBuf entries", valid, len(b.free), len(b.entries))
	}
	seen := make([]bool, len(b.entries))
	for _, idx := range b.free {
		if idx < 0 || idx >= len(b.entries) {
			return fmt.Errorf("core: specBuf free list holds out-of-range index %d", idx)
		}
		if b.entries[idx].Valid {
			return fmt.Errorf("core: specBuf entry %d on free list but valid", idx)
		}
		if seen[idx] {
			return fmt.Errorf("core: specBuf entry %d on free list twice", idx)
		}
		seen[idx] = true
	}
	reachable := 0
	for sqi, head := range b.specHead {
		if head < 0 {
			continue
		}
		idx := int(head)
		for steps := 0; ; steps++ {
			if idx < 0 || idx >= len(b.entries) {
				return fmt.Errorf("core: SQI %d loop holds out-of-range index %d", sqi, idx)
			}
			e := &b.entries[idx]
			if !e.Valid {
				return fmt.Errorf("core: SQI %d loop reaches invalid entry %d", sqi, idx)
			}
			if int(e.SQI) != sqi {
				return fmt.Errorf("core: entry %d in SQI %d loop is tagged SQI %d", idx, sqi, e.SQI)
			}
			if seen[idx] {
				return fmt.Errorf("core: specBuf entry %d reached twice (broken loop)", idx)
			}
			seen[idx] = true
			reachable++
			if steps > len(b.entries) {
				return fmt.Errorf("core: SQI %d loop does not close", sqi)
			}
			idx = e.Next
			if idx == int(head) {
				break
			}
		}
	}
	if reachable != valid {
		return fmt.Errorf("core: %d valid specBuf entries but only %d reachable from specHeads", valid, reachable)
	}
	return nil
}
