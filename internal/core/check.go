package core

import "fmt"

// OnFlyCount reports how many entries currently hold the on-fly
// throttle bit — i.e. have a speculative push in flight. At any drained
// point it must be zero; the verification oracle checks that.
func (b *SpecBuf) OnFlyCount() int {
	n := 0
	for _, f := range b.flags {
		if f == entValid|entOnFly {
			n++
		}
	}
	return n
}

// CheckStructure verifies the specBuf structural invariants: the SoA
// columns agree in length; flag bytes hold only defined bits, and on-fly
// is only ever set on a valid entry; the free list and the valid entries
// partition the table, and the live counter matches; the occupancy
// high-water mark bounds the live count and never exceeds capacity;
// every SQI's Next chain is a closed loop of valid entries of that SQI
// containing the SQI's specHead; every valid entry is reachable from its
// SQI's head; and each entry's Offset stays inside its registered
// segment. It returns the first inconsistency found, or nil.
func (b *SpecBuf) CheckStructure() error {
	n := len(b.flags)
	if len(b.next) != n || len(b.sqi) != n || len(b.base) != n ||
		len(b.size) != n || len(b.off) != n || len(b.pred) != n {
		return fmt.Errorf("core: specBuf columns disagree: flags=%d next=%d sqi=%d base=%d size=%d off=%d pred=%d",
			n, len(b.next), len(b.sqi), len(b.base), len(b.size), len(b.off), len(b.pred))
	}
	valid := 0
	for i, f := range b.flags {
		if f&^(entValid|entOnFly) != 0 {
			return fmt.Errorf("core: specBuf entry %d holds undefined flag bits %#x", i, f)
		}
		if f&entValid == 0 {
			if f&entOnFly != 0 {
				return fmt.Errorf("core: specBuf entry %d on-fly but not valid", i)
			}
			continue
		}
		valid++
		if b.size[i] <= 0 {
			return fmt.Errorf("core: specBuf entry %d has segment length %d", i, b.size[i])
		}
		if b.off[i] < 0 || b.off[i] >= b.size[i] {
			return fmt.Errorf("core: specBuf entry %d Offset %d outside [0,%d)", i, b.off[i], b.size[i])
		}
	}
	if valid != b.live {
		return fmt.Errorf("core: %d valid specBuf entries but live counter says %d", valid, b.live)
	}
	if b.highWater < valid || b.highWater > n {
		return fmt.Errorf("core: specBuf high-water %d outside [live %d, capacity %d]", b.highWater, valid, n)
	}
	if valid+len(b.free) != n {
		return fmt.Errorf("core: %d valid + %d free != %d specBuf entries", valid, len(b.free), n)
	}
	seen := make([]bool, n)
	for _, idx := range b.free {
		if idx < 0 || int(idx) >= n {
			return fmt.Errorf("core: specBuf free list holds out-of-range index %d", idx)
		}
		if b.flags[idx]&entValid != 0 {
			return fmt.Errorf("core: specBuf entry %d on free list but valid", idx)
		}
		if seen[idx] {
			return fmt.Errorf("core: specBuf entry %d on free list twice", idx)
		}
		seen[idx] = true
	}
	reachable := 0
	for sqi, head := range b.specHead {
		if head < 0 {
			continue
		}
		idx := int(head)
		for steps := 0; ; steps++ {
			if idx < 0 || idx >= n {
				return fmt.Errorf("core: SQI %d loop holds out-of-range index %d", sqi, idx)
			}
			if b.flags[idx]&entValid == 0 {
				return fmt.Errorf("core: SQI %d loop reaches invalid entry %d", sqi, idx)
			}
			if int(b.sqi[idx]) != sqi {
				return fmt.Errorf("core: entry %d in SQI %d loop is tagged SQI %d", idx, sqi, b.sqi[idx])
			}
			if seen[idx] {
				return fmt.Errorf("core: specBuf entry %d reached twice (broken loop)", idx)
			}
			seen[idx] = true
			reachable++
			if steps > n {
				return fmt.Errorf("core: SQI %d loop does not close", sqi)
			}
			idx = int(b.next[idx])
			if idx == int(head) {
				break
			}
		}
	}
	if reachable != valid {
		return fmt.Errorf("core: %d valid specBuf entries but only %d reachable from specHeads", valid, reachable)
	}
	return nil
}
