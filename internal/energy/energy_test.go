package energy

import (
	"math"
	"testing"

	"spamer"
	"spamer/internal/vl"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAreaDefaults(t *testing.T) {
	r := Area(0)
	if !almost(r.BufferAreaMM2, 0.156, 1e-9) {
		t.Fatalf("buffer area = %v", r.BufferAreaMM2)
	}
	if !almost(r.TotalAreaMM2, 0.170, 1e-9) {
		t.Fatalf("total area = %v", r.TotalAreaMM2)
	}
	// "within 15% increase from the area of VLRD"
	if r.IncreasePct < 0 || r.IncreasePct > 15.01 {
		t.Fatalf("increase = %v%%", r.IncreasePct)
	}
	// "making SRD cost less than 1% of the overall SoC area"
	if !r.UnderOnePctSoC {
		t.Fatalf("share = %v", r.SRDShareOfSoC)
	}
	if !almost(r.SoCAreaMM2, 18.4, 0.01) {
		t.Fatalf("SoC area = %v", r.SoCAreaMM2)
	}
}

func TestAreaScalesWithEntries(t *testing.T) {
	small := Area(32)
	big := Area(128)
	if small.BufferAreaMM2 >= big.BufferAreaMM2 {
		t.Fatal("buffer area not monotone in entries")
	}
	if !almost(small.BufferAreaMM2*4, big.BufferAreaMM2, 1e-9) {
		t.Fatalf("buffer area not linear: %v vs %v", small.BufferAreaMM2, big.BufferAreaMM2)
	}
}

func TestScaleArea(t *testing.T) {
	scaled, err := ScaleArea(1.0, 45, 16)
	if err != nil {
		t.Fatal(err)
	}
	if scaled <= 0 || scaled >= 1 {
		t.Fatalf("45->16 scale = %v, want in (0,1)", scaled)
	}
	back, err := ScaleArea(scaled, 16, 45)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(back, 1.0, 1e-9) {
		t.Fatalf("round trip = %v", back)
	}
	if _, err := ScaleArea(1, 44, 16); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestPowerPaperBounds(t *testing.T) {
	// The paper's worst case: tuned at 5.03x push frequency gives
	// "47.75 mW for SRD power in total at most".
	r := Power(5.03)
	if !almost(r.TotalMW, 47.75, 0.05) {
		t.Fatalf("tuned-bound power = %v", r.TotalMW)
	}
	if !r.WithinPaper {
		t.Fatal("paper bound violated by paper's own factor")
	}
	// "SRD would only contribute to about 0.23% of the total power"
	if !almost(r.ShareOfSoC, 0.0023, 0.0003) {
		t.Fatalf("share = %v", r.ShareOfSoC)
	}
	// Adaptive's 2.45x stays well within bound.
	if p := Power(2.45); !p.WithinPaper {
		t.Fatalf("adaptive power %v exceeds bound", p.TotalMW)
	}
	// Factors below 1 clamp to the baseline.
	if p := Power(0.5); p.DynamicMW != VLRDDynamicMW {
		t.Fatalf("clamped power = %v", p.DynamicMW)
	}
}

func mkResult(ticks, demand, demandMiss, spec, specMiss uint64) spamer.Result {
	return spamer.Result{
		Ticks: ticks,
		Device: vl.Stats{
			DemandPushes: demand, DemandMisses: demandMiss,
			SpecPushes: spec, SpecMisses: specMiss,
		},
	}
}

func TestPushFactor(t *testing.T) {
	base := mkResult(1000, 100, 0, 0, 0)
	run := mkResult(500, 0, 0, 150, 50)
	// run: 150 pushes / 500 ticks = 0.3; base: 100/1000 = 0.1 -> 3x.
	if f := PushFactor(run, base); !almost(f, 3.0, 1e-9) {
		t.Fatalf("factor = %v", f)
	}
	if f := PushFactor(base, base); f != 1 {
		t.Fatalf("self factor = %v", f)
	}
}

func TestFigure11Metrics(t *testing.T) {
	base := mkResult(1000, 100, 0, 0, 0)
	run := mkResult(800, 0, 0, 120, 20)
	if d := DelayNorm(run, base); !almost(d, 0.8, 1e-9) {
		t.Fatalf("delay = %v", d)
	}
	if e := EnergyNorm(run, base); !almost(e, 1.2, 1e-9) {
		t.Fatalf("energy = %v", e)
	}
}

// TestFigure11EndToEnd: on a spec-friendly workload, 0-delay runs faster
// than baseline (delay < 1) and its failed retries cost extra energy
// relative to its own successes.
func TestFigure11EndToEnd(t *testing.T) {
	run1to1 := func(alg string) spamer.Result {
		sys := spamer.NewSystem(spamer.Config{Algorithm: alg, Deadline: 1 << 32})
		q := sys.NewQueue("q")
		const n = 400
		sys.Spawn("p", func(th *spamer.Thread) {
			pr := q.NewProducer(0)
			for i := 0; i < n; i++ {
				th.Compute(10)
				pr.Push(th.Proc, uint64(i))
			}
		})
		sys.Spawn("c", func(th *spamer.Thread) {
			c := q.NewConsumer(th.Proc, 2)
			for i := 0; i < n; i++ {
				c.Pop(th.Proc)
				th.Compute(30)
			}
		})
		return sys.Run()
	}
	base := run1to1(spamer.AlgBaseline)
	zd := run1to1(spamer.AlgZeroDelay)
	if d := DelayNorm(zd, base); d >= 1.0 {
		t.Fatalf("0delay delay-norm = %v, want < 1", d)
	}
	if e := EnergyNorm(zd, base); e < 1.0 {
		t.Fatalf("0delay energy-norm = %v, want >= 1 (failed retries)", e)
	}
}
