// Package energy implements the §4.5 area and power estimation and the
// energy metric of the Figure 11 sensitivity study.
//
// The paper's numbers come from synthesizing RTL against the FreePDK
// 45 nm library and scaling to a 16 nm node with the Stillmaker-Baas
// scaling equations; we seed an analytic model with the published
// 16 nm results and regenerate the same derived quantities:
//
//   - SRD buffer area 0.156 mm², overall 0.170 mm² (≈15 % over the VLRD);
//   - VLRD dynamic power 9.33 mW, leakage 0.82 mW at 0.86 V;
//   - SRD dynamic power = VLRD dynamic power x push-frequency factor
//     (bounded by ≈2.45x for adaptive and ≈5.03x for tuned in the
//     paper's runs, giving the "at most 47.75 mW" headline);
//   - one Arm A-72 core ≈1.15 mm² at 16FF, so 16 cores ≥18.4 mm² and the
//     SRD is <1 % of SoC area; a 16-core SoC ≈21 W makes the SRD ≈0.23 %
//     of SoC power.
package energy

import (
	"fmt"

	"spamer"
	"spamer/internal/config"
)

// Published 16 nm reference constants (§4.5).
const (
	// SRDBufferAreaMM2 is the area of all SRD buffers at the Table 1
	// sizing (64 entries per structure).
	SRDBufferAreaMM2 = 0.156
	// SRDAreaMM2 is the total SRD area including control logic.
	SRDAreaMM2 = 0.170
	// VLRDAreaMM2 is the baseline routing device area ("within 15%
	// increase from the area of VLRD").
	VLRDAreaMM2 = SRDAreaMM2 / 1.15
	// VLRDDynamicMW and VLRDLeakageMW are the baseline power numbers at
	// 16FF, 0.86 V supply.
	VLRDDynamicMW = 9.33
	VLRDLeakageMW = 0.82
	// CoreAreaMM2 is one Arm A-72 core at 16FF.
	CoreAreaMM2 = 1.15
	// SoCPowerW approximates the simulated 16-core SoC power.
	SoCPowerW = 21.0
)

// stillmakerArea maps technology nodes (nm) to relative logic area,
// normalized to 45 nm = 1.0, following the shape of the Stillmaker-Baas
// scaling tables the paper cites.
var stillmakerArea = map[int]float64{
	180: 13.1,
	130: 7.55,
	90:  3.61,
	65:  1.96,
	45:  1.0,
	32:  0.50,
	22:  0.23,
	16:  0.115,
	14:  0.103,
	10:  0.066,
	7:   0.031,
}

// ScaleArea converts an area synthesized at node `from` (nm) to node
// `to` (nm). Unknown nodes return an error.
func ScaleArea(areaMM2 float64, from, to int) (float64, error) {
	f, ok := stillmakerArea[from]
	if !ok {
		return 0, fmt.Errorf("energy: unknown node %dnm", from)
	}
	t, ok := stillmakerArea[to]
	if !ok {
		return 0, fmt.Errorf("energy: unknown node %dnm", to)
	}
	return areaMM2 * t / f, nil
}

// AreaReport is the §4.5 area summary.
type AreaReport struct {
	Entries        int     // specBuf/prodBuf/consBuf/linkTab entries
	BufferAreaMM2  float64 // all SRD buffers
	TotalAreaMM2   float64 // buffers + control
	VLRDAreaMM2    float64 // baseline device for comparison
	IncreasePct    float64 // SRD over VLRD
	SoCAreaMM2     float64 // 16 cores, excluding L2 and wires
	SRDShareOfSoC  float64 // fraction
	UnderOnePctSoC bool
}

// Area computes the report for a given per-structure entry count
// (Table 1 default 64). Buffer area scales linearly with entries;
// control logic is held at the published fixed cost.
func Area(entries int) AreaReport {
	if entries <= 0 {
		entries = config.SRDEntries
	}
	buf := SRDBufferAreaMM2 * float64(entries) / float64(config.SRDEntries)
	ctrl := SRDAreaMM2 - SRDBufferAreaMM2
	total := buf + ctrl
	soc := CoreAreaMM2 * float64(config.NumCores)
	return AreaReport{
		Entries:        entries,
		BufferAreaMM2:  buf,
		TotalAreaMM2:   total,
		VLRDAreaMM2:    VLRDAreaMM2,
		IncreasePct:    (total/VLRDAreaMM2 - 1) * 100,
		SoCAreaMM2:     soc,
		SRDShareOfSoC:  total / soc,
		UnderOnePctSoC: total/soc < 0.01,
	}
}

// PowerReport is the §4.5 power summary for one measured run.
type PowerReport struct {
	PushFactor    float64 // SRD pushes per baseline push
	DynamicMW     float64
	LeakageMW     float64
	TotalMW       float64
	ShareOfSoC    float64
	WithinPaper   bool // <= the paper's 47.75 mW bound
	PaperBoundMW  float64
	PaperShareRef float64 // the paper's ~0.23% reference
}

// Power scales the baseline dynamic power by the push-frequency factor
// ("we multiply the dynamic power by the factor of push frequency").
func Power(pushFactor float64) PowerReport {
	if pushFactor < 1 {
		pushFactor = 1
	}
	dyn := VLRDDynamicMW * pushFactor
	tot := dyn + VLRDLeakageMW
	return PowerReport{
		PushFactor:    pushFactor,
		DynamicMW:     dyn,
		LeakageMW:     VLRDLeakageMW,
		TotalMW:       tot,
		ShareOfSoC:    tot / (SoCPowerW * 1000),
		WithinPaper:   tot <= 47.75+1e-9,
		PaperBoundMW:  47.75,
		PaperShareRef: 0.0023,
	}
}

// PushFactor computes the push-frequency factor of a run relative to a
// baseline run: total stashes per unit time, normalized.
func PushFactor(run, baseline spamer.Result) float64 {
	if baseline.Ticks == 0 || run.Ticks == 0 {
		return 1
	}
	base := float64(baseline.Device.TotalPushes()) / float64(baseline.Ticks)
	if base == 0 {
		return 1
	}
	f := (float64(run.Device.TotalPushes()) / float64(run.Ticks)) / base
	if f < 1 {
		return 1
	}
	return f
}

// Figure 11 metrics: both axes normalized to the VL baseline.

// DelayNorm is the x-axis: end-to-end execution time relative to VL.
func DelayNorm(run, baseline spamer.Result) float64 {
	if baseline.Ticks == 0 {
		return 0
	}
	return float64(run.Ticks) / float64(baseline.Ticks)
}

// EnergyNorm is the y-axis: the dynamic energy of SRD pushes relative
// to VL. Dynamic energy is proportional to the number of stashes issued
// (successful and failed alike — a failed push burns the same switching
// energy and is retried).
func EnergyNorm(run, baseline spamer.Result) float64 {
	b := baseline.Device.TotalPushes()
	if b == 0 {
		return 0
	}
	return float64(run.Device.TotalPushes()) / float64(b)
}
