package trace

import (
	"strings"
	"testing"

	"spamer"
)

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvDataArrive, EvRequestArrive, EvLineVacate, EvLineFill, EvFirstUse}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad/duplicate kind string %q", s)
		}
		seen[s] = true
	}
}

func TestStitchOnDemandTransaction(t *testing.T) {
	tr := New()
	tr.AddDataArrival(100, 0)
	tr.Add(Event{Tick: 150, Kind: EvRequestArrive, Line: 0})
	tr.Add(Event{Tick: 120, Kind: EvLineVacate, Line: 0})
	tr.Add(Event{Tick: 180, Kind: EvLineFill, Line: 0, Seq: 0})
	tr.Add(Event{Tick: 190, Kind: EvFirstUse, Line: 0, Seq: 0})
	txs := tr.Transactions()
	if len(txs) != 1 {
		t.Fatalf("transactions = %d", len(txs))
	}
	tx := txs[0]
	if tx.Speculative {
		t.Fatal("transaction marked speculative despite request")
	}
	if tx.DataArrive != 100 || tx.ReqArrive != 150 || tx.Vacate != 120 || tx.Fill != 180 || tx.FirstUse != 190 {
		t.Fatalf("tx = %+v", tx)
	}
	// Request (150) was the last prerequisite before fill (180):
	// potential saving = fill - max(data, vacate) = 180 - 120 = 60.
	sv, hindered := tx.PotentialSaving()
	if !hindered || sv != 60 {
		t.Fatalf("saving = %d hindered=%v, want 60/true", sv, hindered)
	}
	if tx.Latency() != 90 {
		t.Fatalf("latency = %d, want 90", tx.Latency())
	}
}

func TestStitchSpeculativeTransaction(t *testing.T) {
	tr := New()
	tr.AddDataArrival(100, 3)
	tr.Add(Event{Tick: 110, Kind: EvLineFill, Line: 0, Seq: 3})
	tr.Add(Event{Tick: 130, Kind: EvFirstUse, Line: 0, Seq: 3})
	txs := tr.Transactions()
	if len(txs) != 1 || !txs[0].Speculative {
		t.Fatalf("txs = %+v", txs)
	}
	if _, hindered := txs[0].PotentialSaving(); hindered {
		t.Fatal("speculative transaction counted as request-hindered")
	}
}

// TestFigure7VLTrace: the on-demand trace has a request per transaction
// and some request-hindered transactions with positive potential saving
// (the dark transactions of Figure 7).
func TestFigure7VLTrace(t *testing.T) {
	tr, res := RunFigure7(DefaultFigure7(spamer.AlgBaseline))
	if res.Pushed != res.Popped {
		t.Fatalf("conservation: %d vs %d", res.Pushed, res.Popped)
	}
	txs := tr.Transactions()
	if len(txs) < 200 {
		t.Fatalf("stitched %d transactions, want ~220", len(txs))
	}
	sum := Summarize(txs)
	if sum.Speculative != 0 {
		t.Fatalf("VL trace has %d speculative transactions", sum.Speculative)
	}
	if sum.Hindered == 0 || sum.TotalSavingTk == 0 {
		t.Fatalf("no request-hindered transactions found: %+v", sum)
	}
}

// TestFigure7SpamerTrace: the SPAMeR trace has speculative transactions
// (no request arrival) and lower mean latency than the VL trace.
func TestFigure7SpamerTrace(t *testing.T) {
	trVL, _ := RunFigure7(DefaultFigure7(spamer.AlgBaseline))
	trSp, _ := RunFigure7(DefaultFigure7(spamer.AlgZeroDelay))
	sumVL := Summarize(trVL.Transactions())
	sumSp := Summarize(trSp.Transactions())
	if sumSp.Speculative == 0 {
		t.Fatal("SPAMeR trace has no speculative transactions")
	}
	if sumSp.OnDemand != 0 {
		t.Fatalf("SPAMeR trace has %d on-demand transactions", sumSp.OnDemand)
	}
	// With a single line and a producer-bound first phase, both traces
	// are dominated by data arrival; speculation must not be slower.
	if sumSp.MeanLatencyTk > sumVL.MeanLatencyTk+1 {
		t.Fatalf("SPAMeR mean latency %.1f above VL %.1f",
			sumSp.MeanLatencyTk, sumVL.MeanLatencyTk)
	}
}

func TestRenderTimeline(t *testing.T) {
	tr, _ := RunFigure7(DefaultFigure7(spamer.AlgBaseline))
	evs := tr.Events()
	var sb strings.Builder
	RenderTimeline(&sb, evs, evs[0].Tick, evs[len(evs)-1].Tick+1, 80)
	out := sb.String()
	if !strings.Contains(out, "1st data use") || !strings.Contains(out, "data arrive") {
		t.Fatalf("timeline missing rows:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("timeline has no events")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New()
	tr.AddDataArrival(10, 1)
	var sb strings.Builder
	if err := WriteCSV(&sb, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "10,data arrive,-1,1") {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestEventsSorted(t *testing.T) {
	tr := New()
	tr.Add(Event{Tick: 30, Kind: EvLineFill})
	tr.Add(Event{Tick: 10, Kind: EvDataArrive})
	tr.Add(Event{Tick: 20, Kind: EvRequestArrive})
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Tick < evs[i-1].Tick {
			t.Fatalf("events unsorted: %+v", evs)
		}
	}
}
