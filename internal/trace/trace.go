// Package trace reconstructs per-message queue transactions from
// simulator events, reproducing the §4.2 message-queue workload tracing
// and Figure 7: for each transaction it records when the producer data
// arrived at the routing device, when the consumer request arrived (on
// demand transactions only), when the target line vacated, when the data
// filled the line, and when the consumer first used it. From the
// stitched transactions it computes the paper's "potential speculative
// push saving": for on-demand transactions where the request was the
// last prerequisite, the difference between the fill timestamp and the
// later of data arrival and line vacation.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"spamer"
	"spamer/internal/config"
	"spamer/internal/mem"
)

// EventKind labels the Figure 7 marker rows (bottom to top).
type EventKind uint8

const (
	// EvDataArrive is producer data reaching the routing device.
	EvDataArrive EventKind = iota
	// EvRequestArrive is a consumer request reaching the routing device.
	EvRequestArrive
	// EvLineVacate is the consumer line becoming ready for new data.
	EvLineVacate
	// EvLineFill is producer data filling the consumer line.
	EvLineFill
	// EvFirstUse is the consumer's first use of the data.
	EvFirstUse
	numEventKinds
)

func (k EventKind) String() string {
	switch k {
	case EvDataArrive:
		return "data arrive"
	case EvRequestArrive:
		return "request arrive"
	case EvLineVacate:
		return "$line vacate"
	case EvLineFill:
		return "fill $line"
	case EvFirstUse:
		return "1st data use"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one timestamped marker.
type Event struct {
	Tick uint64
	Kind EventKind
	Line int    // line index within the endpoint (-1 if n/a)
	Seq  uint64 // message sequence number where known
}

// Transaction is one message's life cycle, stitched from events.
type Transaction struct {
	Seq         uint64
	DataArrive  uint64
	ReqArrive   uint64 // 0 when speculative (no request)
	Vacate      uint64 // 0 for the first use of a line
	Fill        uint64
	FirstUse    uint64
	Speculative bool
}

// PotentialSaving returns the Figure 7 metric for on-demand
// transactions: how much earlier the fill could have happened had a
// speculative push been triggered — fill minus the later of data arrival
// and line vacation — and whether the transaction was
// request-hindered (the request was the last of the three
// prerequisites).
func (tx Transaction) PotentialSaving() (saving uint64, hindered bool) {
	if tx.Speculative {
		return 0, false
	}
	ready := tx.DataArrive
	if tx.Vacate > ready {
		ready = tx.Vacate
	}
	if tx.ReqArrive <= ready || tx.Fill <= ready {
		return 0, false
	}
	return tx.Fill - ready, true
}

// Latency is first-use minus data arrival: the end-to-end load-to-use
// component the routing device controls.
func (tx Transaction) Latency() uint64 {
	if tx.FirstUse < tx.DataArrive {
		return 0
	}
	return tx.FirstUse - tx.DataArrive
}

// Tracer collects events from one consumer endpoint.
type Tracer struct {
	events []Event
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Attach hooks the tracer onto a consumer endpoint. Data-arrival events
// are approximated by the push-accept tick at the device; request
// arrivals come from the endpoint's fetch hook plus the transit latency.
func (t *Tracer) Attach(c *spamer.Consumer) {
	inner := c.Inner()
	inner.OnFetch = func(tick uint64, lineIdx int) {
		// The request reaches the device one hop + serialization later.
		t.Add(Event{Tick: tick + config.HopCycles + config.CtrlPacketCycles, Kind: EvRequestArrive, Line: lineIdx})
	}
	for i, l := range c.Lines() {
		i := i
		l.SetTraceHooks(
			func(tick uint64, msg mem.Message) {
				t.Add(Event{Tick: tick, Kind: EvLineFill, Line: i, Seq: msg.Seq})
			},
			func(tick uint64) {
				t.Add(Event{Tick: tick, Kind: EvLineVacate, Line: i})
			},
			func(tick uint64, msg mem.Message) {
				t.Add(Event{Tick: tick, Kind: EvFirstUse, Line: i, Seq: msg.Seq})
			},
		)
	}
}

// AddDataArrival records a producer push reaching the device. The
// harness wires this from the producer side (push accept time).
func (t *Tracer) AddDataArrival(tick uint64, seq uint64) {
	t.Add(Event{Tick: tick, Kind: EvDataArrive, Line: -1, Seq: seq})
}

// Add appends a raw event.
func (t *Tracer) Add(e Event) { t.events = append(t.events, e) }

// Events returns all recorded events in time order.
func (t *Tracer) Events() []Event {
	out := make([]Event, len(t.events))
	copy(out, t.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Tick < out[j].Tick })
	return out
}

// Transactions stitches events into per-message transactions for a
// single-line, single-producer trace (the configuration of Figure 7:
// "single message queue, a single consumer cacheline, and single
// producer thread"). Messages are matched in arrival order.
func (t *Tracer) Transactions() []Transaction {
	evs := t.Events()
	var arrivals, requests, vacates []uint64
	fills := map[uint64]*Transaction{}
	var order []uint64
	for _, e := range evs {
		switch e.Kind {
		case EvDataArrive:
			arrivals = append(arrivals, e.Tick)
		case EvRequestArrive:
			requests = append(requests, e.Tick)
		case EvLineVacate:
			vacates = append(vacates, e.Tick)
		case EvLineFill:
			tx := &Transaction{Seq: e.Seq, Fill: e.Tick}
			if len(order) < len(arrivals) {
				tx.DataArrive = arrivals[len(order)]
			}
			// A vacate that precedes this fill belongs to it (the
			// previous message leaving the line).
			for len(vacates) > 0 && vacates[0] <= e.Tick {
				tx.Vacate = vacates[0]
				vacates = vacates[1:]
			}
			if len(requests) > 0 && requests[0] <= e.Tick {
				tx.ReqArrive = requests[0]
				requests = requests[1:]
			} else {
				tx.Speculative = true
			}
			fills[e.Seq] = tx
			order = append(order, e.Seq)
		case EvFirstUse:
			if tx, ok := fills[e.Seq]; ok && tx.FirstUse == 0 {
				tx.FirstUse = e.Tick
			}
		}
	}
	out := make([]Transaction, 0, len(order))
	for _, seq := range order {
		out = append(out, *fills[seq])
	}
	return out
}

// Summary aggregates a trace.
type Summary struct {
	Transactions    int
	Speculative     int
	OnDemand        int
	Hindered        int    // on-demand transactions delayed by the request
	TotalSavingTk   uint64 // summed potential savings (ticks)
	MeanLatencyTk   float64
	MeanLatSpecTk   float64
	MeanLatDemandTk float64
}

// Summarize computes the aggregate view of a transaction list.
func Summarize(txs []Transaction) Summary {
	var s Summary
	var lat, latSpec, latDemand, nSpecLat, nDemandLat float64
	for _, tx := range txs {
		s.Transactions++
		if tx.Speculative {
			s.Speculative++
			latSpec += float64(tx.Latency())
			nSpecLat++
		} else {
			s.OnDemand++
			latDemand += float64(tx.Latency())
			nDemandLat++
		}
		if sv, h := tx.PotentialSaving(); h {
			s.Hindered++
			s.TotalSavingTk += sv
		}
		lat += float64(tx.Latency())
	}
	if s.Transactions > 0 {
		s.MeanLatencyTk = lat / float64(s.Transactions)
	}
	if nSpecLat > 0 {
		s.MeanLatSpecTk = latSpec / nSpecLat
	}
	if nDemandLat > 0 {
		s.MeanLatDemandTk = latDemand / nDemandLat
	}
	return s
}

// RenderTimeline writes a Figure 7-style ASCII timeline: one row per
// event kind (top: 1st data use ... bottom: data arrive), one column per
// time bucket; on-demand transactions render as 'o', speculative fills
// as '*'.
func RenderTimeline(w io.Writer, evs []Event, fromTick, toTick uint64, cols int) {
	if cols <= 0 {
		cols = 100
	}
	if toTick <= fromTick {
		return
	}
	span := toTick - fromTick
	grid := make([][]byte, numEventKinds)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", cols))
	}
	specFills := map[uint64]bool{}
	// Pre-scan for speculative fills: a fill with no request at or
	// before it (coarse per-event view).
	pendingReqs := 0
	for _, e := range evs {
		switch e.Kind {
		case EvRequestArrive:
			pendingReqs++
		case EvLineFill:
			if pendingReqs == 0 {
				specFills[e.Tick] = true
			} else {
				pendingReqs--
			}
		}
	}
	for _, e := range evs {
		if e.Tick < fromTick || e.Tick >= toTick {
			continue
		}
		col := int(uint64(cols) * (e.Tick - fromTick) / span)
		if col >= cols {
			col = cols - 1
		}
		ch := byte('o')
		if e.Kind == EvLineFill && specFills[e.Tick] {
			ch = '*'
		}
		grid[e.Kind][col] = ch
	}
	rows := []EventKind{EvFirstUse, EvLineFill, EvLineVacate, EvRequestArrive, EvDataArrive}
	for _, k := range rows {
		fmt.Fprintf(w, "%-15s %s\n", k, grid[k])
	}
	fmt.Fprintf(w, "%-15s %d..%d ticks ('o' on-demand, '*' speculative fill)\n", "", fromTick, toTick)
}

// WriteCSV dumps events for external plotting.
func WriteCSV(w io.Writer, evs []Event) error {
	if _, err := fmt.Fprintln(w, "tick,event,line,seq"); err != nil {
		return err
	}
	for _, e := range evs {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d\n", e.Tick, e.Kind, e.Line, e.Seq); err != nil {
			return err
		}
	}
	return nil
}
