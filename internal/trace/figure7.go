package trace

import (
	"spamer"
	"spamer/internal/workloads"
)

// Figure7Config parameterizes the §4.2 tracing experiment. The paper
// traces incast "configured to have a single message queue, a single
// consumer cacheline, and single producer thread", with a two-phase
// producer: steady at first, then bursty, so the trace shows both
// producer-bound and consumer-bound transactions.
type Figure7Config struct {
	Algorithm string // "vl" for the on-demand trace, or a SPAMeR algorithm
	Messages  int
	ProdWork  uint64
	ConsWork  uint64
	Burst     int // producer burst length for the second phase
	Lines     int
}

// DefaultFigure7 mirrors the paper's setup.
func DefaultFigure7(alg string) Figure7Config {
	return Figure7Config{Algorithm: alg, Messages: 220, ProdWork: 90, ConsWork: 60, Burst: 16, Lines: 1}
}

// RunFigure7 builds the reduced incast, attaches a tracer, runs it, and
// returns the tracer plus the run result.
func RunFigure7(cfg Figure7Config) (*Tracer, spamer.Result) {
	sys := spamer.NewSystem(spamer.Config{Algorithm: cfg.Algorithm, Deadline: 1 << 34})
	tr := New()
	workloads.BuildIncast(sys, workloads.IncastParams{
		Producers: 1,
		PerProd:   cfg.Messages,
		ProdWork:  cfg.ProdWork,
		ConsWork:  cfg.ConsWork,
		ConsLines: cfg.Lines,
		Burst:     cfg.Burst,
		OnConsumer: func(c *spamer.Consumer) {
			tr.Attach(c)
		},
	})
	// Wire the producer's accept hook once it exists: the producer
	// endpoint is created inside the spawned thread, so hook at tick 1.
	sys.Kernel().At(1, func() {
		for _, q := range sys.Queues() {
			for _, pr := range q.Inner().Producers() {
				pr.OnAccept = tr.AddDataArrival
			}
		}
	})
	res := sys.Run()
	return tr, res
}
