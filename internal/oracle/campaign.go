package oracle

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"spamer"
	"spamer/internal/config"
	"spamer/internal/oracle/gen"
	"spamer/internal/workloads/dag"
)

// dagOf returns the case's workload DAG, or nil.
func dagOf(cs *gen.Case) *dag.Spec {
	if cs.Shape == nil {
		return nil
	}
	return cs.Shape.DAG
}

// CampaignOptions parameterizes a randomized verification campaign.
type CampaignOptions struct {
	// Seed is the campaign's base seed; case i derives its own seed from
	// it, so any failing case replays independently.
	Seed uint64
	// N is the number of random cases to check.
	N int
	// Domains is the lane-count list for cross-kernel checks on
	// parallel-safe cases (default 1, 2, 4, 8, 16).
	Domains []int
	// ReproDir is where minimized failing cases are written as JSON
	// ("" = current directory).
	ReproDir string
	// Workers, when > 0, additionally runs every case through a fabric
	// worker pool of that size and requires the distributed outcomes to
	// be byte-identical to a local run (the distributed-vs-local
	// differential; docs/FABRIC.md).
	Workers int
	// Log, when non-nil, receives one progress line per failure and a
	// periodic heartbeat.
	Log io.Writer
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Cases    int           `json:"cases"`
	Runs     int           `json:"runs"`
	Failures []CaseFailure `json:"failures,omitempty"`
}

// CaseFailure is one failing case: the minimized reproducer, the
// original case it shrank from, and the violations the minimized case
// still triggers.
type CaseFailure struct {
	Case       gen.Case    `json:"case"`
	Original   gen.Case    `json:"original_case"`
	Violations []Violation `json:"violations"`
	ReproPath  string      `json:"repro_path,omitempty"`
}

// caseSeed spreads the campaign seed across case indices.
func caseSeed(base uint64, i int) uint64 {
	return (base + uint64(i)) * 0x9e3779b97f4a7c15
}

// Campaign draws N random cases and checks each under the full
// invariant battery (CheckCase). Every failing case is minimized and
// written to ReproDir; the campaign continues past failures so one bug
// does not mask another.
func Campaign(opts CampaignOptions) (CampaignResult, error) {
	if opts.N <= 0 {
		opts.N = 50
	}
	domains := opts.Domains
	if domains == nil {
		domains = []int{1, 2, 4, 8, 16}
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	var dc *DistributedChecker
	if opts.Workers > 0 {
		var err error
		if dc, err = NewDistributedChecker(opts.Workers); err != nil {
			return CampaignResult{}, err
		}
		defer dc.Close()
		logf("oracle: distributed differential on, %d workers", dc.Workers())
	}
	var res CampaignResult
	for i := 0; i < opts.N; i++ {
		seed := caseSeed(opts.Seed, i)
		cs := gen.New(seed).Case(domains)
		cs.Seed = seed
		rep := CheckCase(cs)
		res.Cases++
		res.Runs += rep.Runs
		if dc != nil {
			vs, runs := dc.Check(cs)
			res.Runs += runs
			if len(vs) > 0 {
				// A divergence is a fabric bug, not a simulator bug:
				// Minimize replays through CheckCase and would never
				// reproduce it, so record the case as-is.
				logf("oracle: case %d (seed %#x) DISTRIBUTED DIVERGENCE: %s", i, seed, vs[0])
				fail := CaseFailure{Case: cs, Original: cs, Violations: vs}
				path, err := writeRepro(opts.ReproDir, seed, fail)
				if err != nil {
					return res, fmt.Errorf("oracle: writing repro: %w", err)
				}
				fail.ReproPath = path
				res.Failures = append(res.Failures, fail)
			}
		}
		if i > 0 && i%25 == 0 {
			logf("oracle: %d/%d cases, %d runs, %d failures", i, opts.N, res.Runs, len(res.Failures))
		}
		if !rep.Failed() {
			continue
		}
		logf("oracle: case %d (seed %#x) FAILED: %s", i, seed, rep.Violations[0])
		min, runs := Minimize(cs)
		res.Runs += runs
		fail := CaseFailure{Case: min.Case, Original: cs, Violations: min.Violations}
		path, err := writeRepro(opts.ReproDir, seed, fail)
		if err != nil {
			return res, fmt.Errorf("oracle: writing repro: %w", err)
		}
		fail.ReproPath = path
		logf("oracle: minimized repro written to %s", path)
		res.Failures = append(res.Failures, fail)
	}
	return res, nil
}

// writeRepro persists a failure as an indented JSON file the
// spamer-verify CLI can replay with -repro.
func writeRepro(dir string, seed uint64, fail CaseFailure) (string, error) {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("oracle-repro-%016x.json", seed))
	data, err := json.MarshalIndent(fail, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReproFile loads a failure file previously written by a campaign.
func ReadReproFile(path string) (CaseFailure, error) {
	var fail CaseFailure
	data, err := os.ReadFile(path)
	if err != nil {
		return fail, err
	}
	if err := json.Unmarshal(data, &fail); err != nil {
		return fail, fmt.Errorf("oracle: repro file %s: %w", path, err)
	}
	return fail, nil
}

// minimizeBudget bounds the candidate CheckCase runs one minimization
// may spend.
const minimizeBudget = 48

// Minimize greedily shrinks a failing case while it still violates any
// invariant, returning the smallest failing report found and the number
// of candidate runs spent. The shrink moves work on the case's data —
// halving message counts, dropping stages/endpoints/algorithms, and
// clearing pressure knobs — so the repro a campaign emits is as close
// to minimal as a bounded greedy pass gets.
func Minimize(cs gen.Case) (CaseReport, int) {
	best := CheckCase(cs)
	runs := 1
	if !best.Failed() {
		return best, runs // flaky environment failure; nothing to shrink
	}
	for runs < minimizeBudget {
		improved := false
		for _, cand := range shrinkSteps(best.Case) {
			if runs >= minimizeBudget {
				break
			}
			rep := CheckCase(cand)
			runs++
			if rep.Failed() {
				best = rep
				improved = true
				break // restart shrinking from the smaller case
			}
		}
		if !improved {
			break
		}
	}
	return best, runs
}

// shrinkSteps proposes strictly-smaller variants of a case, most
// aggressive first.
func shrinkSteps(cs gen.Case) []gen.Case {
	var out []gen.Case
	add := func(mut func(*gen.Case)) {
		c := cloneCase(cs)
		mut(&c)
		out = append(out, c)
	}
	if sh := cs.Shape; sh != nil && sh.DAG != nil {
		out = append(out, dagShrinkSteps(cs)...)
	} else if sh != nil {
		if sh.Messages > 1 {
			add(func(c *gen.Case) { c.Shape.Messages /= 2 })
			add(func(c *gen.Case) { c.Shape.Messages = 1 })
		}
		if sh.Stages > 2 {
			add(func(c *gen.Case) { c.Shape.Stages = 2 })
		}
		if sh.Producers > 1 {
			add(func(c *gen.Case) { c.Shape.Producers = 1 })
		}
		if sh.Consumers > 1 {
			add(func(c *gen.Case) { c.Shape.Consumers = 1 })
		}
		if sh.Burst > 0 {
			add(func(c *gen.Case) { c.Shape.Burst, c.Shape.BurstGap = 0, 0 })
		}
		if sh.Arrival != nil {
			// Peel the overlays first (a storm or ramp may be the
			// trigger), then the whole arrival process.
			if sh.Arrival.StormBurst > 0 {
				add(func(c *gen.Case) { c.Shape.Arrival.StormEvery, c.Shape.Arrival.StormBurst = 0, 0 })
			}
			if sh.Arrival.RampPeriod > 0 {
				add(func(c *gen.Case) { c.Shape.Arrival.RampPeriod, c.Shape.Arrival.RampPeak = 0, 0 })
			}
			if sh.Arrival.Users > 1 {
				add(func(c *gen.Case) { c.Shape.Arrival.Users = 1 })
			}
			if sh.Arrival.Process != "" && sh.Arrival.Process != "poisson" {
				add(func(c *gen.Case) {
					c.Shape.Arrival.Process = ""
					c.Shape.Arrival.BurstyGap, c.Shape.Arrival.MeanDwell = 0, 0
					c.Shape.Arrival.Alpha, c.Shape.Arrival.MaxGap = 0, 0
				})
			}
			add(func(c *gen.Case) { c.Shape.Arrival = nil })
		}
		if sh.ProdWork > 0 || sh.ConsWork > 0 {
			add(func(c *gen.Case) { c.Shape.ProdWork, c.Shape.ConsWork = 0, 0 })
		}
		if sh.Lines > 1 {
			add(func(c *gen.Case) { c.Shape.Lines = 1 })
		}
		if sh.Window > 0 {
			add(func(c *gen.Case) { c.Shape.Window = 0 })
		}
	}
	if len(cs.Spec.Algorithms) > 2 {
		for i := 1; i < len(cs.Spec.Algorithms); i++ {
			i := i
			add(func(c *gen.Case) {
				c.Spec.Algorithms = append(c.Spec.Algorithms[:i:i], c.Spec.Algorithms[i+1:]...)
			})
		}
	} else if len(cs.Spec.Algorithms) == 2 && cs.Spec.Algorithms[0] == spamer.AlgBaseline {
		add(func(c *gen.Case) { c.Spec.Algorithms = c.Spec.Algorithms[:1] })
	}
	if cs.EvictEvery > 0 {
		add(func(c *gen.Case) { c.EvictEvery = 0 })
	}
	if len(cs.Domains) > 2 {
		add(func(c *gen.Case) { c.Domains = []int{c.Domains[0], c.Domains[len(c.Domains)-1]} })
	} else if len(cs.Domains) > 0 {
		add(func(c *gen.Case) { c.Domains = nil })
	}
	if cs.Spec.SRDEntries > 0 {
		// Resetting to the default table size is only a valid shrink
		// when the workload's queue footprint still fits (DAGs can
		// legitimately need enlarged tables).
		if d := dagOf(&cs); d == nil || d.Queues() <= config.SRDEntries {
			add(func(c *gen.Case) { c.Spec.SRDEntries = 0 })
		}
	}
	if cs.Spec.HopLatency > 0 {
		add(func(c *gen.Case) { c.Spec.HopLatency = 0 })
	}
	if cs.Spec.Channels > 0 {
		add(func(c *gen.Case) { c.Spec.Channels = 0 })
	}
	if cs.Spec.Tuned != nil {
		add(func(c *gen.Case) { c.Spec.Tuned = nil })
	}
	if cs.Spec.NoInline {
		add(func(c *gen.Case) { c.Spec.NoInline = false })
	}
	return out
}

// dagShrinkSteps proposes strictly-smaller variants of a workload-DAG
// case: peel sink stages, drop edges, collapse replica pools, halve
// source counts, simplify drives, and clear compute/tuning knobs.
// Every candidate is pre-filtered through Validate — CheckCase reports
// an invalid case as an "invalid-case" violation, which the greedy
// minimizer would otherwise mistake for a smaller still-failing repro.
func dagShrinkSteps(cs gen.Case) []gen.Case {
	var out []gen.Case
	add := func(mut func(*dag.Spec)) {
		c := cloneCase(cs)
		mut(c.Shape.DAG)
		if c.Shape.DAG.Validate() != nil {
			return
		}
		out = append(out, c)
	}
	d := cs.Shape.DAG

	// Peel sink stages (with their in-edges); dropping an interior stage
	// would orphan its consumers, which the Validate filter rejects.
	hasOut := make(map[string]bool, len(d.Stages))
	for _, e := range d.Edges {
		hasOut[e.From] = true
	}
	if len(d.Stages) > 1 {
		for i := range d.Stages {
			if hasOut[d.Stages[i].Name] {
				continue
			}
			i, name := i, d.Stages[i].Name
			add(func(s *dag.Spec) {
				s.Stages = append(s.Stages[:i:i], s.Stages[i+1:]...)
				kept := s.Edges[:0]
				for _, e := range s.Edges {
					if e.To != name {
						kept = append(kept, e)
					}
				}
				s.Edges = kept
			})
		}
	}
	for i := range d.Edges {
		i := i
		add(func(s *dag.Spec) { s.Edges = append(s.Edges[:i:i], s.Edges[i+1:]...) })
	}
	for _, st := range d.Stages {
		if st.Replicas > 1 {
			add(func(s *dag.Spec) {
				for j := range s.Stages {
					s.Stages[j].Replicas = 1
				}
			})
			break
		}
	}
	for _, st := range d.Stages {
		if st.Messages > 1 {
			add(func(s *dag.Spec) {
				for j := range s.Stages {
					if s.Stages[j].Messages > 1 {
						s.Stages[j].Messages /= 2
					}
				}
			})
			add(func(s *dag.Spec) {
				for j := range s.Stages {
					if s.Stages[j].Messages > 1 {
						s.Stages[j].Messages = 1
					}
				}
			})
			break
		}
	}
	for i, st := range d.Stages {
		if len(st.Replay) > 1 {
			i := i
			add(func(s *dag.Spec) {
				st := &s.Stages[i]
				st.Replay = st.Replay[:len(st.Replay)/2]
			})
		}
		if len(st.Replay) > 0 {
			// Replace the recorded trace with a plain closed-loop count.
			i, n := i, len(st.Replay)
			add(func(s *dag.Spec) {
				st := &s.Stages[i]
				st.Replay, st.ReplayFile, st.WorkPerByte = nil, "", 0
				st.Messages = n
			})
		}
		if st.Arrival != nil {
			i := i
			add(func(s *dag.Spec) { s.Stages[i].Arrival = nil })
		}
	}
	for _, st := range d.Stages {
		if st.Work != nil || st.WorkPerByte > 0 {
			add(func(s *dag.Spec) {
				for j := range s.Stages {
					s.Stages[j].Work, s.Stages[j].WorkPerByte = nil, 0
				}
			})
			break
		}
	}
	for _, e := range d.Edges {
		if e.Lines > 0 || e.Window > 0 {
			add(func(s *dag.Spec) {
				for j := range s.Edges {
					s.Edges[j].Lines, s.Edges[j].Window = 0, 0
				}
			})
			break
		}
	}
	return out
}

// cloneCase deep-copies the case so shrink mutations never alias.
func cloneCase(cs gen.Case) gen.Case {
	c := cs
	if cs.Shape != nil {
		sh := *cs.Shape
		if sh.Arrival != nil {
			a := *sh.Arrival
			sh.Arrival = &a
		}
		if sh.DAG != nil {
			sh.DAG = sh.DAG.Clone()
		}
		c.Shape = &sh
	}
	if cs.Spec.Tuned != nil {
		t := *cs.Spec.Tuned
		c.Spec.Tuned = &t
	}
	if cs.Spec.Fault != nil {
		f := *cs.Spec.Fault
		c.Spec.Fault = &f
	}
	c.Spec.Algorithms = append([]string(nil), cs.Spec.Algorithms...)
	c.Domains = append([]int(nil), cs.Domains...)
	return c
}
