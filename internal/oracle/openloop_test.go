package oracle

import (
	"testing"

	"spamer"
	"spamer/internal/experiments"
	"spamer/internal/oracle/gen"
	"spamer/internal/traffic"
	"spamer/internal/workloads"
)

// TestOpenLoopCrossKernel runs a fixed open-loop chain through the full
// invariant battery, including the cross-kernel differential check at
// domains 1, 2, 4, and 8: the traffic engine's arrival schedule must
// produce a bit-identical delivery trace on every lane count.
func TestOpenLoopCrossKernel(t *testing.T) {
	cs := gen.Case{
		Spec: experiments.Spec{
			Benchmark:  "synthetic",
			Algorithms: []string{spamer.AlgBaseline, spamer.AlgTuned},
		},
		Shape: &workloads.Shape{
			Stages: 3, Messages: 300, Lines: 2, ConsWork: 15,
			Arrival: &traffic.Spec{
				Process: traffic.MMPP, Seed: 0x5eed, MeanGap: 60,
				BurstyGap: 6, MeanDwell: 12, Users: 4,
				StormEvery: 900, StormBurst: 5,
			},
		},
		Domains: []int{1, 2, 4, 8},
	}
	rep := CheckCase(cs)
	if rep.Failed() {
		t.Fatalf("open-loop chain violated invariants: %v", rep.Violations)
	}
	if rep.Runs < len(cs.Domains) {
		t.Fatalf("cross-kernel check ran %d runs, want >= %d", rep.Runs, len(cs.Domains))
	}
}

// TestGenMixIncludesOpenLoop pins the campaign case mix: a healthy
// fraction of generated shapes must carry open-loop arrival specs, and
// the stream must reach every arrival process plus the storm and ramp
// overlays — otherwise campaigns silently stop covering the traffic
// engine.
func TestGenMixIncludesOpenLoop(t *testing.T) {
	const n = 300
	var open, storms, ramps int
	procs := map[string]int{}
	for i := 0; i < n; i++ {
		cs := gen.New(caseSeed(0x01eaf, i)).Case([]int{1, 2, 4, 8})
		if cs.Shape == nil || cs.Shape.Arrival == nil {
			continue
		}
		open++
		procs[cs.Shape.Arrival.Process]++
		if cs.Shape.Arrival.StormBurst > 0 {
			storms++
		}
		if cs.Shape.Arrival.RampPeak > 0 {
			ramps++
		}
		if err := cs.Validate(); err != nil {
			t.Fatalf("generated open-loop case %d invalid: %v", i, err)
		}
	}
	if open < n/10 {
		t.Fatalf("only %d/%d cases are open-loop; mix regressed", open, n)
	}
	for _, p := range []string{traffic.MMPP, traffic.Pareto} {
		if procs[p] == 0 {
			t.Fatalf("no generated case uses process %q (mix: %v)", p, procs)
		}
	}
	if procs[""]+procs[traffic.Poisson] == 0 {
		t.Fatalf("no generated case uses poisson (mix: %v)", procs)
	}
	if storms == 0 || ramps == 0 {
		t.Fatalf("overlays missing from mix: %d storms, %d ramps", storms, ramps)
	}
}

// TestOpenLoopShrink pins the arrival shrink steps: a failing open-loop
// case must minimize without losing its violation, and the shrunken
// arrival spec must still validate (no half-cleared process fields).
func TestOpenLoopShrink(t *testing.T) {
	cs := gen.Case{
		Spec: experiments.Spec{
			Benchmark:  "synthetic",
			Algorithms: []string{spamer.AlgBaseline, spamer.AlgZeroDelay},
			Fault:      &experiments.FaultSpec{DropStash: 3},
		},
		Shape: &workloads.Shape{
			Stages: 3, Messages: 120, Lines: 2,
			Arrival: &traffic.Spec{
				Process: traffic.Pareto, Alpha: 1.5, Seed: 99, MeanGap: 40,
				Users: 3, StormEvery: 600, StormBurst: 4,
				RampPeriod: 2000, RampPeak: 3,
			},
		},
	}
	rep := CheckCase(cs)
	if !rep.Failed() {
		t.Fatal("injected drop not detected on open-loop case")
	}
	min, runs := Minimize(cs)
	if runs < 2 {
		t.Fatalf("Minimize spent %d runs, expected shrink attempts", runs)
	}
	if !min.Failed() {
		t.Fatalf("minimized case lost the violation: %v", min.Violations)
	}
	if min.Case.Shape == nil {
		t.Fatal("minimized case lost its shape")
	}
	if err := min.Case.Validate(); err != nil {
		t.Fatalf("minimized case does not validate: %v", err)
	}
	if a := min.Case.Shape.Arrival; a != nil {
		// Shrinking must never leave process-specific fields dangling
		// behind a cleared process name.
		if a.Process == "" && (a.Alpha != 0 || a.BurstyGap != 0) {
			t.Fatalf("shrunken arrival spec half-cleared: %+v", a)
		}
	}
	// The original case must be untouched by shrink mutations (cloneCase
	// deep-copies the nested arrival spec).
	if cs.Shape.Arrival.StormBurst != 4 || cs.Shape.Arrival.Users != 3 {
		t.Fatalf("shrink aliased the original arrival spec: %+v", cs.Shape.Arrival)
	}
}
