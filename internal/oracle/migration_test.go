package oracle

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"spamer/internal/oracle/gen"
)

// The struct-of-arrays rewrite of the kernel's hot tables (SoA specBuf,
// slab-allocated lines, CPS endpoint state machines) replaced the exact
// data structures the PR 5 fuzzing campaign minimized its repros
// against. These tests replay the checked-in repro corpus
// (testdata/repros) on the current kernel so a layout migration can
// never silently change what those cases exercise. There is no build
// tag or environment switch back to the old layout: the corpus must
// pass (or, for the fault repro, fail identically) on the code as
// built.

// TestMigrationEvictionRepros replays the minimized eviction-during-pop
// corpus: the eviction timer firing inside a dequeue's L1-hit-latency
// sleep once panicked ("Take on evicted line"). The bare-case JSON
// files sweep eviction periods across fan shapes; all must run clean.
func TestMigrationEvictionRepros(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "repros", "evict-during-pop-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("eviction repro corpus missing from testdata/repros")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var cs gen.Case
			if err := json.Unmarshal(data, &cs); err != nil {
				t.Fatal(err)
			}
			if cs.EvictEvery == 0 {
				t.Fatal("repro lost its eviction period")
			}
			if rep := CheckCase(cs); rep.Failed() {
				t.Fatalf("replay on current kernel: %v", rep.Violations)
			}
		})
	}
}

// TestMigrationFaultRepro replays the minimized fault-injection repro:
// dropping the 5th stash delivery must still be caught as message loss
// with the same invariant set the campaign recorded. A layout change
// that renumbered deliveries or weakened conservation would show up as
// a changed violation profile here.
func TestMigrationFaultRepro(t *testing.T) {
	fail, err := ReadReproFile(filepath.Join("testdata", "repros", "fault-drop-stash.json"))
	if err != nil {
		t.Fatal(err)
	}
	if fail.Case.Spec.Fault == nil || fail.Case.Spec.Fault.DropStash == 0 {
		t.Fatal("repro lost its fault injection")
	}
	rep := CheckCase(fail.Case)
	if !rep.Failed() {
		t.Fatal("fault repro no longer fails on current kernel")
	}
	// Every invariant the campaign recorded must still fire, and no new
	// ones may appear: the violation profile is part of the repro.
	want := map[string]bool{}
	for _, v := range fail.Violations {
		want[v.Invariant] = true
	}
	got := map[string]bool{}
	for _, v := range rep.Violations {
		got[v.Invariant] = true
	}
	for inv := range want {
		if !got[inv] {
			t.Errorf("recorded invariant %q no longer fires; got %v", inv, rep.Violations)
		}
	}
	for inv := range got {
		if !want[inv] {
			t.Errorf("new invariant %q fires on replay (profile drift); recorded %v", inv, fail.Violations)
		}
	}
}
