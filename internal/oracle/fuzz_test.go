package oracle

import (
	"testing"

	"spamer/internal/oracle/gen"
)

// The fuzz targets map arbitrary input bytes to a generator seed and
// check the derived case under the full invariant battery. The fuzzer
// therefore explores the case space (shape dimensions, hardware knobs,
// algorithm mixes) rather than raw encodings, so every mutation is a
// valid simulation — coverage feedback steers it toward shapes that
// reach new simulator paths.

// FuzzSpamerVsVL checks SPAMeR-vs-baseline differential delivery on
// sequential M:N fan shapes: every speculative configuration must
// deliver the exact per-link sequences the VL baseline delivers.
func FuzzSpamerVsVL(f *testing.F) {
	f.Add([]byte("spamer"))
	f.Add([]byte{0})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Fuzz(func(t *testing.T, data []byte) {
		cs := gen.New(gen.SeedFromBytes(data)).FanCase()
		if rep := CheckCase(cs); rep.Failed() {
			t.Fatalf("case seed %#x: %d violations, first: %s", cs.Seed, len(rep.Violations), &rep.Violations[0])
		}
	})
}

// FuzzDifferentialKernels checks cross-kernel equivalence on
// parallel-safe chain shapes: domains 1 and 2 must dispatch bit-identical
// traces, results, and deliveries.
func FuzzDifferentialKernels(f *testing.F) {
	f.Add([]byte("kernel"))
	f.Add([]byte{1, 2})
	f.Add([]byte{0xca, 0xfe})
	f.Fuzz(func(t *testing.T, data []byte) {
		cs := gen.New(gen.SeedFromBytes(data)).ChainCase([]int{1, 2})
		if rep := CheckCase(cs); rep.Failed() {
			t.Fatalf("case seed %#x: %d violations, first: %s", cs.Seed, len(rep.Violations), &rep.Violations[0])
		}
	})
}
