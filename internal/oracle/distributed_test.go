package oracle

import (
	"strings"
	"testing"

	"spamer/internal/experiments"
	"spamer/internal/oracle/gen"
)

// TestDistributedCheckerAgreesOnSeededCases: the distributed-vs-local
// differential must pass on a sample of generator output — both chain
// shapes and named-benchmark cases.
func TestDistributedCheckerAgreesOnSeededCases(t *testing.T) {
	dc, err := NewDistributedChecker(2)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()

	checked := 0
	for i := 0; i < 8; i++ {
		seed := caseSeed(0xD15C0, i)
		cs := gen.New(seed).Case(nil)
		cs.Seed = seed
		vs, runs := dc.Check(cs)
		if runs == 0 {
			continue // invalid case; CheckCase owns reporting those
		}
		checked++
		if len(vs) > 0 {
			t.Fatalf("seed %#x diverged: %s", seed, vs[0])
		}
	}
	if checked < 4 {
		t.Fatalf("only %d/8 seeded cases were checkable", checked)
	}
}

// TestDistributedCheckerAgreesOnFaultedCase: a fault-injected spec
// deadlocks deterministically; the worker-reported error must match the
// local error text, not register as a divergence.
func TestDistributedCheckerAgreesOnFaultedCase(t *testing.T) {
	dc, err := NewDistributedChecker(1)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()

	cs := gen.New(7).ChainCase(nil)
	fault := cs.Spec.Fault
	if fault != nil {
		t.Fatal("generator unexpectedly set a fault; test needs to inject its own")
	}
	cs.Spec.Fault = &experiments.FaultSpec{DropStash: 1}
	vs, runs := dc.Check(cs)
	if runs == 0 {
		t.Fatal("faulted case was skipped as invalid")
	}
	if len(vs) > 0 {
		t.Fatalf("matching errors reported as divergence: %s", vs[0])
	}
}

// TestCampaignWithWorkers: a small end-to-end campaign with the
// distributed differential on completes with zero failures and logs
// the pool size.
func TestCampaignWithWorkers(t *testing.T) {
	var log strings.Builder
	res, err := Campaign(CampaignOptions{
		Seed:     3,
		N:        4,
		Domains:  []int{1, 2},
		ReproDir: t.TempDir(),
		Workers:  2,
		Log:      &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) > 0 {
		t.Fatalf("campaign failures: %+v", res.Failures)
	}
	if res.Cases != 4 {
		t.Fatalf("cases = %d, want 4", res.Cases)
	}
	if !strings.Contains(log.String(), "distributed differential on, 2 workers") {
		t.Fatalf("campaign log missing differential banner:\n%s", log.String())
	}
}
