package oracle

import (
	"fmt"

	"spamer"
	"spamer/internal/oracle/gen"
	"spamer/internal/workloads"
)

// RunReport is the outcome of one invariant-checked simulation.
type RunReport struct {
	// Result holds the run's metrics; valid only when Panic is empty.
	Result spamer.Result
	// Delivery is the observed delivered-message record (always valid —
	// on a panic it records what arrived before the failure).
	Delivery Delivery
	// TraceHash is the dispatch-trace hash (when tracing was enabled).
	TraceHash uint64
	// Panic is the recovered Run panic, if any ("" = completed).
	Panic string
	// Violations are the per-run invariant failures, including a
	// "run-panic" entry when Run panicked.
	Violations []Violation
}

// RunChecked builds w on a fresh system under cfg, attaches a Checker,
// drives the run to completion (recovering a panicking run — e.g. the
// deadlock a lost message causes — into the report), and returns the
// full invariant-checked outcome.
func RunChecked(w *workloads.Workload, cfg spamer.Config, scale int, trace bool) RunReport {
	if scale <= 0 {
		scale = 1
	}
	sys := spamer.NewSystem(cfg)
	if trace {
		sys.EnableDispatchTrace()
	}
	chk := Attach(sys)
	var rep RunReport
	func() {
		defer func() {
			if r := recover(); r != nil {
				rep.Panic = fmt.Sprint(r)
				// Release parked thread goroutines so a failing
				// campaign does not leak one goroutine per thread.
				if pk := sys.ParallelKernel(); pk != nil {
					pk.Drain()
				} else {
					sys.Kernel().Drain()
				}
			}
		}()
		w.Build(sys, scale)
		rep.Result = sys.Run()
		if trace {
			rep.TraceHash = sys.DispatchTraceHash()
		}
	}()
	var res *spamer.Result
	if rep.Panic == "" {
		res = &rep.Result
	} else {
		rep.Violations = append(rep.Violations, Violation{Invariant: "run-panic", Detail: rep.Panic})
	}
	rep.Violations = append(rep.Violations, chk.Finish(res)...)
	rep.Delivery = chk.Delivery()
	return rep
}

// CaseReport is the outcome of checking one generated case.
type CaseReport struct {
	Case       gen.Case    `json:"case"`
	Runs       int         `json:"runs"`
	Violations []Violation `json:"violations,omitempty"`
}

// Failed reports whether any invariant was violated.
func (r *CaseReport) Failed() bool { return len(r.Violations) > 0 }

// CheckCase runs one case under the full invariant battery:
//
//  1. every algorithm runs on the sequential kernel with the per-run
//     invariants (conservation, FIFO, payload integrity, structural,
//     counter balance) — twice for synthetic shapes, to pin determinism
//     via the dispatch-trace hash;
//  2. each SPAMeR algorithm's delivery record is compared against the
//     baseline VL run (speculative-push safety);
//  3. for parallel-safe workloads with a Domains list, the dispatch
//     trace, Result, and delivery of every lane count must be identical
//     (cross-kernel equivalence), and the parallel delivery must match
//     the sequential kernel's (the timing models differ; the delivered
//     per-link sequences may not).
func CheckCase(cs gen.Case) CaseReport {
	rep := CaseReport{Case: cs}
	if err := cs.Validate(); err != nil {
		rep.Violations = append(rep.Violations, Violation{Invariant: "invalid-case", Detail: err.Error()})
		return rep
	}
	w, err := cs.Workload()
	if err != nil {
		rep.Violations = append(rep.Violations, Violation{Invariant: "invalid-case", Detail: err.Error()})
		return rep
	}
	scale := cs.Spec.Scale
	algs := withBaselineFirst(cs.Spec.Algorithms)

	collect := func(ctx string, vs []Violation) {
		for _, v := range vs {
			v.Context = ctx
			if len(rep.Violations) < maxViolations {
				rep.Violations = append(rep.Violations, v)
			}
		}
	}

	var baseline *Delivery
	seqDelivery := make(map[string]Delivery)
	for _, alg := range algs {
		cfg := cs.Spec.SystemConfig(alg)
		cfg.Domains = 0
		cfg.EvictEvery = cs.EvictEvery
		ctx := "alg=" + alg
		r := RunChecked(w, cfg, scale, true)
		rep.Runs++
		collect(ctx, r.Violations)
		if cs.Shape != nil && r.Panic == "" {
			// Determinism: an identical run must dispatch the identical
			// trace. Shapes only — named benchmarks take long enough
			// that doubling them would dominate campaign time, and the
			// golden tests already pin them.
			again := RunChecked(w, cfg, scale, true)
			rep.Runs++
			collect(ctx+" (repeat)", again.Violations)
			if again.TraceHash != r.TraceHash {
				collect(ctx, []Violation{{Invariant: "nondeterminism",
					Detail: fmt.Sprintf("repeat run dispatch trace %#x != %#x", again.TraceHash, r.TraceHash)}})
			}
		}
		if r.Panic == "" {
			seqDelivery[alg] = r.Delivery
		}
		switch {
		case alg == spamer.AlgBaseline:
			d := r.Delivery
			baseline = &d
		case baseline != nil:
			// Differential replay: SPAMeR must deliver the exact
			// per-link sequences the VL baseline delivered.
			for _, diff := range CompareDeliveries(*baseline, r.Delivery) {
				collect(ctx, []Violation{{Invariant: "differential-delivery",
					Detail: "vs vl baseline: " + diff}})
			}
		}
	}

	if len(cs.Domains) > 1 && w.ParallelSafe && cs.EvictEvery == 0 && faultFree(cs) {
		// Cross-kernel equivalence, at most two algorithms (vl + the
		// first SPAMeR one) to bound run count.
		kalgs := algs
		if len(kalgs) > 2 {
			kalgs = kalgs[:2]
		}
		for _, alg := range kalgs {
			var ref *RunReport
			for _, dom := range cs.Domains {
				cfg := cs.Spec.SystemConfig(alg)
				cfg.Domains = dom
				ctx := fmt.Sprintf("alg=%s domains=%d", alg, dom)
				r := RunChecked(w, cfg, scale, true)
				rep.Runs++
				collect(ctx, r.Violations)
				if r.Panic != "" {
					continue
				}
				if ref == nil {
					ref = &r
					// The sequential kernel is a distinct timing model, so
					// its trace and stats legitimately differ — but on the
					// 1:1 queues parallel-safe workloads are restricted to,
					// per-source delivery is FIFO, so the delivered
					// sequences must match the sequential run exactly.
					if seq, ok := seqDelivery[alg]; ok {
						for _, diff := range CompareDeliveries(seq, r.Delivery) {
							collect(ctx, []Violation{{Invariant: "cross-kernel-divergence",
								Detail: "delivery differs from sequential kernel: " + diff}})
						}
					}
					continue
				}
				if r.TraceHash != ref.TraceHash {
					collect(ctx, []Violation{{Invariant: "cross-kernel-divergence",
						Detail: fmt.Sprintf("dispatch trace %#x != %#x at domains=%d", r.TraceHash, ref.TraceHash, cs.Domains[0])}})
				}
				if r.Result != ref.Result {
					collect(ctx, []Violation{{Invariant: "cross-kernel-divergence",
						Detail: fmt.Sprintf("result differs from domains=%d: %+v vs %+v", cs.Domains[0], r.Result, ref.Result)}})
				}
				for _, diff := range CompareDeliveries(ref.Delivery, r.Delivery) {
					collect(ctx, []Violation{{Invariant: "cross-kernel-divergence",
						Detail: fmt.Sprintf("delivery differs from domains=%d: %s", cs.Domains[0], diff)}})
				}
			}
		}
	}
	return rep
}

func withBaselineFirst(algs []string) []string {
	if len(algs) == 0 {
		return spamer.Configs()
	}
	out := []string{spamer.AlgBaseline}
	for _, a := range algs {
		if a != spamer.AlgBaseline {
			out = append(out, a)
		}
	}
	return out
}

func faultFree(cs gen.Case) bool {
	return cs.Spec.Fault == nil || (cs.Spec.Fault.DropStash == 0 && cs.Spec.Fault.CorruptStash == 0)
}
