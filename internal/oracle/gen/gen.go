// Package gen generates the randomized inputs of the verification
// oracle: seeded pseudo-random experiment specs and synthetic workload
// shapes (internal/workloads.Shape) bundled as Cases. Every Case is
// fully determined by its seed and JSON-serializable, so a failing case
// from a campaign or a fuzz run can be persisted verbatim and replayed.
package gen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"spamer"
	"spamer/internal/config"
	"spamer/internal/experiments"
	"spamer/internal/traffic"
	"spamer/internal/workloads"
	"spamer/internal/workloads/dag"
)

// Case is one generated verification case: an experiment spec plus an
// optional synthetic workload shape. With a nil Shape the spec's named
// benchmark runs; with a Shape the synthetic workload replaces the
// benchmark and the spec contributes only the hardware and algorithm
// knobs (its Benchmark field is the informational "synthetic").
type Case struct {
	// Seed is the value the case was generated from (diagnostic).
	Seed uint64 `json:"seed,omitempty"`

	Spec  experiments.Spec `json:"spec"`
	Shape *workloads.Shape `json:"shape,omitempty"`

	// Domains lists the parallel worker-lane counts the cross-kernel
	// equivalence check compares (each must dispatch a bit-identical
	// trace). Empty skips the check; it only applies to parallel-safe
	// workloads.
	Domains []int `json:"domains,omitempty"`

	// EvictEvery arms line-eviction pressure (spamer.Config.EvictEvery)
	// on the sequential invariant runs.
	EvictEvery uint64 `json:"evict_every,omitempty"`
}

// Validate rejects cases that cannot run.
func (c *Case) Validate() error {
	if c.Shape == nil {
		return c.Spec.Validate()
	}
	if err := c.Shape.Validate(); err != nil {
		return err
	}
	if d := c.Shape.DAG; d != nil {
		entries := c.Spec.SRDEntries
		if entries == 0 {
			entries = config.SRDEntries
		}
		if q := d.Queues(); q > entries {
			// Fewer prodBuf slots than queues voids the device's
			// per-SQI reservation, so the workload can deadlock by
			// construction rather than by bug.
			return fmt.Errorf("gen: dag needs %d queues but srd_entries is %d", q, entries)
		}
	}
	for _, a := range c.Spec.Algorithms {
		if _, ok := algConfig(a); !ok {
			return fmt.Errorf("gen: unknown algorithm %q", a)
		}
	}
	for _, d := range c.Domains {
		if d < 1 {
			return fmt.Errorf("gen: cross-kernel domain count %d < 1", d)
		}
	}
	return nil
}

func algConfig(a string) (struct{}, bool) {
	for _, known := range spamer.Configs() {
		if a == known {
			return struct{}{}, true
		}
	}
	return struct{}{}, false
}

// Workload materializes the case's workload: the shape when present,
// the named benchmark otherwise.
func (c *Case) Workload() (*workloads.Workload, error) {
	if c.Shape != nil {
		return c.Shape.Workload(), nil
	}
	w, ok := workloads.ByName(c.Spec.Benchmark)
	if !ok {
		return nil, fmt.Errorf("gen: unknown benchmark %q", c.Spec.Benchmark)
	}
	return w, nil
}

// WriteFile persists the case as indented JSON (repro files).
func (c *Case) WriteFile(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadCaseFile loads a case previously written with WriteFile.
func ReadCaseFile(path string) (Case, error) {
	var c Case
	data, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("gen: case file %s: %w", path, err)
	}
	return c, nil
}

// Gen is a deterministic case stream.
type Gen struct {
	seed uint64
	rng  *rand.Rand
}

// New returns a generator seeded with seed. Identical seeds yield
// identical case streams on every platform.
func New(seed uint64) *Gen {
	return &Gen{seed: seed, rng: rand.New(rand.NewSource(int64(seed)))}
}

// Case draws one random verification case. domains is the lane-count
// list attached to parallel-safe cases (nil skips cross-kernel checks).
// The mix leans heavily on synthetic shapes — they run in milliseconds —
// with an occasional named Table 2 benchmark for realism.
func (g *Gen) Case(domains []int) Case {
	c := Case{Seed: g.seed}
	switch r := g.rng.Intn(16); {
	case r < 6:
		c.Shape = g.chain()
		c.Domains = append([]int(nil), domains...)
	case r < 10:
		d := g.dag()
		c.Shape = &workloads.Shape{DAG: d}
		if d.ParallelSafe() {
			c.Domains = append([]int(nil), domains...)
		}
	case r < 14:
		c.Shape = g.fan()
	default:
		g.named(&c)
	}
	g.knobs(&c)
	return c
}

// DAGCase always draws a workload-DAG case — the entry point of DAG-
// focused fuzzing and tests. Parallel-safe topologies (no dynamic
// shared drains) carry the domains list so the cross-kernel
// differential covers shard exchanges and diamond merges too.
func (g *Gen) DAGCase(domains []int) Case {
	d := g.dag()
	c := Case{Seed: g.seed, Shape: &workloads.Shape{DAG: d}}
	if d.ParallelSafe() {
		c.Domains = append([]int(nil), domains...)
	}
	g.knobs(&c)
	return c
}

// ChainCase always draws a parallel-safe chain-shape case — the entry
// point of FuzzDifferentialKernels, which needs every input to exercise
// the cross-kernel comparison rather than an occasional benchmark.
func (g *Gen) ChainCase(domains []int) Case {
	c := Case{Seed: g.seed, Shape: g.chain(), Domains: append([]int(nil), domains...)}
	g.knobs(&c)
	return c
}

// FanCase always draws a sequential fan-shape case — the entry point of
// FuzzSpamerVsVL (M:N fans stress the multi-consumer delivery paths the
// chain shapes cannot reach).
func (g *Gen) FanCase() Case {
	c := Case{Seed: g.seed, Shape: g.fan()}
	g.knobs(&c)
	return c
}

// chain draws a parallel-safe 1:1 pipeline shape. One in three chains is
// open-loop: a seeded arrival process replaces the closed-loop push
// cadence, so the cross-kernel differential check covers the traffic
// engine at every domain count for free.
func (g *Gen) chain() *workloads.Shape {
	sh := &workloads.Shape{
		Stages:   2 + g.rng.Intn(4),      // 2..5 threads
		Messages: 8 + g.rng.Intn(150),    // 8..157 per chain
		ProdWork: uint64(g.rng.Intn(80)), // 0..79 cycles
		ConsWork: uint64(g.rng.Intn(80)), //
		Lines:    1 + g.rng.Intn(4),      // 1..4 consumer lines
		Window:   g.rng.Intn(5),          // 0 (default) .. 4
	}
	switch g.rng.Intn(3) {
	case 0:
		sh.Burst = 2 + g.rng.Intn(7) // bursty arrivals
	case 1:
		sh.Arrival = g.arrival()
	}
	return sh
}

// fan draws an M:N fan shape (sequential-only). Open-loop fans model
// incast: several producers on independent arrival schedules converging
// on one queue.
func (g *Gen) fan() *workloads.Shape {
	sh := &workloads.Shape{
		Producers: 1 + g.rng.Intn(4), // 1..4
		Consumers: 1 + g.rng.Intn(3), // 1..3
		Messages:  6 + g.rng.Intn(75),
		ProdWork:  uint64(g.rng.Intn(60)),
		ConsWork:  uint64(g.rng.Intn(60)),
		Lines:     1 + g.rng.Intn(4),
		Window:    g.rng.Intn(5),
	}
	switch g.rng.Intn(3) {
	case 0:
		sh.Burst = 2 + g.rng.Intn(7)
	case 1:
		sh.Arrival = g.arrival()
	}
	return sh
}

// dag draws a random layered workload DAG: 2–4 layers of 1–2 stages
// with 1–3 replicas each, every non-first-layer stage fed by one or two
// distinct earlier stages under a random edge policy (pair when replica
// counts line up, shard exchanges, M:1 shared fan-ins, or the
// auto-resolved default). Sources split between closed-loop counts,
// open-loop arrival schedules, and short recorded-trace replays; one in
// four graphs grows a dynamic shared drain (those are not
// parallel-safe, so DAGCase attaches no domains to them). The generator
// is correct by construction — an invalid result is a generator bug and
// panics so fuzzing surfaces it loudly.
func (g *Gen) dag() *dag.Spec {
	s := &dag.Spec{Name: "rand", Seed: g.rng.Uint64()}
	layers := 2 + g.rng.Intn(3)
	var earlier []int
	for li := 0; li < layers; li++ {
		ids := make([]int, 1+g.rng.Intn(2))
		for k := range ids {
			st := dag.Stage{
				Name:     fmt.Sprintf("s%d", len(s.Stages)),
				Replicas: 1 + g.rng.Intn(3),
				Work:     g.dagDist(),
			}
			if li == 0 {
				g.dagSource(&st)
			}
			ids[k] = len(s.Stages)
			s.Stages = append(s.Stages, st)
		}
		for _, ti := range ids {
			if li == 0 {
				continue
			}
			feeds := []int{earlier[g.rng.Intn(len(earlier))]}
			if len(earlier) > 1 && g.rng.Intn(2) == 0 {
				if second := earlier[g.rng.Intn(len(earlier))]; second != feeds[0] {
					feeds = append(feeds, second)
				}
			}
			for _, fi := range feeds {
				s.Edges = append(s.Edges, g.dagEdge(&s.Stages[fi], &s.Stages[ti]))
			}
		}
		earlier = append(earlier, ids...)
	}
	if g.rng.Intn(4) == 0 {
		// Dynamic shared drain: an M:N WorkCounter sink hanging off a
		// random stage (its shared edge must be its sole input).
		fi := g.rng.Intn(len(s.Stages))
		s.Stages = append(s.Stages, dag.Stage{
			Name:     "drain",
			Replicas: 2 + g.rng.Intn(2),
			Work:     g.dagDist(),
		})
		s.Edges = append(s.Edges, dag.Edge{From: s.Stages[fi].Name, To: "drain", Policy: dag.PolicyShared})
	}
	// Broadcast fan-out amplifies source counts multiplicatively; halve
	// closed-loop sources (and truncate replays) until a campaign case
	// stays in the milliseconds.
	for iter := 0; s.TotalMessages(1) > 2500 && iter < 16; iter++ {
		for i := range s.Stages {
			st := &s.Stages[i]
			if st.Messages > 1 {
				st.Messages = (st.Messages + 1) / 2
			}
			if len(st.Replay) > 1 {
				st.Replay = st.Replay[:(len(st.Replay)+1)/2]
			}
		}
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("gen: generated invalid DAG: %v", err))
	}
	return s
}

// dagEdge draws one edge's policy and tuning knobs.
func (g *Gen) dagEdge(from, to *dag.Stage) dag.Edge {
	e := dag.Edge{From: from.Name, To: to.Name}
	switch {
	case from.Replicas == 1 && to.Replicas == 1 && g.rng.Intn(2) == 0:
		// "": exercise auto-resolution (pair on a 1:1 edge). Wider
		// edges must not stay auto — "" resolves to shared there, which
		// is illegal into an interior multi-replica consumer.
	case from.Replicas == to.Replicas && g.rng.Intn(2) == 0:
		e.Policy = dag.PolicyPair
	case to.Replicas == 1 && g.rng.Intn(4) == 0:
		e.Policy = dag.PolicyShared // static M:1 fan-in on one queue
	default:
		e.Policy = dag.PolicyShard
	}
	if g.rng.Intn(3) == 0 {
		e.Lines = 1 + g.rng.Intn(4)
	}
	if g.rng.Intn(3) == 0 {
		e.Window = 1 + g.rng.Intn(8)
	}
	return e
}

// dagSource picks a source stage's drive: closed-loop counts mostly,
// with open-loop arrivals and recorded-trace replay in the mix.
func (g *Gen) dagSource(st *dag.Stage) {
	switch g.rng.Intn(6) {
	case 0:
		st.Replay = g.dagTrace()
		if g.rng.Intn(2) == 0 {
			st.WorkPerByte = uint64(1 + g.rng.Intn(3))
		}
	case 1:
		st.Messages = 4 + g.rng.Intn(40)
		st.Arrival = g.arrival()
	default:
		st.Messages = 4 + g.rng.Intn(40)
	}
}

// dagTrace draws a short sorted recorded trace.
func (g *Gen) dagTrace() []dag.TraceEvent {
	evs := make([]dag.TraceEvent, 3+g.rng.Intn(28))
	at := uint64(g.rng.Intn(100))
	for i := range evs {
		evs[i] = dag.TraceEvent{At: at, Work: uint64(g.rng.Intn(60)), Size: uint64(g.rng.Intn(64))}
		at += uint64(g.rng.Intn(250))
	}
	return evs
}

// dagDist draws a per-stage compute distribution across all three
// kinds (nil = no compute).
func (g *Gen) dagDist() *dag.Dist {
	switch g.rng.Intn(4) {
	case 0:
		return nil
	case 1:
		return &dag.Dist{Mean: uint64(g.rng.Intn(80))}
	case 2:
		lo := uint64(g.rng.Intn(50))
		return &dag.Dist{Kind: dag.DistUniform, Min: lo, Max: lo + uint64(g.rng.Intn(80))}
	default:
		return &dag.Dist{Kind: dag.DistExp, Mean: uint64(1 + g.rng.Intn(60))}
	}
}

// arrival draws a random open-loop arrival spec. Mean gaps span
// saturation (every arrival queues behind the previous) through sparse
// (the schedule paces the run); storms and diurnal ramps appear
// occasionally so campaigns cover the overlay paths too.
func (g *Gen) arrival() *traffic.Spec {
	sp := &traffic.Spec{
		Seed:    g.rng.Uint64(),
		MeanGap: uint64(5 + g.rng.Intn(300)), // 5..304 ticks
	}
	switch g.rng.Intn(3) {
	case 0: // poisson (default spelling exercised too)
		if g.rng.Intn(2) == 0 {
			sp.Process = traffic.Poisson
		}
	case 1:
		sp.Process = traffic.MMPP
		if g.rng.Intn(2) == 0 {
			sp.BurstyGap = 1 + uint64(g.rng.Intn(20))
			sp.MeanDwell = float64(4 + g.rng.Intn(40))
		}
	case 2:
		sp.Process = traffic.Pareto
		sp.Alpha = 1.1 + float64(g.rng.Intn(20))/10 // 1.1..3.0
	}
	if g.rng.Intn(3) == 0 {
		sp.Users = 1 + g.rng.Intn(32)
	}
	if g.rng.Intn(4) == 0 {
		sp.StormEvery = uint64(500 + g.rng.Intn(4000))
		sp.StormBurst = 2 + g.rng.Intn(12)
	}
	if g.rng.Intn(4) == 0 {
		sp.RampPeriod = uint64(1000 + g.rng.Intn(8000))
		sp.RampPeak = float64(2 + g.rng.Intn(6))
	}
	return sp
}

// named picks a real Table 2 benchmark. ping-pong and incast dominate
// (they finish fast); the FIR chain appears rarely and with a trimmed
// algorithm list to bound campaign time.
func (g *Gen) named(c *Case) {
	switch g.rng.Intn(8) {
	case 0:
		c.Spec.Benchmark = "FIR"
		c.Spec.Algorithms = []string{spamer.AlgBaseline, g.specAlg()}
	case 1, 2, 3:
		c.Spec.Benchmark = "incast"
	default:
		c.Spec.Benchmark = "ping-pong"
	}
}

func (g *Gen) specAlg() string {
	return []string{spamer.AlgZeroDelay, spamer.AlgAdaptive, spamer.AlgTuned}[g.rng.Intn(3)]
}

// knobs randomizes the hardware and pressure knobs shared by both case
// families.
func (g *Gen) knobs(c *Case) {
	if len(c.Spec.Algorithms) == 0 {
		algs := []string{spamer.AlgBaseline, g.specAlg()}
		if g.rng.Intn(2) == 0 {
			if extra := g.specAlg(); extra != algs[1] {
				algs = append(algs, extra)
			}
		}
		c.Spec.Algorithms = algs
	}
	switch g.rng.Intn(4) {
	case 0:
		c.Spec.HopLatency = uint64(4 + g.rng.Intn(45)) // 4..48
	case 1:
		c.Spec.Channels = 1 + g.rng.Intn(2)
	}
	if g.rng.Intn(4) == 0 {
		// Small device tables: NACK backpressure and retry pressure.
		c.Spec.SRDEntries = []int{8, 16, 32}[g.rng.Intn(3)]
	}
	if g.rng.Intn(8) == 0 {
		c.Spec.NoInline = true
	}
	if usesAlg(c.Spec.Algorithms, spamer.AlgTuned) && g.rng.Intn(3) == 0 {
		c.Spec.Tuned = &experiments.TunedSpec{
			Zeta:  uint64(64 + g.rng.Intn(1024)),
			Tau:   uint64(16 + g.rng.Intn(256)),
			Delta: uint64(8 + g.rng.Intn(128)),
			Alpha: uint64(1 + g.rng.Intn(3)),
			Beta:  uint64(1 + g.rng.Intn(4)),
		}
	}
	// Eviction pressure on the sequential invariant runs: every message
	// must still arrive exactly once while lines keep losing residency.
	// Skipped for cross-kernel cases (eviction forces the sequential
	// kernel, which would silently void the domain comparison).
	if len(c.Domains) == 0 && g.rng.Intn(4) == 0 {
		c.EvictEvery = uint64(300 + g.rng.Intn(2700))
	}
	if c.Shape != nil {
		c.Spec.Benchmark = "synthetic"
	}
	if c.Shape != nil && c.Shape.DAG != nil {
		// Keep the small-tables NACK pressure, but never hand a DAG
		// fewer prodBuf slots than queues: that voids the device's
		// per-SQI reservation and manufactures a deadlock. An exact
		// match (sharedCap 0, reserved slots only) is the maximum
		// legal backpressure.
		q := c.Shape.DAG.Queues()
		if c.Spec.SRDEntries > 0 && c.Spec.SRDEntries < q {
			c.Spec.SRDEntries = q
		}
		if c.Spec.SRDEntries == 0 && q > config.SRDEntries {
			c.Spec.SRDEntries = q
		}
	}
}

func usesAlg(algs []string, want string) bool {
	for _, a := range algs {
		if a == want {
			return true
		}
	}
	return false
}

// SeedFromBytes derives a generator seed from raw fuzz input, mixing
// every byte so small input mutations reach distinct cases.
func SeedFromBytes(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h ^ uint64(len(data))<<32
}
