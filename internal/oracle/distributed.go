package oracle

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"spamer/internal/experiments"
	"spamer/internal/fabric"
	"spamer/internal/harness"
	"spamer/internal/oracle/gen"
)

// DistributedChecker is the distributed-vs-local differential mode: a
// real fabric coordinator plus N worker processes-in-miniature, each
// serving the wire protocol over its own loopback listener. Check runs
// a generated case's spec once through coordinator sharding and once
// through the in-process path, and demands byte-identical outcomes —
// the fabric's merge gate (docs/FABRIC.md). HTTP transport, JSON
// round-trips, placement, and result merging are all on the hot path
// being checked; only the process boundary is elided.
type DistributedChecker struct {
	coord   *fabric.Coordinator
	servers []*http.Server
}

// NewDistributedChecker starts workers loopback HTTP workers and a
// coordinator that shards onto them with local fallback disabled, so a
// placement bug cannot silently hide behind in-process execution.
func NewDistributedChecker(workers int) (*DistributedChecker, error) {
	if workers <= 0 {
		workers = 2
	}
	d := &DistributedChecker{
		coord: fabric.NewCoordinator(fabric.CoordinatorOptions{
			DispatchTimeout: 10 * time.Minute,
			ExpireAfter:     time.Hour, // presence is static for the campaign's lifetime
			NoLocalFallback: true,
		}),
	}
	for i := 0; i < workers; i++ {
		id := fmt.Sprintf("oracle-w%d", i+1)
		w := fabric.NewWorker(fabric.WorkerOptions{ID: id, Slots: 2, RunWorkers: 1})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("oracle: distributed worker listener: %w", err)
		}
		hs := &http.Server{Handler: w.Handler()}
		go hs.Serve(ln)
		d.servers = append(d.servers, hs)
		if err := d.coord.Register(fabric.RegisterRequest{
			Version: fabric.ProtocolVersion,
			ID:      id,
			Addr:    "http://" + ln.Addr().String(),
			Slots:   2,
		}); err != nil {
			d.Close()
			return nil, fmt.Errorf("oracle: registering %s: %w", id, err)
		}
	}
	return d, nil
}

// Workers reports the pool size.
func (d *DistributedChecker) Workers() int { return len(d.servers) }

// Close tears the worker pool down.
func (d *DistributedChecker) Close() {
	for _, hs := range d.servers {
		hs.Close()
	}
	d.servers = nil
}

// Check runs the case's spec through the fabric and through the local
// parallel runner and compares: error texts must agree, and on success
// the outcome lists must be byte-identical under JSON marshaling (Go
// floats marshal shortest-round-trip, so this is exact, not
// approximate). Returns the violations; empty means equivalent. The
// second return value is the number of simulation passes spent.
func (d *DistributedChecker) Check(cs gen.Case) ([]Violation, int) {
	sp := cs.Spec
	sp.Shape = cs.Shape
	if err := sp.Validate(); err != nil {
		// CheckCase already reports invalid cases; nothing to diff.
		return nil, 0
	}
	specs := []experiments.Spec{sp}
	ctx := context.Background()

	dist := d.coord.RunSpecs(ctx, specs, fabric.RunOptions{})
	local := experiments.RunSpecsParallel(ctx, specs, harness.Options{Workers: 1})
	runs := 2

	violation := func(detail string) []Violation {
		return []Violation{{Invariant: "distributed-divergence", Context: "workers=" + fmt.Sprint(len(d.servers)), Detail: detail}}
	}
	dr, lr := dist[0], local[0]
	switch {
	case (dr.Err == nil) != (lr.Err == nil):
		return violation(fmt.Sprintf("error mismatch: distributed=%v local=%v", dr.Err, lr.Err)), runs
	case dr.Err != nil:
		if dr.Err.Error() != lr.Err.Error() {
			return violation(fmt.Sprintf("error text mismatch: distributed=%q local=%q", dr.Err, lr.Err)), runs
		}
		return nil, runs
	}
	dj, err := json.Marshal(dr.Outcomes)
	if err != nil {
		return violation(fmt.Sprintf("marshal distributed outcomes: %v", err)), runs
	}
	lj, err := json.Marshal(lr.Outcomes)
	if err != nil {
		return violation(fmt.Sprintf("marshal local outcomes: %v", err)), runs
	}
	if string(dj) != string(lj) {
		return violation(fmt.Sprintf("outcomes not byte-identical:\ndistributed: %s\nlocal:       %s", dj, lj)), runs
	}
	return nil, runs
}
