package oracle

import (
	"path/filepath"
	"reflect"
	"testing"

	"spamer"
	"spamer/internal/experiments"
	"spamer/internal/oracle/gen"
	"spamer/internal/workloads"
	"spamer/internal/workloads/dag"
)

func hasViolation(vs []Violation, invariant string) bool {
	for _, v := range vs {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// TestFaultDropCaughtByConservation is the oracle's end-to-end
// self-test: an intentionally injected message drop (the Nth stash
// delivery acknowledged but never filled) must be caught by the
// conservation invariant, the failing case must minimize to a smaller
// one that still fails, and the minimized repro must round-trip through
// the campaign's JSON repro file and still reproduce on replay.
func TestFaultDropCaughtByConservation(t *testing.T) {
	cs := gen.Case{
		Spec: experiments.Spec{
			Benchmark:  "synthetic",
			Algorithms: []string{spamer.AlgBaseline, spamer.AlgZeroDelay},
			Fault:      &experiments.FaultSpec{DropStash: 5},
		},
		Shape: &workloads.Shape{Stages: 4, Messages: 96, Lines: 2, ProdWork: 20, ConsWork: 35},
	}

	rep := CheckCase(cs)
	if !rep.Failed() {
		t.Fatal("injected message drop not detected")
	}
	if !hasViolation(rep.Violations, "message-loss") {
		t.Fatalf("conservation invariant missed the drop; got %v", rep.Violations)
	}
	if !hasViolation(rep.Violations, "run-panic") {
		t.Fatalf("lost message should deadlock the run; got %v", rep.Violations)
	}

	min, runs := Minimize(cs)
	if runs < 2 {
		t.Fatalf("Minimize spent %d runs, expected shrink attempts", runs)
	}
	if !min.Failed() || !hasViolation(min.Violations, "message-loss") {
		t.Fatalf("minimized case lost the violation: %v", min.Violations)
	}
	if min.Case.Shape == nil || min.Case.Shape.Messages >= cs.Shape.Messages {
		t.Fatalf("case did not shrink: %+v", min.Case.Shape)
	}

	// The campaign repro workflow: persist, reload, replay.
	path, err := writeRepro(t.TempDir(), 42, CaseFailure{Case: min.Case, Original: cs, Violations: min.Violations})
	if err != nil {
		t.Fatal(err)
	}
	fail, err := ReadReproFile(path)
	if err != nil {
		t.Fatal(err)
	}
	replayed := CheckCase(fail.Case)
	if !hasViolation(replayed.Violations, "message-loss") {
		t.Fatalf("reloaded repro no longer reproduces: %v", replayed.Violations)
	}
}

// TestFaultCorruptCaughtOnDAG is the DAG-era end-to-end self-test: a
// seeded in-flight payload corruption (the Nth stash delivery filled
// with flipped bits, metadata intact — the run completes normally)
// must be caught by the payload-integrity invariant on a diamond DAG,
// and Minimize must peel the topology — stages, edges, and replica
// pools — down to a strictly smaller case that still exhibits the
// corruption, surviving the repro-file round trip.
func TestFaultCorruptCaughtOnDAG(t *testing.T) {
	topo := &dag.Spec{
		Name: "corrupt",
		Stages: []dag.Stage{
			{Name: "src", Replicas: 2, Messages: 24, Work: &dag.Dist{Mean: 10}},
			{Name: "mid", Replicas: 2, Work: &dag.Dist{Mean: 15}},
			{Name: "side", Replicas: 1, Work: &dag.Dist{Mean: 5}},
			{Name: "sink", Replicas: 1},
		},
		Edges: []dag.Edge{
			{From: "src", To: "mid", Policy: dag.PolicyPair},
			{From: "src", To: "side", Policy: dag.PolicyShard},
			{From: "mid", To: "sink", Policy: dag.PolicyShard},
			{From: "side", To: "sink", Policy: dag.PolicyPair},
		},
	}
	cs := gen.Case{
		Spec: experiments.Spec{
			Benchmark:  "synthetic",
			Algorithms: []string{spamer.AlgBaseline, spamer.AlgZeroDelay},
			Fault:      &experiments.FaultSpec{CorruptStash: 7},
		},
		Shape: &workloads.Shape{DAG: topo},
	}

	rep := CheckCase(cs)
	if !rep.Failed() {
		t.Fatal("injected payload corruption not detected")
	}
	if !hasViolation(rep.Violations, "payload-corruption") {
		t.Fatalf("payload-integrity invariant missed the corruption; got %v", rep.Violations)
	}

	min, runs := Minimize(cs)
	if runs < 2 {
		t.Fatalf("Minimize spent %d runs, expected shrink attempts", runs)
	}
	if !min.Failed() || !hasViolation(min.Violations, "payload-corruption") {
		t.Fatalf("minimized case lost the violation: %v", min.Violations)
	}
	md := min.Case.Shape.DAG
	if md == nil {
		t.Fatal("minimized case lost its DAG")
	}
	if err := md.Validate(); err != nil {
		t.Fatalf("minimized DAG is invalid (shrinker must filter candidates): %v", err)
	}
	if len(md.Stages) >= len(topo.Stages) && len(md.Edges) >= len(topo.Edges) && md.Threads() >= topo.Threads() {
		t.Fatalf("shrinker peeled nothing: %d stages, %d edges, %d threads", len(md.Stages), len(md.Edges), md.Threads())
	}

	// The campaign repro workflow: persist, reload, replay.
	path, err := writeRepro(t.TempDir(), 7, CaseFailure{Case: min.Case, Original: cs, Violations: min.Violations})
	if err != nil {
		t.Fatal(err)
	}
	fail, err := ReadReproFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !hasViolation(CheckCase(fail.Case).Violations, "payload-corruption") {
		t.Fatal("reloaded repro no longer reproduces")
	}
}

// TestDAGCaseGen pins the DAG case family's generator contract: seeded
// determinism, validity of every drawn case, and the parallel-safety
// gate on the attached domains list (a dynamic shared drain must never
// reach the cross-kernel comparison).
func TestDAGCaseGen(t *testing.T) {
	domains := []int{1, 2}
	a := gen.New(9).DAGCase(domains)
	b := gen.New(9).DAGCase(domains)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different DAG cases:\n%+v\n%+v", a, b)
	}
	sawSafe, sawUnsafe := false, false
	for seed := uint64(0); seed < 40; seed++ {
		cs := gen.New(seed).DAGCase(domains)
		if err := cs.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid case: %v", seed, err)
		}
		if cs.Shape == nil || cs.Shape.DAG == nil {
			t.Fatalf("seed %d: DAGCase without a DAG", seed)
		}
		safe := cs.Shape.DAG.ParallelSafe()
		if len(cs.Domains) > 0 && !safe {
			t.Fatalf("seed %d: domains attached to a non-parallel-safe DAG", seed)
		}
		if safe {
			sawSafe = true
		} else {
			sawUnsafe = true
		}
	}
	if !sawSafe || !sawUnsafe {
		t.Fatalf("generator does not cover both safety classes (safe=%v unsafe=%v)", sawSafe, sawUnsafe)
	}
}

// TestCampaignClean pins the healthy-simulator contract: a randomized
// campaign over shapes, benchmarks, knobs, and kernels yields zero
// violations (the make verify-oracle gate, in miniature).
func TestCampaignClean(t *testing.T) {
	res, err := Campaign(CampaignOptions{Seed: 0xa5a5, N: 12, Domains: []int{1, 2}, ReproDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("campaign failures: %+v", res.Failures)
	}
	if res.Cases != 12 || res.Runs < res.Cases {
		t.Fatalf("campaign accounting: %+v", res)
	}
}

// TestEvictionDuringPopRegression pins the fix for a crash the fuzz
// corpus surfaced: the eviction timer firing inside the L1-hit-latency
// sleep of PopOrDone/TryPop hit a "Take on evicted line" panic (Pop
// already re-checked; the other two dequeue paths did not). Fan shapes
// drain through PopOrDone, so sweeping eviction periods over one would
// crash without the re-check.
func TestEvictionDuringPopRegression(t *testing.T) {
	for _, evict := range []uint64{150, 350, 700, 1300} {
		cs := gen.Case{
			Spec: experiments.Spec{
				Benchmark:  "synthetic",
				Algorithms: []string{spamer.AlgBaseline, spamer.AlgZeroDelay},
			},
			Shape:      &workloads.Shape{Producers: 3, Consumers: 2, Messages: 60, Lines: 2, ConsWork: 25},
			EvictEvery: evict,
		}
		if rep := CheckCase(cs); rep.Failed() {
			t.Fatalf("evict_every=%d: %v", evict, rep.Violations)
		}
	}
}

// TestGenDeterminism: identical seeds must yield identical cases (the
// whole repro story depends on it), and the stream must actually vary.
func TestGenDeterminism(t *testing.T) {
	domains := []int{1, 2, 4}
	a := gen.New(123).Case(domains)
	b := gen.New(123).Case(domains)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different cases:\n%+v\n%+v", a, b)
	}
	distinct := false
	for seed := uint64(1); seed < 6; seed++ {
		if !reflect.DeepEqual(gen.New(seed).Case(domains), a) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("generator ignores its seed")
	}
}

// TestCompareDeliveries: the differential comparator must flag missing
// links, diverging counts, and diverging content hashes.
func TestCompareDeliveries(t *testing.T) {
	base := Delivery{Queues: []QueueDelivery{{
		Name:   "q0",
		PerSrc: []SrcDelivery{{Src: 1, Count: 4, Sum: 0x1111}},
	}}}
	if diffs := CompareDeliveries(base, base); len(diffs) != 0 {
		t.Fatalf("self-compare: %v", diffs)
	}
	short := Delivery{Queues: []QueueDelivery{{
		Name:   "q0",
		PerSrc: []SrcDelivery{{Src: 1, Count: 3, Sum: 0x2222}},
	}}}
	if diffs := CompareDeliveries(base, short); len(diffs) == 0 {
		t.Fatal("count/content divergence not reported")
	}
	if diffs := CompareDeliveries(base, Delivery{}); len(diffs) == 0 {
		t.Fatal("missing queue not reported")
	}
}

// TestReplayRoundTripsBareCase: spamer-verify -repro accepts a bare
// case file too, so hand-written cases are replayable.
func TestReplayRoundTripsBareCase(t *testing.T) {
	cs := gen.New(77).ChainCase([]int{1, 2})
	path := filepath.Join(t.TempDir(), "case.json")
	if err := cs.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := gen.ReadCaseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cs) {
		t.Fatalf("case round-trip:\n%+v\n%+v", got, cs)
	}
}
