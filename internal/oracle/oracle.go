// Package oracle is the verification layer of the simulator: a
// pluggable invariant checker that hooks a System's queues through
// vlq.Probe and the device observation points, and checks — online
// during the run and again at drain — that the machine never loses,
// duplicates, reorders, or corrupts a message, that the device tables
// stay structurally sound, and that the end-of-run counters balance.
//
// On top of the per-run checker sit the differential checks: a SPAMeR
// run must deliver the same per-link message sequences as the baseline
// VL run of the same workload (speculative-push safety, §3/Fig. 5), and
// every parallel worker-lane count must dispatch the identical event
// trace (cross-kernel equivalence, generalizing the pinned goldens).
// See docs/TESTING.md for the invariant catalogue and the determinism
// contract they enforce.
package oracle

import (
	"fmt"
	"sort"
	"sync"

	"spamer"
	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
	"spamer/internal/vlq"
)

// Violation is one invariant failure. Violations are data, not errors:
// a campaign collects them, attaches them to the failing case, and
// writes the pair to disk as a repro.
type Violation struct {
	// Invariant names the broken invariant ("message-loss",
	// "fifo-order", "cross-kernel-divergence", ...).
	Invariant string `json:"invariant"`
	// Context locates the run ("alg=vl domains=2"); filled by the
	// case-level drivers.
	Context string `json:"context,omitempty"`
	// Queue names the queue involved, when one is.
	Queue string `json:"queue,omitempty"`
	// Detail is the human-readable specifics.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	s := v.Invariant
	if v.Context != "" {
		s += " [" + v.Context + "]"
	}
	if v.Queue != "" {
		s += " queue=" + v.Queue
	}
	return s + ": " + v.Detail
}

// maxViolations bounds recording per checker: a systemic failure (e.g.
// a wrong retry path) violates an invariant per message, and one repro
// does not need thousands of copies.
const maxViolations = 32

// structCheckEvery is the online structural-check cadence: every N-th
// observed pop the checker walks the device and specBuf tables. Online
// checks run only on the sequential kernel (on a multi-domain system the
// probe fires on core lanes while the hub owns the tables).
const structCheckEvery = 16

// Checker observes one System's complete message traffic and checks the
// per-run invariants. It implements vlq.Probe; install with Attach
// before the workload builds its queues.
type Checker struct {
	mu  sync.Mutex
	sys *spamer.System

	online bool // sequential kernel: structural checks may run inline

	qs         map[*vlq.Queue]*queueState
	order      []*vlq.Queue
	violations []Violation
	pops       uint64
	finished   bool
}

// queueState tracks one queue's observed traffic.
type queueState struct {
	name string
	srcs map[int]*srcState

	// lastSeq[consumer][src] records the last sequence each consumer
	// took from each producer (stored +1; 0 = none yet). A regression is
	// recorded as a FIFO candidate and reported at Finish only if the
	// queue ends up with a single consumer endpoint: per-link FIFO is
	// only defined there (with several consumers, a missed speculative
	// push legitimately re-targets a different endpoint, so one consumer
	// may observe a per-src gap that another fills).
	lastSeq  map[int]map[int]uint64
	fifoViol *Violation
}

// srcState tracks one producer endpoint's stream within a queue.
type srcState struct {
	payload []uint64 // payload by sequence number (push order)
	popped  []bool   // delivery flags by sequence number
	nPopped uint64
}

// Attach builds a Checker and installs it on sys. Must be called after
// NewSystem and before the workload creates queues.
func Attach(sys *spamer.System) *Checker {
	c := &Checker{
		sys:    sys,
		online: sys.EffectiveDomains() == 0,
		qs:     make(map[*vlq.Queue]*queueState),
	}
	sys.SetQueueProbe(c)
	return c
}

func (c *Checker) state(q *vlq.Queue) *queueState {
	st := c.qs[q]
	if st == nil {
		st = &queueState{
			name:    q.Name(),
			srcs:    make(map[int]*srcState),
			lastSeq: make(map[int]map[int]uint64),
		}
		c.qs[q] = st
		c.order = append(c.order, q)
	}
	return st
}

func (st *queueState) src(id int) *srcState {
	s := st.srcs[id]
	if s == nil {
		s = &srcState{}
		st.srcs[id] = s
	}
	return s
}

func (c *Checker) report(v Violation) {
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, v)
	}
}

// Push implements vlq.Probe: record the submitted message under its
// (queue, src, seq) link tag.
func (c *Checker) Push(q *vlq.Queue, producer int, tick uint64, msg mem.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(q)
	s := st.src(msg.Src)
	if msg.Seq != uint64(len(s.payload)) {
		c.report(Violation{Invariant: "push-seq", Queue: st.name,
			Detail: fmt.Sprintf("producer %d submitted seq %d, expected dense %d", msg.Src, msg.Seq, len(s.payload))})
		return
	}
	s.payload = append(s.payload, msg.Payload)
	s.popped = append(s.popped, false)
}

// Pop implements vlq.Probe: check the delivered message against the
// recorded push stream — exactly-once, payload-intact, and in per-link
// order — and periodically walk the device structures.
func (c *Checker) Pop(q *vlq.Queue, consumer int, tick uint64, msg mem.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(q)
	s := st.src(msg.Src)
	switch {
	case msg.Seq >= uint64(len(s.payload)):
		c.report(Violation{Invariant: "phantom-delivery", Queue: st.name,
			Detail: fmt.Sprintf("consumer %d received (src %d, seq %d) but only %d messages were pushed", consumer, msg.Src, msg.Seq, len(s.payload))})
		return
	case s.popped[msg.Seq]:
		c.report(Violation{Invariant: "duplicate-delivery", Queue: st.name,
			Detail: fmt.Sprintf("(src %d, seq %d) delivered twice (second time to consumer %d at tick %d)", msg.Src, msg.Seq, consumer, tick)})
	default:
		s.popped[msg.Seq] = true
		s.nPopped++
	}
	if want := s.payload[msg.Seq]; want != msg.Payload {
		c.report(Violation{Invariant: "payload-corruption", Queue: st.name,
			Detail: fmt.Sprintf("(src %d, seq %d) delivered payload %#x, pushed %#x", msg.Src, msg.Seq, msg.Payload, want)})
	}
	last := st.lastSeq[consumer]
	if last == nil {
		last = make(map[int]uint64)
		st.lastSeq[consumer] = last
	}
	if prev := last[msg.Src]; prev > 0 && msg.Seq < prev-1 && st.fifoViol == nil {
		st.fifoViol = &Violation{Invariant: "fifo-order", Queue: st.name,
			Detail: fmt.Sprintf("consumer %d took (src %d, seq %d) after seq %d", consumer, msg.Src, msg.Seq, prev-1)}
	}
	if msg.Seq+1 > last[msg.Src] {
		last[msg.Src] = msg.Seq + 1
	}
	c.pops++
	if c.online && c.pops%structCheckEvery == 0 {
		c.checkStructuresLocked("online")
	}
}

// checkStructuresLocked walks every device table, specBuf table, and
// line-arena slab.
func (c *Checker) checkStructuresLocked(when string) {
	for i, d := range c.sys.Devices() {
		if err := d.CheckStructure(); err != nil {
			c.report(Violation{Invariant: "device-structure",
				Detail: fmt.Sprintf("%s, device %d: %v", when, i, err)})
			return // table state is unreliable past the first failure
		}
	}
	for i, b := range c.sys.SpecBufs() {
		if err := b.CheckStructure(); err != nil {
			c.report(Violation{Invariant: "specbuf-structure",
				Detail: fmt.Sprintf("%s, specBuf %d: %v", when, i, err)})
			return
		}
	}
	for i, as := range c.sys.AddressSpaces() {
		if err := as.CheckStructure(); err != nil {
			c.report(Violation{Invariant: "arena-structure",
				Detail: fmt.Sprintf("%s, arena %d: %v", when, i, err)})
			return
		}
	}
}

// Finish runs the drain-time invariants once the run has ended and
// returns every recorded violation. res is the run's Result, or nil if
// Run panicked (conservation and structural checks still apply; the
// counter-balance checks need the Result and are skipped).
func (c *Checker) Finish(res *spamer.Result) []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return c.violations
	}
	c.finished = true

	var pushedTotal, poppedTotal uint64
	for _, q := range c.order {
		st := c.qs[q]
		// Per-link conservation: every pushed sequence delivered
		// exactly once.
		for _, src := range sortedSrcs(st) {
			s := st.srcs[src]
			pushedTotal += uint64(len(s.payload))
			poppedTotal += s.nPopped
			if s.nPopped == uint64(len(s.payload)) {
				continue
			}
			missing := make([]uint64, 0, 4)
			for seq, got := range s.popped {
				if !got {
					missing = append(missing, uint64(seq))
					if len(missing) == 4 {
						break
					}
				}
			}
			c.report(Violation{Invariant: "message-loss", Queue: st.name,
				Detail: fmt.Sprintf("src %d: %d pushed, %d delivered; first missing seqs %v", src, len(s.payload), s.nPopped, missing)})
		}
		// Per-link FIFO (single-consumer queues only; see queueState).
		if st.fifoViol != nil && len(q.Consumers()) == 1 {
			c.report(*st.fifoViol)
		}
		// Probe coverage: the endpoint counters must agree with what the
		// probe saw, or some traffic bypassed observation.
		var qPushed, qPopped uint64
		for _, s := range st.srcs {
			qPushed += uint64(len(s.payload))
			qPopped += s.nPopped
		}
		if q.Pushed() != qPushed || q.Popped() != qPopped {
			c.report(Violation{Invariant: "probe-coverage", Queue: st.name,
				Detail: fmt.Sprintf("endpoints count %d pushed/%d popped, probe saw %d/%d", q.Pushed(), q.Popped(), qPushed, qPopped)})
		}
	}

	// Structural invariants at drain (safe on both kernels: the run is
	// over, no domain is executing).
	c.checkStructuresLocked("at drain")
	for i, d := range c.sys.Devices() {
		if !d.Quiescent() {
			c.report(Violation{Invariant: "device-not-quiescent",
				Detail: fmt.Sprintf("device %d still holds producer data or in-flight work at drain", i)})
		}
	}
	for i, b := range c.sys.SpecBufs() {
		if n := b.OnFlyCount(); n != 0 {
			c.report(Violation{Invariant: "onfly-leak",
				Detail: fmt.Sprintf("specBuf %d: %d entries still marked on-fly at drain", i, n)})
		}
	}
	// Consumer-line balance: at drain every fill was consumed.
	for _, q := range c.order {
		for ci, cons := range q.Consumers() {
			for li, line := range cons.Lines() {
				if line.Fills() != line.Vacates() {
					c.report(Violation{Invariant: "line-balance", Queue: q.Name(),
						Detail: fmt.Sprintf("consumer %d line %d: %d fills, %d vacates at drain", ci, li, line.Fills(), line.Vacates())})
				}
			}
		}
	}

	if res != nil {
		c.checkCountersLocked(res, pushedTotal, poppedTotal)
	}
	return c.violations
}

// checkCountersLocked verifies the end-of-run counter balance equations
// (stash balance and bus-occupancy conservation).
func (c *Checker) checkCountersLocked(res *spamer.Result, pushed, popped uint64) {
	d := res.Device
	type eq struct {
		name string
		a, b uint64
	}
	eqs := []eq{
		{"result pushed == popped", res.Pushed, res.Popped},
		{"probe pushed == result pushed", pushed, res.Pushed},
		{"demand pushes == demand hits + misses", d.DemandPushes, d.DemandHits + d.DemandMisses},
		{"spec pushes == spec hits + misses", d.SpecPushes, d.SpecHits + d.SpecMisses},
		{"spec scheduled == spec pushes", d.SpecScheduled, d.SpecPushes},
		{"push accepts == hits", d.PushAccepts, d.DemandHits + d.SpecHits},
		{"bus stash packets == total pushes", res.Bus.Packets[noc.PktStash], d.TotalPushes()},
		{"bus resp packets == total pushes", res.Bus.Packets[noc.PktResp], d.TotalPushes()},
	}
	for _, e := range eqs {
		if e.a != e.b {
			c.report(Violation{Invariant: "counter-balance",
				Detail: fmt.Sprintf("%s: %d != %d", e.name, e.a, e.b)})
		}
	}
}

func sortedSrcs(st *queueState) []int {
	srcs := make([]int, 0, len(st.srcs))
	for id := range st.srcs {
		srcs = append(srcs, id)
	}
	sort.Ints(srcs)
	return srcs
}

// ---------------------------------------------------------------------
// Delivery snapshots: the differential-replay currency.
// ---------------------------------------------------------------------

// Delivery is the canonical delivered-message record of one run: per
// queue, per producer link, the delivered count and an order-sensitive
// checksum over the payload sequence. Two runs of the same workload
// under different algorithms (or kernels) must produce equal
// Deliveries — the speculative-push safety contract.
type Delivery struct {
	Queues []QueueDelivery `json:"queues"`
}

// QueueDelivery is one queue's slice of a Delivery.
type QueueDelivery struct {
	Name   string        `json:"name"`
	PerSrc []SrcDelivery `json:"per_src"`
}

// SrcDelivery summarizes one producer link's delivered stream.
type SrcDelivery struct {
	Src   int    `json:"src"`
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"` // FNV-1a over payloads in sequence order
}

// Delivery snapshots the checker's observed traffic. Call after the
// run. Queues are listed in name order, not first-observation order:
// the sequential and parallel kernels first touch a DAG's queues in
// different (both deterministic) interleavings, and the cross-kernel
// comparison must not read that as a divergence.
func (c *Checker) Delivery() Delivery {
	c.mu.Lock()
	defer c.mu.Unlock()
	order := append([]*vlq.Queue(nil), c.order...)
	sort.SliceStable(order, func(i, j int) bool {
		return c.qs[order[i]].name < c.qs[order[j]].name
	})
	var d Delivery
	for _, q := range order {
		st := c.qs[q]
		qd := QueueDelivery{Name: st.name}
		for _, src := range sortedSrcs(st) {
			s := st.srcs[src]
			h := uint64(sim.TraceOffset)
			for seq, p := range s.payload {
				if s.popped[seq] {
					h = sim.TraceFold(h, uint64(seq), p)
				}
			}
			qd.PerSrc = append(qd.PerSrc, SrcDelivery{Src: src, Count: s.nPopped, Sum: h})
		}
		d.Queues = append(d.Queues, qd)
	}
	return d
}

// CompareDeliveries reports the differences between two runs' delivered
// message sequences (empty = identical).
func CompareDeliveries(a, b Delivery) []string {
	var diffs []string
	if len(a.Queues) != len(b.Queues) {
		return []string{fmt.Sprintf("queue count %d != %d", len(a.Queues), len(b.Queues))}
	}
	for i := range a.Queues {
		qa, qb := a.Queues[i], b.Queues[i]
		if qa.Name != qb.Name {
			diffs = append(diffs, fmt.Sprintf("queue %d named %q vs %q", i, qa.Name, qb.Name))
			continue
		}
		if len(qa.PerSrc) != len(qb.PerSrc) {
			diffs = append(diffs, fmt.Sprintf("%s: %d producer links vs %d", qa.Name, len(qa.PerSrc), len(qb.PerSrc)))
			continue
		}
		for j := range qa.PerSrc {
			sa, sb := qa.PerSrc[j], qb.PerSrc[j]
			if sa != sb {
				diffs = append(diffs, fmt.Sprintf("%s src %d: delivered (count %d, sum %#x) vs (count %d, sum %#x)",
					qa.Name, sa.Src, sa.Count, sa.Sum, sb.Count, sb.Sum))
			}
		}
	}
	return diffs
}
