package tuner

import (
	"testing"

	"spamer/internal/config"
)

func TestUnknownBenchmark(t *testing.T) {
	if _, err := NewSearch("nope", 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestNeighboursMutateEveryParameter(t *testing.T) {
	p := config.DefaultTuned()
	nb := neighbours(p)
	if len(nb) < 8 {
		t.Fatalf("neighbours = %d", len(nb))
	}
	varied := map[string]bool{}
	for _, q := range nb {
		if q == p {
			t.Fatalf("neighbour equals origin: %v", q)
		}
		if q.Zeta != p.Zeta {
			varied["zeta"] = true
		}
		if q.Tau != p.Tau {
			varied["tau"] = true
		}
		if q.Delta != p.Delta {
			varied["delta"] = true
		}
		if q.Alpha != p.Alpha {
			varied["alpha"] = true
		}
		if q.Beta != p.Beta {
			varied["beta"] = true
		}
	}
	for _, k := range []string{"zeta", "tau", "delta", "alpha", "beta"} {
		if !varied[k] {
			t.Errorf("no neighbour varies %s", k)
		}
	}
}

func TestNeighboursFloorParameters(t *testing.T) {
	p := config.TunedParams{Zeta: 8, Tau: 8, Delta: 8, Alpha: 1, Beta: 1}
	for _, q := range neighbours(p) {
		if q.Zeta < 8 || q.Tau < 8 || q.Delta < 8 || q.Alpha < 1 || q.Beta < 1 {
			t.Fatalf("neighbour under floor: %v", q)
		}
	}
}

// TestSearchImprovesOrHolds: coordinate descent never makes the score
// worse than the published starting point, converges within the round
// budget, and caches repeated evaluations.
func TestSearchImprovesOrHolds(t *testing.T) {
	s, err := NewSearch("firewall", 1)
	if err != nil {
		t.Fatal(err)
	}
	s.MaxRounds = 2 // keep the test quick
	res := s.Run()
	if res.Best.Score > res.Start.Score+1e-9 {
		t.Fatalf("search regressed: start %.4f best %.4f", res.Start.Score, res.Best.Score)
	}
	if res.Improvement < 1.0 {
		t.Fatalf("improvement = %v", res.Improvement)
	}
	if res.Evals == 0 || res.Evals != s.Evals() {
		t.Fatalf("evals accounting: %d vs %d", res.Evals, s.Evals())
	}
	// Determinism: the same search rerun gives the same best.
	s2, _ := NewSearch("firewall", 1)
	s2.MaxRounds = 2
	res2 := s2.Run()
	if res2.Best.Params != res.Best.Params || res2.Best.Ticks != res.Best.Ticks {
		t.Fatalf("nondeterministic search: %+v vs %+v", res.Best, res2.Best)
	}
}

func TestObjectiveScore(t *testing.T) {
	o := DefaultObjective()
	if got := o.score(3, 4); got != 5 {
		t.Fatalf("score = %v", got)
	}
	weighted := Objective{DelayWeight: 4, EnergyWeight: 0}
	if got := weighted.score(3, 100); got != 6 {
		t.Fatalf("weighted score = %v", got)
	}
}
