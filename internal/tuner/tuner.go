// Package tuner implements the paper's stated future work (§3.5/§6):
// "we could search to find a more optimal set of parameters for each
// benchmark and reconfigure those parameters dynamically". It provides
// a deterministic coordinate-descent search over the tuned algorithm's
// (ζ, τ, δ, α, β) space against any workload, and scores candidates by
// the Figure 11 objective — distance from the origin in normalized
// (delay, energy) space.
package tuner

import (
	"context"
	"fmt"
	"math"

	"spamer"
	"spamer/internal/config"
	"spamer/internal/energy"
	"spamer/internal/harness"
	"spamer/internal/workloads"
)

// Candidate is one evaluated parameter set.
type Candidate struct {
	Params     config.TunedParams
	Ticks      uint64
	DelayNorm  float64
	EnergyNorm float64
	Score      float64 // sqrt(delay² + energy²); lower is better
}

// Objective weights the two normalized axes; the default (1, 1) is the
// Euclidean Figure 11 distance.
type Objective struct {
	DelayWeight  float64
	EnergyWeight float64
}

// DefaultObjective returns the Figure 11 distance objective.
func DefaultObjective() Objective { return Objective{DelayWeight: 1, EnergyWeight: 1} }

func (o Objective) score(delay, energyN float64) float64 {
	return math.Sqrt(o.DelayWeight*delay*delay + o.EnergyWeight*energyN*energyN)
}

// Search runs coordinate descent from the paper's published set: each
// round tries the neighbouring values of every parameter and moves to
// the best improvement, stopping when no parameter move helps or after
// maxRounds. The search is deterministic (the simulator is).
type Search struct {
	Workload  *workloads.Workload
	Scale     int
	Objective Objective
	MaxRounds int

	// Workers bounds the harness pool that evaluates each round's
	// candidate neighbours concurrently (<= 0 selects GOMAXPROCS).
	// Every candidate is an independent deterministic simulation, and
	// the round's winner is folded in proposal order, so the search
	// trajectory is identical at any worker count.
	Workers int

	evals int
	cache map[config.TunedParams]Candidate
	base  spamer.Result
}

// NewSearch prepares a search for the named benchmark.
func NewSearch(bench string, scale int) (*Search, error) {
	w, ok := workloads.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("tuner: unknown benchmark %q", bench)
	}
	if scale <= 0 {
		scale = 1
	}
	return &Search{
		Workload:  w,
		Scale:     scale,
		Objective: DefaultObjective(),
		MaxRounds: 8,
		cache:     map[config.TunedParams]Candidate{},
	}, nil
}

// Evals reports how many simulator runs the search consumed.
func (s *Search) Evals() int { return s.evals }

func (s *Search) eval(p config.TunedParams) Candidate {
	return s.evalBatch([]config.TunedParams{p})[0]
}

// evalBatch evaluates every uncached parameter set on the harness pool,
// then returns candidates in argument order. Simulator runs happen
// concurrently; cache and counter updates happen on this goroutine
// after the pool drains, keeping the search itself single-threaded.
func (s *Search) evalBatch(ps []config.TunedParams) []Candidate {
	var todo []config.TunedParams
	queued := map[config.TunedParams]bool{}
	for _, p := range ps {
		if _, ok := s.cache[p]; !ok && !queued[p] {
			queued[p] = true
			todo = append(todo, p)
		}
	}
	if len(todo) > 0 {
		tasks := make([]harness.Task[spamer.Result], len(todo))
		for i, p := range todo {
			p := p
			tasks[i] = harness.Task[spamer.Result]{
				Label: s.Workload.Name + "/" + p.String(),
				Run: func(ctx context.Context) (spamer.Result, error) {
					return s.Workload.Run(spamer.Config{
						Algorithm: spamer.AlgTuned,
						Tuned:     p,
						Deadline:  1 << 40,
					}, s.Scale), nil
				},
			}
		}
		outs, _ := harness.Run(context.Background(), tasks, harness.Options{Workers: s.Workers})
		for i, o := range outs {
			if o.Err != nil {
				panic(o.Err)
			}
			s.evals++
			c := Candidate{
				Params:     todo[i],
				Ticks:      o.Value.Ticks,
				DelayNorm:  energy.DelayNorm(o.Value, s.base),
				EnergyNorm: energy.EnergyNorm(o.Value, s.base),
			}
			c.Score = s.Objective.score(c.DelayNorm, c.EnergyNorm)
			s.cache[todo[i]] = c
		}
	}
	out := make([]Candidate, len(ps))
	for i, p := range ps {
		out[i] = s.cache[p]
	}
	return out
}

// neighbours proposes the adjacent values for each parameter: halving
// and doubling for the magnitude parameters, ±1 for the small ones.
func neighbours(p config.TunedParams) []config.TunedParams {
	var out []config.TunedParams
	scaleUp := func(v uint64) uint64 { return v * 2 }
	scaleDn := func(v uint64) uint64 {
		if v <= 8 {
			return 8
		}
		return v / 2
	}
	mut := func(f func(*config.TunedParams)) {
		q := p
		f(&q)
		if q != p {
			out = append(out, q)
		}
	}
	mut(func(q *config.TunedParams) { q.Zeta = scaleUp(q.Zeta) })
	mut(func(q *config.TunedParams) { q.Zeta = scaleDn(q.Zeta) })
	mut(func(q *config.TunedParams) { q.Tau = scaleUp(q.Tau) })
	mut(func(q *config.TunedParams) { q.Tau = scaleDn(q.Tau) })
	mut(func(q *config.TunedParams) { q.Delta = scaleUp(q.Delta) })
	mut(func(q *config.TunedParams) { q.Delta = scaleDn(q.Delta) })
	mut(func(q *config.TunedParams) {
		if q.Alpha < 3 {
			q.Alpha++
		}
	})
	mut(func(q *config.TunedParams) {
		if q.Alpha > 1 {
			q.Alpha--
		}
	})
	mut(func(q *config.TunedParams) { q.Beta += 2 })
	mut(func(q *config.TunedParams) {
		if q.Beta > 1 {
			q.Beta -= 1
		}
	})
	return out
}

// Result is the outcome of a search.
type Result struct {
	Benchmark string
	Start     Candidate // the paper's published parameters
	Best      Candidate
	Rounds    int
	Evals     int
	// Improvement is Start.Score / Best.Score (>= 1).
	Improvement float64
}

// Run executes the search.
func (s *Search) Run() Result {
	// Baseline for normalization.
	s.base = s.Workload.Run(spamer.Config{Algorithm: spamer.AlgBaseline, Deadline: 1 << 40}, s.Scale)

	start := s.eval(config.DefaultTuned())
	best := start
	rounds := 0
	for ; rounds < s.MaxRounds; rounds++ {
		improved := false
		// Evaluate the whole neighbourhood concurrently, then fold the
		// winner in proposal order — the same trajectory the sequential
		// loop walked.
		for _, c := range s.evalBatch(neighbours(best.Params)) {
			if c.Score < best.Score-1e-9 {
				best = c
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	imp := 1.0
	if best.Score > 0 {
		imp = start.Score / best.Score
	}
	return Result{
		Benchmark:   s.Workload.Name,
		Start:       start,
		Best:        best,
		Rounds:      rounds,
		Evals:       s.evals,
		Improvement: imp,
	}
}
