// Package mem models the pieces of the memory hierarchy SPAMeR interacts
// with: consumer/producer endpoint cache lines, their occupancy state
// machine, and the time-integral accounting behind the paper's Figure 9
// (consumer-cacheline empty vs non-empty cycles).
//
// A full coherence protocol is deliberately out of scope: Virtual-Link's
// whole point is that queue traffic bypasses coherent shared state (§2).
// What matters to SPAMeR is whether a consumer line currently holds an
// unconsumed message (a push to it fails) or is empty (a push fills it),
// plus the rare case of an evicted line (also a push failure). That state
// machine, with exact timestamps, is what this package provides.
package mem

import (
	"fmt"

	"spamer/internal/sim"
)

// LineState is the occupancy state of an endpoint cache line.
type LineState uint8

const (
	// LineEmpty means the line is writable: a push (stash) will succeed.
	LineEmpty LineState = iota
	// LineValid means the line holds an unconsumed message: a push fails.
	LineValid
	// LineEvicted means the line lost its cache residency; pushes fail
	// until the owner re-establishes it (touch on next pop).
	LineEvicted
)

func (s LineState) String() string {
	switch s {
	case LineEmpty:
		return "empty"
	case LineValid:
		return "valid"
	case LineEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

// Addr is a simulated physical cache-line address.
type Addr uint64

// Message is the unit payload carried through a queue: one cache line.
// Seq is a per-producer sequence number used by correctness checks; Src
// identifies the producing endpoint; Payload is an opaque word standing in
// for the line contents.
type Message struct {
	Src     int
	Seq     uint64
	Payload uint64
}

// Line is one endpoint cache line, split hot/cold: the fields the
// per-message path touches (occupancy state, the message word, the fill
// signal) live here, by value, inside the AddressSpace's dense chunk
// slab; the accounting integrals and trace hooks — read only at
// collection time or on state transitions — live in a parallel cold slab
// (lineStats) reached through one pointer. The split keeps the data a
// push-probe or pop-check actually reads within the first host cache
// lines of the struct, and the OnFill signal lives inline rather than as
// a separate heap object, so checking and waking a line chases no
// pointers.
type Line struct {
	Addr  Addr
	State LineState
	Msg   Message

	k *sim.Kernel

	// OnFill fires when a message lands in the line (consumer wake-up).
	OnFill sim.Signal

	evictedMsg bool // the evicted line held an unconsumed message

	cold *lineStats
}

// lineStats is the cold half of a Line: Figure 9 occupancy integrals,
// Figure 7 trace state, and the eviction/fill counters. Rows live in a
// slab parallel to the line chunks (or alone for NewLine).
type lineStats struct {
	lastChange  uint64 // tick of the last state transition
	emptyTicks  uint64 // accumulated ticks spent empty (or evicted)
	validTicks  uint64 // accumulated ticks spent holding a message
	fills       uint64 // successful pushes into this line
	vacates     uint64 // consumer take-outs
	evictions   uint64
	fillTick    uint64 // tick of the most recent fill
	vacateTick  uint64 // tick of the most recent vacate
	firstUse    func(tick uint64, msg Message)
	traceVacate func(tick uint64)
	traceFill   func(tick uint64, msg Message)
}

// NewLine returns an empty line at the given address.
func NewLine(k *sim.Kernel, addr Addr) *Line {
	l := &Line{}
	l.init(k, addr, &lineStats{})
	return l
}

// init places an empty line at addr into existing storage, with cold as
// its stats row. AddressSpace uses it to construct lines in place inside
// its dense chunk slab, pairing each line with the matching row of the
// cold slab.
func (l *Line) init(k *sim.Kernel, addr Addr, cold *lineStats) {
	*l = Line{
		Addr:  addr,
		State: LineEmpty,
		k:     k,
		cold:  cold,
	}
	*cold = lineStats{lastChange: k.Now()}
}

// SetTraceHooks installs optional per-event callbacks used by the Figure 7
// tracer. Any hook may be nil.
func (l *Line) SetTraceHooks(fill func(tick uint64, msg Message), vacate func(tick uint64), firstUse func(tick uint64, msg Message)) {
	l.cold.traceFill = fill
	l.cold.traceVacate = vacate
	l.cold.firstUse = firstUse
}

func (l *Line) account() {
	c := l.cold
	d := l.k.Now() - c.lastChange
	if l.State == LineValid {
		c.validTicks += d
	} else {
		c.emptyTicks += d
	}
	c.lastChange = l.k.Now()
}

// TryFill attempts to stash a message into the line, as the routing device
// does at delivery time. It returns true (hit) if the line was empty and
// now holds msg; false (miss) if the line was still valid or evicted.
func (l *Line) TryFill(msg Message) bool {
	if l.State != LineEmpty {
		return false
	}
	l.account()
	l.State = LineValid
	l.Msg = msg
	l.cold.fills++
	l.cold.fillTick = l.k.Now()
	if l.cold.traceFill != nil {
		l.cold.traceFill(l.k.Now(), msg)
	}
	l.OnFill.Fire()
	return true
}

// Take removes the message from a valid line, marking it empty (the
// "cacheline vacate" event of Figure 7). It panics if the line is not
// valid — callers must check State or wait on OnFill first.
func (l *Line) Take() Message {
	if l.State != LineValid {
		panic(fmt.Sprintf("mem: Take on %s line %#x", l.State, uint64(l.Addr)))
	}
	l.account()
	msg := l.Msg
	l.State = LineEmpty
	l.Msg = Message{}
	l.cold.vacates++
	l.cold.vacateTick = l.k.Now()
	if l.cold.traceVacate != nil {
		l.cold.traceVacate(l.k.Now())
	}
	return msg
}

// NoteFirstUse records the consumer's first use of the current message
// (the topmost marker row of Figure 7).
func (l *Line) NoteFirstUse(msg Message) {
	if l.cold.firstUse != nil {
		l.cold.firstUse(l.k.Now(), msg)
	}
}

// Evict models the line losing cache residency: it writes back to
// memory (an unconsumed message is preserved, not lost) and pushes fail
// until Touch re-establishes residency. Waiters parked on OnFill are
// woken so they can observe the eviction and refetch the line — a
// spinning consumer's next load would miss and bring it back.
func (l *Line) Evict() {
	if l.State == LineEvicted {
		return
	}
	l.account()
	l.evictedMsg = l.State == LineValid
	l.State = LineEvicted
	l.cold.evictions++
	l.OnFill.Fire()
}

// Touch re-establishes residency of an evicted line, restoring the
// written-back message if one was present. No-op for resident lines.
func (l *Line) Touch() {
	if l.State != LineEvicted {
		return
	}
	l.account()
	if l.evictedMsg {
		l.State = LineValid
		l.evictedMsg = false
		l.OnFill.Fire()
	} else {
		l.State = LineEmpty
	}
}

// Occupancy returns the accumulated (emptyTicks, validTicks) including the
// in-progress interval up to the current tick.
func (l *Line) Occupancy() (empty, valid uint64) {
	c := l.cold
	d := l.k.Now() - c.lastChange
	empty, valid = c.emptyTicks, c.validTicks
	if l.State == LineValid {
		valid += d
	} else {
		empty += d
	}
	return empty, valid
}

// Fills reports the number of successful pushes into the line.
func (l *Line) Fills() uint64 { return l.cold.fills }

// Vacates reports the number of Take calls.
func (l *Line) Vacates() uint64 { return l.cold.vacates }

// Evictions reports the number of Evict calls that changed state.
func (l *Line) Evictions() uint64 { return l.cold.evictions }

// FillTick reports the tick of the most recent fill.
func (l *Line) FillTick() uint64 { return l.cold.fillTick }

// VacateTick reports the tick of the most recent vacate.
func (l *Line) VacateTick() uint64 { return l.cold.vacateTick }
