package mem

import (
	"testing"

	"spamer/internal/config"
	"spamer/internal/sim"
)

// BenchmarkLineSlab probes the arena's index-addressed slab directly —
// the loads the routing device issues per stash delivery and the
// consumer issues per dequeue. lookup is the address-to-line resolution
// alone (two shifts and two loads through the chunk table); fill-take
// adds the occupancy transition pair with its cold-slab accounting.
func BenchmarkLineSlab(b *testing.B) {
	k := sim.New()
	as := NewAddressSpace(k)
	pg := as.NewPage(linesPerChunk + 32) // span a chunk boundary
	addrs := make([]Addr, len(pg.Lines))
	for i, l := range pg.Lines {
		addrs[i] = l.Addr
	}

	b.Run("lookup", func(b *testing.B) {
		b.ReportAllocs()
		var l *Line
		for i := 0; i < b.N; i++ {
			l = as.Lookup(addrs[i%len(addrs)])
		}
		_ = l
	})

	b.Run("fill-take", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l := as.Lookup(addrs[i%len(addrs)])
			if !l.TryFill(Message{Seq: uint64(i)}) {
				b.Fatal("fill on non-empty line")
			}
			l.Take()
		}
	})

	b.Run("alloc", func(b *testing.B) {
		// Page allocation itself: slab growth amortized over lines.
		b.ReportAllocs()
		kb := sim.New()
		arena := NewAddressSpace(kb)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arena.NewPage(8)
		}
		if arena.NumLines() != 8*b.N {
			b.Fatal("allocation count off")
		}
	})

	if as.Base() != 0 || config.LineBytes == 0 {
		b.Fatal("unexpected arena config")
	}
}
