package mem

import (
	"strings"
	"testing"

	"spamer/internal/config"
	"spamer/internal/sim"
)

// TestAddressSpaceCheckStructure corrupts the arena bookkeeping one
// invariant at a time and verifies CheckStructure reports each.
func TestAddressSpaceCheckStructure(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(as *AddressSpace)
		want    string
	}{
		{"healthy", func(as *AddressSpace) {}, ""},
		{"count-exceeds-slabs", func(as *AddressSpace) {
			as.n = len(as.chunks)*linesPerChunk + 1
		}, "slabs hold"},
		{"dangling-empty-chunk", func(as *AddressSpace) {
			as.chunks = append(as.chunks, new(chunk))
		}, "slabs hold"},
		{"cursor-off", func(as *AddressSpace) {
			as.next += Addr(config.LineBytes)
		}, "address cursor"},
		{"cold-row-unpaired", func(as *AddressSpace) {
			as.chunks[0].hot[0].cold = &lineStats{}
		}, "not paired"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			as := NewAddressSpace(sim.New())
			as.NewPage(3)
			as.NewPage(2)
			tc.corrupt(as)
			err := as.CheckStructure()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("healthy arena fails: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %q, want message containing %q", err, tc.want)
			}
		})
	}
}

// TestAddressSpaceCheckAcrossChunks fills past one chunk boundary so the
// walk exercises multi-chunk pairing.
func TestAddressSpaceCheckAcrossChunks(t *testing.T) {
	as := NewAddressSpace(sim.New())
	as.NewPage(linesPerChunk + 7)
	if err := as.CheckStructure(); err != nil {
		t.Fatalf("multi-chunk arena fails: %v", err)
	}
	if got, want := len(as.chunks), 2; got != want {
		t.Fatalf("chunks = %d, want %d", got, want)
	}
}
