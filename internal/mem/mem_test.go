package mem

import (
	"testing"
	"testing/quick"

	"spamer/internal/config"
	"spamer/internal/sim"
)

func TestLineFillTakeCycle(t *testing.T) {
	k := sim.New()
	l := NewLine(k, 64)
	if l.State != LineEmpty {
		t.Fatalf("new line state = %v", l.State)
	}
	msg := Message{Src: 1, Seq: 7, Payload: 42}
	if !l.TryFill(msg) {
		t.Fatal("fill on empty line failed")
	}
	if l.State != LineValid {
		t.Fatalf("state after fill = %v", l.State)
	}
	if l.TryFill(Message{}) {
		t.Fatal("fill on valid line succeeded (should miss)")
	}
	got := l.Take()
	if got != msg {
		t.Fatalf("Take = %+v, want %+v", got, msg)
	}
	if l.State != LineEmpty {
		t.Fatalf("state after take = %v", l.State)
	}
	if l.Fills() != 1 || l.Vacates() != 1 {
		t.Fatalf("fills=%d vacates=%d", l.Fills(), l.Vacates())
	}
}

func TestTakeOnEmptyPanics(t *testing.T) {
	k := sim.New()
	l := NewLine(k, 64)
	defer func() {
		if recover() == nil {
			t.Error("Take on empty line did not panic")
		}
	}()
	l.Take()
}

func TestOccupancyIntegrals(t *testing.T) {
	k := sim.New()
	l := NewLine(k, 64)
	k.At(100, func() {
		if !l.TryFill(Message{}) {
			t.Error("fill failed")
		}
	})
	k.At(250, func() { l.Take() })
	k.At(300, func() {
		empty, valid := l.Occupancy()
		if empty != 100+50 {
			t.Errorf("empty = %d, want 150", empty)
		}
		if valid != 150 {
			t.Errorf("valid = %d, want 150", valid)
		}
	})
	k.Run()
}

func TestEvictionBlocksFill(t *testing.T) {
	k := sim.New()
	l := NewLine(k, 64)
	l.Evict()
	if l.State != LineEvicted {
		t.Fatalf("state = %v", l.State)
	}
	if l.TryFill(Message{}) {
		t.Fatal("fill succeeded on evicted line")
	}
	l.Touch()
	if l.State != LineEmpty {
		t.Fatalf("state after touch = %v", l.State)
	}
	if !l.TryFill(Message{}) {
		t.Fatal("fill failed after touch")
	}
	if l.Evictions() != 1 {
		t.Fatalf("evictions = %d", l.Evictions())
	}
}

func TestEvictValidWritesBack(t *testing.T) {
	k := sim.New()
	l := NewLine(k, 64)
	l.TryFill(Message{Payload: 9})
	l.Evict()
	if l.TryFill(Message{Payload: 1}) {
		t.Fatal("fill succeeded on evicted line")
	}
	l.Touch()
	// The unconsumed message was written back and restored.
	if l.State != LineValid || l.Msg.Payload != 9 {
		t.Fatalf("state = %v msg = %+v", l.State, l.Msg)
	}
	if got := l.Take(); got.Payload != 9 {
		t.Fatalf("Take = %+v", got)
	}
}

func TestOnFillSignal(t *testing.T) {
	k := sim.New()
	l := NewLine(k, 64)
	var woke uint64
	k.Go("consumer", func(p *sim.Proc) {
		for l.State != LineValid {
			l.OnFill.Wait(p)
		}
		woke = p.Now()
	})
	k.At(40, func() { l.TryFill(Message{}) })
	k.Run()
	if woke != 40 {
		t.Fatalf("woke at %d, want 40", woke)
	}
}

func TestTraceHooks(t *testing.T) {
	k := sim.New()
	l := NewLine(k, 64)
	var fills, vacates, uses int
	l.SetTraceHooks(
		func(tick uint64, msg Message) { fills++ },
		func(tick uint64) { vacates++ },
		func(tick uint64, msg Message) { uses++ },
	)
	l.TryFill(Message{})
	l.NoteFirstUse(l.Msg)
	l.Take()
	if fills != 1 || vacates != 1 || uses != 1 {
		t.Fatalf("fills=%d vacates=%d uses=%d", fills, vacates, uses)
	}
}

func TestAddressSpacePagesDisjoint(t *testing.T) {
	k := sim.New()
	as := NewAddressSpace(k)
	seen := map[Addr]bool{}
	for i := 0; i < 10; i++ {
		pg := as.NewPage(8)
		for _, l := range pg.Lines {
			if seen[l.Addr] {
				t.Fatalf("duplicate address %#x", uint64(l.Addr))
			}
			seen[l.Addr] = true
			if uint64(l.Addr)%config.LineBytes != 0 {
				t.Fatalf("misaligned address %#x", uint64(l.Addr))
			}
			if as.Lookup(l.Addr) != l {
				t.Fatal("Lookup returned a different line")
			}
		}
	}
	if as.NumLines() != 80 {
		t.Fatalf("NumLines = %d, want 80", as.NumLines())
	}
}

func TestLookupUnknownPanics(t *testing.T) {
	k := sim.New()
	as := NewAddressSpace(k)
	defer func() {
		if recover() == nil {
			t.Error("Lookup of unknown address did not panic")
		}
	}()
	as.Lookup(Addr(0xdead000))
}

// Property: for any interleaving of fills and takes, occupancy integrals
// sum to elapsed time, and fills-vacates matches the final state.
func TestOccupancyConservationProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		if len(gaps) > 100 {
			gaps = gaps[:100]
		}
		k := sim.New()
		l := NewLine(k, 64)
		tick := uint64(0)
		valid := false
		for i, g := range gaps {
			tick += uint64(g)
			v := valid
			if i%2 == 0 {
				k.At(tick, func() { l.TryFill(Message{}) })
				valid = true
			} else if v {
				k.At(tick, func() {
					if l.State == LineValid {
						l.Take()
					}
				})
				valid = false
			}
		}
		end := tick + 10
		ok := true
		k.At(end, func() {
			empty, validTicks := l.Occupancy()
			if empty+validTicks != end {
				ok = false
			}
			delta := l.Fills() - l.Vacates()
			if l.State == LineValid && delta != 1 {
				ok = false
			}
			if l.State == LineEmpty && delta != 0 {
				ok = false
			}
		})
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyHelper(t *testing.T) {
	k := sim.New()
	as := NewAddressSpace(k)
	pg := as.NewPage(3)
	k.At(10, func() { pg.Lines[0].TryFill(Message{}) })
	k.At(20, func() { pg.Lines[1].TryFill(Message{}) })
	k.At(30, func() {
		empty, valid := Occupancy(pg.Lines)
		// line0: 10 empty + 20 valid; line1: 20 + 10; line2: 30 + 0.
		if empty != 60 || valid != 30 {
			t.Errorf("empty=%d valid=%d, want 60/30", empty, valid)
		}
	})
	k.Run()
}
