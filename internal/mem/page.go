package mem

import (
	"fmt"

	"spamer/internal/config"
	"spamer/internal/sim"
)

// Page is a contiguous run of endpoint cache lines at unique addresses —
// the per-endpoint buffer the paper describes ("a producer may have a 4KiB
// page, the consumer a completely different page", §3.1).
type Page struct {
	Base  Addr
	Lines []*Line
}

// linesPerChunk sizes the dense line-table chunks. Chunks are fixed
// arrays so &chunk[i] stays valid forever (they are never moved or
// resized), which lets Pages and the routing device hold *Line into
// storage that is contiguous by value.
const linesPerChunk = 256

// AddressSpace allocates endpoint pages with unique, non-overlapping
// cache-line addresses, and resolves addresses back to lines (the routing
// device needs this to deliver stashes).
//
// Lines are stored by value in fixed-size chunks and indexed by the
// allocation order implied by the address, so Lookup is two shifts and
// two loads — no map hashing, no per-line heap object — and neighbouring
// lines of a page share cache lines of the host.
type AddressSpace struct {
	k      *sim.Kernel
	base   Addr
	next   Addr
	n      int // allocated lines
	chunks []*[linesPerChunk]Line
}

// NewAddressSpace returns an empty address space starting at a non-zero
// base (address 0 is reserved as the nil/NULL target of the mapping
// pipeline, Figure 4).
func NewAddressSpace(k *sim.Kernel) *AddressSpace {
	return NewAddressSpaceAt(k, 0)
}

// NewAddressSpaceAt returns an empty address space whose allocations
// start one line above base. A multi-domain system gives each domain its
// own space at a distinct base so an address identifies its owning
// domain; base itself is never allocated, preserving the reserved-NULL
// convention of NewAddressSpace at every base.
func NewAddressSpaceAt(k *sim.Kernel, base Addr) *AddressSpace {
	if base%Addr(config.LineBytes) != 0 {
		panic(fmt.Sprintf("mem: address-space base %#x not line-aligned", uint64(base)))
	}
	return &AddressSpace{k: k, base: base, next: base + Addr(config.LineBytes)}
}

// Base reports the base address of the space (the reserved line below the
// first allocation).
func (as *AddressSpace) Base() Addr { return as.base }

// NewPage allocates a page of n lines.
func (as *AddressSpace) NewPage(n int) *Page {
	if n <= 0 {
		panic(fmt.Sprintf("mem: NewPage(%d)", n))
	}
	p := &Page{Base: as.next, Lines: make([]*Line, n)}
	for i := range p.Lines {
		if as.n%linesPerChunk == 0 {
			as.chunks = append(as.chunks, new([linesPerChunk]Line))
		}
		l := &as.chunks[as.n/linesPerChunk][as.n%linesPerChunk]
		l.init(as.k, as.next)
		p.Lines[i] = l
		as.n++
		as.next += Addr(config.LineBytes)
	}
	return p
}

// Lookup resolves a line address. It panics on unknown addresses: the
// routing device only ever holds addresses that endpoints registered.
func (as *AddressSpace) Lookup(a Addr) *Line {
	if a > as.base && a < as.next && a%Addr(config.LineBytes) == 0 {
		idx := int((a-as.base)/Addr(config.LineBytes)) - 1
		return &as.chunks[idx/linesPerChunk][idx%linesPerChunk]
	}
	panic(fmt.Sprintf("mem: unknown line address %#x", uint64(a)))
}

// NumLines reports how many lines have been allocated.
func (as *AddressSpace) NumLines() int { return as.n }

// Occupancy sums empty/valid tick integrals over a set of lines; the
// Figure 9 harness averages this over all consumer lines of a run.
func Occupancy(lines []*Line) (empty, valid uint64) {
	for _, l := range lines {
		e, v := l.Occupancy()
		empty += e
		valid += v
	}
	return empty, valid
}
