package mem

import (
	"fmt"

	"spamer/internal/config"
	"spamer/internal/sim"
)

// Page is a contiguous run of endpoint cache lines at unique addresses —
// the per-endpoint buffer the paper describes ("a producer may have a 4KiB
// page, the consumer a completely different page", §3.1).
type Page struct {
	Base  Addr
	Lines []*Line
}

// pageAllocator hands out non-overlapping address ranges. Each endpoint
// gets a unique page, which is precisely VL's no-shared-state property.
type pageAllocator struct {
	next Addr
}

// AddressSpace allocates endpoint pages with unique, non-overlapping
// cache-line addresses, and resolves addresses back to lines (the routing
// device needs this to deliver stashes).
type AddressSpace struct {
	k     *sim.Kernel
	alloc pageAllocator
	lines map[Addr]*Line
}

// NewAddressSpace returns an empty address space starting at a non-zero
// base (address 0 is reserved as the nil/NULL target of the mapping
// pipeline, Figure 4).
func NewAddressSpace(k *sim.Kernel) *AddressSpace {
	return &AddressSpace{
		k:     k,
		alloc: pageAllocator{next: Addr(config.LineBytes)},
		lines: make(map[Addr]*Line),
	}
}

// NewPage allocates a page of n lines.
func (as *AddressSpace) NewPage(n int) *Page {
	if n <= 0 {
		panic(fmt.Sprintf("mem: NewPage(%d)", n))
	}
	p := &Page{Base: as.alloc.next, Lines: make([]*Line, n)}
	for i := range p.Lines {
		l := NewLine(as.k, as.alloc.next)
		as.lines[l.Addr] = l
		p.Lines[i] = l
		as.alloc.next += Addr(config.LineBytes)
	}
	return p
}

// Lookup resolves a line address. It panics on unknown addresses: the
// routing device only ever holds addresses that endpoints registered.
func (as *AddressSpace) Lookup(a Addr) *Line {
	l, ok := as.lines[a]
	if !ok {
		panic(fmt.Sprintf("mem: unknown line address %#x", uint64(a)))
	}
	return l
}

// NumLines reports how many lines have been allocated.
func (as *AddressSpace) NumLines() int { return len(as.lines) }

// Occupancy sums empty/valid tick integrals over a set of lines; the
// Figure 9 harness averages this over all consumer lines of a run.
func Occupancy(lines []*Line) (empty, valid uint64) {
	for _, l := range lines {
		e, v := l.Occupancy()
		empty += e
		valid += v
	}
	return empty, valid
}
