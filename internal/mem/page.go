package mem

import (
	"fmt"

	"spamer/internal/config"
	"spamer/internal/sim"
)

// Page is a contiguous run of endpoint cache lines at unique addresses —
// the per-endpoint buffer the paper describes ("a producer may have a 4KiB
// page, the consumer a completely different page", §3.1).
type Page struct {
	Base  Addr
	Lines []*Line
}

// linesPerChunk sizes the dense line-table chunks. Chunks are fixed
// arrays so &chunk[i] stays valid forever (they are never moved or
// resized), which lets Pages and the routing device hold *Line into
// storage that is contiguous by value.
const linesPerChunk = 256

// pageArenaBlock and ptrSlabBlock batch the per-page header and Lines
// allocations: a system opens a few dozen endpoints (each one page), so
// block storage turns one Page struct + one []*Line per endpoint into a
// couple of allocations per address space. Blocks are never grown in
// place — a full block is replaced by a fresh one — so &pages[i] and the
// carved Lines slices stay valid forever. The first block of each kind
// is embedded in the AddressSpace itself, so a typical domain space (a
// handful of endpoints) allocates nothing for its page bookkeeping.
const (
	pageArenaBlock = 16
	ptrSlabBlock   = 128
)

// chunk fuses linesPerChunk hot lines with their cold accounting rows in
// one allocation. The hot array stays dense and contiguous — cold rows
// trail it — so the cache behaviour of the line arena is unchanged while
// a chunk costs one allocation instead of a paired hot/cold pair.
type chunk struct {
	hot  [linesPerChunk]Line
	cold [linesPerChunk]lineStats
}

// AddressSpace allocates endpoint pages with unique, non-overlapping
// cache-line addresses, and resolves addresses back to lines (the routing
// device needs this to deliver stashes).
//
// The space is the per-domain line arena: lines are stored by value in
// fixed-size chunks and indexed by the allocation order implied by the
// address, so Lookup is two shifts and two loads — no map hashing, no
// per-line heap object — and neighbouring lines of a page share cache
// lines of the host. Each line's cold accounting half trails the hot
// array inside its chunk (see Line), and because every simulation
// domain owns a distinct AddressSpace, the arena is written by exactly
// one worker lane: domains never false-share line state.
type AddressSpace struct {
	k      *sim.Kernel
	base   Addr
	next   Addr
	n      int // allocated lines; the arena's high-water mark (lines are never freed)
	chunks []*chunk

	pages []Page  // block arena behind the *Page headers NewPage hands out
	ptrs  []*Line // slab carved into the Lines arrays of those pages

	// Embedded first blocks: Init points pages/ptrs (and the chunks
	// index) here, so a space only hits the heap once its demand
	// outgrows them. &pages0[i] and the carved ptrs0 sub-slices are
	// handed out, so an AddressSpace must not move after Init — both
	// constructors and the parallel fabric's arena honour that.
	chunks0 [4]*chunk
	pages0  [pageArenaBlock]Page
	ptrs0   [ptrSlabBlock]*Line
}

// NewAddressSpace returns an empty address space starting at a non-zero
// base (address 0 is reserved as the nil/NULL target of the mapping
// pipeline, Figure 4).
func NewAddressSpace(k *sim.Kernel) *AddressSpace {
	return NewAddressSpaceAt(k, 0)
}

// NewAddressSpaceAt returns an empty address space whose allocations
// start one line above base. A multi-domain system gives each domain its
// own space at a distinct base so an address identifies its owning
// domain; base itself is never allocated, preserving the reserved-NULL
// convention of NewAddressSpace at every base.
func NewAddressSpaceAt(k *sim.Kernel, base Addr) *AddressSpace {
	as := new(AddressSpace)
	as.Init(k, base)
	return as
}

// Init initializes as in place (batch construction for the multi-domain
// fabric's per-domain spaces; NewAddressSpaceAt wraps it).
func (as *AddressSpace) Init(k *sim.Kernel, base Addr) {
	if base%Addr(config.LineBytes) != 0 {
		panic(fmt.Sprintf("mem: address-space base %#x not line-aligned", uint64(base)))
	}
	*as = AddressSpace{k: k, base: base, next: base + Addr(config.LineBytes)}
	as.chunks = as.chunks0[:0]
	as.pages = as.pages0[:0]
	as.ptrs = as.ptrs0[:0]
}

// Base reports the base address of the space (the reserved line below the
// first allocation).
func (as *AddressSpace) Base() Addr { return as.base }

// NewPage allocates a page of n lines.
func (as *AddressSpace) NewPage(n int) *Page {
	if n <= 0 {
		panic(fmt.Sprintf("mem: NewPage(%d)", n))
	}
	if len(as.pages) == cap(as.pages) {
		// Fresh header block; earlier *Page pointers keep aiming into the
		// old blocks.
		as.pages = make([]Page, 0, pageArenaBlock)
	}
	as.pages = as.pages[:len(as.pages)+1]
	p := &as.pages[len(as.pages)-1]
	if cap(as.ptrs)-len(as.ptrs) < n {
		c := ptrSlabBlock
		if n > c {
			c = n
		}
		as.ptrs = make([]*Line, 0, c)
	}
	m := len(as.ptrs)
	as.ptrs = as.ptrs[:m+n]
	// The three-index expression caps the page's view at its own lines, so
	// an (impossible today) append on Lines could never clobber the next
	// page's slots.
	*p = Page{Base: as.next, Lines: as.ptrs[m : m+n : m+n]}
	for i := range p.Lines {
		if as.n%linesPerChunk == 0 {
			as.chunks = append(as.chunks, new(chunk))
		}
		c := as.chunks[as.n/linesPerChunk]
		l := &c.hot[as.n%linesPerChunk]
		l.init(as.k, as.next, &c.cold[as.n%linesPerChunk])
		p.Lines[i] = l
		as.n++
		as.next += Addr(config.LineBytes)
	}
	return p
}

// CheckStructure validates the arena's slab bookkeeping: the hot and
// cold slabs stay paired chunk for chunk, the allocation count (the
// high-water mark — lines are never freed) fits the slabs exactly, every
// allocated line is linked to its matching cold row, and the address
// cursor agrees with the count. The oracle's structural walks call it
// alongside the device and specBuf walks.
func (as *AddressSpace) CheckStructure() error {
	have := len(as.chunks) * linesPerChunk
	if as.n > have || have-as.n >= linesPerChunk {
		return fmt.Errorf("mem: %d lines allocated but slabs hold %d slots", as.n, have)
	}
	if want := as.base + Addr((as.n+1)*config.LineBytes); as.next != want {
		return fmt.Errorf("mem: address cursor %#x, want %#x for %d lines", uint64(as.next), uint64(want), as.n)
	}
	for i := 0; i < as.n; i++ {
		c := as.chunks[i/linesPerChunk]
		l := &c.hot[i%linesPerChunk]
		if l.cold != &c.cold[i%linesPerChunk] {
			return fmt.Errorf("mem: line %d (%#x) not paired with its cold row", i, uint64(l.Addr))
		}
	}
	return nil
}

// Lookup resolves a line address. It panics on unknown addresses: the
// routing device only ever holds addresses that endpoints registered.
func (as *AddressSpace) Lookup(a Addr) *Line {
	if a > as.base && a < as.next && a%Addr(config.LineBytes) == 0 {
		idx := int((a-as.base)/Addr(config.LineBytes)) - 1
		return &as.chunks[idx/linesPerChunk].hot[idx%linesPerChunk]
	}
	panic(fmt.Sprintf("mem: unknown line address %#x", uint64(a)))
}

// NumLines reports how many lines have been allocated.
func (as *AddressSpace) NumLines() int { return as.n }

// Occupancy sums empty/valid tick integrals over a set of lines; the
// Figure 9 harness averages this over all consumer lines of a run.
func Occupancy(lines []*Line) (empty, valid uint64) {
	for _, l := range lines {
		e, v := l.Occupancy()
		empty += e
		valid += v
	}
	return empty, valid
}
