package vl

import "fmt"

// FaultDropStash arms a verification fault: the n-th stash delivery
// (1-based, counted across the run) acknowledges a hit without filling
// the target line — the device frees the prodBuf entry believing the
// message arrived, and the message is lost. Intended for internal/oracle
// tests proving the conservation invariant catches real loss; only the
// same-domain delivery path honours it, so fault injection forces the
// sequential kernel (spamer.Config.EffectiveDomains).
func (d *Device) FaultDropStash(n uint64) { d.faultDropNth = n }

// FaultCorruptStash arms a verification fault: the n-th stash delivery
// (1-based, counted across the run) fills its target line with a
// payload whose bits were flipped in flight — metadata intact, content
// wrong. Unlike FaultDropStash the run completes normally; only the
// oracle's payload-integrity check can catch it. Same-domain delivery
// path only, so it forces the sequential kernel like the drop fault.
func (d *Device) FaultCorruptStash(n uint64) { d.faultCorruptNth = n }

// CheckStructure walks the device tables and verifies their structural
// invariants: the free lists and the allocated entries partition prodBuf
// and consBuf; every entry's queue membership matches its state (input,
// per-SQI buffered, and sending queues are disjoint, acyclic, and
// correctly terminated); and the prodBuf admission accounting
// (usedPerSQI, sharedUsed, activeSQIs) agrees with the tables. It
// returns the first inconsistency found, or nil.
//
// The walk is read-only and safe at any quiescent point of a sequential
// run; the verification oracle calls it online from queue probes and
// once more at drain.
func (d *Device) CheckStructure() error {
	// membership[i] names the queue that linked prodBuf entry i.
	membership := make([]entryState, len(d.prod))

	walk := func(label string, head, tail int, want entryState) error {
		n := 0
		last := nilIdx
		for idx := head; idx != nilIdx; idx = d.prod[idx].next {
			if idx < 0 || idx >= len(d.prod) {
				return fmt.Errorf("vl: %s chain holds out-of-range index %d", label, idx)
			}
			if membership[idx] != entryFree {
				return fmt.Errorf("vl: prodBuf entry %d linked by both %s and %s chains", idx, membership[idx], want)
			}
			membership[idx] = want
			if st := d.prod[idx].state; st != want {
				return fmt.Errorf("vl: prodBuf entry %d in %s chain has state %s", idx, label, st)
			}
			last = idx
			if n++; n > len(d.prod) {
				return fmt.Errorf("vl: %s chain cycles", label)
			}
		}
		if last != tail {
			return fmt.Errorf("vl: %s chain tail is %d, register says %d", label, last, tail)
		}
		return nil
	}

	if err := walk("input", d.inputHead, d.inputTail, entryInput); err != nil {
		return err
	}
	if err := walk("send", d.sendHead, d.sendTail, entrySendQueued); err != nil {
		return err
	}

	activeRows := 0
	perSQI := make([]int, len(d.link))
	for s := range d.link {
		row := &d.link[s]
		if row.used {
			activeRows++
		}
		if row.prodHead == nilIdx && row.consHead == nilIdx && !row.used {
			continue
		}
		if err := walk(fmt.Sprintf("SQI %d buffered", s), row.prodHead, row.prodTail, entryBuffered); err != nil {
			return err
		}
		for idx := row.prodHead; idx != nilIdx; idx = d.prod[idx].next {
			if d.prod[idx].sqi != SQI(s) {
				return fmt.Errorf("vl: prodBuf entry %d buffered under SQI %d but tagged SQI %d", idx, s, d.prod[idx].sqi)
			}
		}
		// Consumer-request chain of the row.
		n := 0
		last := nilIdx
		for c := row.consHead; c != nilIdx; c = d.cons[c].next {
			if c < 0 || c >= len(d.cons) {
				return fmt.Errorf("vl: SQI %d request chain holds out-of-range index %d", s, c)
			}
			ce := &d.cons[c]
			if !ce.used || ce.sqi != SQI(s) {
				return fmt.Errorf("vl: consBuf entry %d in SQI %d chain is used=%v sqi=%d", c, s, ce.used, ce.sqi)
			}
			last = c
			if n++; n > len(d.cons) {
				return fmt.Errorf("vl: SQI %d request chain cycles", s)
			}
		}
		if last != row.consTail {
			return fmt.Errorf("vl: SQI %d request chain tail is %d, register says %d", s, last, row.consTail)
		}
	}
	if activeRows != d.activeSQIs {
		return fmt.Errorf("vl: %d used linkTab rows but activeSQIs=%d", activeRows, d.activeSQIs)
	}

	// Free list vs. states: together with the chain membership above,
	// every entry must be accounted for exactly once.
	for _, idx := range d.freeProd {
		if idx < 0 || idx >= len(d.prod) {
			return fmt.Errorf("vl: prodBuf free list holds out-of-range index %d", idx)
		}
		if membership[idx] != entryFree || d.prod[idx].state != entryFree {
			return fmt.Errorf("vl: prodBuf entry %d on free list with state %s", idx, d.prod[idx].state)
		}
		membership[idx] = entryInput // reuse as a "seen" mark for duplicates
	}
	allocated := 0
	for i := range d.prod {
		st := d.prod[i].state
		if st == entryFree {
			if membership[i] != entryInput {
				return fmt.Errorf("vl: prodBuf entry %d free but not on the free list", i)
			}
			continue
		}
		allocated++
		perSQI[d.prod[i].sqi]++
		// Unlinked states hold the entry outside every chain; linked
		// states must have been claimed by their chain's walk.
		switch st {
		case entryMapping, entrySpecWait, entryInFlight:
			if membership[i] != entryFree {
				return fmt.Errorf("vl: prodBuf entry %d is %s but linked into a %s chain", i, st, membership[i])
			}
		default:
			if membership[i] != st {
				return fmt.Errorf("vl: prodBuf entry %d is %s but not linked into its chain", i, st)
			}
		}
	}
	if allocated+len(d.freeProd) != len(d.prod) {
		return fmt.Errorf("vl: %d allocated + %d free != %d prodBuf entries", allocated, len(d.freeProd), len(d.prod))
	}
	if d.prodHighWater < allocated || d.prodHighWater > len(d.prod) {
		return fmt.Errorf("vl: prodBuf high-water %d outside [allocated %d, capacity %d]", d.prodHighWater, allocated, len(d.prod))
	}

	// Admission accounting: usedPerSQI mirrors the per-SQI allocation
	// counts, and sharedUsed is the beyond-reservation excess.
	shared := 0
	for s := range d.usedPerSQI {
		if d.usedPerSQI[s] != perSQI[s] {
			return fmt.Errorf("vl: SQI %d holds %d prodBuf entries but usedPerSQI says %d", s, perSQI[s], d.usedPerSQI[s])
		}
		if d.usedPerSQI[s] > 1 {
			shared += d.usedPerSQI[s] - 1
		}
	}
	if shared != d.sharedUsed {
		return fmt.Errorf("vl: shared-pool excess is %d but sharedUsed=%d", shared, d.sharedUsed)
	}
	if d.sharedUsed > d.sharedCap() {
		return fmt.Errorf("vl: sharedUsed=%d exceeds shared capacity %d", d.sharedUsed, d.sharedCap())
	}

	// consBuf free list vs. used flags.
	usedCons := 0
	for i := range d.cons {
		if d.cons[i].used {
			usedCons++
		}
	}
	if usedCons+len(d.freeCons) != len(d.cons) {
		return fmt.Errorf("vl: %d used + %d free != %d consBuf entries", usedCons, len(d.freeCons), len(d.cons))
	}
	if d.consHighWater < usedCons || d.consHighWater > len(d.cons) {
		return fmt.Errorf("vl: consBuf high-water %d outside [used %d, capacity %d]", d.consHighWater, usedCons, len(d.cons))
	}
	for _, c := range d.freeCons {
		if c < 0 || c >= len(d.cons) || d.cons[c].used {
			return fmt.Errorf("vl: consBuf free list holds used/out-of-range index %d", c)
		}
	}
	return nil
}
