package vl

import (
	"strings"
	"testing"

	"spamer/internal/mem"
)

// TestBufferHighWaterLatchesPeak pushes three messages (peak prodBuf
// occupancy 3), drains them with fetches, then parks two extra fetches
// (peak consBuf occupancy 2): both high-water marks must report the
// peaks, not the drained counts.
func TestBufferHighWaterLatchesPeak(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(8)

	for i := 0; i < 3; i++ {
		i := i
		r.k.At(uint64(i), func() { r.dev.Push(s, mem.Message{Seq: uint64(i)}) })
	}
	for i := 0; i < 3; i++ {
		i := i
		r.k.At(uint64(100+10*i), func() { r.dev.Fetch(s, pg.Lines[i].Addr) })
	}
	// Unanswered fetches park in consBuf.
	r.k.At(200, func() { r.dev.Fetch(s, pg.Lines[3].Addr) })
	r.k.At(201, func() { r.dev.Fetch(s, pg.Lines[4].Addr) })
	r.k.Run()

	if got := r.dev.ProdHighWater(); got != 3 {
		t.Fatalf("prodBuf high-water = %d, want 3", got)
	}
	if free := r.dev.FreeProdEntries(); free != len(r.dev.prod) {
		t.Fatalf("prodBuf not drained: %d free of %d", free, len(r.dev.prod))
	}
	if got := r.dev.ConsHighWater(); got != 2 {
		t.Fatalf("consBuf high-water = %d, want 2", got)
	}
	if err := r.dev.CheckStructure(); err != nil {
		t.Fatalf("structure after churn: %v", err)
	}
}

// TestBufferHighWaterViolations corrupts the high-water marks and
// verifies CheckStructure reports the new invariants.
func TestBufferHighWaterViolations(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(d *Device)
		want    string
	}{
		{"prod-below-allocated", func(d *Device) {
			d.prodHighWater = 0
		}, "prodBuf high-water"},
		{"prod-above-capacity", func(d *Device) {
			d.prodHighWater = len(d.prod) + 1
		}, "prodBuf high-water"},
		{"cons-below-used", func(d *Device) {
			d.consHighWater = 0
		}, "consBuf high-water"},
		{"cons-above-capacity", func(d *Device) {
			d.consHighWater = len(d.cons) + 1
		}, "consBuf high-water"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(Config{})
			s, _ := r.dev.AllocSQI()
			pg := r.as.NewPage(2)
			// One buffered message and one parked request keep both
			// tables occupied so the below-allocated cases can trip.
			r.k.At(0, func() { r.dev.Push(s, mem.Message{Seq: 0}) })
			r.k.At(1, func() {
				s2, err := r.dev.AllocSQI()
				if err != nil {
					t.Errorf("AllocSQI: %v", err)
					return
				}
				r.dev.Fetch(s2, pg.Lines[1].Addr)
			})
			r.k.Run()
			tc.corrupt(r.dev)
			err := r.dev.CheckStructure()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %q, want message containing %q", err, tc.want)
			}
		})
	}
}
