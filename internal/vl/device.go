package vl

import (
	"fmt"

	"spamer/internal/config"
	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
)

// Device is the routing device attached to the coherence network. With a
// nil SpecExtension it is the baseline VLRD; internal/core supplies the
// extension that turns it into the SPAMeR SRD.
type Device struct {
	k   *sim.Kernel
	bus *noc.Bus
	as  *mem.AddressSpace

	spec SpecExtension

	prod []prodEntry
	cons []consEntry
	link []linkRow // indexed by SQI; row 0 reserved

	freeProd []int
	freeCons []int

	// Occupancy peaks: the maximum number of simultaneously allocated
	// prodBuf and consBuf entries ever observed. Purely diagnostic — the
	// admission logic never reads them — but the structural walk checks
	// they bound the live counts, and the harness sizes Table 1 buffers
	// from them.
	prodHighWater int
	consHighWater int

	// Per-SQI prodBuf admission control. Every active SQI has one
	// reserved slot; the remaining entries form a shared pool any SQI
	// may draw from. The reservation guarantees each queue can always
	// buffer at least one message, so a fan-in stage can never wedge
	// the shared buffer and deadlock a pipeline (a cycle we hit with
	// unrestricted sharing: upstream data fills prodBuf, the middle
	// stage blocks pushing downstream, and the pop that would drain the
	// buffer never runs). The shared pool keeps burst throughput on
	// many-queue workloads (halo: 48 SQIs on a 64-entry prodBuf).
	usedPerSQI []int
	sharedUsed int
	activeSQIs int

	// Producer input queue (PIHR/PITR of Figure 5).
	inputHead, inputTail int

	// Sending queue (shared stash output port).
	sendHead, sendTail int

	mapBusy  bool
	sendBusy bool

	nextSQI SQI

	stats Stats

	// Scheduling callbacks bound once at construction. The device
	// schedules events every cycle while traffic flows (mapper ticks,
	// send-issue spacing, bus deliveries); passing these stored func
	// values through sim.Kernel.AfterFunc/noc.Bus.SendFunc with the
	// entry index as the argument keeps the steady-state tick path free
	// of per-event closure allocations.
	mapperTickFn      func(uint64)
	completeMappingFn func(uint64) // arg: prodBuf index
	releaseSpecFn     func(uint64) // arg: prodBuf index
	appendSendFn      func(uint64) // arg: prodBuf index
	deliverStashFn    func(uint64) // arg: prodBuf index
	handleResponseFn  func(uint64) // arg: prodBuf index << 1 | hit
	sendIssueDoneFn   func(uint64)

	// stashRouter, when set, carries stash packets to lines owned by
	// other simulation domains instead of delivering on the local bus.
	// The router is responsible for the fill attempt and for feeding the
	// hit/miss outcome back through StashResponse; the entry stays
	// entryInFlight (target and msg frozen) until that response arrives,
	// exactly as on the same-domain path.
	stashRouter func(idx uint64, target mem.Addr, msg mem.Message)

	// Fault injection (verification only): when faultDropNth is non-zero
	// the faultDropNth-th stash delivery acknowledges a hit without
	// filling the line; when faultCorruptNth is non-zero the
	// faultCorruptNth-th delivery fills the line with a flipped payload.
	// See FaultDropStash and FaultCorruptStash.
	faultDropNth     uint64
	faultCorruptNth  uint64
	stashesDelivered uint64
}

// New creates a routing device on the given kernel, bus and address space.
func New(k *sim.Kernel, bus *noc.Bus, as *mem.AddressSpace, cfg Config) *Device {
	if cfg.ProdEntries == 0 {
		cfg.ProdEntries = config.SRDEntries
	}
	if cfg.ConsEntries == 0 {
		cfg.ConsEntries = config.SRDEntries
	}
	if cfg.LinkEntries == 0 {
		cfg.LinkEntries = config.SRDEntries
	}
	d := &Device{
		k:          k,
		bus:        bus,
		as:         as,
		prod:       make([]prodEntry, cfg.ProdEntries),
		cons:       make([]consEntry, cfg.ConsEntries),
		link:       make([]linkRow, cfg.LinkEntries+1),
		usedPerSQI: make([]int, cfg.LinkEntries+1),
		inputHead:  nilIdx,
		inputTail:  nilIdx,
		sendHead:   nilIdx,
		sendTail:   nilIdx,
		nextSQI:    1,
	}
	for i := range d.prod {
		d.freeProd = append(d.freeProd, i)
		d.prod[i].next = nilIdx
	}
	for i := range d.cons {
		d.freeCons = append(d.freeCons, i)
		d.cons[i].next = nilIdx
	}
	for i := range d.link {
		d.link[i].consHead = nilIdx
		d.link[i].consTail = nilIdx
		d.link[i].prodHead = nilIdx
		d.link[i].prodTail = nilIdx
	}
	d.mapperTickFn = func(uint64) { d.mapperTick() }
	d.completeMappingFn = func(idx uint64) { d.completeMapping(int(idx)) }
	d.releaseSpecFn = func(idx uint64) { d.releaseSpec(int(idx)) }
	d.appendSendFn = func(idx uint64) { d.appendSend(int(idx)) }
	d.deliverStashFn = d.deliverStash
	d.handleResponseFn = func(arg uint64) { d.handleResponse(int(arg>>1), arg&1 != 0) }
	d.sendIssueDoneFn = func(uint64) {
		d.sendBusy = false
		d.ensureSending()
	}
	return d
}

// SetSpecExtension installs the SPAMeR extension. Must be called before
// any traffic reaches the device.
func (d *Device) SetSpecExtension(s SpecExtension) { d.spec = s }

// SetStashRouter installs the cross-domain stash carrier. Must be called
// before any traffic reaches the device. See the stashRouter field.
func (d *Device) SetStashRouter(fn func(idx uint64, target mem.Addr, msg mem.Message)) {
	d.stashRouter = fn
}

// StashResponse feeds the hit/miss outcome of a routed stash back into
// the device state machine — the Figure 5 response signal, arriving from
// another domain.
func (d *Device) StashResponse(idx int, hit bool) { d.handleResponse(idx, hit) }

// Kernel returns the owning simulation kernel.
func (d *Device) Kernel() *sim.Kernel { return d.k }

// Bus returns the attached coherence-network bus.
func (d *Device) Bus() *noc.Bus { return d.bus }

// AddressSpace returns the address space stash targets resolve in.
func (d *Device) AddressSpace() *mem.AddressSpace { return d.as }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// AllocSQI claims a fresh Shared Queue Identifier. It corresponds to the
// OS-mediated queue creation of the VL library (§3.6: "allocates or frees
// resources via system calls similar to memory management").
func (d *Device) AllocSQI() (SQI, error) {
	for int(d.nextSQI) < len(d.link) {
		s := d.nextSQI
		d.nextSQI++
		if !d.link[s].used {
			d.link[s].used = true
			d.activeSQIs++
			return s, nil
		}
	}
	return 0, fmt.Errorf("vl: linkTab exhausted (%d rows)", len(d.link)-1)
}

// sharedCap is the size of the non-reserved prodBuf pool.
func (d *Device) sharedCap() int {
	c := len(d.prod) - d.activeSQIs
	if c < 0 {
		c = 0
	}
	return c
}

// admitProd decides whether a push for SQI s may take a prodBuf entry,
// updating the reservation accounting. The first entry of an SQI uses
// its reserved slot; further entries draw from the shared pool.
func (d *Device) admitProd(s SQI) bool {
	if len(d.freeProd) == 0 {
		return false
	}
	if d.usedPerSQI[s] == 0 {
		d.usedPerSQI[s]++
		return true
	}
	if d.sharedUsed < d.sharedCap() {
		d.sharedUsed++
		d.usedPerSQI[s]++
		return true
	}
	return false
}

// releaseProd returns the accounting for a freed entry of SQI s.
func (d *Device) releaseProd(s SQI) {
	d.usedPerSQI[s]--
	if d.usedPerSQI[s] >= 1 {
		d.sharedUsed--
	}
}

// FreeSQI releases a Shared Queue Identifier. Undelivered producer data
// is an error; pending consumer requests (e.g. prerequests that will
// never be answered) are flushed, and any speculative targets are
// unregistered.
func (d *Device) FreeSQI(s SQI) error {
	if err := d.checkSQI(s); err != nil {
		return err
	}
	r := &d.link[s]
	if r.prodHead != nilIdx {
		return fmt.Errorf("vl: FreeSQI(%d): undelivered producer data", s)
	}
	for c := r.consHead; c != nilIdx; {
		next := d.cons[c].next
		d.cons[c] = consEntry{next: nilIdx}
		d.freeCons = append(d.freeCons, c)
		c = next
	}
	r.consHead, r.consTail = nilIdx, nilIdx
	if d.spec != nil {
		d.spec.Unregister(s)
	}
	r.used = false
	d.activeSQIs--
	if s < d.nextSQI {
		d.nextSQI = s
	}
	return nil
}

func (d *Device) checkSQI(s SQI) error {
	if s <= 0 || int(s) >= len(d.link) || !d.link[s].used {
		return fmt.Errorf("vl: invalid SQI %d", s)
	}
	return nil
}

// ---------------------------------------------------------------------
// Producer side: vl_push arrival ((3) in Figure 3).
// ---------------------------------------------------------------------

// Push is called when a vl_push packet reaches the device. It returns
// false (NACK) when prodBuf is exhausted; the sender retries. On true,
// ownership of the message has transferred to the device.
func (d *Device) Push(s SQI, msg mem.Message) bool {
	if err := d.checkSQI(s); err != nil {
		panic(err)
	}
	if !d.admitProd(s) {
		d.stats.PushNACKs++
		return false
	}
	idx := d.freeProd[len(d.freeProd)-1]
	d.freeProd = d.freeProd[:len(d.freeProd)-1]
	if used := len(d.prod) - len(d.freeProd); used > d.prodHighWater {
		d.prodHighWater = used
	}
	e := &d.prod[idx]
	*e = prodEntry{state: entryInput, sqi: s, msg: msg, next: nilIdx}
	d.stats.PushAccepts++
	d.appendInput(idx)
	d.ensureMapping()
	return true
}

func (d *Device) appendInput(idx int) {
	d.prod[idx].next = nilIdx
	d.prod[idx].state = entryInput
	if d.inputTail == nilIdx {
		d.inputHead, d.inputTail = idx, idx
		return
	}
	d.prod[d.inputTail].next = idx
	d.inputTail = idx
}

func (d *Device) popInput() int {
	idx := d.inputHead
	if idx == nilIdx {
		return nilIdx
	}
	d.inputHead = d.prod[idx].next
	if d.inputHead == nilIdx {
		d.inputTail = nilIdx
	}
	d.prod[idx].next = nilIdx
	return idx
}

// ---------------------------------------------------------------------
// Address-mapping pipeline (Figure 4): three stages, one entry issued
// per cycle (full pipelining), MapPipelineCycles of latency per entry.
// Completions retire in issue order because every entry has the same
// latency, so per-SQI FIFO order is preserved.
// ---------------------------------------------------------------------

func (d *Device) ensureMapping() {
	if d.mapBusy {
		return
	}
	d.mapBusy = true
	d.mapperTick()
}

// mapperTick issues the input-queue head into the pipeline and
// reschedules itself every cycle until the input queue drains.
func (d *Device) mapperTick() {
	idx := d.popInput()
	if idx == nilIdx {
		d.mapBusy = false
		return
	}
	d.prod[idx].state = entryMapping
	d.k.AfterFunc(config.MapPipelineCycles, d.completeMappingFn, uint64(idx))
	d.k.AfterFunc(1, d.mapperTickFn, 0)
}

func (d *Device) completeMapping(idx int) {
	e := &d.prod[idx]
	s := e.sqi
	row := &d.link[s]

	switch {
	case row.consHead != nilIdx:
		// Stage 2 found a registered consumer request: Path C.
		c := row.consHead
		row.consHead = d.cons[c].next
		if row.consHead == nilIdx {
			row.consTail = nilIdx
		}
		e.target = d.cons[c].target
		e.spec = false
		d.cons[c] = consEntry{next: nilIdx}
		d.freeCons = append(d.freeCons, c)
		d.appendSend(idx)

	default:
		if d.spec != nil {
			if addr, cookie, sendTick, ok := d.spec.SelectTarget(s, d.k.Now()); ok {
				// Path A: speculative push queue.
				e.target = addr
				e.spec = true
				e.cookie = cookie
				e.state = entrySpecWait
				d.stats.SpecScheduled++
				if sendTick < d.k.Now() {
					sendTick = d.k.Now()
				}
				d.k.AtFunc(sendTick, d.releaseSpecFn, uint64(idx))
				break
			}
		}
		// Path B: buffering queue of the SQI.
		d.appendBuffered(s, idx)
	}
}

func (d *Device) appendBuffered(s SQI, idx int) {
	row := &d.link[s]
	e := &d.prod[idx]
	e.state = entryBuffered
	e.next = nilIdx
	if row.prodTail == nilIdx {
		row.prodHead, row.prodTail = idx, idx
		return
	}
	d.prod[row.prodTail].next = idx
	row.prodTail = idx
}

// prependBuffered re-inserts an entry at the head of its SQI's buffering
// queue. Used by the miss-retry path: the missed entry is older than every
// entry currently buffered for the SQI (it passed through the mapping
// pipeline first), so head insertion preserves per-SQI FIFO order. The
// paper re-enters missed entries "after PITR" (§3.1), which can reorder
// them behind younger buffered data; we keep the retry loop but preserve
// order, which the message-conservation invariants of the test suite
// depend on.
func (d *Device) prependBuffered(s SQI, idx int) {
	row := &d.link[s]
	e := &d.prod[idx]
	e.state = entryBuffered
	e.next = row.prodHead
	row.prodHead = idx
	if row.prodTail == nilIdx {
		row.prodTail = idx
	}
}

func (d *Device) popBuffered(s SQI) int {
	row := &d.link[s]
	idx := row.prodHead
	if idx == nilIdx {
		return nilIdx
	}
	row.prodHead = d.prod[idx].next
	if row.prodHead == nilIdx {
		row.prodTail = nilIdx
	}
	d.prod[idx].next = nilIdx
	return idx
}

// DemandRetryCycles spaces retries of an on-demand push whose target
// line has not vacated yet.
const DemandRetryCycles = 16

// releaseSpec moves a spec-wait entry into the sending queue when its
// predicted send tick arrives.
func (d *Device) releaseSpec(idx int) {
	e := &d.prod[idx]
	if e.state != entrySpecWait {
		panic(fmt.Sprintf("vl: releaseSpec on %s entry", e.state))
	}
	d.appendSend(idx)
}

// ---------------------------------------------------------------------
// Sending queue: stash issue, one per SendIssueCycles (shared port).
// ---------------------------------------------------------------------

func (d *Device) appendSend(idx int) {
	e := &d.prod[idx]
	e.state = entrySendQueued
	e.next = nilIdx
	if d.sendTail == nilIdx {
		d.sendHead, d.sendTail = idx, idx
	} else {
		d.prod[d.sendTail].next = idx
		d.sendTail = idx
	}
	d.ensureSending()
}

func (d *Device) ensureSending() {
	if d.sendBusy || d.sendHead == nilIdx {
		return
	}
	d.sendBusy = true
	idx := d.sendHead
	d.sendHead = d.prod[idx].next
	if d.sendHead == nilIdx {
		d.sendTail = nilIdx
	}
	e := &d.prod[idx]
	e.next = nilIdx
	e.state = entryInFlight
	if e.spec {
		d.stats.SpecPushes++
	} else {
		d.stats.DemandPushes++
	}
	if d.stashRouter != nil {
		d.stashRouter(uint64(idx), e.target, e.msg)
	} else {
		d.bus.SendFunc(noc.PktStash, d.deliverStashFn, uint64(idx))
	}
	d.k.AfterFunc(config.SendIssueCycles, d.sendIssueDoneFn, 0)
}

// deliverStash runs at the stash packet's arrival tick: the targeted
// line tries to take the fill, and the hit/miss response signal travels
// back to the device (Figure 5). The entry stays entryInFlight — and its
// target and msg stay frozen — until handleResponse, so reading them at
// delivery time is equivalent to capturing them at issue time without
// allocating a closure per packet.
func (d *Device) deliverStash(idx uint64) {
	e := &d.prod[idx]
	d.stashesDelivered++
	if d.faultDropNth != 0 && d.stashesDelivered == d.faultDropNth {
		// Injected loss: report a hit without filling the line, so the
		// device frees the entry and the message vanishes.
		d.bus.SendFunc(noc.PktResp, d.handleResponseFn, idx<<1|1)
		return
	}
	msg := e.msg
	if d.faultCorruptNth != 0 && d.stashesDelivered == d.faultCorruptNth {
		// Injected corruption: the fill carries a flipped payload while
		// seq/src metadata stays intact, so delivery succeeds and only a
		// content check can tell the message went bad in flight.
		msg.Payload ^= 0xbad0_dead_beef_cafe
	}
	line := d.as.Lookup(e.target)
	var hitBit uint64
	if line.TryFill(msg) {
		hitBit = 1
	}
	// Response signal from the targeted cache controller (Figure 5).
	d.bus.SendFunc(noc.PktResp, d.handleResponseFn, idx<<1|hitBit)
}

// handleResponse implements the hit/miss outcomes of Figure 5: "hit
// invalidates prodBuf entry … miss reenters prodBuf entry".
func (d *Device) handleResponse(idx int, hit bool) {
	e := &d.prod[idx]
	if e.state != entryInFlight {
		panic(fmt.Sprintf("vl: response for %s entry", e.state))
	}
	s := e.sqi
	wasSpec := e.spec
	if wasSpec {
		d.spec.OnResult(e.cookie, hit, d.k.Now())
		if hit {
			d.stats.SpecHits++
		} else {
			d.stats.SpecMisses++
		}
	} else {
		if hit {
			d.stats.DemandHits++
		} else {
			d.stats.DemandMisses++
		}
	}
	switch {
	case hit:
		d.releaseProd(s)
		*e = prodEntry{state: entryFree, next: nilIdx}
		d.freeProd = append(d.freeProd, idx)
	case wasSpec:
		// Speculative retry: the entry goes back to the front of its
		// SQI's buffering queue and is re-dispatched — to a pending
		// consumer request if one arrived meanwhile, else to a
		// (possibly new) speculative target with an updated delay.
		e.target = 0
		e.spec = false
		d.prependBuffered(s, idx)
		d.matchPending(s)
	default:
		// On-demand retry: the consumer request named this line and
		// stays armed until satisfied — a miss means the line had not
		// vacated yet, so retry the same entry/target pairing after a
		// short backoff. Dropping the pairing instead would consume the
		// request without a fill and strand the data (the consumer
		// tracks one outstanding request per line and will not repost).
		e.state = entrySpecWait // parked until its re-send tick
		d.k.AfterFunc(DemandRetryCycles, d.appendSendFn, uint64(idx))
	}
	if wasSpec {
		// The response cleared the entry's on-fly throttle; buffered
		// data of this SQI may now have a speculation opportunity.
		d.kickBuffered(s)
	}
	d.ensureMapping()
}

// matchPending pairs buffered producer data with queued consumer requests
// of the same SQI, oldest-to-oldest, dispatching each pair to the sending
// queue. This mirrors what the mapping pipeline would do if the entries
// re-entered it while requests were waiting.
func (d *Device) matchPending(s SQI) {
	row := &d.link[s]
	for row.prodHead != nilIdx && row.consHead != nilIdx {
		idx := d.popBuffered(s)
		c := row.consHead
		row.consHead = d.cons[c].next
		if row.consHead == nilIdx {
			row.consTail = nilIdx
		}
		e := &d.prod[idx]
		e.target = d.cons[c].target
		e.spec = false
		d.cons[c] = consEntry{next: nilIdx}
		d.freeCons = append(d.freeCons, c)
		d.appendSend(idx)
	}
}

// kickBuffered gives the head of an SQI's buffering queue a speculation
// opportunity. Taking only the head, directly (without re-entering the
// input queue), preserves per-SQI FIFO order.
func (d *Device) kickBuffered(s SQI) {
	if d.spec == nil {
		return
	}
	row := &d.link[s]
	for row.prodHead != nilIdx && row.consHead == nilIdx {
		addr, cookie, sendTick, ok := d.spec.SelectTarget(s, d.k.Now())
		if !ok {
			return
		}
		idx := d.popBuffered(s)
		e := &d.prod[idx]
		e.target = addr
		e.spec = true
		e.cookie = cookie
		e.state = entrySpecWait
		d.stats.SpecScheduled++
		if sendTick < d.k.Now() {
			sendTick = d.k.Now()
		}
		d.k.AtFunc(sendTick, d.releaseSpecFn, uint64(idx))
	}
}

// ---------------------------------------------------------------------
// Consumer side: vl_fetch arrival ((4) in Figure 3).
// ---------------------------------------------------------------------

// Fetch is called when a vl_fetch packet reaches the device. It returns
// false (NACK) when consBuf is exhausted. A fetch that finds buffered
// producer data dispatches it immediately; otherwise the request is
// registered in consBuf.
func (d *Device) Fetch(s SQI, target mem.Addr) bool {
	if err := d.checkSQI(s); err != nil {
		panic(err)
	}
	d.stats.Fetches++
	if idx := d.popBuffered(s); idx != nilIdx {
		e := &d.prod[idx]
		e.target = target
		e.spec = false
		d.appendSend(idx)
		return true
	}
	if len(d.freeCons) == 0 {
		d.stats.FetchNACKs++
		return false
	}
	c := d.freeCons[len(d.freeCons)-1]
	d.freeCons = d.freeCons[:len(d.freeCons)-1]
	if used := len(d.cons) - len(d.freeCons); used > d.consHighWater {
		d.consHighWater = used
	}
	d.cons[c] = consEntry{used: true, sqi: s, target: target, next: nilIdx}
	row := &d.link[s]
	if row.consTail == nilIdx {
		row.consHead, row.consTail = c, c
	} else {
		d.cons[row.consTail].next = c
		row.consTail = c
	}
	return true
}

// Register is called when a spamer_register packet reaches the device
// (§3.3): a vl_fetch alias addressed to the specBuf device-memory range.
func (d *Device) Register(s SQI, base mem.Addr, n int) error {
	if err := d.checkSQI(s); err != nil {
		return err
	}
	if d.spec == nil {
		return fmt.Errorf("vl: spamer_register on a device without speculation support")
	}
	d.stats.Registers++
	if err := d.spec.Register(s, base, n); err != nil {
		return err
	}
	// Newly registered targets may unblock buffered producer data.
	d.kickBuffered(s)
	return nil
}

// ---------------------------------------------------------------------
// Introspection for tests and the harness.
// ---------------------------------------------------------------------

// FreeProdEntries reports the number of unallocated prodBuf slots.
func (d *Device) FreeProdEntries() int { return len(d.freeProd) }

// FreeConsEntries reports the number of unallocated consBuf slots.
func (d *Device) FreeConsEntries() int { return len(d.freeCons) }

// ProdHighWater reports the peak number of simultaneously allocated
// prodBuf entries.
func (d *Device) ProdHighWater() int { return d.prodHighWater }

// ConsHighWater reports the peak number of simultaneously allocated
// consBuf entries.
func (d *Device) ConsHighWater() int { return d.consHighWater }

// BufferedLen reports the length of the buffering queue of an SQI.
func (d *Device) BufferedLen(s SQI) int {
	n := 0
	for idx := d.link[s].prodHead; idx != nilIdx; idx = d.prod[idx].next {
		n++
	}
	return n
}

// PendingRequests reports the number of consBuf requests queued for s.
func (d *Device) PendingRequests(s SQI) int {
	n := 0
	for c := d.link[s].consHead; c != nilIdx; c = d.cons[c].next {
		n++
	}
	return n
}

// Quiescent reports whether the device holds no producer data and no
// in-flight work (pending consumer requests are allowed: a demand-driven
// consumer parks requests that no producer will ever answer once the
// workload drains).
func (d *Device) Quiescent() bool {
	return len(d.freeProd) == len(d.prod) && !d.mapBusy && !d.sendBusy
}
