// Package vl implements the Virtual-Link routing device (VLRD) of
// Wu et al., "Virtual-Link: A Scalable Multi-Producer Multi-Consumer
// Message Queue Architecture for Cross-Core Communication" (IPDPS 2021),
// as described in §2–§3.1 of the SPAMeR paper — the baseline SPAMeR
// extends.
//
// The device owns three fixed-size hardware structures (Table 1: 64
// entries each):
//
//   - prodBuf: producer data buffered after a vl_push is accepted;
//   - consBuf: pending consumer requests entered by vl_fetch;
//   - linkTab: per-SQI metadata — head/tail of the consumer-request list
//     and head/tail of the producer buffering queue.
//
// Producer entries flow through a three-stage address-mapping pipeline
// (Figure 4) and then take one of the paths of Figure 5:
//
//	(A) speculative push queue  — via the SpecExtension (SPAMeR only);
//	(B) per-SQI buffering queue — no consumer request available;
//	(C) sending queue           — matched with a consumer request.
//
// A stash that reaches a consumer line which is still valid (or evicted)
// draws a miss response, and the prodBuf entry re-enters the mapping
// pipeline — exactly the retry loop of Figure 5.
package vl

import (
	"fmt"

	"spamer/internal/mem"
)

// SQI is a Shared Queue Identifier. SQI 0 is reserved as the invalid
// sentinel (the Stage-3 multiplexer of Figure 4 treats index 0 as "no
// consumer request").
type SQI int

// nilIdx marks an empty head/tail/next pointer inside the device tables.
const nilIdx = -1

// entryState tracks where a prodBuf entry currently lives.
type entryState uint8

const (
	entryFree       entryState = iota
	entryInput                 // producer input queue (between PIHR and PITR)
	entryMapping               // inside the address-mapping pipeline
	entryBuffered              // per-SQI buffering queue (Path B)
	entrySpecWait              // speculative push queue, waiting its send tick (Path A)
	entrySendQueued            // sending queue (Path C)
	entryInFlight              // stash issued, awaiting hit/miss response
)

func (s entryState) String() string {
	switch s {
	case entryFree:
		return "free"
	case entryInput:
		return "input"
	case entryMapping:
		return "mapping"
	case entryBuffered:
		return "buffered"
	case entrySpecWait:
		return "spec-wait"
	case entrySendQueued:
		return "send-queued"
	case entryInFlight:
		return "in-flight"
	default:
		return fmt.Sprintf("entryState(%d)", uint8(s))
	}
}

// prodEntry is one prodBuf slot. The producer packet "never leaves the
// prodBuf entry initially allocated to it" (§3.1); queue membership is
// expressed through the next links and per-queue head/tail registers.
type prodEntry struct {
	state entryState
	sqi   SQI
	msg   mem.Message

	target mem.Addr // resolved destination line (0 until mapped)
	spec   bool     // true if the current target came from the spec path
	cookie int      // spec-extension cookie for response attribution

	next int // intrusive link within input/buffered/send queues
}

// consEntry is one consBuf slot: a registered consumer request.
type consEntry struct {
	used   bool
	sqi    SQI
	target mem.Addr
	next   int // next request of the same SQI
}

// linkRow is one linkTab row: the per-SQI metadata.
type linkRow struct {
	used bool

	// Consumer-request list (indices into consBuf).
	consHead, consTail int

	// Producer buffering queue (indices into prodBuf).
	prodHead, prodTail int
}

// SpecExtension is the hook the SPAMeR SRD implements (internal/core).
// A nil extension yields the plain Virtual-Link device.
type SpecExtension interface {
	// Register records a segment of n consumer lines starting at base as
	// speculative push targets for sqi (the spamer_register write, §3.3).
	Register(sqi SQI, base mem.Addr, n int) error

	// SelectTarget picks a speculative target for sqi at the Stage-3
	// write-back, returning the destination line address, an opaque
	// cookie for OnResult, and the absolute tick at which the push
	// should issue. ok is false when no valid, non-on-fly entry exists
	// for the SQI.
	SelectTarget(sqi SQI, now uint64) (addr mem.Addr, cookie int, sendTick uint64, ok bool)

	// OnResult reports the hit/miss response of a speculative push
	// previously issued with cookie.
	OnResult(cookie int, hit bool, now uint64)

	// Unregister drops every speculative target of an SQI (endpoint
	// teardown / SQI free).
	Unregister(sqi SQI)
}

// Config controls device capacity; zero values fall back to Table 1.
type Config struct {
	ProdEntries int // prodBuf capacity (default 64)
	ConsEntries int // consBuf capacity (default 64)
	LinkEntries int // linkTab rows, i.e. max simultaneous SQIs (default 64)
}
