package vl

import (
	"testing"
	"testing/quick"

	"spamer/internal/mem"
)

// TestAdmissionReservation: with k active SQIs, a hogging SQI cannot
// take the last reserved slots of its siblings.
func TestAdmissionReservation(t *testing.T) {
	r := newRig(Config{ProdEntries: 4, LinkEntries: 4})
	s1, _ := r.dev.AllocSQI()
	s2, _ := r.dev.AllocSQI()
	// sharedCap = 4 - 2 = 2: s1 may take its reserved slot + 2 shared.
	accepted := 0
	for i := 0; i < 4; i++ {
		if r.dev.Push(s1, mem.Message{Seq: uint64(i)}) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("hogging SQI accepted %d, want 3 (1 reserved + 2 shared)", accepted)
	}
	// The sibling's reserved slot must still be available.
	if !r.dev.Push(s2, mem.Message{}) {
		t.Fatal("sibling denied its reserved slot")
	}
	// Now the buffer is truly full.
	if r.dev.Push(s2, mem.Message{}) {
		t.Fatal("push accepted beyond capacity")
	}
}

// TestReservationAccountingOnFree: freeing entries restores both the
// per-SQI and shared-pool accounting.
func TestReservationAccountingOnFree(t *testing.T) {
	r := newRig(Config{ProdEntries: 4, LinkEntries: 4})
	s1, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(4)
	r.k.At(0, func() {
		for i := 0; i < 3; i++ {
			r.dev.Push(s1, mem.Message{Seq: uint64(i)})
		}
	})
	r.k.At(10, func() {
		for i := 0; i < 3; i++ {
			r.dev.Fetch(s1, pg.Lines[i].Addr)
		}
	})
	r.k.Run()
	// All delivered: accounting must be fully restored.
	if r.dev.FreeProdEntries() != 4 {
		t.Fatalf("free = %d", r.dev.FreeProdEntries())
	}
	if r.dev.sharedUsed != 0 || r.dev.usedPerSQI[s1] != 0 {
		t.Fatalf("accounting leak: shared=%d used=%d", r.dev.sharedUsed, r.dev.usedPerSQI[s1])
	}
}

// TestSQIReuseAfterFree: freeing and re-allocating SQIs keeps the
// linkTab consistent.
func TestSQIReuseAfterFree(t *testing.T) {
	r := newRig(Config{})
	s1, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(1)
	r.k.At(0, func() {
		r.dev.Push(s1, mem.Message{Payload: 1})
		r.dev.Fetch(s1, pg.Lines[0].Addr)
	})
	r.k.Run()
	pg.Lines[0].Take()
	if err := r.dev.FreeSQI(s1); err != nil {
		t.Fatalf("FreeSQI: %v", err)
	}
	s2, err := r.dev.AllocSQI()
	if err != nil || s2 != s1 {
		t.Fatalf("realloc = %v, %v", s2, err)
	}
	// The reused row must be clean.
	if r.dev.BufferedLen(s2) != 0 || r.dev.PendingRequests(s2) != 0 {
		t.Fatal("reused SQI carries stale state")
	}
}

// TestInterleavedSQIFairness: two SQIs pushing concurrently both make
// progress under a tiny prodBuf.
func TestInterleavedSQIFairness(t *testing.T) {
	r := newRig(Config{ProdEntries: 2, LinkEntries: 2})
	s1, _ := r.dev.AllocSQI()
	s2, _ := r.dev.AllocSQI()
	pg1 := r.as.NewPage(4)
	pg2 := r.as.NewPage(4)
	delivered := map[SQI]int{}
	const per = 4
	for i := 0; i < per; i++ {
		i := i
		// Pushes retry until accepted (mimicking the ISA replay).
		var try1, try2 func()
		try1 = func() {
			if !r.dev.Push(s1, mem.Message{Seq: uint64(i)}) {
				r.k.After(8, try1)
			}
		}
		try2 = func() {
			if !r.dev.Push(s2, mem.Message{Seq: uint64(i)}) {
				r.k.After(8, try2)
			}
		}
		r.k.At(uint64(i*5), try1)
		r.k.At(uint64(i*5+1), try2)
		r.k.At(uint64(100+i*40), func() { r.dev.Fetch(s1, pg1.Lines[i].Addr) })
		r.k.At(uint64(120+i*40), func() { r.dev.Fetch(s2, pg2.Lines[i].Addr) })
	}
	r.k.Run()
	for i := 0; i < per; i++ {
		if pg1.Lines[i].State == mem.LineValid {
			delivered[s1]++
		}
		if pg2.Lines[i].State == mem.LineValid {
			delivered[s2]++
		}
	}
	if delivered[s1] != per || delivered[s2] != per {
		t.Fatalf("delivered = %v, want %d each", delivered, per)
	}
}

// Property: random interleavings of pushes and fetches on a small
// device conserve messages and leave accounting clean.
func TestDeviceConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		r := newRig(Config{ProdEntries: 4, ConsEntries: 4, LinkEntries: 2})
		s1, _ := r.dev.AllocSQI()
		s2, _ := r.dev.AllocSQI()
		sqis := []SQI{s1, s2}
		pages := map[SQI]*mem.Page{s1: r.as.NewPage(8), s2: r.as.NewPage(8)}
		pushed := map[SQI]int{}
		fetched := map[SQI]int{}
		tick := uint64(0)
		for _, op := range ops {
			tick += uint64(op%13) + 1
			s := sqis[int(op)%2]
			if op%3 == 0 && fetched[s] < 8 {
				i := fetched[s]
				addr := pages[s].Lines[i].Addr
				r.k.At(tick, func() { r.dev.Fetch(s, addr) })
				fetched[s]++
			} else if pushed[s] < 8 {
				seq := uint64(pushed[s])
				r.k.At(tick, func() { r.dev.Push(s, mem.Message{Seq: seq}) })
				pushed[s]++
			}
		}
		r.k.Run()
		// Count fills; each must be <= min(pushed, fetched) and the
		// device must hold the remainder or have NACKed it.
		for _, s := range sqis {
			fills := 0
			for _, l := range pages[s].Lines {
				if l.State == mem.LineValid {
					fills++
				}
			}
			accepted := int(r.dev.Stats().PushAccepts) // across both, bound check only
			_ = accepted
			if fills > pushed[s] || fills > fetched[s] {
				return false
			}
		}
		// Accounting sanity.
		used := 0
		for _, u := range r.dev.usedPerSQI {
			if u < 0 {
				return false
			}
			used += u
		}
		if used != len(r.dev.prod)-r.dev.FreeProdEntries() {
			return false
		}
		return r.dev.sharedUsed >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsSubAndRates(t *testing.T) {
	a := Stats{DemandPushes: 10, DemandMisses: 2, SpecPushes: 6, SpecMisses: 2, Fetches: 9, PushAccepts: 16}
	b := Stats{DemandPushes: 4, DemandMisses: 1, SpecPushes: 2, SpecMisses: 1, Fetches: 3, PushAccepts: 6}
	d := a.Sub(b)
	if d.DemandPushes != 6 || d.SpecPushes != 4 || d.Fetches != 6 || d.PushAccepts != 10 {
		t.Fatalf("Sub = %+v", d)
	}
	if a.TotalPushes() != 16 || a.FailedPushes() != 4 {
		t.Fatalf("totals: %d/%d", a.TotalPushes(), a.FailedPushes())
	}
	if got := a.FailureRate(); got != 0.25 {
		t.Fatalf("failure rate = %v", got)
	}
	if (Stats{}).FailureRate() != 0 {
		t.Fatal("empty failure rate")
	}
}

func TestEntryStateStrings(t *testing.T) {
	states := []entryState{entryFree, entryInput, entryMapping, entryBuffered, entrySpecWait, entrySendQueued, entryInFlight}
	seen := map[string]bool{}
	for _, st := range states {
		s := st.String()
		if s == "" || seen[s] {
			t.Fatalf("bad/duplicate state string %q", s)
		}
		seen[s] = true
	}
}
