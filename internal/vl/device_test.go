package vl

import (
	"testing"

	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
)

// rig bundles a kernel, bus, address space and device for tests.
type rig struct {
	k   *sim.Kernel
	bus *noc.Bus
	as  *mem.AddressSpace
	dev *Device
}

func newRig(cfg Config) *rig {
	k := sim.New()
	k.SetDeadline(10_000_000)
	bus := noc.New(k)
	as := mem.NewAddressSpace(k)
	return &rig{k: k, bus: bus, as: as, dev: New(k, bus, as, cfg)}
}

func TestAllocSQI(t *testing.T) {
	r := newRig(Config{LinkEntries: 3})
	var got []SQI
	for i := 0; i < 3; i++ {
		s, err := r.dev.AllocSQI()
		if err != nil {
			t.Fatalf("AllocSQI: %v", err)
		}
		got = append(got, s)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("SQIs = %v", got)
	}
	if _, err := r.dev.AllocSQI(); err == nil {
		t.Fatal("4th AllocSQI on a 3-row linkTab succeeded")
	}
	if err := r.dev.FreeSQI(2); err != nil {
		t.Fatalf("FreeSQI: %v", err)
	}
	s, err := r.dev.AllocSQI()
	if err != nil || s != 2 {
		t.Fatalf("realloc = %v, %v", s, err)
	}
}

func TestSQIZeroInvalid(t *testing.T) {
	r := newRig(Config{})
	if err := r.dev.checkSQI(0); err == nil {
		t.Fatal("SQI 0 accepted")
	}
	if err := r.dev.FreeSQI(0); err == nil {
		t.Fatal("FreeSQI(0) accepted")
	}
}

// TestDemandFlow walks the complete on-demand path of Figure 3:
// push (1-3), fetch (4), stash (5), and verifies the line is filled.
func TestDemandFlow(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(1)
	msg := mem.Message{Src: 0, Seq: 0, Payload: 99}

	r.k.At(0, func() {
		if !r.dev.Push(s, msg) {
			t.Error("push NACKed")
		}
	})
	r.k.At(1, func() {
		if !r.dev.Fetch(s, pg.Lines[0].Addr) {
			t.Error("fetch NACKed")
		}
	})
	r.k.Run()

	if pg.Lines[0].State != mem.LineValid || pg.Lines[0].Msg != msg {
		t.Fatalf("line = %v %+v", pg.Lines[0].State, pg.Lines[0].Msg)
	}
	st := r.dev.Stats()
	if st.DemandPushes != 1 || st.DemandHits != 1 || st.DemandMisses != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !r.dev.Quiescent() {
		t.Fatal("device not quiescent")
	}
}

// TestFetchBeforePush exercises the consBuf path: the request arrives
// first, parks, and the later push matches it.
func TestFetchBeforePush(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(1)

	r.k.At(0, func() { r.dev.Fetch(s, pg.Lines[0].Addr) })
	r.k.At(5, func() {
		if r.dev.PendingRequests(s) != 1 {
			t.Errorf("pending requests = %d, want 1", r.dev.PendingRequests(s))
		}
		r.dev.Push(s, mem.Message{Payload: 1})
	})
	r.k.Run()

	if pg.Lines[0].State != mem.LineValid {
		t.Fatal("line not filled")
	}
	if r.dev.PendingRequests(s) != 0 {
		t.Fatal("request not consumed")
	}
}

// TestPushWithoutRequestBuffers verifies Path B of Figure 5.
func TestPushWithoutRequestBuffers(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	r.k.At(0, func() { r.dev.Push(s, mem.Message{Payload: 1}) })
	r.k.At(0, func() { r.dev.Push(s, mem.Message{Payload: 2}) })
	r.k.Run()
	if got := r.dev.BufferedLen(s); got != 2 {
		t.Fatalf("BufferedLen = %d, want 2", got)
	}
	if r.dev.FreeProdEntries() != len(r.dev.prod)-2 {
		t.Fatalf("free prod entries = %d", r.dev.FreeProdEntries())
	}
}

// TestBufferedFIFO: buffered messages drain to consumer requests in push
// order.
func TestBufferedFIFO(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(4)
	for i := 0; i < 4; i++ {
		i := i
		r.k.At(uint64(i), func() { r.dev.Push(s, mem.Message{Seq: uint64(i)}) })
	}
	for i := 0; i < 4; i++ {
		i := i
		r.k.At(uint64(100+10*i), func() { r.dev.Fetch(s, pg.Lines[i].Addr) })
	}
	r.k.Run()
	for i, l := range pg.Lines {
		if l.State != mem.LineValid || l.Msg.Seq != uint64(i) {
			t.Fatalf("line %d: %v seq=%d", i, l.State, l.Msg.Seq)
		}
	}
}

// TestMissRetry: a push to a still-valid line draws a miss and retries
// until the line vacates.
func TestMissRetry(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(1)
	line := pg.Lines[0]
	line.TryFill(mem.Message{Payload: 7}) // occupy the line

	r.k.At(0, func() {
		r.dev.Push(s, mem.Message{Payload: 8})
		r.dev.Fetch(s, line.Addr) // prerequest while the line is valid
	})
	// Consumer takes the old message later; the armed request's retry
	// loop then succeeds.
	r.k.At(500, func() { line.Take() })
	r.k.Run()

	if line.State != mem.LineValid || line.Msg.Payload != 8 {
		t.Fatalf("line = %v %+v", line.State, line.Msg)
	}
	st := r.dev.Stats()
	if st.DemandMisses == 0 {
		t.Fatalf("DemandMisses = %d, want > 0", st.DemandMisses)
	}
	if st.DemandHits != 1 {
		t.Fatalf("DemandHits = %d, want 1 (stats %+v)", st.DemandHits, st)
	}
	// The retry loop must not spin faster than its backoff: the line
	// vacated at 500, so roughly 500/(DemandRetryCycles+latency)
	// attempts fit before then.
	if st.DemandMisses > 500/DemandRetryCycles {
		t.Fatalf("DemandMisses = %d, retry loop too hot", st.DemandMisses)
	}
}

// TestProdBufBackpressure: pushes beyond capacity NACK.
func TestProdBufBackpressure(t *testing.T) {
	r := newRig(Config{ProdEntries: 2})
	s, _ := r.dev.AllocSQI()
	r.k.At(0, func() {
		if !r.dev.Push(s, mem.Message{}) || !r.dev.Push(s, mem.Message{}) {
			t.Error("first two pushes NACKed")
		}
		if r.dev.Push(s, mem.Message{}) {
			t.Error("third push accepted with 2-entry prodBuf")
		}
	})
	r.k.Run()
	if r.dev.Stats().PushNACKs != 1 {
		t.Fatalf("PushNACKs = %d", r.dev.Stats().PushNACKs)
	}
}

// TestConsBufBackpressure: requests beyond capacity NACK.
func TestConsBufBackpressure(t *testing.T) {
	r := newRig(Config{ConsEntries: 2})
	s, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(3)
	r.k.At(0, func() {
		if !r.dev.Fetch(s, pg.Lines[0].Addr) || !r.dev.Fetch(s, pg.Lines[1].Addr) {
			t.Error("first two fetches NACKed")
		}
		if r.dev.Fetch(s, pg.Lines[2].Addr) {
			t.Error("third fetch accepted with 2-entry consBuf")
		}
	})
	r.k.Run()
	if r.dev.Stats().FetchNACKs != 1 {
		t.Fatalf("FetchNACKs = %d", r.dev.Stats().FetchNACKs)
	}
}

// TestMultiSQIIsolation: traffic on one SQI does not leak to another.
func TestMultiSQIIsolation(t *testing.T) {
	r := newRig(Config{})
	s1, _ := r.dev.AllocSQI()
	s2, _ := r.dev.AllocSQI()
	pg1 := r.as.NewPage(1)
	pg2 := r.as.NewPage(1)
	r.k.At(0, func() {
		r.dev.Push(s1, mem.Message{Payload: 11})
		r.dev.Push(s2, mem.Message{Payload: 22})
		r.dev.Fetch(s2, pg2.Lines[0].Addr)
		r.dev.Fetch(s1, pg1.Lines[0].Addr)
	})
	r.k.Run()
	if pg1.Lines[0].Msg.Payload != 11 || pg2.Lines[0].Msg.Payload != 22 {
		t.Fatalf("cross-SQI leak: %+v %+v", pg1.Lines[0].Msg, pg2.Lines[0].Msg)
	}
}

// TestMNQueue: 2 producers, 2 consumers on one SQI; every message is
// delivered exactly once.
func TestMNQueue(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	pgA := r.as.NewPage(4)
	pgB := r.as.NewPage(4)
	const perProducer = 4
	for prod := 0; prod < 2; prod++ {
		prod := prod
		for i := 0; i < perProducer; i++ {
			i := i
			r.k.At(uint64(prod+2*i), func() {
				r.dev.Push(s, mem.Message{Src: prod, Seq: uint64(i)})
			})
		}
	}
	for i := 0; i < 4; i++ {
		i := i
		r.k.At(uint64(50+i), func() { r.dev.Fetch(s, pgA.Lines[i].Addr) })
		r.k.At(uint64(60+i), func() { r.dev.Fetch(s, pgB.Lines[i].Addr) })
	}
	r.k.Run()
	seen := map[[2]uint64]int{}
	for _, pg := range []*mem.Page{pgA, pgB} {
		for _, l := range pg.Lines {
			if l.State != mem.LineValid {
				t.Fatalf("line %#x not filled", uint64(l.Addr))
			}
			seen[[2]uint64{uint64(l.Msg.Src), l.Msg.Seq}]++
		}
	}
	if len(seen) != 8 {
		t.Fatalf("distinct messages = %d, want 8", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("message %v delivered %d times", k, n)
		}
	}
}

func TestRegisterWithoutExtensionFails(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	if err := r.dev.Register(s, 64, 1); err == nil {
		t.Fatal("Register succeeded without a spec extension")
	}
}

func TestFreeSQIBusyFails(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	r.k.At(0, func() { r.dev.Push(s, mem.Message{}) })
	r.k.Run()
	if err := r.dev.FreeSQI(s); err == nil {
		t.Fatal("FreeSQI succeeded with buffered data")
	}
}

// fakeSpec is a scripted SpecExtension for device-side unit tests.
type fakeSpec struct {
	targets  []mem.Addr
	delay    uint64
	selects  int
	results  []bool
	disabled bool
}

func (f *fakeSpec) Register(sqi SQI, base mem.Addr, n int) error { return nil }

func (f *fakeSpec) SelectTarget(sqi SQI, now uint64) (mem.Addr, int, uint64, bool) {
	if f.disabled || f.selects >= len(f.targets) {
		return 0, 0, 0, false
	}
	a := f.targets[f.selects]
	f.selects++
	return a, f.selects - 1, now + f.delay, true
}

func (f *fakeSpec) OnResult(cookie int, hit bool, now uint64) {
	f.results = append(f.results, hit)
}

func (f *fakeSpec) Unregister(sqi SQI) {}

// TestSpecPathDispatch: with an extension installed and no consumer
// request, mapping takes Path A and the push lands at the spec target.
func TestSpecPathDispatch(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(1)
	fs := &fakeSpec{targets: []mem.Addr{pg.Lines[0].Addr}, delay: 10}
	r.dev.SetSpecExtension(fs)

	r.k.At(0, func() { r.dev.Push(s, mem.Message{Payload: 5}) })
	r.k.Run()

	if pg.Lines[0].State != mem.LineValid || pg.Lines[0].Msg.Payload != 5 {
		t.Fatalf("spec push did not land: %v", pg.Lines[0].State)
	}
	st := r.dev.Stats()
	if st.SpecPushes != 1 || st.SpecHits != 1 || st.DemandPushes != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(fs.results) != 1 || !fs.results[0] {
		t.Fatalf("OnResult = %v", fs.results)
	}
}

// TestDemandPriorityOverSpec: a queued consumer request wins over the
// spec path (the Stage-3 multiplexer picks consTgt when consHead != 0).
func TestDemandPriorityOverSpec(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	demand := r.as.NewPage(1)
	spec := r.as.NewPage(1)
	fs := &fakeSpec{targets: []mem.Addr{spec.Lines[0].Addr}}
	r.dev.SetSpecExtension(fs)

	r.k.At(0, func() { r.dev.Fetch(s, demand.Lines[0].Addr) })
	r.k.At(1, func() { r.dev.Push(s, mem.Message{Payload: 3}) })
	r.k.Run()

	if demand.Lines[0].State != mem.LineValid {
		t.Fatal("demand target not filled")
	}
	if spec.Lines[0].State == mem.LineValid {
		t.Fatal("spec target filled despite pending request")
	}
	if fs.selects != 0 {
		t.Fatalf("SelectTarget consulted %d times, want 0", fs.selects)
	}
}

// TestSpecMissRetriesViaKick: a speculative miss rebuffers the entry and
// the response-time kick re-dispatches it.
func TestSpecMissRetriesViaKick(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(1)
	line := pg.Lines[0]
	line.TryFill(mem.Message{Payload: 1}) // occupied: first spec push misses
	targets := make([]mem.Addr, 100)
	for i := range targets {
		targets[i] = line.Addr
	}
	fs := &fakeSpec{targets: targets, delay: 25}
	r.dev.SetSpecExtension(fs)

	r.k.At(0, func() { r.dev.Push(s, mem.Message{Payload: 2}) })
	r.k.At(200, func() { line.Take() })
	r.k.Run()

	if line.State != mem.LineValid || line.Msg.Payload != 2 {
		t.Fatalf("line = %v %+v", line.State, line.Msg)
	}
	st := r.dev.Stats()
	if st.SpecMisses == 0 || st.SpecHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSpecDelayHonored: the device issues the spec push at the predicted
// tick, not earlier.
func TestSpecDelayHonored(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(1)
	fs := &fakeSpec{targets: []mem.Addr{pg.Lines[0].Addr}, delay: 1000}
	r.dev.SetSpecExtension(fs)

	r.k.At(0, func() { r.dev.Push(s, mem.Message{}) })
	r.k.Run()

	if got := pg.Lines[0].FillTick(); got < 1000 {
		t.Fatalf("fill at %d, want >= 1000 (spec delay)", got)
	}
}

// TestFetchRacesSpecWait: a request arriving while data sits in the
// speculative push queue parks; the spec push still delivers to the spec
// target, and the next push serves the request.
func TestFetchRacesSpecWait(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	spec := r.as.NewPage(1)
	demand := r.as.NewPage(1)
	fs := &fakeSpec{targets: []mem.Addr{spec.Lines[0].Addr}, delay: 500}
	r.dev.SetSpecExtension(fs)

	r.k.At(0, func() { r.dev.Push(s, mem.Message{Payload: 1}) })
	r.k.At(100, func() { r.dev.Fetch(s, demand.Lines[0].Addr) }) // data already in spec-wait
	r.k.At(200, func() { r.dev.Push(s, mem.Message{Payload: 2}) })
	r.k.Run()

	if spec.Lines[0].Msg.Payload != 1 {
		t.Fatalf("spec line got %+v", spec.Lines[0].Msg)
	}
	if demand.Lines[0].Msg.Payload != 2 {
		t.Fatalf("demand line got %+v", demand.Lines[0].Msg)
	}
}

func TestQuiescentWithPendingRequest(t *testing.T) {
	r := newRig(Config{})
	s, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(1)
	r.k.At(0, func() { r.dev.Fetch(s, pg.Lines[0].Addr) })
	r.k.Run()
	if !r.dev.Quiescent() {
		t.Fatal("device with only a parked request should be quiescent")
	}
}
