package vl

// Stats aggregates the device counters the evaluation consumes: push
// attempt/outcome counts by kind (Figure 10a), fetch traffic, NACK
// backpressure events.
type Stats struct {
	PushAccepts uint64 // vl_push packets accepted into prodBuf
	PushNACKs   uint64 // vl_push packets refused (prodBuf full)

	Fetches    uint64 // vl_fetch packets processed
	FetchNACKs uint64 // vl_fetch packets refused (consBuf full)

	Registers uint64 // spamer_register packets processed

	DemandPushes uint64 // stashes issued to fulfil consumer requests
	DemandHits   uint64
	DemandMisses uint64

	SpecScheduled uint64 // entries routed to the speculative push queue
	SpecPushes    uint64 // speculative stashes issued
	SpecHits      uint64
	SpecMisses    uint64
}

// TotalPushes counts every stash issued, on-demand or speculative — the
// denominator of the Figure 10a failure rate.
func (s Stats) TotalPushes() uint64 { return s.DemandPushes + s.SpecPushes }

// FailedPushes counts stashes that drew a miss response.
func (s Stats) FailedPushes() uint64 { return s.DemandMisses + s.SpecMisses }

// FailureRate is FailedPushes / TotalPushes ("how many pushes fail out of
// total", §4.3), or 0 when no pushes were issued.
func (s Stats) FailureRate() float64 {
	t := s.TotalPushes()
	if t == 0 {
		return 0
	}
	return float64(s.FailedPushes()) / float64(t)
}

// Sub returns the counter deltas s - prev, for windowed measurement.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		PushAccepts:   s.PushAccepts - prev.PushAccepts,
		PushNACKs:     s.PushNACKs - prev.PushNACKs,
		Fetches:       s.Fetches - prev.Fetches,
		FetchNACKs:    s.FetchNACKs - prev.FetchNACKs,
		Registers:     s.Registers - prev.Registers,
		DemandPushes:  s.DemandPushes - prev.DemandPushes,
		DemandHits:    s.DemandHits - prev.DemandHits,
		DemandMisses:  s.DemandMisses - prev.DemandMisses,
		SpecScheduled: s.SpecScheduled - prev.SpecScheduled,
		SpecPushes:    s.SpecPushes - prev.SpecPushes,
		SpecHits:      s.SpecHits - prev.SpecHits,
		SpecMisses:    s.SpecMisses - prev.SpecMisses,
	}
}
