package vl

import (
	"fmt"

	"spamer/internal/mem"
)

// PostFunc posts a cross-domain event into the parallel kernel: fn(a0..a3)
// runs in domain dst at the given absolute tick (which must satisfy the
// conservative lookahead relative to domain src's clock). It matches
// sim.ParallelKernel.Post.
type PostFunc func(src, dst int, tick uint64, fn func(a0, a1, a2, a3 uint64), a0, a1, a2, a3 uint64)

// Hub operation kinds, packed into the high byte of a0.
const (
	hubOpPush uint64 = iota
	hubOpFetch
	hubOpRegister
)

// seqMask extracts the 48-bit message sequence from a packed word; the
// top 16 bits carry the producer endpoint id.
const seqMask = 1<<48 - 1

// packOp packs a hub operation header: kind, issuing domain, issuing
// sender id, and the SQI. The layout is private to this file; remote
// issuers use the typed Pack helpers so the encoding cannot drift from
// Exec's decoder.
func packOp(kind uint64, srcDomain, sender int, sqi SQI) uint64 {
	return kind<<56 | uint64(uint16(srcDomain))<<40 | (uint64(sender)&0xffffff)<<16 | uint64(uint16(sqi))
}

// PackPushOp packs the header of a remote vl_push; pair with
// PackPushPayload in a1 and the payload word in a2.
func PackPushOp(srcDomain, sender int, sqi SQI) uint64 {
	return packOp(hubOpPush, srcDomain, sender, sqi)
}

// PackPushPayload packs a message's producer id and sequence into a1.
func PackPushPayload(msg mem.Message) uint64 {
	return uint64(uint16(msg.Src))<<48 | msg.Seq&seqMask
}

// PackFetchOp packs the header of a remote vl_fetch; the target address
// travels in a1.
func PackFetchOp(srcDomain, sender int, sqi SQI) uint64 {
	return packOp(hubOpFetch, srcDomain, sender, sqi)
}

// PackRegisterOp packs the header of a remote spamer_register; base rides
// in a1 and the line count in a2.
func PackRegisterOp(srcDomain int, sqi SQI) uint64 {
	return packOp(hubOpRegister, srcDomain, 0, sqi)
}

// Hub executes remotely-issued device operations inside the device's own
// simulation domain and returns acceptance responses to the issuing
// domain. It is the hub-domain half of the cross-domain ISA: a RemoteISA
// posts packed operations at their bus-arrival tick with Exec as the
// callback; Exec runs the device write exactly as a same-domain arrival
// would, then posts the accept/NACK outcome back so the issuing core's
// store buffer can retire or replay.
type Hub struct {
	dev       *Device
	domain    int
	lookahead uint64
	post      PostFunc

	// resp[srcDomain] dispatches responses inside the issuing domain
	// (bound once by each RemoteISA via Bind). resp0 is its embedded
	// first array, sized for the default core count so a standard
	// fabric's binds allocate nothing. respFn is the one shared
	// response trampoline: the issuing domain rides in a1, so posting a
	// response allocates no per-domain func value.
	resp   []Responder
	resp0  [16]Responder
	respFn func(a0, a1, a2, a3 uint64)

	execFn      func(a0, a1, a2, a3 uint64)
	stashRespFn func(a0, a1, a2, a3 uint64)
}

// Responder receives hub accept/NACK outcomes inside one issuing domain:
// Response runs in that domain at the response's arrival tick with the
// packed outcome in a0 (sender id << 1 | accepted bit). An interface
// rather than a func so binding a domain's dispatcher stores a plain
// pointer and allocates nothing.
type Responder interface {
	Response(a0, a1, a2, a3 uint64)
}

// NewHub wraps a device for cross-domain execution. domain is the
// device's own domain index; lookahead is the conservative window of the
// parallel kernel (responses are posted exactly that far ahead —
// acceptance signals ride the response network without occupying a bus
// channel, mirroring how the same-domain model treats acceptance as
// implicit at arrival).
func NewHub(dev *Device, domain int, lookahead uint64, post PostFunc) *Hub {
	h := &Hub{dev: dev, domain: domain, lookahead: lookahead, post: post}
	h.resp = h.resp0[:0]
	h.respFn = func(a0, a1, a2, a3 uint64) { h.resp[a1].Response(a0, 0, 0, 0) }
	h.execFn = h.Exec
	h.stashRespFn = func(a0, a1, a2, a3 uint64) {
		h.dev.StashResponse(int(a0>>1), a0&1 != 0)
	}
	return h
}

// Device returns the wrapped routing device.
func (h *Hub) Device() *Device { return h.dev }

// Domain reports the device's domain index.
func (h *Hub) Domain() int { return h.domain }

// Bind registers the response dispatcher of an issuing domain. Must be
// called at construction time, before any traffic flows.
func (h *Hub) Bind(srcDomain int, r Responder) {
	for srcDomain >= len(h.resp) {
		h.resp = append(h.resp, nil)
	}
	h.resp[srcDomain] = r
}

// ExecFn returns the bound Exec callback (a stable func value, so posting
// operations allocates nothing per packet).
func (h *Hub) ExecFn() func(a0, a1, a2, a3 uint64) { return h.execFn }

// StashResponseFn returns the bound stash-response callback: a0 carries
// prodBuf index << 1 | hit. Consumer domains post it back at their
// PktResp arrival tick after attempting a routed stash fill.
func (h *Hub) StashResponseFn() func(a0, a1, a2, a3 uint64) { return h.stashRespFn }

// Exec decodes and runs one remotely-issued operation at its arrival
// tick. Push and fetch produce an accept/NACK response to the issuing
// domain; register is fire-and-forget (its failures are configuration
// errors and panic here, in the device's domain, like a same-domain
// register would).
func (h *Hub) Exec(a0, a1, a2, a3 uint64) {
	kind := a0 >> 56
	src := int(a0 >> 40 & 0xffff)
	sender := a0 >> 16 & 0xffffff
	sqi := SQI(a0 & 0xffff)
	switch kind {
	case hubOpPush:
		ok := h.dev.Push(sqi, mem.Message{Src: int(a1 >> 48), Seq: a1 & seqMask, Payload: a2})
		h.respond(src, sender, ok)
	case hubOpFetch:
		ok := h.dev.Fetch(sqi, mem.Addr(a1))
		h.respond(src, sender, ok)
	case hubOpRegister:
		if err := h.dev.Register(sqi, mem.Addr(a1), int(a2)); err != nil {
			panic(err)
		}
	default:
		panic(fmt.Sprintf("vl: hub op kind %d", kind))
	}
}

func (h *Hub) respond(src int, sender uint64, ok bool) {
	var bit uint64
	if ok {
		bit = 1
	}
	h.post(h.domain, src, h.dev.k.Now()+h.lookahead, h.respFn, sender<<1|bit, uint64(src), 0, 0)
}
