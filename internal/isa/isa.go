// Package isa models the instruction-set extension of Virtual-Link and
// SPAMeR (§3.3): vl_select, vl_push, vl_fetch, and the vl_fetch alias
// spamer_register. Each operation costs core-side cycles (charged to the
// calling process) and, where architecturally required, a packet on the
// coherence network addressed to the routing device's device-memory
// range.
//
// vl_push and vl_fetch are posted operations: the core does not stall for
// the round trip. Backpressure appears as NACKs (prodBuf/consBuf
// exhausted), which the implementation retries transparently with
// backoff — the micro-architectural analogue of a store buffer replaying
// a rejected device write.
package isa

import (
	"fmt"
	"spamer/internal/config"
	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
	"spamer/internal/vl"
)

// RetryBackoffCycles spaces out replays of NACKed device writes.
const RetryBackoffCycles = 12

// MaxRetries bounds replay attempts before the operation panics; a
// healthy configuration never gets near it, so hitting the bound almost
// always means a deadlocked workload.
const MaxRetries = 1 << retryBits

// retryBits is the width of the attempt count in a packed sender event
// argument (sender id in the high bits, attempt below).
const retryBits = 20

// retryMask extracts the attempt count from a packed event argument.
const retryMask = MaxRetries - 1

// Port is one endpoint's ordered device-write channel: the store-buffer
// abstraction behind Sender (same-domain) and RemoteSender (cross-domain).
// Ops implementations only accept ports they created.
type Port interface {
	// Pending reports queued-but-unaccepted writes.
	Pending() int
}

// Ops is the instruction-set surface the queue library issues against: a
// local ISA when the calling core shares the routing device's simulation
// domain, or a RemoteISA that carries the same operations across a
// conservative domain boundary. Timing differs (a remote push learns its
// acceptance a response trip later); the operation semantics do not.
type Ops interface {
	Select(p *sim.Proc)
	NewPushPort() Port
	NewFetchPort() Port
	Push(p *sim.Proc, port Port, sqi vl.SQI, msg mem.Message, accepted func())
	Fetch(p *sim.Proc, port Port, sqi vl.SQI, target mem.Addr)
	Register(p *sim.Proc, sqi vl.SQI, base mem.Addr, n int)
	Stats() Stats

	// Continuation-passing forms. The blocking forms above charge the
	// op's core-side cycles with p.Sleep, splitting each op across a
	// goroutine handoff; the vlq endpoint state machines instead charge
	// the same cycles with their own AfterFunc events and call these
	// halves directly from the kernel goroutine. NoteX runs at the op's
	// issue tick (the counter bump the blocking form does before its
	// Sleep); EnqueueX runs when the charged cycles have elapsed (the
	// device write the blocking form does after its Sleep returns). The
	// split leaves the event schedule — and therefore the dispatch
	// trace — bit-identical to the blocking forms.
	NoteSelect()
	NotePush()
	NoteFetch()
	EnqueuePush(port Port, sqi vl.SQI, msg mem.Message, accepted func())
	EnqueueFetch(port Port, sqi vl.SQI, target mem.Addr)
}

// ISA issues the VL/SPAMeR operations against one routing device.
type ISA struct {
	k   *sim.Kernel
	bus *noc.Bus
	dev *vl.Device

	// Senders live in block-allocated arena storage and share two
	// ISA-level dispatch closures; the sender id and attempt count ride
	// packed in the event argument (id<<retryBits | attempt), so
	// opening an endpoint costs no per-sender closure allocations and
	// a block of endpoints costs one.
	senders   []*Sender
	arena     []Sender
	deliverFn func(uint64)
	replayFn  func(uint64)

	stats Stats
}

// Stats counts issued operations and replayed NACKs.
type Stats struct {
	Selects   uint64
	Pushes    uint64
	Fetches   uint64
	Registers uint64
	Replays   uint64
}

// New returns an ISA bound to the given device.
func New(k *sim.Kernel, bus *noc.Bus, dev *vl.Device) *ISA {
	i := &ISA{k: k, bus: bus, dev: dev}
	i.arena = make([]Sender, 0, senderArenaBlock)
	i.senders = make([]*Sender, 0, senderArenaBlock)
	i.deliverFn = func(a uint64) { i.senders[a>>retryBits].delivered(a & retryMask) }
	i.replayFn = func(a uint64) { i.senders[a>>retryBits].deliver(int(a & retryMask)) }
	return i
}

// Stats returns a snapshot of the operation counters.
func (i *ISA) Stats() Stats { return i.stats }

// Device returns the routing device operations are addressed to.
func (i *ISA) Device() *vl.Device { return i.dev }

// Select models vl_select: translate a line's virtual address into the
// system register only vl_push/vl_fetch may read. Pure core-side cost.
func (i *ISA) Select(p *sim.Proc) {
	i.stats.Selects++
	p.Sleep(config.VLSelectCycles)
}

// Sender issues the device writes of one endpoint in order, replaying
// NACKed writes without letting younger writes of the same endpoint
// overtake them — store-buffer semantics. Without this ordering, a
// replayed vl_push could land behind a younger push of the same producer
// and break per-producer FIFO delivery.
//
// Writes of different endpoints use different Senders and interleave
// freely, as they would from different cores.
type Sender struct {
	i    *ISA
	id   int // index into i.senders; high bits of packed event args
	kind noc.PacketKind
	q    []senderOp
	head int // q[:head] are accepted; the array is reused, not resliced away
	busy bool
}

// senderOp is one queued device write in data form — the operands are
// stored, not captured in a closure, so the push/fetch hot path
// allocates nothing per message.
type senderOp struct {
	sqi      vl.SQI
	msg      mem.Message // push payload
	target   mem.Addr    // fetch target
	accepted func()      // runs at the acceptance tick; may be nil
	push     bool        // true = vl_push, false = vl_fetch
}

// NewPushSender returns the ordered vl_push channel of one producer
// endpoint.
func (i *ISA) NewPushSender() *Sender { return newSender(i, noc.PktPush) }

// NewFetchSender returns the ordered vl_fetch channel of one consumer
// endpoint.
func (i *ISA) NewFetchSender() *Sender { return newSender(i, noc.PktFetchReq) }

// NewPushPort implements Ops.
func (i *ISA) NewPushPort() Port { return i.NewPushSender() }

// NewFetchPort implements Ops.
func (i *ISA) NewFetchPort() Port { return i.NewFetchSender() }

func newSender(i *ISA, kind noc.PacketKind) *Sender {
	if len(i.arena) == cap(i.arena) {
		// A fresh block: existing senders keep pointing into old blocks.
		i.arena = make([]Sender, 0, senderArenaBlock)
	}
	i.arena = i.arena[:len(i.arena)+1]
	s := &i.arena[len(i.arena)-1]
	*s = Sender{i: i, id: len(i.senders), kind: kind}
	i.senders = append(i.senders, s)
	return s
}

func (s *Sender) enqueue(op senderOp) {
	if s.head > 0 && len(s.q) == cap(s.q) {
		// Compact the accepted prefix away before growing, so a sender
		// that never fully drains still reaches a steady-state array.
		n := copy(s.q, s.q[s.head:])
		for i := n; i < len(s.q); i++ {
			s.q[i] = senderOp{}
		}
		s.q = s.q[:n]
		s.head = 0
	}
	s.q = append(s.q, op)
	s.issue()
}

func (s *Sender) issue() {
	if s.busy || s.head == len(s.q) {
		return
	}
	s.busy = true
	s.deliver(0)
}

func (s *Sender) deliver(attempt int) {
	s.i.bus.SendFunc(s.kind, s.i.deliverFn, uint64(s.id)<<retryBits|uint64(attempt))
}

// delivered runs at the packet's arrival tick. The head op is read here
// rather than captured at issue time: the busy flag guarantees a single
// in-flight delivery per sender, and enqueue only appends, so q[head] at
// arrival is the op that was issued.
func (s *Sender) delivered(attempt uint64) {
	op := s.q[s.head]
	var ok bool
	if op.push {
		ok = s.i.dev.Push(op.sqi, op.msg)
	} else {
		ok = s.i.dev.Fetch(op.sqi, op.target)
	}
	if ok {
		s.q[s.head] = senderOp{}
		s.head++
		if s.head == len(s.q) {
			s.q, s.head = s.q[:0], 0
		}
		s.busy = false
		if op.accepted != nil {
			op.accepted()
		}
		s.issue()
		return
	}
	if attempt+1 >= MaxRetries {
		panic(fmt.Sprintf("isa: device-write replay bound exceeded on sqi %d (deadlocked workload?)", op.sqi))
	}
	s.i.stats.Replays++
	s.i.k.AfterFunc(RetryBackoffCycles, s.i.replayFn, uint64(s.id)<<retryBits|(attempt+1))
}

// Pending reports queued-but-unaccepted writes (tests/diagnostics).
func (s *Sender) Pending() int { return len(s.q) - s.head }

// Push models vl_push through the endpoint's ordered sender: copy the
// selected line's content to the routing device without changing the
// line's coherence state. The calling process is charged the issue cost;
// delivery and NACK replay proceed asynchronously. accepted runs (at the
// acceptance tick) once the device takes ownership; it may be nil.
func (i *ISA) Push(p *sim.Proc, port Port, sqi vl.SQI, msg mem.Message, accepted func()) {
	snd := port.(*Sender)
	i.stats.Pushes++
	p.Sleep(config.VLPushCycles)
	snd.enqueue(senderOp{sqi: sqi, msg: msg, accepted: accepted, push: true})
}

// Fetch models vl_fetch through the endpoint's ordered sender: write the
// selected consumer-line physical address to the device-memory range of
// consBuf. Posted; NACKs replay in order.
func (i *ISA) Fetch(p *sim.Proc, port Port, sqi vl.SQI, target mem.Addr) {
	snd := port.(*Sender)
	i.stats.Fetches++
	p.Sleep(config.VLFetchCycles)
	snd.enqueue(senderOp{sqi: sqi, target: target})
}

// NoteSelect is the continuation-passing half of Select: issue
// bookkeeping only, cycles charged by the caller's own event.
func (i *ISA) NoteSelect() { i.stats.Selects++ }

// NotePush is the continuation-passing issue half of Push.
func (i *ISA) NotePush() { i.stats.Pushes++ }

// NoteFetch is the continuation-passing issue half of Fetch.
func (i *ISA) NoteFetch() { i.stats.Fetches++ }

// EnqueuePush is the continuation-passing completion half of Push: the
// device write, issued once the caller's charged cycles have elapsed.
func (i *ISA) EnqueuePush(port Port, sqi vl.SQI, msg mem.Message, accepted func()) {
	port.(*Sender).enqueue(senderOp{sqi: sqi, msg: msg, accepted: accepted, push: true})
}

// EnqueueFetch is the continuation-passing completion half of Fetch.
func (i *ISA) EnqueueFetch(port Port, sqi vl.SQI, target mem.Addr) {
	port.(*Sender).enqueue(senderOp{sqi: sqi, target: target})
}

// Register models spamer_register: "a vl_fetch instruction writing to
// specBuf" (§3.3). Registration failures are configuration errors
// (specBuf exhausted) and surface as panics at delivery time; the §4.5
// position is that the OS must manage specBuf like any limited resource.
func (i *ISA) Register(p *sim.Proc, sqi vl.SQI, base mem.Addr, n int) {
	i.stats.Registers++
	p.Sleep(config.SpamerRegCycles)
	i.bus.Send(noc.PktRegister, func() {
		if err := i.dev.Register(sqi, base, n); err != nil {
			panic(err)
		}
	})
}

var _ Ops = (*ISA)(nil)
