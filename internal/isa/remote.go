package isa

// RemoteISA carries the VL/SPAMeR operations across a conservative
// simulation-domain boundary: the issuing core and the routing device run
// on different kernels of a sim.ParallelKernel, so a device write cannot
// call into the device directly. Instead the write occupies the issuing
// domain's bus slice (which fixes an arrival tick at least one lookahead
// ahead), travels as a packed cross-domain post, executes at the hub via
// vl.Hub.Exec, and the accept/NACK outcome returns as another post one
// lookahead later.
//
// The semantics match the same-domain ISA: per-endpoint writes are
// ordered (store-buffer), NACKs replay with backoff without letting
// younger writes overtake, and registration failures panic. The timing
// differs in one documented way — acceptance is learned a response trip
// after arrival rather than instantaneously — which is why multi-domain
// runs are a distinct deterministic model variant with their own golden
// traces rather than a bit-identical reproduction of the sequential ones.

import (
	"fmt"

	"spamer/internal/config"
	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
	"spamer/internal/vl"
)

// RemoteISA issues operations from one core domain to one routing-device
// hub. One instance exists per (device, issuing domain) pair; all of its
// state lives in the issuing domain.
type RemoteISA struct {
	k      *sim.Kernel // issuing-domain kernel
	bus    *noc.Bus    // issuing domain's bus slice
	hub    *vl.Hub
	post   vl.PostFunc
	src    int // issuing domain index
	hubDom int

	execFn   func(a0, a1, a2, a3 uint64) // hub.Exec, bound once
	replayFn func(uint64)                // shared retry trampoline, bound on first NACK; arg = sender id

	stats   Stats
	senders []*RemoteSender
	arena   []RemoteSender // block storage behind senders; 16 cores x N endpoints

	// Embedded first blocks: Init points arena/senders here, so a domain
	// whose endpoint count fits one block allocates nothing for its
	// sender bookkeeping. &arena0[i] is handed out as a Port, so a
	// RemoteISA must not move after Init — the fabric's riArena and
	// NewRemote's heap object both honour that.
	arena0   [senderArenaBlock]RemoteSender
	senders0 [senderArenaBlock]*RemoteSender
}

// NewRemote returns a remote ISA issuing from srcDomain against the given
// hub. It binds its response dispatcher into the hub, so construction
// must happen at setup time, before any traffic flows.
func NewRemote(k *sim.Kernel, bus *noc.Bus, hub *vl.Hub, post vl.PostFunc, srcDomain int) *RemoteISA {
	r := new(RemoteISA)
	r.Init(k, bus, hub, post, srcDomain)
	return r
}

// Init initializes r in place (batch construction — the multi-domain
// fabric carves one RemoteISA per core domain from a block; NewRemote
// wraps it). Like NewRemote it binds the response dispatcher into the
// hub, so it must run at setup time.
func (r *RemoteISA) Init(k *sim.Kernel, bus *noc.Bus, hub *vl.Hub, post vl.PostFunc, srcDomain int) {
	*r = RemoteISA{k: k, bus: bus, hub: hub, post: post, src: srcDomain, hubDom: hub.Domain()}
	// Endpoint setup dominates construction allocations: the sender
	// arena and index start in the embedded first blocks so a typical
	// domain's ports cost zero allocations (heavy workloads fall back
	// to block growth).
	r.arena = r.arena0[:0]
	r.senders = r.senders0[:0]
	r.execFn = hub.ExecFn()
	hub.Bind(srcDomain, r)
}

// Stats returns a snapshot of the operation counters.
func (r *RemoteISA) Stats() Stats { return r.stats }

// Select models vl_select. Pure core-side cost, identical to ISA.Select.
func (r *RemoteISA) Select(p *sim.Proc) {
	r.stats.Selects++
	p.Sleep(config.VLSelectCycles)
}

// Response dispatches a hub accept/NACK outcome to the issuing sender,
// implementing vl.Responder. It runs in the issuing domain at the
// response's arrival tick.
func (r *RemoteISA) Response(a0, a1, a2, a3 uint64) {
	r.senders[a0>>1].delivered(a0&1 != 0)
}

// RemoteSender is the cross-domain Port: it issues the device writes of
// one endpoint in order, holding younger writes until the hub accepts the
// head — the same store-buffer discipline as Sender, stretched over a
// round trip.
type RemoteSender struct {
	r        *RemoteISA
	id       int
	kind     noc.PacketKind
	q        []remoteOp
	head     int // q[:head] are accepted; the array is reused, not resliced away
	busy     bool
	attempts uint64

	// q0 is the op queue's embedded first array: a producer window is 4
	// and fetch streams hold 1-2 ops, so most senders never outgrow it
	// (append growth falls back to the heap when one does).
	q0 [4]remoteOp
}

type remoteOp struct {
	sqi      vl.SQI
	target   mem.Addr    // fetch target
	msg      mem.Message // push payload
	accepted func()      // runs at the acceptance tick; may be nil
	push     bool
}

// senderArenaBlock sizes the sender arena: a core domain opens a few
// endpoints (one producer + one consumer side per queue it touches), so
// one block covers typical workloads and heavy ones amortize.
const senderArenaBlock = 16

func (r *RemoteISA) newSender(kind noc.PacketKind) *RemoteSender {
	if len(r.arena) == cap(r.arena) {
		// A fresh block: existing senders keep pointing into old blocks.
		r.arena = make([]RemoteSender, 0, senderArenaBlock)
	}
	r.arena = r.arena[:len(r.arena)+1]
	s := &r.arena[len(r.arena)-1]
	*s = RemoteSender{r: r, id: len(r.senders), kind: kind}
	r.senders = append(r.senders, s)
	return s
}

// NewPushPort implements Ops.
func (r *RemoteISA) NewPushPort() Port { return r.newSender(noc.PktPush) }

// NewFetchPort implements Ops.
func (r *RemoteISA) NewFetchPort() Port { return r.newSender(noc.PktFetchReq) }

// Pending reports queued-but-unaccepted writes.
func (s *RemoteSender) Pending() int { return len(s.q) - s.head }

func (s *RemoteSender) enqueue(op remoteOp) {
	if s.q == nil {
		s.q = s.q0[:0]
	}
	if s.head > 0 && len(s.q) == cap(s.q) {
		// Compact the accepted prefix away before growing, so a sender
		// that never fully drains still reaches a steady-state array.
		n := copy(s.q, s.q[s.head:])
		for i := n; i < len(s.q); i++ {
			s.q[i] = remoteOp{}
		}
		s.q = s.q[:n]
		s.head = 0
	}
	s.q = append(s.q, op)
	s.issue()
}

func (s *RemoteSender) issue() {
	if s.busy || s.head == len(s.q) {
		return
	}
	s.busy = true
	s.send()
}

// send occupies the issuing domain's bus slice and posts the head op to
// the hub at its arrival tick. The arrival is at least hop+serialization
// past now, so it always satisfies the parallel kernel's lookahead.
func (s *RemoteSender) send() {
	op := &s.q[s.head]
	arrival := s.r.bus.Occupy(s.kind)
	if op.push {
		s.r.post(s.r.src, s.r.hubDom, arrival, s.r.execFn,
			vl.PackPushOp(s.r.src, s.id, op.sqi), vl.PackPushPayload(op.msg), op.msg.Payload, 0)
	} else {
		s.r.post(s.r.src, s.r.hubDom, arrival, s.r.execFn,
			vl.PackFetchOp(s.r.src, s.id, op.sqi), uint64(op.target), 0, 0)
	}
}

// delivered runs at the response's arrival tick in the issuing domain.
func (s *RemoteSender) delivered(ok bool) {
	if !ok {
		s.attempts++
		if s.attempts >= MaxRetries {
			panic("isa: remote device-write replay bound exceeded (deadlocked workload?)")
		}
		s.r.stats.Replays++
		if s.r.replayFn == nil {
			// Bound on first NACK: replays are the exception, so most
			// domains never pay for the trampoline.
			r := s.r
			r.replayFn = func(id uint64) { r.senders[id].send() }
		}
		s.r.k.AfterFunc(RetryBackoffCycles, s.r.replayFn, uint64(s.id))
		return
	}
	op := s.q[s.head]
	s.q[s.head] = remoteOp{}
	s.head++
	if s.head == len(s.q) {
		s.q, s.head = s.q[:0], 0
	}
	s.busy = false
	s.attempts = 0
	if op.accepted != nil {
		op.accepted()
	}
	s.issue()
}

// Push models vl_push through the endpoint's ordered remote sender.
// accepted runs at the acceptance-response arrival tick (one cross-domain
// round trip after issue at minimum); it may be nil.
func (r *RemoteISA) Push(p *sim.Proc, port Port, sqi vl.SQI, msg mem.Message, accepted func()) {
	snd := port.(*RemoteSender)
	r.stats.Pushes++
	p.Sleep(config.VLPushCycles)
	snd.enqueue(remoteOp{sqi: sqi, msg: msg, accepted: accepted, push: true})
}

// Fetch models vl_fetch through the endpoint's ordered remote sender.
func (r *RemoteISA) Fetch(p *sim.Proc, port Port, sqi vl.SQI, target mem.Addr) {
	snd := port.(*RemoteSender)
	r.stats.Fetches++
	p.Sleep(config.VLFetchCycles)
	snd.enqueue(remoteOp{sqi: sqi, target: target})
}

// NoteSelect is the continuation-passing half of Select (see Ops).
func (r *RemoteISA) NoteSelect() { r.stats.Selects++ }

// NotePush is the continuation-passing issue half of Push.
func (r *RemoteISA) NotePush() { r.stats.Pushes++ }

// NoteFetch is the continuation-passing issue half of Fetch.
func (r *RemoteISA) NoteFetch() { r.stats.Fetches++ }

// EnqueuePush is the continuation-passing completion half of Push.
func (r *RemoteISA) EnqueuePush(port Port, sqi vl.SQI, msg mem.Message, accepted func()) {
	port.(*RemoteSender).enqueue(remoteOp{sqi: sqi, msg: msg, accepted: accepted, push: true})
}

// EnqueueFetch is the continuation-passing completion half of Fetch.
func (r *RemoteISA) EnqueueFetch(port Port, sqi vl.SQI, target mem.Addr) {
	port.(*RemoteSender).enqueue(remoteOp{sqi: sqi, target: target})
}

// Register models spamer_register: fire-and-forget to the hub, where a
// failure (specBuf exhausted) panics like a same-domain register would.
func (r *RemoteISA) Register(p *sim.Proc, sqi vl.SQI, base mem.Addr, n int) {
	if n < 0 || uint64(n) > seqLimit {
		panic(fmt.Sprintf("isa: remote register with %d lines", n))
	}
	r.stats.Registers++
	p.Sleep(config.SpamerRegCycles)
	arrival := r.bus.Occupy(noc.PktRegister)
	r.post(r.src, r.hubDom, arrival, r.execFn, vl.PackRegisterOp(r.src, sqi), uint64(base), uint64(n), 0)
}

// seqLimit bounds packed integer fields (48 bits), matching vl's packing.
const seqLimit = 1<<48 - 1

var _ Ops = (*RemoteISA)(nil)
