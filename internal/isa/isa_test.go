package isa

import (
	"testing"

	"spamer/internal/config"
	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
	"spamer/internal/vl"
)

type rig struct {
	k   *sim.Kernel
	bus *noc.Bus
	as  *mem.AddressSpace
	dev *vl.Device
	isa *ISA
}

func newRig(cfg vl.Config) *rig {
	k := sim.New()
	k.SetDeadline(1 << 30)
	bus := noc.New(k)
	as := mem.NewAddressSpace(k)
	dev := vl.New(k, bus, as, cfg)
	return &rig{k: k, bus: bus, as: as, dev: dev, isa: New(k, bus, dev)}
}

func TestSelectCostsCoreCycles(t *testing.T) {
	r := newRig(vl.Config{})
	var end uint64
	r.k.Go("core", func(p *sim.Proc) {
		r.isa.Select(p)
		end = p.Now()
	})
	r.k.Run()
	if end != config.VLSelectCycles {
		t.Fatalf("select took %d cycles", end)
	}
	if r.isa.Stats().Selects != 1 {
		t.Fatalf("stats = %+v", r.isa.Stats())
	}
}

func TestPushDelivery(t *testing.T) {
	r := newRig(vl.Config{})
	s, _ := r.dev.AllocSQI()
	snd := r.isa.NewPushSender()
	var acceptedAt uint64
	r.k.Go("core", func(p *sim.Proc) {
		r.isa.Push(p, snd, s, mem.Message{Payload: 5}, func() { acceptedAt = r.k.Now() })
	})
	r.k.Run()
	if acceptedAt == 0 {
		t.Fatal("push never accepted")
	}
	if r.dev.BufferedLen(s) != 1 {
		t.Fatal("message not buffered at device")
	}
}

// TestSenderOrderedReplay: a NACKed head write replays before younger
// writes of the same endpoint reach the device.
func TestSenderOrderedReplay(t *testing.T) {
	r := newRig(vl.Config{ProdEntries: 1, LinkEntries: 1})
	s, _ := r.dev.AllocSQI()
	pg := r.as.NewPage(4)
	snd := r.isa.NewPushSender()
	fsnd := r.isa.NewFetchSender()

	r.k.Go("producer", func(p *sim.Proc) {
		// Three pushes against a 1-entry prodBuf: heavy NACK replay.
		for i := 0; i < 3; i++ {
			r.isa.Push(p, snd, s, mem.Message{Seq: uint64(i)}, nil)
		}
	})
	r.k.Go("consumer", func(p *sim.Proc) {
		p.Sleep(200)
		for i := 0; i < 3; i++ {
			r.isa.Fetch(p, fsnd, s, pg.Lines[i].Addr)
			line := pg.Lines[i]
			for line.State != mem.LineValid {
				line.OnFill.Wait(p)
			}
			line.Take()
		}
	})
	r.k.Run()
	if r.isa.Stats().Replays == 0 {
		t.Fatal("expected NACK replays with a 1-entry prodBuf")
	}
	// Delivery order must match issue order despite replays: the fills
	// landed in line order, and Take asserted FIFO via the loop above.
	if got := r.dev.Stats().PushAccepts; got != 3 {
		t.Fatalf("accepts = %d", got)
	}
}

func TestSenderPending(t *testing.T) {
	r := newRig(vl.Config{ProdEntries: 1, LinkEntries: 1})
	s, _ := r.dev.AllocSQI()
	snd := r.isa.NewPushSender()
	r.k.Go("producer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			r.isa.Push(p, snd, s, mem.Message{Seq: uint64(i)}, nil)
		}
		if snd.Pending() == 0 {
			t.Error("sender queue empty immediately after 3 posted pushes")
		}
	})
	r.k.RunUntil(20)
	if snd.Pending() < 2 {
		t.Fatalf("pending = %d, want >= 2 (1-entry prodBuf)", snd.Pending())
	}
	r.k.Drain()
}

func TestRegisterReachesDevice(t *testing.T) {
	r := newRig(vl.Config{})
	ext := &captureExt{}
	r.dev.SetSpecExtension(ext)
	s, _ := r.dev.AllocSQI()
	r.k.Go("core", func(p *sim.Proc) {
		r.isa.Register(p, s, 0x1000, 4)
	})
	r.k.Run()
	if ext.base != 0x1000 || ext.n != 4 {
		t.Fatalf("register not delivered: %+v", ext)
	}
	if r.isa.Stats().Registers != 1 {
		t.Fatalf("stats = %+v", r.isa.Stats())
	}
}

type captureExt struct {
	base mem.Addr
	n    int
}

func (c *captureExt) Register(sqi vl.SQI, base mem.Addr, n int) error {
	c.base, c.n = base, n
	return nil
}
func (c *captureExt) SelectTarget(vl.SQI, uint64) (mem.Addr, int, uint64, bool) {
	return 0, 0, 0, false
}
func (c *captureExt) OnResult(int, bool, uint64) {}
func (c *captureExt) Unregister(vl.SQI)          {}
