// Package harness fans independent simulation runs across a bounded
// worker pool. Every evaluation entry point (the figure matrices, the
// parameter sweeps, the tuner) consists of many mutually independent,
// deterministic spamer.System runs; the harness executes them on
// multiple cores while keeping the observable behaviour identical to a
// sequential loop:
//
//   - results are returned in submission order regardless of completion
//     order, so downstream tables and figures are byte-identical;
//   - each sim.Kernel stays single-threaded — parallelism exists only
//     across systems, never inside one, preserving the kernel's
//     determinism guarantee;
//   - a failed run (watchdog panic, deadlock panic, context cancel)
//     becomes a structured *Error in its slot instead of killing the
//     whole sweep.
//
// Cancellation is context-based and cooperative: the pool stops
// dispatching queued tasks as soon as the context is cancelled, and the
// per-task context (with Options.Timeout applied) is handed to the task
// body for finer-grained checks. A runaway simulation is bounded by the
// kernel watchdog (spamer.Config.Deadline), whose panic the harness
// converts into that run's error.
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Task is one independent unit of work: typically a closure that builds
// a spamer.System, runs it to completion, and returns its Result.
type Task[T any] struct {
	// Label names the run in progress reports and errors.
	Label string
	// Run executes the task. ctx carries pool cancellation and the
	// per-task timeout; CPU-bound bodies that cannot poll it should
	// bound themselves another way (e.g. the sim watchdog deadline).
	Run func(ctx context.Context) (T, error)
}

// Error is the structured failure of a single run.
type Error struct {
	Index int    // submission index of the failed task
	Label string // task label
	Err   error  // cause: task error, recovered panic, or context error
}

func (e *Error) Error() string {
	return fmt.Sprintf("harness: run %d (%s): %v", e.Index, e.Label, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Outcome is one task's slot in the result slice. Outcomes are ordered
// by submission index, never by completion order.
type Outcome[T any] struct {
	Index int
	Label string
	Value T             // zero when Err != nil
	Err   error         // nil on success, otherwise *Error
	Wall  time.Duration // host wall-clock the run took
}

// Progress is a live snapshot delivered after each run finishes.
type Progress struct {
	Done    int    // runs finished so far (including failures)
	Total   int    // total runs submitted
	Failed  int    // runs finished with an error
	Label   string // label of the run that just finished
	Elapsed time.Duration
}

// Options tunes a pool invocation.
type Options struct {
	// Workers bounds pool concurrency; <= 0 selects
	// runtime.GOMAXPROCS(0). One worker reproduces sequential
	// execution exactly.
	Workers int
	// Timeout bounds each run; 0 means no per-run deadline. The
	// deadline is carried by the task's context (cooperative).
	Timeout time.Duration
	// OnProgress, if set, is called after every run completes. Calls
	// are serialized; the callback must not block for long.
	OnProgress func(Progress)
	// OnStart, if set, is called just before a run begins executing,
	// with Label naming the starting run and Done counting runs
	// already finished. Calls are serialized with OnProgress; the
	// callback must not block for long.
	OnStart func(Progress)
}

// Metrics aggregates one pool invocation.
type Metrics struct {
	Runs       int
	Failed     int
	Workers    int
	Wall       time.Duration
	Throughput float64 // completed runs per host second
}

func (m Metrics) String() string {
	return fmt.Sprintf("%d runs (%d failed) on %d workers in %v (%.1f runs/s)",
		m.Runs, m.Failed, m.Workers, m.Wall.Round(time.Millisecond), m.Throughput)
}

// Run executes every task on a bounded worker pool and returns one
// Outcome per task, in submission order. It never returns a non-nil
// error slice-wide: per-run failures (including cancellations once ctx
// is done) are recorded in their slots, so a sweep always yields a
// complete, ordered account of what ran and what failed.
func Run[T any](ctx context.Context, tasks []Task[T], opts Options) ([]Outcome[T], Metrics) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) && len(tasks) > 0 {
		workers = len(tasks)
	}
	start := time.Now()
	outs := make([]Outcome[T], len(tasks))

	var (
		mu   sync.Mutex
		done int
		fail int
	)
	starting := func(i int) {
		if opts.OnStart == nil {
			return
		}
		mu.Lock()
		opts.OnStart(Progress{
			Done:    done,
			Total:   len(tasks),
			Failed:  fail,
			Label:   tasks[i].Label,
			Elapsed: time.Since(start),
		})
		mu.Unlock()
	}
	report := func(i int) {
		mu.Lock()
		done++
		if outs[i].Err != nil {
			fail++
		}
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{
				Done:    done,
				Total:   len(tasks),
				Failed:  fail,
				Label:   outs[i].Label,
				Elapsed: time.Since(start),
			})
		}
		mu.Unlock()
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				starting(i)
				outs[i] = runOne(ctx, i, tasks[i], opts.Timeout)
				report(i)
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()

	wall := time.Since(start)
	m := Metrics{Runs: len(tasks), Failed: fail, Workers: workers, Wall: wall}
	if secs := wall.Seconds(); secs > 0 {
		m.Throughput = float64(len(tasks)-fail) / secs
	}
	return outs, m
}

// runOne executes a single task with cancellation, timeout, and panic
// containment.
func runOne[T any](ctx context.Context, i int, t Task[T], timeout time.Duration) (out Outcome[T]) {
	out = Outcome[T]{Index: i, Label: t.Label}
	if err := ctx.Err(); err != nil {
		out.Err = &Error{Index: i, Label: t.Label, Err: err}
		return out
	}
	runCtx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	defer func() {
		out.Wall = time.Since(start)
		if r := recover(); r != nil {
			// A watchdog or deadlock panic from the simulator lands
			// here (the kernel runs on this goroutine); keep the sweep
			// alive and record the failure in this run's slot.
			out.Err = &Error{Index: i, Label: t.Label, Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	v, err := t.Run(runCtx)
	if err == nil && ctx.Err() == nil {
		// A body that ignores its context may have returned a value
		// after the per-run deadline passed; surface the timeout.
		// (Pool-wide cancellation, by contrast, keeps work that
		// completed before the cancel was observed.)
		err = runCtx.Err()
	}
	if err != nil {
		out.Err = &Error{Index: i, Label: t.Label, Err: err}
		return out
	}
	out.Value = v
	return out
}

// ProgressPrinter returns an OnProgress callback that rewrites one
// compact status line on w (intended for stderr) as runs complete,
// ending it with a newline when the pool drains.
func ProgressPrinter(w io.Writer, prefix string) func(Progress) {
	return func(p Progress) {
		fmt.Fprintf(w, "\r%s: %d/%d runs", prefix, p.Done, p.Total)
		if p.Failed > 0 {
			fmt.Fprintf(w, " (%d failed)", p.Failed)
		}
		if p.Done == p.Total {
			fmt.Fprintf(w, " in %v\n", p.Elapsed.Round(time.Millisecond))
		}
	}
}

// Workers resolves an Options.Workers-style count: values <= 0 select
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// FirstError returns the first failed outcome's error, or nil.
func FirstError[T any](outs []Outcome[T]) error {
	for _, o := range outs {
		if o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// Values unwraps successful outcomes in submission order, returning the
// first failure alongside the values collected so far.
func Values[T any](outs []Outcome[T]) ([]T, error) {
	vals := make([]T, 0, len(outs))
	for _, o := range outs {
		if o.Err != nil {
			return vals, o.Err
		}
		vals = append(vals, o.Value)
	}
	return vals, nil
}
