package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestResultsInSubmissionOrder: later-submitted tasks finish first, yet
// outcomes land in submission order.
func TestResultsInSubmissionOrder(t *testing.T) {
	const n = 16
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Label: fmt.Sprintf("t%d", i),
			Run: func(ctx context.Context) (int, error) {
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	outs, m := Run(context.Background(), tasks, Options{Workers: 8})
	if len(outs) != n {
		t.Fatalf("outcomes = %d, want %d", len(outs), n)
	}
	for i, o := range outs {
		if o.Index != i || o.Label != fmt.Sprintf("t%d", i) || o.Err != nil || o.Value != i*i {
			t.Fatalf("outcome %d = %+v", i, o)
		}
	}
	if m.Runs != n || m.Failed != 0 || m.Workers != 8 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Throughput <= 0 {
		t.Fatalf("throughput = %v", m.Throughput)
	}
}

// TestSingleWorkerIsSequential: one worker executes strictly one task
// at a time, in submission order.
func TestSingleWorkerIsSequential(t *testing.T) {
	var order []int
	var running atomic.Int32
	tasks := make([]Task[int], 8)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Run: func(ctx context.Context) (int, error) {
			if running.Add(1) != 1 {
				t.Error("two tasks in flight on one worker")
			}
			order = append(order, i)
			running.Add(-1)
			return i, nil
		}}
	}
	outs, _ := Run(context.Background(), tasks, Options{Workers: 1})
	for i, o := range outs {
		if o.Value != i || order[i] != i {
			t.Fatalf("sequential order violated: outs[%d]=%+v order=%v", i, o, order)
		}
	}
}

// TestStructuredErrors: task errors and panics become *Error slots
// carrying index and label; the rest of the pool keeps going.
func TestStructuredErrors(t *testing.T) {
	tasks := []Task[int]{
		{Label: "ok", Run: func(ctx context.Context) (int, error) { return 1, nil }},
		{Label: "boom", Run: func(ctx context.Context) (int, error) { return 0, errors.New("boom") }},
		{Label: "livelock", Run: func(ctx context.Context) (int, error) {
			panic("sim: watchdog deadline 100 exceeded at tick 101 (3 live procs)")
		}},
		{Label: "after", Run: func(ctx context.Context) (int, error) { return 4, nil }},
	}
	outs, m := Run(context.Background(), tasks, Options{Workers: 2})
	if outs[0].Err != nil || outs[0].Value != 1 || outs[3].Err != nil || outs[3].Value != 4 {
		t.Fatalf("healthy runs disturbed: %+v / %+v", outs[0], outs[3])
	}
	var he *Error
	if !errors.As(outs[1].Err, &he) || he.Index != 1 || he.Label != "boom" {
		t.Fatalf("outs[1].Err = %v", outs[1].Err)
	}
	if !errors.As(outs[2].Err, &he) || !strings.Contains(he.Error(), "watchdog deadline") {
		t.Fatalf("panic not converted: %v", outs[2].Err)
	}
	if m.Failed != 2 {
		t.Fatalf("failed = %d, want 2", m.Failed)
	}
}

// TestCancelProducesStructuredErrors exercises the cancel path under
// -race: in-flight cooperative tasks observe the cancel, queued tasks
// are never dispatched, and every slot reports context.Canceled.
func TestCancelProducesStructuredErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	tasks := make([]Task[int], 6)
	for i := range tasks {
		tasks[i] = Task[int]{
			Label: fmt.Sprintf("t%d", i),
			Run: func(c context.Context) (int, error) {
				if started.Add(1) == 2 {
					cancel()
				}
				<-c.Done()
				return 0, c.Err()
			},
		}
	}
	outs, m := Run(ctx, tasks, Options{Workers: 2})
	for i, o := range outs {
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("outs[%d].Err = %v, want context.Canceled", i, o.Err)
		}
		var he *Error
		if !errors.As(o.Err, &he) || he.Index != i {
			t.Fatalf("outs[%d].Err not structured: %v", i, o.Err)
		}
	}
	if m.Failed != len(tasks) {
		t.Fatalf("failed = %d, want %d", m.Failed, len(tasks))
	}
	if s := started.Load(); s > 2 {
		t.Fatalf("cancel did not stop dispatch: %d tasks started", s)
	}
}

// TestPerRunTimeout: the per-task context carries the deadline for
// cooperative bodies, and a body that ignores its context still has the
// overrun surfaced on its outcome.
func TestPerRunTimeout(t *testing.T) {
	tasks := []Task[int]{
		{Label: "quick", Run: func(c context.Context) (int, error) { return 7, nil }},
		{Label: "cooperative-slow", Run: func(c context.Context) (int, error) {
			<-c.Done()
			return 0, c.Err()
		}},
		{Label: "oblivious-slow", Run: func(c context.Context) (int, error) {
			time.Sleep(80 * time.Millisecond)
			return 9, nil
		}},
	}
	outs, m := Run(context.Background(), tasks, Options{Workers: 3, Timeout: 20 * time.Millisecond})
	if outs[0].Err != nil || outs[0].Value != 7 {
		t.Fatalf("quick run failed: %+v", outs[0])
	}
	for _, i := range []int{1, 2} {
		if !errors.Is(outs[i].Err, context.DeadlineExceeded) {
			t.Fatalf("outs[%d].Err = %v, want deadline exceeded", i, outs[i].Err)
		}
	}
	if m.Failed != 2 {
		t.Fatalf("failed = %d, want 2", m.Failed)
	}
}

// TestProgressSerialized: progress callbacks arrive serialized with
// monotonically increasing Done, ending at Total.
func TestProgressSerialized(t *testing.T) {
	const n = 12
	var mu sync.Mutex
	var seen []Progress
	tasks := make([]Task[int], n)
	for i := range tasks {
		tasks[i] = Task[int]{Run: func(ctx context.Context) (int, error) { return 0, nil }}
	}
	_, _ = Run(context.Background(), tasks, Options{
		Workers: 4,
		OnProgress: func(p Progress) {
			mu.Lock()
			seen = append(seen, p)
			mu.Unlock()
		},
	})
	if len(seen) != n {
		t.Fatalf("progress events = %d, want %d", len(seen), n)
	}
	for i, p := range seen {
		if p.Done != i+1 || p.Total != n {
			t.Fatalf("progress[%d] = %+v", i, p)
		}
	}
}

// TestWorkersResolution covers the GOMAXPROCS default and the
// worker-count cap at the task count.
func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers(<=0) must resolve to at least one")
	}
	if Workers(5) != 5 {
		t.Fatalf("Workers(5) = %d", Workers(5))
	}
	tasks := []Task[int]{{Run: func(ctx context.Context) (int, error) { return 1, nil }}}
	_, m := Run(context.Background(), tasks, Options{Workers: 64})
	if m.Workers != 1 {
		t.Fatalf("pool spawned %d workers for 1 task", m.Workers)
	}
}

// TestValuesAndFirstError cover the unwrap helpers.
func TestValuesAndFirstError(t *testing.T) {
	ok := []Outcome[int]{{Value: 1}, {Value: 2}}
	vals, err := Values(ok)
	if err != nil || len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("Values = %v, %v", vals, err)
	}
	if FirstError(ok) != nil {
		t.Fatal("FirstError on clean outcomes")
	}
	bad := []Outcome[int]{{Value: 1}, {Err: &Error{Index: 1, Label: "x", Err: errors.New("boom")}}}
	if _, err := Values(bad); err == nil {
		t.Fatal("Values missed the failure")
	}
	if FirstError(bad) == nil {
		t.Fatal("FirstError missed the failure")
	}
}

// TestMetricsString keeps the human-readable summary stable enough for
// CLI use.
func TestMetricsString(t *testing.T) {
	m := Metrics{Runs: 10, Failed: 1, Workers: 4, Wall: 2 * time.Second, Throughput: 4.5}
	s := m.String()
	for _, want := range []string{"10 runs", "1 failed", "4 workers", "4.5 runs/s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Metrics.String() = %q missing %q", s, want)
		}
	}
}

// TestOnStartFiresPerRun: every run gets exactly one OnStart call before
// its OnProgress call, with the run's label, and calls stay serialized.
func TestOnStartFiresPerRun(t *testing.T) {
	const n = 12
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Label: fmt.Sprintf("t%d", i),
			Run:   func(ctx context.Context) (int, error) { return i, nil },
		}
	}
	var mu sync.Mutex
	started := map[string]int{}
	finished := map[string]int{}
	outs, _ := Run(context.Background(), tasks, Options{
		Workers: 4,
		OnStart: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			started[p.Label]++
			if finished[p.Label] != 0 {
				t.Errorf("run %s finished before it started", p.Label)
			}
			if p.Total != n {
				t.Errorf("OnStart total = %d, want %d", p.Total, n)
			}
		},
		OnProgress: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			finished[p.Label]++
		},
	})
	if len(outs) != n {
		t.Fatalf("outcomes = %d", len(outs))
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		l := fmt.Sprintf("t%d", i)
		if started[l] != 1 || finished[l] != 1 {
			t.Fatalf("run %s: started %d finished %d times", l, started[l], finished[l])
		}
	}
}
