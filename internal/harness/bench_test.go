package harness

import (
	"context"
	"fmt"
	"testing"
)

// spin burns deterministic CPU work, standing in for one simulator run.
func spin(n int) uint64 {
	var acc uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < n; i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
	}
	return acc
}

// BenchmarkPool measures pool overhead and scaling: 64 CPU-bound tasks
// at several worker counts. On a multi-core host the 4- and 8-worker
// variants should approach the core-count speedup over 1 worker; the
// 1-worker variant bounds the harness's own dispatch overhead.
func BenchmarkPool(b *testing.B) {
	const tasksPerRun = 64
	const workPerTask = 200_000
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tasks := make([]Task[uint64], tasksPerRun)
			for i := range tasks {
				tasks[i] = Task[uint64]{
					Label: fmt.Sprintf("t%d", i),
					Run: func(ctx context.Context) (uint64, error) {
						return spin(workPerTask), nil
					},
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				outs, m := Run(context.Background(), tasks, Options{Workers: workers})
				if m.Failed != 0 || len(outs) != tasksPerRun {
					b.Fatalf("metrics = %+v", m)
				}
			}
		})
	}
}

// BenchmarkPoolDispatchOverhead isolates per-task bookkeeping with
// near-empty tasks.
func BenchmarkPoolDispatchOverhead(b *testing.B) {
	tasks := make([]Task[int], 256)
	for i := range tasks {
		tasks[i] = Task[int]{Run: func(ctx context.Context) (int, error) { return 0, nil }}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(context.Background(), tasks, Options{Workers: 4})
	}
}
