package workloads

import (
	"fmt"

	"spamer"
)

// Extended benchmarks beyond the paper's Table 2 suite, derived from
// the same Ember communication-pattern library the paper draws
// ping-pong/halo/sweep/incast from. They are kept out of All() (which
// reproduces the paper's figure set exactly) and exposed via Extended().

var extendedRegistry []*Workload

func registerExtended(w *Workload) {
	extendedRegistry = append(extendedRegistry, w)
}

// Extended returns the additional benchmarks.
func Extended() []*Workload {
	out := make([]*Workload, len(extendedRegistry))
	copy(out, extendedRegistry)
	return out
}

// ExtendedByName looks an extended benchmark up.
func ExtendedByName(name string) (*Workload, bool) {
	for _, w := range extendedRegistry {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

const (
	// allreduce: recursive-doubling butterfly over 8 ranks.
	allreduceRanks   = 8
	allreduceIters   = 80
	allreduceCompute = 60

	// alltoall: every rank sends one block to every other rank.
	alltoallRanks   = 6
	alltoallIters   = 50
	alltoallCompute = 80

	// reduce: binary-tree reduction to rank 0.
	reduceRanks   = 8
	reduceIters   = 100
	reduceCompute = 70
)

func init() {
	registerExtended(&Workload{
		Name:      "allreduce",
		Desc:      "recursive-doubling allreduce over 8 ranks",
		QueueSpec: fmt.Sprintf("(1:1)x%d", allreduceRanks*log2(allreduceRanks)*2),
		Threads:   allreduceRanks,
		Build:     buildAllreduce,
	})
	registerExtended(&Workload{
		Name:      "alltoall",
		Desc:      "personalized all-to-all exchange over 6 ranks",
		QueueSpec: fmt.Sprintf("(1:1)x%d", alltoallRanks*(alltoallRanks-1)),
		Threads:   alltoallRanks,
		Build:     buildAlltoall,
	})
	registerExtended(&Workload{
		Name:      "reduce",
		Desc:      "binary-tree reduction to the root over 8 ranks",
		QueueSpec: fmt.Sprintf("(1:1)x%d", reduceRanks-1),
		Threads:   reduceRanks,
		Build:     buildReduce,
	})
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// buildAllreduce: recursive doubling — in round r, rank i exchanges with
// rank i XOR 2^r; after log2(N) rounds every rank holds the reduction.
// Each directed pair link is one 1:1 queue per round direction.
func buildAllreduce(sys *spamer.System, scale int) {
	iters := allreduceIters * scale
	rounds := log2(allreduceRanks)
	// q[r][i] is the queue rank i uses to send in round r (to i^2^r).
	q := make([][]*spamer.Queue, rounds)
	for r := 0; r < rounds; r++ {
		q[r] = make([]*spamer.Queue, allreduceRanks)
		for i := 0; i < allreduceRanks; i++ {
			q[r][i] = sys.NewQueue(fmt.Sprintf("ar.r%d.%d", r, i))
		}
	}
	for i := 0; i < allreduceRanks; i++ {
		i := i
		sys.Spawn(fmt.Sprintf("allreduce/%d", i), func(t *spamer.Thread) {
			tx := make([]*spamer.Producer, rounds)
			rx := make([]*spamer.Consumer, rounds)
			for r := 0; r < rounds; r++ {
				peer := i ^ (1 << r)
				tx[r] = q[r][i].NewProducer(2)
				rx[r] = q[r][peer].NewConsumer(t.Proc, 2)
			}
			acc := uint64(i)
			for it := 0; it < iters; it++ {
				t.Compute(allreduceCompute) // local partial reduction
				for r := 0; r < rounds; r++ {
					tx[r].Push(t.Proc, acc)
					m := rx[r].Pop(t.Proc)
					acc += m.Payload
					t.Compute(12) // combine
				}
			}
		})
	}
}

// buildAlltoall: each iteration every rank sends a personalized block to
// every other rank, then receives N-1 blocks.
func buildAlltoall(sys *spamer.System, scale int) {
	iters := alltoallIters * scale
	// q[i][j] is rank i's queue to rank j.
	q := map[[2]int]*spamer.Queue{}
	for i := 0; i < alltoallRanks; i++ {
		for j := 0; j < alltoallRanks; j++ {
			if i != j {
				q[[2]int{i, j}] = sys.NewQueue(fmt.Sprintf("a2a.%d-%d", i, j))
			}
		}
	}
	for i := 0; i < alltoallRanks; i++ {
		i := i
		sys.Spawn(fmt.Sprintf("alltoall/%d", i), func(t *spamer.Thread) {
			var tx []*spamer.Producer
			var rx []*spamer.Consumer
			for j := 0; j < alltoallRanks; j++ {
				if j == i {
					continue
				}
				tx = append(tx, q[[2]int{i, j}].NewProducer(2))
				rx = append(rx, q[[2]int{j, i}].NewConsumer(t.Proc, 2))
			}
			for it := 0; it < iters; it++ {
				for _, p := range tx {
					p.Push(t.Proc, uint64(it))
				}
				t.Compute(alltoallCompute) // overlap with transit
				for _, c := range rx {
					c.Prefetch(t.Proc)
				}
				for _, c := range rx {
					c.Pop(t.Proc)
				}
			}
		})
	}
}

// buildReduce: leaves push partial sums up a binary tree; interior ranks
// combine two children and forward; rank 0 holds the result.
func buildReduce(sys *spamer.System, scale int) {
	iters := reduceIters * scale
	// up[i] carries rank i's contribution to its parent (i-1)/2.
	up := make([]*spamer.Queue, reduceRanks)
	for i := 1; i < reduceRanks; i++ {
		up[i] = sys.NewQueue(fmt.Sprintf("red.up%d", i))
	}
	children := func(i int) []int {
		var out []int
		if l := 2*i + 1; l < reduceRanks {
			out = append(out, l)
		}
		if r := 2*i + 2; r < reduceRanks {
			out = append(out, r)
		}
		return out
	}
	for i := 0; i < reduceRanks; i++ {
		i := i
		sys.Spawn(fmt.Sprintf("reduce/%d", i), func(t *spamer.Thread) {
			var tx *spamer.Producer
			if i != 0 {
				tx = up[i].NewProducer(2)
			}
			var rx []*spamer.Consumer
			for _, c := range children(i) {
				rx = append(rx, up[c].NewConsumer(t.Proc, 2))
			}
			for it := 0; it < iters; it++ {
				acc := uint64(i)
				t.Compute(reduceCompute) // produce the local partial
				for _, c := range rx {
					m := c.Pop(t.Proc)
					acc += m.Payload
					t.Compute(10) // combine
				}
				if tx != nil {
					tx.Push(t.Proc, acc)
				}
			}
		})
	}
}
