package workloads

import (
	"fmt"

	"spamer"
)

// incast: four producer threads stream data to one master thread through
// a single (4:1) queue (Ember's Incast motif). The master's endpoint has
// 32 consumer cache lines (§4.3 mentions "32 consumer cachelines in
// incast"). Producers run ahead of the master, so data waits at the
// routing device — speculation converts the master's request round trips
// into overlap.
const (
	incastProducers  = 4
	incastPerProd    = 600
	incastProdWork   = 70 // producer-side generation cost per message
	incastConsWork   = 55 // master-side handling cost per message
	incastConsLines  = 32
	incastProdWindow = 4
)

func init() {
	register(&Workload{
		Name:      "incast",
		Desc:      "all threads sending data to the master thread",
		QueueSpec: "(4:1)x1",
		Threads:   incastProducers + 1,
		Build: func(sys *spamer.System, scale int) {
			BuildIncast(sys, IncastParams{
				Producers: incastProducers,
				PerProd:   incastPerProd * scale,
				ProdWork:  incastProdWork,
				ConsWork:  incastConsWork,
				ConsLines: incastConsLines,
			})
		},
	})
}

// IncastParams parameterizes the incast pattern; the Figure 7 trace uses
// a reduced configuration (single producer, single consumer line).
type IncastParams struct {
	Producers int
	PerProd   int
	ProdWork  uint64
	ConsWork  uint64
	ConsLines int
	// Burst > 0 makes producers emit in bursts of the given length
	// followed by an idle gap of Burst*ProdWork cycles, reproducing the
	// two-phase behaviour visible in the Figure 7 trace.
	Burst int
	// OnConsumer, if non-nil, receives the consumer endpoint right
	// after creation (the tracer hooks its lines).
	OnConsumer func(c *spamer.Consumer)
}

// BuildIncast constructs the incast pattern with explicit parameters.
func BuildIncast(sys *spamer.System, p IncastParams) {
	q := sys.NewQueue("incast")
	total := p.Producers * p.PerProd
	for i := 0; i < p.Producers; i++ {
		i := i
		sys.Spawn(fmt.Sprintf("incast/prod%d", i), func(t *spamer.Thread) {
			tx := q.NewProducer(incastProdWindow)
			for n := 0; n < p.PerProd; n++ {
				t.Compute(p.ProdWork)
				tx.Push(t.Proc, uint64(n))
				if p.Burst > 0 && (n+1)%p.Burst == 0 {
					t.Compute(uint64(p.Burst) * p.ProdWork)
				}
			}
		})
	}
	sys.Spawn("incast/master", func(t *spamer.Thread) {
		rx := q.NewConsumer(t.Proc, p.ConsLines)
		if p.OnConsumer != nil {
			p.OnConsumer(rx)
		}
		for n := 0; n < total; n++ {
			rx.Pop(t.Proc)
			t.Compute(p.ConsWork)
		}
	})
}
