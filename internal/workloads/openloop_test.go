package workloads

import (
	"encoding/json"
	"testing"

	"spamer"
	"spamer/internal/traffic"
)

func openChain(proc string) *Shape {
	return &Shape{
		Stages:   3,
		Messages: 400,
		Lines:    4,
		Window:   8,
		Arrival:  &traffic.Spec{Process: proc, Seed: 21, MeanGap: 120, Users: 4},
	}
}

// TestOpenLoopShapeRuns drives each arrival process through a chain on
// both algorithms and checks full delivery.
func TestOpenLoopShapeRuns(t *testing.T) {
	for _, proc := range []string{traffic.Poisson, traffic.MMPP, traffic.Pareto} {
		for _, alg := range []string{spamer.AlgBaseline, spamer.AlgTuned} {
			sh := openChain(proc)
			res := sh.Workload().Run(spamer.Config{Algorithm: alg}, 1)
			if res.Popped != uint64(sh.Messages*(sh.Stages-1)) {
				t.Fatalf("%s/%v: popped %d, want %d", proc, alg, res.Popped, sh.Messages*(sh.Stages-1))
			}
		}
	}
}

// TestOpenLoopDeterministicTicks pins run-to-run determinism of an
// open-loop simulation: same shape, same total ticks and message counts.
func TestOpenLoopDeterministicTicks(t *testing.T) {
	sh := openChain(traffic.MMPP)
	a := sh.Workload().Run(spamer.Config{Algorithm: spamer.AlgTuned}, 1)
	b := sh.Workload().Run(spamer.Config{Algorithm: spamer.AlgTuned}, 1)
	if a.Ticks != b.Ticks || a.Pushed != b.Pushed || a.Popped != b.Popped {
		t.Fatalf("open-loop run not deterministic: %+v vs %+v", a, b)
	}
}

// TestOpenLoopSchedulePaces pins that the arrival schedule, not queue
// backpressure, paces the run: with a mean gap far above the service
// time, total ticks must be at least the scheduled span of the last
// arrival.
func TestOpenLoopSchedulePaces(t *testing.T) {
	sh := &Shape{
		Stages:   2,
		Messages: 200,
		Arrival:  &traffic.Spec{Process: traffic.Poisson, Seed: 5, MeanGap: 500},
	}
	res := sh.Workload().Run(spamer.Config{Algorithm: spamer.AlgBaseline}, 1)
	// 200 arrivals at mean gap 500 span ~100k ticks; a closed-loop run
	// of the same chain finishes in a small fraction of that.
	if res.Ticks < 50000 {
		t.Fatalf("open-loop run finished in %d ticks — schedule did not pace it", res.Ticks)
	}
	closed := &Shape{Stages: 2, Messages: 200}
	fast := closed.Workload().Run(spamer.Config{Algorithm: spamer.AlgBaseline}, 1)
	if fast.Ticks*4 > res.Ticks {
		t.Fatalf("closed-loop %d ticks vs open-loop %d: pacing not visible", fast.Ticks, res.Ticks)
	}
}

// TestOpenLoopFanShape exercises the fan family under open-loop incast
// storms (many producers bursting onto one queue).
func TestOpenLoopFanShape(t *testing.T) {
	sh := &Shape{
		Producers: 4,
		Consumers: 2,
		Messages:  100,
		Arrival: &traffic.Spec{
			Process: traffic.Poisson, Seed: 13, MeanGap: 200,
			StormEvery: 3000, StormBurst: 8,
		},
	}
	res := sh.Workload().Run(spamer.Config{Algorithm: spamer.AlgTuned}, 1)
	if res.Popped != 400 {
		t.Fatalf("fan popped %d, want 400", res.Popped)
	}
}

// TestShapeValidateArrival pins arrival/burst exclusivity and nested
// arrival validation.
func TestShapeValidateArrival(t *testing.T) {
	sh := &Shape{Stages: 2, Messages: 10, Burst: 3,
		Arrival: &traffic.Spec{MeanGap: 10}}
	if err := sh.Validate(); err == nil {
		t.Fatal("burst+arrival should not validate")
	}
	sh = &Shape{Stages: 2, Messages: 10, Arrival: &traffic.Spec{}}
	if err := sh.Validate(); err == nil {
		t.Fatal("invalid nested arrival should not validate")
	}
	sh = &Shape{Stages: 2, Messages: 10, Arrival: &traffic.Spec{MeanGap: 10}}
	if err := sh.Validate(); err != nil {
		t.Fatal(err)
	}
	if name := sh.Name(); name != "synthetic/chain-s2-m10-ol:poisson" {
		t.Fatalf("unexpected open-loop name %q", name)
	}
}

// TestShapeCanonical pins that default spellings and canonical arrival
// forms collapse, so the service cache keys them identically.
func TestShapeCanonical(t *testing.T) {
	a := Shape{Stages: 2, Messages: 5}.Canonical()
	b := Shape{Stages: 2, Messages: 5, Producers: 1, Consumers: 1, Lines: 2, Window: 4}.Canonical()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("default spellings differ: %s vs %s", ja, jb)
	}
	c := Shape{Stages: 2, Messages: 5, Arrival: &traffic.Spec{MeanGap: 9}}.Canonical()
	d := Shape{Stages: 2, Messages: 5, Arrival: &traffic.Spec{Process: "poisson", MeanGap: 9, Users: 1}}.Canonical()
	jc, _ := json.Marshal(c)
	jd, _ := json.Marshal(d)
	if string(jc) != string(jd) {
		t.Fatalf("canonical arrivals differ: %s vs %s", jc, jd)
	}
}
