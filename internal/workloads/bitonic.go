package workloads

import (
	"fmt"

	"spamer"
)

// bitonic: parallel bitonic sort (Batcher [5]). The master scatters data
// blocks to worker threads through a (1:N) queue; workers run the
// compare-exchange network on their blocks (coarse compute) and return
// results through an (M:1) queue; the master merges. Table 2:
// (1:N)x1+(M:1)x1 with varying thread count (default N=M=4).
//
// Both queues are biased — the scatter producer starves its consumers
// (block preparation dominates) and the gather producerss are slow
// relative to the master — so speculation finds little producer data
// waiting and the Figure 8 speedup is near 1.0x.
const (
	bitonicWorkers  = 4
	bitonicBlocks   = 96  // divisible by workers
	bitonicPrep     = 220 // master: prepare one block for scatter
	bitonicSortWork = 900 // worker: compare-exchange network per block
	bitonicMerge    = 260 // master: merge one returned block
	bitonicLines    = 2
)

func init() {
	register(&Workload{
		Name:      "bitonic",
		Desc:      "sort with varying number of threads",
		QueueSpec: fmt.Sprintf("(1:%d)x1+(%d:1)x1", bitonicWorkers, bitonicWorkers),
		Threads:   bitonicWorkers + 1,
		Build: func(sys *spamer.System, scale int) {
			BuildBitonic(sys, bitonicWorkers, bitonicBlocks*scale)
		},
	})
}

// BuildBitonic constructs the bitonic pattern with an explicit worker
// count ("sort with varying number of threads"); blocks must be a
// multiple of workers.
func BuildBitonic(sys *spamer.System, workers, blocks int) {
	if blocks%workers != 0 {
		panic(fmt.Sprintf("bitonic: blocks %d not divisible by workers %d", blocks, workers))
	}
	scatter := sys.NewQueue("bitonic.scatter") // (1:N)
	gather := sys.NewQueue("bitonic.gather")   // (M:1)

	sys.Spawn("bitonic/master", func(t *spamer.Thread) {
		tx := scatter.NewProducer(0)
		rx := gather.NewConsumer(t.Proc, 2*workers)
		// The master merges results as they come back, keeping at most
		// 2*workers blocks in flight — pushing every block before
		// popping any result would wedge the shared 64-entry prodBuf
		// (scatter backlog plus gather results exceed it).
		ahead := 2 * workers
		popped := 0
		for b := 0; b < blocks; b++ {
			t.Compute(bitonicPrep)
			tx.Push(t.Proc, uint64(b))
			if b >= ahead {
				rx.Pop(t.Proc)
				t.Compute(bitonicMerge)
				popped++
			}
		}
		for ; popped < blocks; popped++ {
			rx.Pop(t.Proc)
			t.Compute(bitonicMerge)
		}
	})

	// Workers drain the scatter queue dynamically (speculative rotation
	// distributes blocks approximately, not exactly, evenly).
	work := spamer.NewWorkCounter("bitonic.scatter", blocks)
	for w := 0; w < workers; w++ {
		w := w
		sys.Spawn(fmt.Sprintf("bitonic/worker%d", w), func(t *spamer.Thread) {
			rx := scatter.NewConsumer(t.Proc, bitonicLines)
			tx := gather.NewProducer(0)
			for {
				m, ok := work.Take(rx, t.Proc)
				if !ok {
					return
				}
				t.Compute(bitonicSortWork)
				tx.Push(t.Proc, m.Payload)
			}
		})
	}
}
