package workloads

import (
	"fmt"

	"spamer"
)

// The halo and sweep benchmarks share a 4x4 grid of threads with one
// directed 1:1 queue per neighbour direction: 24 undirected edges x 2
// directions = 48 queues, matching Table 2's (1:1)x48.
const (
	gridW = 4
	gridH = 4

	haloIters   = 120
	haloCompute = 40 // per-iteration local stencil work
	haloLines   = 4

	sweepIters   = 120
	sweepCompute = 100 // per-visit wavefront work
	sweepLines   = 2
)

type gridLinks struct {
	// q[from][to] is the directed queue from thread `from` to `to`.
	q map[[2]int]*spamer.Queue
}

func gid(x, y int) int { return y*gridW + x }

// neighbors returns the 4-neighbourhood of (x, y) inside the grid.
func neighbors(x, y int) [][2]int {
	out := make([][2]int, 0, 4)
	if x > 0 {
		out = append(out, [2]int{x - 1, y})
	}
	if x < gridW-1 {
		out = append(out, [2]int{x + 1, y})
	}
	if y > 0 {
		out = append(out, [2]int{x, y - 1})
	}
	if y < gridH-1 {
		out = append(out, [2]int{x, y + 1})
	}
	return out
}

func buildGridLinks(sys *spamer.System) *gridLinks {
	g := &gridLinks{q: map[[2]int]*spamer.Queue{}}
	for y := 0; y < gridH; y++ {
		for x := 0; x < gridW; x++ {
			from := gid(x, y)
			for _, nb := range neighbors(x, y) {
				to := gid(nb[0], nb[1])
				g.q[[2]int{from, to}] = sys.NewQueue(fmt.Sprintf("link%d-%d", from, to))
			}
		}
	}
	return g
}

func init() {
	register(&Workload{
		Name:         "halo",
		Desc:         "exchange data with neighboring threads",
		QueueSpec:    "(1:1)x48",
		Threads:      gridW * gridH,
		Build:        buildHalo,
		ParallelSafe: true,
	})
	register(&Workload{
		Name:         "sweep",
		Desc:         "data sweeps through a grid of threads corner to corner",
		QueueSpec:    "(1:1)x48",
		Threads:      gridW * gridH,
		Build:        buildSweep,
		ParallelSafe: true,
	})
}

// halo: every iteration each thread pushes a boundary message to every
// neighbour, then pops one from every neighbour, then computes. Because
// all threads push before popping, producer data reaches the routing
// device ahead of consumer requests — plenty of speculation opportunity
// (§4.3 reports 1.33x on halo). A thread owns 2-4 queues, so lines are
// not always drained promptly; the unguided VL prerequests sometimes
// fail, which is why halo is the one benchmark where even the VL baseline
// shows a non-zero push failure rate (Figure 10a).
func buildHalo(sys *spamer.System, scale int) {
	iters := haloIters * scale
	g := buildGridLinks(sys)
	for y := 0; y < gridH; y++ {
		for x := 0; x < gridW; x++ {
			x, y := x, y
			me := gid(x, y)
			sys.Spawn(fmt.Sprintf("halo/%d", me), func(t *spamer.Thread) {
				nbs := neighbors(x, y)
				tx := make([]*spamer.Producer, len(nbs))
				rx := make([]*spamer.Consumer, len(nbs))
				for i, nb := range nbs {
					to := gid(nb[0], nb[1])
					tx[i] = g.q[[2]int{me, to}].NewProducer(4)
					rx[i] = g.q[[2]int{to, me}].NewConsumer(t.Proc, haloLines)
				}
				for it := 0; it < iters; it++ {
					for _, p := range tx {
						p.Push(t.Proc, uint64(it))
					}
					// Interior work overlaps with the boundary
					// messages travelling; the demand requests go out
					// only when the thread turns to its queues — the
					// "looping to pop a queue" prerequest of §4.2.
					// SPAMeR's speculative pushes land during the
					// compute phase instead, ahead of any request.
					t.Compute(haloCompute)
					for _, c := range rx {
						c.Prefetch(t.Proc)
					}
					for _, c := range rx {
						c.Pop(t.Proc)
					}
				}
			})
		}
	}
}

// sweep: a wavefront crosses the grid from the top-left corner to the
// bottom-right (popping from up/left, pushing to down/right), then a
// second wavefront returns (popping from down/right, pushing to
// up/left), using all 48 directed queues. Each thread blocks on its
// predecessors, so data production is on the critical path and
// speculation gains little (Figure 8: ~1.0x on sweep).
func buildSweep(sys *spamer.System, scale int) {
	iters := sweepIters * scale
	g := buildGridLinks(sys)
	for y := 0; y < gridH; y++ {
		for x := 0; x < gridW; x++ {
			x, y := x, y
			me := gid(x, y)
			sys.Spawn(fmt.Sprintf("sweep/%d", me), func(t *spamer.Thread) {
				// Forward-sweep edges: from up/left, to down/right.
				var fromUpLeft, fromDownRight []*spamer.Consumer
				var toDownRight, toUpLeft []*spamer.Producer
				if x > 0 {
					fromUpLeft = append(fromUpLeft, g.q[[2]int{gid(x-1, y), me}].NewConsumer(t.Proc, sweepLines))
					toUpLeft = append(toUpLeft, g.q[[2]int{me, gid(x-1, y)}].NewProducer(2))
				}
				if y > 0 {
					fromUpLeft = append(fromUpLeft, g.q[[2]int{gid(x, y-1), me}].NewConsumer(t.Proc, sweepLines))
					toUpLeft = append(toUpLeft, g.q[[2]int{me, gid(x, y-1)}].NewProducer(2))
				}
				if x < gridW-1 {
					toDownRight = append(toDownRight, g.q[[2]int{me, gid(x+1, y)}].NewProducer(2))
					fromDownRight = append(fromDownRight, g.q[[2]int{gid(x+1, y), me}].NewConsumer(t.Proc, sweepLines))
				}
				if y < gridH-1 {
					toDownRight = append(toDownRight, g.q[[2]int{me, gid(x, y+1)}].NewProducer(2))
					fromDownRight = append(fromDownRight, g.q[[2]int{gid(x, y+1), me}].NewConsumer(t.Proc, sweepLines))
				}
				for it := 0; it < iters; it++ {
					// Forward wavefront.
					for _, c := range fromUpLeft {
						c.Pop(t.Proc)
					}
					t.Compute(sweepCompute)
					for _, p := range toDownRight {
						p.Push(t.Proc, uint64(it))
					}
					// Backward wavefront.
					for _, c := range fromDownRight {
						c.Pop(t.Proc)
					}
					t.Compute(sweepCompute)
					for _, p := range toUpLeft {
						p.Push(t.Proc, uint64(it))
					}
				}
			})
		}
	}
}
