package workloads

import (
	"spamer"
)

// ping-pong: two threads exchange a message back and forth through two
// 1:1 queues (Ember's PingPong motif). Data production sits on the
// critical path — each side can only reply after receiving — so
// speculation has nothing to overlap: "the consumers in those benchmarks
// are always ready ahead while the data production is on the critical
// path" (§4.3). Expected Figure 8 outcome: ~1.0x.
const (
	pingPongRounds  = 1200
	pingPongCompute = 60 // per-hop processing before replying
	pingPongLines   = 2
)

func init() {
	register(&Workload{
		Name:         "ping-pong",
		Desc:         "data back and forth between two threads",
		QueueSpec:    "(1:1)x2",
		Threads:      2,
		Build:        buildPingPong,
		ParallelSafe: true,
	})
}

func buildPingPong(sys *spamer.System, scale int) {
	rounds := pingPongRounds * scale
	ab := sys.NewQueue("ping") // A -> B
	ba := sys.NewQueue("pong") // B -> A

	sys.Spawn("ping-pong/A", func(t *spamer.Thread) {
		tx := ab.NewProducer(0)
		rx := ba.NewConsumer(t.Proc, pingPongLines)
		for i := 0; i < rounds; i++ {
			tx.Push(t.Proc, uint64(i))
			rx.Pop(t.Proc)
			t.Compute(pingPongCompute)
		}
	})
	sys.Spawn("ping-pong/B", func(t *spamer.Thread) {
		rx := ab.NewConsumer(t.Proc, pingPongLines)
		tx := ba.NewProducer(0)
		for i := 0; i < rounds; i++ {
			m := rx.Pop(t.Proc)
			t.Compute(pingPongCompute)
			tx.Push(t.Proc, m.Payload)
		}
	})
}
