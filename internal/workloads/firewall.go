package workloads

import (
	"spamer"
)

// firewall: filter and dispatch packages (after Wang et al. [46]).
//
//	rx --(1:1)--> classify --(1:1)--> fw1 --\
//	                      \--(1:1)--> fw2 ---+--(2:1)--> sink
//
// Three 1:1 queues plus one 2:1 merge queue: Table 2's (1:1)x3+(2:1)x1,
// five threads. Filter workers are lightweight relative to the request
// round trip, so speculation keeps them on the fast path.
const (
	fwPackets   = 1600 // even, so fw1/fw2 split evenly
	fwRxWork    = 20   // receive/checksum
	fwClsWork   = 50   // classification
	fwFilter    = 65   // per-packet filtering
	fwSinkWork  = 20   // verdict logging
	fwLines     = 4
	fwSinkLines = 8
)

func init() {
	register(&Workload{
		Name:      "firewall",
		Desc:      "filter and dispatch packages",
		QueueSpec: "(1:1)x3+(2:1)x1",
		Threads:   5,
		Build:     buildFirewall,
	})
}

func buildFirewall(sys *spamer.System, scale int) {
	n := fwPackets * scale
	qRx := sys.NewQueue("fw.rx")     // rx -> classify (1:1)
	qF1 := sys.NewQueue("fw.lane1")  // classify -> fw1 (1:1)
	qF2 := sys.NewQueue("fw.lane2")  // classify -> fw2 (1:1)
	qOut := sys.NewQueue("fw.merge") // fw1+fw2 -> sink (2:1)

	sys.Spawn("firewall/rx", func(t *spamer.Thread) {
		tx := qRx.NewProducer(0)
		for i := 0; i < n; i++ {
			t.Compute(fwRxWork)
			tx.Push(t.Proc, uint64(i))
		}
	})

	sys.Spawn("firewall/classify", func(t *spamer.Thread) {
		rx := qRx.NewConsumer(t.Proc, fwLines)
		lanes := []*spamer.Producer{qF1.NewProducer(0), qF2.NewProducer(0)}
		for i := 0; i < n; i++ {
			m := rx.Pop(t.Proc)
			t.Compute(fwClsWork)
			// Deterministic 5-tuple hash stand-in: alternate lanes.
			lanes[int(m.Payload)%2].Push(t.Proc, m.Payload)
		}
	})

	for lane, q := range []*spamer.Queue{qF1, qF2} {
		lane, q := lane, q
		sys.Spawn("firewall/fw"+string(rune('1'+lane)), func(t *spamer.Thread) {
			rx := q.NewConsumer(t.Proc, fwLines)
			tx := qOut.NewProducer(0)
			for i := 0; i < n/2; i++ {
				m := rx.Pop(t.Proc)
				t.Compute(fwFilter)
				tx.Push(t.Proc, m.Payload)
			}
		})
	}

	sys.Spawn("firewall/sink", func(t *spamer.Thread) {
		rx := qOut.NewConsumer(t.Proc, fwSinkLines)
		for i := 0; i < n; i++ {
			rx.Pop(t.Proc)
			t.Compute(fwSinkWork)
		}
	})
}
