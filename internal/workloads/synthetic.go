package workloads

import (
	"fmt"

	"spamer"
	"spamer/internal/traffic"
	"spamer/internal/vlq"
	"spamer/internal/workloads/dag"
)

// Shape parameterizes a synthetic workload: a family of small pipeline
// chains and fan-in/fan-out patterns whose structure is entirely data —
// producer/consumer counts, per-endpoint buffering, window sizes, burst
// patterns, and compute grain. The verification oracle's randomized
// campaign (internal/oracle/gen) draws Shapes at random and runs them
// under every invariant; the struct is JSON-serializable so a failing
// configuration can be persisted verbatim as a repro file.
//
// Two sub-families exist:
//
//   - Stages >= 2: a 1:1 pipeline chain of Stages threads connected by
//     Stages-1 queues (the FIR idiom). Strictly 1:1, so ParallelSafe.
//   - Stages == 0: a (Producers:Consumers)x1 fan over one shared queue,
//     drained through a WorkCounter when Consumers > 1. Not
//     parallel-safe (the multi-domain fabric is restricted to 1:1).
type Shape struct {
	// Stages selects the chain family when >= 2 (0 selects the fan).
	Stages int `json:"stages,omitempty"`
	// Producers/Consumers shape the fan family; both default to 1.
	Producers int `json:"producers,omitempty"`
	Consumers int `json:"consumers,omitempty"`

	// Messages is the message count per producer endpoint (the chain's
	// source is its single producer).
	Messages int `json:"messages"`

	// ProdWork/ConsWork are per-message compute cycles on each side.
	ProdWork uint64 `json:"prod_work,omitempty"`
	ConsWork uint64 `json:"cons_work,omitempty"`

	// Lines sizes each consumer endpoint's line page (0 = 2).
	Lines int `json:"lines,omitempty"`
	// Window bounds each producer's in-flight pushes (0 = library default).
	Window int `json:"window,omitempty"`

	// Burst, when > 0, makes producers emit in bursts of Burst messages
	// separated by BurstGap idle cycles (0 gap = 40x the per-message
	// work) — the bursty arrival pattern that stresses delay prediction.
	Burst    int    `json:"burst,omitempty"`
	BurstGap uint64 `json:"burst_gap,omitempty"`

	// Arrival, when set, switches producers to open-loop: each producer
	// follows the seeded arrival schedule drawn from this spec (its
	// endpoint id selects the stream) instead of pushing as fast as the
	// queue admits. Mutually exclusive with Burst — the arrival process
	// subsumes burstiness. See internal/traffic for the determinism
	// contract that keeps open-loop shapes parallel-safe.
	Arrival *traffic.Spec `json:"arrival,omitempty"`

	// DAG, when set, selects a third family: an arbitrary
	// producer/consumer DAG described by the internal/workloads/dag
	// DSL (named stages, replica counts, compute distributions, edge
	// fan-in/fan-out policies, optional trace replay). Mutually
	// exclusive with every synthetic field above — a DAG shape is
	// entirely described by its spec.
	DAG *dag.Spec `json:"dag,omitempty"`
}

// Validate rejects shapes that cannot build a runnable workload.
func (sh *Shape) Validate() error {
	if sh.DAG != nil {
		if sh.Stages != 0 || sh.Producers != 0 || sh.Consumers != 0 || sh.Messages != 0 ||
			sh.ProdWork != 0 || sh.ConsWork != 0 || sh.Lines != 0 || sh.Window != 0 ||
			sh.Burst != 0 || sh.BurstGap != 0 || sh.Arrival != nil {
			return fmt.Errorf("workloads: dag shapes set no synthetic fields")
		}
		return sh.DAG.Validate()
	}
	if sh.Messages <= 0 {
		return fmt.Errorf("workloads: shape needs messages > 0")
	}
	if sh.Stages == 1 || sh.Stages < 0 {
		return fmt.Errorf("workloads: shape stages must be 0 or >= 2, got %d", sh.Stages)
	}
	if sh.Stages >= 2 && (sh.Producers > 1 || sh.Consumers > 1) {
		return fmt.Errorf("workloads: chain shapes are strictly 1:1")
	}
	if sh.Producers < 0 || sh.Consumers < 0 || sh.Lines < 0 || sh.Window < 0 || sh.Burst < 0 {
		return fmt.Errorf("workloads: negative shape parameter")
	}
	if sh.Arrival != nil {
		if sh.Burst > 0 {
			return fmt.Errorf("workloads: burst and arrival are mutually exclusive")
		}
		if err := sh.Arrival.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Canonical returns the shape with dual spellings of defaults collapsed
// (Producers/Consumers 1 -> 0, Lines 2 -> 0, Window vlq default -> 0)
// and the arrival spec, if any, in its canonical form. Two shapes that
// build identical workloads hash identically through it.
func (sh Shape) Canonical() Shape {
	if sh.DAG != nil {
		d := sh.DAG.Canonical()
		return Shape{DAG: &d}
	}
	c := sh
	if c.Producers == 1 {
		c.Producers = 0
	}
	if c.Consumers == 1 {
		c.Consumers = 0
	}
	if c.Lines == 2 {
		c.Lines = 0
	}
	if c.Window == vlq.DefaultWindow {
		c.Window = 0
	}
	if c.Burst == 0 {
		c.BurstGap = 0
	}
	if sh.Arrival != nil {
		a := sh.Arrival.Canonical()
		c.Arrival = &a
		c.Burst, c.BurstGap = 0, 0
	}
	return c
}

// ParallelSafe reports whether the shape builds a strictly-1:1 workload
// that may run on the multi-domain fabric.
func (sh *Shape) ParallelSafe() bool {
	if sh.DAG != nil {
		return sh.DAG.ParallelSafe()
	}
	return sh.Stages >= 2
}

// Name returns a compact diagnostic name encoding the shape.
func (sh *Shape) Name() string {
	if sh.DAG != nil {
		return sh.DAG.WorkloadName()
	}
	suffix := ""
	if sh.Arrival != nil {
		suffix = "-ol:" + sh.Arrival.Name()
	}
	if sh.Stages >= 2 {
		return fmt.Sprintf("synthetic/chain-s%d-m%d%s", sh.Stages, sh.Messages, suffix)
	}
	p, c := sh.fan()
	return fmt.Sprintf("synthetic/fan-%d:%d-m%d%s", p, c, sh.Messages, suffix)
}

func (sh *Shape) fan() (producers, consumers int) {
	producers, consumers = sh.Producers, sh.Consumers
	if producers == 0 {
		producers = 1
	}
	if consumers == 0 {
		consumers = 1
	}
	return producers, consumers
}

func (sh *Shape) lines() int {
	if sh.Lines == 0 {
		return 2
	}
	return sh.Lines
}

// burstGap returns the inter-burst idle time.
func (sh *Shape) burstGap() uint64 {
	if sh.BurstGap > 0 {
		return sh.BurstGap
	}
	return 40 * (sh.ProdWork + 1)
}

// Workload materializes the shape as a runnable workload. It is not
// registered in the benchmark registry — shapes are anonymous,
// generated, and exist only for verification runs.
func (sh *Shape) Workload() *Workload {
	if sh.DAG != nil {
		return &Workload{
			Name:         sh.Name(),
			Desc:         "generated DAG scenario",
			QueueSpec:    "dag",
			Threads:      sh.DAG.Threads(),
			Build:        sh.DAG.Build,
			ParallelSafe: sh.DAG.ParallelSafe(),
		}
	}
	threads := sh.Stages
	build := sh.buildChain
	if sh.Stages < 2 {
		p, c := sh.fan()
		threads = p + c
		build = sh.buildFan
	}
	return &Workload{
		Name:         sh.Name(),
		Desc:         "generated verification shape",
		QueueSpec:    "synthetic",
		Threads:      threads,
		Build:        build,
		ParallelSafe: sh.ParallelSafe(),
	}
}

// produce pushes n messages with the shape's work/burst pattern. The
// payload mixes the producer id into a multiplicative hash so corrupted
// or cross-wired deliveries cannot alias to a valid payload by accident.
func (sh *Shape) produce(t *spamer.Thread, tx *spamer.Producer, id, n int) {
	if sh.Arrival != nil {
		sh.produceOpen(t, tx, id, n)
		return
	}
	for i := 0; i < n; i++ {
		if sh.ProdWork > 0 {
			t.Compute(sh.ProdWork)
		}
		if sh.Burst > 0 && i > 0 && i%sh.Burst == 0 {
			t.Compute(sh.burstGap())
		}
		tx.Push(t.Proc, payloadFor(id, i))
	}
}

// arrivalChunk sizes the pooled arrival-record block each open-loop
// producer refills in place — large enough to amortize the refill loop,
// small enough to stay cache-resident.
const arrivalChunk = 256

// produceOpen pushes n messages on the open-loop schedule drawn from
// sh.Arrival: the producer idles until each arrival tick, then pushes.
// A producer that falls behind (the queue window stalled it past the
// next arrival) pushes immediately — the schedule never slips, which is
// the open-loop contract. One chunk buffer is reused for the whole run,
// so the steady state allocates nothing per message.
func (sh *Shape) produceOpen(t *spamer.Thread, tx *spamer.Producer, id, n int) {
	src := traffic.NewSource(*sh.Arrival, id)
	buf := make([]uint64, arrivalChunk)
	if n < len(buf) {
		buf = buf[:n]
	}
	done := 0
	for done < n {
		src.Fill(buf)
		for _, at := range buf {
			if done >= n {
				break
			}
			if now := t.Now(); now < at {
				t.Compute(at - now)
			}
			if sh.ProdWork > 0 {
				t.Compute(sh.ProdWork)
			}
			tx.Push(t.Proc, payloadFor(id, done))
			done++
		}
	}
}

// payloadFor is the canonical payload of the i-th message of producer
// id — a Fibonacci-hash spread so every (id, i) pair maps to a distinct,
// non-trivial 64-bit value.
func payloadFor(id, i int) uint64 {
	return (uint64(id)<<32 | uint64(uint32(i))) * 0x9e3779b97f4a7c15
}

func (sh *Shape) buildChain(sys *spamer.System, scale int) {
	n := sh.Messages * scale
	queues := make([]*spamer.Queue, sh.Stages-1)
	for i := range queues {
		queues[i] = sys.NewQueue(fmt.Sprintf("chain.q%d", i))
	}
	sys.Spawn("chain/source", func(t *spamer.Thread) {
		tx := queues[0].NewProducer(sh.Window)
		sh.produce(t, tx, 0, n)
	})
	for s := 1; s < sh.Stages-1; s++ {
		s := s
		sys.Spawn(fmt.Sprintf("chain/stage%d", s), func(t *spamer.Thread) {
			rx := queues[s-1].NewConsumer(t.Proc, sh.lines())
			tx := queues[s].NewProducer(sh.Window)
			for i := 0; i < n; i++ {
				rx.Pop(t.Proc)
				if sh.ConsWork > 0 {
					t.Compute(sh.ConsWork)
				}
				tx.Push(t.Proc, payloadFor(0, i))
			}
		})
	}
	sys.Spawn("chain/sink", func(t *spamer.Thread) {
		rx := queues[len(queues)-1].NewConsumer(t.Proc, sh.lines())
		for i := 0; i < n; i++ {
			rx.Pop(t.Proc)
			if sh.ConsWork > 0 {
				t.Compute(sh.ConsWork)
			}
		}
	})
}

func (sh *Shape) buildFan(sys *spamer.System, scale int) {
	nprod, ncons := sh.fan()
	per := sh.Messages * scale
	total := per * nprod
	q := sys.NewQueue("fan.q")
	for p := 0; p < nprod; p++ {
		p := p
		sys.Spawn(fmt.Sprintf("fan/prod%d", p), func(t *spamer.Thread) {
			tx := q.NewProducer(sh.Window)
			sh.produce(t, tx, p, per)
		})
	}
	if ncons == 1 {
		sys.Spawn("fan/cons", func(t *spamer.Thread) {
			rx := q.NewConsumer(t.Proc, sh.lines())
			for i := 0; i < total; i++ {
				rx.Pop(t.Proc)
				if sh.ConsWork > 0 {
					t.Compute(sh.ConsWork)
				}
			}
		})
		return
	}
	// The per-consumer share of an M:N queue is not static; drain
	// through a shared WorkCounter, as bitonic/pipeline do.
	wc := spamer.NewWorkCounter("fan", total)
	for c := 0; c < ncons; c++ {
		c := c
		sys.Spawn(fmt.Sprintf("fan/cons%d", c), func(t *spamer.Thread) {
			rx := q.NewConsumer(t.Proc, sh.lines())
			for {
				_, ok := wc.Take(rx, t.Proc)
				if !ok {
					return
				}
				if sh.ConsWork > 0 {
					t.Compute(sh.ConsWork)
				}
			}
		})
	}
}
