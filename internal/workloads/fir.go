package workloads

import (
	"fmt"

	"spamer"
)

// FIR: samples stream through a 10-stage FIR filter, one thread per tap
// stage, nine 1:1 queues in a chain. Each stage does a small
// multiply-accumulate per sample, far below the request round trip —
// the paper's highest-speedup benchmark (2.59x with 0-delay).
//
// The source emits samples in windows separated by gaps (sensor frames
// arriving in bursts). The stages therefore alternate between a fast
// path (next sample already pushed into the local line) and a slow path
// (stall at a window boundary). The adaptive algorithm's multiplicative
// delay adjustment overshoots on that alternation and "easily learns the
// period of slow path instead of the fast path" (§4.3); the tuned
// algorithm's additive scanning recovers the fast path.
const (
	firStages  = 10 // threads; queues = firStages-1 = 9
	firSamples = 1800
	firMAC     = 20 // per-sample multiply-accumulate at each stage
	firSrcWork = 14 // per-sample generation
	firLines   = 2

	// Every firReloadEvery samples a stage reloads its coefficient
	// block (adaptive-filter style), stalling firReloadCost cycles.
	// This is the fast-path/slow-path alternation of §4.3: the
	// adaptive algorithm's multiplicative delay adjustment overshoots
	// on the long interval and relearns over several samples, while
	// the tuned algorithm's halved-delay probes recover quickly.
	firReloadEvery = 96
	firReloadCost  = 600
)

func init() {
	register(&Workload{
		Name:         "FIR",
		Desc:         "data streams through 10-stage FIR filter",
		QueueSpec:    "(1:1)x9",
		Threads:      firStages,
		Build:        buildFIR,
		ParallelSafe: true,
	})
}

func buildFIR(sys *spamer.System, scale int) {
	n := firSamples * scale
	queues := make([]*spamer.Queue, firStages-1)
	for i := range queues {
		queues[i] = sys.NewQueue(fmt.Sprintf("fir.q%d", i))
	}

	sys.Spawn("fir/source", func(t *spamer.Thread) {
		tx := queues[0].NewProducer(0)
		for i := 0; i < n; i++ {
			tx.PushAfter(t.Proc, firSrcWork, uint64(i))
		}
	})

	for s := 1; s < firStages-1; s++ {
		s := s
		sys.Spawn(fmt.Sprintf("fir/stage%d", s), func(t *spamer.Thread) {
			rx := queues[s-1].NewConsumer(t.Proc, firLines)
			tx := queues[s].NewProducer(0)
			acc := uint64(0)
			for i := 0; i < n; i++ {
				m := rx.Pop(t.Proc)
				acc += m.Payload // tap accumulate
				tx.PushAfter(t.Proc, firMAC, acc)
				if (i+s*7)%firReloadEvery == 0 {
					t.Compute(firReloadCost) // coefficient block reload
				}
			}
		})
	}

	sys.Spawn("fir/sink", func(t *spamer.Thread) {
		rx := queues[firStages-2].NewConsumer(t.Proc, firLines)
		for i := 0; i < n; i++ {
			rx.Pop(t.Proc)
			t.Compute(firMAC)
			if i%firReloadEvery == 0 {
				t.Compute(firReloadCost)
			}
		}
	})
}
