package dag

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// LoadTraceFile reads a recorded trace: a JSON array of TraceEvent.
func LoadTraceFile(path string) ([]TraceEvent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var events []TraceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, fmt.Errorf("dag: trace %s: %w", path, err)
	}
	return events, nil
}

// LoadTraces resolves every stage's ReplayFile (relative paths against
// dir) into its Replay events. Stages with inline Replay already set
// are left alone, so a resolved spec round-trips. Canonical hashing is
// always over the resolved events — see Canonical.
func (s *Spec) LoadTraces(dir string) error {
	for i := range s.Stages {
		st := &s.Stages[i]
		if st.ReplayFile == "" || len(st.Replay) > 0 {
			continue
		}
		path := st.ReplayFile
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		events, err := LoadTraceFile(path)
		if err != nil {
			return fmt.Errorf("dag: stage %q: %w", st.Name, err)
		}
		if len(events) == 0 {
			return fmt.Errorf("dag: stage %q: trace %s is empty", st.Name, st.ReplayFile)
		}
		st.Replay = events
	}
	return nil
}
