package dag

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spamer"
	"spamer/internal/traffic"
)

// diamond is a valid four-stage reference DAG used across tests: one
// source broadcasting into two parallel branches that re-merge at a
// sink (the classic deadlock-prone fan-out/fan-in shape).
func diamond() *Spec {
	return &Spec{
		Name: "diamond",
		Stages: []Stage{
			{Name: "src", Replicas: 1, Messages: 24, Work: &Dist{Mean: 8}},
			{Name: "left", Replicas: 1, Work: &Dist{Mean: 12}},
			{Name: "right", Replicas: 1, Work: &Dist{Mean: 20}},
			{Name: "sink", Replicas: 1},
		},
		Edges: []Edge{
			{From: "src", To: "left"},
			{From: "src", To: "right"},
			{From: "left", To: "sink"},
			{From: "right", To: "sink"},
		},
	}
}

// TestValidateErrors is the table-driven error-path battery over the
// DSL's Validate rules (mirroring experiments.Spec.Validate coverage):
// every malformed spec must be rejected with a diagnostic mentioning
// the offending construct.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec) // applied to a valid diamond
		want string      // substring of the error
	}{
		{"no stages", func(s *Spec) { s.Stages = nil }, "at least one stage"},
		{"unnamed stage", func(s *Spec) { s.Stages[1].Name = "" }, "has no name"},
		{"duplicate stage", func(s *Spec) { s.Stages[2].Name = "left" }, "duplicate stage"},
		{"zero replicas", func(s *Spec) { s.Stages[1].Replicas = 0 }, "replicas >= 1"},
		{"negative replicas", func(s *Spec) { s.Stages[1].Replicas = -3 }, "replicas >= 1"},
		{"replica cap", func(s *Spec) {
			s.Stages[0].Replicas = MaxReplicas + 1
			s.Stages[1].Replicas = MaxReplicas + 1
			s.Edges = s.Edges[:1]
			s.Edges[0].Policy = PolicyPair
		}, "exceeds cap"},
		{"negative messages", func(s *Spec) { s.Stages[0].Messages = -1 }, "negative messages"},
		{"dangling edge from", func(s *Spec) { s.Edges[0].From = "ghost" }, `unknown stage "ghost"`},
		{"dangling edge to", func(s *Spec) { s.Edges[3].To = "ghost" }, `unknown stage "ghost"`},
		{"self loop", func(s *Spec) { s.Edges[0].To = "src" }, "self-loop"},
		{"duplicate edge", func(s *Spec) { s.Edges[1].To = "left" }, "duplicate edge"},
		{"cycle", func(s *Spec) {
			s.Edges = append(s.Edges, Edge{From: "sink", To: "left"})
		}, "cycle through stage"},
		{"negative window", func(s *Spec) { s.Edges[0].Window = -1 }, "negative parameter"},
		{"lines cap", func(s *Spec) { s.Edges[0].Lines = MaxLines + 1 }, "exceed cap"},
		{"window cap", func(s *Spec) { s.Edges[0].Window = MaxWindow + 1 }, "exceed cap"},
		{"unknown policy", func(s *Spec) { s.Edges[0].Policy = "mesh" }, `unknown policy "mesh"`},
		{"pair replica mismatch", func(s *Spec) {
			s.Stages[1].Replicas = 2
			s.Edges[0].Policy = PolicyPair
		}, "needs equal replicas"},
		{"source without driver", func(s *Spec) { s.Stages[0].Messages = 0 }, "needs messages or replay"},
		{"messages and replay", func(s *Spec) {
			s.Stages[0].Replay = []TraceEvent{{At: 1}}
		}, "both messages and replay"},
		{"arrival and replay", func(s *Spec) {
			s.Stages[0].Messages = 0
			s.Stages[0].Replay = []TraceEvent{{At: 1}}
			s.Stages[0].Arrival = &traffic.Spec{MeanGap: 50}
		}, "both arrival and replay"},
		{"interior messages", func(s *Spec) { s.Stages[3].Messages = 5 }, "must not set messages"},
		{"interior arrival", func(s *Spec) {
			s.Stages[3].Arrival = &traffic.Spec{MeanGap: 50}
		}, "must not set an arrival"},
		{"interior replay", func(s *Spec) {
			s.Stages[3].Replay = []TraceEvent{{At: 1}}
		}, "must not set replay"},
		{"unsorted replay", func(s *Spec) {
			s.Stages[0].Messages = 0
			s.Stages[0].Replay = []TraceEvent{{At: 9}, {At: 3}}
		}, "non-decreasing"},
		{"unresolved replay file", func(s *Spec) {
			s.Stages[0].ReplayFile = "trace.json"
		}, "unresolved replay file"},
		{"bad dist kind", func(s *Spec) {
			s.Stages[1].Work = &Dist{Kind: "zipf", Mean: 4}
		}, `unknown distribution kind "zipf"`},
		{"uniform min>max", func(s *Spec) {
			s.Stages[1].Work = &Dist{Kind: DistUniform, Min: 9, Max: 3}
		}, "min <= max"},
		{"uniform with mean", func(s *Spec) {
			s.Stages[1].Work = &Dist{Kind: DistUniform, Mean: 4, Max: 9}
		}, "uses min/max"},
		{"exp without mean", func(s *Spec) {
			s.Stages[1].Work = &Dist{Kind: DistExp}
		}, "needs mean > 0"},
		{"exp with bounds", func(s *Spec) {
			s.Stages[1].Work = &Dist{Kind: DistExp, Mean: 4, Max: 9}
		}, "uses mean only"},
		{"const with bounds", func(s *Spec) {
			s.Stages[1].Work = &Dist{Mean: 4, Min: 1, Max: 9}
		}, "uses mean only"},
		{"work cap", func(s *Spec) {
			s.Stages[1].Work = &Dist{Mean: MaxWork + 1}
		}, "exceeds cap"},
		{"bad arrival", func(s *Spec) {
			s.Stages[0].Arrival = &traffic.Spec{MeanGap: 0}
		}, ""},
		{"dynamic with second input", func(s *Spec) {
			s.Stages[3].Replicas = 2
			s.Edges[2].Policy = PolicyShared
			s.Edges[3].Policy = PolicyPair
			s.Stages[2].Replicas = 2
			s.Edges[1].Policy = PolicyShard
		}, "must be its only input"},
		{"dynamic with output", func(s *Spec) {
			s.Stages[1].Replicas = 4
			s.Edges[0].Policy = PolicyShared
			s.Edges[2].Policy = PolicyShard
		}, "must be a sink"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := diamond()
			if err := s.Validate(); err != nil {
				t.Fatalf("diamond baseline invalid: %v", err)
			}
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("expected validation error")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestShardCount checks the shard routing arithmetic: counts must
// partition each producer's items exactly and stay balanced.
func TestShardCount(t *testing.T) {
	for _, k := range []int{0, 1, 5, 16, 17} {
		for _, n := range []int{1, 2, 3, 4, 7} {
			for p := 0; p < 5; p++ {
				sum, max, min := 0, 0, int(^uint(0)>>1)
				for c := 0; c < n; c++ {
					got := shardCount(k, p, c, n)
					want := 0
					for j := 0; j < k; j++ {
						if (j+p)%n == c {
							want++
						}
					}
					if got != want {
						t.Fatalf("shardCount(%d,%d,%d,%d) = %d, want %d", k, p, c, n, got, want)
					}
					sum += got
					if got > max {
						max = got
					}
					if got < min {
						min = got
					}
				}
				if sum != k {
					t.Fatalf("shard counts don't partition: k=%d n=%d p=%d sum=%d", k, n, p, sum)
				}
				if k >= n && max-min > 1 {
					t.Fatalf("shard counts unbalanced: k=%d n=%d p=%d spread=%d", k, n, p, max-min)
				}
			}
		}
	}
}

// TestCountPropagation pins static count propagation through a mixed
// pair/shard/shared topology at scale 2.
func TestCountPropagation(t *testing.T) {
	s := &Spec{
		Name: "mix",
		Stages: []Stage{
			{Name: "gen", Replicas: 2, Messages: 10},
			{Name: "work", Replicas: 3},
			{Name: "merge", Replicas: 1},
		},
		Edges: []Edge{
			{From: "gen", To: "work", Policy: PolicyShard},
			{From: "work", To: "merge", Policy: PolicyShard},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := s.newPlan(2)
	if err != nil {
		t.Fatal(err)
	}
	// 2 producers x 20 items shard onto 3 consumers.
	wantWork := []int{0, 0, 0}
	for pr := 0; pr < 2; pr++ {
		for j := 0; j < 20; j++ {
			wantWork[(j+pr)%3]++
		}
	}
	for r, want := range wantWork {
		if p.counts[1][r] != want {
			t.Errorf("work replica %d count = %d, want %d", r, p.counts[1][r], want)
		}
	}
	if got := p.counts[2][0]; got != 40 {
		t.Errorf("merge count = %d, want 40", got)
	}
	if got := s.TotalMessages(2); got != 80 {
		t.Errorf("TotalMessages(2) = %d, want 80", got)
	}
	if !s.ParallelSafe() {
		t.Error("shard+shared-1:1 DAG should be parallel-safe")
	}
}

// runSpec builds and runs sp under cfg, returning the trace hash and
// result.
func runSpec(t *testing.T, sp *Spec, cfg spamer.Config, scale int) (uint64, spamer.Result) {
	t.Helper()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	sys := spamer.NewSystem(cfg)
	sys.EnableDispatchTrace()
	sp.Build(sys, scale)
	res := sys.Run()
	return sys.DispatchTraceHash(), res
}

// TestRunDiamond drives the diamond end to end under VL and SPAMeR:
// message conservation, exact queue totals, and cross-kernel trace
// equality at every domain count.
func TestRunDiamond(t *testing.T) {
	for _, alg := range []string{spamer.AlgBaseline, spamer.AlgTuned} {
		sp := diamond()
		_, res := runSpec(t, sp, spamer.Config{Algorithm: alg}, 2)
		want := uint64(sp.TotalMessages(2))
		if res.Pushed != want || res.Popped != want {
			t.Fatalf("%s: pushed/popped = %d/%d, want %d", alg, res.Pushed, res.Popped, want)
		}

		if !sp.ParallelSafe() {
			t.Fatal("diamond should be parallel-safe")
		}
		var first uint64
		for i, domains := range []int{1, 2, 4, 8} {
			h, pres := runSpec(t, sp, spamer.Config{Algorithm: alg, Domains: domains}, 2)
			if pres.Pushed != want || pres.Popped != want {
				t.Fatalf("%s domains=%d: pushed/popped = %d/%d, want %d",
					alg, domains, pres.Pushed, pres.Popped, want)
			}
			if i == 0 {
				first = h
			} else if h != first {
				t.Fatalf("%s domains=%d: trace hash %#x != domains=1 hash %#x", alg, domains, h, first)
			}
		}
	}
}

// TestRunDynamicSink covers the WorkCounter drain: an M:N shared edge
// whose consumers split a dynamic share.
func TestRunDynamicSink(t *testing.T) {
	sp := &Spec{
		Name: "fanin",
		Stages: []Stage{
			{Name: "gen", Replicas: 3, Messages: 15, Work: &Dist{Kind: DistUniform, Min: 1, Max: 30}},
			{Name: "sink", Replicas: 2, Work: &Dist{Mean: 9}},
		},
		Edges: []Edge{{From: "gen", To: "sink"}},
	}
	if sp.ParallelSafe() {
		t.Fatal("dynamic shared drain must not be parallel-safe")
	}
	h1, res := runSpec(t, sp, spamer.Config{Algorithm: spamer.AlgTuned}, 1)
	if res.Pushed != 45 || res.Popped != 45 {
		t.Fatalf("pushed/popped = %d/%d, want 45", res.Pushed, res.Popped)
	}
	h2, _ := runSpec(t, sp, spamer.Config{Algorithm: spamer.AlgTuned}, 1)
	if h1 != h2 {
		t.Fatalf("repeat run diverged: %#x vs %#x", h1, h2)
	}
}

// TestRunReplay drives a replayed source: counts come from the trace
// (scale must not multiply them) and emissions respect timestamps.
func TestRunReplay(t *testing.T) {
	events := make([]TraceEvent, 30)
	for i := range events {
		events[i] = TraceEvent{At: uint64(i * 100), Work: 5, Size: uint64(i % 7)}
	}
	sp := &Spec{
		Name: "replayed",
		Stages: []Stage{
			{Name: "intake", Replicas: 2, Replay: events, WorkPerByte: 3},
			{Name: "out", Replicas: 2},
		},
		Edges: []Edge{{From: "intake", To: "out", Policy: PolicyPair}},
	}
	_, res := runSpec(t, sp, spamer.Config{Algorithm: spamer.AlgTuned}, 4)
	if res.Pushed != 30 || res.Popped != 30 {
		t.Fatalf("replay pushed/popped = %d/%d, want 30 (scale must not multiply traces)",
			res.Pushed, res.Popped)
	}
	// The last event fires at tick 2900; the run can't finish earlier.
	if res.Ticks < 2900 {
		t.Fatalf("replay finished at tick %d, before the last recorded timestamp", res.Ticks)
	}
}

// TestRunArrival drives an open-loop DAG source through the traffic
// engine and checks determinism.
func TestRunArrival(t *testing.T) {
	sp := &Spec{
		Name: "openloop",
		Stages: []Stage{
			{Name: "in", Replicas: 2, Messages: 20,
				Arrival: &traffic.Spec{Process: traffic.Poisson, MeanGap: 120, Seed: 7}},
			{Name: "out", Replicas: 2},
		},
		Edges: []Edge{{From: "in", To: "out", Policy: PolicyPair}},
	}
	h1, res := runSpec(t, sp, spamer.Config{Algorithm: spamer.AlgTuned}, 1)
	if res.Pushed != 40 || res.Popped != 40 {
		t.Fatalf("pushed/popped = %d/%d, want 40", res.Pushed, res.Popped)
	}
	h2, _ := runSpec(t, sp, spamer.Config{Algorithm: spamer.AlgTuned}, 1)
	if h1 != h2 {
		t.Fatalf("open-loop run not deterministic: %#x vs %#x", h1, h2)
	}
}

// TestCanonical pins the default-collapsing rules and JSON round-trip
// stability of canonical specs.
func TestCanonical(t *testing.T) {
	s := diamond()
	s.Seed = 99 // dead: no uniform/exp dists
	s.Edges[0].Lines = 2
	s.Edges[1].Window = 4 // vlq.DefaultWindow
	s.Edges[2].Policy = PolicyShared
	s.Stages[3].Work = &Dist{Kind: DistConst}
	c := s.Canonical()
	if c.Seed != 0 {
		t.Error("dead seed not collapsed")
	}
	if c.Edges[0].Lines != 0 || c.Edges[1].Window != 0 {
		t.Error("default lines/window not collapsed")
	}
	for i, e := range c.Edges {
		if e.Policy != PolicyPair {
			t.Errorf("edge %d: 1:1 policy = %q, want pair", i, e.Policy)
		}
	}
	if c.Stages[3].Work != nil {
		t.Error("no-op work dist not collapsed")
	}
	if c.Stages[0].Work == nil || c.Stages[0].Work.Mean != 8 {
		t.Error("real work dist lost")
	}
	// Canonical must be idempotent and JSON-stable.
	c2 := c.Canonical()
	j1, _ := json.Marshal(c)
	j2, _ := json.Marshal(c2)
	if string(j1) != string(j2) {
		t.Errorf("canonical not idempotent:\n%s\n%s", j1, j2)
	}
	// Live seed survives.
	s2 := diamond()
	s2.Seed = 99
	s2.Stages[1].Work = &Dist{Kind: DistExp, Mean: 12}
	if got := s2.Canonical().Seed; got != 99 {
		t.Errorf("live seed collapsed to %d", got)
	}
}

// TestLoadTraces resolves a replay file relative to a directory and
// checks the canonical form drops the file reference.
func TestLoadTraces(t *testing.T) {
	dir := t.TempDir()
	events := []TraceEvent{{At: 10, Work: 3}, {At: 25, Size: 4}}
	data, _ := json.Marshal(events)
	if err := os.WriteFile(filepath.Join(dir, "trace.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	sp := &Spec{
		Name: "traced",
		Stages: []Stage{
			{Name: "in", Replicas: 1, ReplayFile: "trace.json"},
			{Name: "out", Replicas: 1},
		},
		Edges: []Edge{{From: "in", To: "out"}},
	}
	if err := sp.Validate(); err == nil {
		t.Fatal("unresolved replay file must not validate")
	}
	if err := sp.LoadTraces(dir); err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sp.Stages[0].Replay) != 2 {
		t.Fatalf("loaded %d events, want 2", len(sp.Stages[0].Replay))
	}
	if c := sp.Canonical(); c.Stages[0].ReplayFile != "" {
		t.Error("canonical kept the resolved replay file reference")
	}
	if err := sp.LoadTraces(dir); err != nil {
		t.Fatalf("reload of resolved spec: %v", err)
	}
	sp.Stages[0].Replay = nil
	sp.Stages[0].ReplayFile = "missing.json"
	if err := sp.LoadTraces(dir); err == nil {
		t.Fatal("missing trace file must error")
	}
}
