// Package dag implements a small JSON DSL for arbitrary producer/
// consumer DAG workloads: named stages with replica counts, per-stage
// compute-time distributions, edge fan-in/fan-out policies, and an
// optional recorded-trace replay mode. A Spec compiles into a runnable
// workload (see build.go) whose structure is entirely data, so DAG
// scenarios flow unchanged through experiment specs, the service
// cache, the open-loop traffic engine, and both kernels.
//
// # Model
//
// A stage is a pool of identical replica threads. A stage with no
// incoming edges is a source: it emits a fixed number of messages per
// replica, timed by a compute distribution, an open-loop arrival
// process, or a recorded trace. Every other stage consumes one message
// at a time from the fair-merged union of its incoming edges, charges
// one draw of its compute distribution, and emits one message on every
// outgoing edge — a broadcast, so per-replica message counts propagate
// statically through the graph in topological order.
//
// An edge's policy selects its queue realization:
//
//	pair    replicas match pairwise: R strictly-1:1 queues (replica i
//	        of the producer feeds replica i of the consumer). Requires
//	        equal replica counts.
//	shard   M producers x N consumers via M*N strictly-1:1 queues;
//	        producer p routes its j-th message to consumer (j+p) mod N,
//	        so per-queue counts stay static and balanced.
//	shared  one M:N queue; when the consumer stage has more than one
//	        replica the per-replica share is dynamic and the stage
//	        drains through a WorkCounter (not parallel-safe).
//
// An empty policy resolves to pair on 1:1 edges and shared otherwise.
// Because pair and shard realize strictly-1:1 queues, a DAG whose
// edges all resolve to 1:1 queues is parallel-safe and may run on the
// multi-domain fabric; replicas spread round-robin across domains in
// spawn (stage-major) order.
//
// # Determinism
//
// Everything is a pure function of (Spec, scale): stage and edge order
// are significant (they fix spawn order, and with it domain placement
// and queue creation order), compute draws come from a splitmix64
// stream seeded by (Seed, stage, replica), and arrival schedules
// follow internal/traffic's platform-stable contract. Two runs of the
// same canonical spec dispatch bit-identical event traces on every
// kernel and at every domain count.
package dag

import (
	"fmt"

	"spamer/internal/traffic"
	"spamer/internal/vlq"
)

// Size caps: generous bounds that keep fuzzed and service-submitted
// specs from exploding into multi-gigabyte simulations.
const (
	MaxStages   = 128
	MaxReplicas = 256
	MaxThreads  = 4096
	MaxQueues   = 8192
	MaxReplay   = 1 << 20
	// MaxLines and MaxWindow cap the per-edge tuning knobs: lines
	// allocate real cache-line state per consumer endpoint, and windows
	// admit real in-flight pushes, so an adversarial spec (the service
	// accepts DAG JSON over HTTP) must not pick them astronomically.
	MaxLines  = 4096
	MaxWindow = 4096
	// MaxTraceTick bounds replay timestamps (see MaxWork in dist.go).
	MaxTraceTick = 1 << 40
)

// Spec is the JSON DSL root: a named DAG of stages and edges.
type Spec struct {
	// Name labels the scenario in reports and diagnostic names.
	Name string `json:"name,omitempty"`
	// Seed feeds every stage's compute-distribution stream (mixed with
	// the stage index and replica id, so streams never collide).
	Seed uint64 `json:"seed,omitempty"`

	Stages []Stage `json:"stages"`
	Edges  []Edge  `json:"edges,omitempty"`
}

// Stage is one pool of replica threads.
type Stage struct {
	Name string `json:"name"`
	// Replicas is the thread count; it must be explicit (>= 1) so a
	// spec never silently runs a different shape than it reads.
	Replicas int `json:"replicas"`

	// Messages is the per-replica message count. Only source stages
	// (no incoming edges) set it; interior counts are derived.
	Messages int `json:"messages,omitempty"`

	// Work is the per-message compute-time distribution (nil = none).
	Work *Dist `json:"work,omitempty"`

	// Arrival switches a source stage to open-loop: replicas follow
	// the seeded arrival schedule (endpoint id selects the stream)
	// instead of pushing as fast as the queue admits. Requires
	// Messages; mutually exclusive with Replay.
	Arrival *traffic.Spec `json:"arrival,omitempty"`

	// Replay feeds a source stage from a recorded trace instead of a
	// distribution: events split round-robin across replicas, each
	// replayed open-loop at its recorded timestamp. Counts come from
	// the trace, so scale does not multiply them.
	Replay []TraceEvent `json:"replay,omitempty"`
	// ReplayFile names an external JSON trace (an array of
	// TraceEvent). Loaders resolve it into Replay before validation —
	// canonical hashing is always over resolved events.
	ReplayFile string `json:"replay_file,omitempty"`
	// WorkPerByte adds Size-proportional compute to each replayed
	// event (work = ev.work + ev.size * work_per_byte).
	WorkPerByte uint64 `json:"work_per_byte,omitempty"`
}

// Edge is one directed stage-to-stage connection.
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Policy is "", "pair", "shard", or "shared" (see the package
	// comment for realizations).
	Policy string `json:"policy,omitempty"`
	// Lines sizes each consumer endpoint's line page (0 = 2).
	Lines int `json:"lines,omitempty"`
	// Window bounds each producer's in-flight pushes (0 = default).
	Window int `json:"window,omitempty"`
}

// TraceEvent is one recorded message: an absolute emission tick, an
// explicit compute cost, and a payload size in bytes.
type TraceEvent struct {
	At   uint64 `json:"at"`
	Work uint64 `json:"work,omitempty"`
	Size uint64 `json:"size,omitempty"`
}

// Edge policies.
const (
	PolicyPair   = "pair"
	PolicyShard  = "shard"
	PolicyShared = "shared"
)

// stageIndex maps stage names to indices, erroring on duplicates.
func (s *Spec) stageIndex() (map[string]int, error) {
	idx := make(map[string]int, len(s.Stages))
	for i := range s.Stages {
		n := s.Stages[i].Name
		if n == "" {
			return nil, fmt.Errorf("dag: stage %d has no name", i)
		}
		if _, dup := idx[n]; dup {
			return nil, fmt.Errorf("dag: duplicate stage name %q", n)
		}
		idx[n] = i
	}
	return idx, nil
}

// topoOrder returns a topological order of stage indices (stable:
// among ready stages, declaration order wins) or an error naming a
// stage on a cycle.
func (s *Spec) topoOrder(idx map[string]int) ([]int, error) {
	n := len(s.Stages)
	indeg := make([]int, n)
	for _, e := range s.Edges {
		indeg[idx[e.To]]++
	}
	order := make([]int, 0, n)
	done := make([]bool, n)
	for len(order) < n {
		progressed := false
		for i := 0; i < n; i++ {
			if done[i] || indeg[i] > 0 {
				continue
			}
			done[i] = true
			order = append(order, i)
			for _, e := range s.Edges {
				if idx[e.From] == i {
					indeg[idx[e.To]]--
				}
			}
			progressed = true
		}
		if !progressed {
			for i := 0; i < n; i++ {
				if !done[i] {
					return nil, fmt.Errorf("dag: cycle through stage %q", s.Stages[i].Name)
				}
			}
		}
	}
	return order, nil
}

// inDegree counts incoming edges per stage.
func (s *Spec) inDegree(idx map[string]int) []int {
	indeg := make([]int, len(s.Stages))
	for _, e := range s.Edges {
		indeg[idx[e.To]]++
	}
	return indeg
}

// resolvePolicy returns the concrete policy of e given its endpoint
// replica counts (the "" auto policy resolves to pair on 1:1 edges and
// shared otherwise).
func resolvePolicy(e *Edge, from, to *Stage) string {
	if e.Policy != "" {
		return e.Policy
	}
	if from.Replicas <= 1 && to.Replicas <= 1 {
		return PolicyPair
	}
	return PolicyShared
}

// Validate rejects specs that cannot build a runnable workload. Every
// rule mirrors a concrete build-time failure; anything Validate
// accepts must build and run deterministically.
func (s *Spec) Validate() error {
	if len(s.Stages) == 0 {
		return fmt.Errorf("dag: spec needs at least one stage")
	}
	if len(s.Stages) > MaxStages {
		return fmt.Errorf("dag: %d stages exceeds cap %d", len(s.Stages), MaxStages)
	}
	idx, err := s.stageIndex()
	if err != nil {
		return err
	}
	threads := 0
	for i := range s.Stages {
		st := &s.Stages[i]
		if st.Replicas < 1 {
			return fmt.Errorf("dag: stage %q needs replicas >= 1, got %d", st.Name, st.Replicas)
		}
		if st.Replicas > MaxReplicas {
			return fmt.Errorf("dag: stage %q replicas %d exceeds cap %d", st.Name, st.Replicas, MaxReplicas)
		}
		threads += st.Replicas
		if st.Messages < 0 {
			return fmt.Errorf("dag: stage %q has negative messages", st.Name)
		}
		if st.Work != nil {
			if err := st.Work.validate(); err != nil {
				return fmt.Errorf("dag: stage %q: %w", st.Name, err)
			}
		}
		if st.Arrival != nil {
			if err := st.Arrival.Validate(); err != nil {
				return fmt.Errorf("dag: stage %q: %w", st.Name, err)
			}
		}
		if len(st.Replay) > MaxReplay {
			return fmt.Errorf("dag: stage %q replay length %d exceeds cap %d", st.Name, len(st.Replay), MaxReplay)
		}
		for j := range st.Replay {
			ev := &st.Replay[j]
			if j > 0 && ev.At < st.Replay[j-1].At {
				return fmt.Errorf("dag: stage %q replay timestamps must be non-decreasing (event %d)", st.Name, j)
			}
			if ev.At > MaxTraceTick || ev.Work > MaxWork || ev.Size > MaxWork {
				return fmt.Errorf("dag: stage %q replay event %d exceeds parameter caps", st.Name, j)
			}
		}
		if st.WorkPerByte > MaxWork {
			return fmt.Errorf("dag: stage %q work_per_byte exceeds cap %d", st.Name, uint64(MaxWork))
		}
		if st.ReplayFile != "" && len(st.Replay) == 0 {
			return fmt.Errorf("dag: stage %q has unresolved replay file %q — call LoadTraces first", st.Name, st.ReplayFile)
		}
	}
	if threads > MaxThreads {
		return fmt.Errorf("dag: %d total replicas exceeds cap %d", threads, MaxThreads)
	}

	type pair struct{ from, to int }
	seen := make(map[pair]bool, len(s.Edges))
	queues := 0
	for i := range s.Edges {
		e := &s.Edges[i]
		fi, ok := idx[e.From]
		if !ok {
			return fmt.Errorf("dag: edge %d references unknown stage %q", i, e.From)
		}
		ti, ok := idx[e.To]
		if !ok {
			return fmt.Errorf("dag: edge %d references unknown stage %q", i, e.To)
		}
		if fi == ti {
			return fmt.Errorf("dag: edge %d is a self-loop on %q", i, e.From)
		}
		if seen[pair{fi, ti}] {
			return fmt.Errorf("dag: duplicate edge %q -> %q", e.From, e.To)
		}
		seen[pair{fi, ti}] = true
		if e.Lines < 0 || e.Window < 0 {
			return fmt.Errorf("dag: edge %q -> %q has a negative parameter", e.From, e.To)
		}
		if e.Lines > MaxLines || e.Window > MaxWindow {
			return fmt.Errorf("dag: edge %q -> %q lines/window exceed cap %d", e.From, e.To, MaxLines)
		}
		from, to := &s.Stages[fi], &s.Stages[ti]
		switch resolvePolicy(e, from, to) {
		case PolicyPair:
			if from.Replicas != to.Replicas {
				return fmt.Errorf("dag: pair edge %q -> %q needs equal replicas (%d vs %d)",
					e.From, e.To, from.Replicas, to.Replicas)
			}
			queues += from.Replicas
		case PolicyShard:
			queues += from.Replicas * to.Replicas
		case PolicyShared:
			queues++
		default:
			return fmt.Errorf("dag: edge %q -> %q has unknown policy %q", e.From, e.To, e.Policy)
		}
	}
	if queues > MaxQueues {
		return fmt.Errorf("dag: %d queues exceeds cap %d", queues, MaxQueues)
	}

	if _, err := s.topoOrder(idx); err != nil {
		return err
	}

	indeg := s.inDegree(idx)
	for i := range s.Stages {
		st := &s.Stages[i]
		if indeg[i] == 0 {
			// Source stage: exactly one timing driver.
			if st.Messages > 0 && len(st.Replay) > 0 {
				return fmt.Errorf("dag: source stage %q sets both messages and replay", st.Name)
			}
			if st.Messages == 0 && len(st.Replay) == 0 {
				return fmt.Errorf("dag: source stage %q needs messages or replay", st.Name)
			}
			if st.Arrival != nil {
				if len(st.Replay) > 0 {
					return fmt.Errorf("dag: source stage %q sets both arrival and replay", st.Name)
				}
			}
		} else {
			if st.Messages != 0 {
				return fmt.Errorf("dag: interior stage %q must not set messages (counts are derived)", st.Name)
			}
			if st.Arrival != nil {
				return fmt.Errorf("dag: interior stage %q must not set an arrival process", st.Name)
			}
			if len(st.Replay) > 0 || st.ReplayFile != "" {
				return fmt.Errorf("dag: interior stage %q must not set replay", st.Name)
			}
		}
	}

	// Dynamic stages (shared M:N input with > 1 replica drain through a
	// WorkCounter) cannot merge other inputs or derive static output
	// counts, so the dynamic edge must be their only input and they
	// must be sinks.
	for i := range s.Edges {
		e := &s.Edges[i]
		fi, ti := idx[e.From], idx[e.To]
		from, to := &s.Stages[fi], &s.Stages[ti]
		if resolvePolicy(e, from, to) != PolicyShared || to.Replicas <= 1 {
			continue
		}
		if indeg[ti] > 1 {
			return fmt.Errorf("dag: stage %q has a dynamic shared input and other inputs — the shared edge must be its only input", e.To)
		}
		for j := range s.Edges {
			if idx[s.Edges[j].From] == ti {
				return fmt.Errorf("dag: stage %q drains a dynamic shared input and must be a sink (no outgoing edges)", e.To)
			}
		}
	}
	return nil
}

// Canonical returns the spec with dual spellings of defaults collapsed:
// auto edge policies resolved, default lines/windows zeroed, no-op work
// distributions dropped, arrival specs canonicalized, resolved replay
// files cleared, and a dead seed zeroed. Stage and edge order are
// preserved — they are semantically significant (spawn order fixes
// domain placement). Two specs that build identical workloads hash
// identically through it.
func (s Spec) Canonical() Spec {
	c := s
	c.Stages = make([]Stage, len(s.Stages))
	copy(c.Stages, s.Stages)
	c.Edges = make([]Edge, len(s.Edges))
	copy(c.Edges, s.Edges)

	randomWork := false
	for i := range c.Stages {
		st := &c.Stages[i]
		if st.Work != nil {
			w := st.Work.canonical()
			if w == nil {
				st.Work = nil
			} else {
				st.Work = w
				if w.Kind == DistUniform || w.Kind == DistExp {
					randomWork = true
				}
			}
		}
		if st.Arrival != nil {
			a := st.Arrival.Canonical()
			st.Arrival = &a
		}
		if len(st.Replay) > 0 {
			st.ReplayFile = ""
			ev := make([]TraceEvent, len(st.Replay))
			copy(ev, st.Replay)
			st.Replay = ev
		}
		if len(st.Replay) == 0 && st.WorkPerByte != 0 {
			st.WorkPerByte = 0
		}
	}
	if !randomWork {
		c.Seed = 0
	}

	idx := make(map[string]int, len(c.Stages))
	for i := range c.Stages {
		idx[c.Stages[i].Name] = i
	}
	for i := range c.Edges {
		e := &c.Edges[i]
		fi, fok := idx[e.From]
		ti, tok := idx[e.To]
		if fok && tok {
			from, to := &c.Stages[fi], &c.Stages[ti]
			e.Policy = resolvePolicy(e, from, to)
			// On a 1:1 edge every policy realizes the same single
			// queue; collapse to pair.
			if from.Replicas <= 1 && to.Replicas <= 1 {
				e.Policy = PolicyPair
			}
		}
		if e.Lines == 2 {
			e.Lines = 0
		}
		if e.Window == vlq.DefaultWindow {
			e.Window = 0
		}
	}
	return c
}

// Clone deep-copies the spec — stages (with their distributions,
// arrival specs, and replay traces) and edges — so callers can mutate
// the copy freely. The oracle's shrinker relies on this: every shrink
// candidate starts from an unaliased copy of the failing case.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Stages = append([]Stage(nil), s.Stages...)
	for i := range c.Stages {
		st := &c.Stages[i]
		if st.Work != nil {
			w := *st.Work
			st.Work = &w
		}
		if st.Arrival != nil {
			a := *st.Arrival
			st.Arrival = &a
		}
		st.Replay = append([]TraceEvent(nil), st.Replay...)
	}
	c.Edges = append([]Edge(nil), s.Edges...)
	return &c
}

// ParallelSafe reports whether every edge realizes strictly-1:1 queues
// (no WorkCounter drains), so the workload may run on the multi-domain
// fabric.
func (s *Spec) ParallelSafe() bool {
	idx, err := s.stageIndex()
	if err != nil {
		return false
	}
	for i := range s.Edges {
		e := &s.Edges[i]
		fi, fok := idx[e.From]
		ti, tok := idx[e.To]
		if !fok || !tok {
			return false
		}
		from, to := &s.Stages[fi], &s.Stages[ti]
		if resolvePolicy(e, from, to) == PolicyShared && (from.Replicas > 1 || to.Replicas > 1) {
			return false
		}
	}
	return true
}

// Queues is the number of link-layer queues Build creates — the
// device-table footprint of the DAG (pair: R, shard: M*N, shared: 1).
// Unknown stage references contribute nothing; Validate reports them.
func (s *Spec) Queues() int {
	idx, err := s.stageIndex()
	if err != nil {
		return 0
	}
	q := 0
	for i := range s.Edges {
		e := &s.Edges[i]
		fi, fok := idx[e.From]
		ti, tok := idx[e.To]
		if !fok || !tok {
			continue
		}
		from, to := &s.Stages[fi], &s.Stages[ti]
		switch resolvePolicy(e, from, to) {
		case PolicyPair:
			q += from.Replicas
		case PolicyShard:
			q += from.Replicas * to.Replicas
		case PolicyShared:
			q++
		}
	}
	return q
}

// Threads returns the total replica count.
func (s *Spec) Threads() int {
	n := 0
	for i := range s.Stages {
		n += s.Stages[i].Replicas
	}
	return n
}

// DisplayName is the scenario label ("anon" when unnamed).
func (s *Spec) DisplayName() string {
	if s.Name == "" {
		return "anon"
	}
	return s.Name
}

// WorkloadName is the compact diagnostic name used by experiment specs
// and reports.
func (s *Spec) WorkloadName() string {
	return fmt.Sprintf("dag/%s-s%d-t%d", s.DisplayName(), len(s.Stages), s.Threads())
}
