package dag

import (
	"fmt"
	"math"
)

// Distribution kinds.
const (
	DistConst   = "const"
	DistUniform = "uniform"
	DistExp     = "exp"
)

// Dist is a per-message compute-time distribution. The zero kind is
// const; const and exp use Mean, uniform uses [Min, Max].
type Dist struct {
	Kind string `json:"kind,omitempty"`
	Mean uint64 `json:"mean,omitempty"`
	Min  uint64 `json:"min,omitempty"`
	Max  uint64 `json:"max,omitempty"`
}

// MaxWork caps per-message compute parameters so fuzzed specs cannot
// push simulated time toward the uint64 horizon.
const MaxWork = 1 << 32

func (d *Dist) validate() error {
	if d.Mean > MaxWork || d.Max > MaxWork {
		return fmt.Errorf("distribution parameter exceeds cap %d", uint64(MaxWork))
	}
	switch d.Kind {
	case "", DistConst:
		if d.Min != 0 || d.Max != 0 {
			return fmt.Errorf("const distribution uses mean only")
		}
	case DistUniform:
		if d.Mean != 0 {
			return fmt.Errorf("uniform distribution uses min/max, not mean")
		}
		if d.Min > d.Max {
			return fmt.Errorf("uniform distribution needs min <= max (got %d > %d)", d.Min, d.Max)
		}
	case DistExp:
		if d.Mean == 0 {
			return fmt.Errorf("exp distribution needs mean > 0")
		}
		if d.Min != 0 || d.Max != 0 {
			return fmt.Errorf("exp distribution uses mean only")
		}
	default:
		return fmt.Errorf("unknown distribution kind %q", d.Kind)
	}
	return nil
}

// canonical collapses default spellings; a distribution that always
// draws 0 collapses to nil.
func (d Dist) canonical() *Dist {
	if d.Kind == DistConst {
		d.Kind = ""
	}
	switch d.Kind {
	case "":
		if d.Mean == 0 {
			return nil
		}
	case DistUniform:
		if d.Max == 0 {
			return nil
		}
	}
	return &d
}

// sampler draws compute times from a Dist on a dedicated splitmix64
// stream. Like internal/traffic, all randomness is pure integer
// arithmetic plus IEEE-754 operations with platform-stable results, so
// draws are bit-exact everywhere.
type sampler struct {
	d   Dist
	rng uint64
}

// newSampler seeds the stream for one (spec, stage, replica) triple;
// distinct triples get provably distinct streams.
func newSampler(d *Dist, seed uint64, stage, replica int) sampler {
	s := sampler{rng: mix64(seed ^ mix64(uint64(stage)<<32|uint64(replica)))}
	if d != nil {
		s.d = *d
	}
	return s
}

// draw returns the next compute time.
func (s *sampler) draw() uint64 {
	switch s.d.Kind {
	case DistUniform:
		span := s.d.Max - s.d.Min + 1
		return s.d.Min + s.next64()%span
	case DistExp:
		return uint64(-float64(s.d.Mean) * math.Log(1-s.uniform()))
	default:
		return s.d.Mean
	}
}

func (s *sampler) uniform() float64 {
	return float64(s.next64()>>11) / (1 << 53)
}

// next64 steps the splitmix64 generator (Steele et al.), the same
// platform-stable construction internal/traffic uses.
func (s *sampler) next64() uint64 {
	s.rng += 0x9e3779b97f4a7c15
	return mix64(s.rng)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
