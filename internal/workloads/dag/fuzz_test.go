package dag

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"spamer"
	"spamer/internal/config"
)

// FuzzDAGSpec hardens the DAG DSL against arbitrary JSON. Any input
// must either fail Validate with an error or yield a spec whose
// canonical form validates, canonicalizes idempotently, and preserves
// parallel safety; small valid graphs additionally run end to end
// under the VL baseline and must conserve every message. Seeds include
// the three checked-in reference scenarios (scenarios/*.json, replay
// traces resolved), so mutations start from real topologies.
func FuzzDAGSpec(f *testing.F) {
	for _, file := range []string{"telemetry.json", "rpc.json", "shuffle.json"} {
		f.Add(scenarioDAG(f, file))
	}
	f.Add([]byte(`{"stages":[{"name":"a","replicas":1,"messages":3}]}`))
	f.Add([]byte(`{"stages":[{"name":"a","replicas":2,"replay":[{"at":5,"size":8}],"work_per_byte":1},` +
		`{"name":"b","replicas":3}],"edges":[{"from":"a","to":"b","policy":"shard","window":2}]}`))
	f.Add([]byte(`{"stages":[{"name":"a","replicas":0}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		c := s.Canonical()
		if err := c.Validate(); err != nil {
			t.Fatalf("canonical form fails validation: %v", err)
		}
		again := c.Canonical()
		ja, _ := json.Marshal(c)
		jb, _ := json.Marshal(again)
		if string(ja) != string(jb) {
			t.Fatalf("canonicalization not idempotent:\n%s\n%s", ja, jb)
		}
		if c.ParallelSafe() != s.ParallelSafe() {
			t.Fatal("canonicalization changed parallel safety")
		}
		if !runnable(&s) {
			return
		}
		sys := spamer.NewSystem(spamer.Config{Algorithm: spamer.AlgBaseline})
		s.Build(sys, 1)
		res := sys.Run()
		if want := uint64(s.TotalMessages(1)); res.Pushed != want || res.Popped != want {
			t.Fatalf("conservation: pushed/popped = %d/%d, want %d", res.Pushed, res.Popped, want)
		}
	})
}

// runnable bounds the specs the fuzzer executes end to end: small
// graphs with tame work and timestamp magnitudes, so each exec stays
// in the low milliseconds and the simulated horizon stays far from the
// kernel deadline.
func runnable(s *Spec) bool {
	total := s.TotalMessages(1)
	if total == 0 || total > 400 || s.Threads() > 24 {
		return false
	}
	// The default routing device reserves one prodBuf slot per queue;
	// exceeding its table size is an invalid configuration, not a bug.
	if s.Queues() > config.SRDEntries {
		return false
	}
	for i := range s.Stages {
		st := &s.Stages[i]
		if w := st.Work; w != nil && (w.Mean > 1<<16 || w.Max > 1<<16) {
			return false
		}
		if st.WorkPerByte > 1<<8 {
			return false
		}
		if a := st.Arrival; a != nil && (a.MeanGap > 1<<16 || a.Users > 64 || a.StormBurst > 256) {
			return false
		}
		for _, ev := range st.Replay {
			if ev.At > 1<<32 || ev.Work > 1<<16 || ev.Size > 1<<16 {
				return false
			}
		}
	}
	return true
}

// scenarioDAG extracts the resolved DAG body of one checked-in
// reference scenario spec.
func scenarioDAG(f *testing.F, file string) []byte {
	f.Helper()
	dir := filepath.Join("..", "..", "..", "scenarios")
	data, err := os.ReadFile(filepath.Join(dir, file))
	if err != nil {
		f.Fatal(err)
	}
	var spec struct {
		Shape struct {
			DAG json.RawMessage `json:"dag"`
		} `json:"shape"`
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		f.Fatal(err)
	}
	var s Spec
	if err := json.Unmarshal(spec.Shape.DAG, &s); err != nil {
		f.Fatal(err)
	}
	if err := s.LoadTraces(dir); err != nil {
		f.Fatal(err)
	}
	out, err := json.Marshal(&s)
	if err != nil {
		f.Fatal(err)
	}
	return out
}
