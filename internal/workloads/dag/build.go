package dag

import (
	"fmt"

	"spamer"
	"spamer/internal/mem"
	"spamer/internal/sim"
	"spamer/internal/traffic"
)

// plan is the static realization of a spec at one scale: resolved edge
// policies and statically propagated per-replica message counts. Build
// computes it fresh per run; tests use it to assert count propagation.
type plan struct {
	spec  *Spec
	scale int
	idx   map[string]int
	// counts[i][r] is the item count of stage i's replica r. Dynamic
	// sinks (shared M:N drains) carry -1; their totals live on the edge.
	counts [][]int
	edges  []edgePlan
}

type edgePlan struct {
	policy string
	fi, ti int
	// total is the edge's whole-run message count (the WorkCounter
	// budget on dynamic shared edges).
	total int
}

// shardCount is the number of items j in [0, k) a shard producer with
// rotation p routes to consumer c of n: j with (j+p) mod n == c.
func shardCount(k, p, c, n int) int {
	r := ((c-p)%n + n) % n
	if k <= r {
		return 0
	}
	return (k - r + n - 1) / n
}

// newPlan propagates message counts through the DAG in topological
// order. The spec must have passed Validate.
func (s *Spec) newPlan(scale int) (*plan, error) {
	if scale <= 0 {
		scale = 1
	}
	idx, err := s.stageIndex()
	if err != nil {
		return nil, err
	}
	order, err := s.topoOrder(idx)
	if err != nil {
		return nil, err
	}
	p := &plan{spec: s, scale: scale, idx: idx}
	p.counts = make([][]int, len(s.Stages))
	p.edges = make([]edgePlan, len(s.Edges))
	for i := range s.Edges {
		e := &s.Edges[i]
		fi, ti := idx[e.From], idx[e.To]
		p.edges[i] = edgePlan{
			policy: resolvePolicy(e, &s.Stages[fi], &s.Stages[ti]),
			fi:     fi, ti: ti,
		}
	}
	indeg := s.inDegree(idx)
	for _, si := range order {
		st := &s.Stages[si]
		c := make([]int, st.Replicas)
		if indeg[si] == 0 {
			for r := range c {
				if len(st.Replay) > 0 {
					// Replica r replays events r, r+R, ... — counts come
					// from the trace and are not scaled.
					c[r] = (len(st.Replay) - r + st.Replicas - 1) / st.Replicas
				} else {
					c[r] = st.Messages * scale
				}
			}
		} else {
			dynamic := false
			for ei := range p.edges {
				ep := &p.edges[ei]
				if ep.ti != si {
					continue
				}
				from := p.counts[ep.fi]
				switch ep.policy {
				case PolicyPair:
					for r := range c {
						c[r] += from[r]
					}
				case PolicyShard:
					for r := range c {
						for pr := range from {
							c[r] += shardCount(from[pr], pr, r, st.Replicas)
						}
					}
				case PolicyShared:
					total := 0
					for pr := range from {
						total += from[pr]
					}
					if st.Replicas > 1 {
						dynamic = true
					} else {
						c[0] += total
					}
				}
			}
			if dynamic {
				for r := range c {
					c[r] = -1
				}
			}
		}
		p.counts[si] = c
	}
	// Edge totals: sum of the producer side's per-replica counts.
	for ei := range p.edges {
		ep := &p.edges[ei]
		for _, k := range p.counts[ep.fi] {
			ep.total += k
		}
	}
	return p, nil
}

// TotalMessages returns the whole-run queue message count at the given
// scale (the sum over edges of their producer-side emissions).
func (s *Spec) TotalMessages(scale int) int {
	p, err := s.newPlan(scale)
	if err != nil {
		return 0
	}
	total := 0
	for i := range p.edges {
		total += p.edges[i].total
	}
	return total
}

// outPort is one replica's producer side of one edge: a single endpoint
// on pair/shared edges, N rotated endpoints on shard edges.
type outPort struct {
	txs []*spamer.Producer
	rot int // shard rotation = producer replica index
	gid int // global endpoint id feeding payloadFor
}

func (o *outPort) push(t *spamer.Thread, j int) {
	o.txs[(j+o.rot)%len(o.txs)].Push(t.Proc, payloadFor(o.gid, j))
}

// payloadFor is the canonical payload of the j-th message of port gid —
// the same Fibonacci-hash spread the synthetic shapes use, so corrupted
// or cross-wired deliveries cannot alias a valid payload by accident.
func payloadFor(gid, j int) uint64 {
	return (uint64(gid)<<32 | uint64(uint32(j))) * 0x9e3779b97f4a7c15
}

// edgeLines is the consumer line-page size of an edge.
func edgeLines(e *Edge) int {
	if e.Lines == 0 {
		return 2
	}
	return e.Lines
}

// Build realizes the DAG on sys: queues in edge-declaration order,
// threads in stage-declaration order (replica-major), so domain
// placement and the dispatch trace are pure functions of the spec. The
// spec must have passed Validate; Build panics otherwise.
func (s *Spec) Build(sys *spamer.System, scale int) {
	p, err := s.newPlan(scale)
	if err != nil {
		panic("dag: Build on invalid spec: " + err.Error())
	}

	// Queue layout per edge: pair holds R queues indexed by replica;
	// shard holds M*N queues producer-major (p*N + c); shared holds 1.
	queues := make([][]*spamer.Queue, len(s.Edges))
	counters := make([]*spamer.WorkCounter, len(s.Edges))
	for ei := range s.Edges {
		e := &s.Edges[ei]
		ep := &p.edges[ei]
		name := fmt.Sprintf("%s>%s", e.From, e.To)
		switch ep.policy {
		case PolicyPair:
			n := s.Stages[ep.fi].Replicas
			qs := make([]*spamer.Queue, n)
			for r := 0; r < n; r++ {
				qs[r] = sys.NewQueue(fmt.Sprintf("%s.p%d", name, r))
			}
			queues[ei] = qs
		case PolicyShard:
			m, n := s.Stages[ep.fi].Replicas, s.Stages[ep.ti].Replicas
			qs := make([]*spamer.Queue, m*n)
			for pr := 0; pr < m; pr++ {
				for c := 0; c < n; c++ {
					qs[pr*n+c] = sys.NewQueue(fmt.Sprintf("%s.s%d.%d", name, pr, c))
				}
			}
			queues[ei] = qs
		case PolicyShared:
			queues[ei] = []*spamer.Queue{sys.NewQueue(name)}
			if s.Stages[ep.ti].Replicas > 1 {
				counters[ei] = spamer.NewWorkCounter(name, ep.total)
			}
		}
	}

	gid := 0 // global out-port id, assigned in spawn order
	for si := range s.Stages {
		st := &s.Stages[si]
		for r := 0; r < st.Replicas; r++ {
			si, r := si, r
			portGID := make([]int, 0, 4)
			for ei := range s.Edges {
				if p.edges[ei].fi == si {
					portGID = append(portGID, gid)
					gid++
				}
			}
			name := fmt.Sprintf("dag/%s.%d", st.Name, r)
			sys.Spawn(name, func(t *spamer.Thread) {
				s.runReplica(t, p, queues, counters, si, r, portGID)
			})
		}
	}
}

// inStream is one statically-counted input queue of a replica.
type inStream struct {
	rx        *spamer.Consumer
	remaining int
	taken     int // messages popped so far; next line is taken % lines
}

// ready reports whether the stream's next line already holds a message
// (valid, or evicted with its write-back preserved) so a Pop completes
// without waiting for a new delivery.
func (in *inStream) ready() bool {
	lines := in.rx.Lines()
	return lines[in.taken%len(lines)].State != mem.LineEmpty
}

// fillSignal is the wake-up signal of the stream's next line.
func (in *inStream) fillSignal() *sim.Signal {
	lines := in.rx.Lines()
	return &lines[in.taken%len(lines)].OnFill
}

// runReplica is the thread body of stage si's replica r.
func (s *Spec) runReplica(t *spamer.Thread, p *plan, queues [][]*spamer.Queue,
	counters []*spamer.WorkCounter, si, r int, portGID []int) {
	st := &s.Stages[si]

	// Producer endpoints, in edge-declaration order.
	var ports []outPort
	pi := 0
	for ei := range s.Edges {
		ep := &p.edges[ei]
		if ep.fi != si {
			continue
		}
		e := &s.Edges[ei]
		port := outPort{gid: portGID[pi]}
		pi++
		switch ep.policy {
		case PolicyPair:
			port.txs = []*spamer.Producer{queues[ei][r].NewProducer(e.Window)}
		case PolicyShard:
			n := s.Stages[ep.ti].Replicas
			port.txs = make([]*spamer.Producer, n)
			for c := 0; c < n; c++ {
				port.txs[c] = queues[ei][r*n+c].NewProducer(e.Window)
			}
			port.rot = r
		case PolicyShared:
			port.txs = []*spamer.Producer{queues[ei][0].NewProducer(e.Window)}
		}
		ports = append(ports, port)
	}

	smp := newSampler(st.Work, s.Seed, si, r)
	emit := func(j int) {
		for k := range ports {
			ports[k].push(t, j)
		}
	}

	// Dynamic sink: drain the shared queue through its WorkCounter.
	if p.counts[si][r] < 0 {
		for ei := range s.Edges {
			ep := &p.edges[ei]
			if ep.ti != si || counters[ei] == nil {
				continue
			}
			rx := queues[ei][0].NewConsumer(t.Proc, edgeLines(&s.Edges[ei]))
			for {
				if _, ok := counters[ei].Take(rx, t.Proc); !ok {
					return
				}
				if w := smp.draw(); w > 0 {
					t.Compute(w)
				}
			}
		}
		return
	}

	// Consumer endpoints: one stream per incoming queue, in
	// edge-declaration order (shard edges contribute one stream per
	// producer replica).
	var streams []inStream
	for ei := range s.Edges {
		ep := &p.edges[ei]
		if ep.ti != si {
			continue
		}
		e := &s.Edges[ei]
		from := p.counts[ep.fi]
		switch ep.policy {
		case PolicyPair:
			streams = append(streams, inStream{
				rx:        queues[ei][r].NewConsumer(t.Proc, edgeLines(e)),
				remaining: from[r],
			})
		case PolicyShard:
			n := st.Replicas
			for pr := range from {
				streams = append(streams, inStream{
					rx:        queues[ei][pr*n+r].NewConsumer(t.Proc, edgeLines(e)),
					remaining: shardCount(from[pr], pr, r, n),
				})
			}
		case PolicyShared:
			streams = append(streams, inStream{
				rx:        queues[ei][0].NewConsumer(t.Proc, edgeLines(e)),
				remaining: ep.total,
			})
		}
	}

	if len(streams) == 0 {
		s.runSource(t, smp, emit, si, r, p.counts[si][r])
		return
	}

	// Interior stage: event-driven fair merge. Each round pops the
	// first rotation stream whose next line already holds data; when no
	// stream is ready, the replica keeps one demand request posted per
	// stream and parks on the union of their fill signals. A consumer
	// therefore never blocks on one empty stream while another stream
	// has deliverable data sitting in the routing device — the strict
	// round-robin alternative deadlocks on diamonds once bounded push
	// windows and the shared prodBuf pool fill with messages only this
	// replica can drain.
	active := 0
	for k := range streams {
		if streams[k].remaining > 0 {
			active++
		}
	}
	j := 0
	cursor := 0
	sigs := make([]*sim.Signal, 0, len(streams))
	for active > 0 {
		picked := -1
		for o := 0; o < len(streams); o++ {
			k := (cursor + o) % len(streams)
			if streams[k].remaining > 0 && streams[k].ready() {
				picked = k
				break
			}
		}
		if picked < 0 {
			// Post (or refresh) one demand request per stream so stash
			// data keeps flowing into lines, then re-check: a fill can
			// land during the posting overhead, and fill signals are
			// edge-triggered.
			sigs = sigs[:0]
			for k := range streams {
				in := &streams[k]
				if in.remaining == 0 {
					continue
				}
				in.rx.Prefetch(t.Proc)
				if in.ready() {
					picked = k
					break
				}
				sigs = append(sigs, in.fillSignal())
			}
			if picked < 0 {
				sim.WaitAny(t.Proc, sigs...)
				continue
			}
		}
		in := &streams[picked]
		in.rx.Pop(t.Proc)
		in.taken++
		in.remaining--
		if in.remaining == 0 {
			active--
		}
		cursor = (picked + 1) % len(streams)
		if w := smp.draw(); w > 0 {
			t.Compute(w)
		}
		emit(j)
		j++
	}
}

// arrivalChunk sizes the pooled arrival-record block each open-loop
// source refills in place (the synthetic shapes use the same size).
const arrivalChunk = 256

// runSource drives a source replica for n items: recorded-trace
// replay, an open-loop arrival schedule, or a closed loop timed by the
// stage's compute distribution.
func (s *Spec) runSource(t *spamer.Thread, smp sampler, emit func(int), si, r, n int) {
	st := &s.Stages[si]

	if len(st.Replay) > 0 {
		// Open-loop replay: wait until each recorded timestamp, charge
		// the recorded work, emit. A replica that falls behind emits
		// immediately — the schedule never slips.
		for j, ei := 0, r; ei < len(st.Replay); j, ei = j+1, ei+st.Replicas {
			ev := &st.Replay[ei]
			if now := t.Now(); now < ev.At {
				t.Compute(ev.At - now)
			}
			if w := ev.Work + ev.Size*st.WorkPerByte; w > 0 {
				t.Compute(w)
			}
			emit(j)
		}
		return
	}

	if st.Arrival != nil {
		// Open-loop schedule: the stream is selected by a globally
		// unique endpoint id so replicas of different stages never
		// share arrival draws.
		src := traffic.NewSource(*st.Arrival, s.globalReplica(si, r))
		buf := make([]uint64, arrivalChunk)
		if n < len(buf) {
			buf = buf[:n]
		}
		done := 0
		for done < n {
			src.Fill(buf)
			for _, at := range buf {
				if done >= n {
					break
				}
				if now := t.Now(); now < at {
					t.Compute(at - now)
				}
				if w := smp.draw(); w > 0 {
					t.Compute(w)
				}
				emit(done)
				done++
			}
		}
		return
	}

	for j := 0; j < n; j++ {
		if w := smp.draw(); w > 0 {
			t.Compute(w)
		}
		emit(j)
	}
}

// globalReplica is the replica's index in spawn order across the whole
// DAG — the stable endpoint id arrival streams key on.
func (s *Spec) globalReplica(si, r int) int {
	id := r
	for i := 0; i < si; i++ {
		id += s.Stages[i].Replicas
	}
	return id
}
