package workloads

import (
	"testing"

	"spamer"
)

// expectedMessages returns the total queue messages a scale-1 run moves,
// derived from the workload definitions, for conservation checks.
func expectedMessages(name string, scale int) uint64 {
	s := uint64(scale)
	switch name {
	case "ping-pong":
		return 2 * pingPongRounds * s
	case "halo":
		return 48 * haloIters * s
	case "sweep":
		return 48 * sweepIters * s
	case "incast":
		return incastProducers * incastPerProd * s
	case "pipeline":
		n := pipeMessages * s
		credits := n/pipeBatch - pipeDepth
		return 3*n + credits
	case "firewall":
		return 3 * fwPackets * s
	case "FIR":
		return (firStages - 1) * firSamples * s
	case "bitonic":
		return 2 * bitonicBlocks * s
	default:
		return 0
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"bitonic", "sweep", "ping-pong", "incast", "halo", "pipeline", "firewall", "FIR"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, n := range want {
		if _, ok := ByName(n); !ok {
			t.Fatalf("ByName(%q) failed", n)
		}
	}
}

func TestQueueSpecsMatchTable2(t *testing.T) {
	want := map[string]string{
		"ping-pong": "(1:1)x2",
		"halo":      "(1:1)x48",
		"sweep":     "(1:1)x48",
		"incast":    "(4:1)x1",
		"pipeline":  "(1:4)x1+(4:4)x1+(4:1)x1+(1:1)x1",
		"firewall":  "(1:1)x3+(2:1)x1",
		"FIR":       "(1:1)x9",
		"bitonic":   "(1:4)x1+(4:1)x1",
	}
	for name, spec := range want {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %q", name)
		}
		if w.QueueSpec != spec {
			t.Errorf("%s: QueueSpec = %q, want %q", name, w.QueueSpec, spec)
		}
	}
}

// queueCount verifies the built system has the Table 2 number of queues
// and threads.
func TestTopology(t *testing.T) {
	wantQueues := map[string]int{
		"ping-pong": 2, "halo": 48, "sweep": 48, "incast": 1,
		"pipeline": 4, "firewall": 4, "FIR": 9, "bitonic": 2,
	}
	for _, w := range All() {
		sys := spamer.NewSystem(spamer.Config{Deadline: 1 << 34})
		w.Build(sys, 1)
		if got := len(sys.Queues()); got != wantQueues[w.Name] {
			t.Errorf("%s: %d queues, want %d", w.Name, got, wantQueues[w.Name])
		}
		if got := sys.Threads(); got != w.Threads {
			t.Errorf("%s: %d threads, want %d", w.Name, got, w.Threads)
		}
		res := sys.Run() // must also complete
		if res.Pushed != res.Popped {
			t.Errorf("%s: pushed %d != popped %d", w.Name, res.Pushed, res.Popped)
		}
	}
}

// TestAllWorkloadsAllConfigs is the big integration matrix: every
// benchmark completes under every routing-device configuration and
// conserves messages.
func TestAllWorkloadsAllConfigs(t *testing.T) {
	for _, w := range All() {
		w := w
		for _, alg := range spamer.Configs() {
			alg := alg
			t.Run(w.Name+"/"+alg, func(t *testing.T) {
				t.Parallel()
				res := w.Run(spamer.Config{Algorithm: alg, Deadline: 1 << 34}, 1)
				if res.Pushed == 0 {
					t.Fatal("no messages moved")
				}
				if res.Pushed != res.Popped {
					t.Fatalf("pushed %d != popped %d", res.Pushed, res.Popped)
				}
				if want := expectedMessages(w.Name, 1); res.Pushed != want {
					t.Fatalf("moved %d messages, want %d", res.Pushed, want)
				}
				if res.Ticks == 0 {
					t.Fatal("zero execution time")
				}
				if alg == spamer.AlgBaseline && res.Device.SpecPushes != 0 {
					t.Fatalf("baseline issued spec pushes")
				}
				if alg != spamer.AlgBaseline && res.Device.SpecPushes == 0 {
					t.Fatalf("%s issued no spec pushes", alg)
				}
			})
		}
	}
}

// TestDeterministicWorkloads: same workload+config twice gives identical
// results.
func TestDeterministicWorkloads(t *testing.T) {
	for _, name := range []string{"firewall", "incast"} {
		w, _ := ByName(name)
		a := w.Run(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 34}, 1)
		b := w.Run(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 34}, 1)
		if a.Ticks != b.Ticks || a.Device != b.Device {
			t.Fatalf("%s: nondeterministic (%d vs %d ticks)", name, a.Ticks, b.Ticks)
		}
	}
}

func TestBitonicVaryingWorkers(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		sys := spamer.NewSystem(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 34})
		BuildBitonic(sys, workers, 8*workers)
		res := sys.Run()
		if res.Pushed != uint64(16*workers) {
			t.Fatalf("workers=%d: moved %d messages", workers, res.Pushed)
		}
	}
}

func TestBitonicBadBlocksPanics(t *testing.T) {
	sys := spamer.NewSystem(spamer.Config{})
	defer func() {
		if recover() == nil {
			t.Error("no panic for indivisible blocks")
		}
	}()
	BuildBitonic(sys, 3, 10)
}

func TestGridNeighborCounts(t *testing.T) {
	// 4x4 grid: corner 2, edge 3, interior 4 neighbours; 48 directed links.
	total := 0
	for y := 0; y < gridH; y++ {
		for x := 0; x < gridW; x++ {
			total += len(neighbors(x, y))
		}
	}
	if total != 48 {
		t.Fatalf("directed links = %d, want 48", total)
	}
	if n := len(neighbors(0, 0)); n != 2 {
		t.Fatalf("corner neighbours = %d", n)
	}
	if n := len(neighbors(1, 0)); n != 3 {
		t.Fatalf("edge neighbours = %d", n)
	}
	if n := len(neighbors(1, 1)); n != 4 {
		t.Fatalf("interior neighbours = %d", n)
	}
}

// TestScaleMultiplier: scale multiplies the message volume linearly.
func TestScaleMultiplier(t *testing.T) {
	w, _ := ByName("firewall")
	one := w.Run(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 36}, 1)
	two := w.Run(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 36}, 2)
	if two.Pushed != 2*one.Pushed {
		t.Fatalf("messages: %d vs %d", two.Pushed, one.Pushed)
	}
	if two.Ticks <= one.Ticks {
		t.Fatalf("ticks did not grow: %d vs %d", two.Ticks, one.Ticks)
	}
	// Throughput is roughly scale-invariant (within 20%).
	r1 := float64(one.Pushed) / float64(one.Ticks)
	r2 := float64(two.Pushed) / float64(two.Ticks)
	if r2 < r1*0.8 || r2 > r1*1.2 {
		t.Fatalf("throughput drifted: %.4f vs %.4f", r1, r2)
	}
}

// TestDefaultScaleZero: Run treats scale<=0 as 1.
func TestDefaultScaleZero(t *testing.T) {
	w, _ := ByName("ping-pong")
	a := w.Run(spamer.Config{Algorithm: spamer.AlgBaseline, Deadline: 1 << 36}, 0)
	b := w.Run(spamer.Config{Algorithm: spamer.AlgBaseline, Deadline: 1 << 36}, 1)
	if a.Ticks != b.Ticks {
		t.Fatalf("scale 0 != scale 1: %d vs %d", a.Ticks, b.Ticks)
	}
}
