// Package workloads implements the eight task-parallel benchmarks of
// Table 2 on the spamer public API, with the exact queue shapes the paper
// lists ((#producer:#consumer) x #queue):
//
//	ping-pong  (1:1)x2    data back and forth between two threads
//	halo       (1:1)x48   exchange data with neighbouring threads
//	sweep      (1:1)x48   data sweeps through a grid corner to corner
//	incast     (4:1)x1    all threads sending data to the master thread
//	pipeline   (1:4)x1+(4:4)x1+(4:1)x1+(1:1)x1   4-stage pipeline
//	firewall   (1:1)x3+(2:1)x1   filter and dispatch packages
//	FIR        (1:1)x9    data streams through 10-stage FIR filter
//	bitonic    (1:N)x1+(M:1)x1   sort with worker threads
//
// Each workload is deterministic: thread structure, message counts, and
// per-message compute are fixed by the scale parameter, so a VL run and a
// SPAMeR run of the same workload do identical application work and their
// execution times are directly comparable (Figure 8).
package workloads

import (
	"fmt"
	"sort"

	"spamer"
)

// Workload describes one benchmark.
type Workload struct {
	// Name is the benchmark name as used in the paper's figures.
	Name string
	// Desc is the Table 2 description.
	Desc string
	// QueueSpec is the Table 2 queue shape, e.g. "(1:1)x48".
	QueueSpec string
	// Threads is the number of application threads spawned.
	Threads int
	// Build creates the queues and spawns the threads on sys. scale
	// multiplies message counts (1 = harness default; tests use less).
	Build func(sys *spamer.System, scale int)
	// ParallelSafe marks workloads whose queue usage fits the
	// multi-domain fabric: every queue is strictly 1:1 and threads use
	// only Push/Pop/Compute/Prefetch (no PopOrDone polling races, no
	// shared counters). Only these may run with Config.Domains > 0.
	ParallelSafe bool
}

// Run builds the workload on a fresh system and drives it to completion.
func (w *Workload) Run(cfg spamer.Config, scale int) spamer.Result {
	if scale <= 0 {
		scale = 1
	}
	sys := spamer.NewSystem(cfg)
	w.Build(sys, scale)
	return sys.Run()
}

var registry = map[string]*Workload{}
var order []string

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate %q", w.Name))
	}
	registry[w.Name] = w
	order = append(order, w.Name)
}

// All returns the benchmarks in the paper's Figure 8 order.
func All() []*Workload {
	paper := []string{"bitonic", "sweep", "ping-pong", "incast", "halo", "pipeline", "firewall", "FIR"}
	var out []*Workload
	for _, n := range paper {
		if w, ok := registry[n]; ok {
			out = append(out, w)
		}
	}
	// Append any extras not in the canonical list, sorted, so custom
	// registrations are not silently dropped.
	var extra []string
	for _, n := range order {
		found := false
		for _, p := range paper {
			if n == p {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		out = append(out, registry[n])
	}
	return out
}

// ByName looks a benchmark up.
func ByName(name string) (*Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// Names returns every registered benchmark name in Figure 8 order.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}
