package workloads

import (
	"fmt"

	"spamer"
)

// pipeline: a 4-stage packet-processing pipeline with multi-threaded
// middle stages (after Wang et al.'s CAF workloads [46]):
//
//	source(1) --(1:4)--> parse(4) --(4:4)--> process(4) --(4:1)--> sink(1)
//	   ^                                                             |
//	   +-------------------------- (1:1) credits ---------------------+
//
// The (1:1) queue carries batch credits from the sink back to the source,
// bounding run-ahead to pipeDepth batches — the fourth queue of Table 2's
// (1:4)x1+(4:4)x1+(4:1)x1+(1:1)x1.
const (
	pipeWorkers  = 4
	pipeMessages = 1600 // divisible by pipeWorkers and pipeBatch
	pipeBatch    = 80
	pipeDepth    = 4  // batches in flight before the source needs a credit
	pipeSrcWork  = 42 // per-packet generation
	pipeMidWork  = 75 // per-packet parse/process
	pipeSinkWork = 30 // per-packet retirement
	pipeLines    = 4
)

func init() {
	register(&Workload{
		Name:      "pipeline",
		Desc:      "4-stage pipeline with middle stages multi-threaded",
		QueueSpec: "(1:4)x1+(4:4)x1+(4:1)x1+(1:1)x1",
		Threads:   2 + 2*pipeWorkers,
		Build:     buildPipeline,
	})
}

func buildPipeline(sys *spamer.System, scale int) {
	n := pipeMessages * scale
	q1 := sys.NewQueue("pipe.s0s1") // (1:4)
	q2 := sys.NewQueue("pipe.s1s2") // (4:4)
	q3 := sys.NewQueue("pipe.s2s3") // (4:1)
	qc := sys.NewQueue("pipe.cred") // (1:1) sink -> source

	batches := n / pipeBatch

	sys.Spawn("pipeline/source", func(t *spamer.Thread) {
		tx := q1.NewProducer(0)
		cr := qc.NewConsumer(t.Proc, 2)
		for b := 0; b < batches; b++ {
			if b >= pipeDepth {
				cr.Pop(t.Proc) // wait for a retired batch
			}
			for i := 0; i < pipeBatch; i++ {
				t.Compute(pipeSrcWork)
				tx.Push(t.Proc, uint64(b*pipeBatch+i))
			}
		}
	})

	// The middle stages drain their queues dynamically: under
	// speculative rotation the per-worker share is approximate, so the
	// workers share a WorkCounter instead of fixed pop counts.
	parseWork := spamer.NewWorkCounter("pipe.parse", n)
	processWork := spamer.NewWorkCounter("pipe.process", n)
	for w := 0; w < pipeWorkers; w++ {
		w := w
		sys.Spawn(fmt.Sprintf("pipeline/parse%d", w), func(t *spamer.Thread) {
			rx := q1.NewConsumer(t.Proc, pipeLines)
			tx := q2.NewProducer(0)
			for {
				m, ok := parseWork.Take(rx, t.Proc)
				if !ok {
					return
				}
				t.Compute(pipeMidWork)
				tx.Push(t.Proc, m.Payload)
			}
		})
		sys.Spawn(fmt.Sprintf("pipeline/process%d", w), func(t *spamer.Thread) {
			rx := q2.NewConsumer(t.Proc, pipeLines)
			tx := q3.NewProducer(0)
			for {
				m, ok := processWork.Take(rx, t.Proc)
				if !ok {
					return
				}
				t.Compute(pipeMidWork)
				tx.Push(t.Proc, m.Payload)
			}
		})
	}

	sys.Spawn("pipeline/sink", func(t *spamer.Thread) {
		rx := q3.NewConsumer(t.Proc, pipeLines)
		cr := qc.NewProducer(0)
		credits := 0
		for i := 0; i < n; i++ {
			rx.Pop(t.Proc)
			t.Compute(pipeSinkWork)
			if (i+1)%pipeBatch == 0 && credits < batches-pipeDepth {
				cr.Push(t.Proc, uint64(credits))
				credits++
			}
		}
	})
}
