package workloads

import (
	"testing"

	"spamer"
)

func TestExtendedRegistrySeparate(t *testing.T) {
	ext := Extended()
	if len(ext) != 3 {
		t.Fatalf("extended = %d", len(ext))
	}
	// The paper's registry must remain exactly the Table 2 eight.
	if len(All()) != 8 {
		t.Fatalf("All() = %d, extended leaked into the paper set", len(All()))
	}
	for _, name := range []string{"allreduce", "alltoall", "reduce"} {
		if _, ok := ExtendedByName(name); !ok {
			t.Fatalf("ExtendedByName(%q) failed", name)
		}
		if _, ok := ByName(name); ok {
			t.Fatalf("%q visible in the paper registry", name)
		}
	}
}

func TestExtendedWorkloadsAllConfigs(t *testing.T) {
	for _, w := range Extended() {
		w := w
		for _, alg := range spamer.Configs() {
			alg := alg
			t.Run(w.Name+"/"+alg, func(t *testing.T) {
				t.Parallel()
				res := w.Run(spamer.Config{Algorithm: alg, Deadline: 1 << 34}, 1)
				if res.Pushed == 0 || res.Pushed != res.Popped {
					t.Fatalf("conservation: %d/%d", res.Pushed, res.Popped)
				}
			})
		}
	}
}

func TestExtendedMessageCounts(t *testing.T) {
	want := map[string]uint64{
		"allreduce": allreduceRanks * uint64(log2(allreduceRanks)) * allreduceIters,
		"alltoall":  alltoallRanks * (alltoallRanks - 1) * alltoallIters,
		"reduce":    (reduceRanks - 1) * reduceIters,
	}
	for name, n := range want {
		w, _ := ExtendedByName(name)
		res := w.Run(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 34}, 1)
		if res.Pushed != n {
			t.Errorf("%s: moved %d messages, want %d", name, res.Pushed, n)
		}
	}
}

// TestAllreduceCorrectness: run one iteration's dataflow manually and
// verify the butterfly converges — by construction every rank ends with
// the same accumulated value each iteration, so conservation plus
// completion is the functional check; here we also verify the
// communication volume matches the butterfly's N*log2(N) per iteration.
func TestAllreduceVolume(t *testing.T) {
	w, _ := ExtendedByName("allreduce")
	res := w.Run(spamer.Config{Algorithm: spamer.AlgBaseline, Deadline: 1 << 34}, 1)
	perIter := res.Pushed / allreduceIters
	if perIter != allreduceRanks*uint64(log2(allreduceRanks)) {
		t.Fatalf("per-iteration messages = %d, want %d", perIter, allreduceRanks*uint64(log2(allreduceRanks)))
	}
}

// TestExtendedSpeculationNeutralOrBetter: the extended collectives are
// synchronization-heavy; SPAMeR must never slow them down materially.
func TestExtendedSpeculationNeutralOrBetter(t *testing.T) {
	for _, w := range Extended() {
		base := w.Run(spamer.Config{Algorithm: spamer.AlgBaseline, Deadline: 1 << 34}, 1)
		spec := w.Run(spamer.Config{Algorithm: spamer.AlgTuned, Deadline: 1 << 34}, 1)
		if sp := spec.Speedup(base); sp < 0.95 {
			t.Errorf("%s: tuned speedup %.2f (slowdown)", w.Name, sp)
		}
	}
}
