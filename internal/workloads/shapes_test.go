package workloads

import (
	"math"
	"testing"

	"spamer"
)

// shapeMatrix runs every benchmark under every configuration once and
// caches the results for the shape assertions below — the qualitative
// claims of the paper's evaluation (§4.3, Figures 8-10) that this
// reproduction must preserve.
var shapeOnce struct {
	done    bool
	results map[string]map[string]spamer.Result
}

func shapeResults(t *testing.T) map[string]map[string]spamer.Result {
	t.Helper()
	if shapeOnce.done {
		return shapeOnce.results
	}
	out := map[string]map[string]spamer.Result{}
	for _, w := range All() {
		out[w.Name] = map[string]spamer.Result{}
		for _, alg := range spamer.Configs() {
			out[w.Name][alg] = w.Run(spamer.Config{Algorithm: alg, Deadline: 1 << 34}, 1)
		}
	}
	shapeOnce.done = true
	shapeOnce.results = out
	return out
}

func speedup(res map[string]spamer.Result, alg string) float64 {
	return res[alg].Speedup(res[spamer.AlgBaseline])
}

// TestShapeFigure8Winners: SPAMeR clearly beats VL on the
// communication-latency-bound benchmarks (incast, halo, pipeline,
// firewall, FIR) with the 0-delay algorithm.
func TestShapeFigure8Winners(t *testing.T) {
	rs := shapeResults(t)
	for _, name := range []string{"incast", "halo", "pipeline", "firewall", "FIR"} {
		if sp := speedup(rs[name], spamer.AlgZeroDelay); sp < 1.2 {
			t.Errorf("%s: 0delay speedup = %.2f, want >= 1.2", name, sp)
		}
	}
}

// TestShapeFigure8Neutral: ping-pong, sweep and bitonic gain little —
// data production is on their critical path (§4.3).
func TestShapeFigure8Neutral(t *testing.T) {
	rs := shapeResults(t)
	for _, name := range []string{"ping-pong", "sweep", "bitonic"} {
		for _, alg := range []string{spamer.AlgZeroDelay, spamer.AlgAdaptive, spamer.AlgTuned} {
			sp := speedup(rs[name], alg)
			if sp < 0.93 || sp > 1.2 {
				t.Errorf("%s/%s: speedup = %.2f, want ~1.0", name, alg, sp)
			}
		}
	}
}

// TestShapeFIRAlgorithmOrdering: on FIR, 0-delay wins, the tuned
// algorithm recovers most of it, and the adaptive algorithm trails
// ("the adaptive algorithm adjusts the delay too dramatically", §4.3).
func TestShapeFIRAlgorithmOrdering(t *testing.T) {
	rs := shapeResults(t)
	zd := speedup(rs["FIR"], spamer.AlgZeroDelay)
	ad := speedup(rs["FIR"], spamer.AlgAdaptive)
	tu := speedup(rs["FIR"], spamer.AlgTuned)
	if !(zd > tu && tu > ad) {
		t.Errorf("FIR ordering: 0delay=%.2f tuned=%.2f adapt=%.2f, want 0delay > tuned > adapt", zd, tu, ad)
	}
	if ad > zd-0.1 {
		t.Errorf("FIR: adaptive %.2f too close to 0delay %.2f", ad, zd)
	}
}

// TestShapeFIRIsLargestWin: FIR shows the highest 0-delay speedup of the
// suite (paper: 2.59x, the maximum of Figure 8).
func TestShapeFIRIsLargestWin(t *testing.T) {
	rs := shapeResults(t)
	fir := speedup(rs["FIR"], spamer.AlgZeroDelay)
	for _, w := range All() {
		if w.Name == "FIR" {
			continue
		}
		if sp := speedup(rs[w.Name], spamer.AlgZeroDelay); sp > fir+0.01 {
			t.Errorf("%s 0delay speedup %.2f exceeds FIR's %.2f", w.Name, sp, fir)
		}
	}
}

// TestShapeAdaptiveCloseElsewhere: "For all the benchmarks except FIR,
// the adaptive delay algorithm obtains performance improvement fairly
// close to the 0-delay algorithm" (§4.3).
func TestShapeAdaptiveCloseElsewhere(t *testing.T) {
	rs := shapeResults(t)
	for _, w := range All() {
		if w.Name == "FIR" {
			continue
		}
		zd, ad := speedup(rs[w.Name], spamer.AlgZeroDelay), speedup(rs[w.Name], spamer.AlgAdaptive)
		if math.Abs(zd-ad) > 0.12 {
			t.Errorf("%s: adaptive %.2f not close to 0delay %.2f", w.Name, ad, zd)
		}
	}
}

// TestShapeGeomeans: geometric-mean ordering of Figure 8 —
// 0-delay > tuned > adaptive, all comfortably above 1
// (paper: 1.45x / 1.33x / 1.25x).
func TestShapeGeomeans(t *testing.T) {
	rs := shapeResults(t)
	geo := func(alg string) float64 {
		sum := 0.0
		for _, w := range All() {
			sum += math.Log(speedup(rs[w.Name], alg))
		}
		return math.Exp(sum / float64(len(All())))
	}
	zd, ad, tu := geo(spamer.AlgZeroDelay), geo(spamer.AlgAdaptive), geo(spamer.AlgTuned)
	if !(zd >= tu && tu >= ad) {
		t.Errorf("geomeans: 0delay=%.3f tuned=%.3f adapt=%.3f, want 0delay >= tuned >= adapt", zd, tu, ad)
	}
	if ad < 1.1 || zd < 1.2 {
		t.Errorf("geomeans too low: 0delay=%.3f adapt=%.3f", zd, ad)
	}
}

// TestShapeFigure10aFailureRates: the VL baseline almost never fails;
// 0-delay fails the most; the adaptive algorithm keeps the failure rate
// under 50% on every benchmark (§4.3).
func TestShapeFigure10aFailureRates(t *testing.T) {
	rs := shapeResults(t)
	for _, w := range All() {
		res := rs[w.Name]
		if fr := res[spamer.AlgBaseline].FailureRate(); fr > 0.10 {
			t.Errorf("%s: VL failure rate %.0f%%, want ~0", w.Name, fr*100)
		}
		if fr := res[spamer.AlgAdaptive].FailureRate(); fr >= 0.50 {
			t.Errorf("%s: adaptive failure rate %.0f%%, want < 50%%", w.Name, fr*100)
		}
		zd := res[spamer.AlgZeroDelay].FailureRate()
		ad := res[spamer.AlgAdaptive].FailureRate()
		if zd < ad-1e-9 {
			t.Errorf("%s: 0delay failure %.0f%% below adaptive %.0f%%", w.Name, zd*100, ad*100)
		}
	}
}

// TestShapeFigure10bBusUtilization: with the adaptive or tuned
// algorithm, SPAMeR's bus utilization is comparable to or lower than the
// baseline on benchmarks where requests dominate; 0-delay burns the most
// bandwidth of the three on failure-heavy workloads.
func TestShapeFigure10bBusUtilization(t *testing.T) {
	rs := shapeResults(t)
	for _, w := range All() {
		res := rs[w.Name]
		zd := res[spamer.AlgZeroDelay].BusUtilization
		ad := res[spamer.AlgAdaptive].BusUtilization
		if ad > zd*1.05+1e-9 {
			t.Errorf("%s: adaptive bus %.3f above 0delay %.3f", w.Name, ad, zd)
		}
	}
	// On the request-heavy pipeline benchmark, SPAMeR (adaptive) must
	// move less bus traffic than the baseline: successful speculation
	// halves the per-message transaction count (§4.3).
	res := rs["pipeline"]
	if res[spamer.AlgAdaptive].BusUtilization >= res[spamer.AlgBaseline].BusUtilization {
		t.Errorf("pipeline: adaptive bus %.3f not below baseline %.3f",
			res[spamer.AlgAdaptive].BusUtilization, res[spamer.AlgBaseline].BusUtilization)
	}
}

// TestShapeFigure9Breakdown: speculation reduces consumer-line empty
// time on the winning benchmarks (SPAMeR "cuts off some empty cycles").
func TestShapeFigure9Breakdown(t *testing.T) {
	rs := shapeResults(t)
	for _, name := range []string{"incast", "pipeline", "firewall", "FIR"} {
		res := rs[name]
		base := res[spamer.AlgBaseline]
		spec := res[spamer.AlgZeroDelay]
		if spec.AvgEmptyTicks >= base.AvgEmptyTicks {
			t.Errorf("%s: 0delay avg empty %.0f not below baseline %.0f",
				name, spec.AvgEmptyTicks, base.AvgEmptyTicks)
		}
	}
}

// TestShapeMessageConservation: every cell of the matrix conserves
// messages.
func TestShapeMessageConservation(t *testing.T) {
	rs := shapeResults(t)
	for name, byAlg := range rs {
		for alg, res := range byAlg {
			if res.Pushed != res.Popped {
				t.Errorf("%s/%s: pushed %d != popped %d", name, alg, res.Pushed, res.Popped)
			}
		}
	}
}
