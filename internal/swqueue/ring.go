package swqueue

import (
	"fmt"
	"sync/atomic"
)

// Ring is a bounded multi-producer multi-consumer FIFO built on a
// sequence-stamped circular buffer (Vyukov-style). It is the software
// analogue of a fixed-capacity hardware queue: producers spin when full,
// consumers when empty — precisely the backpressure behaviour hardware
// queues give for free.
type Ring[T any] struct {
	mask  uint64
	cells []ringCell[T]
	head  atomic.Uint64 // consumer cursor
	tail  atomic.Uint64 // producer cursor
}

type ringCell[T any] struct {
	seq   atomic.Uint64
	value T
}

// NewRing returns a ring with the given power-of-two capacity.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("swqueue: ring capacity %d not a power of two", capacity))
	}
	r := &Ring[T]{mask: uint64(capacity - 1), cells: make([]ringCell[T], capacity)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// TryEnqueue appends v unless the ring is full.
func (r *Ring[T]) TryEnqueue(v T) bool {
	for {
		tail := r.tail.Load()
		cell := &r.cells[tail&r.mask]
		seq := cell.seq.Load()
		switch {
		case seq == tail:
			if r.tail.CompareAndSwap(tail, tail+1) {
				cell.value = v
				cell.seq.Store(tail + 1)
				return true
			}
		case seq < tail:
			return false // full
		}
	}
}

// TryDequeue removes the oldest element unless the ring is empty.
func (r *Ring[T]) TryDequeue() (v T, ok bool) {
	for {
		head := r.head.Load()
		cell := &r.cells[head&r.mask]
		seq := cell.seq.Load()
		switch {
		case seq == head+1:
			if r.head.CompareAndSwap(head, head+1) {
				v = cell.value
				cell.seq.Store(head + r.mask + 1)
				return v, true
			}
		case seq <= head:
			return v, false // empty
		}
	}
}

// Len approximates the current occupancy.
func (r *Ring[T]) Len() int {
	d := int64(r.tail.Load()) - int64(r.head.Load())
	if d < 0 {
		d = 0
	}
	if d > int64(len(r.cells)) {
		d = int64(len(r.cells))
	}
	return int(d)
}

// Cap returns the capacity.
func (r *Ring[T]) Cap() int { return len(r.cells) }
