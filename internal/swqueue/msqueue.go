// Package swqueue provides the software message-queue baselines the
// paper positions SPAMeR against (§5): the Michael–Scott lock-free
// queue, a bounded MPMC ring, and a cycle-modelled coherence-based
// software queue used for the Figure 1 latency comparison
// (Lc: coherence queue > Lv: Virtual-Link > Ls: SPAMeR).
//
// The Michael–Scott queue and the ring are real concurrent data
// structures (usable from goroutines); the coherence queue is a
// simulator model whose cost structure follows the MOESI snoop/
// invalidation flow of Figure 1a.
package swqueue

import "sync/atomic"

// node is one Michael–Scott queue cell.
type node[T any] struct {
	value T
	next  atomic.Pointer[node[T]]
}

// MSQueue is the classic Michael & Scott non-blocking FIFO queue [31]:
// unbounded, multi-producer, multi-consumer, lock-free.
type MSQueue[T any] struct {
	head atomic.Pointer[node[T]]
	tail atomic.Pointer[node[T]]
}

// NewMSQueue returns an empty queue.
func NewMSQueue[T any]() *MSQueue[T] {
	q := &MSQueue[T]{}
	sentinel := &node[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enqueue appends v. Lock-free: concurrent enqueuers help each other
// swing the tail.
func (q *MSQueue[T]) Enqueue(v T) {
	n := &node[T]{value: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail lagging: help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			return
		}
	}
}

// Dequeue removes the oldest element, reporting ok=false on empty.
func (q *MSQueue[T]) Dequeue() (v T, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return v, false // empty
		}
		if head == tail {
			// Tail lagging behind a concurrent enqueue: help.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		value := next.value
		if q.head.CompareAndSwap(head, next) {
			return value, true
		}
	}
}

// Empty reports whether the queue appeared empty at the check.
func (q *MSQueue[T]) Empty() bool {
	head := q.head.Load()
	return head.next.Load() == nil
}
