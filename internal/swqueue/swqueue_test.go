package swqueue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestMSQueueFIFOSequential(t *testing.T) {
	q := NewMSQueue[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty succeeded")
	}
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = %d, %v", i, v, ok)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
}

// Property: any interleaving of enqueues and dequeues behaves like a
// reference slice-backed FIFO.
func TestMSQueueModelProperty(t *testing.T) {
	f := func(ops []int16) bool {
		q := NewMSQueue[int16]()
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				q.Enqueue(op)
				model = append(model, op)
			} else {
				v, ok := q.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		for len(model) > 0 {
			v, ok := q.Dequeue()
			if !ok || v != model[0] {
				return false
			}
			model = model[1:]
		}
		_, ok := q.Dequeue()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMSQueueConcurrent: N producers, M consumers; every element
// delivered exactly once and per-producer FIFO holds.
func TestMSQueueConcurrent(t *testing.T) {
	const producers, consumers, perProd = 4, 4, 500
	q := NewMSQueue[[2]int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				q.Enqueue([2]int{p, i})
			}
		}()
	}
	results := make(chan [2]int, producers*perProd)
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				if v, ok := q.Dequeue(); ok {
					results <- v
					continue
				}
				runtime.Gosched()
				select {
				case <-done:
					// Final drain after producers finished.
					for {
						v, ok := q.Dequeue()
						if !ok {
							return
						}
						results <- v
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	close(results)
	seen := map[[2]int]int{}
	for v := range results {
		seen[v]++
	}
	if len(seen) != producers*perProd {
		t.Fatalf("distinct = %d, want %d", len(seen), producers*perProd)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("element %v seen %d times", k, n)
		}
	}
}

func TestRingCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two capacity accepted")
		}
	}()
	NewRing[int](12)
}

func TestRingFIFOAndBounds(t *testing.T) {
	r := NewRing[int](8)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d", r.Cap())
	}
	if _, ok := r.TryDequeue(); ok {
		t.Fatal("dequeue on empty succeeded")
	}
	for i := 0; i < 8; i++ {
		if !r.TryEnqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.TryEnqueue(99) {
		t.Fatal("enqueue on full succeeded")
	}
	if r.Len() != 8 {
		t.Fatalf("len = %d", r.Len())
	}
	for i := 0; i < 8; i++ {
		v, ok := r.TryDequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = %d, %v", i, v, ok)
		}
	}
}

// Property: the ring matches a bounded reference FIFO.
func TestRingModelProperty(t *testing.T) {
	f := func(ops []int16) bool {
		r := NewRing[int16](16)
		var model []int16
		for _, op := range ops {
			if op >= 0 {
				got := r.TryEnqueue(op)
				want := len(model) < 16
				if got != want {
					return false
				}
				if want {
					model = append(model, op)
				}
			} else {
				v, ok := r.TryDequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRingConcurrent(t *testing.T) {
	const producers, perProd = 4, 1000
	r := NewRing[[2]int](64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for !r.TryEnqueue([2]int{p, i}) {
					runtime.Gosched()
				}
			}
		}()
	}
	seen := map[[2]int]int{}
	var mu sync.Mutex
	var cg sync.WaitGroup
	remaining := make(chan struct{})
	for c := 0; c < 2; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				if v, ok := r.TryDequeue(); ok {
					mu.Lock()
					seen[v]++
					mu.Unlock()
					continue
				}
				runtime.Gosched()
				select {
				case <-remaining:
					for {
						v, ok := r.TryDequeue()
						if !ok {
							return
						}
						mu.Lock()
						seen[v]++
						mu.Unlock()
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(remaining)
	cg.Wait()
	if len(seen) != producers*perProd {
		t.Fatalf("distinct = %d, want %d", len(seen), producers*perProd)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("element %v seen %d times", k, n)
		}
	}
	// Per-producer FIFO cannot be asserted across two consumers without
	// per-consumer logs; the exactly-once check above is the invariant
	// the ring guarantees globally.
}
