package swqueue

import (
	"spamer"
	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
)

// Figure1Result is the cross-core message latency comparison of the
// paper's Figure 1: the mean push-to-first-use latency (in cycles,
// consumer busy time excluded) of a closed-loop 1:1 transfer under the
// coherence-based software queue (Lc), Virtual-Link (Lv), and SPAMeR
// (Ls). The claim to reproduce is the strict ordering Lc > Lv > Ls.
//
// Protocol per message (one in flight at a time, synchronized by
// out-of-band harness signals so queue-depth effects cannot mask
// mechanism latency): the producer stamps and pushes, the consumer works
// for a fixed busy period while the message travels, then turns to the
// queue. Under Virtual-Link the turn costs a request round trip; under
// SPAMeR the data is already in the consumer's line; under the coherent
// software queue the turn ping-pongs the shared control and data lines.
type Figure1Result struct {
	Lc, Lv, Ls float64
	Messages   int
}

const (
	fig1Messages = 300
	fig1BusyWork = 100 // consumer busy period while the message travels
)

// RunFigure1 measures all three mechanisms.
func RunFigure1() Figure1Result {
	return Figure1Result{
		Lc:       measureCoherent(),
		Lv:       measureHW(spamer.AlgBaseline),
		Ls:       measureHW(spamer.AlgZeroDelay),
		Messages: fig1Messages,
	}
}

func measureCoherent() float64 {
	k := sim.New()
	k.SetDeadline(1 << 34)
	bus := noc.New(k)
	q := NewCoherentQueue(k, bus, 8)
	sent := sim.NewSignal("fig1.sent")
	acked := sim.NewSignal("fig1.acked")
	turn := 0 // 0: producer may send; 1: consumer may pop
	var total uint64
	k.Go("producer", func(p *sim.Proc) {
		for i := 0; i < fig1Messages; i++ {
			q.Push(p, 0, mem.Message{Seq: uint64(i), Payload: p.Now()})
			turn = 1
			sent.Fire()
			sim.WaitUntil(p, acked, func() bool { return turn == 0 })
		}
	})
	k.Go("consumer", func(p *sim.Proc) {
		for i := 0; i < fig1Messages; i++ {
			sim.WaitUntil(p, sent, func() bool { return turn == 1 })
			p.Sleep(fig1BusyWork)
			m := q.Pop(p, 1)
			total += p.Now() - m.Payload - fig1BusyWork
			turn = 0
			acked.Fire()
		}
	})
	k.Run()
	return float64(total) / fig1Messages
}

func measureHW(alg string) float64 {
	sys := spamer.NewSystem(spamer.Config{Algorithm: alg, Deadline: 1 << 34})
	q := sys.NewQueue("fig1")
	sent := sim.NewSignal("fig1.sent")
	acked := sim.NewSignal("fig1.acked")
	turn := 0
	var total uint64
	sys.Spawn("producer", func(t *spamer.Thread) {
		pr := q.NewProducer(1)
		for i := 0; i < fig1Messages; i++ {
			pr.Push(t.Proc, t.Now())
			turn = 1
			sent.Fire()
			sim.WaitUntil(t.Proc, acked, func() bool { return turn == 0 })
		}
	})
	sys.Spawn("consumer", func(t *spamer.Thread) {
		c := q.NewConsumer(t.Proc, 2)
		for i := 0; i < fig1Messages; i++ {
			sim.WaitUntil(t.Proc, sent, func() bool { return turn == 1 })
			t.Compute(fig1BusyWork)
			m := c.Pop(t.Proc)
			total += t.Now() - m.Payload - fig1BusyWork
			turn = 0
			acked.Fire()
		}
	})
	sys.Run()
	return float64(total) / fig1Messages
}
