package swqueue

import (
	"testing"

	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
)

func TestCoherentQueueFIFO(t *testing.T) {
	k := sim.New()
	k.SetDeadline(1 << 30)
	bus := noc.New(k)
	q := NewCoherentQueue(k, bus, 4)
	const n = 50
	k.Go("producer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			q.Push(p, 0, mem.Message{Seq: uint64(i)})
		}
	})
	var got []uint64
	k.Go("consumer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			got = append(got, q.Pop(p, 1).Seq)
			p.Sleep(10)
		}
	})
	k.Run()
	if len(got) != n {
		t.Fatalf("popped %d", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("residual len = %d", q.Len())
	}
	st := q.Stats()
	if st.Transfers == 0 || st.Invalidates == 0 {
		t.Fatalf("no coherence traffic recorded: %+v", st)
	}
}

func TestCoherentQueueBackpressure(t *testing.T) {
	k := sim.New()
	k.SetDeadline(1 << 30)
	bus := noc.New(k)
	q := NewCoherentQueue(k, bus, 2)
	var pushDone uint64
	k.Go("producer", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			q.Push(p, 0, mem.Message{Seq: uint64(i)})
		}
		pushDone = p.Now()
	})
	k.Go("consumer", func(p *sim.Proc) {
		p.Sleep(5000)
		for i := 0; i < 4; i++ {
			q.Pop(p, 1)
		}
	})
	k.Run()
	if pushDone < 5000 {
		t.Fatalf("producer finished at %d despite full queue", pushDone)
	}
}

// TestFigure1Ordering is the headline comparison of Figure 1:
// coherence-based queue slowest, Virtual-Link faster, SPAMeR fastest.
func TestFigure1Ordering(t *testing.T) {
	r := RunFigure1()
	if !(r.Lc > r.Lv && r.Lv > r.Ls) {
		t.Fatalf("latency ordering violated: Lc=%.1f Lv=%.1f Ls=%.1f", r.Lc, r.Lv, r.Ls)
	}
	if r.Lc < 1.5*r.Ls {
		t.Errorf("coherence queue only %.2fx slower than SPAMeR; expected a clear gap", r.Lc/r.Ls)
	}
}
