package swqueue

import (
	"spamer/internal/config"
	"spamer/internal/mem"
	"spamer/internal/noc"
	"spamer/internal/sim"
)

// CoherentQueue is a cycle-modelled software SPSC queue living in
// coherent shared memory — the baseline of Figure 1a. Every transfer of
// the queue's shared state (head/tail indices and the data line) between
// the producer's and the consumer's cache follows the MOESI flow: a
// snoop/invalidation round trip on the coherence network, then the data
// response. The cost structure is what makes hardware queues attractive:
// each message moves the data line AND ping-pongs the control lines.
type CoherentQueue struct {
	k   *sim.Kernel
	bus *noc.Bus

	depth int
	buf   []mem.Message
	head  uint64
	tail  uint64

	// Which core's cache currently owns each shared line (-1 = memory).
	tailOwner int // producer-written control line
	headOwner int // consumer-written control line
	dataOwner map[uint64]int

	onChange *sim.Signal

	stats CoherentStats
}

// CoherentStats counts coherence traffic.
type CoherentStats struct {
	Transfers   uint64 // cache-to-cache line transfers
	Invalidates uint64
	Messages    uint64
}

// NewCoherentQueue returns a queue of the given depth shared between
// two cores on the bus.
func NewCoherentQueue(k *sim.Kernel, bus *noc.Bus, depth int) *CoherentQueue {
	if depth <= 0 {
		depth = 8
	}
	return &CoherentQueue{
		k:         k,
		bus:       bus,
		depth:     depth,
		buf:       make([]mem.Message, depth),
		tailOwner: -1,
		headOwner: -1,
		dataOwner: make(map[uint64]int),
		onChange:  sim.NewSignal("coherent.change"),
	}
}

// Stats returns the traffic counters.
func (q *CoherentQueue) Stats() CoherentStats { return q.stats }

// acquire models core `core` upgrading a line to exclusive/modified:
// if another cache owns it, a snoop + invalidation + data response
// crosses the network; the caller's process pays the latency.
func (q *CoherentQueue) acquire(p *sim.Proc, owner *int, core int) {
	if *owner == core {
		p.Sleep(config.L1HitCycles)
		return
	}
	q.stats.Transfers++
	if *owner != -1 {
		q.stats.Invalidates++
	}
	// Snoop request out, data response back (cache-to-cache), each a
	// control or data packet on the coherence network.
	done := sim.NewSignal("coherent.acquire")
	q.bus.Send(noc.PktCoherence, func() {
		q.bus.Send(noc.PktCoherence, func() {
			done.Fire()
		})
	})
	done.Wait(p)
	p.Sleep(config.L2HitCycles) // directory/LLC lookup on the way
	*owner = core
}

// Push enqueues a message from the producer core, spinning (with
// re-acquired lines, as a real spin would) while the queue is full.
func (q *CoherentQueue) Push(p *sim.Proc, core int, msg mem.Message) {
	for {
		// Read the consumer-owned head to check fullness: acquiring
		// shared suffices, but the subsequent write to tail upgrades.
		q.acquire(p, &q.headOwner, core)
		if q.tail-q.head < uint64(q.depth) {
			break
		}
		sim.WaitUntil(p, q.onChange, func() bool { return q.tail-q.head < uint64(q.depth) })
	}
	slot := q.tail % uint64(q.depth)
	q.acquireData(p, core, slot)
	q.buf[slot] = msg
	q.acquire(p, &q.tailOwner, core)
	q.tail++
	q.stats.Messages++
	q.onChange.Fire()
}

// acquireData upgrades the data line of a slot into core's cache.
func (q *CoherentQueue) acquireData(p *sim.Proc, core int, slot uint64) {
	cur, ok := q.dataOwner[slot]
	if !ok {
		cur = -1
	}
	q.acquire(p, &cur, core)
	q.dataOwner[slot] = core
}

// Pop dequeues a message at the consumer core, spinning while empty.
func (q *CoherentQueue) Pop(p *sim.Proc, core int) mem.Message {
	for {
		q.acquire(p, &q.tailOwner, core)
		if q.tail > q.head {
			break
		}
		sim.WaitUntil(p, q.onChange, func() bool { return q.tail > q.head })
	}
	slot := q.head % uint64(q.depth)
	q.acquireData(p, core, slot)
	msg := q.buf[slot]
	q.acquire(p, &q.headOwner, core)
	q.head++
	q.onChange.Fire()
	return msg
}

// Len reports the current occupancy.
func (q *CoherentQueue) Len() int { return int(q.tail - q.head) }
