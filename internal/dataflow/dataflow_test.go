package dataflow

import (
	"testing"

	"spamer"
)

func newSys(alg string) *spamer.System {
	return spamer.NewSystem(spamer.Config{Algorithm: alg, Deadline: 1 << 34})
}

func TestLinearPipeline(t *testing.T) {
	for _, alg := range spamer.Configs() {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			sys := newSys(alg)
			g := New(sys)
			const n = 200
			src := g.Source("gen", n, 10, func(i int) uint64 { return uint64(i) })
			double := g.Op("double", 1, 20, func(v uint64, emit Emit) { emit(0, v*2) })
			var sum uint64
			sink := g.Sink("sum", 15, func(v uint64) { sum += v })
			g.Connect(src, double, 4)
			g.Connect(double, sink, 4)
			res := g.Run()
			want := uint64(n * (n - 1)) // 2 * sum(0..n-1)
			if sum != want {
				t.Fatalf("sum = %d, want %d", sum, want)
			}
			if res.Pushed != res.Popped {
				t.Fatalf("conservation: %d/%d", res.Pushed, res.Popped)
			}
			if src.Processed() != n || double.Processed() != n || sink.Processed() != n {
				t.Fatalf("counts: %d/%d/%d", src.Processed(), double.Processed(), sink.Processed())
			}
		})
	}
}

func TestParallelOperatorSharesInput(t *testing.T) {
	sys := newSys(spamer.AlgTuned)
	g := New(sys)
	const n = 240
	src := g.Source("gen", n, 5, func(i int) uint64 { return uint64(i) })
	work := g.Op("work", 4, 120, func(v uint64, emit Emit) { emit(0, v) })
	seen := map[uint64]int{}
	sink := g.Sink("collect", 5, func(v uint64) { seen[v]++ })
	g.Connect(src, work, 2)
	g.Connect(work, sink, 8)
	g.Run()
	if len(seen) != n {
		t.Fatalf("distinct = %d, want %d", len(seen), n)
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %d delivered %d times", v, c)
		}
	}
	if work.Processed() != n {
		t.Fatalf("work processed %d", work.Processed())
	}
}

// TestFilterAndFlatMap: operators may emit zero or several messages.
func TestFilterAndFlatMap(t *testing.T) {
	sys := newSys(spamer.AlgZeroDelay)
	g := New(sys)
	const n = 120
	src := g.Source("gen", n, 5, func(i int) uint64 { return uint64(i) })
	// Keep evens, duplicate multiples of 4.
	filter := g.Op("filter", 2, 30, func(v uint64, emit Emit) {
		if v%2 != 0 {
			return
		}
		emit(0, v)
		if v%4 == 0 {
			emit(0, v)
		}
	})
	count := 0
	sink := g.Sink("count", 5, func(v uint64) { count++ })
	g.Connect(src, filter, 2)
	g.Connect(filter, sink, 4)
	g.Run()
	want := n/2 + n/4 // evens + duplicated multiples of 4
	if count != want {
		t.Fatalf("count = %d, want %d", count, want)
	}
	if filter.Emitted() != uint64(want) {
		t.Fatalf("emitted = %d", filter.Emitted())
	}
}

// TestFanInFanOut: two sources merge into one operator (M:N edge), and
// one operator feeds two distinct downstream paths via two ports.
func TestFanInFanOut(t *testing.T) {
	sys := newSys(spamer.AlgTuned)
	g := New(sys)
	const n = 100
	srcA := g.Source("a", n, 8, func(i int) uint64 { return uint64(i) })
	srcB := g.Source("b", n, 11, func(i int) uint64 { return uint64(1000 + i) })
	route := g.Op("route", 2, 25, func(v uint64, emit Emit) {
		if v < 1000 {
			emit(0, v)
		} else {
			emit(1, v)
		}
	})
	var low, high int
	sinkLow := g.Sink("low", 5, func(v uint64) { low++ })
	sinkHigh := g.Sink("high", 5, func(v uint64) { high++ })
	g.Connect(srcA, route, 2)
	g.Connect(srcB, route, 2)
	g.Connect(route, sinkLow, 4)
	g.Connect(route, sinkHigh, 4)
	g.Run()
	if low != n || high != n {
		t.Fatalf("low=%d high=%d, want %d each", low, high, n)
	}
	if route.Processed() != 2*n {
		t.Fatalf("route processed %d", route.Processed())
	}
}

func TestCycleRejected(t *testing.T) {
	sys := newSys(spamer.AlgTuned)
	g := New(sys)
	a := g.Op("a", 1, 1, func(v uint64, e Emit) {})
	b := g.Op("b", 1, 1, func(v uint64, e Emit) {})
	g.Connect(a, b, 2)
	defer func() {
		if recover() == nil {
			t.Error("back edge accepted")
		}
	}()
	g.Connect(b, a, 2)
}

func TestSinkOutputsRejected(t *testing.T) {
	sys := newSys(spamer.AlgTuned)
	g := New(sys)
	s := g.Sink("s", 1, func(uint64) {})
	o := g.Op("o", 1, 1, func(uint64, Emit) {})
	_ = o
	defer func() {
		if recover() == nil {
			t.Error("sink output accepted")
		}
	}()
	// Sinks cannot be connected as a producer; force the check.
	g.Connect(s, g.Op("p", 1, 1, func(uint64, Emit) {}), 2)
}

func TestDisconnectedOpRejected(t *testing.T) {
	sys := newSys(spamer.AlgTuned)
	g := New(sys)
	g.Op("orphan", 1, 1, func(uint64, Emit) {})
	defer func() {
		if recover() == nil {
			t.Error("orphan node accepted at Run")
		}
	}()
	g.Run()
}

// TestSpeculationHelpsDataflow: the graph runtime inherits SPAMeR's
// advantage on a latency-bound chain.
func TestSpeculationHelpsDataflow(t *testing.T) {
	build := func(alg string) spamer.Result {
		sys := newSys(alg)
		g := New(sys)
		const n = 400
		src := g.Source("gen", n, 12, func(i int) uint64 { return uint64(i) })
		prev := src
		for s := 0; s < 4; s++ {
			op := g.Op("stage", 1, 18, func(v uint64, emit Emit) { emit(0, v+1) })
			g.Connect(prev, op, 2)
			prev = op
		}
		sink := g.Sink("out", 10, func(uint64) {})
		g.Connect(prev, sink, 2)
		return g.Run()
	}
	base := build(spamer.AlgBaseline)
	spec := build(spamer.AlgZeroDelay)
	if sp := spec.Speedup(base); sp < 1.2 {
		t.Fatalf("dataflow chain speedup = %.2f, want >= 1.2", sp)
	}
}
