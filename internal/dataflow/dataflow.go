// Package dataflow is a small streaming-graph runtime on top of the
// spamer queue API — the application class the paper's introduction
// motivates ("such machines often adopt a dataflow, streaming,
// communicating sequential process, or systolic array-like computation
// patterns", §1, citing frameworks like RaftLib).
//
// A Graph is a DAG of operators connected by hardware message queues.
// Operators may be replicated (parallel workers share the input queue
// as an M:N channel) and may emit zero or more messages per input
// (filter/flat-map). Termination propagates through the graph without
// poison pills: an edge is exhausted when all upstream workers have
// finished and every accepted message has been popped, which the
// runtime detects with the queue's own counters.
package dataflow

import (
	"fmt"

	"spamer"
	"spamer/internal/sim"
)

// Emit sends a value to one of the operator's output ports.
type Emit func(port int, value uint64)

// SourceFn generates the i-th value of a source.
type SourceFn func(i int) uint64

// OpFn processes one input value, emitting any number of outputs.
type OpFn func(value uint64, emit Emit)

// SinkFn consumes one terminal value.
type SinkFn func(value uint64)

// Graph is a dataflow program bound to a System. Build it with Source,
// Op and Sink, wire it with Connect, then call Run exactly once.
type Graph struct {
	sys   *spamer.System
	nodes []*Node
	edges []*edge
	ran   bool
}

// Node is one operator.
type Node struct {
	g        *Graph
	id       int
	name     string
	parallel int
	work     uint64 // cycles of compute per message

	kind   nodeKind
	src    SourceFn
	srcN   int
	op     OpFn
	sink   SinkFn
	inEdge *edge
	outs   []*edge

	remaining int // live replicas
	processed uint64
	emitted   uint64
}

type nodeKind uint8

const (
	kindSource nodeKind = iota
	kindOp
	kindSink
)

// edge is one queue between operators plus the termination bookkeeping.
type edge struct {
	q     *spamer.Queue
	to    *Node
	lines int

	// fromCount is the number of upstream nodes feeding the edge;
	// finished counts those that have completed all replicas.
	fromCount int
	finished  int

	upstreamDone bool
	done         *sim.Signal
}

// New returns an empty graph on the given system.
func New(sys *spamer.System) *Graph { return &Graph{sys: sys} }

// Source adds a generator producing n values with the given per-value
// compute cost.
func (g *Graph) Source(name string, n int, work uint64, fn SourceFn) *Node {
	return g.add(&Node{name: name, parallel: 1, work: work, kind: kindSource, src: fn, srcN: n})
}

// Op adds a transform with `parallel` worker replicas.
func (g *Graph) Op(name string, parallel int, work uint64, fn OpFn) *Node {
	if parallel <= 0 {
		parallel = 1
	}
	return g.add(&Node{name: name, parallel: parallel, work: work, kind: kindOp, op: fn})
}

// Sink adds a terminal consumer.
func (g *Graph) Sink(name string, work uint64, fn SinkFn) *Node {
	return g.add(&Node{name: name, parallel: 1, work: work, kind: kindSink, sink: fn})
}

func (g *Graph) add(n *Node) *Node {
	n.g = g
	n.id = len(g.nodes)
	n.remaining = n.parallel
	g.nodes = append(g.nodes, n)
	return n
}

// Connect wires from's next output port to to's input with an endpoint
// buffer of `lines` cache lines per consumer replica. A node has exactly
// one input edge (fan-in is expressed by connecting several nodes to the
// same downstream node, forming an M:N queue).
func (g *Graph) Connect(from, to *Node, lines int) {
	if from.kind == kindSink {
		panic(fmt.Sprintf("dataflow: %s is a sink and cannot have outputs", from.name))
	}
	if to.kind == kindSource {
		panic(fmt.Sprintf("dataflow: %s is a source and cannot have inputs", to.name))
	}
	if to.id <= from.id {
		panic(fmt.Sprintf("dataflow: edge %s->%s violates topological order (cycles unsupported)", from.name, to.name))
	}
	if lines <= 0 {
		lines = 2
	}
	// Fan-in: reuse the downstream node's input edge so several
	// upstream nodes form one M:N queue.
	var e *edge
	if to.inEdge != nil {
		e = to.inEdge
	} else {
		e = &edge{
			q:     g.sys.NewQueue(fmt.Sprintf("df.%s->%s", from.name, to.name)),
			to:    to,
			lines: lines,
			done:  sim.NewSignal(fmt.Sprintf("df.%s.done", to.name)),
		}
		to.inEdge = e
		g.edges = append(g.edges, e)
	}
	e.fromCount++
	from.outs = append(from.outs, e)
}

// exhausted reports whether no further message can arrive on e.
func (e *edge) exhausted() bool {
	return e.upstreamDone && e.q.Popped() == e.q.Pushed()
}

// producerFinished is called once per upstream node completion; when all
// producers of the edge finished, downstream consumers may drain out.
func (e *edge) producerFinished() {
	e.finished++
	if e.finished >= e.fromCount {
		e.upstreamDone = true
		e.done.Fire()
	}
}

// Run spawns every operator and drives the system to completion,
// returning the system-level result. Each worker replica runs as one
// thread; emissions use a per-worker producer endpoint on each output
// edge, and replicated operators share their input queue dynamically.
func (g *Graph) Run() spamer.Result {
	if g.ran {
		panic("dataflow: Run called twice")
	}
	g.ran = true
	for _, n := range g.nodes {
		n := n
		if n.kind != kindSource && n.inEdge == nil {
			panic(fmt.Sprintf("dataflow: node %s has no input", n.name))
		}
		if n.kind == kindSink && len(n.outs) != 0 {
			panic(fmt.Sprintf("dataflow: sink %s has outputs", n.name))
		}
		for w := 0; w < n.parallel; w++ {
			g.sys.Spawn(fmt.Sprintf("df/%s.%d", n.name, w), func(t *spamer.Thread) {
				n.runWorker(t)
			})
		}
	}
	return g.sys.Run()
}

func (n *Node) runWorker(t *spamer.Thread) {
	// Per-worker producer endpoints for every output edge.
	producers := make([]*spamer.Producer, len(n.outs))
	for i, e := range n.outs {
		producers[i] = e.q.NewProducer(0)
	}
	emit := func(port int, v uint64) {
		if port < 0 || port >= len(producers) {
			panic(fmt.Sprintf("dataflow: %s emits to port %d of %d", n.name, port, len(producers)))
		}
		producers[port].Push(t.Proc, v)
		n.emitted++
	}

	switch n.kind {
	case kindSource:
		for i := 0; i < n.srcN; i++ {
			t.Compute(n.work)
			emit(0, n.src(i))
			n.processed++
		}
	case kindOp, kindSink:
		rx := n.inEdge.q.NewConsumer(t.Proc, n.inEdge.lines)
		for {
			m, ok := rx.PopOrDone(t.Proc, n.inEdge.done, n.inEdge.exhausted)
			if !ok {
				break
			}
			t.Compute(n.work)
			n.processed++
			if n.kind == kindSink {
				n.sink(m.Payload)
			} else {
				n.op(m.Payload, emit)
			}
			// The pop may have been the edge's last message: release
			// replicas still parked on the input.
			if n.inEdge.exhausted() {
				n.inEdge.done.Fire()
			}
		}
	}

	// Last replica out propagates completion downstream.
	n.remaining--
	if n.remaining == 0 {
		for _, e := range n.outs {
			e.producerFinished()
		}
	}
}

// Processed reports how many messages the node consumed (or generated,
// for sources).
func (n *Node) Processed() uint64 { return n.processed }

// Emitted reports how many messages the node pushed downstream.
func (n *Node) Emitted() uint64 { return n.emitted }

// Name returns the node name.
func (n *Node) Name() string { return n.name }
