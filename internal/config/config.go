// Package config holds the simulated hardware configuration, mirroring
// Table 1 of the SPAMeR paper, plus the timing constants of the
// discrete-event model (DESIGN.md §3).
package config

import "fmt"

// Ticks are CPU cycles of the simulated machine.
const (
	// ClockGHz is the simulated core clock (Table 1: 2 GHz).
	ClockGHz = 2.0
	// TicksPerNS converts nanoseconds to ticks.
	TicksPerNS = 2
)

// Table 1 hardware configuration.
const (
	// NumCores is the simulated core count (Table 1: 16 AArch64 OoO CPUs).
	NumCores = 16
	// LineBytes is the cache-line size.
	LineBytes = 64
	// L1DBytes is the private L1 data cache size (32 KiB, 2-way).
	L1DBytes = 32 * 1024
	// L2Bytes is the shared L2 size (1 MiB, 16-way, mostly-inclusive).
	L2Bytes = 1024 * 1024
	// SRDEntries is the per-structure entry count of the routing device
	// (Table 1: 64 entries per prodBuf, consBuf, linkTab, and specBuf).
	SRDEntries = 64
)

// Memory hierarchy latencies, in cycles.
const (
	L1HitCycles  = 4
	L2HitCycles  = 20
	DRAMCycles   = 200
	StashCycles  = 8 // cache-injection cost at the receiving L1
	EvictPenalty = L2HitCycles
)

// Coherence-network (bus) model.
const (
	// BusBytesPerCycle is the data-path width of the shared bus.
	BusBytesPerCycle = 32
	// HopCycles is the one-way latency from a core to the routing device
	// (or back) excluding serialization.
	HopCycles = 12
	// CtrlPacketCycles is the bus occupancy of a request/response packet.
	CtrlPacketCycles = 1
)

// Routing-device microarchitecture.
const (
	// MapPipelineCycles is the depth of the 3-stage address-mapping
	// pipeline (Figure 4).
	MapPipelineCycles = 3
	// SendIssueCycles is the minimum spacing between stash issues from
	// the sending queue.
	SendIssueCycles = 1
)

// ISA operation costs (core-side cycles; packets are extra).
const (
	VLSelectCycles = 2
	VLPushCycles   = 3
	VLFetchCycles  = 2
	// SpamerRegCycles: spamer_register is a vl_fetch alias (§3.3), so it
	// costs the same as vl_fetch.
	SpamerRegCycles = VLFetchCycles
)

// Library overheads (§3.4): the queue functions are macros when inlined,
// avoiding a small per-call cost. The delta is deliberately small — the
// paper measures only a 1.02x average speedup from inlining.
const (
	CallOverheadCycles   = 3
	InlineOverheadCycles = 2
)

// Tuned delay-prediction algorithm parameters (§3.5 / Listing 1). The
// paper picks these by tuning on FIR, then cross-validates.
const (
	TunedZeta  = 256 // scanning range upper slack
	TunedTau   = 96  // scanning range lower slack
	TunedDelta = 64  // additive step
	TunedAlpha = 1   // multiplicative shift past deadline
	TunedBeta  = 2   // initialization-phase length (successful fills)
)

// DelayCapCycles bounds predictor delays so spec-enabled consumers (which
// never send requests, §3.4) cannot starve behind an unbounded back-off.
const DelayCapCycles = 1 << 16

// TicksToNS converts simulated ticks to nanoseconds.
func TicksToNS(t uint64) float64 { return float64(t) / TicksPerNS }

// TicksToMS converts simulated ticks to milliseconds.
func TicksToMS(t uint64) float64 { return TicksToNS(t) / 1e6 }

// TunedParams bundles the five tuned-algorithm parameters so the
// sensitivity sweep (Figure 11) can vary them.
type TunedParams struct {
	Zeta  uint64 // ζ: upper slack of the scanning range around the interval reference
	Tau   uint64 // τ: lower slack of the scanning range
	Delta uint64 // δ: additive step inside the range
	Alpha uint64 // α: left-shift amount past the deadline
	Beta  uint64 // β: number of fills in the initialization phase
}

// DefaultTuned returns the paper's chosen parameter set
// (ζ=256, τ=96, δ=64, α=1, β=2).
func DefaultTuned() TunedParams {
	return TunedParams{Zeta: TunedZeta, Tau: TunedTau, Delta: TunedDelta, Alpha: TunedAlpha, Beta: TunedBeta}
}

// String renders the parameter set in the paper's notation.
func (p TunedParams) String() string {
	return fmt.Sprintf("ζ=%d τ=%d δ=%d α=%d β=%d", p.Zeta, p.Tau, p.Delta, p.Alpha, p.Beta)
}

// Table1 describes the simulated hardware in the layout of the paper's
// Table 1, for the reproduction harness.
func Table1() [][2]string {
	return [][2]string{
		{"Cores", fmt.Sprintf("%dxAArch64-like cores @ %.0f GHz (1 tick = 1 cycle)", NumCores, ClockGHz)},
		{"Caches", "32 KiB private L1D, 48 KiB private L1I; 1 MiB shared L2 (latency-modelled)"},
		{"DRAM", fmt.Sprintf("%d-cycle access (latency-modelled)", DRAMCycles)},
		{"SRD", fmt.Sprintf("%d entries per prodBuf, consBuf, linkTab, and specBuf", SRDEntries)},
	}
}
