package config

import (
	"strings"
	"testing"
)

func TestTickConversions(t *testing.T) {
	if TicksToNS(2) != 1 {
		t.Fatalf("TicksToNS(2) = %v", TicksToNS(2))
	}
	if TicksToMS(2_000_000) != 1 {
		t.Fatalf("TicksToMS = %v", TicksToMS(2_000_000))
	}
}

func TestDefaultTunedMatchesPaper(t *testing.T) {
	p := DefaultTuned()
	if p.Zeta != 256 || p.Tau != 96 || p.Delta != 64 || p.Alpha != 1 || p.Beta != 2 {
		t.Fatalf("params = %+v", p)
	}
	s := p.String()
	for _, frag := range []string{"ζ=256", "τ=96", "δ=64", "α=1", "β=2"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "Cores" || !strings.Contains(rows[0][1], "16") {
		t.Fatalf("cores row = %v", rows[0])
	}
	if !strings.Contains(rows[3][1], "64 entries") {
		t.Fatalf("SRD row = %v", rows[3])
	}
}

func TestConstantsSane(t *testing.T) {
	if SRDEntries != 64 || NumCores != 16 || LineBytes != 64 {
		t.Fatal("Table 1 constants drifted")
	}
	if InlineOverheadCycles >= CallOverheadCycles {
		t.Fatal("inlining must be cheaper than a call")
	}
	if DelayCapCycles < 1024 {
		t.Fatal("delay cap too small for liveness margins")
	}
	if SpamerRegCycles != VLFetchCycles {
		t.Fatal("spamer_register must cost the same as its vl_fetch alias")
	}
}
