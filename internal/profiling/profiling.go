// Package profiling wires the standard runtime/pprof CPU and heap
// profiles into the CLIs, so future hot-path work can be profiled
// without code edits:
//
//	spamer-run -spec x.json -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (empty = disabled) and returns
// a stop function that finishes the CPU profile and, when memPath is
// non-empty, writes a heap profile. Call the stop function exactly once,
// after the workload completes; errors are fatal because a silently
// missing profile defeats the point of asking for one.
func Start(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fatal(err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profiling:", err)
	os.Exit(1)
}
