package report

import (
	"strings"
	"testing"
)

func TestSVGGroupedBars(t *testing.T) {
	var sb strings.Builder
	err := SVGGroupedBars(&sb, "Figure 8", []string{"FIR", "halo"}, []string{"0delay", "tuned"},
		[][]float64{{1.66, 1.48}, {1.35, 1.35}}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"<svg", "</svg>", "Figure 8", "FIR", "tuned", "<rect"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q in SVG", frag)
		}
	}
	// 4 bars + background + legend swatches.
	if strings.Count(out, "<rect") < 6 {
		t.Fatalf("too few rects:\n%s", out)
	}
}

func TestSVGScatter(t *testing.T) {
	var sb strings.Builder
	err := SVGScatter(&sb, "Figure 11: FIR", "delay", "energy",
		[]string{"VL(baseline)", "0delay", "adapt", "tuned", "grid1"},
		[]float64{1, 0.6, 0.72, 0.68, 0.7},
		[]float64{1, 1.4, 1.32, 1.17, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "<circle") != 5 {
		t.Fatalf("circles = %d", strings.Count(out, "<circle"))
	}
	if !strings.Contains(out, "VL(baseline)") || strings.Contains(out, ">grid1<") {
		t.Fatal("labeling rules violated")
	}
}

func TestSVGEscaping(t *testing.T) {
	var sb strings.Builder
	if err := SVGGroupedBars(&sb, "a < b & c", []string{"g"}, []string{"s"}, [][]float64{{1}}, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "a < b & c") {
		t.Fatal("unescaped markup in SVG text")
	}
	if !strings.Contains(sb.String(), "a &lt; b &amp; c") {
		t.Fatal("escape missing")
	}
}
