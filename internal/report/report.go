// Package report renders the reproduction harness's tables and figures
// as plain text: aligned tables for Tables 1-2 and horizontal bar charts
// for the Figure 8-11 series.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table renders rows of cells with aligned columns. The first row is
// treated as the header when header is true.
func Table(w io.Writer, rows [][]string, header bool) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, r := range rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(r []string) {
		parts := make([]string, len(r))
		for i, c := range r {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(rows[0])
	if header {
		total := 0
		for _, wd := range widths {
			total += wd + 2
		}
		fmt.Fprintln(w, strings.Repeat("-", total-2))
	}
	for _, r := range rows[1:] {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders one horizontal bar scaled so that maxVal maps to width
// characters.
func Bar(val, maxVal float64, width int) string {
	if maxVal <= 0 || val < 0 {
		return ""
	}
	n := int(val / maxVal * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// BarChart renders labelled values as horizontal bars with the numeric
// value appended, in the given order.
func BarChart(w io.Writer, title string, labels []string, values []float64, unit string) {
	fmt.Fprintln(w, title)
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	for i, v := range values {
		fmt.Fprintf(w, "  %s |%s %.3g%s\n", pad(labels[i], maxLabel), pad(Bar(v, maxVal, 40), 40), v, unit)
	}
}

// GroupedBarChart renders one row per group with one bar per series —
// the layout of Figures 8-10 (benchmarks x configurations).
func GroupedBarChart(w io.Writer, title string, groups []string, series []string, values [][]float64, unit string) {
	fmt.Fprintln(w, title)
	maxVal := 0.0
	for _, row := range values {
		for _, v := range row {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	maxG, maxS := 0, 0
	for _, g := range groups {
		if len(g) > maxG {
			maxG = len(g)
		}
	}
	for _, s := range series {
		if len(s) > maxS {
			maxS = len(s)
		}
	}
	for gi, g := range groups {
		for si, s := range series {
			label := ""
			if si == 0 {
				label = g
			}
			fmt.Fprintf(w, "  %s  %s |%s %.3g%s\n",
				pad(label, maxG), pad(s, maxS), pad(Bar(values[gi][si], maxVal, 36), 36), values[gi][si], unit)
		}
	}
}

// Scatter renders (x, y) points with labels — the Figure 11 layout
// (delay vs energy, normalized to the baseline at (1, 1)).
func Scatter(w io.Writer, title string, labels []string, xs, ys []float64, xName, yName string) {
	fmt.Fprintf(w, "%s  (%s, %s)\n", title, xName, yName)
	maxLabel := 0
	for _, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	for i := range labels {
		fmt.Fprintf(w, "  %s  x=%-8.3f y=%-8.3f\n", pad(labels[i], maxLabel), xs[i], ys[i])
	}
}

// SpeedupTable renders a per-scenario speedup matrix: one row per
// scenario, one column per algorithm, each cell a baseline-relative
// speedup rendered as "1.23x" ("-" when the value is missing, i.e.
// zero). The first algorithm column is conventionally the baseline
// itself (1.00x), so rows read as the paper's Figure 8 bars do.
func SpeedupTable(w io.Writer, title string, scenarios, algorithms []string, speedups [][]float64) {
	if len(scenarios) == 0 || len(algorithms) == 0 {
		return
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	rows := make([][]string, 0, len(scenarios)+1)
	head := append([]string{"scenario"}, algorithms...)
	rows = append(rows, head)
	for i, sc := range scenarios {
		row := make([]string, 1, len(algorithms)+1)
		row[0] = sc
		for j := range algorithms {
			v := 0.0
			if i < len(speedups) && j < len(speedups[i]) {
				v = speedups[i][j]
			}
			if v > 0 {
				row = append(row, fmt.Sprintf("%.2fx", v))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	Table(w, rows, true)
}
