package report

import (
	"fmt"
	"io"
	"strings"
)

// SVG rendering for the harness figures, standard library only. The
// output is intentionally plain: grouped bars for Figures 8-10 and a
// scatter for Figure 11, with axis labels and a legend, suitable for
// embedding in a README or paper appendix.

var svgPalette = []string{"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377"}

type svgCanvas struct {
	w, h int
	b    strings.Builder
}

func newCanvas(w, h int) *svgCanvas {
	c := &svgCanvas{w: w, h: h}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return c
}

func (c *svgCanvas) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x, y, w, h, fill)
}

func (c *svgCanvas) line(x1, y1, x2, y2 float64, stroke string) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n", x1, y1, x2, y2, stroke)
}

func (c *svgCanvas) circle(x, y, r float64, fill string) {
	fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, fill)
}

func (c *svgCanvas) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(s))
}

func (c *svgCanvas) finish(w io.Writer) error {
	c.b.WriteString("</svg>\n")
	_, err := io.WriteString(w, c.b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// SVGGroupedBars renders groups x series as vertical grouped bars — the
// Figure 8/9/10 layout. A horizontal reference line is drawn at ref
// (e.g. 1.0 for speedups) when ref > 0.
func SVGGroupedBars(w io.Writer, title string, groups, series []string, values [][]float64, ref float64) error {
	const width, height = 860, 420
	const mLeft, mRight, mTop, mBottom = 60, 20, 50, 80
	c := newCanvas(width, height)
	c.text(width/2, 24, 16, "middle", title)

	maxVal := ref
	for _, row := range values {
		for _, v := range row {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	maxVal *= 1.1

	plotW := float64(width - mLeft - mRight)
	plotH := float64(height - mTop - mBottom)
	y0 := float64(mTop) + plotH

	// Axes and ticks.
	c.line(float64(mLeft), float64(mTop), float64(mLeft), y0, "#333")
	c.line(float64(mLeft), y0, float64(mLeft)+plotW, y0, "#333")
	for i := 0; i <= 4; i++ {
		v := maxVal * float64(i) / 4
		y := y0 - plotH*float64(i)/4
		c.line(float64(mLeft)-4, y, float64(mLeft), y, "#333")
		c.text(float64(mLeft)-8, y+4, 11, "end", fmt.Sprintf("%.2g", v))
	}
	if ref > 0 {
		y := y0 - plotH*ref/maxVal
		c.line(float64(mLeft), y, float64(mLeft)+plotW, y, "#999")
	}

	groupW := plotW / float64(len(groups))
	barW := groupW * 0.8 / float64(len(series))
	for gi, g := range groups {
		gx := float64(mLeft) + groupW*float64(gi)
		for si := range series {
			v := values[gi][si]
			h := plotH * v / maxVal
			x := gx + groupW*0.1 + barW*float64(si)
			c.rect(x, y0-h, barW-1, h, svgPalette[si%len(svgPalette)])
		}
		c.text(gx+groupW/2, y0+16, 11, "middle", g)
	}
	// Legend.
	lx := float64(mLeft)
	ly := float64(height - 28)
	for si, s := range series {
		c.rect(lx, ly-10, 12, 12, svgPalette[si%len(svgPalette)])
		c.text(lx+16, ly, 12, "start", s)
		lx += float64(26 + 8*len(s))
	}
	return c.finish(w)
}

// SVGScatter renders labelled points — the Figure 11 layout — with the
// first point treated as the baseline anchor and crosshair lines drawn
// through it.
func SVGScatter(w io.Writer, title, xName, yName string, labels []string, xs, ys []float64) error {
	const width, height = 640, 480
	const mLeft, mRight, mTop, mBottom = 70, 30, 50, 60
	c := newCanvas(width, height)
	c.text(width/2, 24, 16, "middle", title)

	maxX, maxY := 0.0, 0.0
	for i := range xs {
		if xs[i] > maxX {
			maxX = xs[i]
		}
		if ys[i] > maxY {
			maxY = ys[i]
		}
	}
	maxX *= 1.15
	maxY *= 1.15
	if maxX <= 0 {
		maxX = 1
	}
	if maxY <= 0 {
		maxY = 1
	}

	plotW := float64(width - mLeft - mRight)
	plotH := float64(height - mTop - mBottom)
	y0 := float64(mTop) + plotH
	px := func(x float64) float64 { return float64(mLeft) + plotW*x/maxX }
	py := func(y float64) float64 { return y0 - plotH*y/maxY }

	c.line(float64(mLeft), float64(mTop), float64(mLeft), y0, "#333")
	c.line(float64(mLeft), y0, float64(mLeft)+plotW, y0, "#333")
	for i := 0; i <= 4; i++ {
		xv := maxX * float64(i) / 4
		yv := maxY * float64(i) / 4
		c.text(px(xv), y0+16, 11, "middle", fmt.Sprintf("%.2g", xv))
		c.text(float64(mLeft)-8, py(yv)+4, 11, "end", fmt.Sprintf("%.2g", yv))
	}
	c.text(width/2, height-14, 13, "middle", xName)
	c.text(16, mTop-10, 13, "start", yName)

	if len(xs) > 0 {
		// Baseline crosshair through point 0.
		c.line(px(xs[0]), float64(mTop), px(xs[0]), y0, "#ccc")
		c.line(float64(mLeft), py(ys[0]), float64(mLeft)+plotW, py(ys[0]), "#ccc")
	}
	for i := range xs {
		color := svgPalette[i%len(svgPalette)]
		c.circle(px(xs[i]), py(ys[i]), 4, color)
		if i < 4 { // label the named algorithms only; the grid clutters
			c.text(px(xs[i])+6, py(ys[i])-6, 10, "start", labels[i])
		}
	}
	return c.finish(w)
}
