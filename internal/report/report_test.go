package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	Table(&sb, [][]string{
		{"name", "value"},
		{"a", "1"},
		{"longer", "22"},
	}, true)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("separator = %q", lines[1])
	}
}

func TestTableEmpty(t *testing.T) {
	var sb strings.Builder
	Table(&sb, nil, true)
	if sb.Len() != 0 {
		t.Fatal("empty table produced output")
	}
}

func TestBarScaling(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Fatalf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Fatalf("over-max Bar = %q", got)
	}
	if got := Bar(0, 10, 10); got != "" {
		t.Fatalf("zero Bar = %q", got)
	}
	if got := Bar(1, 0, 10); got != "" {
		t.Fatalf("zero-max Bar = %q", got)
	}
}

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	BarChart(&sb, "speedup", []string{"a", "bb"}, []float64{1.0, 2.0}, "x")
	out := sb.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "2x") {
		t.Fatalf("chart:\n%s", out)
	}
}

func TestGroupedBarChart(t *testing.T) {
	var sb strings.Builder
	GroupedBarChart(&sb, "fig", []string{"g1"}, []string{"s1", "s2"},
		[][]float64{{1, 2}}, "")
	out := sb.String()
	if !strings.Contains(out, "g1") || !strings.Contains(out, "s2") {
		t.Fatalf("chart:\n%s", out)
	}
}

func TestScatter(t *testing.T) {
	var sb strings.Builder
	Scatter(&sb, "fig11", []string{"p"}, []float64{0.5}, []float64{2.0}, "delay", "energy")
	out := sb.String()
	if !strings.Contains(out, "x=0.500") || !strings.Contains(out, "y=2.000") {
		t.Fatalf("scatter:\n%s", out)
	}
}
