// Package noc models the on-chip coherence network that Virtual-Link and
// SPAMeR reuse for queue traffic (Figures 2 and 3). The model is a shared
// split-transaction bus: every packet occupies the bus for a
// size-dependent number of cycles (serialization), then takes a fixed hop
// latency to its destination. Busy-cycle accounting yields the bus
// utilization metric of Figure 10b — "the percentage of cycles that have
// at least one packet (request or data) reaches the bus".
package noc

import (
	"fmt"

	"spamer/internal/config"
	"spamer/internal/sim"
)

// PacketKind classifies bus packets, mirroring the transaction types of
// the paper's flow diagrams.
type PacketKind uint8

const (
	// PktPush is a producer vl_push carrying one cache line to the
	// routing device ((2) in Figure 3).
	PktPush PacketKind = iota
	// PktFetchReq is a consumer vl_fetch request ((4) in Figure 3).
	PktFetchReq
	// PktStash is a data push from the routing device into a consumer
	// line ((5) on-demand or (6) speculative in Figure 3).
	PktStash
	// PktResp is the hit/miss response signal from the targeted cache
	// controller back to the routing device (Figure 5).
	PktResp
	// PktRegister is a spamer_register writing a specBuf entry (§3.3).
	PktRegister
	// PktCoherence is generic coherence traffic (snoop/invalidation),
	// used by the software-queue baseline of Figure 1a.
	PktCoherence
	numPacketKinds
)

func (k PacketKind) String() string {
	switch k {
	case PktPush:
		return "push"
	case PktFetchReq:
		return "fetch-req"
	case PktStash:
		return "stash"
	case PktResp:
		return "resp"
	case PktRegister:
		return "register"
	case PktCoherence:
		return "coherence"
	default:
		return fmt.Sprintf("PacketKind(%d)", uint8(k))
	}
}

// occupancy returns the serialization cycles for a packet kind.
func occupancy(k PacketKind) uint64 {
	switch k {
	case PktPush, PktStash:
		// One cache line over a BusBytesPerCycle-wide data path.
		return (config.LineBytes + config.BusBytesPerCycle - 1) / config.BusBytesPerCycle
	default:
		return config.CtrlPacketCycles
	}
}

// MinOccupancy returns the smallest serialization cost any packet kind
// pays — the floor on time-on-wire that, together with the hop latency,
// bounds how soon a packet sent now can arrive anywhere else. The
// parallel kernel's conservative quantum is derived from it.
func MinOccupancy() uint64 {
	min := occupancy(PacketKind(0))
	for k := PacketKind(1); k < numPacketKinds; k++ {
		if o := occupancy(k); o < min {
			min = o
		}
	}
	return min
}

// Stats aggregates bus accounting for one run.
type Stats struct {
	Packets    [numPacketKinds]uint64
	BusyCycles uint64
	startTick  uint64
}

// PacketCount returns the number of packets of kind k sent.
func (s Stats) PacketCount(k PacketKind) uint64 { return s.Packets[k] }

// TotalPackets returns the total packet count across kinds.
func (s Stats) TotalPackets() uint64 {
	var t uint64
	for _, n := range s.Packets {
		t += n
	}
	return t
}

// DefaultChannels is the number of independent transfer channels of the
// interconnect. The coherence network of a 16-core CMP is a crossbar or
// mesh with several concurrent links, not a single shared wire; modelling
// a handful of channels keeps contention real (streams do queue behind
// each other) without making one saturated link the artificial bottleneck
// of every multi-queue workload.
const DefaultChannels = 4

// Bus is the shared interconnect: a fixed set of transfer channels with
// a common hop latency. A packet occupies the earliest-free channel for a
// size-dependent number of cycles; concurrent senders queue behind the
// busiest traffic, which is how contention for data-network resources
// (§1) manifests.
type Bus struct {
	k       *sim.Kernel
	hopLat  uint64
	freeAt  []uint64 // per-channel next-free tick
	freeAt0 [DefaultChannels]uint64
	stats   Stats
}

// New returns a bus attached to kernel k with the default hop latency
// and channel count.
func New(k *sim.Kernel) *Bus {
	return NewWithOptions(k, config.HopCycles, DefaultChannels)
}

// NewWithHopLatency returns a bus with a custom one-way hop latency,
// used by topology sensitivity tests.
func NewWithHopLatency(k *sim.Kernel, hop uint64) *Bus {
	return NewWithOptions(k, hop, DefaultChannels)
}

// NewWithOptions returns a bus with explicit hop latency and channel
// count (channels <= 0 selects DefaultChannels).
func NewWithOptions(k *sim.Kernel, hop uint64, channels int) *Bus {
	b := new(Bus)
	b.Init(k, hop, channels)
	return b
}

// Init initializes b in place with explicit hop latency and channel
// count (channels <= 0 selects DefaultChannels). Batch construction —
// the multi-domain fabric carves its per-domain bus slices from one
// block — uses it directly; NewWithOptions wraps it.
func (b *Bus) Init(k *sim.Kernel, hop uint64, channels int) {
	if channels <= 0 {
		channels = DefaultChannels
	}
	*b = Bus{k: k, hopLat: hop, stats: Stats{startTick: k.Now()}}
	// Channel state lives in the embedded array when it fits (the common
	// configs — single-channel core slices and DefaultChannels hubs — both
	// do); only oversized custom topologies pay a heap block. Safe because
	// a Bus never moves after Init (heap object or fabric arena slot).
	if channels <= len(b.freeAt0) {
		b.freeAt = b.freeAt0[:channels]
	} else {
		b.freeAt = make([]uint64, channels)
	}
}

// Channels reports the number of transfer channels.
func (b *Bus) Channels() int { return len(b.freeAt) }

// Send transmits a packet of the given kind. deliver runs at the arrival
// tick (channel wait + serialization + hop latency). deliver may be nil
// for fire-and-forget accounting.
func (b *Bus) Send(kind PacketKind, deliver func()) {
	arrival := b.occupy(kind)
	if deliver != nil {
		b.k.At(arrival, deliver)
	}
}

// SendFunc is the allocation-free form of Send: deliver(arg) runs at the
// arrival tick. deliver is typically a func value the caller bound once;
// arg carries the per-packet state, so the per-packet delivery schedules
// without creating a closure (see sim.Kernel.AtFunc).
func (b *Bus) SendFunc(kind PacketKind, deliver func(uint64), arg uint64) {
	arrival := b.occupy(kind)
	b.k.AtFunc(arrival, deliver, arg)
}

// Occupy books a packet of the given kind on the earliest-free channel
// and returns its arrival tick without scheduling a delivery event. The
// cross-domain send path uses it: the sending domain accounts for its
// bus slice locally, then posts the delivery into the destination
// domain's kernel at the returned tick. The arrival is always at least
// hop + serialization past now, which is what makes the parallel
// kernel's lookahead sound.
func (b *Bus) Occupy(kind PacketKind) uint64 { return b.occupy(kind) }

// Lookahead reports the minimum delay between submitting any packet on
// this bus and its arrival: one hop plus the smallest serialization
// cost. The conservative quantum of a multi-domain run is derived from
// this (computed from config, never hardcoded).
func (b *Bus) Lookahead() uint64 { return b.hopLat + MinOccupancy() }

// occupy books a packet of the given kind on the earliest-free channel,
// updates the accounting, and returns the arrival tick.
func (b *Bus) occupy(kind PacketKind) uint64 {
	occ := occupancy(kind)
	// Earliest-free channel.
	ch := 0
	for i := 1; i < len(b.freeAt); i++ {
		if b.freeAt[i] < b.freeAt[ch] {
			ch = i
		}
	}
	start := b.k.Now()
	if b.freeAt[ch] > start {
		start = b.freeAt[ch]
	}
	b.freeAt[ch] = start + occ
	b.stats.BusyCycles += occ
	b.stats.Packets[kind]++
	return start + occ + b.hopLat
}

// HopLatency reports the configured one-way hop latency.
func (b *Bus) HopLatency() uint64 { return b.hopLat }

// Stats returns a snapshot of the accounting counters.
func (b *Bus) Stats() Stats { return b.stats }

// Utilization reports busy channel-cycles as a fraction of elapsed
// channel-cycles since the bus was created (or since ResetStats) — the
// Figure 10b metric generalized to a multi-channel interconnect.
//
// Send charges BusyCycles at submit time for serialization that may
// still lie in the future (a channel's freeAt can exceed Now at the end
// of a run), so the window must extend to the last committed busy cycle:
// elapsed time is measured to max(Now, max(freeAt)). With that window
// the ratio is exact and never exceeds 1; it is not clamped, so any
// future overcounting bug fails tests instead of being masked.
func (b *Bus) Utilization() float64 {
	elapsed := b.WindowCycles()
	if elapsed == 0 {
		return 0
	}
	return float64(b.stats.BusyCycles) / float64(elapsed)
}

// WindowCycles reports the elapsed channel-cycles of the accounting
// window — Utilization's denominator. A multi-domain system aggregates
// utilization over its per-domain bus slices as
// sum(BusyCycles) / sum(WindowCycles).
func (b *Bus) WindowCycles() uint64 {
	end := b.k.Now()
	for _, f := range b.freeAt {
		if f > end {
			end = f
		}
	}
	return (end - b.stats.startTick) * uint64(len(b.freeAt))
}

// ResetStats zeroes the counters and restarts the utilization window.
func (b *Bus) ResetStats() {
	b.stats = Stats{startTick: b.k.Now()}
}
