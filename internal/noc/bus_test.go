package noc

import (
	"testing"

	"spamer/internal/config"
	"spamer/internal/sim"
)

func TestPacketDeliveryLatency(t *testing.T) {
	k := sim.New()
	b := New(k)
	var arrived uint64
	k.At(0, func() {
		b.Send(PktFetchReq, func() { arrived = k.Now() })
	})
	k.Run()
	want := uint64(config.CtrlPacketCycles + config.HopCycles)
	if arrived != want {
		t.Fatalf("arrival = %d, want %d", arrived, want)
	}
}

func TestDataPacketOccupancy(t *testing.T) {
	k := sim.New()
	b := New(k)
	var arrived uint64
	k.At(0, func() {
		b.Send(PktStash, func() { arrived = k.Now() })
	})
	k.Run()
	occ := uint64((config.LineBytes + config.BusBytesPerCycle - 1) / config.BusBytesPerCycle)
	want := occ + config.HopCycles
	if arrived != want {
		t.Fatalf("arrival = %d, want %d", arrived, want)
	}
}

func TestSerialization(t *testing.T) {
	k := sim.New()
	b := NewWithOptions(k, config.HopCycles, 1) // single channel: strict FIFO
	var arrivals []uint64
	k.At(0, func() {
		for i := 0; i < 3; i++ {
			b.Send(PktStash, func() { arrivals = append(arrivals, k.Now()) })
		}
	})
	k.Run()
	occ := uint64(2) // 64B / 32B-per-cycle
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i, a := range arrivals {
		want := occ*uint64(i+1) + config.HopCycles
		if a != want {
			t.Fatalf("arrival[%d] = %d, want %d", i, a, want)
		}
	}
	if got := b.Stats().BusyCycles; got != 3*occ {
		t.Fatalf("BusyCycles = %d, want %d", got, 3*occ)
	}
}

func TestUtilization(t *testing.T) {
	k := sim.New()
	b := New(k)
	k.At(0, func() {
		b.Send(PktStash, nil)
		b.Send(PktStash, nil)
	})
	k.At(100, func() {
		want := 4.0 / float64(100*b.Channels())
		if u := b.Utilization(); u != want {
			t.Errorf("utilization = %v, want %v", u, want)
		}
	})
	k.Run()
}

// TestUtilizationExactUnderOverload is the regression test for the old
// clamp: Send charges BusyCycles at submit time for serialization that
// happens in the future, so measuring against Now alone overcounted
// (here 6 busy cycles against a 1-cycle window, clamped to 1.0). The
// window must extend to the last committed busy cycle, giving the exact
// ratio.
func TestUtilizationExactUnderOverload(t *testing.T) {
	k := sim.New()
	b := NewWithOptions(k, config.HopCycles, 2)
	k.At(0, func() {
		// Three stashes (occupancy 2) on two channels: freeAt = [4, 2],
		// BusyCycles = 6.
		for i := 0; i < 3; i++ {
			b.Send(PktStash, nil)
		}
	})
	k.At(1, func() {
		// Window extends to max(freeAt) = 4 over 2 channels: 6/8.
		if u := b.Utilization(); u != 0.75 {
			t.Errorf("utilization = %v, want 0.75", u)
		}
	})
	k.Run()
}

// End-of-run utilization must include serialization still pending when
// the last event fires (the Figure 10b end-of-run readout): previously
// the window was zero cycles here and the metric collapsed to 0.
func TestUtilizationCountsFutureSerialization(t *testing.T) {
	k := sim.New()
	b := New(k)
	k.At(0, func() {
		b.Send(PktStash, nil)
		b.Send(PktStash, nil)
	})
	k.Run() // drains at tick 0; two channels stay busy until tick 2
	if u := b.Utilization(); u != 0.5 {
		t.Errorf("end-of-run utilization = %v, want 0.5 (4 busy / 2*4 channel-cycles)", u)
	}
}

// Saturation pegs the metric at exactly 1, never above, with no clamp
// in the implementation to mask overcounting.
func TestUtilizationNeverExceedsOne(t *testing.T) {
	k := sim.New()
	b := NewWithOptions(k, 0, 1)
	k.At(0, func() {
		for i := 0; i < 100; i++ {
			b.Send(PktStash, nil)
		}
	})
	k.At(10, func() {
		if u := b.Utilization(); u != 1 {
			t.Errorf("mid-run saturated utilization = %v, want exactly 1", u)
		}
	})
	k.Run()
	if u := b.Utilization(); u != 1 {
		t.Errorf("end-of-run saturated utilization = %v, want exactly 1", u)
	}
}

func TestPacketCounters(t *testing.T) {
	k := sim.New()
	b := New(k)
	k.At(0, func() {
		b.Send(PktPush, nil)
		b.Send(PktPush, nil)
		b.Send(PktFetchReq, nil)
		b.Send(PktResp, nil)
	})
	k.Run()
	s := b.Stats()
	if s.PacketCount(PktPush) != 2 || s.PacketCount(PktFetchReq) != 1 || s.PacketCount(PktResp) != 1 {
		t.Fatalf("counts: %+v", s.Packets)
	}
	if s.TotalPackets() != 4 {
		t.Fatalf("TotalPackets = %d", s.TotalPackets())
	}
}

func TestResetStats(t *testing.T) {
	k := sim.New()
	b := New(k)
	k.At(0, func() { b.Send(PktPush, nil) })
	k.At(50, func() {
		b.ResetStats()
		if b.Stats().TotalPackets() != 0 {
			t.Error("ResetStats did not clear packets")
		}
	})
	k.At(100, func() {
		if u := b.Utilization(); u != 0 {
			t.Errorf("post-reset utilization = %v", u)
		}
	})
	k.Run()
}

func TestChannelsParallel(t *testing.T) {
	k := sim.New()
	b := NewWithOptions(k, 0, 2)
	var arrivals []uint64
	k.At(0, func() {
		for i := 0; i < 4; i++ {
			b.Send(PktStash, func() { arrivals = append(arrivals, k.Now()) })
		}
	})
	k.Run()
	// 2 channels, occupancy 2: pairs arrive at 2 and 4.
	want := []uint64{2, 2, 4, 4}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestCustomHopLatency(t *testing.T) {
	k := sim.New()
	b := NewWithHopLatency(k, 50)
	var arrived uint64
	k.At(0, func() { b.Send(PktResp, func() { arrived = k.Now() }) })
	k.Run()
	if arrived != 51 {
		t.Fatalf("arrival = %d, want 51", arrived)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []PacketKind{PktPush, PktFetchReq, PktStash, PktResp, PktRegister, PktCoherence}
	seen := map[string]bool{}
	for _, pk := range kinds {
		s := pk.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate String for %d: %q", pk, s)
		}
		seen[s] = true
	}
}
