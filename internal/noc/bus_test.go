package noc

import (
	"testing"

	"spamer/internal/config"
	"spamer/internal/sim"
)

func TestPacketDeliveryLatency(t *testing.T) {
	k := sim.New()
	b := New(k)
	var arrived uint64
	k.At(0, func() {
		b.Send(PktFetchReq, func() { arrived = k.Now() })
	})
	k.Run()
	want := uint64(config.CtrlPacketCycles + config.HopCycles)
	if arrived != want {
		t.Fatalf("arrival = %d, want %d", arrived, want)
	}
}

func TestDataPacketOccupancy(t *testing.T) {
	k := sim.New()
	b := New(k)
	var arrived uint64
	k.At(0, func() {
		b.Send(PktStash, func() { arrived = k.Now() })
	})
	k.Run()
	occ := uint64((config.LineBytes + config.BusBytesPerCycle - 1) / config.BusBytesPerCycle)
	want := occ + config.HopCycles
	if arrived != want {
		t.Fatalf("arrival = %d, want %d", arrived, want)
	}
}

func TestSerialization(t *testing.T) {
	k := sim.New()
	b := NewWithOptions(k, config.HopCycles, 1) // single channel: strict FIFO
	var arrivals []uint64
	k.At(0, func() {
		for i := 0; i < 3; i++ {
			b.Send(PktStash, func() { arrivals = append(arrivals, k.Now()) })
		}
	})
	k.Run()
	occ := uint64(2) // 64B / 32B-per-cycle
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i, a := range arrivals {
		want := occ*uint64(i+1) + config.HopCycles
		if a != want {
			t.Fatalf("arrival[%d] = %d, want %d", i, a, want)
		}
	}
	if got := b.Stats().BusyCycles; got != 3*occ {
		t.Fatalf("BusyCycles = %d, want %d", got, 3*occ)
	}
}

func TestUtilization(t *testing.T) {
	k := sim.New()
	b := New(k)
	k.At(0, func() {
		b.Send(PktStash, nil)
		b.Send(PktStash, nil)
	})
	k.At(100, func() {
		want := 4.0 / float64(100*b.Channels())
		if u := b.Utilization(); u != want {
			t.Errorf("utilization = %v, want %v", u, want)
		}
	})
	k.Run()
}

func TestUtilizationCapsAtOne(t *testing.T) {
	k := sim.New()
	b := New(k)
	k.At(0, func() {
		for i := 0; i < 100; i++ {
			b.Send(PktStash, nil)
		}
	})
	k.At(10, func() {
		if u := b.Utilization(); u > 1 {
			t.Errorf("utilization = %v > 1", u)
		}
	})
	k.Run()
}

func TestPacketCounters(t *testing.T) {
	k := sim.New()
	b := New(k)
	k.At(0, func() {
		b.Send(PktPush, nil)
		b.Send(PktPush, nil)
		b.Send(PktFetchReq, nil)
		b.Send(PktResp, nil)
	})
	k.Run()
	s := b.Stats()
	if s.PacketCount(PktPush) != 2 || s.PacketCount(PktFetchReq) != 1 || s.PacketCount(PktResp) != 1 {
		t.Fatalf("counts: %+v", s.Packets)
	}
	if s.TotalPackets() != 4 {
		t.Fatalf("TotalPackets = %d", s.TotalPackets())
	}
}

func TestResetStats(t *testing.T) {
	k := sim.New()
	b := New(k)
	k.At(0, func() { b.Send(PktPush, nil) })
	k.At(50, func() {
		b.ResetStats()
		if b.Stats().TotalPackets() != 0 {
			t.Error("ResetStats did not clear packets")
		}
	})
	k.At(100, func() {
		if u := b.Utilization(); u != 0 {
			t.Errorf("post-reset utilization = %v", u)
		}
	})
	k.Run()
}

func TestChannelsParallel(t *testing.T) {
	k := sim.New()
	b := NewWithOptions(k, 0, 2)
	var arrivals []uint64
	k.At(0, func() {
		for i := 0; i < 4; i++ {
			b.Send(PktStash, func() { arrivals = append(arrivals, k.Now()) })
		}
	})
	k.Run()
	// 2 channels, occupancy 2: pairs arrive at 2 and 4.
	want := []uint64{2, 2, 4, 4}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestCustomHopLatency(t *testing.T) {
	k := sim.New()
	b := NewWithHopLatency(k, 50)
	var arrived uint64
	k.At(0, func() { b.Send(PktResp, func() { arrived = k.Now() }) })
	k.Run()
	if arrived != 51 {
		t.Fatalf("arrival = %d, want 51", arrived)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []PacketKind{PktPush, PktFetchReq, PktStash, PktResp, PktRegister, PktCoherence}
	seen := map[string]bool{}
	for _, pk := range kinds {
		s := pk.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate String for %d: %q", pk, s)
		}
		seen[s] = true
	}
}
