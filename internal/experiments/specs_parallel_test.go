package experiments

import (
	"context"
	"reflect"
	"testing"

	"spamer/internal/harness"
)

// TestRunSpecsParallelMatchesSequential: the pooled runner reproduces
// Spec.Run outcome-for-outcome, at any worker count, in spec order.
func TestRunSpecsParallelMatchesSequential(t *testing.T) {
	specs := []Spec{
		{Benchmark: "ping-pong", Algorithms: []string{"vl", "tuned"}, Label: "a"},
		{Benchmark: "firewall", Algorithms: []string{"tuned", "vl"}, Label: "b"},
		{Benchmark: "ping-pong", Algorithms: []string{"0delay"}, Repeat: 2},
	}
	var want [][]Outcome
	for i := range specs {
		outs, err := specs[i].Run()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, outs)
	}
	for _, workers := range []int{1, 4} {
		results := RunSpecsParallel(context.Background(), specs, harness.Options{Workers: workers})
		if len(results) != len(specs) {
			t.Fatalf("workers=%d: results = %d", workers, len(results))
		}
		for i, r := range results {
			if r.Err != nil || r.Index != i {
				t.Fatalf("workers=%d spec %d: %+v", workers, i, r)
			}
			if !reflect.DeepEqual(r.Outcomes, want[i]) {
				t.Errorf("workers=%d spec %d:\n got %+v\nwant %+v", workers, i, r.Outcomes, want[i])
			}
		}
	}
}

// TestRunSpecsParallelIsolatesFailures: an invalid spec fails in its
// own slot; its neighbours still run.
func TestRunSpecsParallelIsolatesFailures(t *testing.T) {
	specs := []Spec{
		{Benchmark: "ping-pong", Algorithms: []string{"vl"}},
		{Benchmark: "no-such-benchmark"},
		{Benchmark: "firewall", Algorithms: []string{"vl"}},
	}
	results := RunSpecsParallel(context.Background(), specs, harness.Options{Workers: 2})
	if results[0].Err != nil || len(results[0].Outcomes) != 1 {
		t.Fatalf("spec 0: %+v", results[0])
	}
	if results[1].Err == nil || len(results[1].Outcomes) != 0 {
		t.Fatalf("spec 1 should have failed: %+v", results[1])
	}
	if results[2].Err != nil || len(results[2].Outcomes) != 1 {
		t.Fatalf("spec 2: %+v", results[2])
	}
}
