package experiments

import (
	"strings"
	"testing"
)

// FuzzReadSpecs hardens the JSON spec parser against malformed input:
// it must either return an error or specs that survive Validate without
// panicking.
func FuzzReadSpecs(f *testing.F) {
	f.Add(`{"benchmark":"FIR"}`)
	f.Add(`[{"benchmark":"halo","algorithms":["vl"]},{"benchmark":"FIR"}]`)
	f.Add(`{"benchmark":"FIR","tuned":{"zeta":1,"tau":2,"delta":3,"alpha":4,"beta":5}}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(`{"benchmark":"FIR","scale":-3}`)
	f.Fuzz(func(t *testing.T, data string) {
		specs, err := ReadSpecs(strings.NewReader(data))
		if err != nil {
			return
		}
		for i := range specs {
			_ = specs[i].Validate() // must not panic
		}
	})
}
